(* Resource revocation (paper §2.1): shared platforms such as EC2 spot
   instances revoke compute abruptly. Revocations are discretionary
   exceptions; we compare conventional checkpoint-and-recovery with
   GPRS's selective restart as revocations become frequent.

   dune exec examples/spot_revocation.exe *)

let program ~workers =
  let open Vm.Builder in
  let worker = proc "worker" in
  for_up worker ~reg:1 ~from:(fun _ -> 0) ~until:(fun _ -> 30) (fun () ->
      compute worker 8_000;
      atomic worker ~var:(fun _ -> 0) ~dst:2 (fun ~old regs ->
          old + regs.(0) + regs.(1)));
  exit_ worker;
  let main = proc "main" in
  for i = 0 to workers - 1 do
    fork main ~group:1 ~proc:"worker" ~dst:(10 + i) (fun _ -> [| i |])
  done;
  for i = 0 to workers - 1 do
    join_reg main (10 + i)
  done;
  atomic main ~var:(fun _ -> 0) ~dst:3 (fun ~old _ -> old);
  work_const main 1 (fun env -> env.Vm.Env.write 0 (Vm.Env.get env 3));
  exit_ main;
  program ~mem_words:256 ~n_atomics:1 ~n_groups:2 ~entry:"main"
    [ finish main; finish worker ]

let () =
  let contexts = 8 in
  let p = program ~workers:8 in
  let injector rate =
    Faults.Injector.config ~kinds:[ Faults.Injector.Resource_revocation ] rate
  in
  let base =
    Exec.Baseline.run { Exec.Baseline.default_config with n_contexts = contexts } p
  in
  let budget = Some (50 * base.Exec.State.sim_cycles) in
  Format.printf "revocations/sec     P-CPR            GPRS@.";
  List.iter
    (fun rate ->
      let cpr =
        Cpr.run
          {
            Cpr.default_config with
            n_contexts = contexts;
            checkpoint_interval = 0.02;
            injector = injector rate;
            max_cycles = budget;
            livelock_rollbacks = 60;
          }
          p
      in
      let gprs =
        Gprs.Engine.run
          {
            Gprs.Engine.default_config with
            n_contexts = contexts;
            injector = injector rate;
            max_cycles = budget;
          }
          p
      in
      let cell (r : Exec.State.run_result) =
        if r.Exec.State.dnc then "DNC             "
        else
          Printf.sprintf "%.2fx (ok=%b)  "
            (float_of_int r.Exec.State.sim_cycles
            /. float_of_int base.Exec.State.sim_cycles)
            (Vm.Mem.read r.Exec.State.final_mem 0
            = Vm.Mem.read base.Exec.State.final_mem 0)
      in
      Format.printf "%12.1f     %s %s@." rate (cell cpr) (cell gprs))
    [ 5.0; 20.0; 80.0; 200.0 ];
  Format.printf
    "@.As revocations outpace the checkpoint interval, CPR keeps discarding@.";
  Format.printf
    "the same work and never completes; selective restart only repeats the@.";
  Format.printf "sub-threads the revoked context was actually running.@."
