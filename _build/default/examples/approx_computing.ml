(* Discretionary exceptions from disciplined approximate computing
   (paper §2.1): a QoS framework lets approximate hardware run fast, but
   demands recomputation when the error is egregious. Each recomputation
   demand is a discretionary exception; GPRS's selective restart
   re-executes only the offending computation and its dependents.

   dune exec examples/approx_computing.exe *)

let () =
  let tiles = 24 in
  let open Vm.Builder in
  (* Each worker "renders" a tile; the result is exact per the program
     text — the approximation lives in the hardware model, i.e. in the
     injected Approx_recompute exceptions that force re-execution. *)
  let worker = proc "worker" in
  work_const worker 500_000 (fun env ->
      let t = Vm.Env.get env 0 in
      let acc = ref 0 in
      for k = 0 to 63 do
        acc := !acc lxor (Workloads.Workload.mix ((t * 64) + k) land 0xFFFF)
      done;
      env.Vm.Env.write (1 + t) !acc);
  exit_ worker;
  let main = proc "main" in
  for i = 0 to tiles - 1 do
    fork main ~group:1 ~proc:"worker" ~dst:(4 + i) (fun _ -> [| i |])
  done;
  for i = 0 to tiles - 1 do
    join_reg main (4 + i)
  done;
  work_const main 100 (fun env ->
      let s = ref 0 in
      for t = 0 to tiles - 1 do
        s := !s lxor env.Vm.Env.read (1 + t)
      done;
      env.Vm.Env.write 0 !s);
  exit_ main;
  let program =
    program ~mem_words:1024 ~n_groups:2 ~entry:"main" [ finish main; finish worker ]
  in
  let run rate =
    Gprs.Engine.run
      {
        Gprs.Engine.default_config with
        n_contexts = 8;
        injector =
          Faults.Injector.config
            ~kinds:[ Faults.Injector.Approx_recompute ]
            ~process:Faults.Injector.Poisson rate;
      }
      program
  in
  let exact = run 0.0 in
  Format.printf "QoS demands/sec   cycles     overhead  recomputations  image@.";
  List.iter
    (fun rate ->
      let r = run rate in
      Format.printf "%10.0f %12d %8.1f%% %15d  %04x%s@." rate
        r.Exec.State.sim_cycles
        (100.0
        *. (float_of_int r.Exec.State.sim_cycles
            /. float_of_int exact.Exec.State.sim_cycles
           -. 1.0))
        (Sim.Stats.get r.Exec.State.run_stats "gprs.recoveries")
        (Vm.Mem.read r.Exec.State.final_mem 0)
        (if Vm.Mem.read r.Exec.State.final_mem 0
            = Vm.Mem.read exact.Exec.State.final_mem 0
         then "  (exact)"
         else "  (WRONG)"))
    [ 0.0; 10.0; 40.0; 100.0 ];
  Format.printf
    "@.Recomputation demands cost only the offending tiles; the result@.";
  Format.printf "stays bit-exact at every demand rate.@."
