(* The paper's running example (§3.2, Fig. 6/7): a Pbzip2-style pipeline
   whose parallelism a naive round-robin deterministic order destroys,
   and which the balance-aware and weighted schedules restore.

   dune exec examples/pipeline_compression.exe *)

let () =
  let spec = Workloads.Suite.find "pbzip2" in
  let contexts = 8 in
  let program =
    spec.Workloads.Workload.build ~n_contexts:contexts
      ~grain:Workloads.Workload.Default ~scale:0.4
  in
  let baseline =
    Exec.Baseline.run
      { Exec.Baseline.default_config with n_contexts = contexts }
      program
  in
  let gprs ordering =
    Gprs.Engine.run
      { Gprs.Engine.default_config with n_contexts = contexts; ordering }
      program
  in
  let show name (r : Exec.State.run_result) =
    Format.printf "%-28s %10d cycles  (%.2fx)  digest=%s@." name
      r.Exec.State.sim_cycles
      (float_of_int r.Exec.State.sim_cycles
      /. float_of_int baseline.Exec.State.sim_cycles)
      (spec.Workloads.Workload.digest r)
  in
  Format.printf
    "Pbzip2 pipeline: 1 reader -> %d compressors -> 1 writer, %d contexts@.@."
    (contexts - 2) contexts;
  show "Pthreads (no recovery)" baseline;
  show "GPRS, round-robin order" (gprs Gprs.Order.Round_robin);
  show "GPRS, balance-aware order" (gprs Gprs.Order.Balance_aware);
  show "GPRS, weighted order (4:4:1)" (gprs Gprs.Order.Weighted);
  Format.printf
    "@.Round-robin regiments the FIFO turns and starves the compressors@.";
  Format.printf
    "(the paper measures 1014%% overhead); the balance-aware schedule@.";
  Format.printf "restores the pipeline structure. All digests agree.@."
