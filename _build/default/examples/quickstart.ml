(* Quickstart: write a small parallel program against the virtual ISA,
   run it under GPRS while exceptions strike, and observe that the result
   is exactly what a fault-free run produces.

   dune exec examples/quickstart.exe *)

let () =
  (* A parallel sum: 8 workers square their index range into private
     slots; main folds the slots into address 0. *)
  let workers = 8 in
  let open Vm.Builder in
  let worker = proc "worker" in
  work_const worker 600_000 (fun env ->
      let w = Vm.Env.get env 0 in
      let acc = ref 0 in
      for i = w * 100 to ((w + 1) * 100) - 1 do
        acc := !acc + (i * i)
      done;
      env.Vm.Env.write (1 + w) !acc);
  exit_ worker;
  let main = proc "main" in
  for i = 0 to workers - 1 do
    fork main ~group:1 ~proc:"worker" ~dst:(10 + i) (fun _ -> [| i |])
  done;
  for i = 0 to workers - 1 do
    join_reg main (10 + i)
  done;
  work_const main 100 (fun env ->
      let s = ref 0 in
      for w = 0 to workers - 1 do
        s := !s + env.Vm.Env.read (1 + w)
      done;
      env.Vm.Env.write 0 !s);
  exit_ main;
  let program =
    program ~mem_words:1024 ~n_groups:2 ~entry:"main" [ finish main; finish worker ]
  in

  (* Fault-free reference run under the plain Pthreads executor. *)
  let reference =
    Exec.Baseline.run { Exec.Baseline.default_config with n_contexts = 8 } program
  in
  let expected = Vm.Mem.read reference.Exec.State.final_mem 0 in

  (* The same program under GPRS with 40 exceptions/second striking
     random contexts (transient faults, 400k-cycle detection latency). *)
  let result =
    Gprs.Engine.run
      {
        Gprs.Engine.default_config with
        n_contexts = 8;
        injector = Faults.Injector.config 40.0;
      }
      program
  in
  let got = Vm.Mem.read result.Exec.State.final_mem 0 in
  Format.printf "expected sum       : %d@." expected;
  Format.printf "GPRS (with faults) : %d@." got;
  Format.printf "exceptions handled : %d (%d sub-threads squashed and re-executed)@."
    (Sim.Stats.get result.Exec.State.run_stats "gprs.exceptions")
    (Sim.Stats.get result.Exec.State.run_stats "gprs.squashed_subs");
  Format.printf "sub-threads        : %d created, %d retired@."
    (Sim.Stats.get result.Exec.State.run_stats "gprs.subthreads")
    (Sim.Stats.get result.Exec.State.run_stats "gprs.retired");
  if got = expected then Format.printf "OK: globally precise restart preserved the result@."
  else begin
    Format.printf "MISMATCH@.";
    Stdlib.exit 1
  end
