(* Benchmark harness.

   Two parts:

   1. Regenerates every table and figure of the paper's evaluation at
      bench scale (reduced inputs/contexts so the whole harness finishes
      in minutes; `dune exec bin/paper.exe` runs the full-scale version)
      — these are the rows/series the paper reports.

   2. One Bechamel micro-benchmark per table/figure, timing the
      simulator codepath that experiment exercises. *)

open Bechamel
open Toolkit

let bench_cfg =
  {
    Analysis.Experiments.default_cfg with
    Analysis.Experiments.n_contexts = 8;
    scale = 0.1;
    dnc_factor = 20;
  }

let micro_cfg =
  {
    Analysis.Experiments.default_cfg with
    Analysis.Experiments.n_contexts = 4;
    scale = 0.03;
    dnc_factor = 25;
  }

let ppf = Format.std_formatter

(* ------------------------------------------------------------------ *)
(* Part 1: the paper's rows/series at bench scale                      *)
(* ------------------------------------------------------------------ *)

let print_experiments () =
  Format.fprintf ppf
    "=== GPRS paper evaluation (bench scale: %d contexts, scale %.2f) ===@.@."
    bench_cfg.Analysis.Experiments.n_contexts bench_cfg.Analysis.Experiments.scale;
  Analysis.Report.render_table ppf ~title:"Table 1 — Related work (qualitative)"
    ~header:
      [ "Proposal"; "Recovery"; "Design"; "Chkpt."; "Rec."; "Scalable"; "Det."; "Det. cost" ]
    (Analysis.Experiments.table1 ());
  Format.fprintf ppf "@.";
  Analysis.Report.render_table ppf
    ~title:"Table 2 — Programs and their relative characteristics"
    ~header:[ "Program"; "Comp."; "Sync."; "Crit."; "Exec(s)"; "Sub-size"; "#Subs" ]
    (Analysis.Experiments.table2 bench_cfg);
  Format.fprintf ppf "@.";
  Analysis.Report.render_figure ppf (Analysis.Experiments.fig8a bench_cfg);
  Format.fprintf ppf "@.";
  Analysis.Report.render_figure ppf (Analysis.Experiments.fig8b bench_cfg);
  Format.fprintf ppf "@.";
  Analysis.Report.render_figure ppf (Analysis.Experiments.fig9 bench_cfg);
  Format.fprintf ppf "@.";
  Analysis.Report.render_figure ppf (Analysis.Experiments.fig10 bench_cfg);
  Format.fprintf ppf "@.";
  Analysis.Experiments.render_fig11 ppf
    (Analysis.Experiments.fig11 ~contexts:[ 1; 4; 8 ]
       { bench_cfg with Analysis.Experiments.scale = 0.08 });
  Format.fprintf ppf "@."

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks, one per table/figure             *)
(* ------------------------------------------------------------------ *)

let spec name = Workloads.Suite.find name

let t_table1 =
  Test.make ~name:"table1:analytic-model"
    (Staged.stage (fun () ->
         ignore (Analysis.Model.gprs_max_rate ~n:24 ~tr:0.5);
         ignore
           (Analysis.Model.cpr_checkpoint_penalty ~t:1.0 ~n:24 ~tc:0.001 ~ts:0.002)))

let t_table2 =
  Test.make ~name:"table2:gprs-run(re)"
    (Staged.stage (fun () ->
         ignore
           (Analysis.Experiments.run_gprs micro_cfg (spec "re")
              ~grain:Workloads.Workload.Default)))

let t_fig8a =
  Test.make ~name:"fig8a:overheads(wordcount)"
    (Staged.stage (fun () ->
         ignore
           (Analysis.Experiments.run_gprs micro_cfg (spec "wordcount")
              ~grain:Workloads.Workload.Default);
         ignore
           (Analysis.Experiments.run_cpr micro_cfg (spec "wordcount")
              ~grain:Workloads.Workload.Default)))

let t_fig8b =
  Test.make ~name:"fig8b:fine-grain(canneal)"
    (Staged.stage (fun () ->
         ignore
           (Analysis.Experiments.run_gprs micro_cfg (spec "canneal")
              ~grain:Workloads.Workload.Fine)))

let t_fig9 =
  Test.make ~name:"fig9:oversubscription(swaptions)"
    (Staged.stage (fun () ->
         ignore
           (Analysis.Experiments.run_pthreads micro_cfg (spec "swaptions")
              ~grain:Workloads.Workload.Fine);
         ignore
           (Analysis.Experiments.run_gprs micro_cfg (spec "swaptions")
              ~grain:Workloads.Workload.Fine)))

let t_fig10 =
  Test.make ~name:"fig10:recovery(histogram,faults)"
    (Staged.stage (fun () ->
         ignore
           (Analysis.Experiments.run_gprs ~rate:100.0 micro_cfg (spec "histogram")
              ~grain:Workloads.Workload.Default)))

let t_fig11 =
  Test.make ~name:"fig11:tipping(pbzip2,faults)"
    (Staged.stage (fun () ->
         ignore
           (Analysis.Experiments.run_gprs ~rate:60.0 micro_cfg (spec "pbzip2")
              ~grain:Workloads.Workload.Default)))

let tests =
  [ t_table1; t_table2; t_fig8a; t_fig8b; t_fig9; t_fig10; t_fig11 ]

let run_micro () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 2.0) ~stabilize:true ()
  in
  Format.fprintf ppf "=== Bechamel micro-benchmarks (one per table/figure) ===@.";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols (List.hd instances) results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
            Format.fprintf ppf "%-36s %12.0f ns/run@." name est
          | Some _ | None -> Format.fprintf ppf "%-36s (no estimate)@." name)
        analyzed)
    tests;
  Format.fprintf ppf "@."

let () =
  print_experiments ();
  run_micro ()
