(** Blackscholes (PARSEC): fork/join option pricing.

    Table 2: large computations, low synchronization frequency. Workers
    price a chunk of options with a heavy fixed-point arithmetic kernel;
    prices land in a shared result area covered by the digest. The fine
    grain launches far more threads than contexts — the configuration
    whose Pthreads execution degrades catastrophically in the paper's
    Fig. 9 while GPRS's sub-thread pool absorbs it. *)

val spec : Workload.spec

val options_count : scale:float -> int

val price_one : spot:int -> strike:int -> vol:int -> expiry:int -> int
(** The pricing kernel, exposed for unit tests: deterministic, pure. *)
