let all =
  [
    Barnes_hut.spec;
    Blackscholes.spec;
    Canneal.spec;
    Swaptions.spec;
    Histogram.spec;
    Pbzip2.spec;
    Dedup.spec;
    Re.spec;
    Wordcount.spec;
    Reverse_index.spec;
  ]

let names = List.map (fun s -> s.Workload.name) all

let find name =
  match List.find_opt (fun s -> s.Workload.name = name) all with
  | Some s -> s
  | None ->
    invalid_arg
      (Printf.sprintf "unknown workload %S (known: %s)" name
         (String.concat ", " names))
