(** Canneal (PARSEC): annealing with non-standard synchronization.

    Table 2: small computations, medium synchronization frequency, small
    critical sections. Canneal synchronizes with home-spun atomic swap
    operations that GPRS does not intercept (§4 of the paper: "Canneal
    uses non-standard APIs ... GPRS cannot be applied without altering
    the program"), so the main computation is wrapped in
    [Cpr_begin]/[Cpr_end] and recovered with the {e hybrid} scheme.

    The digest is the element sum — invariant under any legal schedule of
    swaps (placement is a permutation), so it doubles as a conservation
    oracle. *)

val spec : Workload.spec
