(** Synthetic input generators.

    Deterministic replacements for the paper's inputs (files, option
    batches, bodies, network traces). Every generator is a pure function
    of its own fixed seed, so a workload's input — and therefore its
    fault-free result digest — is identical across engines and runs. *)

val words_file : n:int -> vocabulary:int -> int array
(** A "text": [n] word ids drawn (deterministically) from a Zipf-ish
    skewed distribution over [vocabulary] ids. Used by WordCount,
    ReverseIndex and Histogram. *)

val blocks_file : n:int -> int array
(** Compressible data: runs of repeated values with varying run lengths,
    as a compression benchmark input (Pbzip2, Dedup). *)

val packet_trace : n:int -> flows:int -> int array
(** Network packets as (flow, payload-hash) pairs flattened into one
    array; payloads repeat across packets within a flow, giving RE its
    redundancy to detect. Length is [2n]. *)

val bodies : n:int -> int array
(** N-body initial positions/masses, 4 words per body (x, y, z, m). *)

val prices : n:int -> int array
(** Option-pricing inputs, 4 words per option (spot, strike, vol,
    expiry), in fixed-point. *)

val elements : n:int -> int array
(** Circuit elements for Canneal: a permutation of 0..n-1 representing
    placement. *)
