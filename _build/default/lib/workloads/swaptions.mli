(** Swaptions (PARSEC): fork/join Monte-Carlo pricing.

    Table 2: very large computations, low synchronization frequency, and
    the smallest sub-thread count of the suite (130 in the paper) — each
    sub-thread is one long simulation, which is why Swaptions only
    tolerates low exception rates in Fig. 10. *)

val spec : Workload.spec
