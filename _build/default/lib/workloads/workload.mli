(** Common interface of the benchmark programs.

    Each workload reconstructs the structure of one program from the
    paper's Table 2 — its parallelism pattern (fork/join, pipeline,
    mixed), computation granularity, synchronization frequency and
    critical-section size — as a virtual-ISA program. Inputs are
    synthetic but deterministic, and every workload exposes a
    schedule-independent {!digest} of its architectural result so that
    runs under different engines (and under exception injection) can be
    checked against the same oracle. *)

type grain =
  | Default  (** the program's natural thread granularity (Fig. 8a) *)
  | Fine  (** finer-grained computations (Fig. 8b / Fig. 9) *)

type spec = {
  name : string;
  comp_size : string;  (** Table 2 col 2: relative computation size *)
  sync_freq : string;  (** Table 2 col 3: synchronization frequency *)
  crit_size : string;  (** Table 2 col 4: critical-section size *)
  pattern : string;  (** parallelism pattern summary *)
  weights : int array option;
      (** per-group weights for the weighted schedule, when the paper
          reports one (Pbzip2's 4:4:1) *)
  build : n_contexts:int -> grain:grain -> scale:float -> Vm.Isa.program;
      (** [scale] multiplies the input size; 1.0 is the "large input". *)
  digest : Exec.State.run_result -> string;
}

val digest_cells : Vm.Mem.t -> lo:int -> n:int -> string
(** Helper: FNV-1a hash of [n] memory words starting at [lo]. *)

val digest_outputs : Exec.State.run_result -> string
(** Helper: hash of all declared output files. *)

val chunk_bounds : total:int -> parts:int -> int -> int * int
(** [chunk_bounds ~total ~parts i] is the [(lo, hi)] half-open range of
    the [i]-th of [parts] contiguous chunks. *)

val mix : int -> int
(** Deterministic 63-bit mixing function for synthetic per-element
    "randomness" inside [Work] closures (no PRNG state needed, so
    re-execution after a squash reproduces the value). *)

val spawn_workers :
  Vm.Builder.proc_builder ->
  group:int ->
  proc:string ->
  n:int ->
  tids_at:int ->
  ?extra_args:(int -> Vm.Isa.regs -> int list) ->
  unit ->
  unit
(** Emit a fork loop into a main procedure: forks [n] instances of
    [proc], passing each its index as register 0 (plus [extra_args]), and
    stores the child tids into memory at [tids_at..tids_at+n-1] — in
    memory, not registers, so recovery-revived thread ids stay joinable.
    Uses registers 0 (index) and 1 (tid scratch). *)

val join_workers : Vm.Builder.proc_builder -> n:int -> tids_at:int -> unit
(** Emit the matching join loop (registers 0 and 1). *)
