let results_base = 0
let tids_base_off = 8  (* tids stored just past the results area *)

let options_count ~scale = int_of_float (4_000.0 *. scale)

(* A fixed-point stand-in for the Black-Scholes closed form: iterated
   CNDF-flavoured polynomial mixing. Pure, so re-execution after a squash
   reproduces the price. *)
let price_one ~spot ~strike ~vol ~expiry =
  let acc = ref (spot * 1000 / strike) in
  for k = 1 to 16 do
    let t = Workload.mix ((!acc * 31) + (vol * k) + expiry) in
    acc := ((!acc * 7) + (t land 0xFFFF)) / 8
  done;
  !acc land 0xFFFFFF

let build ~n_contexts ~grain ~scale =
  let open Vm.Builder in
  let n_opts = options_count ~scale in
  let workers =
    match grain with
    | Workload.Default -> n_contexts
    | Workload.Fine -> n_opts (* one option per thread: Table 2's ~100k threads *)
  in
  let input = Inputs.prices ~n:n_opts in
  let tids_base = results_base + n_opts + tids_base_off in
  let per_option_cost = 20_000 in
  let worker = proc "worker" in
  (* One Work instruction per option: realistic loop granularity, so the
     OS quantum and CPR's quiesce interleave with the computation. *)
  set_reg worker 2 (fun r -> fst (Workload.chunk_bounds ~total:n_opts ~parts:workers r.(0)));
  set_reg worker 3 (fun r -> snd (Workload.chunk_bounds ~total:n_opts ~parts:workers r.(0)));
  while_ worker
    (fun r -> r.(2) < r.(3))
    (fun () ->
      work worker
        ~cost:(fun _ -> per_option_cost)
        (fun env ->
          let i = Vm.Env.get env 2 in
          let spot = env.Vm.Env.file_read 0 ~off:(4 * i) in
          let strike = env.Vm.Env.file_read 0 ~off:((4 * i) + 1) in
          let vol = env.Vm.Env.file_read 0 ~off:((4 * i) + 2) in
          let expiry = env.Vm.Env.file_read 0 ~off:((4 * i) + 3) in
          env.Vm.Env.write (results_base + i) (price_one ~spot ~strike ~vol ~expiry));
      set_reg worker 2 (fun r -> r.(2) + 1));
  exit_ worker;
  let main = proc "main" in
  Workload.spawn_workers main ~group:1 ~proc:"worker" ~n:workers
    ~tids_at:tids_base ();
  Workload.join_workers main ~n:workers ~tids_at:tids_base;
  exit_ main;
  program
    ~mem_words:(tids_base + workers + 1024)
    ~n_groups:2 ~entry:"main"
    ~input_files:[ ("options", input) ]
    [ finish main; finish worker ]

let spec =
  {
    Workload.name = "blackscholes";
    comp_size = "large";
    sync_freq = "low";
    crit_size = "n/a";
    pattern = "fork/join data-parallel";
    weights = None;
    build;
    digest =
      (fun r ->
        (* The result area size depends on scale; hash a prefix that every
           configuration fills. *)
        Workload.digest_cells r.Exec.State.final_mem ~lo:results_base ~n:512);
  }
