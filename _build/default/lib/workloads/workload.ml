type grain = Default | Fine

type spec = {
  name : string;
  comp_size : string;
  sync_freq : string;
  crit_size : string;
  pattern : string;
  weights : int array option;
  build : n_contexts:int -> grain:grain -> scale:float -> Vm.Isa.program;
  digest : Exec.State.run_result -> string;
}

let fnv_prime = 0x100000001b3
let fnv_offset = 0x4bf29ce484222325 (* FNV-1a offset basis folded into 63 bits *)

let fnv1a acc v = (acc lxor (v land max_int)) * fnv_prime land max_int

let digest_cells mem ~lo ~n =
  let h = ref fnv_offset in
  for i = lo to lo + n - 1 do
    h := fnv1a !h (Vm.Mem.read mem i)
  done;
  Printf.sprintf "%016x" (!h land max_int)

let digest_outputs (r : Exec.State.run_result) =
  let h = ref fnv_offset in
  List.iter
    (fun (name, data) ->
      String.iter (fun c -> h := fnv1a !h (Char.code c)) name;
      Array.iter (fun v -> h := fnv1a !h v) data)
    r.Exec.State.outputs;
  Printf.sprintf "%016x" (!h land max_int)

let chunk_bounds ~total ~parts i =
  let base = total / parts and rem = total mod parts in
  let lo = (i * base) + Stdlib.min i rem in
  let hi = lo + base + if i < rem then 1 else 0 in
  (lo, hi)

let mix x =
  (* SplitMix64-style finalizer over OCaml's 63-bit ints. *)
  let x = x * 0x1E3779B97F4A7C15 land max_int in
  let x = (x lxor (x lsr 30)) * 0x3F58476D1CE4E5B9 land max_int in
  let x = (x lxor (x lsr 27)) * 0x14D049BB133111EB land max_int in
  x lxor (x lsr 31)

let spawn_workers b ~group ~proc:pname ~n ~tids_at ?(extra_args = fun _ _ -> [])
    () =
  let open Vm.Builder in
  for_up b ~reg:0 ~from:(fun _ -> 0) ~until:(fun _ -> n) (fun () ->
      fork b ~group ~proc:pname ~dst:1 (fun regs ->
          Array.of_list (regs.(0) :: extra_args regs.(0) regs));
      work_const b 1 (fun env ->
          env.Vm.Env.write (tids_at + Vm.Env.get env 0) (Vm.Env.get env 1)))

let join_workers b ~n ~tids_at =
  let open Vm.Builder in
  for_up b ~reg:0 ~from:(fun _ -> 0) ~until:(fun _ -> n) (fun () ->
      work_const b 1 (fun env ->
          Vm.Env.set env 1 (env.Vm.Env.read (tids_at + Vm.Env.get env 0)));
      join b (fun regs -> regs.(1)))
