let n_buckets = 16
let buckets_base = 0 (* per-bucket link counts *)
let tids_base = 64

let build ~n_contexts ~grain:_ ~scale =
  let open Vm.Builder in
  let n_links = int_of_float (4_000.0 *. scale) in
  let workers = n_contexts in
  let input = Inputs.words_file ~n:n_links ~vocabulary:(1 lsl 12) in
  let worker = proc "worker" in
  (* r0 = worker id; r2 = cursor within my chunk; r3 = chunk end *)
  set_reg worker 2 (fun r ->
      fst (Workload.chunk_bounds ~total:n_links ~parts:workers r.(0)));
  set_reg worker 3 (fun r ->
      snd (Workload.chunk_bounds ~total:n_links ~parts:workers r.(0)));
  while_ worker
    (fun r -> r.(2) < r.(3))
    (fun () ->
      (* data-parallel part: parse the document and extract the link *)
      work_const worker 150 (fun env ->
          let i = Vm.Env.get env 2 in
          let link = env.Vm.Env.file_read 0 ~off:i in
          Vm.Env.set env 4 (link mod n_buckets));
      (* critical section on the link's bucket (dynamic mutex) *)
      lock worker (fun r -> r.(4));
      work_const worker 40 (fun env ->
          let b = Vm.Env.get env 4 in
          env.Vm.Env.write (buckets_base + b) (env.Vm.Env.read (buckets_base + b) + 1));
      unlock worker (fun r -> r.(4));
      set_reg worker 2 (fun r -> r.(2) + 1));
  exit_ worker;
  let main = proc "main" in
  Workload.spawn_workers main ~group:1 ~proc:"worker" ~n:workers
    ~tids_at:tids_base ();
  Workload.join_workers main ~n:workers ~tids_at:tids_base;
  exit_ main;
  program
    ~mem_words:(tids_base + workers + 1024)
    ~n_mutexes:n_buckets ~n_groups:2 ~entry:"main"
    ~input_files:[ ("pages", input) ]
    [ finish main; finish worker ]

let spec =
  {
    Workload.name = "reverse-index";
    comp_size = "small";
    sync_freq = "medium";
    crit_size = "small";
    pattern = "data-parallel scan + per-bucket critical sections";
    weights = None;
    build;
    digest =
      (fun r -> Workload.digest_cells r.Exec.State.final_mem ~lo:buckets_base ~n:n_buckets);
  }
