(** WordCount (Phoenix suite): map with a locked reduce.

    Table 2: small computations, low synchronization frequency. Workers
    count word occurrences in private tables, then fold them into the
    global table under a single mutex — one small critical section per
    worker. Global counts live at memory 0..vocab-1. *)

val spec : Workload.spec
