let sum_cell = 0
let elements_base = 16

let build ~n_contexts ~grain ~scale =
  let open Vm.Builder in
  let n_elems = int_of_float (4_096.0 *. scale) in
  let swaps = int_of_float (600.0 *. scale) in
  let workers =
    match grain with
    | Workload.Default -> n_contexts
    | Workload.Fine -> 2 * n_contexts
  in
  let tids_base = elements_base + n_elems in
  let input = Inputs.elements ~n:n_elems in
  let worker = proc "worker" in
  (* The annealing loop lives in a CPR (hybrid-recovery) region: the
     non-standard spin-gate below is invisible to DEX. *)
  cpr_begin worker;
  for_up worker ~reg:2 ~from:(fun _ -> 0) ~until:(fun _ -> swaps) (fun () ->
      (* home-spun "lock": a non-standard atomic test-and-set retried in
         program order; contention is modelled by the RMW cost *)
      nonstd_atomic worker ~var:(fun _ -> 0) ~dst:3 (fun ~old _ -> old + 1);
      work_const worker 400 (fun env ->
          let w = Vm.Env.get env 0 and k = Vm.Env.get env 2 in
          let r = Workload.mix ((w * 131_071) + k) in
          let i = elements_base + (r mod n_elems) in
          let j = elements_base + ((r / n_elems) mod n_elems) in
          let a = env.Vm.Env.read i and b = env.Vm.Env.read j in
          (* accept the swap when it reduces "routing cost" *)
          if (a - b) * (i - j) > 0 then begin
            env.Vm.Env.write i b;
            env.Vm.Env.write j a
          end);
      nonstd_atomic worker ~var:(fun _ -> 0) ~dst:3 (fun ~old _ -> old - 1));
  cpr_end worker;
  exit_ worker;
  let main = proc "main" in
  (* load placement *)
  work_const main n_elems (fun env ->
      for k = 0 to n_elems - 1 do
        env.Vm.Env.write (elements_base + k) (env.Vm.Env.file_read 0 ~off:k)
      done);
  Workload.spawn_workers main ~group:1 ~proc:"worker" ~n:workers
    ~tids_at:tids_base ();
  Workload.join_workers main ~n:workers ~tids_at:tids_base;
  work_const main (2 * n_elems) (fun env ->
      let s = ref 0 in
      for k = 0 to n_elems - 1 do
        s := !s + env.Vm.Env.read (elements_base + k)
      done;
      env.Vm.Env.write sum_cell !s);
  exit_ main;
  program
    ~mem_words:(tids_base + workers + 1024)
    ~n_atomics:1 ~n_groups:2 ~entry:"main"
    ~input_files:[ ("netlist", input) ]
    [ finish main; finish worker ]

let spec =
  {
    Workload.name = "canneal";
    comp_size = "small";
    sync_freq = "medium";
    crit_size = "small";
    pattern = "annealing, non-standard sync (hybrid recovery)";
    weights = None;
    build;
    digest =
      (fun r -> Workload.digest_cells r.Exec.State.final_mem ~lo:sum_cell ~n:1);
  }
