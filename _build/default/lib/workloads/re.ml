let table_slots = 1024
let counters_base = 0 (* per-flow redundancy hits *)
let total_cell = 128 (* total hits: schedule-independent *)
let table_base = 256
let tids_base = table_base + table_slots

let build ~n_contexts ~grain:_ ~scale =
  let open Vm.Builder in
  let n_packets = int_of_float (3_000.0 *. scale) in
  let flows = 64 in
  let workers = Stdlib.max 1 (n_contexts - 1) in
  let input = Inputs.packet_trace ~n:n_packets ~flows in
  let worker = proc "worker" in
  let loop = fresh_label worker and done_ = fresh_label worker in
  bind worker loop;
  (* claim the next packet with the ticket counter *)
  atomic worker ~var:(fun _ -> 0) ~dst:2 (fun ~old _ -> old + 1);
  if_to worker (fun r -> r.(2) >= n_packets) done_;
  (* fingerprint the payload outside the lock *)
  work_const worker 500 (fun env ->
      let i = Vm.Env.get env 2 in
      let flow = env.Vm.Env.file_read 0 ~off:(2 * i) in
      let payload = env.Vm.Env.file_read 0 ~off:((2 * i) + 1) in
      Vm.Env.set env 3 flow;
      Vm.Env.set env 4 (Workload.mix payload land (table_slots - 1)));
  (* medium critical section: probe and update the shared table *)
  lock_const worker 0;
  work_const worker 800 (fun env ->
      let flow = Vm.Env.get env 3 and fp = Vm.Env.get env 4 in
      let slot = table_base + fp in
      if env.Vm.Env.read slot = fp + 1 then
        (* redundancy hit: account it to the flow *)
        env.Vm.Env.write (counters_base + flow)
          (env.Vm.Env.read (counters_base + flow) + 1)
      else env.Vm.Env.write slot (fp + 1));
  unlock_const worker 0;
  goto worker loop;
  bind worker done_;
  exit_ worker;
  let main = proc "main" in
  Workload.spawn_workers main ~group:1 ~proc:"worker" ~n:workers
    ~tids_at:tids_base ();
  Workload.join_workers main ~n:workers ~tids_at:tids_base;
  (* Total redundancy: the sum over flows is invariant under scheduling
     even when fingerprints collide across flows. *)
  work_const main 128 (fun env ->
      let s = ref 0 in
      for f = 0 to 63 do
        s := !s + env.Vm.Env.read (counters_base + f)
      done;
      env.Vm.Env.write total_cell !s);
  exit_ main;
  program
    ~mem_words:(tids_base + workers + 1024)
    ~n_mutexes:1 ~n_atomics:1 ~n_groups:2 ~entry:"main"
    ~input_files:[ ("trace", input) ]
    [ finish main; finish worker ]

let spec =
  {
    Workload.name = "re";
    comp_size = "medium";
    sync_freq = "medium";
    crit_size = "medium";
    pattern = "packet processing, shared redundancy table";
    weights = None;
    build;
    digest =
      (fun r -> Workload.digest_cells r.Exec.State.final_mem ~lo:total_cell ~n:1);
  }
