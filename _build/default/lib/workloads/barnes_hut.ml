(* Memory layout: bodies (4 words each: x y z m) at [bodies_base];
   forces (1 word per body) after; tids after that. The "tree" is
   summarized as a per-step multipole word at [tree_word] that the force
   kernel reads, standing in for the serially built octree. *)

let tree_word = 0
let bodies_base = 16

let build ~n_contexts ~grain ~scale =
  let open Vm.Builder in
  let n_bodies = int_of_float (1_500.0 *. scale) in
  let steps = 5 in
  let workers =
    match grain with
    | Workload.Default -> n_contexts
    | Workload.Fine -> 2 * n_contexts
  in
  let forces_base = bodies_base + (4 * n_bodies) in
  let tids_base = forces_base + n_bodies in
  let input = Inputs.bodies ~n:n_bodies in
  let per_body_force = 2_000 in
  let worker = proc "worker" in
  (* r0 = worker id; r2 = step counter *)
  for_up worker ~reg:2 ~from:(fun _ -> 0) ~until:(fun _ -> steps) (fun () ->
      barrier worker 0 (* wait for the tree *);
      (* Force kernel in <= 32-body Work instructions. r3 = cursor,
         r4 = chunk end. *)
      set_reg worker 3 (fun r ->
          fst (Workload.chunk_bounds ~total:n_bodies ~parts:workers r.(0)));
      set_reg worker 4 (fun r ->
          snd (Workload.chunk_bounds ~total:n_bodies ~parts:workers r.(0)));
      while_ worker
        (fun r -> r.(3) < r.(4))
        (fun () ->
          work worker
            ~cost:(fun r -> per_body_force * Stdlib.min 32 (r.(4) - r.(3)))
            (fun env ->
              let lo = Vm.Env.get env 3 in
              let hi = Stdlib.min (Vm.Env.get env 4) (lo + 32) in
              let tree = env.Vm.Env.read tree_word in
              for b = lo to hi - 1 do
                let x = env.Vm.Env.read (bodies_base + (4 * b)) in
                let m = env.Vm.Env.read (bodies_base + (4 * b) + 3) in
                let f = Workload.mix (x + (m * 131) + tree) land 0xFF in
                env.Vm.Env.write (forces_base + b) (f - 128)
              done);
          set_reg worker 3 (fun r -> Stdlib.min r.(4) (r.(3) + 32)));
      barrier worker 1 (* forces done *));
  exit_ worker;
  let main = proc "main" in
  (* load bodies from the input file *)
  work_const main (n_bodies * 4) (fun env ->
      for k = 0 to (4 * n_bodies) - 1 do
        env.Vm.Env.write (bodies_base + k) (env.Vm.Env.file_read 0 ~off:k)
      done);
  Workload.spawn_workers main ~group:1 ~proc:"worker" ~n:workers
    ~tids_at:tids_base ();
  for_up main ~reg:2 ~from:(fun _ -> 0) ~until:(fun _ -> steps) (fun () ->
      (* serial tree build *)
      work main
        ~cost:(fun _ -> 5 * n_bodies)
        (fun env ->
          let acc = ref 0 in
          for b = 0 to n_bodies - 1 do
            acc := (!acc * 31) + env.Vm.Env.read (bodies_base + (4 * b)) land 0xFFFF
          done;
          env.Vm.Env.write tree_word !acc);
      barrier main 0;
      barrier main 1;
      (* serial position update from forces *)
      work main
        ~cost:(fun _ -> 3 * n_bodies)
        (fun env ->
          for b = 0 to n_bodies - 1 do
            let x = env.Vm.Env.read (bodies_base + (4 * b)) in
            let f = env.Vm.Env.read (forces_base + b) in
            env.Vm.Env.write (bodies_base + (4 * b)) (x + f)
          done));
  Workload.join_workers main ~n:workers ~tids_at:tids_base;
  exit_ main;
  program
    ~mem_words:(tids_base + workers + 1024)
    ~barrier_parties:[| workers + 1; workers + 1 |]
    ~n_groups:2 ~entry:"main"
    ~input_files:[ ("bodies", input) ]
    [ finish main; finish worker ]

let spec =
  {
    Workload.name = "barnes-hut";
    comp_size = "large";
    sync_freq = "low";
    crit_size = "n/a";
    pattern = "barrier-phased N-body";
    weights = None;
    build;
    digest =
      (fun r -> Workload.digest_cells r.Exec.State.final_mem ~lo:bodies_base ~n:512);
  }
