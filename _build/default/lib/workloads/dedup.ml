let block_words = 40
let hash_slots = 2048

(* Memory layout. *)
let qa_base = 0
let qa = { Fifo.base = qa_base; cap = 4; width = 2; mutex = 0; not_full = 0; not_empty = 1 }
let qb_base = qa_base + Fifo.words ~cap:4 ~width:2
let qb = { Fifo.base = qb_base; cap = 16; width = 2; mutex = 1; not_full = 2; not_empty = 3 }
let qc_base = qb_base + Fifo.words ~cap:16 ~width:2
let qc = { Fifo.base = qc_base; cap = 16; width = 3; mutex = 2; not_full = 4; not_empty = 5 }
let qd_base = qc_base + Fifo.words ~cap:16 ~width:3
let qd = { Fifo.base = qd_base; cap = 16; width = 3; mutex = 3; not_full = 6; not_empty = 7 }
let hash_base = qd_base + Fifo.words ~cap:16 ~width:3
let tids_base = hash_base + hash_slots

let hash_mutex = 4

let build ~n_contexts ~grain:_ ~scale =
  let open Vm.Builder in
  let n_blocks = Stdlib.max 1 (int_of_float (16.0 *. scale)) in
  let n_chunks = n_blocks * block_words in
  let par = Stdlib.max 1 ((n_contexts - 3) / 2) in
  let input = Inputs.blocks_file ~n:n_chunks in

  (* --- reader: blocks into FIFO A ----------------------------------- *)
  let reader = proc "reader" in
  for_up reader ~reg:2 ~from:(fun _ -> 0) ~until:(fun _ -> n_blocks) (fun () ->
      alloc reader ~size:(fun _ -> block_words) ~dst:11;
      work_const reader (2 * block_words) (fun env ->
          let idx = Vm.Env.get env 2 and buf = Vm.Env.get env 11 in
          for k = 0 to block_words - 1 do
            env.Vm.Env.write (buf + k)
              (env.Vm.Env.file_read 0 ~off:((idx * block_words) + k))
          done;
          Vm.Env.set env 10 idx);
      Fifo.emit_push reader qa ~payload_reg:10);
  set_reg reader 10 (fun _ -> -1);
  set_reg reader 11 (fun _ -> 0);
  Fifo.emit_push reader qa ~payload_reg:10;
  exit_ reader;

  (* --- chunker: split blocks into word-chunks into FIFO B ------------ *)
  let chunker = proc "chunker" in
  let ch_loop = fresh_label chunker and ch_done = fresh_label chunker in
  bind chunker ch_loop;
  Fifo.emit_pop chunker qa ~payload_reg:10;
  if_to chunker (fun r -> r.(10) < 0) ch_done;
  for_up chunker ~reg:3 ~from:(fun _ -> 0) ~until:(fun _ -> block_words) (fun () ->
      work_const chunker 10 (fun env ->
          let blk = Vm.Env.get env 10
          and buf = Vm.Env.get env 11
          and k = Vm.Env.get env 3 in
          Vm.Env.set env 14 ((blk * block_words) + k);
          Vm.Env.set env 15 (env.Vm.Env.read (buf + k)));
      (* payload regs 14,15 = chunk idx, value *)
      Fifo.emit_push chunker qb ~payload_reg:14);
  free chunker (fun r -> r.(11));
  goto chunker ch_loop;
  bind chunker ch_done;
  for_up chunker ~reg:3 ~from:(fun _ -> 0) ~until:(fun _ -> par) (fun () ->
      set_reg chunker 14 (fun _ -> -1);
      set_reg chunker 15 (fun _ -> 0);
      Fifo.emit_push chunker qb ~payload_reg:14);
  exit_ chunker;

  (* --- hashers: dedup against the shared hash set -------------------- *)
  let hasher = proc "hasher" in
  let h_loop = fresh_label hasher and h_done = fresh_label hasher in
  bind hasher h_loop;
  Fifo.emit_pop hasher qb ~payload_reg:10;
  if_to hasher (fun r -> r.(10) < 0) h_done;
  compute hasher 200 (* chunk fingerprint *);
  lock_const hasher hash_mutex;
  work_const hasher 60 (fun env ->
      (* open-addressing insert of the value; r12 = 1 when duplicate *)
      let v = Vm.Env.get env 11 in
      let rec probe i guard =
        if guard = 0 then Vm.Env.set env 12 0
        else
          let slot = hash_base + ((Workload.mix v + i) mod hash_slots) in
          let cur = env.Vm.Env.read slot in
          if cur = v + 1 then Vm.Env.set env 12 1
          else if cur = 0 then begin
            env.Vm.Env.write slot (v + 1);
            Vm.Env.set env 12 0
          end
          else probe (i + 1) (guard - 1)
      in
      probe 0 hash_slots);
  unlock_const hasher hash_mutex;
  Fifo.emit_push hasher qc ~payload_reg:10;
  goto hasher h_loop;
  bind hasher h_done;
  set_reg hasher 10 (fun _ -> -1);
  Fifo.emit_push hasher qc ~payload_reg:10;
  exit_ hasher;

  (* --- compressors: encode unique chunks ----------------------------- *)
  let comp = proc "comp" in
  let c_loop = fresh_label comp and c_done = fresh_label comp in
  bind comp c_loop;
  Fifo.emit_pop comp qc ~payload_reg:10;
  if_to comp (fun r -> r.(10) < 0) c_done;
  (* Duplicates are cheap (a reference), unique chunks pay the encoder;
     the emitted code is a pure function of the value either way, so the
     output is canonical under any schedule. *)
  work comp
    ~cost:(fun r -> if r.(12) = 1 then 50 else 400)
    (fun env ->
      let v = Vm.Env.get env 11 in
      Vm.Env.set env 11 (Workload.mix v land 0xFFFF));
  Fifo.emit_push comp qd ~payload_reg:10;
  goto comp c_loop;
  bind comp c_done;
  set_reg comp 10 (fun _ -> -1);
  Fifo.emit_push comp qd ~payload_reg:10;
  exit_ comp;

  (* --- writer: the dominant serial stage ----------------------------- *)
  let writer = proc "writer" in
  set_reg writer 4 (fun _ -> 0) (* poisons seen *);
  set_reg writer 5 (fun _ -> 0) (* chunks written *);
  let w_loop = fresh_label writer and w_done = fresh_label writer in
  bind writer w_loop;
  if_to writer (fun r -> r.(5) >= n_chunks && r.(4) >= par) w_done;
  Fifo.emit_pop writer qd ~payload_reg:10;
  let w_poison = fresh_label writer and w_next = fresh_label writer in
  if_to writer (fun r -> r.(10) < 0) w_poison;
  work_const writer 120 (fun env ->
      let idx = Vm.Env.get env 10 and enc = Vm.Env.get env 11 in
      env.Vm.Env.file_write 1 ~off:idx enc;
      Vm.Env.set env 5 (Vm.Env.get env 5 + 1));
  goto writer w_next;
  bind writer w_poison;
  set_reg writer 4 (fun r -> r.(4) + 1);
  bind writer w_next;
  goto writer w_loop;
  bind writer w_done;
  exit_ writer;

  (* --- main ----------------------------------------------------------- *)
  let main = proc "main" in
  let put_tid slot =
    work_const main 1 (fun env -> env.Vm.Env.write (tids_base + slot) (Vm.Env.get env 1))
  in
  fork main ~group:0 ~proc:"reader" ~dst:1 (fun _ -> [||]);
  put_tid 0;
  fork main ~group:1 ~proc:"chunker" ~dst:1 (fun _ -> [||]);
  put_tid 1;
  for i = 0 to par - 1 do
    fork main ~group:2 ~proc:"hasher" ~dst:1 (fun _ -> [||]);
    put_tid (2 + i)
  done;
  for i = 0 to par - 1 do
    fork main ~group:3 ~proc:"comp" ~dst:1 (fun _ -> [||]);
    put_tid (2 + par + i)
  done;
  fork main ~group:4 ~proc:"writer" ~dst:1 (fun _ -> [||]);
  put_tid (2 + (2 * par));
  Workload.join_workers main ~n:(3 + (2 * par)) ~tids_at:tids_base;
  exit_ main;
  program
    ~mem_words:(tids_base + (3 + (2 * par)) + 65_536)
    ~reserved_words:(tids_base + 3 + (2 * par))
    ~n_mutexes:5 ~n_condvars:8 ~n_groups:5
    ~group_weights:[| 2; 2; 2; 2; 1 |] ~entry:"main"
    ~input_files:[ ("archive", input) ]
    ~output_files:[ "deduped" ]
    [ finish main; finish reader; finish chunker; finish hasher; finish comp; finish writer ]

let spec =
  {
    Workload.name = "dedup";
    comp_size = "small";
    sync_freq = "high";
    crit_size = "small";
    pattern = "5-stage pipeline, serial output stage dominates";
    weights = Some [| 2; 2; 2; 2; 1 |];
    build;
    digest = Workload.digest_outputs;
  }
