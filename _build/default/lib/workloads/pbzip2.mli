(** Pbzip2: the paper's running example (Fig. 6/7).

    A three-stage pipeline — one read thread, several compress threads,
    one write thread — communicating through two lock-protected FIFOs
    with condition-variable wait/signal. Round-robin ordering serializes
    it (the paper measures 1014% overhead); the balance-aware schedule
    restores the pipeline; the weighted schedule (4:4:1) does better
    still.

    Compression is run-length encoding of the block words; each block's
    output goes to a fixed region of the output file ([pwrite]-style), so
    the digest is schedule-independent. *)

val spec : Workload.spec
