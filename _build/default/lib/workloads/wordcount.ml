let vocab = 128
let global_base = 0
let tids_base = 200
let locals_base = 300

let build ~n_contexts ~grain ~scale =
  let open Vm.Builder in
  let n_items = int_of_float (60_000.0 *. scale) in
  let workers =
    match grain with
    | Workload.Default -> n_contexts
    | Workload.Fine -> n_contexts (* already fine-grained (paper §4) *)
  in
  let input = Inputs.words_file ~n:n_items ~vocabulary:vocab in
  let block = 4096 in
  let worker = proc "worker" in
  set_reg worker 2 (fun r -> fst (Workload.chunk_bounds ~total:n_items ~parts:workers r.(0)));
  set_reg worker 3 (fun r -> snd (Workload.chunk_bounds ~total:n_items ~parts:workers r.(0)));
  while_ worker
    (fun r -> r.(2) < r.(3))
    (fun () ->
      work worker
        ~cost:(fun r -> 6 * Stdlib.min block (r.(3) - r.(2)))
        (fun env ->
          let w = Vm.Env.get env 0 in
          let lo = Vm.Env.get env 2 in
          let hi = Stdlib.min (Vm.Env.get env 3) (lo + block) in
          let mine = locals_base + (w * vocab) in
          for i = lo to hi - 1 do
            let v = env.Vm.Env.file_read 0 ~off:i in
            env.Vm.Env.write (mine + v) (env.Vm.Env.read (mine + v) + 1)
          done);
      set_reg worker 2 (fun r -> Stdlib.min r.(3) (r.(2) + block)));
  (* locked reduce: fold the private table into the global counts *)
  lock_const worker 0;
  work_const worker (vocab * 3) (fun env ->
      let w = Vm.Env.get env 0 in
      let mine = locals_base + (w * vocab) in
      for v = 0 to vocab - 1 do
        let c = env.Vm.Env.read (mine + v) in
        if c > 0 then
          env.Vm.Env.write (global_base + v) (env.Vm.Env.read (global_base + v) + c)
      done);
  unlock_const worker 0;
  exit_ worker;
  let main = proc "main" in
  Workload.spawn_workers main ~group:1 ~proc:"worker" ~n:workers
    ~tids_at:tids_base ();
  Workload.join_workers main ~n:workers ~tids_at:tids_base;
  exit_ main;
  program
    ~mem_words:(locals_base + ((workers + 1) * vocab) + 1024)
    ~n_mutexes:1 ~n_groups:2 ~entry:"main"
    ~input_files:[ ("text", input) ]
    [ finish main; finish worker ]

let spec =
  {
    Workload.name = "wordcount";
    comp_size = "small";
    sync_freq = "low";
    crit_size = "small";
    pattern = "map + locked reduce";
    weights = None;
    build;
    digest =
      (fun r -> Workload.digest_cells r.Exec.State.final_mem ~lo:global_base ~n:vocab);
  }
