(** Histogram (Phoenix suite): fork/join data-parallel binning.

    Table 2: small computations, low synchronization frequency, no
    critical sections. Workers bin a chunk of the input file into private
    bin arrays; main merges them after the joins. Final bins live at
    memory 0..63, which the digest covers. *)

val spec : Workload.spec
