(** ReverseIndex (Phoenix suite): mixed parallelism.

    Table 2: small computations, medium synchronization frequency, small
    critical sections. The paper notes it mixes both styles: data-parallel
    document scanning {e and} critical sections — workers scan chunks of
    documents, then insert each discovered link into a shared index whose
    buckets are guarded by per-bucket mutexes (a dynamic lock choice,
    exercising dynamic mutex operands). Bucket counts are commutative and
    feed the digest. *)

val spec : Workload.spec
