lib/workloads/swaptions.mli: Workload
