lib/workloads/inputs.mli:
