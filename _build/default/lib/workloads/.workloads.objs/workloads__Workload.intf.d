lib/workloads/workload.mli: Exec Vm
