lib/workloads/histogram.mli: Workload
