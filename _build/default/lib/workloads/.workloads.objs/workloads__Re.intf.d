lib/workloads/re.mli: Workload
