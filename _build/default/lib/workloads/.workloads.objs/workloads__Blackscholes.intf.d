lib/workloads/blackscholes.mli: Workload
