lib/workloads/dedup.ml: Array Fifo Inputs Stdlib Vm Workload
