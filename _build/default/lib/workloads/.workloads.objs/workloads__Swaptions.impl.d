lib/workloads/swaptions.ml: Array Exec Stdlib Vm Workload
