lib/workloads/reverse_index.mli: Workload
