lib/workloads/fifo.ml: Array Vm
