lib/workloads/canneal.ml: Exec Inputs Vm Workload
