lib/workloads/canneal.mli: Workload
