lib/workloads/histogram.ml: Array Exec Inputs Stdlib Vm Workload
