lib/workloads/reverse_index.ml: Array Exec Inputs Vm Workload
