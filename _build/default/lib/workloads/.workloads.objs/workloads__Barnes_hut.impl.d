lib/workloads/barnes_hut.ml: Array Exec Inputs Stdlib Vm Workload
