lib/workloads/dedup.mli: Workload
