lib/workloads/workload.ml: Array Char Exec List Printf Stdlib String Vm
