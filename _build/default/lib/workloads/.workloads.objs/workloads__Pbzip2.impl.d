lib/workloads/pbzip2.ml: Array Fifo Inputs Stdlib Vm Workload
