lib/workloads/suite.mli: Workload
