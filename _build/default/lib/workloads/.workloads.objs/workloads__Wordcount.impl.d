lib/workloads/wordcount.ml: Array Exec Inputs Stdlib Vm Workload
