lib/workloads/barnes_hut.mli: Workload
