lib/workloads/wordcount.mli: Workload
