lib/workloads/pbzip2.mli: Workload
