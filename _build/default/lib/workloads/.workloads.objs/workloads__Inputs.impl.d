lib/workloads/inputs.ml: Array Fun Sim Stdlib Workload
