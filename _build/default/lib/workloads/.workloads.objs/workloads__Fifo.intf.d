lib/workloads/fifo.mli: Vm
