lib/workloads/suite.ml: Barnes_hut Blackscholes Canneal Dedup Histogram List Pbzip2 Printf Re Reverse_index String Swaptions Wordcount Workload
