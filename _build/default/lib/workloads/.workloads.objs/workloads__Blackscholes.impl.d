lib/workloads/blackscholes.ml: Array Exec Inputs Vm Workload
