lib/workloads/re.ml: Array Exec Inputs Stdlib Vm Workload
