let results_base = 0
let n_swaptions = 128
let tids_base = results_base + n_swaptions + 8

let trials_chunk = 500

(* One Monte-Carlo chunk: a deterministic reduction over mixed trial
   values for trials [t0, t0+len). Pure, so replay after a squash
   reproduces the partial sum. *)
let simulate_chunk ~swaption ~t0 ~len ~acc =
  let acc = ref acc in
  for t = t0 + 1 to t0 + len do
    let draw = Workload.mix ((swaption * 65_537) + t) in
    acc := !acc + (draw land 0xFFFF) - 0x7FFF
  done;
  !acc

let finalize ~swaption ~trials acc = (acc / trials) + (1000 * swaption mod 7919)

let build ~n_contexts ~grain ~scale =
  let open Vm.Builder in
  let trials = Stdlib.max trials_chunk (int_of_float (20_000.0 *. scale)) in
  let n_chunks = (trials + trials_chunk - 1) / trials_chunk in
  (* Default: one thread per context, each pricing a range of swaptions.
     Fine: one thread per swaption (the paper's 130 sub-threads). *)
  let workers =
    match grain with
    | Workload.Default -> Stdlib.min n_swaptions n_contexts
    | Workload.Fine -> n_swaptions
  in
  let per_trial_cost = 60 in
  let worker = proc "worker" in
  (* r2 = swaption cursor, r3 = end, r4 = chunk index, r5 = accumulator *)
  set_reg worker 2 (fun r ->
      fst (Workload.chunk_bounds ~total:n_swaptions ~parts:workers r.(0)));
  set_reg worker 3 (fun r ->
      snd (Workload.chunk_bounds ~total:n_swaptions ~parts:workers r.(0)));
  while_ worker
    (fun r -> r.(2) < r.(3))
    (fun () ->
      set_reg worker 5 (fun _ -> 0);
      for_up worker ~reg:4 ~from:(fun _ -> 0) ~until:(fun _ -> n_chunks) (fun () ->
          work worker
            ~cost:(fun r ->
              let t0 = r.(4) * trials_chunk in
              per_trial_cost * Stdlib.min trials_chunk (trials - t0))
            (fun env ->
              let s = Vm.Env.get env 2 in
              let t0 = Vm.Env.get env 4 * trials_chunk in
              let len = Stdlib.min trials_chunk (trials - t0) in
              Vm.Env.set env 5
                (simulate_chunk ~swaption:s ~t0 ~len ~acc:(Vm.Env.get env 5))));
      work_const worker 50 (fun env ->
          let s = Vm.Env.get env 2 in
          env.Vm.Env.write (results_base + s)
            (finalize ~swaption:s ~trials (Vm.Env.get env 5)));
      set_reg worker 2 (fun r -> r.(2) + 1));
  exit_ worker;
  let main = proc "main" in
  Workload.spawn_workers main ~group:1 ~proc:"worker" ~n:workers
    ~tids_at:tids_base ();
  Workload.join_workers main ~n:workers ~tids_at:tids_base;
  exit_ main;
  program
    ~mem_words:(tids_base + workers + 1024)
    ~n_groups:2 ~entry:"main" [ finish main; finish worker ]

let spec =
  {
    Workload.name = "swaptions";
    comp_size = "large";
    sync_freq = "low";
    crit_size = "n/a";
    pattern = "fork/join, few huge computations";
    weights = None;
    build;
    digest =
      (fun r ->
        Workload.digest_cells r.Exec.State.final_mem ~lo:results_base ~n:n_swaptions);
  }
