let words_file ~n ~vocabulary =
  let g = Sim.Prng.create 0xC0FFEE in
  Array.init n (fun _ ->
      (* Squaring a uniform skews toward low ids, a cheap Zipf stand-in. *)
      let u = Sim.Prng.float g 1.0 in
      let z = int_of_float (u *. u *. float_of_int vocabulary) in
      Stdlib.min (vocabulary - 1) z)

let blocks_file ~n =
  let g = Sim.Prng.create 0xB10C5 in
  let out = Array.make n 0 in
  let i = ref 0 in
  while !i < n do
    let run = 1 + Sim.Prng.int g 9 in
    let v = Sim.Prng.int g 256 in
    let stop = Stdlib.min n (!i + run) in
    for j = !i to stop - 1 do
      out.(j) <- v
    done;
    i := stop
  done;
  out

let packet_trace ~n ~flows =
  let g = Sim.Prng.create 0x9AC4E7 in
  let payloads = Array.init flows (fun i -> Workload.mix (i + 17) land 0xFFFF) in
  Array.init (2 * n) (fun k ->
      if k mod 2 = 0 then Sim.Prng.int g flows
      else begin
        let flow = Sim.Prng.int g flows in
        (* Payloads repeat within flows: redundancy for RE to find. *)
        if Sim.Prng.int g 4 = 0 then Workload.mix k land 0xFFFF
        else payloads.(flow)
      end)

let bodies ~n =
  let g = Sim.Prng.create 0xB0D1E5 in
  Array.init (4 * n) (fun k ->
      if k mod 4 = 3 then 1 + Sim.Prng.int g 100 (* mass *)
      else Sim.Prng.int g 10_000 - 5_000 (* coordinate *))

let prices ~n =
  let g = Sim.Prng.create 0x5715E5 in
  Array.init (4 * n) (fun k ->
      match k mod 4 with
      | 0 -> 800 + Sim.Prng.int g 400 (* spot, fixed-point cents *)
      | 1 -> 800 + Sim.Prng.int g 400 (* strike *)
      | 2 -> 10 + Sim.Prng.int g 50 (* volatility, % *)
      | _ -> 1 + Sim.Prng.int g 24 (* expiry, months *))

let elements ~n =
  let g = Sim.Prng.create 0xCA22EA1 in
  let a = Array.init n Fun.id in
  Sim.Prng.shuffle g a;
  a
