(** RE (redundancy elimination, SIGMETRICS'09): packet processing.

    Table 2: medium computations, medium synchronization frequency, and
    the {e medium-sized critical sections} the paper added RE for
    (standard benchmarks have only small ones). Threads claim packets
    from the trace with an atomic ticket counter, fingerprint the payload
    outside the lock, then probe-and-update the shared redundancy table
    inside one lock-protected region. Per-flow hit/byte counters are
    commutative, so the digest is schedule-independent. *)

val spec : Workload.spec
