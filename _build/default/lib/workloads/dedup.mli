(** Dedup (PARSEC): five-stage deduplicating compression pipeline.

    Table 2: small computations, high synchronization frequency, and by
    far the most sub-threads of the suite — the workload where GPRS's
    per-sub-thread bookkeeping is most visible (the paper reports 32%
    ordering overhead and notes that CPR's barriers are comparatively
    cheap here because the serial output stage dominates scaling).

    Stages: read → chunk → hash (parallel, shared hash-set under a lock)
    → compress (parallel) → write (serial, the scaling bottleneck).
    Duplicate chunks are emitted as zero-references. *)

val spec : Workload.spec
