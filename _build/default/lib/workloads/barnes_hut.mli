(** Barnes-Hut: iterative barrier-phased N-body.

    Table 2: large computations, low synchronization frequency. Each
    timestep alternates a serial tree build (main) with a parallel force
    phase (workers) separated by global barriers — the classic
    bulk-synchronous shape. Positions after the last step feed the
    digest. *)

val spec : Workload.spec
