let bins = 64
let final_base = 0
let tids_base = 100
let locals_base = 200

let build ~n_contexts ~grain ~scale =
  let open Vm.Builder in
  let n_items = int_of_float (80_000.0 *. scale) in
  let workers =
    match grain with
    | Workload.Default -> n_contexts
    | Workload.Fine -> n_contexts (* already fine-grained (paper §4) *)
  in
  let input = Inputs.words_file ~n:n_items ~vocabulary:4096 in
  let block = 4096 in
  let worker = proc "worker" in
  (* r0 = worker index; the chunk scan proceeds in <= [block]-item Work
     instructions (loop granularity: quanta and checkpoints interleave). *)
  set_reg worker 2 (fun r -> fst (Workload.chunk_bounds ~total:n_items ~parts:workers r.(0)));
  set_reg worker 3 (fun r -> snd (Workload.chunk_bounds ~total:n_items ~parts:workers r.(0)));
  while_ worker
    (fun r -> r.(2) < r.(3))
    (fun () ->
      work worker
        ~cost:(fun r -> 8 * Stdlib.min block (r.(3) - r.(2)))
        (fun env ->
          let w = Vm.Env.get env 0 in
          let lo = Vm.Env.get env 2 in
          let hi = Stdlib.min (Vm.Env.get env 3) (lo + block) in
          let mine = locals_base + (w * bins) in
          for i = lo to hi - 1 do
            let v = env.Vm.Env.file_read 0 ~off:i in
            let b = v * bins / 4096 in
            env.Vm.Env.write (mine + b) (env.Vm.Env.read (mine + b) + 1)
          done);
      set_reg worker 2 (fun r -> Stdlib.min r.(3) (r.(2) + block)));
  exit_ worker;
  let main = proc "main" in
  Workload.spawn_workers main ~group:1 ~proc:"worker" ~n:workers
    ~tids_at:tids_base ();
  Workload.join_workers main ~n:workers ~tids_at:tids_base;
  work_const main (workers * bins * 2) (fun env ->
      for b = 0 to bins - 1 do
        let s = ref 0 in
        for w = 0 to workers - 1 do
          s := !s + env.Vm.Env.read (locals_base + (w * bins) + b)
        done;
        env.Vm.Env.write (final_base + b) !s
      done);
  exit_ main;
  program
    ~mem_words:(locals_base + ((workers + 1) * bins) + 1024)
    ~n_groups:2 ~entry:"main"
    ~input_files:[ ("pixels", input) ]
    [ finish main; finish worker ]

let spec =
  {
    Workload.name = "histogram";
    comp_size = "small";
    sync_freq = "low";
    crit_size = "n/a";
    pattern = "fork/join data-parallel";
    weights = None;
    build;
    digest =
      (fun r -> Workload.digest_cells r.Exec.State.final_mem ~lo:final_base ~n:bins);
  }
