(** The full benchmark suite (the paper's Table 2 programs). *)

val all : Workload.spec list
(** In the paper's Table 2 order: Barnes-Hut, Blackscholes, Canneal,
    Swaptions, Histogram, Pbzip2, Dedup, RE, WordCount, ReverseIndex. *)

val find : string -> Workload.spec
(** Lookup by name; raises [Invalid_argument] with the list of known
    names on a miss. *)

val names : string list
