(** Lock-protected bounded FIFO emitter.

    The communication idiom of the paper's pipeline benchmarks (Pbzip2's
    read→compress and compress→write queues, Dedup's inter-stage queues):
    a circular buffer in shared memory guarded by one mutex and a pair of
    condition variables (not-full / not-empty), with the
    while-predicate-wait pattern.

    [emit_push]/[emit_pop] generate the instruction sequences into a
    procedure. Payloads are [width] consecutive registers starting at
    [payload_reg]. Registers 20–21 are clobbered as scratch. *)

type t = {
  base : int;  (** first memory word: layout is count, head, tail, slots *)
  cap : int;  (** capacity in entries *)
  width : int;  (** payload words per entry *)
  mutex : int;
  not_full : int;  (** condvar signalled after a pop *)
  not_empty : int;  (** condvar signalled after a push *)
}

val words : cap:int -> width:int -> int
(** Memory footprint of a queue: [3 + cap*width]. *)

val emit_push : Vm.Builder.proc_builder -> t -> payload_reg:int -> unit
(** Blocks (cond-wait) while full; copies the payload registers into the
    tail slot; signals [not_empty]. *)

val emit_pop : Vm.Builder.proc_builder -> t -> payload_reg:int -> unit
(** Blocks while empty; copies the head slot into the payload registers;
    signals [not_full]. *)
