type t = {
  base : int;
  cap : int;
  width : int;
  mutex : int;
  not_full : int;
  not_empty : int;
}

let words ~cap ~width = 3 + (cap * width)

let count q = q.base
let head q = q.base + 1
let tail q = q.base + 2
let slots q = q.base + 3

let scratch = 20

(* while (pred-of-count fails) cond_wait; — the standard predicate loop. *)
let emit_guard b q ~cond ~cv =
  let open Vm.Builder in
  let top = fresh_label b and go = fresh_label b in
  bind b top;
  work_const b 5 (fun env -> Vm.Env.set env scratch (env.Vm.Env.read (count q)));
  if_to b (fun r -> cond r.(scratch)) go;
  cond_wait b ~c:cv ~m:q.mutex;
  goto b top;
  bind b go

let emit_push b q ~payload_reg =
  let open Vm.Builder in
  lock_const b q.mutex;
  emit_guard b q ~cond:(fun c -> c < q.cap) ~cv:q.not_full;
  work_const b 20 (fun env ->
      let t = env.Vm.Env.read (tail q) in
      for k = 0 to q.width - 1 do
        env.Vm.Env.write (slots q + (t * q.width) + k) (Vm.Env.get env (payload_reg + k))
      done;
      env.Vm.Env.write (tail q) ((t + 1) mod q.cap);
      env.Vm.Env.write (count q) (env.Vm.Env.read (count q) + 1));
  cond_signal b q.not_empty;
  unlock_const b q.mutex

let emit_pop b q ~payload_reg =
  let open Vm.Builder in
  lock_const b q.mutex;
  emit_guard b q ~cond:(fun c -> c > 0) ~cv:q.not_empty;
  work_const b 20 (fun env ->
      let h = env.Vm.Env.read (head q) in
      for k = 0 to q.width - 1 do
        Vm.Env.set env (payload_reg + k) (env.Vm.Env.read (slots q + (h * q.width) + k))
      done;
      env.Vm.Env.write (head q) ((h + 1) mod q.cap);
      env.Vm.Env.write (count q) (env.Vm.Env.read (count q) - 1));
  cond_signal b q.not_full;
  unlock_const b q.mutex
