let block_words = 64
let out_slot = (2 * block_words) + 2

(* Memory layout: two FIFOs then the tid table. *)
let fifo1_base = 0
let q1 = { Fifo.base = fifo1_base; cap = 8; width = 2; mutex = 0; not_full = 0; not_empty = 1 }
let fifo2_base = fifo1_base + 3 + (8 * 2)
let q2 = { Fifo.base = fifo2_base; cap = 8; width = 3; mutex = 1; not_full = 2; not_empty = 3 }
let tids_base = fifo2_base + 3 + (8 * 3)

let build ~n_contexts ~grain:_ ~scale =
  let open Vm.Builder in
  let n_blocks = int_of_float (120.0 *. scale) in
  let n_comp = Stdlib.max 1 (n_contexts - 2) in
  let input = Inputs.blocks_file ~n:(n_blocks * block_words) in

  (* --- read thread: file -> buffers -> FIFO1 ------------------------ *)
  let reader = proc "reader" in
  for_up reader ~reg:2 ~from:(fun _ -> 0) ~until:(fun _ -> n_blocks) (fun () ->
      alloc reader ~size:(fun _ -> block_words) ~dst:11;
      work_const reader (4 * block_words) (fun env ->
          let idx = Vm.Env.get env 2 and buf = Vm.Env.get env 11 in
          for k = 0 to block_words - 1 do
            env.Vm.Env.write (buf + k)
              (env.Vm.Env.file_read 0 ~off:((idx * block_words) + k))
          done;
          Vm.Env.set env 10 idx);
      Fifo.emit_push reader q1 ~payload_reg:10);
  (* poison pills, one per compressor *)
  for_up reader ~reg:2 ~from:(fun _ -> 0) ~until:(fun _ -> n_comp) (fun () ->
      set_reg reader 10 (fun _ -> -1);
      set_reg reader 11 (fun _ -> 0);
      Fifo.emit_push reader q1 ~payload_reg:10);
  exit_ reader;

  (* --- compress threads: FIFO1 -> RLE -> FIFO2 ---------------------- *)
  let compressor = proc "compressor" in
  let comp_loop = fresh_label compressor and comp_done = fresh_label compressor in
  bind compressor comp_loop;
  Fifo.emit_pop compressor q1 ~payload_reg:10;
  if_to compressor (fun r -> r.(10) < 0) comp_done;
  alloc compressor ~size:(fun _ -> out_slot) ~dst:12;
  (* Compression dominates a block's cost (bzip2 burns hundreds of cycles
     per byte); the FIFO critical sections stay small — Table 2's
     medium-computation / small-critical-section profile. *)
  work_const compressor (900 * block_words) (fun env ->
      let buf = Vm.Env.get env 11 and out = Vm.Env.get env 12 in
      (* run-length encode buf[0..B) into out[1..]; out[0] = length *)
      let o = ref 1 in
      let k = ref 0 in
      while !k < block_words do
        let v = env.Vm.Env.read (buf + !k) in
        let run = ref 1 in
        while !k + !run < block_words && env.Vm.Env.read (buf + !k + !run) = v do
          incr run
        done;
        env.Vm.Env.write (out + !o) v;
        env.Vm.Env.write (out + !o + 1) !run;
        o := !o + 2;
        k := !k + !run
      done;
      env.Vm.Env.write out (!o - 1);
      Vm.Env.set env 13 (!o - 1));
  free compressor (fun r -> r.(11));
  (* payload: r10 = idx, r11 = out addr, r12 = out len *)
  set_reg compressor 11 (fun r -> r.(12));
  set_reg compressor 12 (fun r -> r.(13));
  Fifo.emit_push compressor q2 ~payload_reg:10;
  goto compressor comp_loop;
  bind compressor comp_done;
  exit_ compressor;

  (* --- write thread: FIFO2 -> output file --------------------------- *)
  let writer = proc "writer" in
  for_up writer ~reg:2 ~from:(fun _ -> 0) ~until:(fun _ -> n_blocks) (fun () ->
      Fifo.emit_pop writer q2 ~payload_reg:10;
      work_const writer block_words (fun env ->
          let idx = Vm.Env.get env 10
          and out = Vm.Env.get env 11
          and len = Vm.Env.get env 12 in
          let off = idx * out_slot in
          env.Vm.Env.file_write 1 ~off len;
          for k = 1 to len do
            env.Vm.Env.file_write 1 ~off:(off + k) (env.Vm.Env.read (out + k))
          done);
      free writer (fun r -> r.(11)));
  exit_ writer;

  (* --- main ---------------------------------------------------------- *)
  let main = proc "main" in
  fork main ~group:0 ~proc:"reader" ~dst:1 (fun _ -> [||]);
  work_const main 1 (fun env -> env.Vm.Env.write tids_base (Vm.Env.get env 1));
  Workload.spawn_workers main ~group:1 ~proc:"compressor" ~n:n_comp
    ~tids_at:(tids_base + 1) ();
  fork main ~group:2 ~proc:"writer" ~dst:1 (fun _ -> [||]);
  work_const main 1 (fun env ->
      env.Vm.Env.write (tids_base + 1 + n_comp) (Vm.Env.get env 1));
  Workload.join_workers main ~n:(n_comp + 2) ~tids_at:tids_base;
  exit_ main;
  program
    ~mem_words:(tids_base + n_comp + 2 + 65_536 + (n_blocks * block_words))
    ~reserved_words:(tids_base + n_comp + 2)
    ~n_mutexes:2 ~n_condvars:4 ~n_groups:3 ~group_weights:[| 4; 4; 1 |]
    ~entry:"main"
    ~input_files:[ ("raw", input) ]
    ~output_files:[ "compressed" ]
    [ finish main; finish reader; finish compressor; finish writer ]

let spec =
  {
    Workload.name = "pbzip2";
    comp_size = "medium";
    sync_freq = "high";
    crit_size = "small";
    pattern = "read -> N x compress -> write pipeline";
    weights = Some [| 4; 4; 1 |];
    build;
    digest = Workload.digest_outputs;
  }
