(** The paper's analytic overhead model (§2.3–§2.4).

    Closed-form penalties of checkpoint-and-recovery schemes, used for
    Table 1's qualitative comparison and cross-checked against the
    simulator in the test suite. Notation follows the paper:

    - [t] — checkpoint interval / average sub-thread size (seconds)
    - [n] — hardware contexts; [nc] — communicating subset
    - [tc] — per-context coordination time; [ts] — state-recording time
    - [tw] — state-restore wait; [tr = t + tw] — total restart delay
    - [e] — exception rate (exceptions/second) *)

val cpr_checkpoint_penalty : t:float -> n:int -> tc:float -> ts:float -> float
(** [Pc = 1/t · n · (tc + ts)] — penalty in context-seconds per second. *)

val hw_checkpoint_penalty :
  t:float -> n:int -> nc:int -> tc:float -> ts:float -> float
(** Hardware proposals involve only communicating threads:
    [Pc = 1/t · nc · (tc + n/nc·ts)]. *)

val gprs_checkpoint_penalty : t:float -> n:int -> ts:float -> float
(** Ordering eliminates coordination: [Pc = 1/t · n · ts]. *)

val restart_delay : t:float -> tw:float -> float
(** [tr = t + tw]. *)

val cpr_restart_penalty : n:int -> e:float -> tr:float -> float
(** [Pr = n · e · tr]. *)

val hw_restart_penalty : nc:int -> e:float -> tr:float -> float
(** [Pr = nc · e · tr]. *)

val gprs_restart_penalty : e:float -> tr:float -> float
(** Selective restart: [Pr = e · tr]. *)

val gprs_ordering_penalty : t:float -> n:int -> tg:float -> float
(** [Pg = 1/t · n · tg]. *)

val cpr_max_rate : tr:float -> float
(** Completion bound [e <= 1/tr]. *)

val hw_max_rate : n:int -> nc:int -> tr:float -> float
(** [e <= n/nc · 1/tr]. *)

val gprs_max_rate : n:int -> tr:float -> float
(** [e <= n/tr] — the tipping rate scales with the system size, the
    paper's headline scalability claim (validated by Fig. 11). *)

(** {1 Table 1} *)

type related_work_row = {
  proposal : string;
  recovery : string;
  design : string;
  chkpt_cost : string;
  rec_cost : string;
  scalable : string;
  deterministic : string;
  det_cost : string;
}

val table1 : related_work_row list
(** The paper's Table 1 verbatim (qualitative). *)
