let cpr_checkpoint_penalty ~t ~n ~tc ~ts = 1.0 /. t *. float_of_int n *. (tc +. ts)

let hw_checkpoint_penalty ~t ~n ~nc ~tc ~ts =
  1.0 /. t *. float_of_int nc *. (tc +. (float_of_int n /. float_of_int nc *. ts))

let gprs_checkpoint_penalty ~t ~n ~ts = 1.0 /. t *. float_of_int n *. ts

let restart_delay ~t ~tw = t +. tw

let cpr_restart_penalty ~n ~e ~tr = float_of_int n *. e *. tr
let hw_restart_penalty ~nc ~e ~tr = float_of_int nc *. e *. tr
let gprs_restart_penalty ~e ~tr = e *. tr

let gprs_ordering_penalty ~t ~n ~tg = 1.0 /. t *. float_of_int n *. tg

let cpr_max_rate ~tr = 1.0 /. tr

let hw_max_rate ~n ~nc ~tr = float_of_int n /. float_of_int nc /. tr

let gprs_max_rate ~n ~tr = float_of_int n /. tr

type related_work_row = {
  proposal : string;
  recovery : string;
  design : string;
  chkpt_cost : string;
  rec_cost : string;
  scalable : string;
  deterministic : string;
  det_cost : string;
}

let table1 =
  [
    {
      proposal = "Rebound, ReViveI/O, ReVive, SafetyNet";
      recovery = "Yes";
      design = "Hardware";
      chkpt_cost = "High";
      rec_cost = "High";
      scalable = "No";
      deterministic = "No";
      det_cost = "N/A";
    };
    {
      proposal = "Bronevetsky et al., C3, BLCR, DMTCP-style";
      recovery = "User code";
      design = "Software";
      chkpt_cost = "High";
      rec_cost = "High";
      scalable = "No";
      deterministic = "No";
      det_cost = "N/A";
    };
    {
      proposal = "DMP, RCDC, Calvin";
      recovery = "No";
      design = "Hardware";
      chkpt_cost = "N/A";
      rec_cost = "N/A";
      scalable = "N/A";
      deterministic = "Yes";
      det_cost = "High";
    };
    {
      proposal = "dOS, CoreDet, Grace, DTHREADS, Kendo";
      recovery = "No";
      design = "Software";
      chkpt_cost = "N/A";
      rec_cost = "N/A";
      scalable = "N/A";
      deterministic = "Yes";
      det_cost = "High";
    };
    {
      proposal = "GPRS (this work)";
      recovery = "Full program";
      design = "Software";
      chkpt_cost = "Low";
      rec_cost = "Low";
      scalable = "Yes";
      deterministic = "Yes";
      det_cost = "Low";
    };
  ]
