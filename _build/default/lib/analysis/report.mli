(** ASCII rendering of experiment results.

    The experiment drivers return structured {!figure} values; this module
    prints them as the rows/series the paper's tables and figures report.
    Bars are execution times relative to the Pthreads baseline (1.00);
    DNC entries render as the paper prints them. *)

type bar = { label : string; value : float; dnc : bool }

type row = { row_name : string; bars : bar list }

type figure = {
  id : string;  (** e.g. ["Fig. 8a"] *)
  title : string;
  rows : row list;
  notes : string list;
}

val harmonic_mean : float list -> float
(** The paper reports harmonic means over per-program normalized times. *)

val hm_row : figure -> row option
(** Harmonic mean across rows, per bar label; [None] when rows have
    mismatched bars or any DNC (a DNC makes the mean meaningless). DNC
    bars are skipped per-label, as in the paper. *)

val render_figure : Format.formatter -> figure -> unit

val render_table :
  Format.formatter -> title:string -> header:string list -> string list list -> unit
(** Generic aligned table with a header rule. *)

val fmt_rel : float -> string
(** Two-decimal relative time, or ["DNC"] when infinite/NaN. *)

val render_bar_chart : Format.formatter -> figure -> unit
(** Horizontal ASCII bars, one per (row, bar), like the paper's grouped
    bar charts. Bars are clipped at 4.0x with a [">"] marker; DNC renders
    as a full clipped bar tagged [DNC]. *)
