lib/analysis/model.ml:
