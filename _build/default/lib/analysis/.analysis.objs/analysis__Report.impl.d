lib/analysis/report.ml: Array Float Format List Printf Stdlib String
