lib/analysis/report.mli: Format
