lib/analysis/experiments.ml: Array Cpr Exec Faults Format Gprs Hashtbl List Model Printf Report Sim Stdlib String Vm Workloads
