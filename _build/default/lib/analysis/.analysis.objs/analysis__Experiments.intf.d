lib/analysis/experiments.mli: Exec Format Gprs Report Vm Workloads
