lib/analysis/model.mli:
