type bar = { label : string; value : float; dnc : bool }
type row = { row_name : string; bars : bar list }

type figure = {
  id : string;
  title : string;
  rows : row list;
  notes : string list;
}

let harmonic_mean xs =
  match xs with
  | [] -> nan
  | _ ->
    let n = float_of_int (List.length xs) in
    n /. List.fold_left (fun acc x -> acc +. (1.0 /. x)) 0.0 xs

let hm_row fig =
  match fig.rows with
  | [] -> None
  | first :: _ ->
    let labels = List.map (fun b -> b.label) first.bars in
    let same_shape =
      List.for_all
        (fun r -> List.map (fun b -> b.label) r.bars = labels)
        fig.rows
    in
    if not same_shape then None
    else
      let bars =
        List.map
          (fun label ->
            let values =
              List.filter_map
                (fun r ->
                  match List.find_opt (fun b -> b.label = label) r.bars with
                  | Some b when not b.dnc -> Some b.value
                  | Some _ | None -> None)
                fig.rows
            in
            { label; value = harmonic_mean values; dnc = values = [] })
          labels
      in
      Some { row_name = "HM"; bars }

let fmt_rel v =
  if Float.is_nan v || v = infinity then "DNC" else Printf.sprintf "%.2f" v

let fmt_bar b = if b.dnc then "DNC" else Printf.sprintf "%.2f" b.value

let render_table ppf ~title ~header rows =
  let ncols = List.length header in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri
      (fun i c -> if i < ncols then widths.(i) <- Stdlib.max widths.(i) (String.length c))
      cells
  in
  measure header;
  List.iter measure rows;
  let pad i c =
    let w = if i < ncols then widths.(i) else String.length c in
    let fill = String.make (Stdlib.max 0 (w - String.length c)) ' ' in
    if i = 0 then c ^ fill else fill ^ c
  in
  let line cells =
    Format.fprintf ppf "%s@."
      (String.concat "  " (List.mapi pad cells))
  in
  Format.fprintf ppf "%s@." title;
  line header;
  Format.fprintf ppf "%s@."
    (String.make (Array.fold_left ( + ) (2 * (ncols - 1)) widths) '-');
  List.iter line rows

let render_bar_chart ppf fig =
  let clip = 4.0 in
  let width = 48 in
  Format.fprintf ppf "%s — %s@." fig.id fig.title;
  let name_w =
    List.fold_left
      (fun acc r ->
        List.fold_left
          (fun acc b ->
            Stdlib.max acc (String.length r.row_name + String.length b.label + 1))
          acc r.bars)
      8 fig.rows
  in
  List.iter
    (fun r ->
      List.iter
        (fun b ->
          let v = if b.dnc then clip else Float.min clip b.value in
          let n = int_of_float (v /. clip *. float_of_int width) in
          let clipped = b.dnc || b.value > clip in
          let label = r.row_name ^ "/" ^ b.label in
          Format.fprintf ppf "%-*s |%s%s %s@." name_w label
            (String.make (Stdlib.max 0 n) '#')
            (if clipped then ">" else "")
            (fmt_bar b))
        r.bars;
      Format.fprintf ppf "@.")
    fig.rows;
  Format.fprintf ppf "(scale: 0 .. %.1fx relative to Pthreads; # = %.3fx)@." clip
    (clip /. float_of_int width)

let render_figure ppf fig =
  let rows =
    fig.rows @ (match hm_row fig with Some r -> [ r ] | None -> [])
  in
  let header =
    "program"
    :: (match fig.rows with
       | r :: _ -> List.map (fun b -> b.label) r.bars
       | [] -> [])
  in
  let body =
    List.map (fun r -> r.row_name :: List.map fmt_bar r.bars) rows
  in
  render_table ppf ~title:(Printf.sprintf "%s — %s" fig.id fig.title) ~header body;
  List.iter (fun n -> Format.fprintf ppf "note: %s@." n) fig.notes
