(** Shared instruction semantics.

    State transitions for the virtual ISA, used by every engine so that
    architectural behaviour and cycle charges are identical across the
    Pthreads baseline, CPR and GPRS. The helpers mutate the machine state
    and report what the engine's scheduler must do (durations, threads to
    wake); they never touch the event queue or run queues themselves.

    Convention: the engine advances [pc] {e before} invoking a helper, so
    a thread that blocks resumes exactly after the blocking instruction
    when it is granted/woken. *)

val min_cost : int
(** Floor charged for any dispatched instruction (1 cycle), which also
    guarantees simulated-time progress for control-flow-only loops. *)

val exec_work :
  'ev State.t -> Vm.Tcb.t -> cost:(Vm.Isa.regs -> int) -> run:(Vm.Env.t -> unit) -> int
(** Runs the closure through the thread's tracked environment; returns the
    total duration (declared cost + tracked-access cycles). *)

val try_lock : 'ev State.t -> Vm.Tcb.t -> int -> bool * int
(** [(acquired, duration)]. On failure the thread is appended to the
    mutex's FIFO waiters with [wait = On_mutex]. Recursive acquisition by
    the holder is a workload bug and raises. *)

val unlock : 'ev State.t -> Vm.Tcb.t -> int -> int option * int
(** Releases; if a waiter exists, ownership transfers to the FIFO head,
    whose tid is returned already marked [Runnable] — the engine decides
    where to run it. *)

val cond_block : 'ev State.t -> Vm.Tcb.t -> c:int -> m:int -> int option * int
(** Condition wait: releases [m] (possibly transferring it, returned tid as
    in {!unlock}) and puts the thread to sleep on [c]. *)

val cond_wake :
  'ev State.t -> c:int -> all:bool -> (int * int) list * int list * int
(** Signal/broadcast: each woken sleeper attempts to reacquire its mutex —
    immediately becoming [Runnable] holder if free, otherwise joining the
    mutex waiters. Returns [(woken, runnable, duration)]: all woken
    sleepers as [(tid, mutex)] pairs, and the subset that became
    [Runnable]. A wake is a communication edge: GPRS opens a fresh
    sub-thread for each woken sleeper so its continuation is ordered
    {e after} the signal. *)

val barrier_arrive : 'ev State.t -> Vm.Tcb.t -> int -> int list * int
(** Returns the {e other} threads released (marked [Runnable]) if this
    arrival filled the barrier; the arriving thread itself is left
    [Runnable] on a fill and [On_barrier] otherwise. *)

val atomic_rmw :
  'ev State.t -> Vm.Tcb.t -> var:int -> rmw:(old:int -> Vm.Isa.regs -> int) -> dst:int -> int
(** Performs the RMW (tracked), stores the old value in [dst]; returns the
    duration. Used for both standard and non-standard atomics — the
    engines differ only in interception, not in effect. *)

val fork : 'ev State.t -> Vm.Tcb.t -> group:int -> proc:string -> args:(Vm.Isa.regs -> int array) -> dst:int -> Vm.Tcb.t * int
(** Creates the child TCB ([Runnable]; the engine enqueues it), writes the
    child tid into the parent's [dst]. Duration includes the OS
    thread-creation cost. *)

val join : 'ev State.t -> Vm.Tcb.t -> target:int -> bool * int
(** [true] if the target already exited (caller proceeds); otherwise the
    thread parks [On_join] and registers as a joiner. *)

val exit_thread : 'ev State.t -> Vm.Tcb.t -> int list * int
(** Marks the thread [Done]; returns joiners woken ([Runnable]). *)

val alloc : 'ev State.t -> Vm.Tcb.t -> size:(Vm.Isa.regs -> int) -> dst:int -> int * int
(** [(address, duration)]. *)

val free_ : 'ev State.t -> Vm.Tcb.t -> addr:(Vm.Isa.regs -> int) -> int * int
(** [(block_size, duration)]; the size is reported for WAL logging. *)
