lib/exec/sem.ml: Array List State Stdlib Vm
