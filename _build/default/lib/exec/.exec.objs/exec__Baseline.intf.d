lib/exec/baseline.mli: Sched State Vm
