lib/exec/undo_log.ml: Array Hashtbl List Vm
