lib/exec/state.ml: Array List Printf Sim Stdlib Undo_log Vm
