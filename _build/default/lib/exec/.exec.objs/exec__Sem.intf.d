lib/exec/sem.mli: State Vm
