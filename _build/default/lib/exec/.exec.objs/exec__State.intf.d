lib/exec/state.mli: Sim Undo_log Vm
