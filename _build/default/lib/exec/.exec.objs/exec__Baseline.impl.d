lib/exec/baseline.ml: Array Hashtbl List Printf Sched Sem Sim State Stdlib Vm
