lib/exec/undo_log.mli: Vm
