type key =
  | K_mem of int
  | K_atomic of int
  | K_file of int * int
  | K_file_len of int

type t = {
  mutable entries : (key * int) list;  (* newest first *)
  seen : (key, unit) Hashtbl.t;
}

let create () = { entries = []; seen = Hashtbl.create 64 }

let note t key ~old =
  if Hashtbl.mem t.seen key then false
  else begin
    Hashtbl.add t.seen key ();
    t.entries <- (key, old) :: t.entries;
    true
  end

let size t = Hashtbl.length t.seen
let is_empty t = t.entries = []

let apply_one ~mem ~atomics ~io (key, old) =
  match key with
  | K_mem a -> Vm.Mem.write mem a old
  | K_atomic v -> atomics.(v) <- old
  | K_file (f, off) -> Vm.Io.write io f ~off old
  | K_file_len f -> Vm.Io.truncate io f old

let replay ~mem ~atomics ~io t =
  let n = size t in
  List.iter (apply_one ~mem ~atomics ~io) t.entries;
  t.entries <- [];
  Hashtbl.reset t.seen;
  n

let keys t = List.map fst t.entries

let merge_newer ~older t =
  (* Entries are newest-first; fold the newer log's records under the
     older one's, keeping the older pre-image on conflicts. *)
  List.iter
    (fun (key, old) -> ignore (note older key ~old))
    (List.rev t.entries);
  t.entries <- [];
  Hashtbl.reset t.seen
