type alias =
  | Mutex of int
  | Atomic_var of int
  | Condvar of int
  | Barrier_obj of int
  | Thread_edge of int

type status = Running | Complete of int | Squashed

type t = {
  id : int;
  tid : int;
  started_at : int;
  mutable status : status;
  mutable aliases : alias list;
  mutable global_dep : bool;
  mutable cpr_region : bool;
  saved : Vm.Tcb.saved;
  mutable held_locks : int list;
  undo : Exec.Undo_log.t;
  mutable forked : int list;
  mutable pending_mutex : int option;
  mutable freed_blocks : (int * int) list;
}

let make ~id ~tid ~now ~saved =
  {
    id;
    tid;
    started_at = now;
    status = Running;
    aliases = [];
    global_dep = false;
    cpr_region = false;
    saved;
    held_locks = [];
    undo = Exec.Undo_log.create ();
    forked = [];
    pending_mutex = None;
    freed_blocks = [];
  }

let add_alias t a =
  match t.aliases with
  | hd :: _ when hd = a -> ()
  | _ -> t.aliases <- a :: t.aliases

let shares_alias a b =
  a.global_dep || b.global_dep
  || List.exists (fun x -> List.mem x b.aliases) a.aliases

let is_complete t = match t.status with Complete _ -> true | Running | Squashed -> false

let completion_time t =
  match t.status with Complete c -> Some c | Running | Squashed -> None

let pp_alias ppf = function
  | Mutex m -> Format.fprintf ppf "m%d" m
  | Atomic_var v -> Format.fprintf ppf "a%d" v
  | Condvar c -> Format.fprintf ppf "c%d" c
  | Barrier_obj b -> Format.fprintf ppf "b%d" b
  | Thread_edge t -> Format.fprintf ppf "t%d" t

let pp ppf t =
  Format.fprintf ppf "sub#%d(tid=%d,%s,[%a]%s)" t.id t.tid
    (match t.status with
    | Running -> "running"
    | Complete c -> Printf.sprintf "complete@%d" c
    | Squashed -> "squashed")
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       pp_alias)
    t.aliases
    (if t.global_dep then ",⊤" else "")
