module Int_set = Set.Make (Int)

type t = {
  tbl : (int, Subthread.t) Hashtbl.t;
  mutable ids : Int_set.t;
  mutable hw : int;
}

let create () = { tbl = Hashtbl.create 256; ids = Int_set.empty; hw = 0 }

let insert t (sub : Subthread.t) =
  if Hashtbl.mem t.tbl sub.Subthread.id then
    invalid_arg "Rol.insert: duplicate id";
  Hashtbl.add t.tbl sub.Subthread.id sub;
  t.ids <- Int_set.add sub.Subthread.id t.ids;
  let n = Int_set.cardinal t.ids in
  if n > t.hw then t.hw <- n

let find t id = Hashtbl.find_opt t.tbl id

let remove t id =
  if Hashtbl.mem t.tbl id then begin
    Hashtbl.remove t.tbl id;
    t.ids <- Int_set.remove id t.ids
  end

let head t =
  match Int_set.min_elt_opt t.ids with
  | None -> None
  | Some id -> Hashtbl.find_opt t.tbl id

let min_live_id t = Int_set.min_elt_opt t.ids

let size t = Int_set.cardinal t.ids
let max_size t = t.hw
let is_empty t = Int_set.is_empty t.ids

let younger_than t id =
  Int_set.fold
    (fun i acc -> if i > id then Hashtbl.find t.tbl i :: acc else acc)
    t.ids []
  |> List.rev

let to_list t =
  Int_set.fold (fun i acc -> Hashtbl.find t.tbl i :: acc) t.ids [] |> List.rev

let retire_ready t ~now ~latency =
  let rec go acc =
    match head t with
    | Some sub -> (
      match sub.Subthread.status with
      | Subthread.Complete c when now >= c + latency ->
        remove t sub.Subthread.id;
        go (sub :: acc)
      | Subthread.Complete _ | Subthread.Running | Subthread.Squashed -> List.rev acc)
    | None -> List.rev acc
  in
  go []
