(** Sub-threads: the unit of ordering, checkpointing and restart.

    The DEX logically divides program threads into sub-threads at
    communication points (§3.2 of the paper). Each sub-thread records:

    - a checkpoint of its thread's restartable state taken at its start
      (registers, pc — the paper's "call stack and processor registers");
    - a copy-on-write undo log of every architectural write it performs
      (the mod-set state in the history buffer);
    - the {e aliases} of the shared data it touched: the dynamic identity
      of locks acquired, atomic variables accessed, condition variables,
      barriers and thread join/exit edges. Aliases drive selective
      restart's dependent walk ("ones that acquired the same lock(s) or
      used the same atomic variable as the excepting sub-thread").

    The [id] doubles as the sub-thread's position in the deterministic
    total order: ids are allocated in token-grant order. *)

type alias =
  | Mutex of int
  | Atomic_var of int
  | Condvar of int
  | Barrier_obj of int
  | Thread_edge of int  (** join/exit communication with thread [tid] *)

type status =
  | Running  (** executing, or parked awaiting its thread's next turn *)
  | Complete of int  (** finished at the given time; awaiting retirement *)
  | Squashed  (** discarded by recovery *)

type t = {
  id : int;  (** creation sequence = position in the total order *)
  tid : int;
  started_at : int;
  mutable status : status;
  mutable aliases : alias list;  (** newest first; duplicates allowed *)
  mutable global_dep : bool;
      (** conservative ⊤-alias: opaque calls and non-standard sync outside
          CPR regions conflict with every younger sub-thread *)
  mutable cpr_region : bool;  (** covers a [Cpr_begin]/[Cpr_end] hybrid region *)
  saved : Vm.Tcb.saved;  (** thread state at sub-thread start *)
  mutable held_locks : int list;
      (** mutexes the thread held when this sub-thread's checkpoint was
          taken (a checkpoint can sit inside a critical section — e.g. a
          cond_wait boundary). Restoring the checkpoint must re-grant
          them, not release them. *)
  undo : Exec.Undo_log.t;
  mutable forked : int list;  (** tids of threads this sub-thread created *)
  mutable pending_mutex : int option;
      (** set when the checkpoint was taken while the thread was queued to
          (re-)acquire a mutex — a condvar wake-sub whose sleeper had not
          yet got the mutex back. Restoring such a checkpoint must re-join
          the mutex queue (or take the mutex if free), not run. *)
  mutable freed_blocks : (int * int) list;
      (** (addr, size) blocks this sub-thread freed. Frees are
          {e quarantined}: the block re-enters the allocator only when
          this sub-thread retires, so no unsquashed sub-thread can ever
          hold memory whose free might still be rolled back. *)
}

val make : id:int -> tid:int -> now:int -> saved:Vm.Tcb.saved -> t

val add_alias : t -> alias -> unit
(** Prepends unless already the most recent entry (cheap dedup for tight
    loops on one object). *)

val shares_alias : t -> t -> bool
(** True when the alias sets intersect, or either side is [global_dep]. *)

val is_complete : t -> bool

val completion_time : t -> int option

val pp_alias : Format.formatter -> alias -> unit

val pp : Format.formatter -> t -> unit
