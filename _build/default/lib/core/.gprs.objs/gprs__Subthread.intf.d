lib/core/subthread.mli: Exec Format Vm
