lib/core/rol.mli: Subthread
