lib/core/engine.mli: Exec Faults Order Vm
