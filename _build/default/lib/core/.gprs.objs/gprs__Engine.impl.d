lib/core/engine.ml: Array Exec Faults Format Fun Hashtbl Int List Option Order Printf Rol Sched Set Sim Stdlib Subthread Sys Vm Wal
