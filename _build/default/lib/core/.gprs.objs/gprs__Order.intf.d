lib/core/order.mli:
