lib/core/subthread.ml: Exec Format List Printf Vm
