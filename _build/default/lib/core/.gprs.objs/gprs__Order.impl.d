lib/core/order.ml: Array Hashtbl Stdlib
