lib/core/rol.ml: Hashtbl Int List Set Subthread
