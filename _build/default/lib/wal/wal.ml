type op =
  | Alloc of { addr : int; size : int }
  | Free of { addr : int; size : int }
  | Thread_create of { tid : int }
  | Rol_insert of { sub : int }
  | Sched_enqueue of { sub : int }
  | Io_op of { file : int; words : int }

type entry = { lsn : int; order : int; op : op }

type t = {
  mutable entries : entry list;  (* newest first *)
  mutable next_lsn : int;
  mutable live : int;
  mutable hw : int;
}

let create () = { entries = []; next_lsn = 0; live = 0; hw = 0 }

let append t ~order op =
  let lsn = t.next_lsn in
  t.next_lsn <- lsn + 1;
  t.entries <- { lsn; order; op } :: t.entries;
  t.live <- t.live + 1;
  if t.live > t.hw then t.hw <- t.live;
  lsn

let size t = t.live
let high_water t = t.hw

let entries_for t ~orders = List.filter (fun e -> orders e.order) t.entries

let drop_for t ~orders =
  let kept, dropped = List.partition (fun e -> not (orders e.order)) t.entries in
  t.entries <- kept;
  let n = List.length dropped in
  t.live <- t.live - n;
  n

let prune_below t ~order =
  let kept, dropped = List.partition (fun e -> e.order >= order) t.entries in
  t.entries <- kept;
  let n = List.length dropped in
  t.live <- t.live - n;
  n

let all t = List.rev t.entries

let pp_op ppf = function
  | Alloc { addr; size } -> Format.fprintf ppf "alloc(%d,%d)" addr size
  | Free { addr; size } -> Format.fprintf ppf "free(%d,%d)" addr size
  | Thread_create { tid } -> Format.fprintf ppf "thread_create(%d)" tid
  | Rol_insert { sub } -> Format.fprintf ppf "rol_insert(%d)" sub
  | Sched_enqueue { sub } -> Format.fprintf ppf "sched_enqueue(%d)" sub
  | Io_op { file; words } -> Format.fprintf ppf "io(%d,%d)" file words
