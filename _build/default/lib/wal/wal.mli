(** Write-ahead log for the GPRS runtime's own state.

    GPRS cannot protect its internal structures (work queues, allocator
    lists, the reorder list) with the same checkpoints it keeps for user
    state — applying CPR to the runtime "will lead to the same problem
    that it is attempting to solve" (§3.2 of the paper). Instead, each
    runtime operation is performed on behalf of some sub-thread and is
    logged, tagged with that sub-thread's order, to stable storage before
    it executes (write-ahead, in the style of ARIES). Recovery walks the
    log backwards and undoes the operations belonging to squashed
    sub-threads; retirement prunes the prefix belonging to retired ones.

    The log stores the {e descriptions} of operations; the engine owns the
    inverse actions (e.g. {!Vm.Mem.undo_alloc}). *)

type op =
  | Alloc of { addr : int; size : int }  (** runtime allocator gave out a block *)
  | Free of { addr : int; size : int }  (** runtime allocator reclaimed a block *)
  | Thread_create of { tid : int }  (** TCB and stack were materialized *)
  | Rol_insert of { sub : int }  (** a reorder-list entry was added *)
  | Sched_enqueue of { sub : int }  (** a sub-thread entered a work queue *)
  | Io_op of { file : int; words : int }  (** a file operation's metadata *)

type entry = { lsn : int; order : int; op : op }

type t

val create : unit -> t

val append : t -> order:int -> op -> int
(** Logs the operation on behalf of the sub-thread with the given order;
    returns the LSN. LSNs are strictly increasing. *)

val size : t -> int
(** Live (unpruned) entries — the bounded quantity the paper keeps in
    check by pruning at retirement. *)

val high_water : t -> int
(** Maximum live size ever observed. *)

val entries_for : t -> orders:(int -> bool) -> entry list
(** Entries whose sub-thread order satisfies the predicate, newest first —
    the order in which recovery must undo them. *)

val drop_for : t -> orders:(int -> bool) -> int
(** Remove those entries (they were undone); returns how many. *)

val prune_below : t -> order:int -> int
(** Retirement: drop all entries with [order < order]; returns how many. *)

val all : t -> entry list
(** Oldest first; for tests. *)

val pp_op : Format.formatter -> op -> unit
