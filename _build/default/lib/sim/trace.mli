(** Bounded execution trace for debugging and tests.

    A fixed-capacity ring of timestamped strings. Recording is cheap and
    allocation-bounded, so executors can leave tracing on; tests inspect
    the tail to assert on event ordering. *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity is 4096 entries. *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit
(** A disabled trace drops all records; recording calls stay valid. *)

val record : t -> Time.cycles -> string -> unit

val recordf :
  t -> Time.cycles -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant; the message is only built when tracing is on. *)

val to_list : t -> (Time.cycles * string) list
(** Oldest first; at most [capacity] entries. *)

val find : t -> substring:string -> (Time.cycles * string) option
(** First (oldest) retained entry whose message contains [substring]. *)

val clear : t -> unit
