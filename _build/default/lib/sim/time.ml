type cycles = int

let zero = 0
let ( + ) = Stdlib.( + )
let ( - ) = Stdlib.( - )
let max = Stdlib.max
let min = Stdlib.min

let of_seconds ~cycles_per_second s =
  if s <= 0.0 then 0
  else Stdlib.max 1 (int_of_float (Float.round (s *. float_of_int cycles_per_second)))

let to_seconds ~cycles_per_second c = float_of_int c /. float_of_int cycles_per_second

let pp ppf c = Format.fprintf ppf "%dcy" c
