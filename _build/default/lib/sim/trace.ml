type t = {
  entries : (Time.cycles * string) array;
  capacity : int;
  mutable next : int;
  mutable total : int;
  mutable on : bool;
}

let create ?(capacity = 4096) () =
  {
    entries = Array.make (Stdlib.max 1 capacity) (Time.zero, "");
    capacity = Stdlib.max 1 capacity;
    next = 0;
    total = 0;
    on = true;
  }

let enabled t = t.on
let set_enabled t b = t.on <- b

let record t time msg =
  if t.on then begin
    t.entries.(t.next) <- (time, msg);
    t.next <- (t.next + 1) mod t.capacity;
    t.total <- t.total + 1
  end

let recordf t time fmt =
  Format.kasprintf
    (fun msg -> if t.on then record t time msg)
    fmt

let to_list t =
  let n = Stdlib.min t.total t.capacity in
  let start = if t.total <= t.capacity then 0 else t.next in
  List.init n (fun i -> t.entries.((start + i) mod t.capacity))

let find t ~substring =
  let contains s sub =
    let ls = String.length s and lsub = String.length sub in
    let rec go i = i + lsub <= ls && (String.sub s i lsub = sub || go (i + 1)) in
    lsub = 0 || go 0
  in
  List.find_opt (fun (_, m) -> contains m substring) (to_list t)

let clear t =
  t.next <- 0;
  t.total <- 0
