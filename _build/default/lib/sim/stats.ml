type summary = {
  mutable n : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  maxima : (string, int ref) Hashtbl.t;
  summaries : (string, summary) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 32;
    maxima = Hashtbl.create 8;
    summaries = Hashtbl.create 8;
  }

let counter t k =
  match Hashtbl.find_opt t.counters k with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.counters k r;
    r

let incr t k = Stdlib.incr (counter t k)
let add t k v = counter t k := !(counter t k) + v

let set_max t k v =
  match Hashtbl.find_opt t.maxima k with
  | Some r -> if v > !r then r := v
  | None -> Hashtbl.add t.maxima k (ref v)

let summary t k =
  match Hashtbl.find_opt t.summaries k with
  | Some s -> s
  | None ->
    let s = { n = 0; sum = 0.0; min_v = infinity; max_v = neg_infinity } in
    Hashtbl.add t.summaries k s;
    s

let observe t k v =
  let s = summary t k in
  s.n <- s.n + 1;
  s.sum <- s.sum +. v;
  if v < s.min_v then s.min_v <- v;
  if v > s.max_v then s.max_v <- v

let get t k =
  match Hashtbl.find_opt t.counters k with
  | Some r -> !r
  | None -> (
    match Hashtbl.find_opt t.maxima k with Some r -> !r | None -> 0)

let mean t k =
  match Hashtbl.find_opt t.summaries k with
  | Some s when s.n > 0 -> s.sum /. float_of_int s.n
  | Some _ | None -> 0.0

let count t k =
  match Hashtbl.find_opt t.summaries k with Some s -> s.n | None -> 0

let merge_into ~dst src =
  Hashtbl.iter (fun k r -> add dst k !r) src.counters;
  Hashtbl.iter (fun k r -> set_max dst k !r) src.maxima;
  Hashtbl.iter
    (fun k s ->
      let d = summary dst k in
      d.n <- d.n + s.n;
      d.sum <- d.sum +. s.sum;
      if s.min_v < d.min_v then d.min_v <- s.min_v;
      if s.max_v > d.max_v then d.max_v <- s.max_v)
    src.summaries

let to_assoc t =
  let acc = ref [] in
  Hashtbl.iter (fun k r -> acc := (k, float_of_int !r) :: !acc) t.counters;
  Hashtbl.iter (fun k r -> acc := (k ^ ".max", float_of_int !r) :: !acc) t.maxima;
  Hashtbl.iter
    (fun k s ->
      if s.n > 0 then acc := (k ^ ".mean", s.sum /. float_of_int s.n) :: !acc)
    t.summaries;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc

let pp ppf t =
  let items = to_assoc t in
  Format.fprintf ppf "@[<v>";
  List.iter (fun (k, v) -> Format.fprintf ppf "%-32s %.3f@," k v) items;
  Format.fprintf ppf "@]"
