(** Simulated time.

    All simulator time is measured in integer {e cycles}. A configurable
    conversion factor ([cycles_per_second], carried by the machine model)
    relates cycles to the paper's wall-clock quantities such as exception
    rates in exceptions/second. Using integers keeps the discrete-event
    queue total-order stable and the simulation exactly reproducible. *)

type cycles = int
(** A duration or an absolute instant, in cycles. Always non-negative. *)

val zero : cycles
val ( + ) : cycles -> cycles -> cycles
val ( - ) : cycles -> cycles -> cycles
val max : cycles -> cycles -> cycles
val min : cycles -> cycles -> cycles

val of_seconds : cycles_per_second:int -> float -> cycles
(** [of_seconds ~cycles_per_second s] converts a wall-clock duration;
    rounds to the nearest cycle, never below 1 for positive [s]. *)

val to_seconds : cycles_per_second:int -> cycles -> float

val pp : Format.formatter -> cycles -> unit
(** Prints as e.g. ["12_345cy"]. *)
