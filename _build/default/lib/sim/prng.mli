(** Deterministic pseudo-random number generation.

    Every source of randomness in the simulator flows through an explicit
    {!t} seeded by the experiment driver, so that a given seed reproduces a
    bit-identical simulation. The generator is SplitMix64 (Steele, Lea,
    Flood 2014): tiny state, full 64-bit period guarantees for our stream
    lengths, and cheap splitting for independent sub-streams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator. Distinct seeds give
    uncorrelated streams. *)

val copy : t -> t
(** [copy g] duplicates the state; the copy evolves independently. *)

val split : t -> t
(** [split g] derives an independent generator, advancing [g]. Used to give
    each subsystem (scheduler, injector, workload input) its own stream so
    adding draws to one subsystem does not perturb the others. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] draws uniformly from [0, bound). Requires [bound > 0]. *)

val float : t -> float -> float
(** [float g bound] draws uniformly from [0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> mean:float -> float
(** [exponential g ~mean] draws from Exp(1/mean); used by the Poisson
    exception-injection process. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform draw from a non-empty array. *)
