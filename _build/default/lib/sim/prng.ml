type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }
let copy g = { state = g.state }

let int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g =
  let s = int64 g in
  { state = s }

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free for our purposes: mask to 62 bits then mod. The modulo
     bias is < 2^-40 for all bounds used in the simulator. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 g) 2) in
  v mod bound

let float g bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 g) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool g = Int64.logand (int64 g) 1L = 1L

let exponential g ~mean =
  let u = float g 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-300 else u in
  -.mean *. log u

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose g a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int g (Array.length a))
