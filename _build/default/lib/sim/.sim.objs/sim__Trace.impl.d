lib/sim/trace.ml: Array Format List Stdlib String Time
