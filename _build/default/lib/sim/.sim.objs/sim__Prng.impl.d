lib/sim/prng.ml: Array Int64
