lib/sim/prng.mli:
