lib/sim/stats.ml: Format Hashtbl List Stdlib String
