lib/faults/injector.ml: Array Format Sim
