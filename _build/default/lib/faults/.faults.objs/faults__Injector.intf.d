lib/faults/injector.mli: Format Sim
