type addr = int

type t = {
  mutable data : int array;
  mutable static_brk : int;
  (* Free blocks sorted by address; first-fit with splitting. *)
  mutable free_list : (addr * int) list;
  allocated : (addr, int) Hashtbl.t;
}

let create ~words =
  {
    data = Array.make words 0;
    static_brk = 0;
    free_list = [ (0, words) ];
    allocated = Hashtbl.create 64;
  }

let words t = Array.length t.data

let read t a = t.data.(a)
let write t a v = t.data.(a) <- v

let take_front t n =
  (* Shrink the lowest free block; used by [reserve] so static data sits at
     the bottom of memory. *)
  match t.free_list with
  | (a, sz) :: rest when a = t.static_brk && sz >= n ->
    t.free_list <- (if sz = n then rest else (a + n, sz - n) :: rest);
    t.static_brk <- t.static_brk + n;
    a
  | _ -> failwith "Mem.reserve: static area exhausted"

let reserve t n =
  if n <= 0 then invalid_arg "Mem.reserve: size must be positive";
  take_front t n

let alloc t n =
  if n <= 0 then invalid_arg "Mem.alloc: size must be positive";
  let rec fit acc = function
    | [] -> failwith "Mem.alloc: out of simulated memory"
    | (a, sz) :: rest when sz >= n ->
      let remainder = if sz = n then rest else (a + n, sz - n) :: rest in
      t.free_list <- List.rev_append acc remainder;
      Hashtbl.replace t.allocated a n;
      a
    | blk :: rest -> fit (blk :: acc) rest
  in
  fit [] t.free_list

let insert_free t a n =
  let rec go = function
    | [] -> [ (a, n) ]
    | (b, sz) :: rest when a < b -> (a, n) :: (b, sz) :: rest
    | blk :: rest -> blk :: go rest
  in
  t.free_list <- go t.free_list

let free t a =
  match Hashtbl.find_opt t.allocated a with
  | None -> invalid_arg "Mem.free: not an allocated block"
  | Some n ->
    Hashtbl.remove t.allocated a;
    insert_free t a n

let block_size t a = Hashtbl.find_opt t.allocated a

let undo_alloc t a = free t a

let undo_free t a ~size =
  (* Remove the exact block from the free list and mark it allocated. *)
  let rec go = function
    | [] -> invalid_arg "Mem.undo_free: block not free"
    | (b, sz) :: rest when b = a && sz = size -> rest
    | (b, sz) :: rest when b = a && sz > size -> (b + size, sz - size) :: rest
    | blk :: rest -> blk :: go rest
  in
  t.free_list <- go t.free_list;
  Hashtbl.replace t.allocated a size

let live_blocks t =
  Hashtbl.fold (fun a n acc -> (a, n) :: acc) t.allocated []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

type alloc_state = {
  a_static_brk : int;
  a_free_list : (addr * int) list;
  a_allocated : (addr * int) list;
}

let save_alloc t =
  {
    a_static_brk = t.static_brk;
    a_free_list = t.free_list;
    a_allocated = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.allocated [];
  }

let restore_alloc t s =
  t.static_brk <- s.a_static_brk;
  t.free_list <- s.a_free_list;
  Hashtbl.reset t.allocated;
  List.iter (fun (k, v) -> Hashtbl.replace t.allocated k v) s.a_allocated

let snapshot t =
  {
    data = Array.copy t.data;
    static_brk = t.static_brk;
    free_list = t.free_list;
    allocated = Hashtbl.copy t.allocated;
  }

let restore t ~from =
  if Array.length t.data = Array.length from.data then
    Array.blit from.data 0 t.data 0 (Array.length t.data)
  else t.data <- Array.copy from.data;
  t.static_brk <- from.static_brk;
  t.free_list <- from.free_list;
  Hashtbl.reset t.allocated;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.allocated k v) from.allocated
