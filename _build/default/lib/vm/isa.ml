type regs = int array

type instr =
  | Work of { cost : regs -> int; run : Env.t -> unit }
  | Goto of int
  | If of { cond : regs -> bool; target : int }
  | Lock of { m : regs -> int }
  | Unlock of { m : regs -> int }
  | Barrier of { b : int }
  | Cond_wait of { c : int; m : int }
  | Cond_signal of { c : int; all : bool }
  | Atomic of { var : regs -> int; rmw : old:int -> regs -> int; dst : int }
  | Nonstd_atomic of { var : regs -> int; rmw : old:int -> regs -> int; dst : int }
  | Fork of { group : int; proc : string; args : regs -> int array; dst : int }
  | Join of { tid : regs -> int }
  | Alloc of { size : regs -> int; dst : int }
  | Free of { addr : regs -> int }
  | Cpr_begin
  | Cpr_end
  | Opaque of { cost : regs -> int; run : Env.t -> unit }
  | Exit

type proc = { pname : string; code : instr array }

type program = {
  procs : (string * proc) list;
  entry : string;
  n_mutexes : int;
  n_condvars : int;
  n_atomics : int;
  barrier_parties : int array;
  n_groups : int;
  group_weights : int array;
  mem_words : int;
  reserved_words : int;
  input_files : (string * int array) list;
  output_files : string list;
}

let n_registers = 32

let find_proc p name =
  match List.assoc_opt name p.procs with
  | Some proc -> proc
  | None -> invalid_arg (Printf.sprintf "Isa.find_proc: unknown proc %S" name)

let instr_name = function
  | Work _ -> "work"
  | Goto _ -> "goto"
  | If _ -> "if"
  | Lock _ -> "lock"
  | Unlock _ -> "unlock"
  | Barrier _ -> "barrier"
  | Cond_wait _ -> "cond_wait"
  | Cond_signal { all = false; _ } -> "cond_signal"
  | Cond_signal { all = true; _ } -> "cond_broadcast"
  | Atomic _ -> "atomic"
  | Nonstd_atomic _ -> "nonstd_atomic"
  | Fork _ -> "fork"
  | Join _ -> "join"
  | Alloc _ -> "alloc"
  | Free _ -> "free"
  | Cpr_begin -> "cpr_begin"
  | Cpr_end -> "cpr_end"
  | Opaque _ -> "opaque"
  | Exit -> "exit"

let is_sync_point = function
  | Lock _ | Barrier _ | Cond_wait _ | Cond_signal _ | Atomic _ | Fork _
  | Join _ | Exit ->
    true
  | Work _ | Goto _ | If _ | Unlock _ | Nonstd_atomic _ | Alloc _ | Free _
  | Cpr_begin | Cpr_end | Opaque _ ->
    false
