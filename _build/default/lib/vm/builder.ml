type patch = Patch_goto | Patch_if of (Isa.regs -> bool)

type proc_builder = {
  name : string;
  mutable instrs : Isa.instr list;  (* reverse order *)
  mutable count : int;
  mutable labels : int option array;  (* label id -> bound position *)
  mutable n_labels : int;
  mutable patches : (int * int * patch) list;  (* position, label, kind *)
}

type label = int

let proc name =
  { name; instrs = []; count = 0; labels = Array.make 8 None; n_labels = 0; patches = [] }

let fresh_label b =
  if b.n_labels = Array.length b.labels then begin
    let labels' = Array.make (2 * b.n_labels) None in
    Array.blit b.labels 0 labels' 0 b.n_labels;
    b.labels <- labels'
  end;
  b.n_labels <- b.n_labels + 1;
  b.n_labels - 1

let bind b l =
  match b.labels.(l) with
  | Some _ -> invalid_arg "Builder.bind: label already bound"
  | None -> b.labels.(l) <- Some b.count

let emit b i =
  b.instrs <- i :: b.instrs;
  b.count <- b.count + 1

let here b = b.count

let goto b l =
  b.patches <- (b.count, l, Patch_goto) :: b.patches;
  emit b (Isa.Goto (-1))

let if_to b cond l =
  b.patches <- (b.count, l, Patch_if cond) :: b.patches;
  emit b (Isa.If { cond; target = -1 })

let while_ b cond body =
  let top = fresh_label b and exit_l = fresh_label b in
  bind b top;
  if_to b (fun regs -> not (cond regs)) exit_l;
  body ();
  goto b top;
  bind b exit_l

let set_reg b r f = emit b (Isa.Work { cost = (fun _ -> 0); run = (fun env -> Env.set env r (f env.Env.regs)) })

let for_up b ~reg ~from ~until body =
  set_reg b reg from;
  while_ b (fun regs -> regs.(reg) < until regs) (fun () ->
      body ();
      set_reg b reg (fun regs -> regs.(reg) + 1))

let work b ~cost run = emit b (Isa.Work { cost; run })
let work_const b c run = emit b (Isa.Work { cost = (fun _ -> c); run })
let compute b c = emit b (Isa.Work { cost = (fun _ -> c); run = (fun _ -> ()) })

let lock b m = emit b (Isa.Lock { m })
let unlock b m = emit b (Isa.Unlock { m })
let lock_const b m = lock b (fun _ -> m)
let unlock_const b m = unlock b (fun _ -> m)
let barrier b n = emit b (Isa.Barrier { b = n })
let cond_wait b ~c ~m = emit b (Isa.Cond_wait { c; m })
let cond_signal b c = emit b (Isa.Cond_signal { c; all = false })
let cond_broadcast b c = emit b (Isa.Cond_signal { c; all = true })
let atomic b ~var ~dst rmw = emit b (Isa.Atomic { var; rmw; dst })
let nonstd_atomic b ~var ~dst rmw = emit b (Isa.Nonstd_atomic { var; rmw; dst })
let fork b ~group ~proc ~dst args = emit b (Isa.Fork { group; proc; args; dst })
let join b tid = emit b (Isa.Join { tid })
let join_reg b r = join b (fun regs -> regs.(r))
let alloc b ~size ~dst = emit b (Isa.Alloc { size; dst })
let free b addr = emit b (Isa.Free { addr })
let cpr_begin b = emit b Isa.Cpr_begin
let cpr_end b = emit b Isa.Cpr_end
let opaque b ~cost run = emit b (Isa.Opaque { cost; run })
let exit_ b = emit b Isa.Exit

let finish b =
  let code = Array.of_list (List.rev b.instrs) in
  List.iter
    (fun (pos, l, kind) ->
      match b.labels.(l) with
      | None -> invalid_arg (Printf.sprintf "Builder.finish(%s): unbound label" b.name)
      | Some target -> (
        match kind with
        | Patch_goto -> code.(pos) <- Isa.Goto target
        | Patch_if cond -> code.(pos) <- Isa.If { cond; target }))
    b.patches;
  { Isa.pname = b.name; code }

type program_builder = unit

let program ?(mem_words = 1 lsl 20) ?(reserved_words = 0) ?(n_mutexes = 0)
    ?(n_condvars = 0) ?(n_atomics = 0) ?(barrier_parties = [||])
    ?(n_groups = 1) ?group_weights ?(input_files = []) ?(output_files = [])
    ~entry procs =
  if reserved_words >= mem_words then
    invalid_arg "Builder.program: reserved_words must be below mem_words";
  let group_weights =
    match group_weights with
    | Some w ->
      if Array.length w <> n_groups then
        invalid_arg "Builder.program: group_weights length <> n_groups";
      w
    | None -> Array.make n_groups 1
  in
  let tagged = List.map (fun (p : Isa.proc) -> (p.Isa.pname, p)) procs in
  (match List.assoc_opt entry tagged with
  | Some _ -> ()
  | None -> invalid_arg "Builder.program: entry proc not among procs");
  {
    Isa.procs = tagged;
    entry;
    n_mutexes;
    n_condvars;
    n_atomics;
    barrier_parties;
    n_groups;
    group_weights;
    mem_words;
    reserved_words;
    input_files;
    output_files;
  }
