lib/vm/mem.mli:
