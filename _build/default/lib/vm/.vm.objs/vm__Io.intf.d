lib/vm/io.mli:
