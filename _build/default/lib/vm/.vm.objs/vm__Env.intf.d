lib/vm/env.mli:
