lib/vm/isa.ml: Env List Printf
