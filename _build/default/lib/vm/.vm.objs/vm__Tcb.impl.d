lib/vm/tcb.ml: Array Format Isa Stdlib
