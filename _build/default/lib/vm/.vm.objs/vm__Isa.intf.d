lib/vm/isa.mli: Env
