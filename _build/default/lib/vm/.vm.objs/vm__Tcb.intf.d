lib/vm/tcb.mli: Format Isa
