lib/vm/io.ml: Array Stdlib
