lib/vm/builder.ml: Array Env Isa List Printf
