lib/vm/builder.mli: Env Isa
