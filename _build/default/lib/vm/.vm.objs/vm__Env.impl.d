lib/vm/env.ml: Array
