lib/vm/mem.ml: Array Hashtbl List
