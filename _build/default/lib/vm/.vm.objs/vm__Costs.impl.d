lib/vm/costs.ml: Format
