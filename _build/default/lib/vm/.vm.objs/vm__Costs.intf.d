lib/vm/costs.mli: Format
