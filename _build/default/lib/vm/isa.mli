(** The virtual instruction set.

    Workloads are programs over this small ISA, mirroring how the paper's
    benchmarks are Pthreads programs over the C toolchain. The
    synchronization instructions correspond one-for-one to the API calls
    GPRS intercepts (fork, join, lock, unlock, barrier, condition
    wait/signal, atomics — §3.2); [Nonstd_atomic] models the "home-spun"
    synchronization that GPRS does {e not} intercept (Canneal), and
    [Cpr_begin]/[Cpr_end] are the user markers for hybrid recovery.
    [Opaque] models a call with an unknown mod-set (third-party code),
    which GPRS must serialize.

    Compute happens in [Work] closures: [cost] is a pure function of the
    registers evaluated at dispatch to obtain the instruction's duration;
    [run] performs the effects through the tracked {!Env.t}. Branch
    conditions and dynamic operands are likewise pure functions of the
    registers, so re-executing a restored sub-thread deterministically
    replays the same path. *)

type regs = int array

type instr =
  | Work of { cost : regs -> int; run : Env.t -> unit }
  | Goto of int  (** unconditional branch to instruction index *)
  | If of { cond : regs -> bool; target : int }  (** branch when true *)
  | Lock of { m : regs -> int }
  | Unlock of { m : regs -> int }
  | Barrier of { b : int }
  | Cond_wait of { c : int; m : int }
  | Cond_signal of { c : int; all : bool }
  | Atomic of { var : regs -> int; rmw : old:int -> regs -> int; dst : int }
      (** standard atomic RMW on atomic variable [var]; old value lands in
          register [dst] *)
  | Nonstd_atomic of { var : regs -> int; rmw : old:int -> regs -> int; dst : int }
      (** same semantics, but invisible to GPRS's interception *)
  | Fork of { group : int; proc : string; args : regs -> int array; dst : int }
      (** spawn a thread running [proc] with [args] preloaded into its low
          registers; the new tid lands in [dst]. [group] feeds the
          balance-aware ordering schedule. *)
  | Join of { tid : regs -> int }
  | Alloc of { size : regs -> int; dst : int }  (** runtime allocator *)
  | Free of { addr : regs -> int }
  | Cpr_begin
  | Cpr_end
  | Opaque of { cost : regs -> int; run : Env.t -> unit }
  | Exit

type proc = { pname : string; code : instr array }

type program = {
  procs : (string * proc) list;
  entry : string;  (** main thread's procedure *)
  n_mutexes : int;
  n_condvars : int;
  n_atomics : int;
  barrier_parties : int array;  (** one entry per barrier *)
  n_groups : int;
  group_weights : int array;  (** weight per thread group (weighted order) *)
  mem_words : int;
  reserved_words : int;
      (** static low-address carve-out (FIFOs, tid tables, result areas)
          excluded from the runtime allocator *)
  input_files : (string * int array) list;
  output_files : string list;
}

val n_registers : int
(** Register-file size of every virtual thread. *)

val find_proc : program -> string -> proc
(** Raises [Not_found]-style [Invalid_argument] on unknown names, which
    indicates a workload construction bug. *)

val instr_name : instr -> string
(** Mnemonic for tracing. *)

val is_sync_point : instr -> bool
(** True for the instructions GPRS treats as communication points (where
    sub-threads end/begin): fork, join, lock, barrier, cond wait/signal,
    atomics, exit. Note [Unlock] is deliberately {e not} one — the paper's
    critical-section optimization (§3.2). *)
