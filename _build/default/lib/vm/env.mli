(** Execution environment handed to a [Work] instruction's closure.

    This is the only door through which workload code touches simulated
    state. Every shared-memory and file access goes through the hooks the
    executor installed, which (a) charge access cycles and (b) capture
    old values for rollback — the mechanism behind both GPRS's
    copy-on-write sub-thread checkpoints and CPR's incremental state
    recording. Registers are thread-private and are checkpointed wholesale
    at sub-thread boundaries, so direct access is safe. *)

type t = {
  tid : int;  (** virtual thread id of the executing thread *)
  regs : int array;  (** the thread's registers, mutable in place *)
  read : int -> int;  (** tracked shared-memory read *)
  write : int -> int -> unit;  (** tracked shared-memory write *)
  file_size : int -> int;
  file_read : int -> off:int -> int;
  file_write : int -> off:int -> int -> unit;
}

val get : t -> int -> int
(** [get env r] reads register [r]. *)

val set : t -> int -> int -> unit
(** [set env r v] writes register [r]. *)
