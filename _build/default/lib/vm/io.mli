(** Simulated file system.

    Files are named, growable arrays of integer words. All operations are
    offset-addressed ([pread]/[pwrite] style), which is what makes the
    paper's file I/O idempotent (§3.2): re-executing a squashed
    sub-thread's writes lands the same words at the same offsets.

    Like {!Mem}, the file store performs no undo tracking of its own;
    executors route writes through their tracked hooks and capture the old
    word (and old length) for rollback. *)

type file = int
(** File handle: index into the file table. *)

type t

val create : unit -> t

val add_file : t -> name:string -> int array -> file
(** Registers a file with initial contents. Input files are added by the
    program loader; output files typically start empty. *)

val lookup : t -> string -> file option

val size : t -> file -> int
(** Current length in words. *)

val read : t -> file -> off:int -> int
(** Word at [off]; reads past the end return 0 (as from a sparse file). *)

val write : t -> file -> off:int -> int -> unit
(** Writes the word, growing the file if needed. *)

val truncate : t -> file -> int -> unit
(** Sets the length; used to undo length growth during rollback. *)

val contents : t -> file -> int array
(** Copy of the live contents (length [size]). *)

val name : t -> file -> string

val n_files : t -> int

val snapshot : t -> t

val restore : t -> from:t -> unit
