type file = int

type entry = { fname : string; mutable data : int array; mutable len : int }

type t = { mutable files : entry array; mutable count : int }

let create () = { files = [||]; count = 0 }

let add_file t ~name init =
  let e = { fname = name; data = Array.copy init; len = Array.length init } in
  if t.count = Array.length t.files then begin
    let cap = Stdlib.max 4 (2 * Array.length t.files) in
    let files' = Array.make cap e in
    Array.blit t.files 0 files' 0 t.count;
    t.files <- files'
  end;
  t.files.(t.count) <- e;
  t.count <- t.count + 1;
  t.count - 1

let lookup t name =
  let rec go i =
    if i >= t.count then None
    else if t.files.(i).fname = name then Some i
    else go (i + 1)
  in
  go 0

let entry t f =
  if f < 0 || f >= t.count then invalid_arg "Io: bad file handle";
  t.files.(f)

let size t f = (entry t f).len

let read t f ~off =
  let e = entry t f in
  if off < 0 then invalid_arg "Io.read: negative offset";
  if off >= e.len then 0 else e.data.(off)

let grow e needed =
  if needed > Array.length e.data then begin
    let cap = Stdlib.max needed (Stdlib.max 16 (2 * Array.length e.data)) in
    let data' = Array.make cap 0 in
    Array.blit e.data 0 data' 0 e.len;
    e.data <- data'
  end

let write t f ~off v =
  let e = entry t f in
  if off < 0 then invalid_arg "Io.write: negative offset";
  grow e (off + 1);
  e.data.(off) <- v;
  if off >= e.len then e.len <- off + 1

let truncate t f n =
  let e = entry t f in
  if n < 0 then invalid_arg "Io.truncate";
  grow e n;
  if n > e.len then Array.fill e.data e.len (n - e.len) 0;
  e.len <- n

let contents t f =
  let e = entry t f in
  Array.sub e.data 0 e.len

let name t f = (entry t f).fname

let n_files t = t.count

let snapshot t =
  let files' =
    Array.init t.count (fun i ->
        let e = t.files.(i) in
        { fname = e.fname; data = Array.copy e.data; len = e.len })
  in
  { files = files'; count = t.count }

let restore t ~from =
  t.files <-
    Array.init from.count (fun i ->
        let e = from.files.(i) in
        { fname = e.fname; data = Array.copy e.data; len = e.len });
  t.count <- from.count
