type t = {
  tid : int;
  regs : int array;
  read : int -> int;
  write : int -> int -> unit;
  file_size : int -> int;
  file_read : int -> off:int -> int;
  file_write : int -> off:int -> int -> unit;
}

let get t r = t.regs.(r)
let set t r v = t.regs.(r) <- v
