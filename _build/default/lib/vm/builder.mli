(** Assembler eDSL for virtual-ISA procedures and programs.

    Workloads build procedures with forward-referencing labels and
    structured loop combinators, then assemble a {!Isa.program} together
    with the synchronization-object counts, thread-group weights, and input
    files. Example:

    {[
      let p = Builder.proc "worker" in
      Builder.for_up p ~reg:1 ~from:(fun _ -> 0) ~until:(fun r -> r.(0))
        (fun () -> Builder.compute p 500);
      Builder.exit_ p
    ]} *)

type proc_builder

type label

val proc : string -> proc_builder
(** Start a procedure named [string]. *)

val fresh_label : proc_builder -> label

val bind : proc_builder -> label -> unit
(** Place the label at the current instruction position. Each label must be
    bound exactly once. *)

val emit : proc_builder -> Isa.instr -> unit
(** Emit a raw instruction. [Goto]/[If] targets emitted this way must be
    final indices; prefer {!goto}/{!if_to} for label targets. *)

val here : proc_builder -> int
(** Index of the next instruction to be emitted. *)

(** {1 Control flow} *)

val goto : proc_builder -> label -> unit
val if_to : proc_builder -> (Isa.regs -> bool) -> label -> unit

val while_ : proc_builder -> (Isa.regs -> bool) -> (unit -> unit) -> unit
(** [while_ p cond body] loops [body] while [cond regs] holds. *)

val for_up :
  proc_builder ->
  reg:int ->
  from:(Isa.regs -> int) ->
  until:(Isa.regs -> int) ->
  (unit -> unit) ->
  unit
(** Counted loop: [reg] runs from [from regs] while [< until regs],
    incremented after each body iteration. The bounds are re-evaluated
    against the registers each iteration, so the body may use [reg]. *)

(** {1 Compute} *)

val work : proc_builder -> cost:(Isa.regs -> int) -> (Env.t -> unit) -> unit
val work_const : proc_builder -> int -> (Env.t -> unit) -> unit
val compute : proc_builder -> int -> unit
(** Pure delay of the given cycles, no effects. *)

val set_reg : proc_builder -> int -> (Isa.regs -> int) -> unit
(** Zero-cost register assignment (address arithmetic). *)

(** {1 Synchronization and runtime calls} *)

val lock : proc_builder -> (Isa.regs -> int) -> unit
val unlock : proc_builder -> (Isa.regs -> int) -> unit
val lock_const : proc_builder -> int -> unit
val unlock_const : proc_builder -> int -> unit
val barrier : proc_builder -> int -> unit
val cond_wait : proc_builder -> c:int -> m:int -> unit
val cond_signal : proc_builder -> int -> unit
val cond_broadcast : proc_builder -> int -> unit

val atomic :
  proc_builder -> var:(Isa.regs -> int) -> dst:int -> (old:int -> Isa.regs -> int) -> unit

val nonstd_atomic :
  proc_builder -> var:(Isa.regs -> int) -> dst:int -> (old:int -> Isa.regs -> int) -> unit

val fork :
  proc_builder -> group:int -> proc:string -> dst:int -> (Isa.regs -> int array) -> unit

val join : proc_builder -> (Isa.regs -> int) -> unit
val join_reg : proc_builder -> int -> unit
(** Join on the tid stored in the given register. *)

val alloc : proc_builder -> size:(Isa.regs -> int) -> dst:int -> unit
val free : proc_builder -> (Isa.regs -> int) -> unit
val cpr_begin : proc_builder -> unit
val cpr_end : proc_builder -> unit
val opaque : proc_builder -> cost:(Isa.regs -> int) -> (Env.t -> unit) -> unit
val exit_ : proc_builder -> unit

val finish : proc_builder -> Isa.proc
(** Resolve labels and freeze. Raises [Invalid_argument] on unbound labels
    or doubly-bound labels. *)

(** {1 Program assembly} *)

type program_builder

val program :
  ?mem_words:int ->
  ?reserved_words:int ->
  ?n_mutexes:int ->
  ?n_condvars:int ->
  ?n_atomics:int ->
  ?barrier_parties:int array ->
  ?n_groups:int ->
  ?group_weights:int array ->
  ?input_files:(string * int array) list ->
  ?output_files:string list ->
  entry:string ->
  Isa.proc list ->
  Isa.program
(** Assemble a program. Defaults: 1 MiW memory, no static reservation, no
    sync objects, one thread group with weight 1, no files.
    [reserved_words] carves the low addresses out of the runtime
    allocator — any program that uses both fixed-address data and
    [Alloc] must reserve its static area. *)
