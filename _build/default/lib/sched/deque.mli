(** Double-ended work queue.

    The per-context queue of the load-balancing scheduler, in the style
    popularized by Cilk: the owner pushes and pops at the bottom (LIFO, for
    locality), thieves steal from the top (FIFO, taking the oldest work).
    The simulator is single-threaded, so no synchronization is needed —
    only the scheduling {e policy} matters. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push_bottom : 'a t -> 'a -> unit
val pop_bottom : 'a t -> 'a option
val steal_top : 'a t -> 'a option

val to_list : 'a t -> 'a list
(** Top (oldest) first; used by tests. *)
