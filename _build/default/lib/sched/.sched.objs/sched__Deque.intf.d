lib/sched/deque.mli:
