lib/sched/scheduler.mli:
