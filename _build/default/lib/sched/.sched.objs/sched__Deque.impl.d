lib/sched/deque.ml: Array List Option
