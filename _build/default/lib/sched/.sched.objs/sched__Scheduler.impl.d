lib/sched/scheduler.ml: Array Deque List
