type 'a t = {
  mutable buf : 'a option array;
  mutable top : int;  (* index of oldest element *)
  mutable bottom : int;  (* index one past the newest element *)
}

let create () = { buf = Array.make 16 None; top = 0; bottom = 0 }

let length t = t.bottom - t.top
let is_empty t = length t = 0

let grow t =
  let n = length t in
  let cap = Array.length t.buf in
  if n = cap then begin
    let buf' = Array.make (2 * cap) None in
    for i = 0 to n - 1 do
      buf'.(i) <- t.buf.((t.top + i) mod cap)
    done;
    t.buf <- buf';
    t.top <- 0;
    t.bottom <- n
  end
  else if t.bottom = cap then begin
    (* Compact in place: shift live entries to the front. *)
    for i = 0 to n - 1 do
      t.buf.(i) <- t.buf.(t.top + i)
    done;
    Array.fill t.buf n (cap - n) None;
    t.top <- 0;
    t.bottom <- n
  end

let push_bottom t x =
  grow t;
  t.buf.(t.bottom) <- Some x;
  t.bottom <- t.bottom + 1

let pop_bottom t =
  if is_empty t then None
  else begin
    t.bottom <- t.bottom - 1;
    let x = t.buf.(t.bottom) in
    t.buf.(t.bottom) <- None;
    x
  end

let steal_top t =
  if is_empty t then None
  else begin
    let x = t.buf.(t.top) in
    t.buf.(t.top) <- None;
    t.top <- t.top + 1;
    x
  end

let to_list t = List.init (length t) (fun i -> Option.get t.buf.(t.top + i))
