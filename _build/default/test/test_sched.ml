(* Unit tests for the scheduler: deque discipline and steal rotation. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_deque_lifo_owner () =
  let d = Sched.Deque.create () in
  Sched.Deque.push_bottom d 1;
  Sched.Deque.push_bottom d 2;
  Sched.Deque.push_bottom d 3;
  Alcotest.(check (option int)) "owner pops newest" (Some 3) (Sched.Deque.pop_bottom d);
  Alcotest.(check (option int)) "then" (Some 2) (Sched.Deque.pop_bottom d)

let test_deque_fifo_thief () =
  let d = Sched.Deque.create () in
  List.iter (Sched.Deque.push_bottom d) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "thief steals oldest" (Some 1) (Sched.Deque.steal_top d);
  Alcotest.(check (option int)) "then" (Some 2) (Sched.Deque.steal_top d)

let test_deque_growth () =
  let d = Sched.Deque.create () in
  for i = 0 to 999 do
    Sched.Deque.push_bottom d i
  done;
  check "length" 1000 (Sched.Deque.length d);
  for i = 0 to 999 do
    Alcotest.(check (option int)) "fifo drain" (Some i) (Sched.Deque.steal_top d)
  done;
  checkb "empty" true (Sched.Deque.is_empty d)

let test_deque_interleaved () =
  (* Alternating push/steal exercises the compaction path. *)
  let d = Sched.Deque.create () in
  for i = 0 to 99 do
    Sched.Deque.push_bottom d i;
    Sched.Deque.push_bottom d (100 + i);
    ignore (Sched.Deque.steal_top d)
  done;
  check "net length" 100 (Sched.Deque.length d)

let test_fifo_policy_global_order () =
  let s = Sched.Scheduler.create Sched.Scheduler.Fifo ~n_contexts:4 in
  Sched.Scheduler.enqueue s ~ctx_hint:0 10;
  Sched.Scheduler.enqueue s ~ctx_hint:3 11;
  Sched.Scheduler.enqueue s ~ctx_hint:1 12;
  Alcotest.(check (option (pair int bool))) "fifo" (Some (10, false))
    (Sched.Scheduler.take s ~ctx:2);
  Alcotest.(check (option (pair int bool))) "fifo" (Some (11, false))
    (Sched.Scheduler.take s ~ctx:2)

let test_steal_policy_local_first () =
  let s = Sched.Scheduler.create Sched.Scheduler.Work_steal ~n_contexts:2 in
  Sched.Scheduler.enqueue s ~ctx_hint:0 7;
  Sched.Scheduler.enqueue s ~ctx_hint:1 8;
  Alcotest.(check (option (pair int bool))) "local, not stolen" (Some (7, false))
    (Sched.Scheduler.take s ~ctx:0)

let test_steal_policy_steals () =
  let s = Sched.Scheduler.create Sched.Scheduler.Work_steal ~n_contexts:3 in
  Sched.Scheduler.enqueue s ~ctx_hint:0 7;
  Alcotest.(check (option (pair int bool))) "stolen flag set" (Some (7, true))
    (Sched.Scheduler.take s ~ctx:2);
  Alcotest.(check (option (pair int bool))) "nothing left" None
    (Sched.Scheduler.take s ~ctx:0)

let test_steal_rotation_deterministic () =
  let s = Sched.Scheduler.create Sched.Scheduler.Work_steal ~n_contexts:4 in
  (* Victims probed in rotation starting after the thief: ctx 1 probes
     2, 3, 0 — so work on ctx 2 wins over work on ctx 0. *)
  Sched.Scheduler.enqueue s ~ctx_hint:0 100;
  Sched.Scheduler.enqueue s ~ctx_hint:2 200;
  Alcotest.(check (option (pair int bool))) "nearest victim after thief"
    (Some (200, true))
    (Sched.Scheduler.take s ~ctx:1)

let test_scheduler_remove () =
  let s = Sched.Scheduler.create Sched.Scheduler.Work_steal ~n_contexts:2 in
  Sched.Scheduler.enqueue s ~ctx_hint:0 1;
  Sched.Scheduler.enqueue s ~ctx_hint:0 2;
  Sched.Scheduler.enqueue s ~ctx_hint:1 3;
  checkb "found" true (Sched.Scheduler.remove s 2);
  checkb "not found twice" false (Sched.Scheduler.remove s 2);
  check "length" 2 (Sched.Scheduler.length s);
  (* Remaining order preserved. *)
  Alcotest.(check (option (pair int bool))) "kept 1" (Some (1, false))
    (Sched.Scheduler.take s ~ctx:0)

let test_scheduler_counts () =
  let s = Sched.Scheduler.create Sched.Scheduler.Fifo ~n_contexts:1 in
  checkb "empty" true (Sched.Scheduler.is_empty s);
  Sched.Scheduler.enqueue s ~ctx_hint:0 5;
  check "one" 1 (Sched.Scheduler.length s);
  ignore (Sched.Scheduler.take s ~ctx:0);
  checkb "empty again" true (Sched.Scheduler.is_empty s)

let suite =
  [
    Alcotest.test_case "deque owner LIFO" `Quick test_deque_lifo_owner;
    Alcotest.test_case "deque thief FIFO" `Quick test_deque_fifo_thief;
    Alcotest.test_case "deque growth" `Quick test_deque_growth;
    Alcotest.test_case "deque interleaved" `Quick test_deque_interleaved;
    Alcotest.test_case "fifo global order" `Quick test_fifo_policy_global_order;
    Alcotest.test_case "steal local first" `Quick test_steal_policy_local_first;
    Alcotest.test_case "steal crosses contexts" `Quick test_steal_policy_steals;
    Alcotest.test_case "steal rotation" `Quick test_steal_rotation_deterministic;
    Alcotest.test_case "remove queued item" `Quick test_scheduler_remove;
    Alcotest.test_case "counts" `Quick test_scheduler_counts;
  ]
