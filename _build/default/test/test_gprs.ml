(* Fault-free GPRS engine tests: the deterministic execution engine must
   produce the same architectural results as the Pthreads baseline on
   every program shape, while creating/ordering/retiring sub-threads. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let grun ?(n_contexts = 4) ?(seed = 1) ?(ordering = Gprs.Order.Balance_aware)
    ?max_cycles program =
  Gprs.Engine.run
    { Gprs.Engine.default_config with n_contexts; seed; ordering; max_cycles }
    program

let mem0 (r : Exec.State.run_result) = Vm.Mem.read r.Exec.State.final_mem 0

let test_fork_join () =
  let r = grun (Tprog.fork_join_sum ~workers:8 ()) in
  checkb "completed" false r.Exec.State.dnc;
  check "sum" (Tprog.fork_join_expected 8) (mem0 r)

let test_fork_join_single_context () =
  let r = grun ~n_contexts:1 (Tprog.fork_join_sum ~workers:5 ()) in
  check "sum" (Tprog.fork_join_expected 5) (mem0 r)

let test_fork_join_round_robin () =
  let r = grun ~ordering:Gprs.Order.Round_robin (Tprog.fork_join_sum ~workers:8 ()) in
  check "sum" (Tprog.fork_join_expected 8) (mem0 r)

let test_mutex_counter () =
  let r = grun (Tprog.locked_counter ~workers:6 ~iters:25 ()) in
  check "count" 150 (mem0 r)

let test_mutex_counter_round_robin () =
  let r =
    grun ~ordering:Gprs.Order.Round_robin (Tprog.locked_counter ~workers:6 ~iters:25 ())
  in
  check "count" 150 (mem0 r)

let test_atomic_adds () =
  let r = grun (Tprog.atomic_adds ~workers:4 ~iters:10 ()) in
  check "count" 40 (mem0 r)

let test_barrier () =
  let r = grun ~n_contexts:3 (Tprog.barrier_phases ~n:7 ()) in
  check "no violation" 0 (mem0 r)

let test_pipeline () =
  let r = grun ~n_contexts:4 (Tprog.pipeline ~blocks:25 ~consumers:3 ()) in
  check "processed" (Tprog.pipeline_expected 25) (mem0 r)

let test_pipeline_round_robin () =
  let r =
    grun ~n_contexts:4 ~ordering:Gprs.Order.Round_robin
      (Tprog.pipeline ~blocks:25 ~consumers:3 ())
  in
  check "processed" (Tprog.pipeline_expected 25) (mem0 r)

let test_pipeline_weighted () =
  let p = Tprog.pipeline ~blocks:25 ~consumers:3 () in
  let p = { p with Vm.Isa.group_weights = [| 2; 1 |] } in
  let r = grun ~n_contexts:4 ~ordering:Gprs.Order.Weighted p in
  check "processed" (Tprog.pipeline_expected 25) (mem0 r)

let test_alloc_churn () =
  let r = grun (Tprog.alloc_churn ~workers:4 ~iters:6 ()) in
  check "sum" (Tprog.alloc_churn_expected 4 6) (mem0 r)

let test_nonstd_region () =
  let r = grun (Tprog.nonstd_region ~workers:4 ~iters:10 ()) in
  check "count" 40 (mem0 r)

let test_file_io () =
  let r = grun (Tprog.file_transform ~n:5 ()) in
  match r.Exec.State.outputs with
  | [ ("out", data) ] -> Alcotest.(check (array int)) "tripled" [| 3; 6; 9; 12; 15 |] data
  | _ -> Alcotest.fail "expected one output"

let test_subthreads_created () =
  let r = grun (Tprog.locked_counter ~workers:4 ~iters:5 ()) in
  let subs = Sim.Stats.get r.Exec.State.run_stats "gprs.subthreads" in
  (* 1 (main) + per worker: 1 initial + 20 lock subs + ... at least
     workers * iters lock boundaries. *)
  checkb (Printf.sprintf "many subs (%d)" subs) true (subs >= 4 * 5);
  check "all retired" subs (Sim.Stats.get r.Exec.State.run_stats "gprs.retired")

let test_tokens_granted () =
  let r = grun (Tprog.locked_counter ~workers:4 ~iters:5 ()) in
  checkb "tokens flowed" true (Sim.Stats.get r.Exec.State.run_stats "gprs.tokens" > 20)

let test_determinism () =
  let run1 = grun ~seed:3 (Tprog.pipeline ~blocks:20 ~consumers:2 ()) in
  let run2 = grun ~seed:3 (Tprog.pipeline ~blocks:20 ~consumers:2 ()) in
  check "same cycles" run1.Exec.State.sim_cycles run2.Exec.State.sim_cycles;
  check "same subs"
    (Sim.Stats.get run1.Exec.State.run_stats "gprs.subthreads")
    (Sim.Stats.get run2.Exec.State.run_stats "gprs.subthreads")

let test_determinism_across_seeds () =
  (* GPRS's promise: the deterministic schedule does not depend on the
     seed (which only drives fault injection and baseline scheduling). *)
  let run1 = grun ~seed:1 (Tprog.pipeline ~blocks:20 ~consumers:2 ()) in
  let run2 = grun ~seed:99 (Tprog.pipeline ~blocks:20 ~consumers:2 ()) in
  check "same result" (mem0 run1) (mem0 run2);
  check "same subthreads"
    (Sim.Stats.get run1.Exec.State.run_stats "gprs.subthreads")
    (Sim.Stats.get run2.Exec.State.run_stats "gprs.subthreads");
  check "same cycles" run1.Exec.State.sim_cycles run2.Exec.State.sim_cycles

let test_matches_baseline_everywhere () =
  let programs =
    [
      ("fork_join", Tprog.fork_join_sum ~workers:6 ());
      ("locked", Tprog.locked_counter ~workers:3 ~iters:12 ());
      ("atomic", Tprog.atomic_adds ~workers:3 ~iters:7 ());
      ("barrier", Tprog.barrier_phases ~n:5 ());
      ("pipeline", Tprog.pipeline ~blocks:15 ~consumers:2 ());
      ("alloc", Tprog.alloc_churn ~workers:3 ~iters:4 ());
    ]
  in
  List.iter
    (fun (name, p) ->
      let b =
        Exec.Baseline.run { Exec.Baseline.default_config with n_contexts = 4 } p
      in
      let g = grun p in
      check (name ^ ": same result") (mem0 b) (mem0 g))
    programs

let test_recorded_ordering_results () =
  (* The nondeterministic (recorded-order) variant of §2.4: same results,
     no enforced turns. *)
  let programs =
    [
      ("fork_join", Tprog.fork_join_sum ~workers:6 (), Tprog.fork_join_expected 6);
      ("locked", Tprog.locked_counter ~workers:4 ~iters:12 (), 48);
      ("pipeline", Tprog.pipeline ~blocks:20 ~consumers:3 (), Tprog.pipeline_expected 20);
    ]
  in
  List.iter
    (fun (name, p, expected) ->
      let r = grun ~ordering:Gprs.Order.Recorded p in
      checkb (name ^ " completed") false r.Exec.State.dnc;
      check (name ^ " result") expected (mem0 r))
    programs

let test_recorded_no_token_waits () =
  (* Recorded mode still creates sub-threads but grants on arrival. *)
  let r = grun ~ordering:Gprs.Order.Recorded (Tprog.locked_counter ~workers:4 ~iters:10 ()) in
  checkb "subs created" true (Sim.Stats.get r.Exec.State.run_stats "gprs.subthreads" > 40);
  check "all retired"
    (Sim.Stats.get r.Exec.State.run_stats "gprs.subthreads")
    (Sim.Stats.get r.Exec.State.run_stats "gprs.retired")

let test_recorded_cheaper_than_round_robin () =
  (* No ordering waits: recorded should not exceed the round-robin time
     on a pipeline. *)
  let p = Tprog.pipeline ~blocks:30 ~consumers:3 ~work_c:20_000 () in
  let rr = (grun ~ordering:Gprs.Order.Round_robin p).Exec.State.sim_cycles in
  let rec_ = (grun ~ordering:Gprs.Order.Recorded p).Exec.State.sim_cycles in
  checkb (Printf.sprintf "recorded <= round-robin (%d vs %d)" rec_ rr) true (rec_ <= rr)

let test_dnc_budget () =
  let r = grun ~max_cycles:500 (Tprog.fork_join_sum ~workers:8 ()) in
  checkb "dnc" true r.Exec.State.dnc

let test_rol_drains () =
  let r = grun (Tprog.atomic_adds ~workers:4 ~iters:10 ()) in
  check "rol high-water positive" 1
    (min 1 (Sim.Stats.get r.Exec.State.run_stats "gprs.rol_depth"));
  (* Completion requires full retirement, so retired = created. *)
  check "retired all"
    (Sim.Stats.get r.Exec.State.run_stats "gprs.subthreads")
    (Sim.Stats.get r.Exec.State.run_stats "gprs.retired")

let test_fork_cheap_under_gprs () =
  (* DEX intercepts thread creation: many tiny threads must not pay the
     OS thread-creation cost, so GPRS beats the baseline here. *)
  let p = Tprog.fork_join_sum ~work:2_000 ~workers:16 () in
  let b = Exec.Baseline.run { Exec.Baseline.default_config with n_contexts = 4 } p in
  let g = grun p in
  check "same result" (mem0 b) (mem0 g);
  checkb
    (Printf.sprintf "gprs faster (%d vs %d)" g.Exec.State.sim_cycles
       b.Exec.State.sim_cycles)
    true
    (g.Exec.State.sim_cycles < b.Exec.State.sim_cycles)

let suite =
  [
    Alcotest.test_case "fork/join" `Quick test_fork_join;
    Alcotest.test_case "fork/join 1 ctx" `Quick test_fork_join_single_context;
    Alcotest.test_case "fork/join round-robin" `Quick test_fork_join_round_robin;
    Alcotest.test_case "mutex counter" `Quick test_mutex_counter;
    Alcotest.test_case "mutex counter round-robin" `Quick test_mutex_counter_round_robin;
    Alcotest.test_case "atomic adds" `Quick test_atomic_adds;
    Alcotest.test_case "barrier" `Quick test_barrier;
    Alcotest.test_case "pipeline balance-aware" `Quick test_pipeline;
    Alcotest.test_case "pipeline round-robin" `Quick test_pipeline_round_robin;
    Alcotest.test_case "pipeline weighted" `Quick test_pipeline_weighted;
    Alcotest.test_case "alloc churn" `Quick test_alloc_churn;
    Alcotest.test_case "nonstd in cpr region" `Quick test_nonstd_region;
    Alcotest.test_case "file io" `Quick test_file_io;
    Alcotest.test_case "sub-threads created+retired" `Quick test_subthreads_created;
    Alcotest.test_case "tokens granted" `Quick test_tokens_granted;
    Alcotest.test_case "determinism same seed" `Quick test_determinism;
    Alcotest.test_case "determinism across seeds" `Quick test_determinism_across_seeds;
    Alcotest.test_case "matches baseline" `Quick test_matches_baseline_everywhere;
    Alcotest.test_case "recorded ordering results" `Quick test_recorded_ordering_results;
    Alcotest.test_case "recorded no token waits" `Quick test_recorded_no_token_waits;
    Alcotest.test_case "recorded cheaper than rr" `Quick test_recorded_cheaper_than_round_robin;
    Alcotest.test_case "dnc budget" `Quick test_dnc_budget;
    Alcotest.test_case "rol drains" `Quick test_rol_drains;
    Alcotest.test_case "fork cheap under DEX" `Quick test_fork_cheap_under_gprs;
  ]
