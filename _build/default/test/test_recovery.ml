(* GPRS recovery tests: selective restart, basic recovery, hybrid regions
   and runtime exceptions, all under injected exceptions, checked against
   the exception-free oracle. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let grun ?(n_contexts = 4) ?(seed = 1) ?(rate = 0.0)
    ?(recovery = Gprs.Engine.Selective) ?(process = Faults.Injector.Periodic)
    ?max_cycles ?(livelock = 100_000) program =
  Gprs.Engine.run
    {
      Gprs.Engine.default_config with
      n_contexts;
      seed;
      recovery;
      injector = Faults.Injector.config ~process rate;
      max_cycles;
      livelock_squashes = livelock;
    }
    program

let mem0 (r : Exec.State.run_result) = Vm.Mem.read r.Exec.State.final_mem 0

let recoveries (r : Exec.State.run_result) =
  Sim.Stats.get r.Exec.State.run_stats "gprs.recoveries"
  + Sim.Stats.get r.Exec.State.run_stats "gprs.runtime_exceptions"

let test_selective_fork_join () =
  let r = grun ~rate:20.0 (Tprog.fork_join_sum ~workers:8 ()) in
  checkb "completed" false r.Exec.State.dnc;
  checkb "recovered at least once" true (recoveries r > 0);
  check "exact" (Tprog.fork_join_expected 8) (mem0 r)

let test_selective_locked_counter () =
  let r = grun ~rate:25.0 (Tprog.locked_counter ~workers:4 ~iters:20 ()) in
  checkb "completed" false r.Exec.State.dnc;
  check "exact" 80 (mem0 r)

let test_selective_atomics () =
  let r = grun ~rate:25.0 (Tprog.atomic_adds ~workers:4 ~iters:12 ()) in
  checkb "completed" false r.Exec.State.dnc;
  check "exact" 48 (mem0 r)

let test_selective_barrier () =
  let r = grun ~rate:25.0 (Tprog.barrier_phases ~n:6 ()) in
  checkb "completed" false r.Exec.State.dnc;
  check "no violation" 0 (mem0 r)

let test_selective_pipeline () =
  let r = grun ~rate:20.0 (Tprog.pipeline ~blocks:25 ~consumers:3 ()) in
  checkb "completed" false r.Exec.State.dnc;
  check "exact" (Tprog.pipeline_expected 25) (mem0 r)

let test_selective_alloc () =
  let r = grun ~rate:20.0 (Tprog.alloc_churn ~workers:3 ~iters:6 ()) in
  checkb "completed" false r.Exec.State.dnc;
  check "exact" (Tprog.alloc_churn_expected 3 6) (mem0 r)

let test_selective_file_output () =
  let r = grun ~rate:25.0 (Tprog.file_transform ~n:60 ()) in
  checkb "completed" false r.Exec.State.dnc;
  match r.Exec.State.outputs with
  | [ ("out", data) ] ->
    Alcotest.(check (array int)) "exact file" (Array.init 60 (fun i -> 3 * (i + 1))) data
  | _ -> Alcotest.fail "expected one output"

let test_hybrid_region () =
  let r = grun ~rate:15.0 (Tprog.nonstd_region ~workers:4 ~iters:10 ()) in
  checkb "completed" false r.Exec.State.dnc;
  check "exact" 40 (mem0 r)

let test_basic_recovery () =
  let r =
    grun ~rate:15.0 ~recovery:Gprs.Engine.Basic
      (Tprog.locked_counter ~workers:4 ~iters:15 ())
  in
  checkb "completed" false r.Exec.State.dnc;
  check "exact" 60 (mem0 r)

let test_basic_squashes_more () =
  (* Basic recovery discards the victim and ALL younger sub-threads;
     selective discards only dependents. *)
  let squashed recovery =
    let r =
      grun ~rate:10.0 ~recovery ~seed:5 (Tprog.fork_join_sum ~workers:8 ())
    in
    checkb "completed" false r.Exec.State.dnc;
    check "exact" (Tprog.fork_join_expected 8) (mem0 r);
    Sim.Stats.get r.Exec.State.run_stats "gprs.squashed_subs"
  in
  let basic = squashed Gprs.Engine.Basic in
  let selective = squashed Gprs.Engine.Selective in
  checkb
    (Printf.sprintf "basic >= selective (%d vs %d)" basic selective)
    true (basic >= selective)

let test_poisson_process () =
  let r =
    grun ~rate:20.0 ~process:Faults.Injector.Poisson
      (Tprog.locked_counter ~workers:4 ~iters:15 ())
  in
  checkb "completed" false r.Exec.State.dnc;
  check "exact" 60 (mem0 r)

let test_survives_very_high_rate () =
  (* Sub-threads here are small, so GPRS absorbs rates where CPR dies. *)
  let r = grun ~rate:100.0 (Tprog.locked_counter ~workers:4 ~iters:12 ()) in
  checkb "completed" false r.Exec.State.dnc;
  check "exact" 48 (mem0 r)

let test_exceptions_on_idle_contexts () =
  (* More contexts than work: many exceptions strike idle contexts and
     exercise the WAL-based runtime repair path. *)
  let r =
    grun ~n_contexts:16 ~rate:100.0
      (Tprog.locked_counter ~work:30_000 ~workers:2 ~iters:40 ())
  in
  checkb "completed" false r.Exec.State.dnc;
  checkb "runtime exceptions seen" true
    (Sim.Stats.get r.Exec.State.run_stats "gprs.runtime_exceptions" > 0);
  check "exact" 80 (mem0 r)

let test_determinism_with_faults () =
  let r1 = grun ~rate:20.0 ~seed:4 (Tprog.atomic_adds ~workers:3 ~iters:10 ()) in
  let r2 = grun ~rate:20.0 ~seed:4 (Tprog.atomic_adds ~workers:3 ~iters:10 ()) in
  check "same cycles" r1.Exec.State.sim_cycles r2.Exec.State.sim_cycles;
  check "same squashes"
    (Sim.Stats.get r1.Exec.State.run_stats "gprs.squashed_subs")
    (Sim.Stats.get r2.Exec.State.run_stats "gprs.squashed_subs")

let test_gprs_beats_cpr_at_high_rate () =
  (* The headline behaviour (paper Fig. 10): at rates where CPR fails to
     complete, GPRS finishes with bounded overhead. *)
  (* Independent sub-threads (fork/join): selective restart loses only
     the struck worker, while CPR keeps discarding the whole program. The
     rate is chosen so the inter-exception gap ~ the detection latency:
     nearly every coordinated checkpoint is contaminated, while individual
     60k-cycle sub-threads still usually finish between strikes. *)
  let p = Tprog.fork_join_sum ~work:60_000 ~workers:16 () in
  let budget = 120 * 1_000_000 in
  let c =
    Cpr.run
      {
        Cpr.default_config with
        n_contexts = 4;
        checkpoint_interval = 0.02;
        injector = Faults.Injector.config 250.0;
        livelock_rollbacks = 40;
        max_cycles = Some budget;
      }
      p
  in
  let g = grun ~rate:250.0 ~max_cycles:budget p in
  checkb "cpr dnc" true c.Exec.State.dnc;
  checkb "gprs completes" false g.Exec.State.dnc;
  check "gprs exact" (Tprog.fork_join_expected 16) (mem0 g)

let test_recorded_order_recovery () =
  (* Selective restart works off the recorded dynamic order too. *)
  let r =
    Gprs.Engine.run
      {
        Gprs.Engine.default_config with
        n_contexts = 4;
        ordering = Gprs.Order.Recorded;
        injector = Faults.Injector.config 40.0;
      }
      (Tprog.locked_counter ~work:20_000 ~workers:4 ~iters:20 ())
  in
  checkb "completed" false r.Exec.State.dnc;
  check "exact" 80 (mem0 r)

let test_context_revocation_survives () =
  (* Permanent revocations: the run continues on the surviving contexts. *)
  let r =
    Gprs.Engine.run
      {
        Gprs.Engine.default_config with
        n_contexts = 8;
        revoke_contexts = true;
        injector =
          Faults.Injector.config ~kinds:[ Faults.Injector.Resource_revocation ] 20.0;
        max_cycles = Some 2_000_000_000;
      }
      (Tprog.fork_join_sum ~work:600_000 ~workers:16 ())
  in
  checkb "completed" false r.Exec.State.dnc;
  checkb "contexts were revoked" true
    (Sim.Stats.get r.Exec.State.run_stats "gprs.contexts_revoked" > 0);
  check "exact" (Tprog.fork_join_expected 16) (mem0 r)

let test_all_contexts_revoked_is_dnc () =
  let r =
    Gprs.Engine.run
      {
        Gprs.Engine.default_config with
        n_contexts = 2;
        revoke_contexts = true;
        injector =
          Faults.Injector.config ~kinds:[ Faults.Injector.Resource_revocation ] 200.0;
        max_cycles = Some 2_000_000_000;
      }
      (Tprog.fork_join_sum ~work:2_000_000 ~workers:8 ())
  in
  checkb "dnc once the machine is gone" true r.Exec.State.dnc

let test_unaffected_work_not_discarded () =
  (* With selective restart the squashed work per recovery should be a
     small fraction of all sub-threads. *)
  let r = grun ~rate:10.0 (Tprog.fork_join_sum ~workers:8 ()) in
  let squashed = Sim.Stats.get r.Exec.State.run_stats "gprs.squashed_subs" in
  let recs = Sim.Stats.get r.Exec.State.run_stats "gprs.recoveries" in
  if recs > 0 then
    checkb
      (Printf.sprintf "few squashed per recovery (%d/%d)" squashed recs)
      true
      (squashed / recs <= 4)

let suite =
  [
    Alcotest.test_case "selective: fork/join" `Quick test_selective_fork_join;
    Alcotest.test_case "selective: locked counter" `Quick test_selective_locked_counter;
    Alcotest.test_case "selective: atomics" `Quick test_selective_atomics;
    Alcotest.test_case "selective: barrier" `Quick test_selective_barrier;
    Alcotest.test_case "selective: pipeline" `Quick test_selective_pipeline;
    Alcotest.test_case "selective: allocator" `Quick test_selective_alloc;
    Alcotest.test_case "selective: file output" `Quick test_selective_file_output;
    Alcotest.test_case "hybrid region" `Quick test_hybrid_region;
    Alcotest.test_case "basic recovery" `Quick test_basic_recovery;
    Alcotest.test_case "basic squashes more" `Quick test_basic_squashes_more;
    Alcotest.test_case "poisson arrivals" `Quick test_poisson_process;
    Alcotest.test_case "very high rate" `Quick test_survives_very_high_rate;
    Alcotest.test_case "idle-context (runtime) exceptions" `Quick test_exceptions_on_idle_contexts;
    Alcotest.test_case "determinism with faults" `Quick test_determinism_with_faults;
    Alcotest.test_case "gprs beats cpr at high rate" `Quick test_gprs_beats_cpr_at_high_rate;
    Alcotest.test_case "selective discards little" `Quick test_unaffected_work_not_discarded;
    Alcotest.test_case "recorded-order recovery" `Quick test_recorded_order_recovery;
    Alcotest.test_case "context revocation survives" `Quick test_context_revocation_survives;
    Alcotest.test_case "all contexts revoked = dnc" `Quick test_all_contexts_revoked_is_dnc;
  ]
