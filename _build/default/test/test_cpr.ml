(* CPR engine tests: fault-free equivalence with the baseline, checkpoint
   penalties, rollback correctness under injected exceptions, and the
   non-completion regime at high exception rates. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let crun ?(n_contexts = 4) ?(seed = 1) ?(interval = 0.05) ?(rate = 0.0)
    ?max_cycles ?(livelock = 50) program =
  Cpr.run
    {
      Cpr.default_config with
      n_contexts;
      seed;
      checkpoint_interval = interval;
      injector = Faults.Injector.config rate;
      max_cycles;
      livelock_rollbacks = livelock;
    }
    program

let mem0 (r : Exec.State.run_result) = Vm.Mem.read r.Exec.State.final_mem 0

let test_fault_free_matches_baseline () =
  let programs =
    [
      ("fork_join", Tprog.fork_join_sum ~workers:6 ());
      ("locked", Tprog.locked_counter ~workers:3 ~iters:12 ());
      ("atomic", Tprog.atomic_adds ~workers:3 ~iters:7 ());
      ("barrier", Tprog.barrier_phases ~n:5 ());
      ("pipeline", Tprog.pipeline ~blocks:15 ~consumers:2 ());
      ("alloc", Tprog.alloc_churn ~workers:3 ~iters:4 ());
    ]
  in
  List.iter
    (fun (name, p) ->
      let b =
        Exec.Baseline.run { Exec.Baseline.default_config with n_contexts = 4 } p
      in
      let c = crun p in
      checkb (name ^ " completed") false c.Exec.State.dnc;
      check (name ^ ": same result") (mem0 b) (mem0 c))
    programs

let test_checkpoints_taken () =
  let r = crun ~interval:0.002 (Tprog.fork_join_sum ~workers:6 ()) in
  checkb "checkpoints committed" true
    (Sim.Stats.get r.Exec.State.run_stats "cpr.checkpoints" > 2)

let test_checkpointing_adds_overhead () =
  let p = Tprog.fork_join_sum ~workers:6 () in
  let b = Exec.Baseline.run { Exec.Baseline.default_config with n_contexts = 4 } p in
  let c = crun ~interval:0.002 p in
  checkb
    (Printf.sprintf "cpr slower (%d vs %d)" c.Exec.State.sim_cycles
       b.Exec.State.sim_cycles)
    true
    (c.Exec.State.sim_cycles > b.Exec.State.sim_cycles)

(* Long enough that exceptions actually strike mid-run (the detection
   latency alone is 400k cycles = 40ms of simulated time). *)
let long_counter () = Tprog.locked_counter ~work:30_000 ~workers:4 ~iters:40 ()

let test_recovers_correct_result () =
  (* Moderate rate: the run completes and the answer is exact. *)
  let r = crun ~interval:0.01 ~rate:10.0 (long_counter ()) in
  checkb "completed" false r.Exec.State.dnc;
  checkb "rolled back at least once" true
    (Sim.Stats.get r.Exec.State.run_stats "cpr.rollbacks" > 0);
  check "exact count" 160 (mem0 r)

let test_recovers_pipeline () =
  let r = crun ~interval:0.01 ~rate:6.0 (Tprog.pipeline ~blocks:20 ~consumers:2 ()) in
  checkb "completed" false r.Exec.State.dnc;
  check "exact result" (Tprog.pipeline_expected 20) (mem0 r)

let test_recovers_file_output () =
  let r = crun ~interval:0.005 ~rate:10.0 (Tprog.file_transform ~n:40 ()) in
  checkb "completed" false r.Exec.State.dnc;
  match r.Exec.State.outputs with
  | [ ("out", data) ] ->
    Alcotest.(check (array int)) "file exact" (Array.init 40 (fun i -> 3 * (i + 1))) data
  | _ -> Alcotest.fail "expected one output"

let test_alloc_rollback () =
  let r = crun ~interval:0.01 ~rate:6.0 (Tprog.alloc_churn ~workers:3 ~iters:6 ()) in
  checkb "completed" false r.Exec.State.dnc;
  check "exact" (Tprog.alloc_churn_expected 3 6) (mem0 r)

let test_dnc_at_high_rate () =
  (* Exceptions arrive faster than checkpoints can be re-established:
     the same work keeps being discarded and CPR never completes. *)
  let r =
    crun ~interval:0.05 ~rate:120.0 ~livelock:30
      ~max_cycles:(400 * 1_000_000)
      (long_counter ())
  in
  checkb "dnc" true r.Exec.State.dnc

let test_lost_work_grows_with_rate () =
  let lost rate =
    let r = crun ~interval:0.01 ~rate (long_counter ()) in
    checkb "completed" false r.Exec.State.dnc;
    Sim.Stats.get r.Exec.State.run_stats "cpr.lost_cycles"
  in
  let low = lost 4.0 and high = lost 20.0 in
  checkb (Printf.sprintf "more lost at higher rate (%d vs %d)" high low) true
    (high > low)

let test_progress_gate_blocks_commits_under_storm () =
  (* At an exception gap far below the interval, threads can never bank
     the required per-thread progress, so commits stop and the rollback
     livelock fires — the paper's "will never complete" regime. *)
  let r =
    crun ~interval:0.02 ~rate:300.0 ~livelock:30
      ~max_cycles:(200 * 1_000_000)
      (long_counter ())
  in
  checkb "dnc" true r.Exec.State.dnc;
  checkb "commits were skipped or absent" true
    (Sim.Stats.get r.Exec.State.run_stats "cpr.checkpoints" < 5)

let test_progress_gate_disabled_crawls_further () =
  (* Without the gate, CPR commits arbitrary quiesced states and banks
     partial progress between exceptions. *)
  let run fraction =
    Cpr.run
      {
        Cpr.default_config with
        n_contexts = 4;
        checkpoint_interval = 0.02;
        injector = Faults.Injector.config 300.0;
        livelock_rollbacks = 30;
        max_cycles = Some (200 * 1_000_000);
        commit_progress_fraction = fraction;
      }
      (long_counter ())
  in
  let gated = run 0.5 and ungated = run 0.0 in
  checkb "ungated commits at least as many checkpoints" true
    (Sim.Stats.get ungated.Exec.State.run_stats "cpr.checkpoints"
    >= Sim.Stats.get gated.Exec.State.run_stats "cpr.checkpoints")

let test_determinism () =
  let r1 = crun ~interval:0.01 ~rate:5.0 ~seed:3 (Tprog.atomic_adds ~workers:3 ~iters:8 ()) in
  let r2 = crun ~interval:0.01 ~rate:5.0 ~seed:3 (Tprog.atomic_adds ~workers:3 ~iters:8 ()) in
  check "same cycles" r1.Exec.State.sim_cycles r2.Exec.State.sim_cycles;
  check "same rollbacks"
    (Sim.Stats.get r1.Exec.State.run_stats "cpr.rollbacks")
    (Sim.Stats.get r2.Exec.State.run_stats "cpr.rollbacks")

let suite =
  [
    Alcotest.test_case "fault-free matches baseline" `Quick test_fault_free_matches_baseline;
    Alcotest.test_case "checkpoints taken" `Quick test_checkpoints_taken;
    Alcotest.test_case "checkpoint overhead" `Quick test_checkpointing_adds_overhead;
    Alcotest.test_case "recovers locked counter" `Quick test_recovers_correct_result;
    Alcotest.test_case "recovers pipeline" `Quick test_recovers_pipeline;
    Alcotest.test_case "recovers file output" `Quick test_recovers_file_output;
    Alcotest.test_case "recovers allocator" `Quick test_alloc_rollback;
    Alcotest.test_case "dnc at high rate" `Quick test_dnc_at_high_rate;
    Alcotest.test_case "lost work grows with rate" `Quick test_lost_work_grows_with_rate;
    Alcotest.test_case "progress gate under storm" `Quick
      test_progress_gate_blocks_commits_under_storm;
    Alcotest.test_case "progress gate ablation" `Quick
      test_progress_gate_disabled_crawls_further;
    Alcotest.test_case "determinism" `Quick test_determinism;
  ]
