(* Unit tests for the ordering schedules (the token policies). *)

let check = Alcotest.(check int)
let check_opt = Alcotest.(check (option int))

let grant t =
  match Gprs.Order.holder t with
  | Some tid ->
    Gprs.Order.advance t ~granted:tid;
    tid
  | None -> Alcotest.fail "no holder"

let test_round_robin_rotation () =
  let t = Gprs.Order.create Gprs.Order.Round_robin ~group_weights:[| 1 |] in
  for tid = 0 to 2 do
    Gprs.Order.add_thread t ~tid ~group:0
  done;
  Alcotest.(check (list int))
    "cycles in creation order"
    [ 0; 1; 2; 0; 1; 2 ]
    (List.init 6 (fun _ -> grant t))

let test_round_robin_ignores_groups () =
  let t = Gprs.Order.create Gprs.Order.Round_robin ~group_weights:[| 1; 1 |] in
  Gprs.Order.add_thread t ~tid:0 ~group:1;
  Gprs.Order.add_thread t ~tid:1 ~group:0;
  Alcotest.(check (list int)) "one rotation" [ 0; 1; 0 ]
    (List.init 3 (fun _ -> grant t))

let test_skip_ineligible () =
  let t = Gprs.Order.create Gprs.Order.Round_robin ~group_weights:[| 1 |] in
  for tid = 0 to 2 do
    Gprs.Order.add_thread t ~tid ~group:0
  done;
  Gprs.Order.set_eligible t 1 false;
  Alcotest.(check (list int)) "skips sleeper" [ 0; 2; 0 ]
    (List.init 3 (fun _ -> grant t));
  Gprs.Order.set_eligible t 1 true;
  check "sleeper returns" 1 (grant t)

let test_none_when_all_ineligible () =
  let t = Gprs.Order.create Gprs.Order.Round_robin ~group_weights:[| 1 |] in
  Gprs.Order.add_thread t ~tid:0 ~group:0;
  Gprs.Order.set_eligible t 0 false;
  check_opt "none" None (Gprs.Order.holder t)

let test_remove_thread () =
  let t = Gprs.Order.create Gprs.Order.Round_robin ~group_weights:[| 1 |] in
  for tid = 0 to 2 do
    Gprs.Order.add_thread t ~tid ~group:0
  done;
  ignore (grant t);
  (* token now past 0 *)
  Gprs.Order.remove_thread t 1;
  Alcotest.(check (list int)) "1 gone" [ 2; 0; 2 ] (List.init 3 (fun _ -> grant t));
  check "live" 2 (Gprs.Order.live_count t)

let test_balance_aware_alternates_groups () =
  (* The paper's Pbzip2 shape: group 0 = reader, group 1 = compressors.
     Fig 7(b): turns go TH0, TH1, TH0, TH2, TH0, TH1 ... *)
  let t = Gprs.Order.create Gprs.Order.Balance_aware ~group_weights:[| 1; 1 |] in
  Gprs.Order.add_thread t ~tid:0 ~group:0;
  Gprs.Order.add_thread t ~tid:1 ~group:1;
  Gprs.Order.add_thread t ~tid:2 ~group:1;
  Alcotest.(check (list int))
    "alternation with intra-group rotation"
    [ 0; 1; 0; 2; 0; 1 ]
    (List.init 6 (fun _ -> grant t))

let test_balance_aware_skips_empty_group () =
  let t = Gprs.Order.create Gprs.Order.Balance_aware ~group_weights:[| 1; 1; 1 |] in
  Gprs.Order.add_thread t ~tid:0 ~group:0;
  Gprs.Order.add_thread t ~tid:1 ~group:2;
  Alcotest.(check (list int)) "group 1 empty" [ 0; 1; 0; 1 ]
    (List.init 4 (fun _ -> grant t))

let test_weighted_gives_extra_turns () =
  (* Weight 2 for group 0: two reader turns per compressor turn. *)
  let t = Gprs.Order.create Gprs.Order.Weighted ~group_weights:[| 2; 1 |] in
  Gprs.Order.add_thread t ~tid:0 ~group:0;
  Gprs.Order.add_thread t ~tid:1 ~group:1;
  Gprs.Order.add_thread t ~tid:2 ~group:1;
  Alcotest.(check (list int))
    "2:1 turn ratio"
    [ 0; 0; 1; 0; 0; 2 ]
    (List.init 6 (fun _ -> grant t))

let test_weighted_min_weight_one () =
  let t = Gprs.Order.create Gprs.Order.Weighted ~group_weights:[| 0; 1 |] in
  Gprs.Order.add_thread t ~tid:0 ~group:0;
  Gprs.Order.add_thread t ~tid:1 ~group:1;
  (* weight 0 is clamped to 1 *)
  Alcotest.(check (list int)) "clamped" [ 0; 1; 0; 1 ]
    (List.init 4 (fun _ -> grant t))

let test_holder_is_pure () =
  let t = Gprs.Order.create Gprs.Order.Round_robin ~group_weights:[| 1 |] in
  Gprs.Order.add_thread t ~tid:0 ~group:0;
  Gprs.Order.add_thread t ~tid:1 ~group:0;
  check_opt "peek" (Some 0) (Gprs.Order.holder t);
  check_opt "peek again" (Some 0) (Gprs.Order.holder t)

let test_late_join_enters_rotation () =
  let t = Gprs.Order.create Gprs.Order.Round_robin ~group_weights:[| 1 |] in
  Gprs.Order.add_thread t ~tid:0 ~group:0;
  ignore (grant t);
  Gprs.Order.add_thread t ~tid:1 ~group:0;
  Alcotest.(check (list int)) "new thread joins" [ 1; 0; 1 ]
    (List.init 3 (fun _ -> grant t))

let suite =
  [
    Alcotest.test_case "round-robin rotation" `Quick test_round_robin_rotation;
    Alcotest.test_case "round-robin ignores groups" `Quick test_round_robin_ignores_groups;
    Alcotest.test_case "skip ineligible" `Quick test_skip_ineligible;
    Alcotest.test_case "none when all ineligible" `Quick test_none_when_all_ineligible;
    Alcotest.test_case "remove thread" `Quick test_remove_thread;
    Alcotest.test_case "balance-aware alternation" `Quick test_balance_aware_alternates_groups;
    Alcotest.test_case "balance-aware skips empty group" `Quick test_balance_aware_skips_empty_group;
    Alcotest.test_case "weighted extra turns" `Quick test_weighted_gives_extra_turns;
    Alcotest.test_case "weighted clamps zero" `Quick test_weighted_min_weight_one;
    Alcotest.test_case "holder is pure" `Quick test_holder_is_pure;
    Alcotest.test_case "late join" `Quick test_late_join_enters_rotation;
  ]
