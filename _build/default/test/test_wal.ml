(* Unit tests for the write-ahead log and the undo log. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_lsn_monotonic () =
  let w = Wal.create () in
  let l1 = Wal.append w ~order:0 (Wal.Alloc { addr = 1; size = 2 }) in
  let l2 = Wal.append w ~order:0 (Wal.Free { addr = 1; size = 2 }) in
  let l3 = Wal.append w ~order:1 (Wal.Thread_create { tid = 5 }) in
  checkb "increasing" true (l1 < l2 && l2 < l3)

let test_entries_for_newest_first () =
  let w = Wal.create () in
  ignore (Wal.append w ~order:0 (Wal.Alloc { addr = 1; size = 1 }));
  ignore (Wal.append w ~order:1 (Wal.Alloc { addr = 2; size = 1 }));
  ignore (Wal.append w ~order:1 (Wal.Alloc { addr = 3; size = 1 }));
  ignore (Wal.append w ~order:2 (Wal.Alloc { addr = 4; size = 1 }));
  let entries = Wal.entries_for w ~orders:(fun o -> o = 1) in
  check "two entries" 2 (List.length entries);
  match entries with
  | [ a; b ] ->
    checkb "newest first" true (a.Wal.lsn > b.Wal.lsn)
  | _ -> Alcotest.fail "unexpected shape"

let test_drop_for () =
  let w = Wal.create () in
  for i = 0 to 9 do
    ignore (Wal.append w ~order:(i mod 3) (Wal.Rol_insert { sub = i }))
  done;
  check "dropped order-1 entries" 3 (Wal.drop_for w ~orders:(fun o -> o = 1));
  check "rest live" 7 (Wal.size w)

let test_prune_below () =
  let w = Wal.create () in
  for i = 0 to 9 do
    ignore (Wal.append w ~order:i (Wal.Rol_insert { sub = i }))
  done;
  check "pruned" 5 (Wal.prune_below w ~order:5);
  check "live" 5 (Wal.size w);
  check "high water unchanged" 10 (Wal.high_water w)

let test_all_oldest_first () =
  let w = Wal.create () in
  ignore (Wal.append w ~order:0 (Wal.Io_op { file = 0; words = 1 }));
  ignore (Wal.append w ~order:1 (Wal.Io_op { file = 0; words = 2 }));
  match Wal.all w with
  | [ a; b ] -> checkb "oldest first" true (a.Wal.lsn < b.Wal.lsn)
  | _ -> Alcotest.fail "expected two"

(* Undo log *)

let mk_state () =
  let mem = Vm.Mem.create ~words:64 in
  let atomics = Array.make 4 0 in
  let io = Vm.Io.create () in
  let f = Vm.Io.add_file io ~name:"f" [| 7; 8 |] in
  (mem, atomics, io, f)

let test_undo_first_write_only () =
  let log = Exec.Undo_log.create () in
  checkb "first" true (Exec.Undo_log.note log (Exec.Undo_log.K_mem 3) ~old:10);
  checkb "second ignored" false (Exec.Undo_log.note log (Exec.Undo_log.K_mem 3) ~old:99);
  check "size" 1 (Exec.Undo_log.size log)

let test_undo_replay_restores () =
  let mem, atomics, io, f = mk_state () in
  let log = Exec.Undo_log.create () in
  (* mutate with pre-image capture *)
  ignore (Exec.Undo_log.note log (Exec.Undo_log.K_mem 3) ~old:(Vm.Mem.read mem 3));
  Vm.Mem.write mem 3 42;
  ignore (Exec.Undo_log.note log (Exec.Undo_log.K_atomic 1) ~old:atomics.(1));
  atomics.(1) <- 5;
  ignore (Exec.Undo_log.note log (Exec.Undo_log.K_file_len f) ~old:(Vm.Io.size io f));
  ignore
    (Exec.Undo_log.note log (Exec.Undo_log.K_file (f, 5)) ~old:(Vm.Io.read io f ~off:5));
  Vm.Io.write io f ~off:5 77;
  let restored = Exec.Undo_log.replay ~mem ~atomics ~io log in
  check "restored words" 4 restored;
  check "mem back" 0 (Vm.Mem.read mem 3);
  check "atomic back" 0 atomics.(1);
  check "file len back" 2 (Vm.Io.size io f);
  checkb "log reusable" true (Exec.Undo_log.is_empty log)

let test_undo_reverse_order () =
  (* Two writes to the same location across two logs: merging keeps the
     older pre-image. *)
  let mem, atomics, io, _ = mk_state () in
  Vm.Mem.write mem 0 1;
  let older = Exec.Undo_log.create () in
  ignore (Exec.Undo_log.note older (Exec.Undo_log.K_mem 0) ~old:1);
  Vm.Mem.write mem 0 2;
  let newer = Exec.Undo_log.create () in
  ignore (Exec.Undo_log.note newer (Exec.Undo_log.K_mem 0) ~old:2);
  Vm.Mem.write mem 0 3;
  Exec.Undo_log.merge_newer ~older newer;
  ignore (Exec.Undo_log.replay ~mem ~atomics ~io older);
  check "older pre-image wins" 1 (Vm.Mem.read mem 0)

let test_undo_keys () =
  let log = Exec.Undo_log.create () in
  ignore (Exec.Undo_log.note log (Exec.Undo_log.K_mem 1) ~old:0);
  ignore (Exec.Undo_log.note log (Exec.Undo_log.K_mem 2) ~old:0);
  check "two keys" 2 (List.length (Exec.Undo_log.keys log))

let suite =
  [
    Alcotest.test_case "lsn monotonic" `Quick test_lsn_monotonic;
    Alcotest.test_case "entries_for newest first" `Quick test_entries_for_newest_first;
    Alcotest.test_case "drop_for" `Quick test_drop_for;
    Alcotest.test_case "prune_below" `Quick test_prune_below;
    Alcotest.test_case "all oldest first" `Quick test_all_oldest_first;
    Alcotest.test_case "undo: first write only" `Quick test_undo_first_write_only;
    Alcotest.test_case "undo: replay restores" `Quick test_undo_replay_restores;
    Alcotest.test_case "undo: merge keeps older" `Quick test_undo_reverse_order;
    Alcotest.test_case "undo: keys" `Quick test_undo_keys;
  ]
