test/test_main.ml: Alcotest Props Test_analysis Test_cpr Test_exec Test_faults Test_gprs Test_integration Test_order Test_recovery Test_sched Test_sim Test_vm Test_wal Test_workloads
