test/test_gprs.ml: Alcotest Exec Gprs List Printf Sim Tprog Vm
