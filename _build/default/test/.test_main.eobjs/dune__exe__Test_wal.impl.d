test/test_wal.ml: Alcotest Array Exec List Vm Wal
