test/test_vm.ml: Alcotest Array List Vm
