test/test_sim.ml: Alcotest Array Fun List Option Printf Sim
