test/test_exec.ml: Alcotest Array Exec List Printf Sim Vm
