test/test_analysis.ml: Alcotest Analysis Buffer Exec Float Format List Printf String Vm Workloads
