test/test_cpr.ml: Alcotest Array Cpr Exec Faults List Printf Sim Tprog Vm
