test/test_integration.ml: Alcotest Cpr Exec Faults Float Gprs List Printf Sim Vm Workloads
