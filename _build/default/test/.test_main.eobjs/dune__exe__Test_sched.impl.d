test/test_sched.ml: Alcotest List Sched
