test/test_order.ml: Alcotest Gprs List
