test/test_faults.ml: Alcotest Faults List Printf
