test/tprog.ml: Array Vm
