test/test_workloads.ml: Alcotest Array Cpr Exec Gprs List Printf String Vm Workloads
