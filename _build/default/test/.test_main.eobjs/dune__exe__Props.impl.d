test/props.ml: Array Cpr Exec Faults Fun Gen Gprs Hashtbl List QCheck2 QCheck_alcotest Sched Sim Tprog Vm Workloads
