test/test_recovery.ml: Alcotest Array Cpr Exec Faults Gprs Printf Sim Tprog Vm
