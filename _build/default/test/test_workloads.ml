(* Workload tests: every benchmark completes under every engine with the
   same schedule-independent digest, plus per-workload structural
   oracles (bin totals, RLE round-trip, conservation, ...). *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let n_contexts = 4
let scale = 0.08

let build (spec : Workloads.Workload.spec) =
  spec.Workloads.Workload.build ~n_contexts ~grain:Workloads.Workload.Default ~scale

let run_baseline spec =
  Exec.Baseline.run { Exec.Baseline.default_config with n_contexts } (build spec)

let run_gprs ?(ordering = Gprs.Order.Balance_aware) spec =
  Gprs.Engine.run
    { Gprs.Engine.default_config with n_contexts; ordering }
    (build spec)

let run_cpr spec =
  Cpr.run
    { Cpr.default_config with n_contexts; checkpoint_interval = 0.01 }
    (build spec)

let test_all_complete_baseline () =
  List.iter
    (fun (spec : Workloads.Workload.spec) ->
      let r = run_baseline spec in
      checkb (spec.Workloads.Workload.name ^ " completes") false r.Exec.State.dnc)
    Workloads.Suite.all

let test_digests_engine_independent () =
  List.iter
    (fun (spec : Workloads.Workload.spec) ->
      let name = spec.Workloads.Workload.name in
      let d_base = spec.Workloads.Workload.digest (run_baseline spec) in
      let d_gprs = spec.Workloads.Workload.digest (run_gprs spec) in
      let d_cpr = spec.Workloads.Workload.digest (run_cpr spec) in
      checks (name ^ ": gprs = baseline") d_base d_gprs;
      checks (name ^ ": cpr = baseline") d_base d_cpr)
    Workloads.Suite.all

let test_digests_ordering_independent () =
  List.iter
    (fun name ->
      let spec = Workloads.Suite.find name in
      let d_ba = spec.Workloads.Workload.digest (run_gprs spec) in
      let d_rr =
        spec.Workloads.Workload.digest (run_gprs ~ordering:Gprs.Order.Round_robin spec)
      in
      checks (name ^ ": rr = ba") d_ba d_rr)
    [ "pbzip2"; "dedup"; "re"; "reverse-index" ]

let test_fine_grain_same_digest () =
  List.iter
    (fun name ->
      let spec = Workloads.Suite.find name in
      let fine =
        spec.Workloads.Workload.build ~n_contexts ~grain:Workloads.Workload.Fine ~scale
      in
      let r =
        Gprs.Engine.run { Gprs.Engine.default_config with n_contexts } fine
      in
      checks
        (name ^ ": fine digest matches default")
        (spec.Workloads.Workload.digest (run_baseline spec))
        (spec.Workloads.Workload.digest r))
    [ "barnes-hut"; "swaptions"; "canneal" ]

let test_histogram_bins_sum () =
  let spec = Workloads.Suite.find "histogram" in
  let r = run_baseline spec in
  let total = ref 0 in
  for b = 0 to 63 do
    total := !total + Vm.Mem.read r.Exec.State.final_mem b
  done;
  check "bins sum to item count" (int_of_float (80_000.0 *. scale)) !total

let test_wordcount_counts_sum () =
  let spec = Workloads.Suite.find "wordcount" in
  let r = run_baseline spec in
  let total = ref 0 in
  for v = 0 to 127 do
    total := !total + Vm.Mem.read r.Exec.State.final_mem v
  done;
  check "counts sum to word count" (int_of_float (60_000.0 *. scale)) !total

let test_pbzip2_roundtrip () =
  (* Decode the RLE output and compare with the input file. *)
  let spec = Workloads.Suite.find "pbzip2" in
  let p = build spec in
  let input = List.assoc "raw" p.Vm.Isa.input_files in
  let r =
    Exec.Baseline.run { Exec.Baseline.default_config with n_contexts } p
  in
  match r.Exec.State.outputs with
  | [ ("compressed", out) ] ->
    let block_words = 64 in
    let out_slot = (2 * block_words) + 2 in
    let n_blocks = Array.length input / block_words in
    let decoded = Array.make (Array.length input) (-1) in
    for blk = 0 to n_blocks - 1 do
      let base = blk * out_slot in
      let len = out.(base) in
      let pos = ref 0 in
      let k = ref 1 in
      while !k < len do
        let v = out.(base + !k) and run = out.(base + !k + 1) in
        for _ = 1 to run do
          decoded.((blk * block_words) + !pos) <- v;
          incr pos
        done;
        k := !k + 2
      done;
      check (Printf.sprintf "block %d fully decoded" blk) block_words !pos
    done;
    Alcotest.(check (array int)) "round-trip" input decoded
  | _ -> Alcotest.fail "expected compressed output"

let test_dedup_output_canonical () =
  (* Output word i must equal mix(input word i) & 0xFFFF. *)
  let spec = Workloads.Suite.find "dedup" in
  let p = build spec in
  let input = List.assoc "archive" p.Vm.Isa.input_files in
  let r = Exec.Baseline.run { Exec.Baseline.default_config with n_contexts } p in
  match r.Exec.State.outputs with
  | [ ("deduped", out) ] ->
    check "one word per chunk" (Array.length input) (Array.length out);
    Array.iteri
      (fun i v ->
        check
          (Printf.sprintf "chunk %d encoding" i)
          (Workloads.Workload.mix input.(i) land 0xFFFF)
          v)
      out
  | _ -> Alcotest.fail "expected deduped output"

let test_canneal_conserves_elements () =
  let spec = Workloads.Suite.find "canneal" in
  let r = run_gprs spec in
  let n = int_of_float (4096.0 *. scale) in
  check "sum of permutation" (n * (n - 1) / 2) (Vm.Mem.read r.Exec.State.final_mem 0)

let test_re_finds_redundancy () =
  let spec = Workloads.Suite.find "re" in
  let r = run_baseline spec in
  checkb "some redundancy found" true (Vm.Mem.read r.Exec.State.final_mem 128 > 0)

let test_reverse_index_total () =
  let spec = Workloads.Suite.find "reverse-index" in
  let r = run_baseline spec in
  let total = ref 0 in
  for b = 0 to 15 do
    total := !total + Vm.Mem.read r.Exec.State.final_mem b
  done;
  check "all links indexed" (int_of_float (4_000.0 *. scale)) !total

let test_swaptions_prices_filled () =
  let spec = Workloads.Suite.find "swaptions" in
  let r = run_baseline spec in
  let zeroes = ref 0 in
  for s = 0 to 127 do
    if Vm.Mem.read r.Exec.State.final_mem s = 0 then incr zeroes
  done;
  checkb "most prices non-zero" true (!zeroes < 8)

let test_chunk_bounds_cover () =
  List.iter
    (fun (total, parts) ->
      let covered = ref 0 in
      for i = 0 to parts - 1 do
        let lo, hi = Workloads.Workload.chunk_bounds ~total ~parts i in
        checkb "lo<=hi" true (lo <= hi);
        covered := !covered + (hi - lo)
      done;
      check (Printf.sprintf "%d/%d covers" total parts) total !covered)
    [ (10, 3); (7, 7); (100, 24); (5, 8); (0, 4) ]

let test_suite_lookup () =
  check "ten workloads" 10 (List.length Workloads.Suite.all);
  checkb "find works" true
    ((Workloads.Suite.find "pbzip2").Workloads.Workload.name = "pbzip2");
  Alcotest.check_raises "unknown raises"
    (Invalid_argument
       (Printf.sprintf "unknown workload \"nope\" (known: %s)"
          (String.concat ", " Workloads.Suite.names)))
    (fun () -> ignore (Workloads.Suite.find "nope"))

let suite =
  [
    Alcotest.test_case "all complete (baseline)" `Quick test_all_complete_baseline;
    Alcotest.test_case "digests engine-independent" `Quick test_digests_engine_independent;
    Alcotest.test_case "digests ordering-independent" `Quick test_digests_ordering_independent;
    Alcotest.test_case "fine grain same digest" `Quick test_fine_grain_same_digest;
    Alcotest.test_case "histogram bins sum" `Quick test_histogram_bins_sum;
    Alcotest.test_case "wordcount counts sum" `Quick test_wordcount_counts_sum;
    Alcotest.test_case "pbzip2 RLE round-trip" `Quick test_pbzip2_roundtrip;
    Alcotest.test_case "dedup canonical output" `Quick test_dedup_output_canonical;
    Alcotest.test_case "canneal conservation" `Quick test_canneal_conserves_elements;
    Alcotest.test_case "re finds redundancy" `Quick test_re_finds_redundancy;
    Alcotest.test_case "reverse-index total" `Quick test_reverse_index_total;
    Alcotest.test_case "swaptions prices" `Quick test_swaptions_prices_filled;
    Alcotest.test_case "chunk bounds cover" `Quick test_chunk_bounds_cover;
    Alcotest.test_case "suite lookup" `Quick test_suite_lookup;
  ]
