(* Shared miniature programs used across the engine test suites. Each
   returns a program plus an [expected] description of the final memory
   so every engine can be checked against the same oracle. *)

open Vm.Builder

(* Workers write into private slots; main sums into address 0. *)
let fork_join_sum ?(work = 400_000) ~workers () =
  let worker = proc "worker" in
  work_const worker work (fun env ->
      let i = Vm.Env.get env 0 in
      env.Vm.Env.write (1 + i) ((i + 1) * 10));
  exit_ worker;
  let main = proc "main" in
  for i = 0 to workers - 1 do
    fork main ~group:1 ~proc:"worker" ~dst:(10 + i) (fun _ -> [| i |])
  done;
  for i = 0 to workers - 1 do
    join_reg main (10 + i)
  done;
  work_const main 100 (fun env ->
      let sum = ref 0 in
      for i = 0 to workers - 1 do
        sum := !sum + env.Vm.Env.read (1 + i)
      done;
      env.Vm.Env.write 0 !sum);
  exit_ main;
  program ~mem_words:1024 ~n_groups:2 ~entry:"main" [ finish main; finish worker ]

let fork_join_expected workers = workers * (workers + 1) / 2 * 10

(* Threads increment a shared counter under a mutex. *)
let locked_counter ?(work = 50) ~workers ~iters () =
  let worker = proc "worker" in
  for_up worker ~reg:1 ~from:(fun _ -> 0) ~until:(fun _ -> iters) (fun () ->
      lock_const worker 0;
      work_const worker work (fun env -> env.Vm.Env.write 0 (env.Vm.Env.read 0 + 1));
      unlock_const worker 0);
  exit_ worker;
  let main = proc "main" in
  for i = 0 to workers - 1 do
    fork main ~group:1 ~proc:"worker" ~dst:(10 + i) (fun _ -> [||])
  done;
  for i = 0 to workers - 1 do
    join_reg main (10 + i)
  done;
  exit_ main;
  program ~mem_words:64 ~n_mutexes:1 ~n_groups:2 ~entry:"main"
    [ finish main; finish worker ]

(* Atomic fetch-and-add from several threads, mirrored into address 0. *)
let atomic_adds ~workers ~iters () =
  let worker = proc "worker" in
  for_up worker ~reg:1 ~from:(fun _ -> 0) ~until:(fun _ -> iters) (fun () ->
      compute worker 200;
      atomic worker ~var:(fun _ -> 0) ~dst:2 (fun ~old _ -> old + 1));
  exit_ worker;
  let main = proc "main" in
  for i = 0 to workers - 1 do
    fork main ~group:1 ~proc:"worker" ~dst:(10 + i) (fun _ -> [||])
  done;
  for i = 0 to workers - 1 do
    join_reg main (10 + i)
  done;
  atomic main ~var:(fun _ -> 0) ~dst:3 (fun ~old _ -> old);
  work_const main 1 (fun env -> env.Vm.Env.write 0 (Vm.Env.get env 3));
  exit_ main;
  program ~mem_words:64 ~n_atomics:1 ~n_groups:2 ~entry:"main"
    [ finish main; finish worker ]

(* Barrier-phased writers: phase-0 marks, phase-1 verifies; address 0 is
   an error flag. *)
let barrier_phases ~n () =
  let worker = proc "worker" in
  work_const worker 100 (fun env ->
      let i = Vm.Env.get env 0 in
      env.Vm.Env.write (10 + i) 1);
  barrier worker 0;
  work_const worker 100 (fun env ->
      let ok = ref true in
      for j = 0 to n - 1 do
        if env.Vm.Env.read (10 + j) <> 1 then ok := false
      done;
      if not !ok then env.Vm.Env.write 0 1);
  exit_ worker;
  let main = proc "main" in
  for i = 0 to n - 1 do
    fork main ~group:1 ~proc:"worker" ~dst:(10 + i) (fun _ -> [| i |])
  done;
  for i = 0 to n - 1 do
    join_reg main (10 + i)
  done;
  exit_ main;
  program ~mem_words:256 ~barrier_parties:[| n |] ~n_groups:2 ~entry:"main"
    [ finish main; finish worker ]

(* A 3-stage pipeline in miniature (a tiny Pbzip2): one producer reads
   "blocks" and enqueues into a 4-slot FIFO guarded by mutex 0 / condvars
   0 (not-full) and 1 (not-empty); [consumers] dequeue and add processed
   values into an atomic accumulator mirrored to address 0 at the end.
   FIFO state: addr 100 = count, 101 = head, 102 = tail, 103.. = slots. *)
let pipeline ~blocks ~consumers ?(work_c = 3_000) () =
  let cap = 4 in
  let count = 100 and head = 101 and tail = 102 and slots = 103 in
  let producer = proc "producer" in
  for_up producer ~reg:1 ~from:(fun _ -> 0) ~until:(fun _ -> blocks) (fun () ->
      lock_const producer 0;
      let top = fresh_label producer in
      let go = fresh_label producer in
      bind producer top;
      work_const producer 5 (fun env -> Vm.Env.set env 2 (env.Vm.Env.read count));
      if_to producer (fun r -> r.(2) < cap) go;
      cond_wait producer ~c:0 ~m:0;
      goto producer top;
      bind producer go;
      work_const producer 20 (fun env ->
          let t = env.Vm.Env.read tail in
          env.Vm.Env.write (slots + t) (Vm.Env.get env 1 + 1);
          env.Vm.Env.write tail ((t + 1) mod cap);
          env.Vm.Env.write count (env.Vm.Env.read count + 1));
      cond_signal producer 1;
      unlock_const producer 0);
  (* poison pills: one -1 per consumer *)
  for_up producer ~reg:1 ~from:(fun _ -> 0) ~until:(fun _ -> consumers) (fun () ->
      lock_const producer 0;
      let top = fresh_label producer in
      let go = fresh_label producer in
      bind producer top;
      work_const producer 5 (fun env -> Vm.Env.set env 2 (env.Vm.Env.read count));
      if_to producer (fun r -> r.(2) < cap) go;
      cond_wait producer ~c:0 ~m:0;
      goto producer top;
      bind producer go;
      work_const producer 20 (fun env ->
          let t = env.Vm.Env.read tail in
          env.Vm.Env.write (slots + t) (-1);
          env.Vm.Env.write tail ((t + 1) mod cap);
          env.Vm.Env.write count (env.Vm.Env.read count + 1));
      cond_signal producer 1;
      unlock_const producer 0);
  exit_ producer;
  let consumer = proc "consumer" in
  let loop_top = fresh_label consumer in
  let finished = fresh_label consumer in
  bind consumer loop_top;
  lock_const consumer 0;
  let wait_top = fresh_label consumer in
  let go = fresh_label consumer in
  bind consumer wait_top;
  work_const consumer 5 (fun env -> Vm.Env.set env 2 (env.Vm.Env.read count));
  if_to consumer (fun r -> r.(2) > 0) go;
  cond_wait consumer ~c:1 ~m:0;
  goto consumer wait_top;
  bind consumer go;
  work_const consumer 20 (fun env ->
      let h = env.Vm.Env.read head in
      Vm.Env.set env 3 (env.Vm.Env.read (slots + h));
      env.Vm.Env.write head ((h + 1) mod cap);
      env.Vm.Env.write count (env.Vm.Env.read count - 1));
  cond_signal consumer 0;
  unlock_const consumer 0;
  if_to consumer (fun r -> r.(3) < 0) finished;
  work consumer ~cost:(fun _ -> work_c) (fun _ -> ());
  atomic consumer ~var:(fun _ -> 0) ~dst:4 (fun ~old r -> old + (r.(3) * 2));
  goto consumer loop_top;
  bind consumer finished;
  exit_ consumer;
  let main = proc "main" in
  fork main ~group:0 ~proc:"producer" ~dst:10 (fun _ -> [||]);
  for i = 0 to consumers - 1 do
    fork main ~group:1 ~proc:"consumer" ~dst:(11 + i) (fun _ -> [||])
  done;
  join_reg main 10;
  for i = 0 to consumers - 1 do
    join_reg main (11 + i)
  done;
  atomic main ~var:(fun _ -> 0) ~dst:3 (fun ~old _ -> old);
  work_const main 1 (fun env -> env.Vm.Env.write 0 (Vm.Env.get env 3));
  exit_ main;
  program ~mem_words:256 ~n_mutexes:1 ~n_condvars:2 ~n_atomics:1 ~n_groups:2
    ~entry:"main"
    [ finish main; finish producer; finish consumer ]

let pipeline_expected blocks = blocks * (blocks + 1)

(* Allocation-heavy workers: each allocates, fills, sums, frees. *)
let alloc_churn ~workers ~iters () =
  let worker = proc "worker" in
  for_up worker ~reg:1 ~from:(fun _ -> 0) ~until:(fun _ -> iters) (fun () ->
      alloc worker ~size:(fun _ -> 8) ~dst:2;
      work_const worker 200 (fun env ->
          let a = Vm.Env.get env 2 in
          for i = 0 to 7 do
            env.Vm.Env.write (a + i) (i + 1)
          done;
          let s = ref 0 in
          for i = 0 to 7 do
            s := !s + env.Vm.Env.read (a + i)
          done;
          Vm.Env.set env 3 !s);
      free worker (fun r -> r.(2));
      atomic worker ~var:(fun _ -> 0) ~dst:4 (fun ~old r -> old + r.(3)));
  exit_ worker;
  let main = proc "main" in
  for i = 0 to workers - 1 do
    fork main ~group:1 ~proc:"worker" ~dst:(10 + i) (fun _ -> [||])
  done;
  for i = 0 to workers - 1 do
    join_reg main (10 + i)
  done;
  atomic main ~var:(fun _ -> 0) ~dst:3 (fun ~old _ -> old);
  work_const main 1 (fun env -> env.Vm.Env.write 0 (Vm.Env.get env 3));
  exit_ main;
  program ~mem_words:65536 ~reserved_words:16 ~n_atomics:1 ~n_groups:2
    ~entry:"main"
    [ finish main; finish worker ]

let alloc_churn_expected workers iters = workers * iters * 36

(* Hybrid-recovery program: non-standard atomics inside a CPR region. *)
let nonstd_region ~workers ~iters () =
  let worker = proc "worker" in
  cpr_begin worker;
  for_up worker ~reg:1 ~from:(fun _ -> 0) ~until:(fun _ -> iters) (fun () ->
      compute worker 300;
      nonstd_atomic worker ~var:(fun _ -> 0) ~dst:2 (fun ~old _ -> old + 1));
  cpr_end worker;
  exit_ worker;
  let main = proc "main" in
  for i = 0 to workers - 1 do
    fork main ~group:1 ~proc:"worker" ~dst:(10 + i) (fun _ -> [||])
  done;
  for i = 0 to workers - 1 do
    join_reg main (10 + i)
  done;
  atomic main ~var:(fun _ -> 0) ~dst:3 (fun ~old _ -> old);
  work_const main 1 (fun env -> env.Vm.Env.write 0 (Vm.Env.get env 3));
  exit_ main;
  program ~mem_words:64 ~n_atomics:1 ~n_groups:2 ~entry:"main"
    [ finish main; finish worker ]

(* File copy-transform through simulated I/O. *)
let file_transform ~n () =
  let input = Array.init n (fun i -> i + 1) in
  let main = proc "main" in
  for_up main ~reg:0 ~from:(fun _ -> 0) ~until:(fun _ -> n) (fun () ->
      work_const main 10 (fun env ->
          let i = Vm.Env.get env 0 in
          let v = env.Vm.Env.file_read 0 ~off:i in
          env.Vm.Env.file_write 1 ~off:i (3 * v)));
  exit_ main;
  program ~mem_words:64 ~entry:"main"
    ~input_files:[ ("in", input) ]
    ~output_files:[ "out" ] [ finish main ]
