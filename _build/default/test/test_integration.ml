(* End-to-end integration: the central oracle of the reproduction.

   For every workload, the digest of a GPRS execution under injected
   global exceptions must equal the digest of an exception-free Pthreads
   execution — globally precise restart means the program behaves "as if
   an exception never occurred" (paper §1). The same holds for CPR at
   rates it survives. *)

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let n_contexts = 4
let scale = 0.08

let build (spec : Workloads.Workload.spec) =
  spec.Workloads.Workload.build ~n_contexts ~grain:Workloads.Workload.Default ~scale

let reference spec =
  let r = Exec.Baseline.run { Exec.Baseline.default_config with n_contexts } (build spec) in
  (spec.Workloads.Workload.digest r, r.Exec.State.sim_cycles)

(* Expected exceptions per fault-free run length. Chunky fork/join
   workloads (whole-run sub-threads at default grain) only tolerate ~1-2
   strikes per run — the paper's own tipping analysis (e <= n/tr);
   fine-grained ones absorb several. *)
let gprs_k name =
  match name with
  | "blackscholes" | "swaptions" | "barnes-hut" -> 1.2
  | "canneal" -> 3.0
  | _ -> 6.0

let cpr_k _ = 2.0

let rate_for ?cap ~k ~base () =
  let base_s =
    Sim.Time.to_seconds
      ~cycles_per_second:Vm.Costs.default.Vm.Costs.cycles_per_second base
  in
  let r = k /. base_s in
  match cap with Some c -> Float.min c r | None -> r

let test_gprs_all_workloads_with_faults () =
  List.iter
    (fun (spec : Workloads.Workload.spec) ->
      let name = spec.Workloads.Workload.name in
      let d_ref, base = reference spec in
      let r =
        Gprs.Engine.run
          {
            Gprs.Engine.default_config with
            n_contexts;
            injector = Faults.Injector.config (rate_for ~k:(gprs_k name) ~base ());
            max_cycles = Some (300 * base);
          }
          (build spec)
      in
      checkb (name ^ " completed") false r.Exec.State.dnc;
      checks (name ^ " digest") d_ref (spec.Workloads.Workload.digest r))
    Workloads.Suite.all

let test_cpr_all_workloads_with_faults () =
  List.iter
    (fun (spec : Workloads.Workload.spec) ->
      let name = spec.Workloads.Workload.name in
      let d_ref, base = reference spec in
      let r =
        Cpr.run
          {
            Cpr.default_config with
            n_contexts;
            checkpoint_interval = 0.002;
            injector = Faults.Injector.config (rate_for ~cap:25.0 ~k:(cpr_k name) ~base ());
            max_cycles = Some (300 * base);
          }
          (build spec)
      in
      checkb (name ^ " completed") false r.Exec.State.dnc;
      checks (name ^ " digest") d_ref (spec.Workloads.Workload.digest r))
    Workloads.Suite.all

let test_gprs_poisson_and_seeds () =
  (* Exception timing must not matter: several seeds, Poisson arrivals. *)
  let spec = Workloads.Suite.find "pbzip2" in
  let d_ref, base = reference spec in
  List.iter
    (fun seed ->
      let r =
        Gprs.Engine.run
          {
            Gprs.Engine.default_config with
            n_contexts;
            seed;
            injector =
              Faults.Injector.config ~seed ~process:Faults.Injector.Poisson
                (rate_for ~k:4.0 ~base ());
            max_cycles = Some (300 * base);
          }
          (build spec)
      in
      checkb (Printf.sprintf "seed %d completed" seed) false r.Exec.State.dnc;
      checks
        (Printf.sprintf "seed %d digest" seed)
        d_ref
        (spec.Workloads.Workload.digest r))
    [ 2; 17; 4711 ]

let test_gprs_orderings_with_faults () =
  let spec = Workloads.Suite.find "dedup" in
  let d_ref, base = reference spec in
  List.iter
    (fun ordering ->
      let r =
        Gprs.Engine.run
          {
            Gprs.Engine.default_config with
            n_contexts;
            ordering;
            injector = Faults.Injector.config (rate_for ~k:4.0 ~base ());
            max_cycles = Some (300 * base);
          }
          (build spec)
      in
      checkb "completed" false r.Exec.State.dnc;
      checks "digest" d_ref (spec.Workloads.Workload.digest r))
    [ Gprs.Order.Round_robin; Gprs.Order.Balance_aware; Gprs.Order.Weighted ]

let test_balance_aware_beats_round_robin_on_pipelines () =
  (* The paper's §3.2 claim, on our Pbzip2. *)
  let spec = Workloads.Suite.find "pbzip2" in
  let t ordering =
    (Gprs.Engine.run
       { Gprs.Engine.default_config with n_contexts = 8; ordering }
       (spec.Workloads.Workload.build ~n_contexts:8
          ~grain:Workloads.Workload.Default ~scale:0.2))
      .Exec.State.sim_cycles
  in
  let rr = t Gprs.Order.Round_robin and ba = t Gprs.Order.Balance_aware in
  checkb (Printf.sprintf "ba faster than rr (%d vs %d)" ba rr) true (ba < rr)

let test_basic_recovery_workload () =
  let spec = Workloads.Suite.find "histogram" in
  let d_ref, base = reference spec in
  let r =
    Gprs.Engine.run
      {
        Gprs.Engine.default_config with
        n_contexts;
        recovery = Gprs.Engine.Basic;
        injector = Faults.Injector.config (rate_for ~k:5.0 ~base ());
        max_cycles = Some (300 * base);
      }
      (build spec)
  in
  checkb "completed" false r.Exec.State.dnc;
  checks "digest" d_ref (spec.Workloads.Workload.digest r)

let suite =
  [
    Alcotest.test_case "gprs: all workloads, faults, exact digests" `Slow
      test_gprs_all_workloads_with_faults;
    Alcotest.test_case "cpr: all workloads, faults, exact digests" `Slow
      test_cpr_all_workloads_with_faults;
    Alcotest.test_case "gprs: poisson arrivals, several seeds" `Slow
      test_gprs_poisson_and_seeds;
    Alcotest.test_case "gprs: all orderings with faults" `Slow
      test_gprs_orderings_with_faults;
    Alcotest.test_case "balance-aware beats round-robin" `Slow
      test_balance_aware_beats_round_robin_on_pipelines;
    Alcotest.test_case "basic recovery on a workload" `Slow
      test_basic_recovery_workload;
  ]
