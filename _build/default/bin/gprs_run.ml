(* Run one workload under one engine with optional exception injection.

   Usage: gprs_run -w pbzip2 -e gprs --rate 4.0 --contexts 24 *)

open Cmdliner

let run workload engine contexts scale seed rate grain ordering interval
    show_stats =
  let spec = Workloads.Suite.find workload in
  let grain =
    match grain with
    | "fine" -> Workloads.Workload.Fine
    | _ -> Workloads.Workload.Default
  in
  let program = spec.Workloads.Workload.build ~n_contexts:contexts ~grain ~scale in
  let result =
    match engine with
    | "pthreads" ->
      Exec.Baseline.run
        { Exec.Baseline.default_config with n_contexts = contexts; seed }
        program
    | "cpr" ->
      Cpr.run
        {
          Cpr.default_config with
          n_contexts = contexts;
          seed;
          checkpoint_interval = interval;
          injector = Faults.Injector.config ~seed rate;
        }
        program
    | "gprs" ->
      let ordering =
        match ordering with
        | "round-robin" -> Gprs.Order.Round_robin
        | "weighted" -> Gprs.Order.Weighted
        | "recorded" -> Gprs.Order.Recorded
        | _ -> Gprs.Order.Balance_aware
      in
      Gprs.Engine.run
        {
          Gprs.Engine.default_config with
          n_contexts = contexts;
          seed;
          ordering;
          injector = Faults.Injector.config ~seed rate;
        }
        program
    | other -> failwith (Printf.sprintf "unknown engine %S" other)
  in
  Format.printf "workload   : %s (%s)@." workload spec.Workloads.Workload.pattern;
  Format.printf "engine     : %s, %d contexts, seed %d@." engine contexts seed;
  Format.printf "exceptions : %.2f/s@." rate;
  Format.printf "completed  : %b%s@."
    (not result.Exec.State.dnc)
    (if result.Exec.State.dnc then " (DNC)" else "");
  Format.printf "sim time   : %d cycles = %.4f s@." result.Exec.State.sim_cycles
    result.Exec.State.sim_seconds;
  Format.printf "digest     : %s@." (spec.Workloads.Workload.digest result);
  if show_stats then Format.printf "%a@." Sim.Stats.pp result.Exec.State.run_stats

let workload =
  let doc =
    Printf.sprintf "Workload: %s." (String.concat ", " Workloads.Suite.names)
  in
  Arg.(value & opt string "pbzip2" & info [ "w"; "workload" ] ~doc)

let engine =
  let doc = "Engine: pthreads, cpr, or gprs." in
  Arg.(value & opt string "gprs" & info [ "e"; "engine" ] ~doc)

let contexts = Arg.(value & opt int 24 & info [ "contexts"; "n" ] ~doc:"Hardware contexts.")
let scale = Arg.(value & opt float 1.0 & info [ "scale" ] ~doc:"Input scale.")
let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.")
let rate = Arg.(value & opt float 0.0 & info [ "rate" ] ~doc:"Exceptions per second.")
let grain = Arg.(value & opt string "default" & info [ "grain" ] ~doc:"default or fine.")

let ordering =
  Arg.(value & opt string "balance-aware"
       & info [ "ordering" ]
           ~doc:
             "GPRS ordering: round-robin, balance-aware, weighted, or recorded \
              (nondeterministic; dynamic order recorded for selective restart).")

let interval =
  Arg.(value & opt float 0.05 & info [ "interval" ] ~doc:"CPR checkpoint interval (s).")

let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print run statistics.")

let cmd =
  let doc = "run one workload under pthreads / CPR / GPRS on the simulated machine" in
  Cmd.v
    (Cmd.info "gprs_run" ~doc)
    Term.(
      const run $ workload $ engine $ contexts $ scale $ seed $ rate $ grain
      $ ordering $ interval $ stats)

let () = Stdlib.exit (Cmd.eval cmd)
