type policy = Fifo | Work_steal

type t = {
  pol : policy;
  n : int;
  global : int Deque.t;  (* Fifo: the single queue (top = oldest) *)
  local : int Deque.t array;  (* Work_steal: per-context deques *)
  mutable count : int;
  (* Observer fired with the item on every enqueue; the GPRS engine hangs
     its WAL [Sched_enqueue] append here so the log records queue inserts
     at their real site rather than at some engine-side approximation. *)
  mutable on_enqueue : (int -> unit) option;
}

let create pol ~n_contexts =
  {
    pol;
    n = n_contexts;
    global = Deque.create ();
    local = Array.init n_contexts (fun _ -> Deque.create ());
    count = 0;
    on_enqueue = None;
  }

let policy t = t.pol
let set_on_enqueue t f = t.on_enqueue <- f

let enqueue t ~ctx_hint x =
  (match t.on_enqueue with Some f -> f x | None -> ());
  t.count <- t.count + 1;
  match t.pol with
  | Fifo -> Deque.push_bottom t.global x
  | Work_steal -> Deque.push_bottom t.local.(ctx_hint mod t.n) x

let take t ~ctx =
  match t.pol with
  | Fifo -> (
    match Deque.steal_top t.global with
    | Some x ->
      t.count <- t.count - 1;
      Some (x, false)
    | None -> None)
  | Work_steal -> (
    match Deque.pop_bottom t.local.(ctx) with
    | Some x ->
      t.count <- t.count - 1;
      Some (x, false)
    | None ->
      (* Probe victims in a fixed rotation starting after the thief. *)
      let rec probe i =
        if i >= t.n then None
        else
          let victim = (ctx + i) mod t.n in
          match Deque.steal_top t.local.(victim) with
          | Some x ->
            t.count <- t.count - 1;
            Some (x, true)
          | None -> probe (i + 1)
      in
      probe 1)

let remove t x =
  let remove_from d =
    let items = Deque.to_list d in
    if List.mem x items then begin
      (* Rebuild without the first occurrence. *)
      let rec drain () =
        match Deque.steal_top d with Some _ -> drain () | None -> ()
      in
      drain ();
      let removed = ref false in
      List.iter
        (fun y ->
          if (not !removed) && y = x then removed := true
          else Deque.push_bottom d y)
        items;
      !removed
    end
    else false
  in
  let found =
    match t.pol with
    | Fifo -> remove_from t.global
    | Work_steal ->
      let rec go i = i < t.n && (remove_from t.local.(i) || go (i + 1)) in
      go 0
  in
  if found then t.count <- t.count - 1;
  found

let length t = t.count

let is_empty t = t.count = 0
