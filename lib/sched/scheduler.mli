(** Run-queue policies for mapping ready work onto hardware contexts.

    Two policies:

    - [Fifo]: a single global FIFO run queue, modelling the OS scheduler
      that time-slices Pthreads across contexts (the paper's baseline).
    - [Work_steal]: per-context deques with deterministic round-robin
      stealing, modelling GPRS's load-balancing sub-thread scheduler
      (§3.3), which "actively seeks work, minimizing the idle time".

    Work items are integers (thread or sub-thread ids). Determinism: steal
    victims are probed in a fixed rotation starting after the thief, so a
    given simulation state always yields the same assignment. *)

type policy = Fifo | Work_steal

type t

val create : policy -> n_contexts:int -> t

val policy : t -> policy

val enqueue : t -> ctx_hint:int -> int -> unit
(** Make a work item ready. [ctx_hint] is the context whose local deque
    receives it under [Work_steal] (the context that created or woke the
    item); ignored under [Fifo]. *)

val set_on_enqueue : t -> (int -> unit) option -> unit
(** Observer fired with the item at the start of every {!enqueue} — the
    GPRS engine logs [Wal.Sched_enqueue] here, so the work queues are
    reconstructible from the log as §3.2 requires. [None] (the default)
    disables it. *)

val take : t -> ctx:int -> (int * bool) option
(** Next item for an idle context. The boolean is [true] when the item was
    stolen from another context's deque (the caller charges the steal
    cost). *)

val remove : t -> int -> bool
(** Remove a specific item wherever it is queued; [true] if found. Used
    when recovery squashes a queued sub-thread. *)

val length : t -> int

val is_empty : t -> bool
