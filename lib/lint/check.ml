(* GPRS-lint: static dataflow analysis of a virtual-ISA program.

   For every proc a forward dataflow pass runs over the {!Cfg} computing,
   at each program point, the abstract lockset (which mutexes are held,
   in acquisition order), the open-CPR-region depth, and the abstract
   registers ({!Absval}). Sync-object ids are resolved by constant
   propagation plus probe evaluation; unresolved ids degrade to an
   [Lunk] lockset entry rather than poisoning the whole analysis.

   The pass is interprocedural in one direction: [Fork] sites contribute
   (via probe-evaluated argument vectors) to the initial abstract
   registers of the forked proc, and the proc worklist iterates to a
   fixpoint. Cross-proc facts — the mutex acquisition-order graph and
   which procs reach which barrier — are accumulated globally and
   checked after the fixpoint. *)

type lock = Lk of int | Lunk

type st = { locks : lock list; cpr : int; regs : Absval.t array }
(* [locks] is most-recent-first: acquisition order matters for the
   lock-order graph; discipline checks treat it as a multiset. *)

let max_locks = 16
let max_cpr = 16

exception Rejected of Diagnostic.t list

(* --- lockset as a multiset ------------------------------------------ *)

let rec remove_one x = function
  | [] -> []
  | y :: rest -> if y = x then rest else y :: remove_one x rest

let multiset_equal a b = List.sort compare a = List.sort compare b

let multiset_inter a b =
  let rest = ref b in
  List.filter
    (fun x ->
      if List.mem x !rest then begin
        rest := remove_one x !rest;
        true
      end
      else false)
    a

let pp_lock ppf = function
  | Lk m -> Format.fprintf ppf "m%d" m
  | Lunk -> Format.pp_print_string ppf "m?"

let lockset_str locks =
  Format.asprintf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       pp_lock)
    (List.rev locks)

(* --- analysis context ----------------------------------------------- *)

type ctx = {
  prog : Vm.Isa.program;
  diags : (string * int * Diagnostic.kind * int, Diagnostic.t) Hashtbl.t;
      (* dedup: one report per (proc, pc, kind, tag); the tag
         disambiguates whole-program findings sharing pc = -1 *)
  lock_edges : (int * int, string * int) Hashtbl.t;
      (* (held, then-acquired) -> first site *)
  barrier_reach : (int, string list ref) Hashtbl.t;
      (* barrier id -> procs with a reachable arrival (discovery order) *)
  collect : bool;
      (* record access/fork facts for the race pass (costlier probes) *)
  accesses : (string * int, lock list * int * Races.summary) Hashtbl.t;
      (* (proc, pc) -> (lockset, cpr depth, access summary), overwritten
         on each fixpoint visit. Overwrite-last is sound: along the
         fixpoint locksets only shrink, registers only rise to Top (so
         summaries only get more conservative) and reachability grows. *)
  forks : (string * int, string) Hashtbl.t;  (* fork site -> target *)
  fuel_sites : (string * int, unit) Hashtbl.t;
      (* Work sites whose probe ran out of fuel at least once *)
}

let report ?(tag = 0) ctx ~severity ~kind ~proc ~pc ~instr msg =
  let key = (proc, pc, kind, tag) in
  if not (Hashtbl.mem ctx.diags key) then
    Hashtbl.replace ctx.diags key
      (Diagnostic.make ~severity ~kind ~proc ~pc ~instr msg)

let note_barrier ctx b proc =
  let l =
    match Hashtbl.find_opt ctx.barrier_reach b with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.replace ctx.barrier_reach b l;
      l
  in
  if not (List.mem proc !l) then l := !l @ [ proc ]

let note_lock_edge ctx ~held ~acquired ~proc ~pc =
  if held <> acquired && not (Hashtbl.mem ctx.lock_edges (held, acquired))
  then Hashtbl.replace ctx.lock_edges (held, acquired) (proc, pc)

(* --- joins ----------------------------------------------------------- *)

let regs_equal a b = Array.for_all2 Absval.equal a b

let state_equal a b =
  a.cpr = b.cpr && multiset_equal a.locks b.locks && regs_equal a.regs b.regs

(* Join the state arriving over an edge into the state stored at [pc].
   Disagreements in lockset or region depth between paths are findings in
   their own right; the merge continues on the common part so one leak
   does not cascade. *)
let join_states ctx ~proc ~pc ~instr cur incoming =
  if not (multiset_equal cur.locks incoming.locks) then
    report ctx ~severity:Diagnostic.Error ~kind:Diagnostic.Inconsistent_locksets
      ~proc ~pc ~instr
      (Printf.sprintf
         "paths meet with different locksets: %s vs %s (a lock or unlock is \
          missing on some path)"
         (lockset_str cur.locks)
         (lockset_str incoming.locks));
  if cur.cpr <> incoming.cpr then
    report ctx ~severity:Diagnostic.Error ~kind:Diagnostic.Inconsistent_cpr
      ~proc ~pc ~instr
      (Printf.sprintf
         "paths meet with different CPR-region depths: %d vs %d (a \
          cpr_begin or cpr_end is missing on some path)"
         cur.cpr incoming.cpr);
  {
    locks = multiset_inter cur.locks incoming.locks;
    cpr = Stdlib.min cur.cpr incoming.cpr;
    regs = Array.map2 Absval.join cur.regs incoming.regs;
  }

(* --- per-proc dataflow ----------------------------------------------- *)

let set_reg_top s dst =
  if dst < 0 || dst >= Array.length s.regs then s
  else begin
    let regs = Array.copy s.regs in
    regs.(dst) <- Absval.Top;
    { s with regs }
  end

let analyze_proc ctx (proc : Vm.Isa.proc) ~entry_regs ~on_fork =
  let pname = proc.Vm.Isa.pname in
  let cfg = Cfg.build proc in
  let n = Cfg.end_node cfg in
  let code = proc.Vm.Isa.code in
  let states : st option array = Array.make (n + 1) None in
  let inq = Array.make (n + 1) false in
  let q = Queue.create () in
  let budget = ref (1000 * (n + 1)) in
  let iname pc =
    if pc = n then "(end)" else Vm.Isa.instr_name code.(pc)
  in
  let diag pc severity kind msg =
    report ctx ~severity ~kind ~proc:pname ~pc ~instr:(iname pc) msg
  in
  let push ~from pc s =
    if not (Cfg.in_bounds cfg pc) then
      diag from Diagnostic.Error Diagnostic.Bad_branch_target
        (Printf.sprintf "branch target %d outside code [0..%d]" pc n)
    else begin
      let merged, changed =
        match states.(pc) with
        | None -> (s, true)
        | Some cur ->
          let merged = join_states ctx ~proc:pname ~pc ~instr:(iname pc) cur s in
          (merged, not (state_equal merged cur))
      in
      if changed then begin
        states.(pc) <- Some merged;
        if not inq.(pc) then begin
          inq.(pc) <- true;
          Queue.push pc q
        end
      end
    end
  in
  let check_range pc ~what id ~limit =
    match id with
    | Absval.Known v when v < 0 || v >= limit ->
      diag pc Diagnostic.Error Diagnostic.Bad_sync_id
        (Printf.sprintf "%s id %d outside declared range [0..%d)" what v limit);
      false
    | Absval.Known _ | Absval.Top -> true
  in
  let exit_checks pc s ~implicit =
    if implicit then
      diag pc Diagnostic.Warning Diagnostic.Implicit_exit
        "control falls off the end of the code array (implicit exit)";
    if s.locks <> [] then
      diag pc Diagnostic.Error Diagnostic.Lock_at_blocking
        (Printf.sprintf
           "thread exits holding %s: waiters on those mutexes deadlock"
           (lockset_str s.locks));
    if s.cpr > 0 then
      diag pc Diagnostic.Error Diagnostic.Cpr_open_at_exit
        (Printf.sprintf
           "thread exits inside %d open CPR region(s): cpr_end is missing"
           s.cpr)
  in
  let step pc s =
    match code.(pc) with
    | Vm.Isa.Work { run; _ } ->
      let p =
        Races.probe_work ~record:ctx.collect
          ~mem_words:ctx.prog.Vm.Isa.mem_words s.regs run
      in
      if p.Races.fuel_exhausted then
        Hashtbl.replace ctx.fuel_sites (pname, pc) ();
      if ctx.collect then
        Hashtbl.replace ctx.accesses (pname, pc)
          (s.locks, s.cpr, p.Races.summary);
      push ~from:pc (pc + 1) { s with regs = p.Races.regs }
    | Vm.Isa.Opaque _ ->
      (* Third-party code: unknown register effects. *)
      push ~from:pc (pc + 1)
        { s with regs = Absval.top_regs (Array.length s.regs) }
    | Vm.Isa.Goto target -> push ~from:pc target s
    | Vm.Isa.If { cond; target } -> (
      match Absval.eval_cond s.regs cond with
      | `True -> push ~from:pc target s
      | `False -> push ~from:pc (pc + 1) s
      | `Unknown ->
        push ~from:pc target s;
        push ~from:pc (pc + 1) s)
    | Vm.Isa.Lock { m } ->
      let id = Absval.eval_int s.regs m in
      ignore (check_range pc ~what:"mutex" id ~limit:ctx.prog.Vm.Isa.n_mutexes);
      let lk =
        match id with
        | Absval.Known k ->
          if List.mem (Lk k) s.locks then
            diag pc Diagnostic.Error Diagnostic.Double_lock
              (Printf.sprintf
                 "mutex %d is already held here; mutexes are not reentrant \
                  (self-deadlock)"
                 k);
          List.iter
            (function
              | Lk held -> note_lock_edge ctx ~held ~acquired:k ~proc:pname ~pc
              | Lunk -> ())
            s.locks;
          Lk k
        | Absval.Top -> Lunk
      in
      if List.length s.locks >= max_locks then begin
        diag pc Diagnostic.Warning Diagnostic.Lockset_overflow
          (Printf.sprintf "more than %d simultaneously-held locks; lockset \
                           tracking truncated" max_locks);
        push ~from:pc (pc + 1) s
      end
      else push ~from:pc (pc + 1) { s with locks = lk :: s.locks }
    | Vm.Isa.Unlock { m } -> (
      let id = Absval.eval_int s.regs m in
      ignore (check_range pc ~what:"mutex" id ~limit:ctx.prog.Vm.Isa.n_mutexes);
      match id with
      | Absval.Known k when List.mem (Lk k) s.locks ->
        push ~from:pc (pc + 1) { s with locks = remove_one (Lk k) s.locks }
      | Absval.Known _ when List.mem Lunk s.locks ->
        (* Pair the exact unlock with the unresolved acquisition. *)
        push ~from:pc (pc + 1) { s with locks = remove_one Lunk s.locks }
      | Absval.Known k ->
        diag pc Diagnostic.Error Diagnostic.Unlock_without_lock
          (Printf.sprintf "unlock of mutex %d which is not held (lockset %s)"
             k (lockset_str s.locks));
        push ~from:pc (pc + 1) s
      | Absval.Top when List.mem Lunk s.locks ->
        push ~from:pc (pc + 1) { s with locks = remove_one Lunk s.locks }
      | Absval.Top -> (
        match s.locks with
        | [] ->
          diag pc Diagnostic.Error Diagnostic.Unlock_without_lock
            "unlock with empty lockset";
          push ~from:pc (pc + 1) s
        | most_recent :: rest ->
          diag pc Diagnostic.Warning Diagnostic.Unresolved_unlock
            (Printf.sprintf
               "mutex id did not resolve statically; assuming it unlocks \
                the most recently acquired (%s)"
               (Format.asprintf "%a" pp_lock most_recent));
          push ~from:pc (pc + 1) { s with locks = rest }))
    | Vm.Isa.Barrier { b } ->
      let parties = ctx.prog.Vm.Isa.barrier_parties in
      if b < 0 || b >= Array.length parties then
        diag pc Diagnostic.Error Diagnostic.Bad_sync_id
          (Printf.sprintf "barrier id %d outside declared range [0..%d)" b
             (Array.length parties))
      else begin
        note_barrier ctx b pname;
        if parties.(b) <= 0 then
          diag pc Diagnostic.Error Diagnostic.Barrier_mismatch
            (Printf.sprintf
               "barrier %d has parties=%d: an arrival can never release" b
               parties.(b))
      end;
      if s.locks <> [] then
        diag pc Diagnostic.Error Diagnostic.Lock_at_blocking
          (Printf.sprintf
             "barrier arrival while holding %s: parties needing those \
              mutexes to reach the barrier deadlock"
             (lockset_str s.locks));
      push ~from:pc (pc + 1) s
    | Vm.Isa.Cond_wait { c; m } ->
      ignore
        (check_range pc ~what:"condvar" (Absval.Known c)
           ~limit:ctx.prog.Vm.Isa.n_condvars);
      ignore
        (check_range pc ~what:"mutex" (Absval.Known m)
           ~limit:ctx.prog.Vm.Isa.n_mutexes);
      if not (List.mem (Lk m) s.locks || List.mem Lunk s.locks) then
        diag pc Diagnostic.Error Diagnostic.Wait_without_mutex
          (Printf.sprintf
             "cond_wait on condvar %d releases mutex %d, but it is not \
              held (lockset %s)"
             c m (lockset_str s.locks));
      (* The mutex is released while waiting and reacquired before the
         wait returns, so the lockset is unchanged across the wait. *)
      push ~from:pc (pc + 1) s
    | Vm.Isa.Cond_signal { c; _ } ->
      ignore
        (check_range pc ~what:"condvar" (Absval.Known c)
           ~limit:ctx.prog.Vm.Isa.n_condvars);
      push ~from:pc (pc + 1) s
    | Vm.Isa.Atomic { var; dst; _ } ->
      ignore
        (check_range pc ~what:"atomic" (Absval.eval_int s.regs var)
           ~limit:ctx.prog.Vm.Isa.n_atomics);
      push ~from:pc (pc + 1) (set_reg_top s dst)
    | Vm.Isa.Nonstd_atomic { var; dst; _ } ->
      if s.cpr = 0 then
        diag pc Diagnostic.Error Diagnostic.Unprotected_nonstd
          "non-standard atomic reachable outside any cpr_begin/cpr_end \
           region: invisible to DEX, so hybrid recovery is unsound here";
      ignore
        (check_range pc ~what:"atomic" (Absval.eval_int s.regs var)
           ~limit:ctx.prog.Vm.Isa.n_atomics);
      push ~from:pc (pc + 1) (set_reg_top s dst)
    | Vm.Isa.Fork { proc = target; args; dst; _ } ->
      (match List.assoc_opt target ctx.prog.Vm.Isa.procs with
      | None ->
        diag pc Diagnostic.Error Diagnostic.Unknown_fork_target
          (Printf.sprintf "fork of proc %S which is not in the program"
             target)
      | Some _ ->
        let child = Array.make Vm.Isa.n_registers Absval.Top in
        (match Absval.eval_int_array s.regs args with
        | Some argv ->
          (* Registers are zeroed then the args are blitted in. *)
          Array.iteri
            (fun i _ ->
              child.(i) <-
                (if i < Array.length argv then argv.(i) else Absval.Known 0))
            child
        | None -> ());
        if ctx.collect then Hashtbl.replace ctx.forks (pname, pc) target;
        on_fork target child);
      push ~from:pc (pc + 1) (set_reg_top s dst)
    | Vm.Isa.Join _ ->
      if s.locks <> [] then
        diag pc Diagnostic.Error Diagnostic.Lock_at_blocking
          (Printf.sprintf
             "join while holding %s: if the joined thread needs those \
              mutexes it never exits"
             (lockset_str s.locks));
      push ~from:pc (pc + 1) s
    | Vm.Isa.Alloc { dst; _ } -> push ~from:pc (pc + 1) (set_reg_top s dst)
    | Vm.Isa.Free _ -> push ~from:pc (pc + 1) s
    | Vm.Isa.Cpr_begin ->
      if s.cpr > 0 then
        diag pc Diagnostic.Error Diagnostic.Nested_cpr
          "cpr_begin inside an open CPR region: region state is a flag, \
           so the inner cpr_end silently closes the outer region";
      push ~from:pc (pc + 1) { s with cpr = Stdlib.min (s.cpr + 1) max_cpr }
    | Vm.Isa.Cpr_end ->
      if s.cpr = 0 then begin
        diag pc Diagnostic.Error Diagnostic.Unmatched_cpr_end
          "cpr_end with no open CPR region";
        push ~from:pc (pc + 1) s
      end
      else push ~from:pc (pc + 1) { s with cpr = s.cpr - 1 }
    | Vm.Isa.Exit -> exit_checks pc s ~implicit:false
  in
  push ~from:0 0 { locks = []; cpr = 0; regs = entry_regs };
  let budget_hit = ref false in
  while not (Queue.is_empty q) do
    let pc = Queue.pop q in
    inq.(pc) <- false;
    decr budget;
    if !budget < 0 then begin
      if not !budget_hit then begin
        budget_hit := true;
        diag pc Diagnostic.Warning Diagnostic.Analysis_budget
          "dataflow iteration budget exhausted; findings may be incomplete"
      end;
      Queue.clear q
    end
    else
      match states.(pc) with
      | None -> ()
      | Some s ->
        if pc = n then exit_checks pc s ~implicit:true else step pc s
  done

(* --- whole-program driver -------------------------------------------- *)

let join_entry_regs cur incoming =
  match cur with
  | None -> incoming
  | Some cur -> Array.map2 Absval.join cur incoming

let analyze ctx =
  let prog = ctx.prog in
  let entry_regs : (string, Absval.t array) Hashtbl.t = Hashtbl.create 8 in
  let q = Queue.create () in
  let queued : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let enqueue name =
    if not (Hashtbl.mem queued name) then begin
      Hashtbl.replace queued name ();
      Queue.push name q
    end
  in
  Hashtbl.replace entry_regs prog.Vm.Isa.entry
    (Array.make Vm.Isa.n_registers (Absval.Known 0));
  enqueue prog.Vm.Isa.entry;
  let rounds = ref 0 in
  while not (Queue.is_empty q) && !rounds < 1000 do
    incr rounds;
    let name = Queue.pop q in
    Hashtbl.remove queued name;
    match List.assoc_opt name prog.Vm.Isa.procs with
    | None -> () (* reported at the fork site *)
    | Some proc ->
      let regs =
        match Hashtbl.find_opt entry_regs name with
        | Some r -> r
        | None -> Absval.top_regs Vm.Isa.n_registers
      in
      analyze_proc ctx proc ~entry_regs:regs ~on_fork:(fun target child ->
          let cur = Hashtbl.find_opt entry_regs target in
          let merged = join_entry_regs cur child in
          let changed =
            match cur with None -> true | Some c -> not (regs_equal c merged)
          in
          if changed then begin
            Hashtbl.replace entry_regs target merged;
            enqueue target
          end)
  done;
  (* Procs that are neither the entry nor ever forked: analyze them for
     discipline anyway (all-Top registers) and note the dead code. *)
  List.iter
    (fun (name, proc) ->
      if not (Hashtbl.mem entry_regs name) then begin
        report ctx ~severity:Diagnostic.Info ~kind:Diagnostic.Unforked_proc
          ~proc:name ~pc:(-1) ~instr:"-"
          "proc is neither the entry nor the target of any fork";
        analyze_proc ctx proc
          ~entry_regs:(Absval.top_regs Vm.Isa.n_registers)
          ~on_fork:(fun _ _ -> ())
      end)
    prog.Vm.Isa.procs

(* --- cross-proc checks ----------------------------------------------- *)

let check_barriers ctx =
  let parties = ctx.prog.Vm.Isa.barrier_parties in
  Array.iteri
    (fun b p ->
      match Hashtbl.find_opt ctx.barrier_reach b with
      | None | Some { contents = [] } ->
        report ctx ~tag:b ~severity:Diagnostic.Warning
          ~kind:Diagnostic.Barrier_mismatch ~proc:"(program)" ~pc:(-1)
          ~instr:"barrier"
          (Printf.sprintf
             "barrier %d (parties=%d) is declared but no proc reaches an \
              arrival"
             b p)
      | Some { contents = procs } ->
        if p < List.length procs then
          report ctx ~tag:b ~severity:Diagnostic.Warning
            ~kind:Diagnostic.Barrier_mismatch ~proc:"(program)" ~pc:(-1)
            ~instr:"barrier"
            (Printf.sprintf
               "barrier %d has parties=%d but %d distinct procs reach it \
                (%s): an episode can strand arrivals"
               b p (List.length procs)
               (String.concat ", " procs));
        report ctx ~tag:b ~severity:Diagnostic.Info
          ~kind:Diagnostic.Barrier_coverage ~proc:(List.hd procs) ~pc:(-1)
          ~instr:"barrier"
          (Printf.sprintf "barrier %d (parties=%d) reached by: %s" b p
             (String.concat ", " procs)))
    parties

(* Tarjan SCC over the acquisition-order graph; any component with two or
   more mutexes means conflicting acquisition orders — an ABBA deadlock
   candidate. *)
let check_lock_order ctx =
  let nodes = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (a, b) _ ->
      Hashtbl.replace nodes a ();
      Hashtbl.replace nodes b ())
    ctx.lock_edges;
  let succs a =
    Hashtbl.fold
      (fun (x, y) _ acc -> if x = a then y :: acc else acc)
      ctx.lock_edges []
  in
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (Stdlib.min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (Stdlib.min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succs v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if w = v then w :: acc else pop (w :: acc)
      in
      let comp = pop [] in
      if List.length comp >= 2 then sccs := comp :: !sccs
    end
  in
  Hashtbl.iter (fun v () -> if not (Hashtbl.mem index v) then strongconnect v) nodes;
  List.iter
    (fun comp ->
      let comp = List.sort compare comp in
      let in_comp m = List.mem m comp in
      let samples =
        Hashtbl.fold
          (fun (a, b) (p, pc) acc ->
            if in_comp a && in_comp b then ((a, b), (p, pc)) :: acc else acc)
          ctx.lock_edges []
        |> List.sort compare
      in
      let site_proc, site_pc =
        match samples with (_, s) :: _ -> s | [] -> ("(program)", -1)
      in
      let describe ((a, b), (p, pc)) =
        Printf.sprintf "m%d->m%d at %s.%d" a b p pc
      in
      let shown = List.filteri (fun i _ -> i < 4) samples in
      report ctx ~tag:(List.hd comp) ~severity:Diagnostic.Error
        ~kind:Diagnostic.Lock_order_cycle ~proc:site_proc ~pc:site_pc
        ~instr:"lock"
        (Printf.sprintf
           "mutexes {%s} are acquired in conflicting orders (%s%s): \
            potential ABBA deadlock"
           (String.concat ", " (List.map (Printf.sprintf "m%d") comp))
           (String.concat "; " (List.map describe shown))
           (if List.length samples > List.length shown then "; ..." else "")))
    !sccs

(* Per-proc "analysis degraded to Top" notes for probe fuel exhaustion:
   a body whose effects the probe could not afford to observe folds its
   registers to all-Top and its access summary to unknown, so both the
   discipline checks and the race pass are blinder at that proc. *)
let note_fuel ctx =
  let per_proc : (string, int list ref) Hashtbl.t = Hashtbl.create 4 in
  Hashtbl.iter
    (fun (p, pc) () ->
      match Hashtbl.find_opt per_proc p with
      | Some l -> l := pc :: !l
      | None -> Hashtbl.replace per_proc p (ref [ pc ]))
    ctx.fuel_sites;
  Hashtbl.iter
    (fun p l ->
      let pcs = List.sort compare !l in
      let shown = List.filteri (fun i _ -> i < 4) pcs in
      (* Info, not Warning: this notes reduced *analysis* coverage, not a
         program defect — the engines' pre-run hook and the default lint
         table hide Info, while --verbose and --json surface it. *)
      report ctx ~severity:Diagnostic.Info ~kind:Diagnostic.Probe_fuel
        ~proc:p ~pc:(-1) ~instr:"work"
        (Printf.sprintf
           "%d Work site%s (pc %s%s) exhausted the %d-operation probe \
            budget: register effects and access summaries degraded to Top \
            at this proc"
           (List.length pcs)
           (if List.length pcs = 1 then "" else "s")
           (String.concat ", " (List.map string_of_int shown))
           (if List.length pcs > List.length shown then ", ..." else "")
           Absval.probe_fuel))
    per_proc

(* --- public API ------------------------------------------------------- *)

type facts = {
  f_entry : string;
  f_accesses : (string * int * lock list * int * Races.summary) list;
      (* (proc, pc, lockset, cpr depth, summary) at each [Work] site *)
  f_forks : (string * int * string) list;  (* (forker, pc, target) *)
}

let driver ~collect (prog : Vm.Isa.program) =
  let ctx =
    {
      prog;
      diags = Hashtbl.create 32;
      lock_edges = Hashtbl.create 32;
      barrier_reach = Hashtbl.create 8;
      collect;
      accesses = Hashtbl.create 64;
      forks = Hashtbl.create 16;
      fuel_sites = Hashtbl.create 4;
    }
  in
  analyze ctx;
  check_barriers ctx;
  check_lock_order ctx;
  note_fuel ctx;
  let all = Hashtbl.fold (fun _ d acc -> d :: acc) ctx.diags [] in
  let facts =
    {
      f_entry = prog.Vm.Isa.entry;
      f_accesses =
        Hashtbl.fold
          (fun (p, pc) (locks, cpr, s) acc -> (p, pc, locks, cpr, s) :: acc)
          ctx.accesses []
        |> List.sort compare;
      f_forks =
        Hashtbl.fold (fun (p, pc) t acc -> (p, pc, t) :: acc) ctx.forks []
        |> List.sort compare;
    }
  in
  (List.sort Diagnostic.compare all, facts)

let program prog = fst (driver ~collect:false prog)

let program_facts prog = driver ~collect:true prog

let errors diags =
  List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Error) diags

let has_errors diags = errors diags <> []

let has_kind kind diags =
  List.exists (fun d -> d.Diagnostic.kind = kind) diags
