type severity = Info | Warning | Error

type kind =
  | Unlock_without_lock
  | Unresolved_unlock
  | Double_lock
  | Lock_at_blocking
  | Wait_without_mutex
  | Inconsistent_locksets
  | Lockset_overflow
  | Unmatched_cpr_end
  | Cpr_open_at_exit
  | Nested_cpr
  | Inconsistent_cpr
  | Unprotected_nonstd
  | Lock_order_cycle
  | Bad_sync_id
  | Unknown_fork_target
  | Bad_branch_target
  | Barrier_mismatch
  | Barrier_coverage
  | Unforked_proc
  | Implicit_exit
  | Analysis_budget
  | Race_unprotected
  | Probe_fuel

type t = {
  severity : severity;
  kind : kind;
  proc : string;
  pc : int;
  instr : string;
  message : string;
}

let make ~severity ~kind ~proc ~pc ~instr message =
  { severity; kind; proc; pc; instr; message }

let severity_label = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let kind_label = function
  | Unlock_without_lock -> "unlock-without-lock"
  | Unresolved_unlock -> "unresolved-unlock"
  | Double_lock -> "double-lock"
  | Lock_at_blocking -> "lock-at-blocking-op"
  | Wait_without_mutex -> "wait-without-mutex"
  | Inconsistent_locksets -> "inconsistent-locksets"
  | Lockset_overflow -> "lockset-overflow"
  | Unmatched_cpr_end -> "unmatched-cpr-end"
  | Cpr_open_at_exit -> "cpr-open-at-exit"
  | Nested_cpr -> "nested-cpr"
  | Inconsistent_cpr -> "inconsistent-cpr-depth"
  | Unprotected_nonstd -> "unprotected-nonstd-atomic"
  | Lock_order_cycle -> "lock-order-cycle"
  | Bad_sync_id -> "bad-sync-id"
  | Unknown_fork_target -> "unknown-fork-target"
  | Bad_branch_target -> "bad-branch-target"
  | Barrier_mismatch -> "barrier-parties-mismatch"
  | Barrier_coverage -> "barrier-coverage"
  | Unforked_proc -> "unforked-proc"
  | Implicit_exit -> "implicit-exit"
  | Analysis_budget -> "analysis-budget-exhausted"
  | Race_unprotected -> "race-unprotected"
  | Probe_fuel -> "probe-fuel-exhausted"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  match Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> (
    match Stdlib.compare a.proc b.proc with
    | 0 -> Stdlib.compare (a.pc, a.message) (b.pc, b.message)
    | c -> c)
  | c -> c

let site d = if d.pc < 0 then d.proc else Printf.sprintf "%s.%d" d.proc d.pc

let pp ppf d =
  Format.fprintf ppf "%s: [%s] %s (%s): %s" (severity_label d.severity)
    (kind_label d.kind) (site d) d.instr d.message
