(** GPRS-lint: static CFG/dataflow analysis of a {!Vm.Isa.program}.

    [program p] builds a per-proc control-flow graph, runs a forward
    dataflow pass computing the abstract lockset, open-CPR-region depth
    and constant registers at every program point (closure-typed object
    ids are resolved by constant propagation plus two-filler probe
    evaluation), and reports:

    - lock discipline: unlock-without-lock, double-lock, a mutex held at
      a blocking operation ([Exit]/[Barrier]/[Join]), [Cond_wait] whose
      mutex is not held, path-inconsistent locksets at CFG joins;
    - hybrid-recovery soundness (§3.5): unmatched/nested
      [Cpr_begin]/[Cpr_end], and any [Nonstd_atomic] reachable with
      region depth 0;
    - cross-proc facts: a mutex acquisition-order graph (SCCs of two or
      more mutexes are potential ABBA deadlocks) and which procs reach
      each barrier, cross-checked against [barrier_parties];
    - plumbing errors: out-of-range sync ids, unknown fork targets,
      out-of-bounds branch targets, implicit exits.

    The analysis is sound for the checks above up to id resolution:
    unresolved ids degrade to an "unknown lock" element with warnings
    rather than errors, so dynamically-chosen mutexes (e.g. per-bucket
    locks) do not produce false errors. Diagnostics are deduplicated per
    (proc, pc, kind) and sorted errors-first. *)

exception Rejected of Diagnostic.t list
(** Raised by strict-mode callers (see {!Gprs.Engine.run}) to refuse
    executing a program with error-severity findings. *)

type lock = Lk of int | Lunk
(** An abstract lockset element: a statically-resolved mutex id, or a
    mutex whose id did not resolve (dynamically chosen). [Lunk] can never
    prove two sites share a lock. *)

type facts = {
  f_entry : string;
  f_accesses : (string * int * lock list * int * Races.summary) list;
      (** [(proc, pc, lockset, cpr_depth, summary)] for every reachable
          [Work] site, under the last (most conservative) dataflow state
          the fixpoint computed there *)
  f_forks : (string * int * string) list;
      (** [(forker, pc, target)] for every reachable [Fork] site *)
}
(** Dataflow facts exported for the race pass (see {!Race}). *)

val program : Vm.Isa.program -> Diagnostic.t list
(** Analyze a program. Never raises; returns sorted diagnostics. *)

val program_facts : Vm.Isa.program -> Diagnostic.t list * facts
(** As {!program}, additionally collecting per-site access summaries and
    fork sites for the Eraser-style race pass ({!Race.program}). *)

val errors : Diagnostic.t list -> Diagnostic.t list
(** Just the [Error]-severity findings. *)

val has_errors : Diagnostic.t list -> bool

val has_kind : Diagnostic.kind -> Diagnostic.t list -> bool
