(* Eraser-style static lockset race analysis.

   GPRS's selective squash computes its undo set from *tracked*
   dependences (lock handoffs, sub-thread alias sets), which is complete
   only for data-race-free programs: an unsynchronized conflicting
   access is a dependence the WAL never saw, so the squash set is
   silently incomplete. This pass discharges that assumption statically.

   Candidate conflicts come from the per-[Work]-site access summaries
   {!Check.program_facts} collects ({!Races.summary}): two sites
   conflict when their may-access regions overlap (word against word,
   word against page, or page against page), at least one side writes,
   and the sites can actually run concurrently. Lockset refinement is
   classic Eraser: a conflict is a race unless the two sites' dataflow
   locksets share a statically-resolved mutex — an unresolved [Lunk]
   entry can never prove identity, so dynamically-chosen locks protect
   nothing *statically* (the dynamic sanitizer {!Exec.Tsan} covers them
   with exact lock identities at run time).

   Concurrency approximation:
   - the entry proc is excluded: everything it executes is ordered
     against the workers it forks and joins (fork/join edges), which is
     exactly the main-initializes / workers-read idiom;
   - cross-proc pairs of forked procs are concurrent;
   - same-proc pairs (including a site against itself) require fork
     multiplicity >= 2 — a proc forked once cannot self-race. A fork
     site on a CFG cycle counts as multiplicity 2.
   - accesses inside a CPR region (depth > 0) are exempt on both sides:
     hybrid recovery (§3.5) restores such regions from coordinated
     checkpoints and never selectively squashes them, so race freedom is
     not assumed there (that is the whole point of the escape hatch). *)

let max_reports = 50

(* --- fork multiplicity ------------------------------------------------ *)

(* A fork site reachable from its own successors re-executes, so its
   target is forked at least twice. *)
let site_on_cycle cfg pc =
  let n = Cfg.end_node cfg in
  let seen = Array.make (n + 1) false in
  let rec go x =
    if Cfg.in_bounds cfg x && not seen.(x) then begin
      seen.(x) <- true;
      List.iter go (Cfg.successors cfg x)
    end
  in
  List.iter go (Cfg.successors cfg pc);
  Cfg.in_bounds cfg pc && seen.(pc)

(* How many instances of each proc can run: 0 (never forked), 1, or
   "2 or more" (capped — higher counts add nothing to pairing). *)
let multiplicities (prog : Vm.Isa.program) (facts : Check.facts) =
  let mult : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let get p = Option.value (Hashtbl.find_opt mult p) ~default:0 in
  let cfgs : (string, Cfg.t) Hashtbl.t = Hashtbl.create 8 in
  let cfg_of p =
    match Hashtbl.find_opt cfgs p with
    | Some c -> c
    | None ->
      let c = Cfg.build (List.assoc p prog.Vm.Isa.procs) in
      Hashtbl.replace cfgs p c;
      c
  in
  let weighted =
    List.filter_map
      (fun (forker, pc, target) ->
        if List.mem_assoc forker prog.Vm.Isa.procs then
          Some (forker, target, if site_on_cycle (cfg_of forker) pc then 2 else 1)
        else None)
      facts.Check.f_forks
  in
  let procs = List.map fst prog.Vm.Isa.procs in
  let changed = ref true in
  Hashtbl.replace mult facts.Check.f_entry 1;
  while !changed do
    changed := false;
    List.iter
      (fun p ->
        let base = if p = facts.Check.f_entry then 1 else 0 in
        let total =
          List.fold_left
            (fun acc (forker, target, w) ->
              if target = p then acc + (w * get forker) else acc)
            base weighted
        in
        let total = Stdlib.min 2 total in
        if total <> get p then begin
          Hashtbl.replace mult p total;
          changed := true
        end)
      procs
  done;
  get

(* --- conflict detection ----------------------------------------------- *)

type sample = Word of int | Page of int

let first_word_in_pages words pages =
  List.find_opt
    (fun w -> Races.mem_sorted (w lsr Races.page_bits) pages)
    words

(* Overlap between one side's writes (words + pages) and the other
   side's accesses, word-precise entries compared at word granularity
   and page-coarse entries at page granularity. *)
let region_overlap (w_words, w_pages) (o_words, o_pages) =
  match Races.common w_words o_words with
  | Some w -> Some (Word w)
  | None -> (
    match first_word_in_pages w_words o_pages with
    | Some w -> Some (Page (w lsr Races.page_bits))
    | None -> (
      match first_word_in_pages o_words w_pages with
      | Some w -> Some (Page (w lsr Races.page_bits))
      | None -> (
        match Races.common w_pages o_pages with
        | Some p -> Some (Page p)
        | None -> None)))

(* First write-involved overlap between two summaries:
   [(kind1, kind2, sample)]. *)
let conflict (s1 : Races.summary) (s2 : Races.summary) =
  match
    region_overlap (s1.Races.w_words, s1.Races.w_pages)
      (s2.Races.w_words, s2.Races.w_pages)
  with
  | Some sm -> Some ("write", "write", sm)
  | None -> (
    match
      region_overlap (s1.Races.w_words, s1.Races.w_pages)
        (s2.Races.r_words, s2.Races.r_pages)
    with
    | Some sm -> Some ("write", "read", sm)
    | None -> (
      match
        region_overlap (s2.Races.w_words, s2.Races.w_pages)
          (s1.Races.r_words, s1.Races.r_pages)
      with
      | Some sm -> Some ("read", "write", sm)
      | None -> None))

let shares_known_lock l1 l2 =
  List.exists
    (function
      | Check.Lk k -> List.mem (Check.Lk k) l2
      | Check.Lunk -> false)
    l1

let lockset_str locks =
  Printf.sprintf "{%s}"
    (String.concat ","
       (List.rev_map
          (function Check.Lk m -> Printf.sprintf "m%d" m | Check.Lunk -> "m?")
          locks))

let sample_str = function
  | Word w -> Printf.sprintf "word %d" w
  | Page p ->
    Printf.sprintf "words [%d..%d]" (p lsl Races.page_bits)
      (((p + 1) lsl Races.page_bits) - 1)

(* --- the pass --------------------------------------------------------- *)

let races (prog : Vm.Isa.program) (facts : Check.facts) =
  let mult = multiplicities prog facts in
  let sites =
    facts.Check.f_accesses
    |> List.filter (fun (p, _, _, cpr, s) ->
           p <> facts.Check.f_entry && mult p >= 1 && cpr = 0
           && not (Races.no_accesses s))
    |> Array.of_list
  in
  let out = ref [] in
  let n_out = ref 0 in
  let seen : (string * int * string * int, unit) Hashtbl.t =
    Hashtbl.create 16
  in
  let n = Array.length sites in
  (try
     for i = 0 to n - 1 do
       let p1, pc1, locks1, _, s1 = sites.(i) in
       for j = i to n - 1 do
         let p2, pc2, locks2, _, s2 = sites.(j) in
         let concurrent = p1 <> p2 || mult p1 >= 2 in
         if concurrent && not (shares_known_lock locks1 locks2) then
           match conflict s1 s2 with
           | None -> ()
           | Some (k1, k2, sm) ->
             let key = (p1, pc1, p2, pc2) in
             if not (Hashtbl.mem seen key) then begin
               Hashtbl.replace seen key ();
               let how =
                 if p1 = p2 && pc1 = pc2 then
                   Printf.sprintf
                     "two concurrent instances of %s execute this %s" p1 k1
                 else
                   Printf.sprintf "%s at %s.%d (lockset %s) and %s at %s.%d \
                                   (lockset %s) can run concurrently"
                     k1 p1 pc1 (lockset_str locks1) k2 p2 pc2
                     (lockset_str locks2)
               in
               let d =
                 Diagnostic.make ~severity:Diagnostic.Error
                   ~kind:Diagnostic.Race_unprotected ~proc:p1 ~pc:pc1
                   ~instr:"work"
                   (Printf.sprintf
                      "possible data race on %s: %s with no common lock \
                       (%s vs %s) — an untracked dependence, so selective \
                       squash cannot be trusted here"
                      (sample_str sm) how (lockset_str locks1)
                      (lockset_str locks2))
               in
               out := d :: !out;
               incr n_out;
               if !n_out >= max_reports then raise Stdlib.Exit
             end
       done
     done
   with Stdlib.Exit -> ());
  List.rev !out

let program prog =
  let diags, facts = Check.program_facts prog in
  List.sort Diagnostic.compare (races prog facts @ diags)
