(* Per-proc control-flow graph over the instruction array.

   Program points are instruction indices [0 .. n-1] plus a virtual end
   node [n]: the interpreters treat running off the end of the code array
   as an implicit [Exit] (see [Exec.Baseline]), so falling through the
   last instruction is an edge to [n], not an error. [Exit] terminates
   (no successors); [Goto]/[If] jump anywhere, including out of bounds —
   out-of-bounds targets are kept in the edge list so the checker can
   diagnose them rather than crash. *)

type t = {
  code : Vm.Isa.instr array;
  succs : int list array;  (* length n + 1; node n (virtual end) is empty *)
}

let end_node t = Array.length t.code

let static_successors code pc =
  match code.(pc) with
  | Vm.Isa.Exit -> []
  | Vm.Isa.Goto target -> [ target ]
  | Vm.Isa.If { target; _ } -> [ target; pc + 1 ]
  | Vm.Isa.Work _ | Vm.Isa.Opaque _ | Vm.Isa.Lock _ | Vm.Isa.Unlock _
  | Vm.Isa.Barrier _ | Vm.Isa.Cond_wait _ | Vm.Isa.Cond_signal _
  | Vm.Isa.Atomic _ | Vm.Isa.Nonstd_atomic _ | Vm.Isa.Fork _ | Vm.Isa.Join _
  | Vm.Isa.Alloc _ | Vm.Isa.Free _ | Vm.Isa.Cpr_begin | Vm.Isa.Cpr_end ->
    [ pc + 1 ]

let build (proc : Vm.Isa.proc) =
  let code = proc.Vm.Isa.code in
  let n = Array.length code in
  let succs = Array.make (n + 1) [] in
  for pc = 0 to n - 1 do
    succs.(pc) <- static_successors code pc
  done;
  { code; succs }

let successors t pc = if pc = end_node t then [] else t.succs.(pc)

let in_bounds t pc = pc >= 0 && pc <= end_node t

(* Nodes reachable from the entry, following static edges only (no
   branch folding). Used for dead-code-aware reporting. *)
let reachable t =
  let n = end_node t in
  let seen = Array.make (n + 1) false in
  let rec go pc =
    if in_bounds t pc && not seen.(pc) then begin
      seen.(pc) <- true;
      List.iter go (successors t pc)
    end
  in
  go 0;
  seen
