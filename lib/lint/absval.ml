(* Abstract register values and probe evaluation of closure-typed
   operands.

   The virtual ISA identifies synchronization objects with closures
   ([m : regs -> int]) rather than literal fields, so a static analysis
   must recover the id without executing the program. Two mechanisms
   combine here:

   - bounded constant propagation: registers hold [Known v] or [Top];
     [Work] bodies are probe-executed against a sandboxed {!Vm.Env.t}
     (writes land in a scratch table, reads of untouched state return
     probe-dependent fillers), so pure register moves like
     [Builder.set_reg] propagate exactly while anything data-dependent
     on shared memory, files or the tid demotes to [Top];

   - probe evaluation of id closures: evaluate the closure under two
     register vectors that agree on [Known] registers and differ on every
     [Top] register (and under two memory fillers); agreement means the
     closure's result is independent of everything unknown, so the value
     is exact — disagreement demotes to [Top]. This resolves the
     ubiquitous [fun _ -> k] ids regardless of register knowledge.

   Probing runs workload OCaml code at lint time. That code is the same
   code the interpreter runs, restricted to the [Env] interface, so it is
   side-effect-free outside the sandbox. Termination, however, cannot be
   assumed cheap: a body whose loop bound is data-dependent (e.g.
   [for k = 1 to len] where [len] is an unknown register) sees a filler
   value in the millions and would burn seconds per probe. Every sandbox
   therefore carries a fuel budget counted in [Env] operations; running
   out aborts the probe, which {!eval_work} already folds to all-[Top] —
   the sound answer for a body whose effects we could not afford to
   observe. *)

type t = Known of int | Top

let equal a b =
  match (a, b) with
  | Known x, Known y -> x = y
  | Top, Top -> true
  | Known _, Top | Top, Known _ -> false

let join a b = if equal a b then a else Top

let pp ppf = function
  | Known v -> Format.fprintf ppf "%d" v
  | Top -> Format.pp_print_string ppf "T"

(* Two deliberately weird, distinct filler families. A coincidental
   agreement of both probes on unknown data would mis-resolve an id; the
   fillers are large co-prime affine maps to make that vanishingly
   unlikely for the arithmetic workloads write. *)
let filler_a i = 0x5eed + (7919 * (i + 1))
let filler_b i = 0x7a11 + (104729 * (i + 1))

let concretize regs filler =
  Array.init (Array.length regs) (fun i ->
      match regs.(i) with Known v -> v | Top -> filler i)

let top_regs n = Array.make n Top

let all_known regs =
  if Array.for_all (function Known _ -> true | Top -> false) regs then
    Some (concretize regs filler_a)
  else None

let eval_int regs f =
  match (f (concretize regs filler_a), f (concretize regs filler_b)) with
  | a, b when a = b -> Known a
  | _ -> Top
  | exception _ -> Top

let eval_int_array regs f =
  match (f (concretize regs filler_a), f (concretize regs filler_b)) with
  | a, b when Array.length a = Array.length b ->
    Some
      (Array.init (Array.length a) (fun i ->
           if a.(i) = b.(i) then Known a.(i) else Top))
  | _ -> None
  | exception _ -> None

(* Branch folding must never guess: a comparison can collapse two
   disagreeing probes onto the same boolean (e.g. [r.(2) < 4] under two
   huge fillers), which would hide a genuinely reachable path. Fold only
   when every register is exactly known. *)
let eval_cond regs f =
  match all_known regs with
  | None -> `Unknown
  | Some concrete -> (
    match f concrete with
    | true -> `True
    | false -> `False
    | exception _ -> `Unknown)

exception Out_of_fuel

(* Generous for every honest per-instruction body (the shipped workloads
   touch at most a few thousand words per [Work]), tiny next to the
   ~10^6-iteration loops a filler-valued bound produces. *)
let probe_fuel = 50_000

(* Sandboxed environment for probe-executing a [Work] body: writes are
   remembered (so read-after-write within one body is consistent), reads
   of untouched addresses and all file contents are salt-dependent, and
   the tid differs between probes so tid-derived values demote to Top.
   Every operation burns fuel; exhaustion raises {!Out_of_fuel}. *)
let sandbox_env ?(on_read = fun _ -> ()) ?(on_write = fun _ -> ()) ~salt regs =
  let written : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let files : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  let h x = ((x * 0x9E3779B9) + salt) land 0x3FFF_FFFF in
  let fuel = ref probe_fuel in
  let burn () =
    decr fuel;
    if !fuel < 0 then raise Out_of_fuel
  in
  {
    Vm.Env.tid = salt land 0xFFF;
    regs;
    read =
      (fun a ->
        burn ();
        on_read a;
        match Hashtbl.find_opt written a with Some v -> v | None -> h (a + 1));
    write =
      (fun a v ->
        burn ();
        on_write a;
        Hashtbl.replace written a v);
    file_size =
      (fun fd ->
        burn ();
        h (fd + 0x1001) land 0xFFF);
    file_read =
      (fun fd ~off ->
        burn ();
        match Hashtbl.find_opt files (fd, off) with
        | Some v -> v
        | None -> h ((fd * 65599) + off));
    file_write =
      (fun fd ~off v ->
        burn ();
        Hashtbl.replace files (fd, off) v);
  }

let eval_work regs run =
  let ra = concretize regs filler_a and rb = concretize regs filler_b in
  match
    run (sandbox_env ~salt:0x5eed0 ra);
    run (sandbox_env ~salt:0x7a110 rb)
  with
  | () ->
    Array.init (Array.length regs) (fun i ->
        if ra.(i) = rb.(i) then Known ra.(i) else Top)
  | exception _ -> top_regs (Array.length regs)
