(* ASCII rendering of lint findings, in the house style of
   [Analysis.Report.render_table] (title, header, dashed rule, aligned
   columns; first column left-aligned). Kept local so [lint] depends
   only on [vm]. *)

let render_table ppf ~title ~header rows =
  let ncols = List.length header in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri
      (fun i c ->
        if i < ncols then widths.(i) <- Stdlib.max widths.(i) (String.length c))
      cells
  in
  measure header;
  List.iter measure rows;
  let pad i c =
    let w = if i < ncols then widths.(i) else String.length c in
    let fill = String.make (Stdlib.max 0 (w - String.length c)) ' ' in
    c ^ fill
  in
  let rtrim s =
    let n = ref (String.length s) in
    while !n > 0 && s.[!n - 1] = ' ' do
      decr n
    done;
    String.sub s 0 !n
  in
  let line cells =
    Format.fprintf ppf "%s@." (rtrim (String.concat "  " (List.mapi pad cells)))
  in
  Format.fprintf ppf "%s@." title;
  line header;
  Format.fprintf ppf "%s@."
    (String.make (Array.fold_left ( + ) (2 * (ncols - 1)) widths) '-');
  List.iter line rows

let summary diags =
  let count sev =
    List.length
      (List.filter (fun d -> d.Diagnostic.severity = sev) diags)
  in
  let e = count Diagnostic.Error
  and w = count Diagnostic.Warning
  and i = count Diagnostic.Info in
  Printf.sprintf "%d error%s, %d warning%s, %d info" e
    (if e = 1 then "" else "s")
    w
    (if w = 1 then "" else "s")
    i

(* Machine-readable output for CI and the scenario-matrix driver: a JSON
   array of diagnostic objects. Hand-rolled like the bench writer so
   [lint] keeps its vm-only dependency footprint. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let diag_json d =
  Printf.sprintf
    "{\"severity\":\"%s\",\"kind\":\"%s\",\"proc\":\"%s\",\"pc\":%d,\
     \"site\":\"%s\",\"instr\":\"%s\",\"message\":\"%s\"}"
    (Diagnostic.severity_label d.Diagnostic.severity)
    (Diagnostic.kind_label d.Diagnostic.kind)
    (json_escape d.Diagnostic.proc)
    d.Diagnostic.pc
    (json_escape (Diagnostic.site d))
    (json_escape d.Diagnostic.instr)
    (json_escape d.Diagnostic.message)

let pp_json ppf diags =
  Format.fprintf ppf "[%s]"
    (String.concat "," (List.map diag_json diags))

let pp ?(title = "GPRS-lint findings") ppf diags =
  match diags with
  | [] -> Format.fprintf ppf "%s: clean@." title
  | _ ->
    let rows =
      List.map
        (fun d ->
          [
            Diagnostic.severity_label d.Diagnostic.severity;
            Diagnostic.kind_label d.Diagnostic.kind;
            Diagnostic.site d;
            d.Diagnostic.instr;
            d.Diagnostic.message;
          ])
        diags
    in
    render_table ppf
      ~title:(Printf.sprintf "%s (%s)" title (summary diags))
      ~header:[ "severity"; "kind"; "site"; "instr"; "explanation" ]
      rows
