(* Per-[Work]-block may-read/may-write address summaries.

   The probe sandbox of {!Absval} already executes every [Work] body
   twice, under two filler families that agree on [Known] registers and
   disagree on everything unknown. Recording the addresses each probe
   touches classifies every access by how much of it the analysis
   actually resolved:

   - both probes touch the same address: the address is a function of
     [Known] state only, so the access is *word-precise*;
   - the probes touch different addresses but the same 2^{!page_bits}
     word page (a [Known] base plus a small unknown offset): the access
     is *page-coarse*;
   - the probes diverge entirely (the address is data-dependent on a
     filler — shared memory, a file, the tid, or a [Top] register): the
     access is *unknown* and is dropped from conflict detection, only
     its count is kept.

   Dropping unknown accesses is a deliberate soundness trade: a
   filler-dependent address is almost always thread-private indexing
   (per-worker tables, chunked output slots, allocator blocks), and
   treating it as may-touch-anything would flag every data-parallel
   workload. The dynamic sanitizer ({!Exec.Tsan}) covers the dropped
   accesses with exact addresses at run time; the cross-validation suite
   holds the two sides against each other. *)

(* Matches the interpreter's {!Vm.Mem} dirty-page granularity. *)
let page_bits = 6

type summary = {
  w_words : int list;  (* sorted word-precise may-writes *)
  r_words : int list;  (* sorted word-precise may-reads *)
  w_pages : int list;  (* sorted page-coarse may-writes *)
  r_pages : int list;
  unknown_writes : int;  (* probe-divergent, dropped from conflicts *)
  unknown_reads : int;
  incomplete : bool;  (* a probe aborted: effects beyond these unseen *)
}

let empty_summary =
  {
    w_words = [];
    r_words = [];
    w_pages = [];
    r_pages = [];
    unknown_writes = 0;
    unknown_reads = 0;
    incomplete = false;
  }

let no_accesses s =
  s.w_words = [] && s.r_words = [] && s.w_pages = [] && s.r_pages = []

type probe = {
  regs : Absval.t array;  (* post-state registers, as {!Absval.eval_work} *)
  summary : summary;
  fuel_exhausted : bool;
}

(* --- sorted-int-list set algebra -------------------------------------- *)

let sorted_of_tbl tbl =
  Hashtbl.fold (fun a () acc -> a :: acc) tbl [] |> List.sort_uniq compare

let rec inter a b =
  match (a, b) with
  | [], _ | _, [] -> []
  | x :: xs, y :: ys ->
    if x = y then x :: inter xs ys
    else if x < y then inter xs b
    else inter a ys

let rec overlap a b =
  match (a, b) with
  | [], _ | _, [] -> false
  | x :: xs, y :: ys ->
    if x = y then true else if x < y then overlap xs b else overlap a ys

(* First common element, for diagnostics. *)
let rec common a b =
  match (a, b) with
  | [], _ | _, [] -> None
  | x :: xs, y :: ys ->
    if x = y then Some x
    else if x < y then common xs b
    else common a ys

let mem_sorted x l = List.exists (fun y -> y = x) l

(* --- the dual probe --------------------------------------------------- *)

(* Classify one access class (reads or writes) of the two probes into
   word-precise / page-coarse / unknown, clamped to the program's memory
   so filler-derived garbage addresses cannot collide into findings. *)
let classify ~mem_words ta tb =
  let sa = sorted_of_tbl ta and sb = sorted_of_tbl tb in
  let words =
    inter sa sb |> List.filter (fun a -> a >= 0 && a < mem_words)
  in
  let leftover s = List.filter (fun a -> not (mem_sorted a words)) s in
  let la = leftover sa and lb = leftover sb in
  let max_page = (mem_words + (1 lsl page_bits) - 1) lsr page_bits in
  let pages l =
    List.map (fun a -> a lsr page_bits) l
    |> List.sort_uniq compare
    |> List.filter (fun p -> p >= 0 && p < max_page)
  in
  let shared_pages = inter (pages la) (pages lb) in
  let unknown =
    List.length
      (List.filter (fun a -> not (mem_sorted (a lsr page_bits) shared_pages)) la)
  in
  (words, shared_pages, unknown)

(* Probe-execute a [Work] body exactly as {!Absval.eval_work} does —
   same fillers, same salts, same fold of any exception to all-[Top]
   registers — additionally recording the addresses each probe touches
   (when [record]) and whether the abort was fuel exhaustion. *)
let probe_work ?(record = true) ~mem_words regs run =
  let ra = Absval.concretize regs Absval.filler_a
  and rb = Absval.concretize regs Absval.filler_b in
  let reads_a = Hashtbl.create 16
  and writes_a = Hashtbl.create 16
  and reads_b = Hashtbl.create 16
  and writes_b = Hashtbl.create 16 in
  let note tbl = if record then fun a -> Hashtbl.replace tbl a () else fun _ -> () in
  let fuel = ref false in
  let aborted = ref false in
  let go salt cregs ~reads ~writes =
    match
      run
        (Absval.sandbox_env ~on_read:(note reads) ~on_write:(note writes)
           ~salt cregs)
    with
    | () -> true
    | exception Absval.Out_of_fuel ->
      fuel := true;
      aborted := true;
      false
    | exception _ ->
      aborted := true;
      false
  in
  let ok_a = go 0x5eed0 ra ~reads:reads_a ~writes:writes_a in
  (* eval_work never runs the second probe once the first throws *)
  let ok_b = ok_a && go 0x7a110 rb ~reads:reads_b ~writes:writes_b in
  let regs' =
    if ok_a && ok_b then
      Array.init (Array.length regs) (fun i ->
          if ra.(i) = rb.(i) then Absval.Known ra.(i) else Absval.Top)
    else Absval.top_regs (Array.length regs)
  in
  let summary =
    if not record then empty_summary
    else if ok_a && ok_b then begin
      let w_words, w_pages, unknown_writes =
        classify ~mem_words writes_a writes_b
      in
      let r_words, r_pages, unknown_reads =
        classify ~mem_words reads_a reads_b
      in
      { w_words; r_words; w_pages; r_pages; unknown_writes; unknown_reads;
        incomplete = false }
    end
    else
      (* An aborted probe leaves no cross-probe agreement to classify:
         count what probe A saw as unknown and flag the hole. *)
      {
        empty_summary with
        unknown_writes = Hashtbl.length writes_a;
        unknown_reads = Hashtbl.length reads_a;
        incomplete = true;
      }
  in
  { regs = regs'; summary; fuel_exhausted = !fuel }
