(** Structured findings produced by GPRS-lint.

    A diagnostic pins a finding to a procedure and program counter in a
    {!Vm.Isa.program}, carries the instruction name for context, and a
    machine-checkable {!kind} so tests (and tools) can assert on the exact
    check that fired rather than on message text. *)

type severity = Info | Warning | Error

type kind =
  | Unlock_without_lock  (** unlock of a mutex not in the lockset *)
  | Unresolved_unlock
      (** unlock whose mutex id could not be resolved statically while
          only exactly-resolved locks are held; pairing is assumed LIFO *)
  | Double_lock  (** second acquisition of a held (non-reentrant) mutex *)
  | Lock_at_blocking
      (** a mutex is held at a blocking operation — [Exit], [Barrier] or
          [Join] — so other threads needing it can never get it *)
  | Wait_without_mutex  (** [Cond_wait] whose mutex is not held *)
  | Inconsistent_locksets
      (** two CFG paths meet with different locksets (lock leak on a
          branch or loop iteration) *)
  | Lockset_overflow  (** more simultaneously-held locks than the cap *)
  | Unmatched_cpr_end  (** [Cpr_end] with no open region *)
  | Cpr_open_at_exit  (** thread exits inside a [Cpr_begin] region *)
  | Nested_cpr
      (** [Cpr_begin] inside a region — the VM tracks region membership
          as a flag, so the inner [Cpr_end] silently ends the outer *)
  | Inconsistent_cpr  (** CFG paths meet with different region depths *)
  | Unprotected_nonstd
      (** a [Nonstd_atomic] is reachable with no open CPR region: hybrid
          recovery (§3.5) is unsound for this program *)
  | Lock_order_cycle
      (** mutexes are acquired in conflicting orders across the program:
          potential ABBA deadlock *)
  | Bad_sync_id  (** statically-resolved object id out of declared range *)
  | Unknown_fork_target  (** [Fork] names a proc not in the program *)
  | Bad_branch_target  (** [Goto]/[If] target outside the code array *)
  | Barrier_mismatch  (** barrier_parties disagrees with static arrivals *)
  | Barrier_coverage  (** informational: which procs reach each barrier *)
  | Unforked_proc  (** informational: proc is neither entry nor forked *)
  | Implicit_exit  (** control can fall off the end of the code array *)
  | Analysis_budget  (** fixpoint iteration cap hit; results are partial *)
  | Race_unprotected
      (** two concurrent accesses to an overlapping may-access region,
          at least one a write, with no common statically-provable lock:
          an untracked dependence, so selective squash is unsound *)
  | Probe_fuel
      (** a [Work]-body probe ran out of fuel: its register effects and
          access summary degraded to all-[Top], hiding precision that
          also coarsens race detection at this proc *)

type t = {
  severity : severity;
  kind : kind;
  proc : string;
  pc : int;  (** [-1] for whole-program findings *)
  instr : string;
  message : string;
}

val make :
  severity:severity ->
  kind:kind ->
  proc:string ->
  pc:int ->
  instr:string ->
  string ->
  t

val severity_label : severity -> string
val kind_label : kind -> string
val severity_rank : severity -> int
(** [Error] ranks lowest (sorts first). *)

val compare : t -> t -> int
(** Orders by severity (errors first), then proc, pc, message. *)

val site : t -> string
(** ["proc.pc"], or just the proc name for whole-program findings. *)

val pp : Format.formatter -> t -> unit
