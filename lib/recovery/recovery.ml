(* ARIES-style cold recovery over the GPRS WAL's stable-storage image,
   plus the crash-consistency sweep harness built on it. *)

module IntSet = Set.Make (Int)

type analysis = {
  horizon : int;
  dropped : int list;
  losers : int list;
  loser_ops : Wal.entry list;
  replayed : int;
  redo : Vm.Mem.t -> int;
  next_sub : int;
  points : (int * int) list;
}

(* Concrete copy of the inline S_ckpt_end payload, so the analysis can
   carry it around. *)
type ckpt = {
  c_min_retired : int;
  c_redo_start : int;
  c_brk : int;
  c_free : (int * int) list;
  c_used : (int * int) list;
}

let analyze image =
  Faults.Points.strike Faults.Points.Recovery_analysis;
  let recs = Wal.parse_image image in
  (* Analysis pass: last complete checkpoint, retirement horizon, the
     drop set of live-squashed orders, and every op record in LSN order. *)
  let ckpt = ref None in
  let horizon = ref 0 in
  let dropped = ref IntSet.empty in
  let ops = ref [] in
  List.iter
    (fun r ->
      match r with
      | Wal.S_op { at; e } -> ops := (at, e) :: !ops
      | Wal.S_prune { upto; _ } -> horizon := Stdlib.max !horizon upto
      | Wal.S_drop { orders; _ } ->
        List.iter (fun o -> dropped := IntSet.add o !dropped) orders
      | Wal.S_ckpt_begin _ -> ()
      | Wal.S_ckpt_end { min_retired; redo_start; brk; free; used; _ } ->
        (* Begin records carry no payload: a begin without its end means
           the checkpoint did not complete and the previous one governs. *)
        horizon := Stdlib.max !horizon min_retired;
        ckpt :=
          Some
            {
              c_min_retired = min_retired;
              c_redo_start = redo_start;
              c_brk = brk;
              c_free = free;
              c_used = used;
            })
    recs;
  let ckpt =
    match !ckpt with
    | Some c -> c
    | None -> raise (Wal.Corrupt "no complete checkpoint record in image")
  in
  let ops = List.rev !ops in
  let horizon = !horizon in
  let dropped = !dropped in
  (* Losers: every order the log ever granted that neither retired
     (order >= horizon) nor was squashed-and-undone by a live recovery
     before the crash (drop markers). *)
  let losers =
    List.fold_left
      (fun acc (_, (e : Wal.entry)) ->
        if e.Wal.order >= horizon && not (IntSet.mem e.Wal.order dropped) then
          IntSet.add e.Wal.order acc
        else acc)
      IntSet.empty ops
  in
  let loser_ops =
    List.filter (fun (_, (e : Wal.entry)) -> IntSet.mem e.Wal.order losers) ops
    |> List.rev_map snd
  in
  let retired o = o < horizon && not (IntSet.mem o dropped) in
  let replayed =
    List.length
      (List.filter (fun (_, (e : Wal.entry)) -> e.Wal.lsn >= ckpt.c_redo_start) ops)
  in
  (* Redo: install the checkpointed allocator, then conditionally
     re-apply the retired-prefix records from the redo-start LSN on.
     Allocs are positional carves (no-op when the checkpoint already
     holds them); frees are the retirement-time application of the
     quarantined blocks, guarded so a free already reflected in the
     checkpoint is not applied twice. Thread/ROL/queue/IO records need no
     allocator action — their state lives in the durable TCBs or is
     rebuilt by the restart logic — but they count as redone work. *)
  let redo mem =
    Faults.Points.strike Faults.Points.Recovery_redo;
    Vm.Mem.restore_alloc_parts mem ~brk:ckpt.c_brk ~free:ckpt.c_free
      ~used:ckpt.c_used;
    let n = ref 0 in
    List.iter
      (fun (_, (e : Wal.entry)) ->
        if e.Wal.lsn >= ckpt.c_redo_start && retired e.Wal.order then begin
          incr n;
          match e.Wal.op with
          | Wal.Alloc { addr; size } -> Vm.Mem.redo_alloc mem addr ~size
          | Wal.Free { addr; size } -> (
            match Vm.Mem.block_size mem addr with
            | Some s when s = size -> Vm.Mem.free mem addr
            | Some _ | None -> ())
          | Wal.Thread_create _ | Wal.Rol_insert _ | Wal.Sched_enqueue _
          | Wal.Io_op _ -> ()
        end)
      ops;
    !n
  in
  let next_sub =
    1
    + List.fold_left
        (fun acc (_, (e : Wal.entry)) -> Stdlib.max acc e.Wal.order)
        (-1) ops
  in
  {
    horizon;
    dropped = IntSet.elements dropped;
    losers = IntSet.elements losers;
    loser_ops;
    replayed;
    redo;
    next_sub;
    points = List.map (fun (at, (e : Wal.entry)) -> (e.Wal.lsn, at)) ops;
  }

let recover ?(mangle = fun s -> s) dump =
  let t0 = Unix.gettimeofday () in
  let a = analyze (mangle (Gprs.Engine.dump_wal_image dump)) in
  let resume =
    Gprs.Engine.cold_restart dump ~redo:a.redo ~loser_ops:a.loser_ops
      ~replayed:a.replayed ~next_sub:a.next_sub
  in
  let recovery_s = Unix.gettimeofday () -. t0 in
  (a, recovery_s, resume)

(* ------------------------------------------------------------------ *)
(* Normalized failure signatures                                       *)

(* The canonical outcome vocabulary shared by the crash sweep's --json
   output and the faultsweep scenario driver: every exercised fault lands
   in exactly one bucket, and only [wrong_digest] (or a sweep mismatch)
   is a correctness failure — everything else is the system refusing,
   shedding, or surviving bit-identically. *)
module Signature = struct
  let ok = "recovered-bit-identical"
  let refused_corrupt = "refused-corrupt"
  let refused_error = "refused-error"
  let shed = "shed"
  let hung = "hung-timeout"
  let wrong_digest = "wrong-digest"
  let not_triggered = "not-triggered"
  let analysis_mismatch = "analysis-mismatch"
end

(* ------------------------------------------------------------------ *)
(* Crash-consistency sweep                                             *)

type leg_report = {
  leg : string;
  points_total : int;
  points_run : int;
  mismatches : (int * string) list;
  outcomes : (int * string) list;
  mean_recovery_s : float;
  max_recovery_s : float;
  replayed_lsns : int;
  redone_ops : int;
  squashed_subs : int;
}

let leg_ok r = r.mismatches = []

let pilot ~cfg program =
  let out = ref "" in
  let cfg = { cfg with Gprs.Engine.wal_stable = true } in
  let r = Gprs.Engine.run ~lint:`Off ~wal_out:out cfg program in
  (!out, r)

(* [n] distinct elements of [pts], chosen by a seeded shuffle so large
   sweeps are reproducible; order of the survivors is preserved. *)
let sample_points prng n pts =
  let arr = Array.of_list pts in
  if n >= Array.length arr then pts
  else begin
    let idx = Array.init (Array.length arr) Fun.id in
    Sim.Prng.shuffle prng idx;
    let keep = Array.sub idx 0 n in
    Array.sort compare keep;
    Array.to_list (Array.map (fun i -> arr.(i)) keep)
  end

let sweep_gprs ?sample ?(sample_seed = 7) ~leg ~cfg ~digest program =
  let image, pr = pilot ~cfg program in
  let want = digest pr in
  let a0 = analyze image in
  let points_total = List.length a0.points in
  let chosen =
    match sample with
    | Some n when n < points_total ->
      sample_points (Sim.Prng.create sample_seed) n a0.points
    | Some _ | None -> a0.points
  in
  let mismatches = ref [] in
  let outcomes = ref [] in
  let fail lsn sg msg =
    mismatches := (lsn, msg) :: !mismatches;
    outcomes := (lsn, sg) :: !outcomes
  in
  let pass lsn = outcomes := (lsn, Signature.ok) :: !outcomes in
  let sum_s = ref 0.0 and max_s = ref 0.0 in
  let replayed = ref 0 and redone = ref 0 and squashed = ref 0 in
  List.iter
    (fun (lsn, _at) ->
      let cfg_c = { cfg with Gprs.Engine.crash_lsn = Some lsn } in
      match Gprs.Engine.run ~lint:`Off cfg_c program with
      | _ -> fail lsn Signature.not_triggered "crash point never fired"
      | exception Gprs.Engine.Crashed dump -> (
        match recover dump with
        | exception Wal.Corrupt msg ->
          fail lsn Signature.refused_corrupt ("corrupt WAL image: " ^ msg)
        | a, secs, resume ->
          sum_s := !sum_s +. secs;
          if secs > !max_s then max_s := secs;
          replayed := !replayed + a.replayed;
          if a.losers <> Gprs.Engine.dump_active_ids dump then
            fail lsn Signature.analysis_mismatch
              "WAL analysis loser set <> live ROL at crash"
          else begin
            let r = resume () in
            redone :=
              !redone + Sim.Stats.get r.Exec.State.run_stats "recovery.redone_ops";
            squashed :=
              !squashed
              + Sim.Stats.get r.Exec.State.run_stats "recovery.squashed_subs";
            if r.Exec.State.dnc then
              fail lsn Signature.hung "recovered run did not complete"
            else begin
              let got = digest r in
              if not (String.equal got want) then
                fail lsn Signature.wrong_digest
                  (Printf.sprintf "digest %s, want %s" got want)
              else pass lsn
            end
          end))
    chosen;
  let n = List.length chosen in
  {
    leg;
    points_total;
    points_run = n;
    mismatches = List.rev !mismatches;
    outcomes = List.rev !outcomes;
    mean_recovery_s = (if n = 0 then 0.0 else !sum_s /. float_of_int n);
    max_recovery_s = !max_s;
    replayed_lsns = !replayed;
    redone_ops = !redone;
    squashed_subs = !squashed;
  }

let sweep_pcpr ~leg ~cfg ~digest ~crash_cycles program =
  let want = digest (Cpr.run { cfg with Cpr.crash_at = None } program) in
  let mismatches = ref [] in
  let outcomes = ref [] in
  List.iter
    (fun c ->
      let r = Cpr.run { cfg with Cpr.crash_at = Some c } program in
      if r.Exec.State.dnc then begin
        mismatches := (c, "crashed run did not complete") :: !mismatches;
        outcomes := (c, Signature.hung) :: !outcomes
      end
      else begin
        let got = digest r in
        if not (String.equal got want) then begin
          mismatches := (c, Printf.sprintf "digest %s, want %s" got want) :: !mismatches;
          outcomes := (c, Signature.wrong_digest) :: !outcomes
        end
        else outcomes := (c, Signature.ok) :: !outcomes
      end)
    crash_cycles;
  {
    leg;
    points_total = List.length crash_cycles;
    points_run = List.length crash_cycles;
    mismatches = List.rev !mismatches;
    outcomes = List.rev !outcomes;
    mean_recovery_s = 0.0;
    max_recovery_s = 0.0;
    replayed_lsns = 0;
    redone_ops = 0;
    squashed_subs = 0;
  }

let pp_report ppf r =
  Format.fprintf ppf "%-14s %4d/%-4d points" r.leg r.points_run r.points_total;
  if leg_ok r then Format.fprintf ppf "  ok"
  else begin
    Format.fprintf ppf "  %d MISMATCH" (List.length r.mismatches);
    List.iteri
      (fun i (p, msg) ->
        if i < 5 then Format.fprintf ppf "@.    point %d: %s" p msg)
      r.mismatches
  end;
  if r.replayed_lsns > 0 then
    Format.fprintf ppf
      "  (recovery mean %.1fus max %.1fus, %d lsns replayed, %d redone, %d \
       squashed)"
      (1e6 *. r.mean_recovery_s) (1e6 *. r.max_recovery_s) r.replayed_lsns
      r.redone_ops r.squashed_subs
