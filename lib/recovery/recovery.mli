(** ARIES-style cold recovery from a whole-runtime crash, and the
    crash-consistency sweep built on it.

    A [Crash] tears down the live GPRS engine: work queues, the ROL
    ring, the live WAL entries and every engine-side table are gone
    (see the crash model in {!Gprs.Engine}). Recovery is the classic
    three-pass ARIES walk over the WAL's stable-storage image:

    - {e analysis} ({!analyze}) finds the last complete checkpoint, the
      retirement horizon (checkpoint [min_retired] joined with every
      later prune marker), the drop set of orders a live recovery had
      already squashed and undone, and from those the {e loser} set —
      sub-threads in flight at the crash;
    - {e redo} re-applies the retired-prefix allocator operations from
      the checkpoint's redo-start LSN forward, conditionally (a record
      whose effect is already in the checkpoint image is a no-op), so
      undo sees the exact crash-time allocator;
    - {e undo} rolls back the losers — architectural writes through
      their history-buffer undo logs, runtime operations through their
      WAL records in reverse LSN order — and precisely restarts their
      threads from the history-buffer checkpoints
      ({!Gprs.Engine.cold_restart}).

    The sweep ({!sweep_gprs}) is the crash-consistency argument: crash
    at {e every} WAL-record boundary (or a seeded sample on large runs)
    and require the recovered run's digest to equal the fault-free
    pilot's, with the analysis' loser set cross-checked against the
    live ROL captured at the crash. {!sweep_pcpr} runs the comparison
    leg: P-CPR restarting from its last committed global checkpoint
    under the same crash schedule. *)

type analysis = {
  horizon : int;  (** orders below this had retired before the crash *)
  dropped : int list;
      (** orders squashed and already undone by live recovery *)
  losers : int list;  (** in-flight orders to undo, ascending *)
  loser_ops : Wal.entry list;
      (** the losers' log records, newest (highest LSN) first *)
  replayed : int;  (** redo-scan length in records *)
  redo : Vm.Mem.t -> int;
      (** install checkpointed allocator + conditional redo; returns
          retired records re-applied *)
  next_sub : int;  (** continues the order-id sequence past the log *)
  points : (int * int) list;
      (** [(lsn, cycle)] of every op record, LSN order — the crash
          points a sweep enumerates, with the cycle for the P-CPR leg *)
}

val analyze : string -> analysis
(** Analysis pass over a stable WAL image ({!Wal.parse_image}).
    @raise Wal.Corrupt on a damaged or checkpoint-less image — recovery
    refuses corrupted stable storage rather than guessing. *)

val recover :
  ?mangle:(string -> string) ->
  Gprs.Engine.crash_dump ->
  analysis * float * (unit -> Exec.State.run_result)
(** Full cold recovery from a crash dump: analyze the WAL image, then
    redo/undo/restart through {!Gprs.Engine.cold_restart}. Returns the
    analysis, the host wall-clock seconds recovery took (analysis
    through restart, excluding re-execution), and the resume thunk.
    [mangle] corrupts the image before parsing — the negative-path hook
    for tests ([Wal.Corrupt] must surface, never a silent recovery). *)

(** {2 Normalized failure signatures} *)

(** The canonical outcome vocabulary shared by [crashsweep --json] and
    the [faultsweep] scenario driver. Every exercised fault classifies
    into exactly one signature; only {!Signature.wrong_digest} (or an
    {!Signature.analysis_mismatch}) is a correctness failure — the rest
    are the system surviving bit-identically or explicitly refusing. *)
module Signature : sig
  val ok : string
  (** "recovered-bit-identical" *)

  val refused_corrupt : string
  (** recovery refused a damaged image *)

  val refused_error : string
  (** injected error surfaced to the caller *)

  val shed : string
  (** service refused admission *)

  val hung : string
  (** run or recovery did not complete in budget *)

  val wrong_digest : string
  (** silent divergence — always a failure *)

  val not_triggered : string
  (** armed fault never fired *)

  val analysis_mismatch : string
  (** WAL analysis disagreed with live crash state *)
end

(** {2 Crash-consistency sweep} *)

type leg_report = {
  leg : string;
  points_total : int;  (** enumerable crash points *)
  points_run : int;  (** points actually exercised (= total, or sample) *)
  mismatches : (int * string) list;
      (** (crash point, what went wrong); empty on success *)
  outcomes : (int * string) list;
      (** (crash point, {!Signature} string) for every point run, in
          sweep order — the machine-readable view *)
  mean_recovery_s : float;  (** host seconds per cold recovery *)
  max_recovery_s : float;
  replayed_lsns : int;  (** summed over points *)
  redone_ops : int;
  squashed_subs : int;
}

val leg_ok : leg_report -> bool

val sample_points : Sim.Prng.t -> int -> 'a list -> 'a list
(** [n] distinct elements chosen by a seeded shuffle, original order
    preserved — how large sweeps subsample their crash points. *)

val pilot :
  cfg:Gprs.Engine.config -> Vm.Isa.program -> string * Exec.State.run_result
(** Fault-free stable-armed run: the reference digest and the WAL image
    whose record boundaries the sweep enumerates. *)

val sweep_gprs :
  ?sample:int ->
  ?sample_seed:int ->
  leg:string ->
  cfg:Gprs.Engine.config ->
  digest:(Exec.State.run_result -> string) ->
  Vm.Isa.program ->
  leg_report
(** Crash the run at every WAL op-record boundary ([sample] seeded
    points on large logs; default exhaustive), cold-recover, resume, and
    compare digests against the pilot. A point fails if the crash never
    fires, the image is corrupt, the analysis' losers disagree with the
    ROL captured at the crash, the resumed run does not complete, or
    the digest differs. *)

val sweep_pcpr :
  leg:string ->
  cfg:Cpr.config ->
  digest:(Exec.State.run_result -> string) ->
  crash_cycles:int list ->
  Vm.Isa.program ->
  leg_report
(** The comparison leg: P-CPR crashed at the given simulated cycles
    (the GPRS sweep's record cycles), restarting from its last committed
    global checkpoint. A cycle past the run's completion is a vacuous
    point (the crash never lands) and counts as ok. *)

val pp_report : Format.formatter -> leg_report -> unit
