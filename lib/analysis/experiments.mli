(** Experiment drivers: one per table/figure of the paper's evaluation.

    Every driver runs the simulator — never canned numbers — and returns
    a structured result that {!Report} renders in the same shape the
    paper reports. Absolute values differ from the paper (our substrate
    is a simulated machine, theirs a 24-context Xeon); the comparisons —
    who wins, by roughly what factor, where the tipping points fall — are
    the reproduction targets (see EXPERIMENTS.md).

    [scale] shrinks workload inputs for quick runs; 1.0 is the "large
    input" configuration used for the recorded results. *)

type cfg = {
  n_contexts : int;
  scale : float;
  seed : int;
  dnc_factor : int;  (** DNC budget as a multiple of the fault-free time *)
  jobs : int;
      (** worker domains the drivers fan independent runs across
          ({!Pool.map}); results are reassembled in workload order, so
          any [jobs] produces bit-identical output *)
}

val default_cfg : cfg
(** 24 contexts (the paper's machine), scale 1.0, seed 1, budget 30x,
    sequential ([jobs = 1]). *)

(** {1 Engine front-ends} (shared by the drivers, the CLI and the tests) *)

val run_pthreads :
  cfg -> Workloads.Workload.spec -> grain:Workloads.Workload.grain -> Exec.State.run_result

val run_gprs :
  ?ordering:Gprs.Order.scheme ->
  ?costs:Vm.Costs.t ->
  ?rate:float ->
  ?recovery:Gprs.Engine.recovery ->
  ?max_cycles:int ->
  cfg ->
  Workloads.Workload.spec ->
  grain:Workloads.Workload.grain ->
  Exec.State.run_result
(** Defaults: balance-aware (with the workload's weights applied under
    [Weighted]), full cost model, no faults, selective restart. *)

val run_cpr :
  ?interval:float ->
  ?rate:float ->
  ?max_cycles:int ->
  cfg ->
  Workloads.Workload.spec ->
  grain:Workloads.Workload.grain ->
  Exec.State.run_result
(** Default interval: 1/25 of the workload's fault-free duration. *)

val costs_order_only : Vm.Costs.t
(** Cost-accounting ablation: ROL management and checkpointing charges
    zeroed — isolates the ordering overhead (the figures' "-OR" bars).
    Mechanisms still execute; only their cycle charges change. *)

val costs_order_rol : Vm.Costs.t
(** Checkpointing charges zeroed — ordering + ROL ("-ROL" bars). *)

(** {1 Drivers} *)

val table1 : unit -> string list list
(** Qualitative related-work rows (Table 1). *)

val table2 : cfg -> string list list
(** Program characteristics: measured Pthreads time, sub-thread size and
    count under GPRS (Table 2). *)

val fig8a : cfg -> Report.figure
(** Overhead decomposition at default granularity: G-R-OR, G-B-OR,
    G-B-ROL, P-/-CH, G-B-CH relative to Pthreads. *)

val fig8b : cfg -> Report.figure
(** Same with fine-grained computations. *)

val fig9 : cfg -> Report.figure
(** Fine-grained Pthreads vs fine-grained GPRS (Barnes-Hut,
    Blackscholes, Swaptions, Canneal). *)

val fig10 : cfg -> Report.figure
(** Recovery at per-workload low/high exception rates: P-CPR-L, GPRS-L,
    P-CPR-H, GPRS-H. *)

type fig11_result = {
  contexts : int list;
  rates : float list;  (** the exception-rate ladder (exceptions/sec) *)
  cpr_times : (int * (float * float option) list) list;
      (** per context-count, (rate, relative time or DNC) *)
  gprs_times : (int * (float * float option) list) list;
  tipping : (int * float option * float option) list;
      (** per context-count: highest completing rate for P-CPR and GPRS *)
}

val fig11 : ?rates:float list -> ?contexts:int list -> cfg -> fig11_result
(** The Pbzip2 exception-tolerance sweep; default contexts 1..24. *)

val render_fig11 : Format.formatter -> fig11_result -> unit

(** {1 Ablations} (design-choice studies beyond the paper's figures) *)

val ablation_ordering : cfg -> Report.figure
(** Every ordering scheme — round-robin, balance-aware, weighted, and the
    recorded (nondeterministic) §2.4 alternative — on the pipeline
    workloads, fault-free and under exceptions. *)

val ablation_latency : cfg -> string list list
(** Detection-latency sweep on Pbzip2 under a fixed exception rate:
    longer latencies delay retirement (deeper ROL, larger WAL) and make
    recoveries squash more; rows are (latency, relative time, max ROL
    depth, WAL high water, squashed sub-threads). *)

val ablation_recovery : cfg -> Report.figure
(** Selective vs basic recovery across the suite under exceptions. *)

val tune_weights : cfg -> Workloads.Workload.spec -> (int array * float) list
(** Automated version of the paper's by-trial-and-error weight search:
    runs the weighted schedule under candidate group-weight vectors and
    returns (weights, relative time), best first. *)

val render_weights :
  Format.formatter -> Workloads.Workload.spec -> (int array * float) list -> unit

val ablation_interval : cfg -> string list list
(** CPR checkpoint-interval sweep (§2.3's Pc/Pr trade-off): rows are
    (interval as a fraction of the run, fault-free relative time,
    relative time at ~6 exceptions/run, checkpoints, rollbacks). *)
