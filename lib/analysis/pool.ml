(* Bounded worker pool over OCaml 5 domains. Each simulation run is a
   sealed deterministic single-threaded computation, so fanning the
   per-workload/per-engine runs across domains changes wall-clock only:
   results are reassembled in input order, making `-j N` output
   bit-identical to `-j 1`. *)

let available_jobs () = Domain.recommended_domain_count ()

type 'b outcome = Value of 'b | Raised of exn * Printexc.raw_backtrace

let map ~jobs f items =
  let items = Array.of_list items in
  let n = Array.length items in
  let jobs = Stdlib.min jobs n in
  if jobs <= 1 then Array.to_list (Array.map f items)
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let r =
            try Value (f items.(i))
            with e -> Raised (e, Printexc.get_raw_backtrace ())
          in
          results.(i) <- Some r;
          loop ()
        end
      in
      loop ()
    in
    let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    Array.to_list
      (Array.map
         (function
           | Some (Value v) -> v
           | Some (Raised (e, bt)) -> Printexc.raise_with_backtrace e bt
           | None -> assert false)
         results)
  end
