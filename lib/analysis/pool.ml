(* Bounded worker pool over OCaml 5 domains. Each simulation run is a
   sealed deterministic single-threaded computation, so fanning the
   per-workload/per-engine runs across domains changes wall-clock only:
   results are reassembled in input order, making `-j N` output
   bit-identical to `-j 1`. *)

let available_jobs () = Domain.recommended_domain_count ()

type 'b outcome = Value of 'b | Raised of exn * Printexc.raw_backtrace

let map ~jobs f items =
  let items = Array.of_list items in
  let n = Array.length items in
  let jobs = Stdlib.min jobs n in
  if jobs <= 1 then Array.to_list (Array.map f items)
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let r =
            try Value (f items.(i))
            with e -> Raised (e, Printexc.get_raw_backtrace ())
          in
          results.(i) <- Some r;
          loop ()
        end
      in
      loop ()
    in
    let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    Array.to_list
      (Array.map
         (function
           | Some (Value v) -> v
           | Some (Raised (e, bt)) -> Printexc.raise_with_backtrace e bt
           | None -> assert false)
         results)
  end

(* --- shared long-lived pool ---------------------------------------------- *)

(* [map] spawns domains per call and joins them before returning — right
   for a one-shot experiment sweep, wrong for a daemon that fields
   requests forever: per-call spawn/join costs show up in every
   request's latency, and joined-at-exit discipline has no natural place
   to live. The shared pool keeps up to [jobs] worker domains across
   submissions, spawning them lazily on demand and parking them on a
   condvar between tasks; [shared_quiesce] drains and joins (the
   daemon's idle housekeeping, mirroring [Exec.Par.quiesce] discipline),
   after which the next submission transparently respawns.

   [shared_submit] and [shared_quiesce] may race (the daemon's reader
   threads submit while the housekeeper quiesces, and [stop] may quiesce
   concurrently with the housekeeper), so the quiesce protocol must not
   strand work or deadlock the joiner:
   - workers drain the queue before honoring [sh_quiescing], so a task
     that slips in after the drain check still runs;
   - [shared_submit] never spawns or clears [sh_quiescing] while a
     quiesce holds the domain list — flipping the flag mid-join would
     park a worker forever and deadlock [Domain.join];
   - after the join, the quiescer respawns workers for any tasks that
     arrived while no worker was left alive to drain them;
   - a second concurrent quiesce parks until the first finishes, then
     re-runs the full protocol itself. *)

type shared = {
  sh_mutex : Mutex.t;
  sh_task : Condition.t;  (* workers park here waiting for tasks *)
  sh_drain : Condition.t;  (* waiters park for pending = 0 / quiesce end *)
  sh_jobs : int;
  sh_queue : (unit -> unit) Queue.t;
  mutable sh_running : int;  (* tasks currently executing *)
  mutable sh_idle : int;  (* workers parked in [Condition.wait] *)
  mutable sh_workers : int;
  mutable sh_quiescing : bool;  (* a quiesce owns [sh_doms] and is joining *)
  mutable sh_doms : unit Domain.t list;
}

let shared_create ~jobs =
  {
    sh_mutex = Mutex.create ();
    sh_task = Condition.create ();
    sh_drain = Condition.create ();
    sh_jobs = Stdlib.max 1 jobs;
    sh_queue = Queue.create ();
    sh_running = 0;
    sh_idle = 0;
    sh_workers = 0;
    sh_quiescing = false;
    sh_doms = [];
  }

let shared_worker sh () =
  Mutex.lock sh.sh_mutex;
  let rec loop () =
    while Queue.is_empty sh.sh_queue && not sh.sh_quiescing do
      sh.sh_idle <- sh.sh_idle + 1;
      Condition.wait sh.sh_task sh.sh_mutex;
      sh.sh_idle <- sh.sh_idle - 1
    done;
    if not (Queue.is_empty sh.sh_queue) then begin
      (* Queued work wins over quiescing: a task submitted between the
         quiescer's drain check and our exit must not strand. *)
      let task = Queue.pop sh.sh_queue in
      sh.sh_running <- sh.sh_running + 1;
      Mutex.unlock sh.sh_mutex;
      (* A task that raises must not take its worker down with it;
         submitters that care about failures catch inside the thunk (the
         daemon wraps each request in its own error reply). *)
      (try task () with _ -> ());
      Mutex.lock sh.sh_mutex;
      sh.sh_running <- sh.sh_running - 1;
      if sh.sh_running = 0 && Queue.is_empty sh.sh_queue then
        Condition.broadcast sh.sh_drain;
      loop ()
    end
    else begin
      sh.sh_workers <- sh.sh_workers - 1;
      Mutex.unlock sh.sh_mutex
    end
  in
  loop ()

let shared_submit sh task =
  (* Fault seam: an injected error here models a task that could not be
     queued; callers owning group bookkeeping must catch it. *)
  Faults.Points.strike Faults.Points.Pool_submit;
  Mutex.lock sh.sh_mutex;
  Queue.push task sh.sh_queue;
  if sh.sh_quiescing then
    (* The quiescer owns [sh_doms]; spawning here would leak the domain
       and clearing the flag would deadlock its join. Wake any worker
       not yet exited — it drains the queue before exiting — and if none
       is left, the quiescer respawns for us after the join. *)
    Condition.broadcast sh.sh_task
  else if sh.sh_idle = 0 && sh.sh_workers < sh.sh_jobs then begin
    sh.sh_doms <- Domain.spawn (shared_worker sh) :: sh.sh_doms;
    sh.sh_workers <- sh.sh_workers + 1
  end
  else Condition.signal sh.sh_task;
  Mutex.unlock sh.sh_mutex

let shared_pending sh =
  Mutex.lock sh.sh_mutex;
  let n = Queue.length sh.sh_queue + sh.sh_running in
  Mutex.unlock sh.sh_mutex;
  n

let shared_workers sh =
  Mutex.lock sh.sh_mutex;
  let n = sh.sh_workers in
  Mutex.unlock sh.sh_mutex;
  n

let shared_wait sh =
  Mutex.lock sh.sh_mutex;
  while not (Queue.is_empty sh.sh_queue && sh.sh_running = 0) do
    Condition.wait sh.sh_drain sh.sh_mutex
  done;
  Mutex.unlock sh.sh_mutex

let shared_quiesce sh =
  Mutex.lock sh.sh_mutex;
  while
    sh.sh_quiescing
    || not (Queue.is_empty sh.sh_queue && sh.sh_running = 0)
  do
    Condition.wait sh.sh_drain sh.sh_mutex
  done;
  (* Drained, and no other quiesce in flight: claim the domain list and
     tell workers to exit, atomically with the drain check — no window
     for a submit to slip between them. *)
  sh.sh_quiescing <- true;
  let doms = sh.sh_doms in
  sh.sh_doms <- [];
  Condition.broadcast sh.sh_task;
  Mutex.unlock sh.sh_mutex;
  List.iter Domain.join doms;
  Mutex.lock sh.sh_mutex;
  sh.sh_quiescing <- false;
  (* Tasks submitted while we held the flag and every worker had already
     exited would otherwise strand: respawn for whatever is queued. *)
  let need = Stdlib.min (Queue.length sh.sh_queue) sh.sh_jobs in
  for _ = sh.sh_workers + 1 to need do
    sh.sh_doms <- Domain.spawn (shared_worker sh) :: sh.sh_doms;
    sh.sh_workers <- sh.sh_workers + 1
  done;
  Condition.broadcast sh.sh_drain;
  Mutex.unlock sh.sh_mutex
