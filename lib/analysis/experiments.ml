type cfg = {
  n_contexts : int;
  scale : float;
  seed : int;
  dnc_factor : int;
  jobs : int;  (** worker domains for fanning out independent runs *)
}

let default_cfg =
  { n_contexts = 24; scale = 1.0; seed = 1; dnc_factor = 30; jobs = 1 }

(* ------------------------------------------------------------------ *)
(* Engine front-ends                                                   *)
(* ------------------------------------------------------------------ *)

let build cfg (spec : Workloads.Workload.spec) ~grain =
  spec.Workloads.Workload.build ~n_contexts:cfg.n_contexts ~grain ~scale:cfg.scale

let run_pthreads cfg spec ~grain =
  Exec.Baseline.run
    {
      Exec.Baseline.default_config with
      n_contexts = cfg.n_contexts;
      seed = cfg.seed;
    }
    (build cfg spec ~grain)

let run_gprs ?(ordering = Gprs.Order.Balance_aware) ?(costs = Vm.Costs.default)
    ?(rate = 0.0) ?(recovery = Gprs.Engine.Selective) ?max_cycles cfg spec
    ~grain =
  Gprs.Engine.run
    {
      Gprs.Engine.default_config with
      n_contexts = cfg.n_contexts;
      seed = cfg.seed;
      ordering;
      recovery;
      costs;
      injector = Faults.Injector.config ~seed:cfg.seed rate;
      max_cycles;
    }
    (build cfg spec ~grain)

let baseline_cache : (string, int) Hashtbl.t = Hashtbl.create 32
let baseline_cache_lock = Mutex.create ()

let baseline_cycles cfg spec ~grain =
  let key =
    Printf.sprintf "%s/%d/%f/%d/%s" spec.Workloads.Workload.name cfg.n_contexts cfg.scale
      cfg.seed
      (match grain with Workloads.Workload.Default -> "d" | Workloads.Workload.Fine -> "f")
  in
  let cached =
    Mutex.protect baseline_cache_lock (fun () ->
        Hashtbl.find_opt baseline_cache key)
  in
  match cached with
  | Some c -> c
  | None ->
    let r = run_pthreads cfg spec ~grain:Workloads.Workload.Default in
    Mutex.protect baseline_cache_lock (fun () ->
        Hashtbl.replace baseline_cache key r.Exec.State.sim_cycles);
    r.Exec.State.sim_cycles

let run_cpr ?interval ?(rate = 0.0) ?max_cycles cfg spec ~grain =
  let interval =
    match interval with
    | Some i -> i
    | None ->
      let base = baseline_cycles cfg spec ~grain in
      Sim.Time.to_seconds
        ~cycles_per_second:Vm.Costs.default.Vm.Costs.cycles_per_second
        (Stdlib.max 1 (base / 25))
  in
  Cpr.run
    {
      Cpr.default_config with
      n_contexts = cfg.n_contexts;
      seed = cfg.seed;
      checkpoint_interval = interval;
      injector = Faults.Injector.config ~seed:cfg.seed rate;
      max_cycles;
    }
    (build cfg spec ~grain)

let costs_order_only =
  {
    Vm.Costs.default with
    Vm.Costs.reg_checkpoint = 0;
    cow_first_write = 0;
    rol_insert = 0;
    rol_retire = 0;
    wal_append = 0;
    wal_undo = 0;
    record_per_word = 0;
    restore_per_word = 0;
  }

let costs_order_rol =
  {
    Vm.Costs.default with
    Vm.Costs.reg_checkpoint = 0;
    cow_first_write = 0;
    record_per_word = 0;
    restore_per_word = 0;
  }

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let table1 () =
  List.map
    (fun (r : Model.related_work_row) ->
      [
        r.Model.proposal;
        r.Model.recovery;
        r.Model.design;
        r.Model.chkpt_cost;
        r.Model.rec_cost;
        r.Model.scalable;
        r.Model.deterministic;
        r.Model.det_cost;
      ])
    Model.table1

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)
(* ------------------------------------------------------------------ *)

let sub_size_class mean_cycles =
  if mean_cycles < 3_000.0 then "small"
  else if mean_cycles < 60_000.0 then "medium"
  else "large"

let table2 cfg =
  Pool.map ~jobs:cfg.jobs
    (fun (spec : Workloads.Workload.spec) ->
      let p = run_pthreads cfg spec ~grain:Workloads.Workload.Default in
      let g = run_gprs cfg spec ~grain:Workloads.Workload.Default in
      let subs = Sim.Stats.get g.Exec.State.run_stats "gprs.subthreads" in
      let mean = Sim.Stats.mean g.Exec.State.run_stats "gprs.sub_cycles" in
      [
        spec.Workloads.Workload.name;
        spec.Workloads.Workload.comp_size;
        spec.Workloads.Workload.sync_freq;
        spec.Workloads.Workload.crit_size;
        Printf.sprintf "%.3f" p.Exec.State.sim_seconds;
        sub_size_class mean;
        string_of_int subs;
      ])
    Workloads.Suite.all

(* ------------------------------------------------------------------ *)
(* Fig. 8: overhead decomposition                                      *)
(* ------------------------------------------------------------------ *)

let rel ~base (r : Exec.State.run_result) =
  { Report.label = ""; value = float_of_int r.Exec.State.sim_cycles /. float_of_int base;
    dnc = r.Exec.State.dnc }

let with_label l b = { b with Report.label = l }

let fig8 cfg ~grain ~id ~title =
  let rows =
    Pool.map ~jobs:cfg.jobs
      (fun (spec : Workloads.Workload.spec) ->
        let base = baseline_cycles cfg spec ~grain:Workloads.Workload.Default in
        let budget = Some (cfg.dnc_factor * base) in
        let g_r_or =
          run_gprs ~ordering:Gprs.Order.Round_robin ~costs:costs_order_only
            ?max_cycles:budget cfg spec ~grain
        in
        let g_b_or =
          run_gprs ~costs:costs_order_only ?max_cycles:budget cfg spec ~grain
        in
        let g_b_rol =
          run_gprs ~costs:costs_order_rol ?max_cycles:budget cfg spec ~grain
        in
        let p_ch = run_cpr ?max_cycles:budget cfg spec ~grain in
        let g_b_ch = run_gprs ?max_cycles:budget cfg spec ~grain in
        {
          Report.row_name = spec.Workloads.Workload.name;
          bars =
            [
              with_label "G-R-OR" (rel ~base g_r_or);
              with_label "G-B-OR" (rel ~base g_b_or);
              with_label "G-B-ROL" (rel ~base g_b_rol);
              with_label "P-/-CH" (rel ~base p_ch);
              with_label "G-B-CH" (rel ~base g_b_ch);
            ];
        })
      Workloads.Suite.all
  in
  {
    Report.id;
    title;
    rows;
    notes =
      [
        "times relative to the 24-context Pthreads baseline (1.00)";
        "OR = ordering; ROL = +reorder-list mgmt; CH = +checkpointing";
      ];
  }

let fig8a cfg =
  fig8 cfg ~grain:Workloads.Workload.Default ~id:"Fig. 8a"
    ~title:"GPRS overheads, default computation sizes"

let fig8b cfg =
  fig8 cfg ~grain:Workloads.Workload.Fine ~id:"Fig. 8b"
    ~title:"GPRS overheads, finer-grained computations"

(* ------------------------------------------------------------------ *)
(* Fig. 9: fine-grained Pthreads vs GPRS                               *)
(* ------------------------------------------------------------------ *)

let fig9_programs = [ "barnes-hut"; "blackscholes"; "swaptions"; "canneal" ]

let fig9 cfg =
  let rows =
    Pool.map ~jobs:cfg.jobs
      (fun name ->
        let spec = Workloads.Suite.find name in
        let base = baseline_cycles cfg spec ~grain:Workloads.Workload.Default in
        let budget = Some (cfg.dnc_factor * base) in
        let p_fine =
          Exec.Baseline.run
            {
              Exec.Baseline.default_config with
              n_contexts = cfg.n_contexts;
              seed = cfg.seed;
              max_cycles = budget;
            }
            (build cfg spec ~grain:Workloads.Workload.Fine)
        in
        let g_fine = run_gprs ?max_cycles:budget cfg spec ~grain:Workloads.Workload.Fine in
        {
          Report.row_name = name;
          bars =
            [
              with_label "P-fine" (rel ~base p_fine);
              with_label "G-fine" (rel ~base g_fine);
            ];
        })
      fig9_programs
  in
  {
    Report.id = "Fig. 9";
    title = "Pthreads and GPRS with finer-grained computations";
    rows;
    notes = [ "relative to default-grain Pthreads; DNC = did not complete" ];
  }

(* ------------------------------------------------------------------ *)
(* Fig. 10: recovery at low/high exception rates                       *)
(* ------------------------------------------------------------------ *)

(* Expected exceptions per run (low, high); ratios follow the paper's
   per-program rate pairs, absolute counts rescaled to our run lengths. *)
let fig10_exceptions = function
  | "barnes-hut" | "blackscholes" -> (6.0, 30.0)
  | "canneal" | "histogram" | "dedup" | "reverse-index" -> (8.0, 16.0)
  | "swaptions" -> (2.0, 3.3)
  | "pbzip2" -> (8.0, 16.0)
  | "re" -> (8.0, 16.0)
  | "wordcount" -> (6.0, 18.0)
  | _ -> (6.0, 12.0)

let fig10 cfg =
  let rows =
    Pool.map ~jobs:cfg.jobs
      (fun (spec : Workloads.Workload.spec) ->
        let base = baseline_cycles cfg spec ~grain:Workloads.Workload.Default in
        let budget = Some (cfg.dnc_factor * base) in
        let base_s =
          Sim.Time.to_seconds
            ~cycles_per_second:Vm.Costs.default.Vm.Costs.cycles_per_second base
        in
        let k_low, k_high = fig10_exceptions spec.Workloads.Workload.name in
        let rate_low = k_low /. base_s and rate_high = k_high /. base_s in
        let cpr_l = run_cpr ~rate:rate_low ?max_cycles:budget cfg spec ~grain:Workloads.Workload.Default in
        let gprs_l = run_gprs ~rate:rate_low ?max_cycles:budget cfg spec ~grain:Workloads.Workload.Default in
        let cpr_h = run_cpr ~rate:rate_high ?max_cycles:budget cfg spec ~grain:Workloads.Workload.Default in
        let gprs_h = run_gprs ~rate:rate_high ?max_cycles:budget cfg spec ~grain:Workloads.Workload.Default in
        {
          Report.row_name =
            Printf.sprintf "%s (%.1f/s, %.1f/s)" spec.Workloads.Workload.name rate_low
              rate_high;
          bars =
            [
              with_label "P-CPR-L" (rel ~base cpr_l);
              with_label "GPRS-L" (rel ~base gprs_l);
              with_label "P-CPR-H" (rel ~base cpr_h);
              with_label "GPRS-H" (rel ~base gprs_h);
            ];
        })
      Workloads.Suite.all
  in
  {
    Report.id = "Fig. 10";
    title = "Recovery at low/high exception rates";
    rows;
    notes = [ "row label lists the injected low/high rates (exceptions/sec)" ];
  }

(* ------------------------------------------------------------------ *)
(* Fig. 11: Pbzip2 exception-tolerance sweep                           *)
(* ------------------------------------------------------------------ *)

type fig11_result = {
  contexts : int list;
  rates : float list;
  cpr_times : (int * (float * float option) list) list;
  gprs_times : (int * (float * float option) list) list;
  tipping : (int * float option * float option) list;
}

let fig11 ?rates ?(contexts = [ 1; 2; 4; 8; 16; 24 ]) cfg =
  let spec = Workloads.Suite.find "pbzip2" in
  let series engine_run ctxs =
    Pool.map ~jobs:cfg.jobs
      (fun n ->
        let cfg_n = { cfg with n_contexts = n } in
        let base = baseline_cycles cfg_n spec ~grain:Workloads.Workload.Default in
        let base_s =
          Sim.Time.to_seconds
            ~cycles_per_second:Vm.Costs.default.Vm.Costs.cycles_per_second base
        in
        let rates =
          match rates with
          | Some r -> r
          | None ->
            (* geometric ladder, in units of exceptions per baseline run *)
            List.map (fun k -> k /. base_s) [ 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0 ]
        in
        let budget = Some (cfg.dnc_factor * base) in
        let points =
          List.map
            (fun rate ->
              let r : Exec.State.run_result = engine_run cfg_n ~rate ~budget in
              ( rate,
                if r.Exec.State.dnc then None
                else
                  Some
                    (float_of_int r.Exec.State.sim_cycles /. float_of_int base) ))
            rates
        in
        (n, points))
      ctxs
  in
  let cpr_times =
    series
      (fun cfg_n ~rate ~budget ->
        run_cpr ~rate ?max_cycles:budget cfg_n spec ~grain:Workloads.Workload.Default)
      contexts
  in
  let gprs_times =
    series
      (fun cfg_n ~rate ~budget ->
        run_gprs ~rate ?max_cycles:budget cfg_n spec ~grain:Workloads.Workload.Default)
      contexts
  in
  let tip points =
    List.fold_left
      (fun acc (rate, t) -> match t with Some _ -> Some rate | None -> acc)
      None points
  in
  let tipping =
    List.map
      (fun n ->
        let c = List.assoc n cpr_times and g = List.assoc n gprs_times in
        (n, tip c, tip g))
      contexts
  in
  let rates_used =
    match cpr_times with (_, pts) :: _ -> List.map fst pts | [] -> []
  in
  { contexts; rates = rates_used; cpr_times; gprs_times; tipping }

let render_series ppf ~name series =
  List.iter
    (fun (n, points) ->
      Format.fprintf ppf "%s n=%-2d :" name n;
      List.iter
        (fun (rate, t) ->
          match t with
          | Some v -> Format.fprintf ppf "  %.2f/s=%.2f" rate v
          | None -> Format.fprintf ppf "  %.2f/s=DNC" rate)
        points;
      Format.fprintf ppf "@.")
    series

let render_fig11 ppf r =
  Format.fprintf ppf "Fig. 11 — Pbzip2 exception tolerance, 1..24 contexts@.";
  Format.fprintf ppf "(entries: exception rate = relative execution time)@.";
  render_series ppf ~name:"P-CPR" r.cpr_times;
  render_series ppf ~name:"GPRS " r.gprs_times;
  Format.fprintf ppf "Tipping rates (highest completing rate, exceptions/sec):@.";
  let fmt_tip = function
    | Some rate -> Printf.sprintf "%.2f" rate
    | None -> "<min"
  in
  List.iter
    (fun (n, c, g) ->
      Format.fprintf ppf "  contexts=%-2d  P-CPR=%-8s GPRS=%s@." n (fmt_tip c)
        (fmt_tip g))
    r.tipping

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_ordering cfg =
  let programs = [ "pbzip2"; "dedup"; "re" ] in
  let rows =
    List.concat
    @@ Pool.map ~jobs:cfg.jobs
      (fun name ->
        let spec = Workloads.Suite.find name in
        let base = baseline_cycles cfg spec ~grain:Workloads.Workload.Default in
        let budget = Some (cfg.dnc_factor * base) in
        let base_s =
          Sim.Time.to_seconds
            ~cycles_per_second:Vm.Costs.default.Vm.Costs.cycles_per_second base
        in
        let run ?rate ordering =
          run_gprs ~ordering ?rate ?max_cycles:budget cfg spec
            ~grain:Workloads.Workload.Default
        in
        let bars ?rate () =
          [
            with_label "RR" (rel ~base (run ?rate Gprs.Order.Round_robin));
            with_label "BA" (rel ~base (run ?rate Gprs.Order.Balance_aware));
            with_label "WT" (rel ~base (run ?rate Gprs.Order.Weighted));
            with_label "REC" (rel ~base (run ?rate Gprs.Order.Recorded));
          ]
        in
        [
          { Report.row_name = name ^ " (fault-free)"; bars = bars () };
          {
            Report.row_name = name ^ " (with exceptions)";
            bars = bars ~rate:(6.0 /. base_s) ();
          };
        ])
      programs
  in
  {
    Report.id = "Ablation A";
    title = "Ordering schemes: round-robin / balance-aware / weighted / recorded";
    rows;
    notes =
      [
        "REC = nondeterministic recorded order (the paper's §2.4 alternative)";
        "exception rows inject ~6 exceptions per fault-free run length";
      ];
  }

let ablation_latency cfg =
  let spec = Workloads.Suite.find "pbzip2" in
  let base = baseline_cycles cfg spec ~grain:Workloads.Workload.Default in
  let base_s =
    Sim.Time.to_seconds
      ~cycles_per_second:Vm.Costs.default.Vm.Costs.cycles_per_second base
  in
  let rate = 6.0 /. base_s in
  List.map
    (fun latency ->
      let costs = { Vm.Costs.default with Vm.Costs.detection_latency = latency } in
      let r =
        Gprs.Engine.run
          {
            Gprs.Engine.default_config with
            n_contexts = cfg.n_contexts;
            seed = cfg.seed;
            costs;
            injector =
              Faults.Injector.config ~seed:cfg.seed ~detection_latency:latency rate;
            max_cycles = Some (cfg.dnc_factor * base);
          }
          (build cfg spec ~grain:Workloads.Workload.Default)
      in
      [
        string_of_int latency;
        (if r.Exec.State.dnc then "DNC"
         else
           Printf.sprintf "%.2f"
             (float_of_int r.Exec.State.sim_cycles /. float_of_int base));
        string_of_int (Sim.Stats.get r.Exec.State.run_stats "gprs.rol_depth");
        string_of_int (Sim.Stats.get r.Exec.State.run_stats "wal.high_water");
        string_of_int (Sim.Stats.get r.Exec.State.run_stats "gprs.squashed_subs");
      ])
    [ 1_000; 10_000; 40_000; 100_000; 400_000 ]

let ablation_recovery cfg =
  let rows =
    Pool.map ~jobs:cfg.jobs
      (fun (spec : Workloads.Workload.spec) ->
        let base = baseline_cycles cfg spec ~grain:Workloads.Workload.Default in
        let budget = Some (cfg.dnc_factor * base) in
        let base_s =
          Sim.Time.to_seconds
            ~cycles_per_second:Vm.Costs.default.Vm.Costs.cycles_per_second base
        in
        let rate = 6.0 /. base_s in
        let sel =
          run_gprs ~rate ?max_cycles:budget cfg spec ~grain:Workloads.Workload.Default
        in
        let bas =
          run_gprs ~rate ~recovery:Gprs.Engine.Basic ?max_cycles:budget cfg spec
            ~grain:Workloads.Workload.Default
        in
        {
          Report.row_name = spec.Workloads.Workload.name;
          bars =
            [
              with_label "Selective" (rel ~base sel);
              with_label "Basic" (rel ~base bas);
            ];
        })
      Workloads.Suite.all
  in
  {
    Report.id = "Ablation B";
    title = "Selective restart vs basic recovery under exceptions";
    rows;
    notes = [ "~6 exceptions per fault-free run length" ];
  }

let tune_weights cfg (spec : Workloads.Workload.spec) =
  let base = baseline_cycles cfg spec ~grain:Workloads.Workload.Default in
  let program = build cfg spec ~grain:Workloads.Workload.Default in
  let n_groups = program.Vm.Isa.n_groups in
  let candidates =
    (* uniform plus front-loaded pipelines of varying steepness *)
    [ Array.make n_groups 1 ]
    @ List.filter_map
        (fun profile ->
          if List.length profile >= n_groups then
            Some (Array.of_list (List.filteri (fun i _ -> i < n_groups) profile))
          else None)
        [
          [ 2; 1; 1; 1; 1 ];
          [ 2; 2; 1; 1; 1 ];
          [ 4; 2; 1; 1; 1 ];
          [ 4; 4; 1; 1; 1 ];
          [ 8; 4; 2; 1; 1 ];
          [ 1; 2; 2; 2; 1 ];
          [ 2; 2; 2; 2; 1 ];
        ]
  in
  let timed =
    List.map
      (fun weights ->
        let p = { program with Vm.Isa.group_weights = weights } in
        let r =
          Gprs.Engine.run
            {
              Gprs.Engine.default_config with
              n_contexts = cfg.n_contexts;
              seed = cfg.seed;
              ordering = Gprs.Order.Weighted;
              max_cycles = Some (cfg.dnc_factor * base);
            }
            p
        in
        (weights, float_of_int r.Exec.State.sim_cycles /. float_of_int base))
      candidates
  in
  List.sort (fun (_, a) (_, b) -> compare a b) timed

let render_weights ppf (spec : Workloads.Workload.spec) results =
  Format.fprintf ppf "Weighted-schedule search for %s (relative time, best first):@."
    spec.Workloads.Workload.name;
  List.iter
    (fun (weights, t) ->
      Format.fprintf ppf "  %-16s %.3f@."
        (String.concat ":" (Array.to_list (Array.map string_of_int weights)))
        t)
    results

(* The §2.3 trade-off: shrinking the checkpoint interval cuts the restart
   penalty but inflates the checkpoint penalty. Swept on one workload
   under a fixed exception rate. *)
let ablation_interval cfg =
  let spec = Workloads.Suite.find "re" in
  let base = baseline_cycles cfg spec ~grain:Workloads.Workload.Default in
  let base_s =
    Sim.Time.to_seconds
      ~cycles_per_second:Vm.Costs.default.Vm.Costs.cycles_per_second base
  in
  let rate = 6.0 /. base_s in
  List.map
    (fun divisor ->
      let interval = base_s /. float_of_int divisor in
      let faulty =
        run_cpr ~interval ~rate ~max_cycles:(cfg.dnc_factor * base) cfg spec
          ~grain:Workloads.Workload.Default
      in
      let clean =
        run_cpr ~interval ~max_cycles:(cfg.dnc_factor * base) cfg spec
          ~grain:Workloads.Workload.Default
      in
      let fmt (r : Exec.State.run_result) =
        if r.Exec.State.dnc then "DNC"
        else
          Printf.sprintf "%.2f"
            (float_of_int r.Exec.State.sim_cycles /. float_of_int base)
      in
      [
        Printf.sprintf "1/%d run" divisor;
        fmt clean;
        fmt faulty;
        string_of_int (Sim.Stats.get faulty.Exec.State.run_stats "cpr.checkpoints");
        string_of_int (Sim.Stats.get faulty.Exec.State.run_stats "cpr.rollbacks");
      ])
    [ 2; 5; 10; 25; 50; 100 ]
