(** Bounded domain pool for fanning out independent simulation runs.

    The experiment drivers are embarrassingly parallel: each run is a
    sealed, deterministic, single-threaded simulation. [map] distributes
    the items over at most [jobs] OCaml 5 domains (including the calling
    one) and reassembles results in input order, so parallel output is
    bit-identical to sequential output. *)

val available_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the natural [-j] default. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] is [List.map f items], computed by up to [jobs]
    domains. [jobs <= 1] runs sequentially in the calling domain with no
    domain spawned. [f] must not touch shared mutable state (the drivers'
    baseline cache is internally locked). If any application raises, the
    first (lowest-index) exception is re-raised after all workers
    drain. *)
