(** Bounded domain pool for fanning out independent simulation runs.

    The experiment drivers are embarrassingly parallel: each run is a
    sealed, deterministic, single-threaded simulation. [map] distributes
    the items over at most [jobs] OCaml 5 domains (including the calling
    one) and reassembles results in input order, so parallel output is
    bit-identical to sequential output. *)

val available_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the natural [-j] default. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] is [List.map f items], computed by up to [jobs]
    domains. [jobs <= 1] runs sequentially in the calling domain with no
    domain spawned. [f] must not touch shared mutable state (the drivers'
    baseline cache is internally locked). If any application raises, the
    first (lowest-index) exception is re-raised after all workers
    drain. *)

(** {1 Shared long-lived pool}

    Unlike {!map}, which spawns and joins domains per call, a [shared]
    pool keeps up to [jobs] worker domains alive across submissions —
    the substrate the service daemon multiplexes request execution onto,
    so worker spawn cost is paid per burst, not per request. Workers are
    spawned lazily as tasks arrive and park on a condition variable
    between tasks. *)

type shared

val shared_create : jobs:int -> shared
(** No domains are spawned until the first {!shared_submit}. [jobs] is
    clamped to >= 1. *)

val shared_submit : shared -> (unit -> unit) -> unit
(** Enqueue a task (FIFO) and return immediately; an idle worker picks
    it up, or a new one is spawned while fewer than [jobs] exist. A task
    that raises is dropped silently — submitters that need the error
    must catch it inside the thunk. Admission control (bounding this
    queue) is the caller's job: the daemon sheds before submitting. *)

val shared_pending : shared -> int
(** Tasks queued plus tasks executing right now. *)

val shared_workers : shared -> int
(** Worker domains currently alive (idle or running). *)

val shared_wait : shared -> unit
(** Block until the pool is drained ([shared_pending] = 0). *)

val shared_quiesce : shared -> unit
(** Drain, then join all worker domains — the daemon's idle
    housekeeping, for the same stop-the-world reason as
    {!Exec.Par.quiesce}: a parked domain taxes every single-domain phase
    in the process. The pool remains usable; the next submission
    respawns workers. Safe to call concurrently with {!shared_submit}
    and with other [shared_quiesce] calls: a task submitted mid-quiesce
    is drained by a not-yet-exited worker or served by workers the
    quiescer respawns after the join, never stranded; a concurrent
    quiesce waits for the one in flight before running itself. *)
