(** One scenario request: the parameter space of [gprs_run run].

    {!run} transliterates the CLI's engine dispatch, so a daemon-served
    result is bit-identical — digest, cycles, non-profiling stats — to
    the equivalent one-shot invocation; the service test sweep pins
    that equivalence for every workload × engine × fault leg. *)

type t = {
  id : string;  (** request correlation id, echoed in every reply *)
  workload : string;
  engine : string;  (** "pthreads" | "cpr" | "gprs" *)
  ordering : string;  (** gprs ordering scheme name *)
  contexts : int;
  scale : float;
  grain : string;  (** "default" | "fine" *)
  seed : int;
  rate : float;  (** exceptions per simulated second (cpr/gprs) *)
  interval : float;  (** cpr checkpoint interval in seconds *)
  want_stats : bool;  (** include run stats in the done event *)
}

val of_json : Json.t -> (t, string) result
(** Decode a run request; every field except [workload] has the CLI's
    default. Rejects unknown engines. *)

val to_json : t -> Json.t
(** Encode as a run request (includes ["op":"run"]). *)

val program_key : leg:Leg.t -> t -> string
(** Program-cache key: workload identity + build knobs + the server's
    leg — the inputs of decode, superblock compilation and lint
    admission, and nothing of the run (seed/rate/engine/ordering), so
    one cached program serves every run against it. *)

val coalesce_key : t -> string
(** Full run identity minus [id]: requests with equal keys are the same
    deterministic computation and the admission queue coalesces them. *)

type outcome = {
  digest : string;
  sim_cycles : int;
  sim_seconds : float;
  dnc : bool;
  races : int;  (** sanitizer reports (0 unless the leg arms TSAN) *)
  stats : (string * float) list;  (** empty unless [want_stats] *)
}

val outcome_to_json : outcome -> Json.t

val build_program :
  t -> Workloads.Workload.spec * Vm.Isa.program
(** Decode the workload at the scenario's build knobs (the cache-miss
    path). Raises [Invalid_argument] for an unknown workload. *)

val run :
  spec:Workloads.Workload.spec ->
  program:Vm.Isa.program ->
  ?blocks:Vm.Block.t ->
  t ->
  outcome
(** Execute the scenario. [blocks] is the cached pre-decode (warm path);
    omitted, the engine analyzes the program itself (cold path). *)
