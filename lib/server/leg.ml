(* The experiment "leg": the five runtime knobs that the one-shot CLI
   reads from the environment at process start. A long-lived daemon
   must pin them once, at server start, into an explicit record: the
   knobs are process-global, so if they could drift between requests a
   cached program compiled under one leg could serve a request issued
   under another. The cache key therefore includes [key] of the leg the
   server snapshotted. *)

type t = {
  fuse : bool;  (* GPRS_NO_FUSE unset *)
  compile : bool;  (* GPRS_NO_COMPILE unset *)
  pool : bool;  (* GPRS_NO_POOL unset *)
  tsan : bool;  (* GPRS_TSAN set *)
  par_j : int;  (* GPRS_PAR_J *)
}

let capture () =
  {
    fuse = Vm.Block.fusing ();
    compile = Vm.Block.compiling ();
    pool = Gprs.Subthread.pooling ();
    tsan = Exec.Tsan.enabled ();
    par_j = Exec.Par.jobs ();
  }

(* [pool] governs two switches initialized from the same GPRS_NO_POOL
   variable: sub-thread record pooling and event-queue cell recycling.
   Applying the leg keeps them in lockstep, exactly as env init does. *)
let apply l =
  Vm.Block.set_fusing l.fuse;
  Vm.Block.set_compiling l.compile;
  Gprs.Subthread.set_pooling l.pool;
  Sim.Event_queue.set_recycling l.pool;
  Exec.Tsan.set_enabled l.tsan;
  Exec.Par.set_jobs l.par_j

let key l =
  Printf.sprintf "f%db%dp%dt%dj%d"
    (Bool.to_int l.fuse) (Bool.to_int l.compile) (Bool.to_int l.pool)
    (Bool.to_int l.tsan) l.par_j

let to_json l =
  Json.Obj
    [
      ("fuse", Json.Bool l.fuse);
      ("compile", Json.Bool l.compile);
      ("pool", Json.Bool l.pool);
      ("tsan", Json.Bool l.tsan);
      ("par_j", Json.Int l.par_j);
    ]
