(** Client driver for the daemon protocol.

    A connection demuxes replies by request id (one reader systhread,
    per-id mailboxes), so any number of requests can be in flight; ops
    without an id (ping/stats/cache_clear) are answered in order. Both
    [gprs_run client] and the bench's service section drive the daemon
    exclusively through this module. *)

type t

exception Closed
(** The connection dropped while a caller was waiting. *)

val connect : ?retries:int -> Daemon.addr -> t
(** Connect; on failure retry with bounded exponential backoff (50 ms
    doubling per attempt, capped at 2 s a step). [retries] is the
    number of re-attempts after the first failure, default 3 (≈ 0.35 s
    of patience); raise it when the daemon races a cold start. *)

val close : t -> unit

val send : t -> Json.t -> unit
(** Ship one protocol line. *)

val await : t -> id:string -> Json.t * float
(** Block until the final (done/error) reply for [id]; returns it with
    its host arrival time ([Unix.gettimeofday]). *)

val op : t -> Json.t -> Json.t
(** Send an id-less op and take its reply. Callers must serialize their
    id-less ops per connection (the protocol answers them in order). *)

val ping : t -> unit
val stats : t -> Json.t
val cache_clear : t -> unit

val shutdown : t -> unit
(** Fire-and-forget: the daemon replies and then tears itself down. *)

val fault : t -> (string * Json.t) list -> Json.t
(** The ["fault"] op with the given extra fields (verb/point/fault/
    start/end/delay_us); requires a daemon started with fault injection
    allowed. *)

val run_sync : t -> Scenario.t -> Json.t
(** Submit one scenario and block for its final reply. *)

val timed_run : t -> Scenario.t -> Json.t * float
(** [run_sync] timed from send to final reply, in milliseconds — the
    per-request latency both closed-loop bench legs record. *)

type load = {
  sent : int;
  ok : int;
  failed : int;  (** error replies (shed requests included) *)
  wall_s : float;
  rps : float;  (** completions per second of wall time *)
  mean_ms : float;
  p50_ms : float;
  p99_ms : float;
}

val open_loop : t -> base:Scenario.t -> n:int -> rps:float -> load
(** Open-loop load: [n] arrivals at fixed rate [rps], sent on schedule
    regardless of completions, each with a distinct seed (distinct work
    units, so coalescing cannot shortcut the measurement). Latency is
    final-reply arrival minus {e scheduled} arrival time, so a saturated
    server's queueing delay lands in p99 instead of throttling the
    client. *)
