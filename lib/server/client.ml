(* Client driver for the daemon protocol: a demuxing connection (one
   reader systhread routes replies to per-request mailboxes by id, and
   op replies without an id to a FIFO), plus scripted and open-loop load
   generators built on it. The bench's service section and `gprs_run
   client` both drive the daemon exclusively through this module. *)

type t = {
  fd : Unix.file_descr;
  outc : out_channel;
  wlock : Mutex.t;
  mutex : Mutex.t;
  cond : Condition.t;
  finals : (string, Json.t * float) Hashtbl.t;  (* id -> done/error, arrival *)
  anon : (Json.t * float) Queue.t;  (* op replies without a request id *)
  mutable closed : bool;
}

let sockaddr_of = function
  | Daemon.Tcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)
  | Daemon.Unix_sock path -> Unix.ADDR_UNIX path

let reader c inc () =
  let rec loop () =
    match input_line inc with
    | line -> (
      (match Json.of_string line with
      | Error _ -> ()
      | Ok j -> (
        let event = Result.value ~default:"" (Json.str ~default:"" "event" j) in
        let id = Result.value ~default:"" (Json.str ~default:"" "id" j) in
        let now = Unix.gettimeofday () in
        match event with
        | "queued" | "start" -> () (* progress; the final event settles *)
        | "done" | "error" when id <> "" ->
          Mutex.lock c.mutex;
          Hashtbl.replace c.finals id (j, now);
          Condition.broadcast c.cond;
          Mutex.unlock c.mutex
        | _ ->
          Mutex.lock c.mutex;
          Queue.push (j, now) c.anon;
          Condition.broadcast c.cond;
          Mutex.unlock c.mutex));
      loop ())
    | exception _ ->
      Mutex.lock c.mutex;
      c.closed <- true;
      Condition.broadcast c.cond;
      Mutex.unlock c.mutex
  in
  loop ()

(* The daemon may not be accepting yet (tests, the smoke script and CI
   start it moments before connecting): retry the initial connect with
   bounded exponential backoff — 50 ms doubling per attempt, capped at
   2 s a step — instead of pushing the race to every caller. [retries]
   is the number of re-attempts after the first failure. *)
let connect ?(retries = 3) addr =
  let rec go n delay =
    let fd =
      Unix.socket
        (match addr with Daemon.Tcp _ -> Unix.PF_INET | _ -> Unix.PF_UNIX)
        Unix.SOCK_STREAM 0
    in
    match Unix.connect fd (sockaddr_of addr) with
    | () -> fd
    | exception e ->
      (try Unix.close fd with _ -> ());
      if n <= 0 then raise e
      else begin
        Unix.sleepf delay;
        go (n - 1) (Stdlib.min 2.0 (delay *. 2.))
      end
  in
  let fd = go (Stdlib.max 0 retries) 0.05 in
  let c =
    {
      fd;
      outc = Unix.out_channel_of_descr fd;
      wlock = Mutex.create ();
      mutex = Mutex.create ();
      cond = Condition.create ();
      finals = Hashtbl.create 64;
      anon = Queue.create ();
      closed = false;
    }
  in
  ignore (Thread.create (reader c (Unix.in_channel_of_descr fd)) ());
  c

let close c =
  Mutex.lock c.wlock;
  (try Unix.close c.fd with _ -> ());
  Mutex.unlock c.wlock

let send c j =
  Mutex.lock c.wlock;
  let r =
    try
      output_string c.outc (Json.to_string j);
      output_char c.outc '\n';
      flush c.outc;
      Ok ()
    with e -> Error e
  in
  Mutex.unlock c.wlock;
  match r with Ok () -> () | Error e -> raise e

exception Closed

(* Final reply (done or error) for [id], with its host arrival time. *)
let await c ~id =
  Mutex.lock c.mutex;
  let rec go () =
    match Hashtbl.find_opt c.finals id with
    | Some (j, at) ->
      Hashtbl.remove c.finals id;
      Mutex.unlock c.mutex;
      (j, at)
    | None ->
      if c.closed then begin
        Mutex.unlock c.mutex;
        raise Closed
      end;
      Condition.wait c.cond c.mutex;
      go ()
  in
  go ()

(* Send an id-less op and take the next id-less reply. The protocol
   answers ops in order per connection, so callers that serialize their
   ops (everyone here) get the matching reply. *)
let op c j =
  send c j;
  Mutex.lock c.mutex;
  let rec go () =
    if not (Queue.is_empty c.anon) then begin
      let j, _ = Queue.pop c.anon in
      Mutex.unlock c.mutex;
      j
    end
    else if c.closed then begin
      Mutex.unlock c.mutex;
      raise Closed
    end
    else begin
      Condition.wait c.cond c.mutex;
      go ()
    end
  in
  go ()

let ping c = ignore (op c (Json.Obj [ ("op", Json.Str "ping") ]))
let stats c = op c (Json.Obj [ ("op", Json.Str "stats") ])
let cache_clear c = ignore (op c (Json.Obj [ ("op", Json.Str "cache_clear") ]))
let shutdown c = send c (Json.Obj [ ("op", Json.Str "shutdown") ])

let fault c fields =
  op c (Json.Obj (("op", Json.Str "fault") :: fields))

(* --- scripted (closed-loop) driving ------------------------------------- *)

let run_sync c scn =
  send c (Scenario.to_json scn);
  fst (await c ~id:scn.Scenario.id)

(* One request round-trip, timed from send to final reply. *)
let timed_run c scn =
  let t0 = Unix.gettimeofday () in
  let j = run_sync c scn in
  (j, 1000. *. (Unix.gettimeofday () -. t0))

(* --- open-loop load ----------------------------------------------------- *)

type load = {
  sent : int;
  ok : int;
  failed : int;  (* error replies, shed included *)
  wall_s : float;
  rps : float;  (* completed per second of wall time *)
  mean_ms : float;
  p50_ms : float;
  p99_ms : float;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    sorted.(Stdlib.min (n - 1)
              (int_of_float (Float.ceil (p /. 100. *. float_of_int n)) - 1
               |> Stdlib.max 0))

(* Open-loop: arrivals at t0 + i/rps regardless of completions, the
   standard tail-latency methodology — queueing delay from a saturated
   server lands in the measured latency instead of throttling the
   client. Each request gets a distinct seed so requests are distinct
   work units (no coalescing shortcut). Latency is final-reply arrival
   minus *scheduled* send time, charging any sender lag to the server's
   tail like a real arrival process would. *)
let open_loop c ~base ~n ~rps =
  let t0 = Unix.gettimeofday () +. 0.01 in
  let sched = Array.init n (fun i -> t0 +. (float_of_int i /. rps)) in
  let sender () =
    for i = 0 to n - 1 do
      let now = Unix.gettimeofday () in
      if sched.(i) > now then Unix.sleepf (sched.(i) -. now);
      let scn =
        {
          base with
          Scenario.id = Printf.sprintf "ol%d" i;
          seed = base.Scenario.seed + i;
        }
      in
      send c (Scenario.to_json scn)
    done
  in
  let th = Thread.create sender () in
  let lat = Array.make n 0. in
  let ok = ref 0 and failed = ref 0 in
  for i = 0 to n - 1 do
    let j, at = await c ~id:(Printf.sprintf "ol%d" i) in
    lat.(i) <- 1000. *. (at -. sched.(i));
    match Json.str ~default:"" "event" j with
    | Ok "done" -> incr ok
    | _ -> incr failed
  done;
  Thread.join th;
  let wall = Unix.gettimeofday () -. t0 in
  Array.sort compare lat;
  let mean = Array.fold_left ( +. ) 0. lat /. float_of_int (Stdlib.max 1 n) in
  {
    sent = n;
    ok = !ok;
    failed = !failed;
    wall_s = wall;
    rps = (if wall > 0. then float_of_int !ok /. wall else 0.);
    mean_ms = mean;
    p50_ms = percentile lat 50.;
    p99_ms = percentile lat 99.;
  }
