(** The persistent simulation daemon (GPRS-as-a-service).

    One process holds, across requests: the {!Cache} of decoded +
    superblock-compiled + lint-admitted programs, a shared long-lived
    {!Analysis.Pool} that the bounded admission queue multiplexes run
    execution onto, and the {!Leg} snapshot pinning the runtime knobs
    for the server's lifetime. Identical queued scenarios coalesce into
    one execution fanned out to every requester; load beyond the
    admission bound is shed with a 429-style error instead of queueing
    without limit.

    Protocol: newline-delimited JSON. Requests are objects with an
    ["op"] field — ["run"] (a {!Scenario}, replied to with streamed
    ["queued"]/["start"] progress events and a final ["done"] carrying
    digest/cycles/stats, or ["error"] with a code), ["ping"],
    ["stats"], ["cache_clear"], ["sleep"] (occupies a pool worker; test
    and admission-probe helper), ["fault"] (arm/reset/inspect named
    {!Faults.Points} fault points; gated behind
    [config.allow_fault]), ["shutdown"]. *)

type addr = Tcp of int | Unix_sock of string
(** TCP binds loopback only; [Tcp 0] picks an ephemeral port (see
    {!port}). *)

type config = {
  addr : addr;
  jobs : int;  (** pool worker domains executing requests *)
  depth : int;  (** admission bound: queued-or-running work units *)
  cache_capacity : int;  (** program-cache entries (LRU past it) *)
  idle_quiesce_ms : int;
      (** join pool + speculative-window domains after this much idle
          time (0 disables both idle watchdogs) *)
  allow_fault : bool;
      (** serve the ["fault"] verb ([serve --allow-fault-injection]);
          off by default — an armed point perturbs every request in the
          process *)
}

val default_config : config
(** Ephemeral loopback TCP, 1 job, depth 64, 32 cache entries, 200 ms
    idle quiesce, fault injection disabled. *)

type t

val start : config -> t
(** Capture and {!Leg.apply} the leg, bind, and return immediately; the
    listener, connection readers and idle housekeeping run on
    background systhreads, request execution on pool domains. *)

val stop : t -> unit
(** Graceful stop: refuse new work, let in-flight requests finish and
    reply, join pool and speculative-window domains, close connections.
    Idempotent. *)

val wait : t -> unit
(** Block until {!stop} is initiated (the [serve] subcommand's body). *)

val bound_addr : t -> addr
val port : t -> int
(** Real bound port ([Tcp 0] resolved); 0 for Unix sockets. *)

val stats_json : t -> Json.t
(** The ["stats"] op's reply (also handy in-process for tests). *)
