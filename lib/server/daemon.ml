(* The persistent simulation daemon. One process holds, across requests:
   the program cache (decode + superblock compilation + lint admission
   paid once per key), a shared long-lived Analysis.Pool the admission
   queue multiplexes runs onto, and the leg snapshot that pins the
   runtime knobs for the server's lifetime.

   Threading model: the listener and each connection reader are
   systhreads (they spend their lives blocked in accept/read and take no
   part in stop-the-world collections); simulation runs execute on the
   shared pool's domains. A housekeeping systhread quiesces the pool
   after an idle period, and Exec.Par's own idle watchdog does the same
   for speculative-window workers — so a warm-but-idle daemon holds no
   parked domains and pays no STW tax when the next burst arrives. *)

type addr = Tcp of int | Unix_sock of string

type config = {
  addr : addr;
  jobs : int;  (* pool worker domains for concurrent requests *)
  depth : int;  (* admission bound: queued-or-running groups *)
  cache_capacity : int;
  idle_quiesce_ms : int;  (* 0 disables both idle watchdogs *)
  allow_fault : bool;  (* expose the fault-injection verb *)
}

let default_config =
  {
    addr = Tcp 0;
    jobs = 1;
    depth = 64;
    cache_capacity = 32;
    idle_quiesce_ms = 200;
    allow_fault = false;
  }

(* --- connections -------------------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  inc : in_channel;
  outc : out_channel;
  wlock : Mutex.t;  (* pool workers and the reader interleave replies *)
  mutable alive : bool;
}

let send conn j =
  Mutex.lock conn.wlock;
  (try
     if conn.alive then begin
       output_string conn.outc (Json.to_string j);
       output_char conn.outc '\n';
       flush conn.outc
     end
   with _ -> conn.alive <- false);
  Mutex.unlock conn.wlock

let close_conn conn =
  Mutex.lock conn.wlock;
  if conn.alive then begin
    conn.alive <- false;
    try Unix.close conn.fd with _ -> ()
  end;
  Mutex.unlock conn.wlock

(* --- daemon state ------------------------------------------------------- *)

type waiter = { w_conn : conn; w_id : string }

type group = {
  g_scn : Scenario.t;
  mutable g_waiters : waiter list;  (* newest first *)
}

type t = {
  cfg : config;
  leg : Leg.t;
  cache : Cache.t;
  pool : Analysis.Pool.shared;
  listener : Unix.file_descr;
  bound : addr;  (* with the real port for Tcp 0 *)
  mutex : Mutex.t;
  stopped : Condition.t;
  groups : (string, group) Hashtbl.t;  (* coalesce_key -> in-flight group *)
  mutable conns : conn list;
  mutable inflight : int;  (* accepted-not-done work units *)
  mutable stopping : bool;
  mutable last_done : float;
  (* counters, under [mutex] *)
  mutable n_requests : int;
  mutable n_served : int;  (* groups executed *)
  mutable n_coalesced : int;  (* requests folded into an existing group *)
  mutable n_shed : int;
}

let listen_on = function
  | Tcp port ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen fd 64;
    let bound =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> Tcp p
      | _ -> Tcp port
    in
    (fd, bound)
  | Unix_sock path ->
    (* Only ever remove a *stale socket* at [path]: a regular file is
       someone else's data, and a socket that still accepts connections
       is a live daemon — unlinking either would be destructive. *)
    (match Unix.stat path with
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
    | { Unix.st_kind = Unix.S_SOCK; _ } ->
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let live =
        match Unix.connect probe (Unix.ADDR_UNIX path) with
        | () -> true
        | exception _ -> false
      in
      (try Unix.close probe with _ -> ());
      if live then
        failwith
          (Printf.sprintf "%s: a daemon is already listening here" path)
      else ( try Unix.unlink path with _ -> ())
    | _ ->
      failwith
        (Printf.sprintf "%s exists and is not a socket; refusing to replace it"
           path));
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    (fd, Unix_sock path)

let bound_addr t = t.bound

let port t = match t.bound with Tcp p -> p | Unix_sock _ -> 0

(* --- request handling --------------------------------------------------- *)

let err_reply ~id code msg =
  Json.Obj
    [
      ("id", Json.Str id);
      ("event", Json.Str "error");
      ("code", Json.Int code);
      ("error", Json.Str msg);
    ]

let build_entry scn () =
  let spec, program = Scenario.build_program scn in
  let blocks = Vm.Block.analyze program in
  (* Admission validation: the static lint pass runs once per cached
     program, so its (deterministic) verdict is part of the entry, and
     warm requests skip it entirely. Error-severity findings refuse
     execution, the CLI's --strict-lint stance. *)
  let diags = Lint.Check.program program in
  {
    Cache.e_spec = spec;
    e_program = program;
    e_blocks = blocks;
    e_lint_errors = List.length (Lint.Check.errors diags);
  }

let group_finished t key reply =
  Mutex.lock t.mutex;
  let waiters =
    match Hashtbl.find_opt t.groups key with
    | Some g ->
      Hashtbl.remove t.groups key;
      g.g_waiters
    | None -> []
  in
  t.inflight <- t.inflight - 1;
  t.n_served <- t.n_served + 1;
  t.last_done <- Unix.gettimeofday ();
  Mutex.unlock t.mutex;
  List.iter (fun w -> send w.w_conn (reply ~id:w.w_id)) (List.rev waiters)

let exec_group t key (g : group) () =
  let scn = g.g_scn in
  match
    Cache.find t.cache ~key:(Scenario.program_key ~leg:t.leg scn)
      ~build:(build_entry scn)
  with
  | exception Invalid_argument msg ->
    group_finished t key (fun ~id -> err_reply ~id 400 msg)
  | exception ex ->
    group_finished t key (fun ~id -> err_reply ~id 500 (Printexc.to_string ex))
  | entry, cached ->
    (* progress event to everyone attached so far; late coalescers get
       only the final event *)
    Mutex.lock t.mutex;
    let attached =
      match Hashtbl.find_opt t.groups key with
      | Some g -> List.rev g.g_waiters
      | None -> []
    in
    Mutex.unlock t.mutex;
    List.iter
      (fun w ->
        send w.w_conn
          (Json.Obj
             [
               ("id", Json.Str w.w_id);
               ("event", Json.Str "start");
               ("cached", Json.Bool cached);
             ]))
      attached;
    if entry.Cache.e_lint_errors > 0 then
      group_finished t key (fun ~id ->
          err_reply ~id 422
            (Printf.sprintf
               "lint found %d error-severity finding(s); refusing to run"
               entry.Cache.e_lint_errors))
    else begin
      match
        Scenario.run ~spec:entry.Cache.e_spec ~program:entry.Cache.e_program
          ~blocks:entry.Cache.e_blocks scn
      with
      | outcome ->
        group_finished t key (fun ~id ->
            match Scenario.outcome_to_json outcome with
            | Json.Obj fields ->
              Json.Obj
                (("id", Json.Str id) :: ("event", Json.Str "done")
                :: ("cached", Json.Bool cached) :: fields)
            | j -> j)
      | exception ex ->
        group_finished t key (fun ~id ->
            err_reply ~id 500 (Printexc.to_string ex))
    end

let handle_run t conn j =
  match Scenario.of_json j with
  | Error msg ->
    let id = Result.value ~default:"" (Json.str ~default:"" "id" j) in
    send conn (err_reply ~id 400 msg)
  | Ok scn -> (
    let key = Scenario.coalesce_key scn in
    let w = { w_conn = conn; w_id = scn.Scenario.id } in
    Mutex.lock t.mutex;
    t.n_requests <- t.n_requests + 1;
    if t.stopping then begin
      Mutex.unlock t.mutex;
      send conn (err_reply ~id:scn.Scenario.id 503 "daemon shutting down")
    end
    else
      match Hashtbl.find_opt t.groups key with
      | Some g ->
        (* identical scenario already queued or running: one execution,
           fanned out to every requester. The 'queued' ack goes out
           while [t.mutex] is still held: [group_finished] collects
           waiters under the same mutex, so its 'done' cannot overtake
           this ack on the wire (events for one id must stay ordered). *)
        g.g_waiters <- w :: g.g_waiters;
        t.n_coalesced <- t.n_coalesced + 1;
        send conn
          (Json.Obj
             [
               ("id", Json.Str scn.Scenario.id);
               ("event", Json.Str "queued");
               ("coalesced", Json.Bool true);
             ]);
        Mutex.unlock t.mutex
      | None ->
        (* Fault seam: an injected error at admission sheds exactly like
           a full queue (same 429 contract the client already handles). *)
        let inj_shed =
          match Faults.Points.sample Faults.Points.Admission_enqueue with
          | exception Faults.Points.Fault_error _ -> true
          | Some _ | None -> false
        in
        if inj_shed || t.inflight >= t.cfg.depth then begin
          (* bounded admission: shed rather than queue without limit *)
          t.n_shed <- t.n_shed + 1;
          Mutex.unlock t.mutex;
          send conn
            (err_reply ~id:scn.Scenario.id 429
               (if inj_shed then "admission shed (injected fault)"
                else "admission queue full"))
        end
        else begin
          let g = { g_scn = scn; g_waiters = [ w ] } in
          Hashtbl.replace t.groups key g;
          t.inflight <- t.inflight + 1;
          Mutex.unlock t.mutex;
          send conn
            (Json.Obj
               [
                 ("id", Json.Str scn.Scenario.id);
                 ("event", Json.Str "queued");
                 ("coalesced", Json.Bool false);
               ]);
          match Analysis.Pool.shared_submit t.pool (exec_group t key g) with
          | () -> ()
          | exception Faults.Points.Fault_error msg ->
            (* the group was registered above; retire it or the slot
               leaks and its waiters hang *)
            group_finished t key (fun ~id ->
                err_reply ~id 500 ("pool submit failed: " ^ msg))
        end)

let handle_sleep t conn j =
  let id = Result.value ~default:"" (Json.str ~default:"" "id" j) in
  let ms = Result.value ~default:100 (Json.int ~default:100 "ms" j) in
  Mutex.lock t.mutex;
  if t.inflight >= t.cfg.depth then begin
    t.n_shed <- t.n_shed + 1;
    Mutex.unlock t.mutex;
    send conn (err_reply ~id 429 "admission queue full")
  end
  else begin
    t.inflight <- t.inflight + 1;
    Mutex.unlock t.mutex;
    send conn
      (Json.Obj
         [ ("id", Json.Str id); ("event", Json.Str "queued");
           ("coalesced", Json.Bool false) ]);
    match
      Analysis.Pool.shared_submit t.pool (fun () ->
          Unix.sleepf (float_of_int ms /. 1000.);
          Mutex.lock t.mutex;
          t.inflight <- t.inflight - 1;
          t.n_served <- t.n_served + 1;
          t.last_done <- Unix.gettimeofday ();
          Mutex.unlock t.mutex;
          send conn
            (Json.Obj [ ("id", Json.Str id); ("event", Json.Str "done") ]))
    with
    | () -> ()
    | exception Faults.Points.Fault_error msg ->
      Mutex.lock t.mutex;
      t.inflight <- t.inflight - 1;
      t.last_done <- Unix.gettimeofday ();
      Mutex.unlock t.mutex;
      send conn (err_reply ~id 500 ("pool submit failed: " ^ msg))
  end

let stats_json t =
  Mutex.lock t.mutex;
  let inflight = t.inflight
  and requests = t.n_requests
  and served = t.n_served
  and coalesced = t.n_coalesced
  and shed = t.n_shed in
  Mutex.unlock t.mutex;
  let c = Cache.stats t.cache in
  Json.Obj
    [
      ("event", Json.Str "stats");
      ("requests", Json.Int requests);
      ("served", Json.Int served);
      ("coalesced", Json.Int coalesced);
      ("shed", Json.Int shed);
      ("inflight", Json.Int inflight);
      ( "cache",
        Json.Obj
          [
            ("length", Json.Int c.Cache.length);
            ("capacity", Json.Int c.Cache.capacity);
            ("hits", Json.Int c.Cache.hits);
            ("misses", Json.Int c.Cache.misses);
            ("evictions", Json.Int c.Cache.evictions);
          ] );
      ("fault_points", Json.Int (Faults.Points.armed_count ()));
      ("pool_workers", Json.Int (Analysis.Pool.shared_workers t.pool));
      ("pool_pending", Json.Int (Analysis.Pool.shared_pending t.pool));
      ("par_workers", Json.Int (Exec.Par.workers_live ()));
      ("analyses", Json.Int (Vm.Block.analyses ()));
      ("jobs", Json.Int t.cfg.jobs);
      ("depth", Json.Int t.cfg.depth);
      ("leg", Leg.to_json t.leg);
    ]

(* --- fault-injection verb ----------------------------------------------- *)

(* Arming/status for Faults.Points over the wire, so a client can drive
   fault scenarios against a live daemon. Gated behind
   [serve --allow-fault-injection]: arming a point perturbs every
   request in the process, which no multi-tenant daemon should allow by
   accident. *)

let fault_points_json () =
  Json.List
    (List.map
       (fun (st : Faults.Points.status) ->
         Json.Obj
           [
             ("point", Json.Str (Faults.Points.to_name st.Faults.Points.s_point));
             ( "action",
               match st.Faults.Points.s_action with
               | Some a -> Json.Str (Faults.Points.action_name a)
               | None -> Json.Null );
             ("start", Json.Int st.Faults.Points.s_start);
             ( "end",
               if st.Faults.Points.s_end = max_int then Json.Null
               else Json.Int st.Faults.Points.s_end );
             ("delay_us", Json.Int st.Faults.Points.s_delay_us);
             ("hits", Json.Int st.Faults.Points.s_hits);
             ("fires", Json.Int st.Faults.Points.s_fires);
           ])
       (Faults.Points.status_all ()))

let fault_reply ~id =
  Json.Obj
    [
      ("id", Json.Str id);
      ("event", Json.Str "fault");
      ("points", fault_points_json ());
    ]

let handle_fault t conn j =
  let id = Result.value ~default:"" (Json.str ~default:"" "id" j) in
  if not t.cfg.allow_fault then
    send conn
      (err_reply ~id 403
         "fault injection disabled (start the daemon with \
          --allow-fault-injection)")
  else
    let point () =
      match Json.str "point" j with
      | Error msg -> Error msg
      | Ok name -> (
        match Faults.Points.of_name name with
        | Some p -> Ok p
        | None -> Error (Printf.sprintf "unknown fault point %S" name))
    in
    match Result.value ~default:"" (Json.str ~default:"" "verb" j) with
    | "status" -> send conn (fault_reply ~id)
    | "reset_all" ->
      Faults.Points.reset_all ();
      send conn (fault_reply ~id)
    | "reset" | "disarm" -> (
      match point () with
      | Error msg -> send conn (err_reply ~id 400 msg)
      | Ok p ->
        Faults.Points.reset p;
        send conn (fault_reply ~id))
    | "arm" -> (
      match (point (), Json.str "fault" j) with
      | Error msg, _ | _, Error msg -> send conn (err_reply ~id 400 msg)
      | Ok p, Ok aname -> (
        match Faults.Points.action_of_name aname with
        | None ->
          send conn
            (err_reply ~id 400 (Printf.sprintf "unknown action %S" aname))
        | Some a -> (
          let get k d = Result.value ~default:d (Json.int ~default:d k j) in
          let start_hit = get "start" 1 in
          let end_hit =
            match Json.member "end" j with
            | Some (Json.Int e) -> e
            | _ -> max_int
          in
          let delay_us = get "delay_us" 50 in
          match Faults.Points.arm ~start_hit ~end_hit ~delay_us p a with
          | Ok () -> send conn (fault_reply ~id)
          | Error msg -> send conn (err_reply ~id 400 msg))))
    | v ->
      send conn
        (err_reply ~id 400
           (Printf.sprintf
              "unknown fault verb %S (arm|disarm|reset|reset_all|status)" v))

(* forward ref: [stop] is defined after the reader that may trigger it *)
let stop_ref : (t -> unit) ref = ref (fun _ -> ())

let handle_line t conn line =
  match Json.of_string line with
  | Error msg -> send conn (err_reply ~id:"" 400 ("bad json: " ^ msg))
  | Ok j -> (
    match Result.value ~default:"" (Json.str ~default:"" "op" j) with
    | "run" -> handle_run t conn j
    | "ping" -> send conn (Json.Obj [ ("event", Json.Str "pong") ])
    | "stats" -> send conn (stats_json t)
    | "cache_clear" ->
      Cache.clear t.cache;
      send conn (Json.Obj [ ("event", Json.Str "cache_cleared") ])
    | "sleep" -> handle_sleep t conn j
    | "fault" -> handle_fault t conn j
    | "shutdown" ->
      send conn (Json.Obj [ ("event", Json.Str "shutting_down") ]);
      ignore (Thread.create (fun () -> !stop_ref t) ())
    | op -> send conn (err_reply ~id:"" 400 (Printf.sprintf "unknown op %S" op))
    )

let reader t conn () =
  let rec loop () =
    match input_line conn.inc with
    | line ->
      if String.trim line <> "" then handle_line t conn line;
      loop ()
    | exception _ -> ()
  in
  loop ();
  close_conn conn;
  Mutex.lock t.mutex;
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  Mutex.unlock t.mutex

let acceptor t () =
  let rec loop () =
    match Unix.accept t.listener with
    | fd, _ ->
      let conn =
        {
          fd;
          inc = Unix.in_channel_of_descr fd;
          outc = Unix.out_channel_of_descr fd;
          wlock = Mutex.create ();
          alive = true;
        }
      in
      Mutex.lock t.mutex;
      t.conns <- conn :: t.conns;
      Mutex.unlock t.mutex;
      ignore (Thread.create (reader t conn) ());
      loop ()
    | exception _ -> () (* listener closed: shutting down *)
  in
  loop ()

(* Idle housekeeping: once the daemon has been quiet for the configured
   window, drain-join the shared pool's domains (Exec.Par's own watchdog
   handles the speculative-window workers). The next burst respawns
   both transparently. *)
let housekeeper t () =
  let period = float_of_int (Stdlib.max 20 t.cfg.idle_quiesce_ms) /. 4000. in
  let rec loop () =
    Thread.delay period;
    let stop_now =
      Mutex.lock t.mutex;
      let s = t.stopping in
      let idle =
        t.inflight = 0
        && (Unix.gettimeofday () -. t.last_done) *. 1000.
           >= float_of_int t.cfg.idle_quiesce_ms
      in
      Mutex.unlock t.mutex;
      if (not s) && idle && Analysis.Pool.shared_workers t.pool > 0 then
        Analysis.Pool.shared_quiesce t.pool;
      s
    in
    if not stop_now then loop ()
  in
  loop ()

let start cfg =
  let leg = Leg.capture () in
  Leg.apply leg;
  if cfg.idle_quiesce_ms > 0 then
    Exec.Par.set_idle_timeout_ms cfg.idle_quiesce_ms;
  let listener, bound = listen_on cfg.addr in
  let t =
    {
      cfg;
      leg;
      cache = Cache.create ~capacity:cfg.cache_capacity;
      pool = Analysis.Pool.shared_create ~jobs:cfg.jobs;
      listener;
      bound;
      mutex = Mutex.create ();
      stopped = Condition.create ();
      groups = Hashtbl.create 32;
      conns = [];
      inflight = 0;
      stopping = false;
      last_done = Unix.gettimeofday ();
      n_requests = 0;
      n_served = 0;
      n_coalesced = 0;
      n_shed = 0;
    }
  in
  ignore (Thread.create (acceptor t) ());
  if cfg.idle_quiesce_ms > 0 then ignore (Thread.create (housekeeper t) ());
  t

let stop t =
  let already =
    Mutex.lock t.mutex;
    let s = t.stopping in
    t.stopping <- true;
    Mutex.unlock t.mutex;
    s
  in
  if not already then begin
    (try Unix.close t.listener with _ -> ());
    (match t.bound with
    | Unix_sock path -> ( try Unix.unlink path with _ -> ())
    | Tcp _ -> ());
    (* let in-flight work finish and reply, then join the domains *)
    Analysis.Pool.shared_wait t.pool;
    Analysis.Pool.shared_quiesce t.pool;
    Exec.Par.quiesce ();
    Mutex.lock t.mutex;
    let conns = t.conns in
    t.conns <- [];
    Mutex.unlock t.mutex;
    List.iter close_conn conns;
    Mutex.lock t.mutex;
    Condition.broadcast t.stopped;
    Mutex.unlock t.mutex
  end

let () = stop_ref := stop

let wait t =
  Mutex.lock t.mutex;
  while not t.stopping do
    Condition.wait t.stopped t.mutex
  done;
  Mutex.unlock t.mutex
