(** LRU program cache with in-flight build deduplication.

    An entry bundles everything the cold path computes once per
    (workload, build knobs, leg): the decoded program, its
    fused/compiled {!Vm.Block.t} superblocks, and the lint admission
    verdict. Sharing entries across concurrent runs is sound because
    programs and analyzed blocks are immutable after construction and
    every run copies its inputs into private machine state — see
    DESIGN.md §7 for the determinism argument. *)

type entry = {
  e_spec : Workloads.Workload.spec;
  e_program : Vm.Isa.program;
  e_blocks : Vm.Block.t;
  e_lint_errors : int;
      (** error-severity GPRS-lint findings; a positive count makes the
          daemon refuse runs against this program (the CLI's
          [--strict-lint] behaviour, applied once at admission) *)
}

type t

val create : capacity:int -> t
(** [capacity] (clamped to >= 1) bounds settled entries; the
    least-recently-used entry is evicted past it. *)

val find : t -> key:string -> build:(unit -> entry) -> entry * bool
(** Hit: bump recency, return [(entry, true)]. Miss: run [build]
    (outside the lock), install, evict LRU past capacity, return
    [(entry, false)]. Concurrent finders of a key being built park until
    the builder installs (and then report a hit), so a burst of
    identical cold requests decodes once. If [build] raises, the slot is
    released and the exception propagates to the one builder. *)

val clear : t -> unit
(** Drop all settled entries (in-flight builds install on completion as
    if they raced the clear). The cold-cache bench leg calls this
    between requests. *)

type stats = {
  length : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
}

val stats : t -> stats
