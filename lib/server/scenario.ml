(* A scenario request: one (workload, engine, ordering, fault schedule,
   seed, knobs) point, exactly the parameter space of `gprs_run run`.
   [run] mirrors the CLI's engine dispatch line for line so a daemon
   result is bit-identical to the one-shot invocation — that equivalence
   is what the service test sweep pins. *)

type t = {
  id : string;  (* request correlation id, echoed in every reply *)
  workload : string;
  engine : string;  (* "pthreads" | "cpr" | "gprs" *)
  ordering : string;  (* gprs only *)
  contexts : int;
  scale : float;
  grain : string;  (* "default" | "fine" *)
  seed : int;
  rate : float;  (* exceptions per simulated second; cpr/gprs only *)
  interval : float;  (* cpr checkpoint interval, seconds *)
  want_stats : bool;  (* include run stats in the done event *)
}

let of_json j =
  let ( let* ) = Result.bind in
  let* id = Json.str ~default:"" "id" j in
  let* workload = Json.str "workload" j in
  let* engine = Json.str ~default:"gprs" "engine" j in
  let* ordering = Json.str ~default:"balance-aware" "ordering" j in
  let* contexts = Json.int ~default:24 "contexts" j in
  let* scale = Json.float ~default:1.0 "scale" j in
  let* grain = Json.str ~default:"default" "grain" j in
  let* seed = Json.int ~default:1 "seed" j in
  let* rate = Json.float ~default:0.0 "rate" j in
  let* interval = Json.float ~default:0.05 "interval" j in
  let* want_stats = Json.bool ~default:false "stats" j in
  match engine with
  | "pthreads" | "cpr" | "gprs" ->
    Ok
      {
        id;
        workload;
        engine;
        ordering;
        contexts;
        scale;
        grain;
        seed;
        rate;
        interval;
        want_stats;
      }
  | other -> Error (Printf.sprintf "unknown engine %S" other)

let to_json s =
  Json.Obj
    [
      ("op", Json.Str "run");
      ("id", Json.Str s.id);
      ("workload", Json.Str s.workload);
      ("engine", Json.Str s.engine);
      ("ordering", Json.Str s.ordering);
      ("contexts", Json.Int s.contexts);
      ("scale", Json.Float s.scale);
      ("grain", Json.Str s.grain);
      ("seed", Json.Int s.seed);
      ("rate", Json.Float s.rate);
      ("interval", Json.Float s.interval);
      ("stats", Json.Bool s.want_stats);
    ]

(* Program-cache key: exactly the inputs of decode + superblock
   compilation + lint admission — workload identity and build knobs plus
   the server's leg — and nothing of the run (seed, rate, ordering,
   engine), so one cached program serves every run against it. *)
let program_key ~leg s =
  Printf.sprintf "%s/n%d/s%.17g/%s/%s" s.workload s.contexts s.scale s.grain
    (Leg.key leg)

(* Coalescing key: the full run identity minus the correlation id. Two
   requests with equal keys are the same deterministic computation, so
   the admission queue runs one and fans the result out. *)
let coalesce_key s =
  Printf.sprintf "%s/%s/%s/n%d/s%.17g/%s/seed%d/r%.17g/i%.17g/st%d"
    s.workload s.engine s.ordering s.contexts s.scale s.grain s.seed s.rate
    s.interval
    (Bool.to_int s.want_stats)

type outcome = {
  digest : string;
  sim_cycles : int;
  sim_seconds : float;
  dnc : bool;
  races : int;
  stats : (string * float) list;  (* empty unless [want_stats] *)
}

let outcome_to_json o =
  Json.Obj
    [
      ("digest", Json.Str o.digest);
      ("sim_cycles", Json.Int o.sim_cycles);
      ("sim_seconds", Json.Float o.sim_seconds);
      ("dnc", Json.Bool o.dnc);
      ("races", Json.Int o.races);
      ("stats", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) o.stats));
    ]

let build_program s =
  let spec = Workloads.Suite.find s.workload in
  let grain =
    match s.grain with
    | "fine" -> Workloads.Workload.Fine
    | _ -> Workloads.Workload.Default
  in
  ( spec,
    spec.Workloads.Workload.build ~n_contexts:s.contexts ~grain ~scale:s.scale
  )

(* Engine dispatch, a transliteration of gprs_run's: the pthreads
   baseline takes no injector (rate is ignored there, as in the CLI),
   cpr takes the checkpoint interval, gprs the ordering scheme; both
   fault-injecting engines derive the injector stream from the scenario
   seed. GPRS's own lint hook stays off — admission linting happened
   once at cache fill. *)
let run ~spec ~program ?blocks s =
  let result =
    match s.engine with
    | "pthreads" ->
      Exec.Baseline.run ?blocks
        { Exec.Baseline.default_config with n_contexts = s.contexts;
          seed = s.seed }
        program
    | "cpr" ->
      Cpr.run ?blocks
        {
          Cpr.default_config with
          n_contexts = s.contexts;
          seed = s.seed;
          checkpoint_interval = s.interval;
          injector = Faults.Injector.config ~seed:s.seed s.rate;
        }
        program
    | "gprs" ->
      let ordering =
        match s.ordering with
        | "round-robin" -> Gprs.Order.Round_robin
        | "weighted" -> Gprs.Order.Weighted
        | "recorded" -> Gprs.Order.Recorded
        | _ -> Gprs.Order.Balance_aware
      in
      Gprs.Engine.run ~lint:`Off ?blocks
        {
          Gprs.Engine.default_config with
          n_contexts = s.contexts;
          seed = s.seed;
          ordering;
          injector = Faults.Injector.config ~seed:s.seed s.rate;
        }
        program
    | other -> failwith (Printf.sprintf "unknown engine %S" other)
  in
  {
    digest = spec.Workloads.Workload.digest result;
    sim_cycles = result.Exec.State.sim_cycles;
    sim_seconds = result.Exec.State.sim_seconds;
    dnc = result.Exec.State.dnc;
    races = List.length result.Exec.State.races;
    stats =
      (if s.want_stats then Sim.Stats.to_assoc result.Exec.State.run_stats
       else []);
  }
