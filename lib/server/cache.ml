(* LRU program cache: the daemon's hot path. An entry is everything the
   cold path computes per program — the decoded workload, its
   fused/compiled superblocks, and the lint admission verdict — so a
   warm request skips all three and goes straight to execution.

   Sharing one entry across concurrent runs is sound: programs are
   immutable after build (input arrays are copied into each run's
   [Vm.Io] at [Exec.State.create]), [Vm.Block.analyze] results are
   immutable after analyze, and the determinism pins from the
   compiled-vs-interpreted and -j1-vs-jN sweeps make the cached decode
   observationally identical to a fresh one.

   Builds are deduplicated in flight: the first requester of a key
   installs a [Building] slot and builds outside the lock; concurrent
   requesters of the same key park on the condvar instead of building
   the same program twice. *)

type entry = {
  e_spec : Workloads.Workload.spec;
  e_program : Vm.Isa.program;
  e_blocks : Vm.Block.t;
  e_lint_errors : int;  (* error-severity findings; > 0 refuses runs *)
}

type slot = Built of entry | Building

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  tbl : (string, slot) Hashtbl.t;
  stamp : (string, int) Hashtbl.t;  (* key -> last-use tick (Built only) *)
  capacity : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    tbl = Hashtbl.create 32;
    stamp = Hashtbl.create 32;
    capacity = Stdlib.max 1 capacity;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let touch_locked t key =
  t.tick <- t.tick + 1;
  Hashtbl.replace t.stamp key t.tick

(* Evict least-recently-used Built entries down to capacity. [Building]
   slots are never evicted (their builder will install and possibly
   trigger eviction of an older entry). *)
let evict_locked t =
  let built () =
    Hashtbl.fold
      (fun k s acc -> match s with Built _ -> k :: acc | Building -> acc)
      t.tbl []
  in
  let rec go keys =
    if List.length keys > t.capacity then begin
      let oldest =
        List.fold_left
          (fun best k ->
            let s = try Hashtbl.find t.stamp k with Not_found -> 0 in
            match best with
            | Some (_, bs) when bs <= s -> best
            | _ -> Some (k, s))
          None keys
      in
      match oldest with
      | None -> ()
      | Some (k, _) ->
        Hashtbl.remove t.tbl k;
        Hashtbl.remove t.stamp k;
        t.evictions <- t.evictions + 1;
        go (List.filter (fun k' -> k' <> k) keys)
    end
  in
  go (built ())

let rec find t ~key ~build =
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.tbl key with
  | Some (Built e) ->
    t.hits <- t.hits + 1;
    touch_locked t key;
    Mutex.unlock t.mutex;
    (e, true)
  | Some Building ->
    (* someone else is decoding this key right now; wait them out *)
    Condition.wait t.cond t.mutex;
    Mutex.unlock t.mutex;
    find t ~key ~build
  | None ->
    t.misses <- t.misses + 1;
    Hashtbl.replace t.tbl key Building;
    Mutex.unlock t.mutex;
    let fire, e =
      try
        (* Fault seam: an injected error is a failed build (the Building
           slot is removed and waiters re-race, like any build error); a
           skip builds the entry but never installs it, so the cache
           stays cold. *)
        let fire = Faults.Points.sample Faults.Points.Cache_insert in
        (fire, build ())
      with ex ->
        Mutex.lock t.mutex;
        Hashtbl.remove t.tbl key;
        Condition.broadcast t.cond;
        Mutex.unlock t.mutex;
        raise ex
    in
    let insert = fire <> Some Faults.Points.Skip_fire in
    Mutex.lock t.mutex;
    if insert then begin
      Hashtbl.replace t.tbl key (Built e);
      touch_locked t key;
      evict_locked t
    end
    else Hashtbl.remove t.tbl key;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    (e, false)

let clear t =
  Mutex.lock t.mutex;
  (* drop only settled entries; an in-flight build installs itself when
     it finishes, exactly as if it had raced the clear *)
  let keys =
    Hashtbl.fold
      (fun k s acc -> match s with Built _ -> k :: acc | Building -> acc)
      t.tbl []
  in
  List.iter
    (fun k ->
      Hashtbl.remove t.tbl k;
      Hashtbl.remove t.stamp k)
    keys;
  Mutex.unlock t.mutex

type stats = {
  length : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
}

let stats t =
  Mutex.lock t.mutex;
  let length =
    Hashtbl.fold
      (fun _ s acc -> match s with Built _ -> acc + 1 | Building -> acc)
      t.tbl 0
  in
  let r =
    {
      length;
      capacity = t.capacity;
      hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
    }
  in
  Mutex.unlock t.mutex;
  r
