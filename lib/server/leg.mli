(** Snapshot of the process-global runtime knobs ("the leg").

    The one-shot CLI reads [GPRS_NO_FUSE] / [GPRS_NO_COMPILE] /
    [GPRS_NO_POOL] / [GPRS_TSAN] / [GPRS_PAR_J] once at process start;
    a daemon must do the same and then never let them drift, or a
    program compiled under one leg could serve a request issued under
    another. {!Daemon.start} captures the leg once, {!apply}s it, and
    threads {!key} into every program-cache key. *)

type t = {
  fuse : bool;  (** fused-block dispatch enabled *)
  compile : bool;  (** superblock trace compilation enabled *)
  pool : bool;  (** sub-thread pooling + event-queue cell recycling *)
  tsan : bool;  (** dynamic race sanitizer armed for every run *)
  par_j : int;  (** intra-run speculative-window domains *)
}

val capture : unit -> t
(** Read the current values of all five switches. *)

val apply : t -> unit
(** Install the snapshot into the runtime switches. [pool] sets both
    switches that [GPRS_NO_POOL] initializes (sub-thread pooling and
    event-queue recycling), keeping them in lockstep. *)

val key : t -> string
(** Compact stable encoding for cache keys. *)

val to_json : t -> Json.t
