(** Minimal JSON codec for the newline-delimited service protocol.

    Hand-rolled (the toolchain ships no JSON library) and deliberately
    small: the full core grammar, ASCII strings, and a strict
    int/float split so integer protocol fields (seeds, cycle counts,
    error codes) round-trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (never contains a raw newline: control
    characters are escaped, so a rendered value is a valid protocol
    line). Floats print with enough digits to round-trip. *)

val of_string : string -> (t, string) result
(** Parse exactly one value spanning the whole string (leading/trailing
    whitespace allowed). *)

(** {1 Field accessors}

    Each looks up a key in an [Obj] and coerces; [default] turns an
    *absent* field into a value instead of an error. A field that is
    present with the wrong type is always an error — defaults never
    mask it. [int] accepts integral floats; [float] accepts ints. *)

val member : string -> t -> t option
val str : ?default:string -> string -> t -> (string, string) result
val int : ?default:int -> string -> t -> (int, string) result
val float : ?default:float -> string -> t -> (float, string) result
val bool : ?default:bool -> string -> t -> (bool, string) result
