(* Minimal JSON codec for the service protocol. Hand-rolled because the
   toolchain carries no JSON library, and the protocol needs only the
   core grammar: objects, arrays, strings, numbers, booleans, null.
   Ints and floats are kept distinct so integer fields (seeds, cycle
   counts) round-trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ----------------------------------------------------------- *)

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string b (Printf.sprintf "%.1f" f)
    else Buffer.add_string b (Printf.sprintf "%.17g" f)
  | Str s -> escape b s
  | List l ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        write b v)
      l;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape b k;
        Buffer.add_char b ':';
        write b v)
      kvs;
    Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 256 in
  write b j;
  Buffer.contents b

(* --- parsing ------------------------------------------------------------ *)

exception Bad of string

type cursor = { src : string; mutable pos : int }

let error cu msg = raise (Bad (Printf.sprintf "%s at offset %d" msg cu.pos))
let peek cu = if cu.pos < String.length cu.src then Some cu.src.[cu.pos] else None

let skip_ws cu =
  while
    cu.pos < String.length cu.src
    &&
    match cu.src.[cu.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    cu.pos <- cu.pos + 1
  done

let expect cu c =
  match peek cu with
  | Some d when d = c -> cu.pos <- cu.pos + 1
  | _ -> error cu (Printf.sprintf "expected %c" c)

let literal cu word v =
  let n = String.length word in
  if
    cu.pos + n <= String.length cu.src
    && String.sub cu.src cu.pos n = word
  then begin
    cu.pos <- cu.pos + n;
    v
  end
  else error cu (Printf.sprintf "expected %s" word)

let parse_string cu =
  expect cu '"';
  let b = Buffer.create 16 in
  let rec go () =
    if cu.pos >= String.length cu.src then error cu "unterminated string";
    let c = cu.src.[cu.pos] in
    cu.pos <- cu.pos + 1;
    match c with
    | '"' -> Buffer.contents b
    | '\\' ->
      (if cu.pos >= String.length cu.src then error cu "unterminated escape";
       let e = cu.src.[cu.pos] in
       cu.pos <- cu.pos + 1;
       match e with
       | '"' -> Buffer.add_char b '"'
       | '\\' -> Buffer.add_char b '\\'
       | '/' -> Buffer.add_char b '/'
       | 'b' -> Buffer.add_char b '\b'
       | 'f' -> Buffer.add_char b '\012'
       | 'n' -> Buffer.add_char b '\n'
       | 'r' -> Buffer.add_char b '\r'
       | 't' -> Buffer.add_char b '\t'
       | 'u' ->
         if cu.pos + 4 > String.length cu.src then error cu "bad \\u escape";
         let hex = String.sub cu.src cu.pos 4 in
         cu.pos <- cu.pos + 4;
         let code =
           try int_of_string ("0x" ^ hex)
           with _ -> error cu "bad \\u escape"
         in
         (* Protocol strings are ASCII; anything else degrades readably
            rather than asserting. *)
         if code < 0x80 then Buffer.add_char b (Char.chr code)
         else Buffer.add_char b '?'
       | _ -> error cu "bad escape");
      go ()
    | c -> Buffer.add_char b c; go ()
  in
  go ()

let parse_number cu =
  let start = cu.pos in
  let is_num c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    cu.pos < String.length cu.src && is_num cu.src.[cu.pos]
  do
    cu.pos <- cu.pos + 1
  done;
  let s = String.sub cu.src start (cu.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> error cu "bad number")

let rec parse_value cu =
  skip_ws cu;
  match peek cu with
  | None -> error cu "unexpected end of input"
  | Some '{' ->
    expect cu '{';
    skip_ws cu;
    if peek cu = Some '}' then begin
      expect cu '}';
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws cu;
        let k = parse_string cu in
        skip_ws cu;
        expect cu ':';
        let v = parse_value cu in
        skip_ws cu;
        match peek cu with
        | Some ',' ->
          expect cu ',';
          members ((k, v) :: acc)
        | Some '}' ->
          expect cu '}';
          List.rev ((k, v) :: acc)
        | _ -> error cu "expected , or }"
      in
      Obj (members [])
    end
  | Some '[' ->
    expect cu '[';
    skip_ws cu;
    if peek cu = Some ']' then begin
      expect cu ']';
      List []
    end
    else begin
      let rec elements acc =
        let v = parse_value cu in
        skip_ws cu;
        match peek cu with
        | Some ',' ->
          expect cu ',';
          elements (v :: acc)
        | Some ']' ->
          expect cu ']';
          List.rev (v :: acc)
        | _ -> error cu "expected , or ]"
      in
      List (elements [])
    end
  | Some '"' -> Str (parse_string cu)
  | Some 't' -> literal cu "true" (Bool true)
  | Some 'f' -> literal cu "false" (Bool false)
  | Some 'n' -> literal cu "null" Null
  | Some _ -> parse_number cu

let of_string s =
  let cu = { src = s; pos = 0 } in
  match parse_value cu with
  | v ->
    skip_ws cu;
    if cu.pos <> String.length s then Error "trailing garbage"
    else Ok v
  | exception Bad msg -> Error msg

(* --- accessors ---------------------------------------------------------- *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

(* The default only stands in for an *absent* field. A field that is
   present with the wrong type is an error — {"seed":"42"} must not
   silently run with seed 1 and reply as if the request were honored. *)

let str ?default k j =
  match (member k j, default) with
  | Some (Str s), _ -> Ok s
  | Some _, _ -> Error (Printf.sprintf "field %S must be a string" k)
  | None, Some d -> Ok d
  | None, None -> Error (Printf.sprintf "missing string field %S" k)

let int ?default k j =
  match (member k j, default) with
  | Some (Int i), _ -> Ok i
  | Some (Float f), _ when Float.is_integer f -> Ok (int_of_float f)
  | Some _, _ -> Error (Printf.sprintf "field %S must be an integer" k)
  | None, Some d -> Ok d
  | None, None -> Error (Printf.sprintf "missing int field %S" k)

let float ?default k j =
  match (member k j, default) with
  | Some (Float f), _ -> Ok f
  | Some (Int i), _ -> Ok (float_of_int i)
  | Some _, _ -> Error (Printf.sprintf "field %S must be a number" k)
  | None, Some d -> Ok d
  | None, None -> Error (Printf.sprintf "missing float field %S" k)

let bool ?default k j =
  match (member k j, default) with
  | Some (Bool b), _ -> Ok b
  | Some _, _ -> Error (Printf.sprintf "field %S must be a boolean" k)
  | None, Some d -> Ok d
  | None, None -> Error (Printf.sprintf "missing bool field %S" k)
