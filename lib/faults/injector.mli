(** Discretionary-exception injection.

    Models the paper's exception-raising thread (§4 "System Assumptions"):
    exceptions occur at a configured rate, each striking one uniformly
    chosen hardware context, and are {e reported} to the recovery system
    only after a detection latency (default 40,000 cycles — the paper's
    400k-cycle latency rescaled with the rest of the machine constants;
    see DESIGN.md §2). The arrival process is periodic or Poisson; the paper
    stress-tests rates without emphasizing the distribution, and both are
    provided.

    Exceptions carry a {!kind} reflecting the sources surveyed in §2.1.
    All kinds are {e global} exceptions from the recovery system's
    perspective; kinds are metadata for reporting and for workloads (such
    as approximate computing) that interpret them. *)

type kind =
  | Transient_fault  (** soft error corrupting a context *)
  | Voltage_emergency  (** timing/voltage/thermal emergency *)
  | Approx_recompute  (** QoS framework demands recomputation *)
  | Resource_revocation  (** spot instance / scheduler revoked a context *)
  | Crash
      (** whole-runtime failure: all volatile engine state is lost and
          execution cold-restarts from the serialized WAL ({!Recovery}).
          Not in {!default_config}'s kind list — crashes only happen when
          asked for. A crash takes effect at [occurred_at] (there is no
          detection window for losing the machine). *)

type event = {
  occurred_at : Sim.Time.cycles;
  reported_at : Sim.Time.cycles;  (** [occurred_at + detection latency] *)
  ctx : int;  (** stricken hardware context *)
  kind : kind;
  seq : int;  (** 0-based exception number *)
}

type process =
  | Periodic  (** evenly spaced at [1/rate] seconds *)
  | Poisson  (** exponential inter-arrival with mean [1/rate] *)

type config = {
  rate : float;  (** exceptions per simulated second; [<= 0.] disables *)
  process : process;
  detection_latency : Sim.Time.cycles;
  kinds : kind list;  (** drawn uniformly; default all four non-crash kinds *)
  seed : int;
}

val default_config : config
(** Disabled (rate 0), periodic, 40k-cycle latency, seed 1. *)

val config :
  ?process:process -> ?detection_latency:int -> ?kinds:kind list -> ?seed:int -> float -> config
(** [config rate] with optional overrides. *)

type t

val create : config -> n_contexts:int -> cycles_per_second:int -> t

val next : t -> t * event option
(** The next exception after the previous one, advancing the stream.
    [None] when injection is disabled. Pure-functional interface so
    engines can't accidentally share streams. *)

val peek : t -> event option
(** The next exception without advancing the stream (the fused-dispatch
    horizon check: engines must not fuse past the next occurrence). *)

val rate : t -> float

val pp_kind : Format.formatter -> kind -> unit
