type kind =
  | Transient_fault
  | Voltage_emergency
  | Approx_recompute
  | Resource_revocation
  | Crash

type event = {
  occurred_at : Sim.Time.cycles;
  reported_at : Sim.Time.cycles;
  ctx : int;
  kind : kind;
  seq : int;
}

type process = Periodic | Poisson

type config = {
  rate : float;
  process : process;
  detection_latency : Sim.Time.cycles;
  kinds : kind list;
  seed : int;
}

let all_kinds =
  [ Transient_fault; Voltage_emergency; Approx_recompute; Resource_revocation ]

let default_config =
  {
    rate = 0.0;
    process = Periodic;
    detection_latency = 40_000;
    kinds = all_kinds;
    seed = 1;
  }

let config ?(process = Periodic) ?(detection_latency = 40_000)
    ?(kinds = all_kinds) ?(seed = 1) rate =
  { rate; process; detection_latency; kinds; seed }

type t = {
  cfg : config;
  n_contexts : int;
  cycles_per_second : int;
  prng : Sim.Prng.t;  (* copied on [next]; persistent interface *)
  last : float;  (* last occurrence, in seconds *)
  seq : int;
}

let create cfg ~n_contexts ~cycles_per_second =
  {
    cfg;
    n_contexts;
    cycles_per_second;
    prng = Sim.Prng.create (cfg.seed lxor 0x1A7EC7);
    last = 0.0;
    seq = 0;
  }

let rate t = t.cfg.rate

let next t =
  if t.cfg.rate <= 0.0 then (t, None)
  else begin
    let prng = Sim.Prng.copy t.prng in
    let gap =
      match t.cfg.process with
      | Periodic -> 1.0 /. t.cfg.rate
      | Poisson -> Sim.Prng.exponential prng ~mean:(1.0 /. t.cfg.rate)
    in
    let at_s = t.last +. gap in
    let occurred_at =
      Sim.Time.of_seconds ~cycles_per_second:t.cycles_per_second at_s
    in
    let ctx = Sim.Prng.int prng t.n_contexts in
    let kinds = Array.of_list t.cfg.kinds in
    let kind = Sim.Prng.choose prng kinds in
    let ev =
      {
        occurred_at;
        reported_at = occurred_at + t.cfg.detection_latency;
        ctx;
        kind;
        seq = t.seq;
      }
    in
    ({ t with prng; last = at_s; seq = t.seq + 1 }, Some ev)
  end

let peek t = snd (next t)

let pp_kind ppf k =
  Format.pp_print_string ppf
    (match k with
    | Transient_fault -> "transient_fault"
    | Voltage_emergency -> "voltage_emergency"
    | Approx_recompute -> "approx_recompute"
    | Resource_revocation -> "resource_revocation"
    | Crash -> "crash")
