(** Named fault points with trigger counts, in the postgres-faultinjector
    mold: code seams call {!sample} (or the raising wrapper {!strike}),
    tests and the scenario driver arm a point with an action and a
    trigger window, and {!wait_until_triggered} lets a test block until a
    point has actually fired — turning racy sleeps into directed
    schedules.

    The registry is process-global (the daemon arms points for requests
    executing on other domains) and guarded by one mutex; the hot path is
    a single {!Atomic.get} of the armed-point count, so an unarmed build
    pays one load per seam and never takes the lock. *)

type point =
  | Wal_append  (** every WAL record append (engine-side hook) *)
  | Wal_fsync  (** durability barrier after a retirement checkpoint *)
  | Checkpoint_begin  (** before the B record of a retirement checkpoint *)
  | Checkpoint_end  (** between the B and E records *)
  | Lock_handoff  (** unlock that may hand the mutex to a waiter *)
  | Barrier_release  (** barrier arrival that releases the episode *)
  | Alloc_grant  (** allocator grant (Alloc instruction) *)
  | Recovery_analysis  (** ARIES analysis pass over the stable image *)
  | Recovery_redo  (** redo application during cold restart *)
  | Recovery_undo  (** loser-op undo during cold restart *)
  | Cold_restart  (** entry to cold restart from a crash dump *)
  | Pool_submit  (** task submission to the shared analysis pool *)
  | Window_commit  (** speculative window commit attempt *)
  | Cache_insert  (** compiled-program insertion into the service cache *)
  | Admission_enqueue  (** service admission of a run request *)

type action =
  | Skip  (** suppress the seam's effect (only where that is sound) *)
  | Error  (** raise {!Fault_error} at the seam *)
  | Crash  (** whole-runtime crash (engine seams only) *)
  | Delay  (** host-side sleep; never touches simulated state *)
  | Torn_write  (** tear the stable WAL mid-record, then crash *)

(** What a seam must do itself when a point fires. [Delay] and [Error]
    are handled inside {!sample} (sleep / raise), so they never reach the
    caller. *)
type fire = Skip_fire | Crash_fire | Torn_fire

exception Fault_error of string
(** Raised by an armed [Error] action: injected I/O error, allocator
    failure, lock-acquisition timeout, … depending on the seam. *)

val all : point list
val to_name : point -> string
val of_name : string -> point option
val action_name : action -> string
val action_of_name : string -> action option

val supported : point -> action list
(** Actions that are sound at this point. {!arm} refuses the rest — e.g.
    [Skip] at [Wal_append] would silently lose a logged effect and turn
    recovery into wrong-answer territory, so it is not offered. *)

val arm :
  ?start_hit:int ->
  ?end_hit:int ->
  ?delay_us:int ->
  point ->
  action ->
  (unit, string) result
(** Arm [point] with [action]. The point fires on hits numbered
    [start_hit..end_hit] (1-based, defaults [1..max_int]); hits are
    counted only while armed. [delay_us] (default 50) is the sleep for
    [Delay]. Re-arming replaces the previous arming and zeroes the
    counters. *)

val disarm : point -> unit
(** Disarm without clearing counters (status stays inspectable). *)

val disarm_if : (point -> action -> bool) -> unit
(** Disarm every armed point for which the predicate holds. *)

val reset : point -> unit
(** Disarm and zero the counters. *)

val reset_all : unit -> unit

type status = {
  s_point : point;
  s_action : action option;  (** [None] when not armed *)
  s_start : int;
  s_end : int;
  s_delay_us : int;
  s_hits : int;  (** times the seam was reached while armed *)
  s_fires : int;  (** times the action was actually taken *)
}

val status : point -> status
val status_all : unit -> status list
(** Status rows for points that are armed or have non-zero counters. *)

val armed_count : unit -> int

val sample : point -> fire option
(** The seam call. Unarmed (globally or for this point): [None] at the
    cost of one atomic load. Armed: counts a hit, and if the hit falls in
    the trigger window performs the action — [Delay] sleeps and returns
    [None], [Error] raises {!Fault_error}, the rest return [Some fire]
    for the seam to enact. *)

val strike : point -> unit
(** {!sample} for seams with no skip/crash/torn behavior of their own:
    delay and error act as usual, any other fire is ignored. *)

val wait_until_triggered : ?timeout_s:float -> point -> int -> bool
(** Block until [point] has fired at least [n] times (immediately true
    for [n <= 0], armed or not). Returns [false] on timeout (default
    10s). *)

val arm_from_env : unit -> (unit, string) result
(** Arm points from [GPRS_FAULT_POINTS], a comma-separated list of
    [point=action[:delay_us][\@start[-end]]] clauses, e.g.
    [lock_handoff=delay:0] or [wal_append=crash\@5]. Also runs at module
    initialization so every binary honors the variable. *)
