(* Named fault points (postgres-faultinjector model). One process-global
   registry: the daemon arms points that fire on worker domains, and the
   engine seams are too hot to thread a handle through every call site.
   The unarmed fast path is a single atomic load of the armed count —
   no lock, no allocation — which is what lets the seams stay compiled
   into production paths (see DESIGN.md §7). *)

type point =
  | Wal_append
  | Wal_fsync
  | Checkpoint_begin
  | Checkpoint_end
  | Lock_handoff
  | Barrier_release
  | Alloc_grant
  | Recovery_analysis
  | Recovery_redo
  | Recovery_undo
  | Cold_restart
  | Pool_submit
  | Window_commit
  | Cache_insert
  | Admission_enqueue

type action = Skip | Error | Crash | Delay | Torn_write
type fire = Skip_fire | Crash_fire | Torn_fire

exception Fault_error of string

let all =
  [
    Wal_append;
    Wal_fsync;
    Checkpoint_begin;
    Checkpoint_end;
    Lock_handoff;
    Barrier_release;
    Alloc_grant;
    Recovery_analysis;
    Recovery_redo;
    Recovery_undo;
    Cold_restart;
    Pool_submit;
    Window_commit;
    Cache_insert;
    Admission_enqueue;
  ]

let to_name = function
  | Wal_append -> "wal_append"
  | Wal_fsync -> "wal_fsync"
  | Checkpoint_begin -> "checkpoint_begin"
  | Checkpoint_end -> "checkpoint_end"
  | Lock_handoff -> "lock_handoff"
  | Barrier_release -> "barrier_release"
  | Alloc_grant -> "alloc"
  | Recovery_analysis -> "recovery_analysis"
  | Recovery_redo -> "recovery_redo"
  | Recovery_undo -> "recovery_undo"
  | Cold_restart -> "cold_restart"
  | Pool_submit -> "pool_submit"
  | Window_commit -> "window_commit"
  | Cache_insert -> "cache_insert"
  | Admission_enqueue -> "admission_enqueue"

let of_name s = List.find_opt (fun p -> to_name p = s) all

let action_name = function
  | Skip -> "skip"
  | Error -> "error"
  | Crash -> "crash"
  | Delay -> "delay"
  | Torn_write -> "torn_write"

let action_of_name = function
  | "skip" -> Some Skip
  | "error" -> Some Error
  | "crash" -> Some Crash
  | "delay" -> Some Delay
  | "torn_write" -> Some Torn_write
  | _ -> None

(* Soundness matrix. Skip is offered only where the seam has a
   well-defined "didn't happen" meaning (a checkpoint that never ran, a
   window that falls back to the sequential path, a cache that stays
   cold); skipping a WAL append or a lock handoff would silently
   diverge the run instead of failing it. Crash is an engine-runtime
   notion (captured as a crash dump), so it is offered only at seams
   executing under the engine's run loop. Torn_write needs a stable WAL
   buffer under the seam's hand. *)
let supported = function
  | Wal_append -> [ Error; Crash; Delay; Torn_write ]
  | Wal_fsync -> [ Error; Crash; Delay; Torn_write ]
  | Checkpoint_begin | Checkpoint_end -> [ Skip; Error; Crash; Delay ]
  | Lock_handoff | Barrier_release | Alloc_grant -> [ Error; Crash; Delay ]
  | Recovery_analysis | Recovery_redo | Recovery_undo | Cold_restart ->
    [ Error; Delay ]
  | Pool_submit | Admission_enqueue -> [ Error; Delay ]
  | Window_commit -> [ Skip; Delay ]
  | Cache_insert -> [ Skip; Error; Delay ]

(* --- registry ----------------------------------------------------------- *)

type slot = {
  mutable armed : action option;
  mutable start_hit : int;
  mutable end_hit : int;
  mutable delay_us : int;
  mutable hits : int;
  mutable fires : int;
}

let n_points = List.length all
let index p = match List.find_index (fun q -> q = p) all with
  | Some i -> i
  | None -> assert false

let slots =
  Array.init n_points (fun _ ->
      {
        armed = None;
        start_hit = 1;
        end_hit = max_int;
        delay_us = 50;
        hits = 0;
        fires = 0;
      })

let mutex = Mutex.create ()
let fired = Condition.create ()

(* Armed-point count, readable without the lock: the only state the
   unarmed fast path touches. *)
let armed_n = Atomic.make 0

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let recount_armed () =
  let n = Array.fold_left (fun a s -> if s.armed = None then a else a + 1) 0 slots in
  Atomic.set armed_n n

let arm ?(start_hit = 1) ?(end_hit = max_int) ?(delay_us = 50) p action =
  if not (List.mem action (supported p)) then
    Stdlib.Error
      (Printf.sprintf "point %s does not support action %s (supported: %s)"
         (to_name p) (action_name action)
         (String.concat ", " (List.map action_name (supported p))))
  else if start_hit < 1 || end_hit < start_hit then
    Stdlib.Error
      (Printf.sprintf "bad trigger window [%d,%d] for %s" start_hit end_hit
         (to_name p))
  else if delay_us < 0 then Stdlib.Error "negative delay_us"
  else
    locked (fun () ->
        let s = slots.(index p) in
        s.armed <- Some action;
        s.start_hit <- start_hit;
        s.end_hit <- end_hit;
        s.delay_us <- delay_us;
        s.hits <- 0;
        s.fires <- 0;
        recount_armed ();
        Stdlib.Ok ())

let disarm p =
  locked (fun () ->
      slots.(index p).armed <- None;
      recount_armed ())

let disarm_if pred =
  locked (fun () ->
      Array.iteri
        (fun i s ->
          match s.armed with
          | Some a when pred (List.nth all i) a -> s.armed <- None
          | _ -> ())
        slots;
      recount_armed ())

let reset p =
  locked (fun () ->
      let s = slots.(index p) in
      s.armed <- None;
      s.start_hit <- 1;
      s.end_hit <- max_int;
      s.delay_us <- 50;
      s.hits <- 0;
      s.fires <- 0;
      recount_armed ())

let reset_all () = List.iter reset all

type status = {
  s_point : point;
  s_action : action option;
  s_start : int;
  s_end : int;
  s_delay_us : int;
  s_hits : int;
  s_fires : int;
}

let status p =
  locked (fun () ->
      let s = slots.(index p) in
      {
        s_point = p;
        s_action = s.armed;
        s_start = s.start_hit;
        s_end = s.end_hit;
        s_delay_us = s.delay_us;
        s_hits = s.hits;
        s_fires = s.fires;
      })

let status_all () =
  List.filter
    (fun st -> st.s_action <> None || st.s_hits > 0 || st.s_fires > 0)
    (List.map status all)

let armed_count () = Atomic.get armed_n

(* --- the seam call ------------------------------------------------------ *)

let sample_slow p =
  let verdict =
    locked (fun () ->
        let s = slots.(index p) in
        match s.armed with
        | None -> None
        | Some action ->
          s.hits <- s.hits + 1;
          if s.hits >= s.start_hit && s.hits <= s.end_hit then begin
            s.fires <- s.fires + 1;
            Condition.broadcast fired;
            Some (action, s.delay_us)
          end
          else None)
  in
  (* The sleep and the raise happen outside the lock: a long delay must
     not wedge status/arm calls from other threads. *)
  match verdict with
  | None -> None
  | Some (Delay, us) ->
    if us > 0 then Unix.sleepf (float_of_int us *. 1e-6);
    None
  | Some (Error, _) ->
    raise (Fault_error (Printf.sprintf "%s: injected fault" (to_name p)))
  | Some (Skip, _) -> Some Skip_fire
  | Some (Crash, _) -> Some Crash_fire
  | Some (Torn_write, _) -> Some Torn_fire

let[@inline] sample p = if Atomic.get armed_n = 0 then None else sample_slow p
let strike p = match sample p with Some _ | None -> ()

let wait_until_triggered ?(timeout_s = 10.0) p n =
  if n <= 0 then true
  else begin
    let deadline = Unix.gettimeofday () +. timeout_s in
    let rec loop () =
      let got = locked (fun () -> slots.(index p).fires >= n) in
      if got then true
      else if Unix.gettimeofday () >= deadline then false
      else begin
        (* No timed Condition.wait in the stdlib; poll at a grain far
           below any test's patience. *)
        Unix.sleepf 0.002;
        loop ()
      end
    in
    loop ()
  end

(* --- env arming --------------------------------------------------------- *)

(* GPRS_FAULT_POINTS="lock_handoff=delay:0,wal_append=crash@5"
   clause := point=action[:delay_us][@start[-end]] *)
let arm_clause clause =
  let fail fmt = Printf.ksprintf (fun m -> Stdlib.Error m) fmt in
  match String.index_opt clause '=' with
  | None -> fail "clause %S: expected point=action" clause
  | Some eq -> (
    let pname = String.sub clause 0 eq in
    let rest = String.sub clause (eq + 1) (String.length clause - eq - 1) in
    let rest, window =
      match String.index_opt rest '@' with
      | None -> (rest, None)
      | Some at ->
        ( String.sub rest 0 at,
          Some (String.sub rest (at + 1) (String.length rest - at - 1)) )
    in
    let aname, delay_us =
      match String.index_opt rest ':' with
      | None -> (rest, None)
      | Some c ->
        ( String.sub rest 0 c,
          int_of_string_opt
            (String.sub rest (c + 1) (String.length rest - c - 1)) )
    in
    let window =
      match window with
      | None -> Stdlib.Ok (1, max_int)
      | Some w -> (
        match String.index_opt w '-' with
        | None -> (
          match int_of_string_opt w with
          | Some n -> Stdlib.Ok (n, n)
          | None -> fail "clause %S: bad trigger %S" clause w)
        | Some d -> (
          let lo = String.sub w 0 d in
          let hi = String.sub w (d + 1) (String.length w - d - 1) in
          match (int_of_string_opt lo, int_of_string_opt hi) with
          | Some lo, Some hi -> Stdlib.Ok (lo, hi)
          | _ -> fail "clause %S: bad trigger window %S" clause w))
    in
    match (of_name pname, action_of_name aname, window) with
    | None, _, _ -> fail "clause %S: unknown point %S" clause pname
    | _, None, _ -> fail "clause %S: unknown action %S" clause aname
    | Some p, Some a, Stdlib.Ok (lo, hi) ->
      arm ?delay_us p a ~start_hit:lo ~end_hit:hi
    | _, _, (Stdlib.Error _ as e) -> e)

let arm_from_env () =
  match Sys.getenv_opt "GPRS_FAULT_POINTS" with
  | None | Some "" -> Stdlib.Ok ()
  | Some spec ->
    List.fold_left
      (fun acc clause ->
        match acc with
        | Stdlib.Error _ as e -> e
        | Stdlib.Ok () -> if clause = "" then Stdlib.Ok () else arm_clause (String.trim clause))
      (Stdlib.Ok ())
      (String.split_on_char ',' spec)

let () =
  match arm_from_env () with
  | Stdlib.Ok () -> ()
  | Stdlib.Error msg ->
    prerr_endline ("GPRS_FAULT_POINTS: " ^ msg);
    exit 2
