type op =
  | Alloc of { addr : int; size : int }
  | Free of { addr : int; size : int }
  | Thread_create of { tid : int }
  | Rol_insert of { sub : int }
  | Sched_enqueue of { sub : int }
  | Io_op of { file : int; words : int }

type entry = { lsn : int; order : int; op : op }

type t = {
  mutable entries : entry list;  (* newest first *)
  mutable next_lsn : int;
  mutable live : int;
  mutable hw : int;
  stable : Buffer.t option;  (* serialized "stable storage" image, or None *)
  mutable on_append : (int -> unit) option;  (* fires after each op record *)
}

let create ?(stable = false) () =
  {
    entries = [];
    next_lsn = 0;
    live = 0;
    hw = 0;
    stable = (if stable then Some (Buffer.create 4096) else None);
    on_append = None;
  }

let stable_armed t = t.stable <> None
let set_on_append t f = t.on_append <- f
let appended t = t.next_lsn

(* --- stable-image record format ---------------------------------------

   One checksummed text line per record, in LSN order:

     O <lsn> <at> <order> <k> <a> <b> <crc>   op record (k: A F T R S I)
     P <lsn> <upto> <crc>                     prune marker (retirement)
     B <lsn> <crc>                            checkpoint begin
     E <lsn> <min_retired> <redo_start> <active> <brk> <free> <used> <crc>

   where <active> is a comma list of live sub-thread orders (or "-"),
   <free>/<used> are comma lists of addr:size allocator blocks (or "-").
   The crc is FNV-1a 64 of the line up to and excluding " <crc>"; a line
   that fails its crc, or a truncated/unparseable line, raises Corrupt.
   P/B/E records reuse the current next_lsn without consuming it, so op
   LSNs stay dense and sweep enumeration can target every op boundary. *)

exception Corrupt of string

type srec =
  | S_op of { at : int; e : entry }
  | S_prune of { lsn : int; upto : int }
  | S_drop of { lsn : int; orders : int list }
  | S_ckpt_begin of { lsn : int }
  | S_ckpt_end of {
      lsn : int;
      min_retired : int;
      redo_start : int;
      active : int list;
      brk : int;
      free : (int * int) list;
      used : (int * int) list;
    }

let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let emit t line =
  match t.stable with
  | None -> ()
  | Some buf ->
    Buffer.add_string buf line;
    Buffer.add_string buf (Printf.sprintf " %Lx\n" (fnv1a line))

let kind_char = function
  | Alloc _ -> 'A'
  | Free _ -> 'F'
  | Thread_create _ -> 'T'
  | Rol_insert _ -> 'R'
  | Sched_enqueue _ -> 'S'
  | Io_op _ -> 'I'

let op_fields = function
  | Alloc { addr; size } | Free { addr; size } -> (addr, size)
  | Thread_create { tid } -> (tid, 0)
  | Rol_insert { sub } | Sched_enqueue { sub } -> (sub, 0)
  | Io_op { file; words } -> (file, words)

let append t ?(at = 0) ~order op =
  let lsn = t.next_lsn in
  t.next_lsn <- lsn + 1;
  t.entries <- { lsn; order; op } :: t.entries;
  t.live <- t.live + 1;
  if t.live > t.hw then t.hw <- t.live;
  let a, b = op_fields op in
  emit t (Printf.sprintf "O %d %d %d %c %d %d" lsn at order (kind_char op) a b);
  (match t.on_append with Some f -> f lsn | None -> ());
  lsn

let size t = t.live
let high_water t = t.hw

let entries_for t ~orders = List.filter (fun e -> orders e.order) t.entries

let drop_for t ~orders =
  let kept, dropped = List.partition (fun e -> not (orders e.order)) t.entries in
  t.entries <- kept;
  let n = List.length dropped in
  t.live <- t.live - n;
  (* Squash-undo is a durable decision: without a drop marker, cold
     recovery would count the squashed sub-threads' operations a second
     time (their undo already ran in the live engine). *)
  if n > 0 && t.stable <> None then begin
    let os =
      List.sort_uniq compare (List.map (fun e -> e.order) dropped)
    in
    emit t
      (Printf.sprintf "D %d %s" t.next_lsn
         (String.concat "," (List.map string_of_int os)))
  end;
  n

let prune_below t ~order =
  let kept, dropped = List.partition (fun e -> e.order >= order) t.entries in
  t.entries <- kept;
  let n = List.length dropped in
  t.live <- t.live - n;
  if n > 0 then emit t (Printf.sprintf "P %d %d" t.next_lsn order);
  n

(* Redo scan start for the next recovery: the oldest LSN still protected
   by a live (volatile) entry. With no live entries nothing older than
   next_lsn can belong to an unretired sub-thread. *)
let redo_start t =
  List.fold_left (fun acc e -> min acc e.lsn) t.next_lsn t.entries

(* Split begin/end so the engine can expose the B→E window as two fault
   points: a crash landing between them leaves a B without its E, which
   analysis must treat as "checkpoint did not complete". *)
let log_checkpoint_begin t =
  if t.stable <> None then emit t (Printf.sprintf "B %d" t.next_lsn)

let log_checkpoint_end t ~min_retired ~active ~brk ~free ~used =
  if t.stable <> None then begin
    let lsn = t.next_lsn in
    let ints l = if l = [] then "-" else String.concat "," (List.map string_of_int l) in
    let blocks l =
      if l = [] then "-"
      else String.concat "," (List.map (fun (a, s) -> Printf.sprintf "%d:%d" a s) l)
    in
    emit t
      (Printf.sprintf "E %d %d %d %s %d %s %s" lsn min_retired (redo_start t)
         (ints active) brk (blocks free) (blocks used))
  end

let log_checkpoint t ~min_retired ~active ~brk ~free ~used =
  log_checkpoint_begin t;
  log_checkpoint_end t ~min_retired ~active ~brk ~free ~used

(* Torn-write injection: cut the stable image mid-way through its final
   record, the on-disk shape of a write that lost power half-done. At
   least one byte of the final line survives, so the cut never lands on
   a record boundary — parse_image must see it and refuse. *)
let tear_stable t =
  match t.stable with
  | None -> ()
  | Some buf ->
    let s = Buffer.contents buf in
    let n = String.length s in
    if n >= 2 then begin
      let line_start =
        match String.rindex_from_opt s (n - 2) '\n' with
        | Some j -> j + 1
        | None -> 0
      in
      let keep = line_start + Stdlib.max 1 ((n - 1 - line_start) / 2) in
      let torn = String.sub s 0 keep in
      Buffer.clear buf;
      Buffer.add_string buf torn
    end

let stable_image t = Option.map Buffer.contents t.stable

let parse_image image =
  let bad fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt in
  let int s = match int_of_string_opt s with Some v -> v | None -> bad "bad int %S" s in
  let ints = function
    | "-" -> []
    | s -> List.map int (String.split_on_char ',' s)
  in
  let blocks = function
    | "-" -> []
    | s ->
      List.map
        (fun tok ->
          match String.split_on_char ':' tok with
          | [ a; sz ] -> (int a, int sz)
          | _ -> bad "bad block %S" tok)
        (String.split_on_char ',' s)
  in
  let parse_line ln line =
    match String.rindex_opt line ' ' with
    | None -> bad "line %d: no checksum" ln
    | Some i ->
      let body = String.sub line 0 i in
      let crc = String.sub line (i + 1) (String.length line - i - 1) in
      let want = Printf.sprintf "%Lx" (fnv1a body) in
      if not (String.equal crc want) then
        bad "line %d: checksum mismatch (got %s, want %s)" ln crc want;
      (match String.split_on_char ' ' body with
      | [ "O"; lsn; at; order; k; a; b ] ->
        let a = int a and b = int b in
        let op =
          match k with
          | "A" -> Alloc { addr = a; size = b }
          | "F" -> Free { addr = a; size = b }
          | "T" -> Thread_create { tid = a }
          | "R" -> Rol_insert { sub = a }
          | "S" -> Sched_enqueue { sub = a }
          | "I" -> Io_op { file = a; words = b }
          | _ -> bad "line %d: unknown op kind %S" ln k
        in
        S_op { at = int at; e = { lsn = int lsn; order = int order; op } }
      | [ "P"; lsn; upto ] -> S_prune { lsn = int lsn; upto = int upto }
      | [ "D"; lsn; os ] -> S_drop { lsn = int lsn; orders = ints os }
      | [ "B"; lsn ] -> S_ckpt_begin { lsn = int lsn }
      | [ "E"; lsn; min_retired; redo_start; active; brk; free; used ] ->
        S_ckpt_end
          {
            lsn = int lsn;
            min_retired = int min_retired;
            redo_start = int redo_start;
            active = ints active;
            brk = int brk;
            free = blocks free;
            used = blocks used;
          }
      | _ -> bad "line %d: unparseable record %S" ln body)
  in
  let recs = ref [] in
  let n = String.length image in
  let pos = ref 0 and ln = ref 1 in
  while !pos < n do
    let stop = match String.index_from_opt image !pos '\n' with Some j -> j | None -> n in
    let line = String.sub image !pos (stop - !pos) in
    if line <> "" then recs := parse_line !ln line :: !recs;
    incr ln;
    pos := stop + 1
  done;
  List.rev !recs

let all t = List.rev t.entries

let pp_op ppf = function
  | Alloc { addr; size } -> Format.fprintf ppf "alloc(%d,%d)" addr size
  | Free { addr; size } -> Format.fprintf ppf "free(%d,%d)" addr size
  | Thread_create { tid } -> Format.fprintf ppf "thread_create(%d)" tid
  | Rol_insert { sub } -> Format.fprintf ppf "rol_insert(%d)" sub
  | Sched_enqueue { sub } -> Format.fprintf ppf "sched_enqueue(%d)" sub
  | Io_op { file; words } -> Format.fprintf ppf "io(%d,%d)" file words
