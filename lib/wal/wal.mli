(** Write-ahead log for the GPRS runtime's own state.

    GPRS cannot protect its internal structures (work queues, allocator
    lists, the reorder list) with the same checkpoints it keeps for user
    state — applying CPR to the runtime "will lead to the same problem
    that it is attempting to solve" (§3.2 of the paper). Instead, each
    runtime operation is performed on behalf of some sub-thread and is
    logged, tagged with that sub-thread's order, to stable storage before
    it executes (write-ahead, in the style of ARIES). Recovery walks the
    log backwards and undoes the operations belonging to squashed
    sub-threads; retirement prunes the prefix belonging to retired ones.

    The log stores the {e descriptions} of operations; the engine owns the
    inverse actions (e.g. {!Vm.Mem.undo_alloc}).

    When created with [~stable:true] the log additionally serializes every
    record into an in-memory "stable storage" image: one checksummed text
    line per op record, prune marker, or checkpoint begin/end pair, in LSN
    order. Cold recovery ({!Recovery}) parses that image back with
    {!parse_image} and performs ARIES analysis / redo / undo against it —
    the live [t] is gone with the crashed engine. *)

type op =
  | Alloc of { addr : int; size : int }  (** runtime allocator gave out a block *)
  | Free of { addr : int; size : int }  (** runtime allocator reclaimed a block *)
  | Thread_create of { tid : int }  (** TCB and stack were materialized *)
  | Rol_insert of { sub : int }  (** a reorder-list entry was added *)
  | Sched_enqueue of { sub : int }  (** a sub-thread entered a work queue *)
  | Io_op of { file : int; words : int }  (** a file operation's metadata *)

type entry = { lsn : int; order : int; op : op }

type t

val create : ?stable:bool -> unit -> t
(** [~stable:true] keeps a serialized image of every record ([default:
    false], volatile only — the pre-crash-harness behavior). *)

val stable_armed : t -> bool

val append : t -> ?at:int -> order:int -> op -> int
(** Logs the operation on behalf of the sub-thread with the given order;
    returns the LSN. LSNs are strictly increasing and dense. [at] is the
    simulated cycle of the append, recorded in the stable image so the
    crash sweep can replay the same schedule against P-CPR. *)

val set_on_append : t -> (int -> unit) option -> unit
(** Hook fired with the LSN after each op record reaches the log — the
    crash injector's trigger point ("crash at every WAL-record
    boundary"). *)

val appended : t -> int
(** Total op records ever appended (= next LSN). *)

val size : t -> int
(** Live (unpruned) entries — the bounded quantity the paper keeps in
    check by pruning at retirement. *)

val high_water : t -> int
(** Maximum live size ever observed. *)

val entries_for : t -> orders:(int -> bool) -> entry list
(** Entries whose sub-thread order satisfies the predicate, newest first —
    the order in which recovery must undo them. *)

val drop_for : t -> orders:(int -> bool) -> int
(** Remove those entries (they were undone); returns how many. Writes a
    drop marker naming the squashed orders to the stable image so cold
    recovery does not undo them a second time. *)

val prune_below : t -> order:int -> int
(** Retirement: drop all entries with [order < order]; returns how many.
    Writes a prune marker to the stable image. *)

val log_checkpoint :
  t ->
  min_retired:int ->
  active:int list ->
  brk:int ->
  free:(int * int) list ->
  used:(int * int) list ->
  unit
(** Write an ARIES checkpoint (begin/end pair) to the stable image: the
    retired-order horizon, the active-order table, and the allocator
    snapshot (break, free list, allocated blocks). The end record carries
    the redo-scan start LSN — the oldest LSN still held by a live entry —
    so recovery does not rescan the full log. No-op on volatile logs. *)

val log_checkpoint_begin : t -> unit
(** The B record alone; with {!log_checkpoint_end} this is
    {!log_checkpoint} split at the fault seam between the two records. *)

val log_checkpoint_end :
  t ->
  min_retired:int ->
  active:int list ->
  brk:int ->
  free:(int * int) list ->
  used:(int * int) list ->
  unit
(** The E record alone. *)

val tear_stable : t -> unit
(** Fault injection: truncate the stable image mid-way through its final
    record — a torn write. Keeps at least one byte of the final line so
    the damage never coincides with a record boundary; {!parse_image}
    over the result raises {!Corrupt}. No-op on volatile logs. *)

val stable_image : t -> string option
(** The serialized log so far; [None] if not created [~stable:true]. *)

(** {2 Stable-image records} *)

exception Corrupt of string
(** Raised by {!parse_image} on checksum mismatch or malformed records —
    recovery must refuse corrupted stable storage, never guess. *)

type srec =
  | S_op of { at : int; e : entry }
  | S_prune of { lsn : int; upto : int }
  | S_drop of { lsn : int; orders : int list }
      (** a live recovery squashed (and already undid) these orders *)
  | S_ckpt_begin of { lsn : int }
  | S_ckpt_end of {
      lsn : int;
      min_retired : int;  (** orders below this had retired *)
      redo_start : int;  (** oldest LSN a redo scan must revisit *)
      active : int list;  (** live sub-thread orders at checkpoint time *)
      brk : int;  (** allocator static break *)
      free : (int * int) list;  (** allocator free blocks, address-sorted *)
      used : (int * int) list;  (** allocated blocks, address-sorted *)
    }

val parse_image : string -> srec list
(** Parse a stable image back into records, LSN order. @raise Corrupt *)

val all : t -> entry list
(** Oldest first; for tests. *)

val pp_op : Format.formatter -> op -> unit
