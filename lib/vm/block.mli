(** Fused-block pre-decoder and superblock trace compiler.

    Partitions each proc's [code] array, once per program load, into
    {e fused blocks}: maximal runs of fusible instructions that an engine
    may execute in a single event-queue hop, summing their durations,
    instead of paying one heap push/pop per instruction. Engines combine
    the static decode with a dynamic control-flow {!probe_ctrl} so a hop
    can chase [Goto]/[If]/[Cpr_begin]/[Cpr_end] chains across block
    boundaries exactly as the per-instruction fetch loop does.

    On top of the decode sits a {e superblock compiler}: at program load
    every boundary pc is compiled into an OCaml closure (a {!cell}) that
    executes its control prefix — with each [If] direction statically
    predicted (backward taken, forward fall-through) and recorded as a
    {e guard} — plus the fusible landing instruction, then tail-calls the
    cell at the landing's successor. Loops tie the knot: the cells of a
    loop body form a closure cycle, nothing is unrolled. A failed guard
    or the hop's deopt horizon abandons the trace {e between} steps, with
    pc and clock at the last committed boundary, and the interpreted
    probe chain takes over — so compiled execution is observationally
    identical to the interpreted chain, instruction for instruction.

    The fusible ({!Fuse}) class is deliberately narrower than "not a sync
    point": only [Work] and [Opaque] qualify. [Unlock], [Alloc], [Free]
    and [Nonstd_atomic] are straight-line filler for {e sub-thread
    formation} but are cross-thread {e observable} (wake hand-off order,
    allocator address order, atomic interleaving), so hoisting them to the
    hop's start time could change another thread's behaviour; they stay
    {!Stop} class and dispatch alone at their exact unfused times. [Work]
    and [Opaque] only touch data that is race-free in a correct program
    (the lock discipline GPRS-lint enforces), so their effects commute
    with every event inside the hop's time window and cycle accounting,
    sub-thread boundaries, stats and output digests stay bit-identical —
    the engines additionally deopt to instruction-at-a-time stepping
    whenever precise interleaving is observable (pending injected fault
    in the window, armed CPR alarm, quantum expiry, recovery in
    progress, cycle-budget edge).

    Chains evaluate each [If] condition exactly once (the probe's results
    are committed, never re-run); conditions are assumed pure, as every
    builder-generated program satisfies. Guard checks may re-evaluate a
    condition the interpreted replay evaluates again after a deopt —
    purity makes the double evaluation unobservable. *)

type cls =
  | Fuse  (** [Work]/[Opaque]: fusible straight-line filler *)
  | Ctrl  (** [Goto]/[If]/[Cpr_begin]/[Cpr_end]: fused at 1 cycle each *)
  | Stop  (** everything else: dispatched alone, ends the block *)

val classify : Isa.instr -> cls

(** {1 Runtime switches} *)

val fusing : unit -> bool
(** Whether engines may fuse. Initialized from the environment:
    [GPRS_NO_FUSE] (any value) starts it [false]. *)

val set_fusing : bool -> unit
(** Tests flip this to compare fused and unfused legs in-process. Set it
    only between runs (engines read it per hop). *)

val compiling : unit -> bool
(** Whether fused chains may enter compiled superblocks. Initialized from
    the environment: [GPRS_NO_COMPILE] (any value) starts it [false].
    Orthogonal to {!fusing}: with compilation off, chains fall back to
    the interpreted probe loop. *)

val set_compiling : bool -> unit
(** Tests flip this to compare compiled and interpreted legs in-process.
    Set it only between runs. *)

val set_profiling : bool -> unit
(** Enable the dispatch-mix profiler: engines then count
    ["dispatch.<kind>"] per dispatched instruction, ["dispatch.ctrl"]
    per fused control transfer, a ["fuse.len.NN"] histogram of
    fused-hop lengths (compiled steps counted individually, not
    one-per-closure), and ["compile.*"] trace-compiler counters into run
    stats. Off by default (the counters are excluded from cross-leg
    stat-equality checks). *)

val profiling : bool ref

(** {1 Compiled superblocks} *)

type deopt =
  | Trace_end  (** ran to a terminal cell (next landing stops the block) *)
  | Guard_fail  (** an [If] went against its static prediction *)
  | Horizon  (** the hop's deopt horizon fell inside the trace *)

(** Mutable trace-execution state threaded through compiled closures.
    One cursor per executor state, reset per compiled entry — the trace
    driver reads the accumulators back out after the closure returns. *)
type cursor = {
  mutable cu_tcb : Tcb.t;
  mutable cu_env : Env.t;  (** cached tracked env for [cu_tcb] *)
  mutable cu_take_acc : unit -> int;  (** drains tracked-access cycles *)
  mutable cu_vnow : int;  (** clock at the current boundary *)
  mutable cu_horizon : int;  (** deopt when [cu_vnow >= cu_horizon] *)
  mutable cu_steps : int;  (** instructions committed this entry *)
  mutable cu_ctrl : int;  (** control transfers crossed this entry *)
  mutable cu_opaques : int;  (** [Opaque] steps this entry *)
  mutable cu_opaque_in_cpr : bool;  (** CPR flag at the last [Opaque] *)
  mutable cu_entered_cpr : bool;  (** a [Cpr_begin] was crossed *)
  mutable cu_deopt : deopt;  (** why the closure returned *)
}

val make_cursor :
  tcb:Tcb.t -> env:Env.t -> take_acc:(unit -> int) -> cursor

type cell
(** A compiled superblock boundary: executing it commits zero or more
    instructions (guards permitting) and sets the cursor's deopt reason. *)

val enter : cell -> cursor -> unit
(** Run the cell's compiled body. On return, [cu_steps] instructions have
    been committed (pc, CPR flag, clock, and all memory/file effects
    exactly as the interpreted chain), and [cu_deopt] says why it
    stopped. A step is atomic: a guard failure or horizon deopt happens
    strictly between steps, never after partial effects. *)

(** {1 Static pre-decode} *)

type proc_blocks = {
  fuse_run : int array;
      (** [fuse_run.(pc)] = length of the maximal {!Fuse} run starting at
          [pc]; 0 when [code.(pc)] is not {!Fuse}. Length
          [Array.length code + 1] (sentinel 0 at the end). *)
  n_blocks : int;  (** static fused blocks (runs split at branch targets) *)
  lengths : (int * int) list;  (** static block length -> count, sorted *)
  cells : cell option array;
      (** per-boundary compiled cells; use {!trace_at}, which filters out
          terminal (zero-step) and not-worth-entering cells *)
  n_compiled : int;  (** cells with at least one compiled step *)
}

type t

val analyze : Isa.program -> t
(** Decode and compile every proc. Done once in [Exec.State.create] —
    unless the caller passes a cached result in, which is how the
    service-mode program cache pays this cost once per program. *)

val analyses : unit -> int
(** Process-wide monotonic count of {!analyze} calls. A warm program
    cache must leave it untouched: the service bench asserts a zero
    delta across its warm-dispatch phase. *)

val proc_info : t -> Isa.proc -> proc_blocks
(** Raises [Invalid_argument] for a proc not in the analyzed program. *)

val static_histogram : t -> (int * int) list
(** Program-wide static block-length histogram (length -> count). *)

val n_compiled : t -> int
(** Program-wide count of compiled superblock cells (the
    ["compile.superblocks"] profile counter). *)

val trace_at : proc_blocks -> int -> cell option
(** The compiled cell entered at boundary [pc], if its trace is worth
    entering: the statically predicted path either loops or commits
    several instructions before ending. Short straight-line traces are
    left to the interpreted probe — entry setup would not amortize.
    Every interior boundary of a worthwhile superblock is enterable, so
    loop bodies re-enter their trace after any deopt. *)

(** {1 Control-flow probe} *)

type probe = {
  p_pc : int;  (** pc of the first non-Ctrl instruction reached *)
  p_ctrl : int;  (** control transfers crossed (1 cycle each) *)
  p_in_cpr : bool;  (** CPR-region flag after the crossing *)
  p_entered_cpr : bool;  (** a [Cpr_begin] was crossed *)
}

val probe_ctrl : Isa.proc -> pc:int -> regs:Isa.regs -> in_cpr:bool -> probe
(** Follow the Ctrl chain from [pc] without touching the TCB, evaluating
    each [If] condition once. The caller either {e commits} the probe
    (landing is fusible: assign [p_pc + 1], [p_in_cpr], charge [p_ctrl])
    or abandons it untouched (landing stops the block: the next real
    dispatch replays the chain through its own fetch loop, preserving the
    unfused charging of trailing control cycles to the stop
    instruction's hop). *)

val landing : Isa.proc -> probe -> Isa.instr option
(** Instruction at [p_pc]; [None] when the probe ran off the end of the
    code (an implicit [Exit]). *)

(** {1 Dispatch-mix profiling} *)

val profile_instr : Sim.Stats.t -> Isa.instr -> unit
val profile_ctrl : Sim.Stats.t -> int -> unit
val profile_hop : Sim.Stats.t -> int -> unit
