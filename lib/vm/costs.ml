(* Floor charged for any dispatched instruction (1 cycle): guarantees
   simulated-time progress for control-flow-only loops. Module-level (not
   part of the table) because the trace compiler bakes it into compiled
   closures at program load. *)
let min_instr_cost = 1

type t = {
  cycles_per_second : int;
  mem_access : int;
  lock : int;
  unlock : int;
  atomic : int;
  barrier_entry : int;
  condvar : int;
  fork_thread : int;
  join : int;
  ctx_switch : int;
  quantum : int;
  alloc : int;
  free : int;
  reg_checkpoint : int;
  cow_first_write : int;
  record_per_word : int;
  restore_per_word : int;
  barrier_coord : int;
  token_pass : int;
  subthread_create : int;
  rol_insert : int;
  rol_retire : int;
  wal_append : int;
  wal_undo : int;
  steal : int;
  pause_resume : int;
  detection_latency : int;
  io_setup : int;
  io_per_word : int;
}

let default =
  {
    cycles_per_second = 10_000_000;
    mem_access = 2;
    lock = 40;
    unlock = 20;
    atomic = 30;
    barrier_entry = 120;
    condvar = 60;
    fork_thread = 30_000;
    join = 200;
    ctx_switch = 2_000;
    quantum = 100_000;
    alloc = 150;
    free = 100;
    reg_checkpoint = 150;
    cow_first_write = 4;
    record_per_word = 4;
    restore_per_word = 4;
    barrier_coord = 500;
    token_pass = 80;
    subthread_create = 250;
    rol_insert = 60;
    rol_retire = 60;
    wal_append = 30;
    wal_undo = 30;
    steal = 300;
    pause_resume = 3_000;
    detection_latency = 40_000;
    io_setup = 400;
    io_per_word = 1;
  }

let pp ppf c =
  Format.fprintf ppf
    "@[<v>cycles_per_second=%d mem_access=%d lock=%d unlock=%d atomic=%d@,\
     barrier_entry=%d condvar=%d fork_thread=%d join=%d ctx_switch=%d quantum=%d@,\
     alloc=%d free=%d reg_checkpoint=%d cow_first_write=%d record/word=%d restore/word=%d@,\
     barrier_coord=%d token_pass=%d subthread_create=%d rol_insert=%d rol_retire=%d@,\
     wal_append=%d wal_undo=%d steal=%d pause_resume=%d detection_latency=%d@,\
     io_setup=%d io_per_word=%d@]"
    c.cycles_per_second c.mem_access c.lock c.unlock c.atomic c.barrier_entry
    c.condvar c.fork_thread c.join c.ctx_switch c.quantum c.alloc c.free
    c.reg_checkpoint c.cow_first_write c.record_per_word c.restore_per_word
    c.barrier_coord c.token_pass c.subthread_create c.rol_insert c.rol_retire
    c.wal_append c.wal_undo c.steal c.pause_resume c.detection_latency
    c.io_setup c.io_per_word
