(* Fused-block pre-decoder and superblock trace compiler. See block.mli. *)

type cls = Fuse | Ctrl | Stop

let classify = function
  | Isa.Work _ | Isa.Opaque _ -> Fuse
  | Isa.Goto _ | Isa.If _ | Isa.Cpr_begin | Isa.Cpr_end -> Ctrl
  | Isa.Lock _ | Isa.Unlock _ | Isa.Barrier _ | Isa.Cond_wait _
  | Isa.Cond_signal _ | Isa.Atomic _ | Isa.Nonstd_atomic _ | Isa.Fork _
  | Isa.Join _ | Isa.Alloc _ | Isa.Free _ | Isa.Exit ->
    Stop

(* --- runtime switches ------------------------------------------------- *)

let enabled = ref (Sys.getenv_opt "GPRS_NO_FUSE" = None)
let fusing () = !enabled
let set_fusing b = enabled := b

let compile_enabled = ref (Sys.getenv_opt "GPRS_NO_COMPILE" = None)
let compiling () = !compile_enabled
let set_compiling b = compile_enabled := b

let profiling = ref false
let set_profiling b = profiling := b

(* --- compiled superblocks --------------------------------------------- *)

type deopt = Trace_end | Guard_fail | Horizon

type cursor = {
  mutable cu_tcb : Tcb.t;
  mutable cu_env : Env.t;
  mutable cu_take_acc : unit -> int;
  mutable cu_vnow : int;
  mutable cu_horizon : int;
  mutable cu_steps : int;
  mutable cu_ctrl : int;
  mutable cu_opaques : int;
  mutable cu_opaque_in_cpr : bool;
  mutable cu_entered_cpr : bool;
  mutable cu_deopt : deopt;
}

let make_cursor ~tcb ~env ~take_acc =
  {
    cu_tcb = tcb;
    cu_env = env;
    cu_take_acc = take_acc;
    cu_vnow = 0;
    cu_horizon = 0;
    cu_steps = 0;
    cu_ctrl = 0;
    cu_opaques = 0;
    cu_opaque_in_cpr = false;
    cu_entered_cpr = false;
    cu_deopt = Trace_end;
  }

type cell = {
  mutable body : cursor -> unit;
  mutable c_exec : bool;  (* has at least one compiled step *)
  mutable c_entry : bool;
      (* worth entering from the dispatch loop: the predicted trace loops
         or runs at least [min_entry_steps] compiled steps. Cells that
         fail the test keep their bodies (they are tail-called from
         worthy traces) but are not handed out by [trace_at] — entry
         setup does not amortize over a two-instruction trace. *)
}

let terminal_body cu = cu.cu_deopt <- Trace_end

(* Floor charged per instruction; must agree with [Sem.min_cost] (both
   are {!Costs.min_instr_cost}). *)
let min_instr_cost = Costs.min_instr_cost

let always_true : Isa.regs -> bool = fun _ -> true

let make_check guards =
  match guards with
  | [] -> always_true
  | [ (cond, expect) ] -> fun regs -> cond regs = expect
  | l ->
    let a = Array.of_list l in
    let n = Array.length a in
    fun regs ->
      let rec go i =
        i >= n
        ||
        let cond, expect = a.(i) in
        cond regs = expect && go (i + 1)
      in
      go 0

(* One compiled step: guard the predicted path, commit pc / CPR flag, run
   the landing instruction through the cursor's cached env, advance the
   clock by the pre-summed control cycles + the instruction's duration,
   then tail-call the next cell. Commit order matters: pc and the CPR
   flag are written {e before} [run] so the sanitizer hooks (which read
   [tcb.pc] and skip CPR-region accesses) see exactly what the
   interpreted chain shows them. *)
let make_step ~check ~nctrl ~cpr ~entered ~commit_pc ~cost ~run ~opaque ~next =
  fun cu ->
    if cu.cu_vnow >= cu.cu_horizon then cu.cu_deopt <- Horizon
    else begin
      let tcb = cu.cu_tcb in
      if not (check tcb.Tcb.regs) then cu.cu_deopt <- Guard_fail
      else begin
        tcb.Tcb.pc <- commit_pc;
        (match cpr with
        | Some b -> tcb.Tcb.in_cpr_region <- b
        | None -> ());
        if entered then cu.cu_entered_cpr <- true;
        let declared = cost tcb.Tcb.regs in
        run cu.cu_env;
        let d = declared + cu.cu_take_acc () in
        let d = if d < min_instr_cost then min_instr_cost else d in
        cu.cu_vnow <- cu.cu_vnow + nctrl + d;
        cu.cu_ctrl <- cu.cu_ctrl + nctrl;
        cu.cu_steps <- cu.cu_steps + 1;
        if opaque then begin
          cu.cu_opaques <- cu.cu_opaques + 1;
          cu.cu_opaque_in_cpr <- tcb.Tcb.in_cpr_region
        end;
        next.body cu
      end
    end

(* Bound on control transfers crossed while building one step's prefix:
   a chain longer than this (e.g. a Goto cycle with no fusible landing)
   is left uncompiled — the interpreted probe handles it. *)
let max_ctrl_prefix = 32

(* --- static pre-decode ------------------------------------------------ *)

type proc_blocks = {
  fuse_run : int array;
      (* fuse_run.(pc) = length of the maximal Fuse-class run starting at
         pc (0 when code.(pc) is not Fuse-class) *)
  n_blocks : int;
  lengths : (int * int) list;
  cells : cell option array;
      (* cells.(pc) = compiled superblock cell entered at boundary pc;
         entries exist for every reachable boundary, but only cells with
         [c_exec] (at least one compiled step) are handed out *)
  n_compiled : int;
}

type t = (string, proc_blocks) Hashtbl.t

(* Compile the superblock DAG for one proc: one cell per boundary pc,
   each cell's body a closure executing the control prefix (statically
   predicted: backward [If] taken, forward fall-through, with the
   direction recorded as a guard) plus the fusible landing instruction,
   tail-calling the cell at the landing's successor. Loops tie the knot
   — the cycle of cells is shared, nothing is unrolled. *)
let min_entry_steps = 2

let compile_proc (code : Isa.instr array) =
  let n = Array.length code in
  let cells = Array.make (n + 1) None in
  let succs = Array.make (n + 1) (-1) in
  let terminal = { body = terminal_body; c_exec = false; c_entry = false } in
  let rec walk pc =
    if pc < 0 || pc > n then terminal
    else
      match cells.(pc) with
      | Some c -> c
      | None ->
        let c = { body = terminal_body; c_exec = false; c_entry = false } in
        cells.(pc) <- Some c;
        build pc c;
        c
  and build pc c =
    let guards = ref [] in
    let rec follow p crossings ctrl cpr entered =
      if crossings > max_ctrl_prefix then None
      else if p < 0 || p >= n then None
      else
        match code.(p) with
        | Isa.Goto t -> follow t (crossings + 1) (ctrl + 1) cpr entered
        | Isa.If { cond; target } ->
          let take = target <= p in
          guards := (cond, take) :: !guards;
          follow
            (if take then target else p + 1)
            (crossings + 1) (ctrl + 1) cpr entered
        | Isa.Cpr_begin -> follow (p + 1) (crossings + 1) (ctrl + 1) (Some true) true
        | Isa.Cpr_end -> follow (p + 1) (crossings + 1) (ctrl + 1) (Some false) entered
        | Isa.Work { cost; run } -> Some (p, ctrl, cpr, entered, cost, run, false)
        | Isa.Opaque { cost; run } -> Some (p, ctrl, cpr, entered, cost, run, true)
        | _ -> None
    in
    match follow pc 0 0 None false with
    | None -> ()
    | Some (lpc, nctrl, cpr, entered, cost, run, opaque) ->
      let next = walk (lpc + 1) in
      let check = make_check (List.rev !guards) in
      succs.(pc) <- lpc + 1;
      c.body <-
        make_step ~check ~nctrl ~cpr ~entered ~commit_pc:(lpc + 1) ~cost ~run
          ~opaque ~next;
      c.c_exec <- true
  in
  (* Seed every pc so any boundary an engine can reach mid-loop has an
     enterable cell, not just static block heads. *)
  for pc = 0 to n do
    ignore (walk pc)
  done;
  (* Worth pass: mark entry points. Walking the predicted successor
     chain, a trace is worth entering if it revisits a boundary (a loop,
     which iterates inside the closure cycle) or makes at least
     [min_entry_steps] compiled steps before ending. Purely static, so
     the set of compiled entries is deterministic. *)
  let rec measure p steps seen =
    steps >= min_entry_steps
    || p >= 0 && p <= n
       &&
       match cells.(p) with
       | Some c when c.c_exec ->
         List.memq p seen || measure succs.(p) (steps + 1) (p :: seen)
       | _ -> false
  in
  let n_compiled = ref 0 in
  Array.iteri
    (fun pc slot ->
      match slot with
      | Some c when c.c_exec ->
        incr n_compiled;
        c.c_entry <- measure pc 0 []
      | _ -> ())
    cells;
  (cells, !n_compiled)

let analyze_proc (p : Isa.proc) =
  let code = p.Isa.code in
  let n = Array.length code in
  let fuse_run = Array.make (n + 1) 0 in
  for pc = n - 1 downto 0 do
    if classify code.(pc) = Fuse then fuse_run.(pc) <- 1 + fuse_run.(pc + 1)
  done;
  (* Static blocks: maximal Fuse runs additionally broken at branch
     targets, so each block is straight-line code with a unique entry. *)
  let target = Array.make (n + 1) false in
  Array.iter
    (fun i ->
      let mark t = if t >= 0 && t <= n then target.(t) <- true in
      match i with
      | Isa.Goto t -> mark t
      | Isa.If { target = t; _ } -> mark t
      | _ -> ())
    code;
  let hist = Hashtbl.create 8 in
  let n_blocks = ref 0 in
  let pc = ref 0 in
  while !pc < n do
    if fuse_run.(!pc) = 0 then incr pc
    else begin
      let len = ref 0 in
      let limit = fuse_run.(!pc) in
      while !len < limit && (!len = 0 || not target.(!pc + !len)) do
        incr len
      done;
      incr n_blocks;
      let cur = Option.value ~default:0 (Hashtbl.find_opt hist !len) in
      Hashtbl.replace hist !len (cur + 1);
      pc := !pc + !len
    end
  done;
  let cells, n_compiled = compile_proc code in
  {
    fuse_run;
    n_blocks = !n_blocks;
    lengths =
      List.sort compare (Hashtbl.fold (fun l c acc -> (l, c) :: acc) hist []);
    cells;
    n_compiled;
  }

(* Process-wide count of [analyze] calls. The service-mode program cache
   promises that a warm-cache dispatch never re-decodes or re-compiles;
   its bench and tests pin that promise by asserting this counter does
   not move across a warm phase. Atomic: analyses can run on pool worker
   domains. *)
let analyze_count = Atomic.make 0

let analyses () = Atomic.get analyze_count

let analyze (p : Isa.program) : t =
  Atomic.incr analyze_count;
  let t = Hashtbl.create (List.length p.Isa.procs) in
  List.iter
    (fun (name, proc) -> Hashtbl.replace t name (analyze_proc proc))
    p.Isa.procs;
  t

let proc_info (t : t) (p : Isa.proc) =
  match Hashtbl.find_opt t p.Isa.pname with
  | Some info -> info
  | None -> invalid_arg ("Block.proc_info: unknown proc " ^ p.Isa.pname)

let static_histogram (t : t) =
  let hist = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ info ->
      List.iter
        (fun (l, c) ->
          let cur = Option.value ~default:0 (Hashtbl.find_opt hist l) in
          Hashtbl.replace hist l (cur + c))
        info.lengths)
    t;
  List.sort compare (Hashtbl.fold (fun l c acc -> (l, c) :: acc) hist [])

let n_compiled (t : t) =
  Hashtbl.fold (fun _ info acc -> acc + info.n_compiled) t 0

let trace_at info pc =
  if pc < 0 || pc >= Array.length info.cells then None
  else
    match info.cells.(pc) with
    | Some c when c.c_entry -> Some c
    | _ -> None

let enter (c : cell) cu = c.body cu

(* --- control-flow probe ----------------------------------------------- *)

type probe = {
  p_pc : int;
  p_ctrl : int;
  p_in_cpr : bool;
  p_entered_cpr : bool;
}

let probe_ctrl (p : Isa.proc) ~pc ~regs ~in_cpr =
  let code = p.Isa.code in
  let n = Array.length code in
  let rec go pc ctrl in_cpr entered =
    if pc < 0 || pc >= n then
      { p_pc = pc; p_ctrl = ctrl; p_in_cpr = in_cpr; p_entered_cpr = entered }
    else
      match code.(pc) with
      | Isa.Goto target -> go target (ctrl + 1) in_cpr entered
      | Isa.If { cond; target } ->
        go (if cond regs then target else pc + 1) (ctrl + 1) in_cpr entered
      | Isa.Cpr_begin -> go (pc + 1) (ctrl + 1) true true
      | Isa.Cpr_end -> go (pc + 1) (ctrl + 1) false entered
      | _ ->
        { p_pc = pc; p_ctrl = ctrl; p_in_cpr = in_cpr; p_entered_cpr = entered }
  in
  go pc 0 in_cpr false

let landing (p : Isa.proc) pr =
  if pr.p_pc >= 0 && pr.p_pc < Array.length p.Isa.code then
    Some p.Isa.code.(pr.p_pc)
  else None

(* --- dispatch-mix profiling ------------------------------------------- *)

let profile_instr stats (i : Isa.instr) =
  if !profiling then Sim.Stats.incr stats ("dispatch." ^ Isa.instr_name i)

let profile_ctrl stats n =
  if !profiling && n > 0 then Sim.Stats.add stats "dispatch.ctrl" n

let hop_cap = 64

let profile_hop stats len =
  if !profiling then begin
    Sim.Stats.incr stats "fuse.hops";
    Sim.Stats.incr stats
      (if len > hop_cap then Printf.sprintf "fuse.len.%02d+" hop_cap
       else Printf.sprintf "fuse.len.%02d" len)
  end
