(* Fused-block pre-decoder. See block.mli for the contract. *)

type cls = Fuse | Ctrl | Stop

let classify = function
  | Isa.Work _ | Isa.Opaque _ -> Fuse
  | Isa.Goto _ | Isa.If _ | Isa.Cpr_begin | Isa.Cpr_end -> Ctrl
  | Isa.Lock _ | Isa.Unlock _ | Isa.Barrier _ | Isa.Cond_wait _
  | Isa.Cond_signal _ | Isa.Atomic _ | Isa.Nonstd_atomic _ | Isa.Fork _
  | Isa.Join _ | Isa.Alloc _ | Isa.Free _ | Isa.Exit ->
    Stop

(* --- runtime switches ------------------------------------------------- *)

let enabled = ref (Sys.getenv_opt "GPRS_NO_FUSE" = None)
let fusing () = !enabled
let set_fusing b = enabled := b

let profiling = ref false
let set_profiling b = profiling := b

(* --- static pre-decode ------------------------------------------------ *)

type proc_blocks = {
  fuse_run : int array;
      (* fuse_run.(pc) = length of the maximal Fuse-class run starting at
         pc (0 when code.(pc) is not Fuse-class) *)
  n_blocks : int;
  lengths : (int * int) list;
}

type t = (string, proc_blocks) Hashtbl.t

let analyze_proc (p : Isa.proc) =
  let code = p.Isa.code in
  let n = Array.length code in
  let fuse_run = Array.make (n + 1) 0 in
  for pc = n - 1 downto 0 do
    if classify code.(pc) = Fuse then fuse_run.(pc) <- 1 + fuse_run.(pc + 1)
  done;
  (* Static blocks: maximal Fuse runs additionally broken at branch
     targets, so each block is straight-line code with a unique entry. *)
  let target = Array.make (n + 1) false in
  Array.iter
    (fun i ->
      let mark t = if t >= 0 && t <= n then target.(t) <- true in
      match i with
      | Isa.Goto t -> mark t
      | Isa.If { target = t; _ } -> mark t
      | _ -> ())
    code;
  let hist = Hashtbl.create 8 in
  let n_blocks = ref 0 in
  let pc = ref 0 in
  while !pc < n do
    if fuse_run.(!pc) = 0 then incr pc
    else begin
      let len = ref 0 in
      let limit = fuse_run.(!pc) in
      while !len < limit && (!len = 0 || not target.(!pc + !len)) do
        incr len
      done;
      incr n_blocks;
      let cur = Option.value ~default:0 (Hashtbl.find_opt hist !len) in
      Hashtbl.replace hist !len (cur + 1);
      pc := !pc + !len
    end
  done;
  {
    fuse_run;
    n_blocks = !n_blocks;
    lengths =
      List.sort compare (Hashtbl.fold (fun l c acc -> (l, c) :: acc) hist []);
  }

let analyze (p : Isa.program) : t =
  let t = Hashtbl.create (List.length p.Isa.procs) in
  List.iter
    (fun (name, proc) -> Hashtbl.replace t name (analyze_proc proc))
    p.Isa.procs;
  t

let proc_info (t : t) (p : Isa.proc) =
  match Hashtbl.find_opt t p.Isa.pname with
  | Some info -> info
  | None -> invalid_arg ("Block.proc_info: unknown proc " ^ p.Isa.pname)

let static_histogram (t : t) =
  let hist = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ info ->
      List.iter
        (fun (l, c) ->
          let cur = Option.value ~default:0 (Hashtbl.find_opt hist l) in
          Hashtbl.replace hist l (cur + c))
        info.lengths)
    t;
  List.sort compare (Hashtbl.fold (fun l c acc -> (l, c) :: acc) hist [])

(* --- control-flow probe ----------------------------------------------- *)

type probe = {
  p_pc : int;
  p_ctrl : int;
  p_in_cpr : bool;
  p_entered_cpr : bool;
}

let probe_ctrl (p : Isa.proc) ~pc ~regs ~in_cpr =
  let code = p.Isa.code in
  let n = Array.length code in
  let rec go pc ctrl in_cpr entered =
    if pc < 0 || pc >= n then
      { p_pc = pc; p_ctrl = ctrl; p_in_cpr = in_cpr; p_entered_cpr = entered }
    else
      match code.(pc) with
      | Isa.Goto target -> go target (ctrl + 1) in_cpr entered
      | Isa.If { cond; target } ->
        go (if cond regs then target else pc + 1) (ctrl + 1) in_cpr entered
      | Isa.Cpr_begin -> go (pc + 1) (ctrl + 1) true true
      | Isa.Cpr_end -> go (pc + 1) (ctrl + 1) false entered
      | _ ->
        { p_pc = pc; p_ctrl = ctrl; p_in_cpr = in_cpr; p_entered_cpr = entered }
  in
  go pc 0 in_cpr false

let landing (p : Isa.proc) pr =
  if pr.p_pc >= 0 && pr.p_pc < Array.length p.Isa.code then
    Some p.Isa.code.(pr.p_pc)
  else None

(* --- dispatch-mix profiling ------------------------------------------- *)

let profile_instr stats (i : Isa.instr) =
  if !profiling then Sim.Stats.incr stats ("dispatch." ^ Isa.instr_name i)

let profile_ctrl stats n =
  if !profiling && n > 0 then Sim.Stats.add stats "dispatch.ctrl" n

let hop_cap = 64

let profile_hop stats len =
  if !profiling then begin
    Sim.Stats.incr stats "fuse.hops";
    Sim.Stats.incr stats
      (if len > hop_cap then Printf.sprintf "fuse.len.%02d+" hop_cap
       else Printf.sprintf "fuse.len.%02d" len)
  end
