type addr = int

(* Dirty tracking is page-granular: a write stamps its page with the
   current epoch, and snapshot images remember the epoch they were last
   synced at, so capture/restore touch only pages stamped since then. *)
let page_bits = 6
let page_words = 1 lsl page_bits

type t = {
  mutable data : int array;
  mutable static_brk : int;
  (* Free blocks sorted by address; first-fit with splitting. *)
  mutable free_list : (addr * int) list;
  allocated : (addr, int) Hashtbl.t;
  (* Monotone clock for dirty tracking. Bumped by [capture] and
     [restore_image]; never by plain writes. *)
  mutable epoch : int;
  (* Per-page epoch of the last write (or restore) landing in the page. *)
  mutable page_epoch : int array;
  (* Per-word epoch of the last counted first-touch; see [touch]. *)
  mutable word_epoch : int array;
  (* Dirty-page journal: each page stamped in an epoch is appended once
     (the [page_epoch] comparison in [write] dedupes within the epoch),
     so capture/restore walk exactly the pages written since an image's
     sync instead of scanning every page. [ep_start.(e - ep_base)] is the
     journal length when epoch [e] began; entries are complete for epochs
     >= [ep_base] (the journal resets when it outgrows the page table, at
     which point older images fall back to the full page scan). *)
  mutable dirty_log : int array;
  mutable dirty_len : int;
  mutable ep_start : int array;
  mutable ep_len : int;
  mutable ep_base : int;
  (* Generation-stamped scratch for deduping a journal walk that spans
     several epochs (a page may appear once per epoch). *)
  mutable mark : int array;
  mutable mark_gen : int;
}

let n_pages words = (words + page_words - 1) lsr page_bits

let create ~words =
  {
    data = Array.make words 0;
    static_brk = 0;
    free_list = [ (0, words) ];
    allocated = Hashtbl.create 64;
    epoch = 1;
    page_epoch = Array.make (n_pages words) 0;
    word_epoch = Array.make words 0;
    dirty_log = [||];
    dirty_len = 0;
    ep_start = [| 0 |];
    ep_len = 1;
    ep_base = 1;
    mark = Array.make (n_pages words) 0;
    mark_gen = 0;
  }

let words t = Array.length t.data

let read t a = t.data.(a)

let log_push t p =
  if t.dirty_len = Array.length t.dirty_log then begin
    let n = Stdlib.max 64 (2 * t.dirty_len) in
    let a = Array.make n 0 in
    Array.blit t.dirty_log 0 a 0 t.dirty_len;
    t.dirty_log <- a
  end;
  t.dirty_log.(t.dirty_len) <- p;
  t.dirty_len <- t.dirty_len + 1

let write t a v =
  t.data.(a) <- v;
  let p = a lsr page_bits in
  if t.page_epoch.(p) <> t.epoch then begin
    t.page_epoch.(p) <- t.epoch;
    log_push t p
  end

let push_ep_start t v =
  if t.ep_len = Array.length t.ep_start then begin
    let n = Stdlib.max 8 (2 * t.ep_len) in
    let a = Array.make n 0 in
    Array.blit t.ep_start 0 a 0 t.ep_len;
    t.ep_start <- a
  end;
  t.ep_start.(t.ep_len) <- v;
  t.ep_len <- t.ep_len + 1

(* Reset when the journal outgrows the page table by this factor: at that
   density the full page scan is cheaper anyway, and the log stays
   bounded on long runs with many retained epochs. *)
let journal_overflow_factor = 4

let advance_epoch t =
  t.epoch <- t.epoch + 1;
  if t.dirty_len > journal_overflow_factor * Array.length t.page_epoch then begin
    t.dirty_len <- 0;
    t.ep_base <- t.epoch;
    t.ep_len <- 0;
    push_ep_start t 0
  end
  else push_ep_start t t.dirty_len

let touch t a =
  if t.word_epoch.(a) < t.epoch then begin
    t.word_epoch.(a) <- t.epoch;
    true
  end
  else false

let touched t a = t.word_epoch.(a) >= t.epoch

type image = {
  img_data : int array;
  (* Epoch the image was last synced at; -1 means never (full copy). *)
  mutable synced_at : int;
}

let alloc_image t = { img_data = Array.make (words t) 0; synced_at = -1 }

let blit_pages ~src ~dst ~page_epoch ~since ~total =
  let np = n_pages total in
  let copied = ref 0 in
  for p = 0 to np - 1 do
    if page_epoch.(p) > since then begin
      let off = p lsl page_bits in
      let len = min page_words (total - off) in
      Array.blit src off dst off len;
      copied := !copied + len
    end
  done;
  !copied

(* Walk the deduped journal entries logged since epoch [since + 1],
   applying [f] to each distinct page. Caller must have checked
   [since + 1 >= t.ep_base]. The walk is bounded to the entries present
   when it started, so [f] may append new entries (restore re-logs). *)
let iter_dirty_since t ~since f =
  let start = t.ep_start.(since + 1 - t.ep_base) in
  let stop = t.dirty_len in
  t.mark_gen <- t.mark_gen + 1;
  let gen = t.mark_gen in
  for i = start to stop - 1 do
    let p = t.dirty_log.(i) in
    if t.mark.(p) <> gen then begin
      t.mark.(p) <- gen;
      f p
    end
  done

let capture t img =
  let total = words t in
  let copied =
    if img.synced_at < 0 then begin
      (* Never synced: every page is due — one whole-array blit. *)
      Array.blit t.data 0 img.img_data 0 total;
      total
    end
    else if img.synced_at + 1 >= t.ep_base then begin
      (* The journal covers every epoch since the sync: copy exactly the
         pages written since, no page-table scan. The deduped entry set
         equals {p | page_epoch.(p) > synced_at} — every stamp since the
         sync was logged, and every logged page was stamped — so the
         copied-word count (checkpoint-cost stats) is bit-identical to
         the scan's. *)
      let copied = ref 0 in
      iter_dirty_since t ~since:img.synced_at (fun p ->
          let off = p lsl page_bits in
          let len = min page_words (total - off) in
          Array.blit t.data off img.img_data off len;
          copied := !copied + len);
      !copied
    end
    else
      blit_pages ~src:t.data ~dst:img.img_data ~page_epoch:t.page_epoch
        ~since:img.synced_at ~total
  in
  img.synced_at <- t.epoch;
  advance_epoch t;
  copied

let restore_image t img =
  (* Every page written since the image was synced differs (or may
     differ) from the image; copy those back and re-stamp them (and
     re-log them, so later journal walks of other retained images see
     them as dirty too). *)
  let total = words t in
  let copied = ref 0 in
  let restore_page p =
    let off = p lsl page_bits in
    let len = min page_words (total - off) in
    Array.blit img.img_data off t.data off len;
    if t.page_epoch.(p) <> t.epoch then begin
      t.page_epoch.(p) <- t.epoch;
      log_push t p
    end;
    copied := !copied + len
  in
  if img.synced_at >= 0 && img.synced_at + 1 >= t.ep_base then
    iter_dirty_since t ~since:img.synced_at restore_page
  else begin
    let np = n_pages total in
    for p = 0 to np - 1 do
      if t.page_epoch.(p) > img.synced_at then restore_page p
    done
  end;
  advance_epoch t;
  !copied

let take_front t n =
  (* Shrink the lowest free block; used by [reserve] so static data sits at
     the bottom of memory. *)
  match t.free_list with
  | (a, sz) :: rest when a = t.static_brk && sz >= n ->
    t.free_list <- (if sz = n then rest else (a + n, sz - n) :: rest);
    t.static_brk <- t.static_brk + n;
    a
  | _ -> failwith "Mem.reserve: static area exhausted"

let reserve t n =
  if n <= 0 then invalid_arg "Mem.reserve: size must be positive";
  take_front t n

let alloc t n =
  if n <= 0 then invalid_arg "Mem.alloc: size must be positive";
  let rec fit acc = function
    | [] -> failwith "Mem.alloc: out of simulated memory"
    | (a, sz) :: rest when sz >= n ->
      let remainder = if sz = n then rest else (a + n, sz - n) :: rest in
      t.free_list <- List.rev_append acc remainder;
      Hashtbl.replace t.allocated a n;
      a
    | blk :: rest -> fit (blk :: acc) rest
  in
  fit [] t.free_list

let insert_free t a n =
  (* Coalesce with the left and right neighbors when adjacent, so the
     free list stays compact under churn instead of fragmenting. *)
  let merge_right (b, sz) = function
    | (c, cz) :: rest when b + sz = c -> (b, sz + cz) :: rest
    | rest -> (b, sz) :: rest
  in
  let rec go = function
    | (b, sz) :: rest when b + sz < a -> (b, sz) :: go rest
    | (b, sz) :: rest when b + sz = a -> merge_right (b, sz + n) rest
    | rest -> merge_right (a, n) rest
  in
  t.free_list <- go t.free_list

let free t a =
  match Hashtbl.find_opt t.allocated a with
  | None -> invalid_arg "Mem.free: not an allocated block"
  | Some n ->
    Hashtbl.remove t.allocated a;
    insert_free t a n

let block_size t a = Hashtbl.find_opt t.allocated a

let undo_alloc t a = free t a

let undo_free t a ~size =
  (* The freed block may have been coalesced into a larger free block;
     carve [a, a+size) back out of whichever block contains it. *)
  let rec go = function
    | [] -> invalid_arg "Mem.undo_free: block not free"
    | (b, sz) :: rest when b <= a && a + size <= b + sz ->
      let right =
        if a + size < b + sz then (a + size, b + sz - (a + size)) :: rest
        else rest
      in
      if a > b then (b, a - b) :: right else right
    | blk :: rest -> blk :: go rest
  in
  t.free_list <- go t.free_list;
  Hashtbl.replace t.allocated a size

(* Positional, idempotent replay of a logged Alloc: carve exactly
   [a, a+size) out of the free list (ARIES conditional redo — a no-op when
   the block is already live, e.g. its effect predates the checkpoint the
   redo scan started from). First-fit placement is deterministic, so
   replaying the logged address reconstructs the crash-time free list
   exactly; [static_brk] only moves at boot-time [reserve] and is restored
   from the checkpoint record. *)
let redo_alloc t a ~size =
  if not (Hashtbl.mem t.allocated a) then undo_free t a ~size

let live_blocks t =
  Hashtbl.fold (fun a n acc -> (a, n) :: acc) t.allocated []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Concrete allocator pieces, for the WAL checkpoint record: both lists
   address-sorted so the serialized form is canonical. *)
let alloc_parts t = (t.static_brk, t.free_list, live_blocks t)

let restore_alloc_parts t ~brk ~free ~used =
  t.static_brk <- brk;
  t.free_list <- free;
  Hashtbl.reset t.allocated;
  List.iter (fun (a, n) -> Hashtbl.replace t.allocated a n) used

type alloc_state = {
  a_static_brk : int;
  a_free_list : (addr * int) list;
  a_allocated : (addr * int) list;
}

let save_alloc t =
  {
    a_static_brk = t.static_brk;
    a_free_list = t.free_list;
    a_allocated = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.allocated [];
  }

let restore_alloc t s =
  t.static_brk <- s.a_static_brk;
  t.free_list <- s.a_free_list;
  Hashtbl.reset t.allocated;
  List.iter (fun (k, v) -> Hashtbl.replace t.allocated k v) s.a_allocated

let snapshot t =
  {
    data = Array.copy t.data;
    static_brk = t.static_brk;
    free_list = t.free_list;
    allocated = Hashtbl.copy t.allocated;
    epoch = t.epoch;
    page_epoch = Array.copy t.page_epoch;
    word_epoch = Array.copy t.word_epoch;
    dirty_log = Array.copy t.dirty_log;
    dirty_len = t.dirty_len;
    ep_start = Array.copy t.ep_start;
    ep_len = t.ep_len;
    ep_base = t.ep_base;
    mark = Array.make (Array.length t.page_epoch) 0;
    mark_gen = 0;
  }

let restore t ~from =
  if Array.length t.data = Array.length from.data then
    Array.blit from.data 0 t.data 0 (Array.length t.data)
  else t.data <- Array.copy from.data;
  t.static_brk <- from.static_brk;
  t.free_list <- from.free_list;
  Hashtbl.reset t.allocated;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.allocated k v) from.allocated;
  (* Every page may now differ from any retained image: stamp them all
     dirty at the current epoch, then advance it. Too many pages to
     journal — reset the log, so pre-restore images fall back to the
     full page scan (their pages all read as dirty anyway). *)
  if Array.length t.page_epoch <> n_pages (Array.length from.data) then
    t.page_epoch <- Array.make (n_pages (Array.length from.data)) 0;
  if Array.length t.word_epoch <> Array.length from.data then
    t.word_epoch <- Array.make (Array.length from.data) 0;
  if Array.length t.mark <> Array.length t.page_epoch then
    t.mark <- Array.make (Array.length t.page_epoch) 0;
  Array.fill t.page_epoch 0 (Array.length t.page_epoch) t.epoch;
  t.epoch <- t.epoch + 1;
  t.dirty_len <- 0;
  t.ep_base <- t.epoch;
  t.ep_len <- 0;
  push_ep_start t 0
