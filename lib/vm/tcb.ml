type wait =
  | Runnable
  | On_mutex of int
  | On_cond of { c : int; m : int }
  | Reacquire of int
  | On_barrier of int
  | On_join of int
  | On_token
  | Done

type t = {
  tid : int;
  group : int;
  proc : Isa.proc;
  mutable pc : int;
  regs : int array;
  mutable wait : wait;
  mutable joiners : int list;
  mutable in_cpr_region : bool;
  mutable lock_depth : int;
  mutable held_mutexes : int list;
  barrier_seq : int array;
  barrier_done : int array;
}

(* Flat unboxed snapshot: one int array, blit-copied whole. Layout:
   [0] pc, [1] CPR flag (0/1), [2] lock depth, [3 .. 3+R) registers,
   [3+R ..) barrier_seq. Register and barrier array lengths are fixed
   per program, so the offsets are stable across every snapshot of a
   run. *)
type saved = int array

let regs_off = 3

let create ~n_barriers ~tid ~group ~proc ~args =
  let regs = Array.make Isa.n_registers 0 in
  Array.blit args 0 regs 0 (Stdlib.min (Array.length args) Isa.n_registers);
  {
    tid;
    group;
    proc;
    pc = 0;
    regs;
    wait = Runnable;
    joiners = [];
    in_cpr_region = false;
    lock_depth = 0;
    held_mutexes = [];
    barrier_seq = Array.make n_barriers 0;
    barrier_done = Array.make n_barriers 0;
  }

let current_instr t =
  if t.pc >= 0 && t.pc < Array.length t.proc.Isa.code then
    Some t.proc.Isa.code.(t.pc)
  else None

let copy_state_into t s =
  let r = Array.length t.regs in
  s.(0) <- t.pc;
  s.(1) <- (if t.in_cpr_region then 1 else 0);
  s.(2) <- t.lock_depth;
  Array.blit t.regs 0 s regs_off r;
  Array.blit t.barrier_seq 0 s (regs_off + r) (Array.length t.barrier_seq)

let copy_state t =
  let s =
    Array.make (regs_off + Array.length t.regs + Array.length t.barrier_seq) 0
  in
  copy_state_into t s;
  s

(* The held set is kept sorted by descending mutex index — the order the
   old O(#mutexes) table scan produced — so checkpoint capture can alias
   the list and restore re-grants mutexes in the identical order. *)
let hold t m =
  let rec ins = function
    | [] -> [ m ]
    | x :: _ as l when x < m -> m :: l
    | x :: r when x > m -> x :: ins r
    | l -> l (* already held: holder maps are single-owner, keep idempotent *)
  in
  t.held_mutexes <- ins t.held_mutexes

let unhold t m =
  let rec rm = function
    | [] -> []
    | x :: r -> if x = m then r else x :: rm r
  in
  t.held_mutexes <- rm t.held_mutexes

let restore_state t s =
  let r = Array.length t.regs in
  t.pc <- s.(0);
  t.in_cpr_region <- s.(1) <> 0;
  t.lock_depth <- s.(2);
  Array.blit s regs_off t.regs 0 r;
  Array.blit s (regs_off + r) t.barrier_seq 0 (Array.length t.barrier_seq)

(* pc + regs + barrier_seq + one word for the packed flags — the same
   2 + R + B the boxed snapshot charged, so checkpoint-cost stats are
   unchanged. *)
let saved_words s = Array.length s - 1

let pp_wait ppf = function
  | Runnable -> Format.pp_print_string ppf "runnable"
  | On_mutex m -> Format.fprintf ppf "on_mutex(%d)" m
  | On_cond { c; m } -> Format.fprintf ppf "on_cond(%d,m%d)" c m
  | Reacquire m -> Format.fprintf ppf "reacquire(%d)" m
  | On_barrier b -> Format.fprintf ppf "on_barrier(%d)" b
  | On_join t -> Format.fprintf ppf "on_join(%d)" t
  | On_token -> Format.pp_print_string ppf "on_token"
  | Done -> Format.pp_print_string ppf "done"
