(** Cycle cost model of the simulated multiprocessor.

    All executors (plain Pthreads, coordinated CPR, GPRS) charge simulated
    cycles through this one table, so cross-engine comparisons reflect the
    mechanisms, not divergent accounting. Values are loosely calibrated to
    the paper's platform (a 2-socket Sandy Bridge Xeon): synchronization
    costs of tens-to-hundreds of cycles, OS thread creation of tens of
    thousands, a 400k-cycle exception-detection latency (§4 of the paper).

    [cycles_per_second] converts to the paper's wall-clock units; the
    default of 10^7 keeps full benchmark runs around a few simulated
    seconds while preserving the relative magnitudes that drive the
    results. *)

val min_instr_cost : int
(** Floor charged for any dispatched instruction (1 cycle). Exposed at
    module level — rather than in the table — because the trace compiler
    bakes it into compiled closures at program load; [Exec.Sem.min_cost]
    re-exports it for the interpreted paths. *)

type t = {
  cycles_per_second : int;  (** wall-clock conversion for rates *)
  mem_access : int;  (** per tracked shared-memory read or write *)
  lock : int;  (** uncontended mutex acquire *)
  unlock : int;
  atomic : int;  (** atomic read-modify-write *)
  barrier_entry : int;  (** per-thread program barrier cost *)
  condvar : int;  (** wait/signal bookkeeping *)
  fork_thread : int;  (** OS thread creation (paper baseline) *)
  join : int;
  ctx_switch : int;  (** context switch when oversubscribed *)
  quantum : int;  (** preemption quantum *)
  alloc : int;  (** runtime allocator operation *)
  free : int;
  reg_checkpoint : int;  (** record registers+stack at sub-thread start *)
  cow_first_write : int;  (** lazy per-word state capture *)
  record_per_word : int;  (** CPR: record one dirty word at a checkpoint *)
  restore_per_word : int;  (** restore one word during rollback *)
  barrier_coord : int;  (** CPR: per-thread coordination at a global barrier *)
  token_pass : int;  (** DEX: pass/check the ordering token *)
  subthread_create : int;  (** DEX: sub-thread generation *)
  rol_insert : int;  (** DEX: reorder-list entry insertion *)
  rol_retire : int;  (** REX: retirement of a sub-thread *)
  wal_append : int;  (** WAL: log one runtime operation *)
  wal_undo : int;  (** WAL: undo one logged operation *)
  steal : int;  (** load-balancing scheduler steal attempt *)
  pause_resume : int;  (** REX: pause/resume the program on recovery *)
  detection_latency : int;  (** exception occurrence -> report delay *)
  io_setup : int;  (** per file operation *)
  io_per_word : int;  (** per word transferred *)
}

val default : t

val pp : Format.formatter -> t -> unit
