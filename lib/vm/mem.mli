(** Simulated shared memory with a deterministic word allocator.

    Memory is a flat array of integer words. Workloads obtain regions
    through {!alloc}/{!free} — the simulated runtime allocator whose
    operations GPRS logs in its write-ahead log — or through static
    reservations made by the program builder.

    The memory itself performs no undo tracking: executors capture old
    values through their tracked {!Env.t} write hooks. What memory does
    provide is the allocator's inverse operations ({!undo_alloc},
    {!undo_free}) required for WAL-driven recovery, plus two snapshot
    mechanisms: page-granular dirty-tracked {!image}s ({!capture} /
    {!restore_image}) used by the coordinated-CPR engine, and deep
    {!snapshot}/{!restore} full copies used by tests and as the
    reference the incremental path is checked against. *)

type addr = int

type t

val create : words:int -> t
(** Fresh zeroed memory of [words] words, all managed by the allocator. *)

val words : t -> int

val read : t -> addr -> int
val write : t -> addr -> int -> unit

val reserve : t -> int -> addr
(** Static carve-out used by program setup (inputs, result areas); never
    freed, not WAL-relevant. *)

val alloc : t -> int -> addr
(** First-fit allocation from the free list; deterministic. Raises
    [Failure] when out of memory (simulated OOM is an executor-visible
    exception in tests). *)

val free : t -> addr -> unit
(** Returns a block to the free list. Raises [Invalid_argument] on a
    non-allocated address — workloads are expected to be correct. *)

val block_size : t -> addr -> int option
(** Size of a live allocated block, if [addr] is one. *)

val undo_alloc : t -> addr -> unit
(** Inverse of {!alloc} for WAL recovery: the block returns to the free
    list exactly as [free] would place it. *)

val undo_free : t -> addr -> size:int -> unit
(** Inverse of {!free} for WAL recovery: re-registers the block as
    allocated, carving it back out even if {!free} coalesced it into a
    larger free block. *)

val touch : t -> addr -> bool
(** First-touch test for checkpoint-interval write accounting: [true]
    exactly once per word per dirty-tracking epoch (epochs advance at
    {!capture}/{!restore_image}). Lets undo logs count unique dirtied
    words without materializing per-word entries. *)

val touched : t -> addr -> bool
(** Read-only membership probe for {!touch}: would a [touch] right now
    return [false]?  Mutates nothing, so speculative executors may ask
    it about another domain's memory to {e predict} first-touch charges
    (a racy read of the epoch stamp; the prediction is re-verified on
    the owner before it is believed). *)

type image
(** A page-granular snapshot of the data words, dirty-tracked: after the
    first (full) sync, re-syncing through {!capture} copies only pages
    written since. Syncs walk a dirty-page journal (one entry per page
    per epoch, recorded at write time) rather than scanning the page
    table, so a checkpoint costs O(pages written this interval), not
    O(total pages); the page-table scan remains as the fallback once the
    journal resets (it is dropped when it outgrows the page table).
    Copied-word counts are identical either way. Allocator metadata is
    not included — pair with {!save_alloc}. *)

val alloc_image : t -> image
(** A fresh, never-synced image: the next {!capture} into it copies every
    page (the full-copy fallback lives behind the same interface). *)

val capture : t -> image -> int
(** Sync [image] to the current memory contents and advance the dirty
    epoch. Returns the number of words copied. Images may be reused
    across checkpoints; a dropped snapshot's image can be recycled with
    the dirty tracking doing the right thing. *)

val restore_image : t -> image -> int
(** Overwrite memory with the image's contents: copies back exactly the
    pages written since the image was synced, re-stamps them dirty (so
    other retained images stay coherent), and advances the epoch.
    Returns the number of words copied. *)

val live_blocks : t -> (addr * int) list
(** Allocated blocks, sorted by address; used by tests and by CPR
    snapshots. *)

val redo_alloc : t -> addr -> size:int -> unit
(** ARIES conditional redo of a logged [Alloc]: carve exactly
    [addr, addr+size) back out of the free list and mark it live; no-op
    if the block is already allocated (its effect is in the checkpoint
    the redo scan started from). *)

val alloc_parts : t -> int * (addr * int) list * (addr * int) list
(** [(static_brk, free_list, allocated)] — the concrete allocator
    metadata, both lists address-sorted. Serialized into WAL checkpoint
    records so cold recovery can rebuild the allocator without replaying
    the whole log. *)

val restore_alloc_parts :
  t -> brk:int -> free:(addr * int) list -> used:(addr * int) list -> unit
(** Inverse of {!alloc_parts}: install a checkpointed allocator state. *)

type alloc_state
(** Opaque copy of the allocator metadata (free list + live blocks),
    excluding data words. CPR snapshots this cheaply at every checkpoint;
    data words are restored through undo logs instead. *)

val save_alloc : t -> alloc_state

val restore_alloc : t -> alloc_state -> unit

val snapshot : t -> t
(** Deep copy (data + allocator state). *)

val restore : t -> from:t -> unit
(** Overwrite [t] in place with the contents of a snapshot. *)
