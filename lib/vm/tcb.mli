(** Thread control blocks for virtual threads.

    One TCB per dynamically created virtual thread. The [wait] field says
    why a thread is not currently eligible to run; the executors own the
    transitions. Registers and [pc] are exactly the state captured by
    sub-thread checkpoints, so the TCB provides deep {!copy_state} /
    {!restore_state} for recovery. *)

type wait =
  | Runnable  (** ready or running; scheduling state lives in the executor *)
  | On_mutex of int  (** waiting to acquire the mutex *)
  | On_cond of { c : int; m : int }  (** asleep on condvar [c]; must reacquire [m] *)
  | Reacquire of int  (** woken from a condvar; waiting to reacquire the mutex *)
  | On_barrier of int
  | On_join of int  (** waiting for thread [tid] to exit *)
  | On_token  (** GPRS: paused at a sync point for its deterministic turn *)
  | Done

type t = {
  tid : int;
  group : int;  (** thread group for balance-aware ordering *)
  proc : Isa.proc;
  mutable pc : int;
  regs : int array;
  mutable wait : wait;
  mutable joiners : int list;  (** tids blocked in [Join] on this thread *)
  mutable in_cpr_region : bool;  (** between [Cpr_begin] and [Cpr_end] *)
  mutable lock_depth : int;  (** nested critical-section depth (flattening) *)
  mutable held_mutexes : int list;
      (** mutexes this thread currently holds, sorted by descending index.
          Maintained incrementally by {!hold}/{!unhold} at every holder
          transition (the executors' lock/unlock/hand-off paths) so that
          sub-thread checkpoints capture the held set in O(#held) instead
          of scanning the whole mutex table. *)
  barrier_seq : int array;
      (** per-barrier count of arrivals this thread has {e executed};
          restartable state (rolled back with checkpoints) *)
  barrier_done : int array;
      (** per-barrier count of episodes this thread has {e physically
          completed}; monotonic, never rolled back. When
          [barrier_seq.(b) < barrier_done.(b)] a (re-executed) arrival is
          for an episode that already released and must pass through —
          selective restart cannot re-fill a completed barrier. *)
}

type saved
(** Opaque snapshot of the restartable state (pc + registers + region and
    nesting flags), stored as one flat unboxed [int array] so recycling
    a snapshot is two [Array.blit]s with no per-field boxing. *)

val create :
  n_barriers:int -> tid:int -> group:int -> proc:Isa.proc -> args:int array -> t
(** A fresh thread with [args] loaded into the low registers. *)

val current_instr : t -> Isa.instr option
(** Instruction at [pc]; [None] past the end of the procedure, which the
    executors treat as an implicit [Exit]. *)

val copy_state : t -> saved

val copy_state_into : t -> saved -> unit
(** Overwrite a recycled snapshot in place (no allocation). The snapshot
    must come from a thread of the same program — register and barrier
    array lengths are fixed per program, so the blits are total. *)

val restore_state : t -> saved -> unit

val hold : t -> int -> unit
(** Record that this thread now holds mutex [m] (idempotent). *)

val unhold : t -> int -> unit
(** Record that this thread released mutex [m]. *)

val saved_words : saved -> int
(** Size of the snapshot in words, for checkpoint-cost accounting. *)

val pp_wait : Format.formatter -> wait -> unit
