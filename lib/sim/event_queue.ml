type 'a cell = {
  time : Time.cycles;
  prio : int;
  seq : int;
  payload : 'a;
  mutable cancelled : bool;
  mutable fired : bool;
}

type handle = H : 'a cell -> handle

type 'a t = {
  mutable heap : 'a cell array;
  (* Slots >= [size] are stale copies kept only to satisfy the array type. *)
  mutable size : int;
  mutable next_seq : int;
  mutable live : int;
  mutable clock : Time.cycles;
}

let create () = { heap = [||]; size = 0; next_seq = 0; live = 0; clock = Time.zero }

let is_empty q = q.live = 0
let length q = q.live
let now q = q.clock

let precedes a b =
  a.time < b.time
  || (a.time = b.time
      && (a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)))

let swap q i j =
  let tmp = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if precedes q.heap.(i) q.heap.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && precedes q.heap.(l) q.heap.(!smallest) then smallest := l;
  if r < q.size && precedes q.heap.(r) q.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let schedule ?(prio = 0) q ~time payload =
  assert (time >= q.clock);
  let cell =
    { time; prio; seq = q.next_seq; payload; cancelled = false; fired = false }
  in
  q.next_seq <- q.next_seq + 1;
  if q.size = Array.length q.heap then begin
    let cap = Stdlib.max 16 (2 * Array.length q.heap) in
    let heap' = Array.make cap cell in
    Array.blit q.heap 0 heap' 0 q.size;
    q.heap <- heap'
  end;
  q.heap.(q.size) <- cell;
  q.size <- q.size + 1;
  q.live <- q.live + 1;
  sift_up q (q.size - 1);
  H cell

let heap_size q = q.size

(* Rebuild the heap without the cancelled cells (Floyd heapify). Pop
   order is untouched: it is fully determined by the (time, seq) total
   order, not by heap shape. *)
let compact q =
  let n = ref 0 in
  for i = 0 to q.size - 1 do
    let c = q.heap.(i) in
    if not c.cancelled then begin
      q.heap.(!n) <- c;
      incr n
    end
  done;
  q.size <- !n;
  for i = (q.size / 2) - 1 downto 0 do
    sift_down q i
  done

let cancel q (H cell) =
  if not cell.cancelled && not cell.fired then begin
    cell.cancelled <- true;
    q.live <- q.live - 1;
    (* Long fault-injection sweeps cancel timers far faster than lazy
       deletion at the top drains them; compact once cancelled cells
       outnumber live ones so every sift stays proportional to the live
       population. *)
    if q.size >= 64 && q.size - q.live > q.size / 2 then compact q
  end

let remove_top q =
  let top = q.heap.(0) in
  q.size <- q.size - 1;
  if q.size > 0 then begin
    q.heap.(0) <- q.heap.(q.size);
    sift_down q 0
  end;
  top

let rec pop q =
  if q.size = 0 then None
  else begin
    let top = remove_top q in
    if top.cancelled then pop q
    else begin
      top.fired <- true;
      q.live <- q.live - 1;
      q.clock <- top.time;
      Some (top.time, top.payload)
    end
  end

let rec peek_time q =
  if q.size = 0 then None
  else if q.heap.(0).cancelled then begin
    (* Drop stale entries eagerly so peeking stays amortised O(1). *)
    ignore (remove_top q);
    peek_time q
  end
  else Some q.heap.(0).time
