type 'a cell = {
  mutable time : Time.cycles;
  mutable prio : int;
  mutable seq : int;
  mutable payload : 'a;
  mutable cancelled : bool;
  mutable fired : bool;
  (* Bumped when the cell is recycled; a handle carries the generation it
     was issued for, so a stale handle to a reused cell cannot cancel the
     cell's new occupant. *)
  mutable gen : int;
}

type handle = H : 'a cell * int -> handle

type 'a t = {
  mutable heap : 'a cell array;
  (* Slots >= [size] are stale copies kept only to satisfy the array type. *)
  mutable size : int;
  mutable next_seq : int;
  mutable live : int;
  mutable clock : Time.cycles;
  (* Popped (fired) cells are recycled through a small free list instead
     of re-allocating one record per event. Invisible to pop order: a
     reused cell is fully re-initialized at [schedule]. *)
  mutable free : 'a cell list;
  mutable n_free : int;
  mutable cells_alloc : int;
  mutable cells_recycled : int;
}

(* Recycling shares the pooled-hot-path kill switch with the sub-thread
   pool: GPRS_NO_POOL=1 restores the allocating behaviour everywhere. *)
let recycle_enabled = ref (Sys.getenv_opt "GPRS_NO_POOL" = None)
let recycling () = !recycle_enabled
let set_recycling b = recycle_enabled := b

let max_free = 64

let create () =
  {
    heap = [||];
    size = 0;
    next_seq = 0;
    live = 0;
    clock = Time.zero;
    free = [];
    n_free = 0;
    cells_alloc = 0;
    cells_recycled = 0;
  }

let cell_stats q = (q.cells_alloc, q.cells_recycled)

let is_empty q = q.live = 0
let length q = q.live
let now q = q.clock

let precedes a b =
  a.time < b.time
  || (a.time = b.time
      && (a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)))

let swap q i j =
  let tmp = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if precedes q.heap.(i) q.heap.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && precedes q.heap.(l) q.heap.(!smallest) then smallest := l;
  if r < q.size && precedes q.heap.(r) q.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let schedule ?(prio = 0) q ~time payload =
  assert (time >= q.clock);
  let cell =
    match q.free with
    | c :: rest ->
      q.free <- rest;
      q.n_free <- q.n_free - 1;
      q.cells_recycled <- q.cells_recycled + 1;
      c.time <- time;
      c.prio <- prio;
      c.seq <- q.next_seq;
      c.payload <- payload;
      c.cancelled <- false;
      c.fired <- false;
      c
    | [] ->
      q.cells_alloc <- q.cells_alloc + 1;
      {
        time;
        prio;
        seq = q.next_seq;
        payload;
        cancelled = false;
        fired = false;
        gen = 0;
      }
  in
  q.next_seq <- q.next_seq + 1;
  if q.size = Array.length q.heap then begin
    let cap = Stdlib.max 16 (2 * Array.length q.heap) in
    let heap' = Array.make cap cell in
    Array.blit q.heap 0 heap' 0 q.size;
    q.heap <- heap'
  end;
  q.heap.(q.size) <- cell;
  q.size <- q.size + 1;
  q.live <- q.live + 1;
  sift_up q (q.size - 1);
  H (cell, cell.gen)

let heap_size q = q.size

(* Drop every pending event without advancing the clock: the crash model
   loses all scheduled work, but simulated time is the time of the crash,
   not of the latest event that would have fired. Generation stamps are
   bumped so handles to discarded cells can never cancel a later
   occupant of the same slot. *)
let clear q =
  for i = 0 to q.size - 1 do
    let c = q.heap.(i) in
    c.gen <- c.gen + 1;
    c.cancelled <- false
  done;
  q.size <- 0;
  q.live <- 0

(* Rebuild the heap without the cancelled cells (Floyd heapify). Pop
   order is untouched: it is fully determined by the (time, seq) total
   order, not by heap shape. *)
let compact q =
  let n = ref 0 in
  for i = 0 to q.size - 1 do
    let c = q.heap.(i) in
    if not c.cancelled then begin
      q.heap.(!n) <- c;
      incr n
    end
  done;
  q.size <- !n;
  for i = (q.size / 2) - 1 downto 0 do
    sift_down q i
  done

let cancel q (H (cell, gen)) =
  if gen = cell.gen && (not cell.cancelled) && not cell.fired then begin
    cell.cancelled <- true;
    q.live <- q.live - 1;
    (* Long fault-injection sweeps cancel timers far faster than lazy
       deletion at the top drains them; compact once cancelled cells
       outnumber live ones so every sift stays proportional to the live
       population. *)
    if q.size >= 64 && q.size - q.live > q.size / 2 then compact q
  end

let remove_top q =
  let top = q.heap.(0) in
  q.size <- q.size - 1;
  if q.size > 0 then begin
    q.heap.(0) <- q.heap.(q.size);
    sift_down q 0
  end;
  top

let rec pop q =
  if q.size = 0 then None
  else begin
    let top = remove_top q in
    if top.cancelled then pop q
    else begin
      top.fired <- true;
      q.live <- q.live - 1;
      q.clock <- top.time;
      let r = Some (top.time, top.payload) in
      if !recycle_enabled && q.n_free < max_free then begin
        (* Invalidate outstanding handles, then park the record. *)
        top.gen <- top.gen + 1;
        q.free <- top :: q.free;
        q.n_free <- q.n_free + 1
      end;
      r
    end
  end

let rec peek_time q =
  if q.size = 0 then None
  else if q.heap.(0).cancelled then begin
    (* Drop stale entries eagerly so peeking stays amortised O(1). *)
    ignore (remove_top q);
    peek_time q
  end
  else Some q.heap.(0).time

(* O(heap) scan rather than a pop/re-push dance: callers use it once per
   speculative lease to guess what [peek_time] will say after [h] fires,
   and the heap holds a handful of per-context ticks plus a few timers. *)
let next_time_excluding q (H (c, gen)) =
  let best = ref max_int in
  for i = 0 to q.size - 1 do
    let cell = q.heap.(i) in
    if
      (not cell.cancelled)
      (* [handle] packs its cell existentially; physical identity is the
         only comparison needed, so unpack via [Obj.repr]. *)
      && (not (Obj.repr cell == Obj.repr c && cell.gen = gen))
      && cell.time < !best
    then best := cell.time
  done;
  if !best = max_int then None else Some !best
