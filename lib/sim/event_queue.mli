(** Pending-event set of the discrete-event simulator.

    A binary min-heap keyed by [(time, priority, sequence)]. The sequence
    number is a monotonically increasing tie-breaker so that events
    scheduled for the same instant and priority fire in insertion order —
    this makes the whole simulation deterministic without relying on heap
    internals. The priority component exists for fused block dispatch:
    engines schedule their per-context ticks at [1 + ctx] so that
    same-time ordering is a function of simulated state alone (system
    events first, then contexts in index order) rather than of {e when}
    each tick happened to be inserted — which is precisely what differs
    between a fused run (tick inserted at block start) and an unfused one
    (tick inserted at the last instruction boundary). Events may be
    cancelled in O(1) (lazy deletion). *)

type 'a t
(** A queue of events carrying payloads of type ['a]. *)

type handle
(** Names one scheduled event, for cancellation. *)

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int
(** Live (non-cancelled) event count. *)

val schedule : ?prio:int -> 'a t -> time:Time.cycles -> 'a -> handle
(** [schedule q ~time payload] inserts an event. [time] must be
    [>= now q] if the queue has ever been popped; this is asserted.
    [prio] (default 0) breaks same-time ties before insertion order:
    lower fires first. *)

val cancel : 'a t -> handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op.
    When cancelled cells come to outnumber live ones (beyond a small
    minimum size), the heap is compacted so sift costs track the live
    population rather than the cancellation history. *)

val clear : 'a t -> unit
(** Empty the queue without advancing {!now} — a whole-runtime crash
    discards every pending event but time stays at the crash instant.
    Outstanding handles are invalidated. *)

val heap_size : 'a t -> int
(** Physical heap occupancy, including not-yet-reclaimed cancelled
    cells; [length q <= heap_size q] always. For tests and
    diagnostics. *)

val recycling : unit -> bool
(** Whether popped cells are recycled through the per-queue free list
    (module-wide switch; defaults to on unless GPRS_NO_POOL is set).
    Recycling is invisible to pop order and to cancellation: a reused
    cell is fully re-initialized, and handles are generation-stamped so
    a stale handle can never cancel the cell's new occupant. *)

val set_recycling : bool -> unit

val cell_stats : 'a t -> int * int
(** [(allocated, recycled)] cell counts for this queue: how many
    [schedule] calls built a fresh record vs reused a popped one. *)

val pop : 'a t -> (Time.cycles * 'a) option
(** Removes and returns the earliest live event. [None] when empty. *)

val peek_time : 'a t -> Time.cycles option
(** Time of the earliest live event without removing it. *)

val next_time_excluding : 'a t -> handle -> Time.cycles option
(** Earliest live event time ignoring the event named by the handle —
    what {!peek_time} will answer once that event has fired. Engines
    leasing a speculative window at hop end use this to guess the
    scheduling component of the {e next} hop's deopt horizon (the tick
    they just scheduled is the excluded event); the guess is validated
    against the real horizon at commit time. A stale or fired handle
    excludes nothing. *)

val now : 'a t -> Time.cycles
(** Time of the last popped event (simulation clock); {!Time.zero}
    initially. *)
