(** Run statistics.

    Lightweight counters and summaries accumulated by the executors and
    reported by the experiment drivers. A {!t} is a string-keyed bag so
    subsystems can record their own measures (e.g. ["rol.max_depth"],
    ["cpr.checkpoints"], ["wal.appends"]) without a central registry. *)

type t

val create : unit -> t

val incr : t -> string -> unit
(** Add 1 to a counter, creating it at 0 first if needed. *)

val counter : t -> string -> int ref
(** The counter cell itself (created at 0 if absent). Dispatch loops
    cache this to keep per-instruction accounting off the hashtable. *)

val add : t -> string -> int -> unit
(** Add an arbitrary amount to a counter. *)

val set_max : t -> string -> int -> unit
(** Keep the running maximum of the values fed in. *)

val observe : t -> string -> float -> unit
(** Feed a sample into a summary (count / sum / min / max). *)

val get : t -> string -> int
(** Counter value; 0 when never touched. *)

val mean : t -> string -> float
(** Mean of observed samples; 0 when never observed. *)

val count : t -> string -> int
(** Number of samples fed into [observe]. *)

val merge_into : dst:t -> t -> unit
(** Fold counters and summaries of the source into [dst]. *)

val to_assoc : t -> (string * float) list
(** Flat snapshot, counters as floats, summaries as their means; sorted by
    key for stable output. *)

val pp : Format.formatter -> t -> unit
