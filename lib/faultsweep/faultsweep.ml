(* The JSON scenario-matrix fault driver (see faultsweep.mli for the
   schema). Structure mirrors the crash sweep: a cached fault-free pilot
   per run identity supplies the reference digest and a simulated-cycle
   budget, the armed run executes under that budget so a wedged schedule
   classifies as hung-timeout deterministically (no host clocks), and
   every outcome lands in the shared Recovery.Signature vocabulary.

   Service-seam rows (pool_submit / cache_insert / admission_enqueue)
   run through a private in-process daemon started with fault injection
   allowed; arming goes over the wire through the client's "fault" verb
   so the sweep exercises the protocol path, while fire counts are read
   from the (process-global) registry directly. *)

module Json = Server.Json
module Scenario = Server.Scenario
module Points = Faults.Points

let arm_rejected = "arm-rejected"

type arm_spec = {
  a_point : Points.point;
  a_action : Points.action;
  a_start : int;
  a_end : int;  (* max_int = unbounded *)
  a_delay : int;
  a_pinned : bool;  (* explicit start in the matrix: triggers leave it *)
}

type row = {
  r_name : string;
  r_arms : arm_spec list;
  r_scen : Scenario.t;
  r_service : bool;
}

(* --- matrix parsing ------------------------------------------------------ *)

let ( let* ) = Result.bind

let obj_fields = function Json.Obj kvs -> Some kvs | _ -> None

(* Scenario fields resolve scenario-first, then matrix defaults (Json
   accessors take the first binding of a key). *)
let merge sc defaults =
  match (obj_fields sc, obj_fields defaults) with
  | Some a, Some b -> Json.Obj (a @ b)
  | Some _, None -> sc
  | _ -> sc

let arm_of_json j =
  let* pname = Json.str "point" j in
  let* aname = Json.str "action" j in
  let* a_start = Json.int ~default:1 "start" j in
  let* a_end = Json.int ~default:0 "end" j in
  let* a_delay = Json.int ~default:50 "delay_us" j in
  match (Points.of_name pname, Points.action_of_name aname) with
  | None, _ -> Error (Printf.sprintf "unknown fault point %S" pname)
  | _, None -> Error (Printf.sprintf "unknown fault action %S" aname)
  | Some a_point, Some a_action ->
    Ok
      {
        a_point;
        a_action;
        a_start;
        a_end = (if a_end <= 0 then max_int else a_end);
        a_delay;
        a_pinned = Json.member "start" j <> None;
      }

let parse_scenario defaults idx j =
  let* name =
    Json.str ~default:(Printf.sprintf "scenario-%d" idx) "name" j
  in
  let m = merge j defaults in
  let* scen = Scenario.of_json m in
  let* () =
    match Workloads.Suite.find scen.Scenario.workload with
    | _ -> Ok ()
    | exception _ ->
      Error (Printf.sprintf "%s: unknown workload %S" name scen.workload)
  in
  let* via = Json.str ~default:"oneshot" "via" m in
  let* r_service =
    match via with
    | "service" -> Ok true
    | "oneshot" -> Ok false
    | v -> Error (Printf.sprintf "%s: via must be oneshot|service, got %S" name v)
  in
  let* arms =
    match Json.member "arms" m with
    | Some (Json.List js) ->
      List.fold_left
        (fun acc aj ->
          let* acc = acc in
          let* a = arm_of_json aj in
          Ok (a :: acc))
        (Ok []) js
      |> Result.map List.rev
    | Some _ -> Error (Printf.sprintf "%s: arms must be a list" name)
    | None -> (
      match Json.member "point" m with
      | None -> Ok []  (* unarmed control row *)
      | Some _ ->
        let* a = arm_of_json m in
        Ok [ a ])
  in
  let* triggers =
    match Json.member "triggers" m with
    | None -> Ok []
    | Some (Json.List js) ->
      List.fold_left
        (fun acc tj ->
          let* acc = acc in
          match tj with
          | Json.Int t when t >= 1 -> Ok (t :: acc)
          | _ -> Error (Printf.sprintf "%s: triggers must be ints >= 1" name))
        (Ok []) js
      |> Result.map List.rev
    | Some _ -> Error (Printf.sprintf "%s: triggers must be a list" name)
  in
  let base = { r_name = name; r_arms = arms; r_scen = scen; r_service } in
  match triggers with
  | [] -> Ok [ base ]
  | ts ->
    Ok
      (List.map
         (fun t ->
           {
             base with
             r_name = Printf.sprintf "%s@%d" name t;
             r_arms =
               List.map
                 (fun a ->
                   if a.a_pinned then a
                   else { a with a_start = t; a_end = t })
                 arms;
           })
         ts)

let parse_matrix j =
  let defaults =
    match Json.member "defaults" j with Some d -> d | None -> Json.Obj []
  in
  match Json.member "scenarios" j with
  | Some (Json.List js) ->
    let* rows =
      List.fold_left
        (fun acc (i, sj) ->
          let* acc = acc in
          let* rs = parse_scenario defaults i sj in
          Ok (List.rev_append rs acc))
        (Ok [])
        (List.mapi (fun i sj -> (i, sj)) js)
    in
    Ok (List.rev rows)
  | Some _ -> Error "scenarios must be a list"
  | None -> Error "matrix has no scenarios"

(* --- execution ----------------------------------------------------------- *)

let gprs_ordering = function
  | "round-robin" -> Gprs.Order.Round_robin
  | "weighted" -> Gprs.Order.Weighted
  | "recorded" -> Gprs.Order.Recorded
  | _ -> Gprs.Order.Balance_aware

let gprs_cfg ?max_cycles (s : Scenario.t) =
  {
    Gprs.Engine.default_config with
    n_contexts = s.contexts;
    seed = s.seed;
    ordering = gprs_ordering s.ordering;
    injector = Faults.Injector.config ~seed:s.seed s.rate;
    wal_stable = true;
    max_cycles;
  }

(* Recovery-side points must survive the crash to exercise their seams;
   everything else is disarmed before recovery so an unbounded-window
   crash arm cannot re-crash the resumed run forever. *)
let disarm_run_points () =
  Points.disarm_if (fun p _ ->
      match p with
      | Points.Recovery_analysis | Points.Recovery_redo | Points.Recovery_undo
      | Points.Cold_restart ->
        false
      | _ -> true)

let total_fires () =
  List.fold_left
    (fun acc st -> acc + st.Points.s_fires)
    0 (Points.status_all ())

(* Classify a one-shot gprs run under armed points. [want]/[budget] come
   from the fault-free pilot; [dg] is the workload digest. *)
let classify_gprs ~dg ~want ~budget cfg program =
  let module S = Recovery.Signature in
  let finish (r : Exec.State.run_result) =
    if total_fires () = 0 then (S.not_triggered, "armed fault never fired")
    else if r.Exec.State.dnc then (S.hung, "run exceeded cycle budget")
    else
      let got = dg r in
      if String.equal got want then (S.ok, "")
      else (S.wrong_digest, Printf.sprintf "digest %s, want %s" got want)
  in
  match Gprs.Engine.run ~lint:`Off { cfg with Gprs.Engine.max_cycles = budget } program with
  | r -> finish r
  | exception Points.Fault_error msg -> (S.refused_error, msg)
  | exception Gprs.Engine.Crashed dump -> (
    disarm_run_points ();
    match Recovery.recover dump with
    | exception Wal.Corrupt msg -> (S.refused_corrupt, "corrupt WAL image: " ^ msg)
    | exception Points.Fault_error msg -> (S.refused_error, msg)
    | a, _secs, resume -> (
      if a.Recovery.losers <> Gprs.Engine.dump_active_ids dump then
        (S.analysis_mismatch, "WAL analysis loser set <> live ROL at crash")
      else
        match resume () with
        | exception Points.Fault_error msg -> (S.refused_error, msg)
        | r ->
          if r.Exec.State.dnc then
            (S.hung, "recovered run did not complete in budget")
          else
            let got = dg r in
            if String.equal got want then (S.ok, "")
            else (S.wrong_digest, Printf.sprintf "digest %s, want %s" got want)))

let classify_other ~spec ~program ~want scen =
  let module S = Recovery.Signature in
  match Scenario.run ~spec ~program scen with
  | exception Points.Fault_error msg -> (S.refused_error, msg)
  | (o : Scenario.outcome) ->
    if total_fires () = 0 then (S.not_triggered, "armed fault never fired")
    else if o.dnc then (S.hung, "run did not complete")
    else if String.equal o.digest want then (S.ok, "")
    else (S.wrong_digest, Printf.sprintf "digest %s, want %s" o.digest want)

(* --- the private fault-enabled daemon ------------------------------------ *)

type service = { d : Server.Daemon.t; c : Server.Client.t }

let service_of = function
  | Some s -> s
  | None ->
    let d =
      Server.Daemon.start
        {
          Server.Daemon.default_config with
          addr = Server.Daemon.Tcp 0;
          jobs = 2;
          allow_fault = true;
        }
    in
    let c = Server.Client.connect ~retries:10 (Server.Daemon.bound_addr d) in
    { d; c }

let fault_verb c fields =
  let reply = Server.Client.fault c fields in
  match Json.str ~default:"" "event" reply with
  | Ok "fault" -> Ok ()
  | _ -> (
    match Json.str ~default:"fault verb failed" "error" reply with
    | Ok msg -> Error msg
    | Error msg -> Error msg)

let arm_via_client c (a : arm_spec) =
  fault_verb c
    ([
       ("verb", Json.Str "arm");
       ("point", Json.Str (Points.to_name a.a_point));
       ("fault", Json.Str (Points.action_name a.a_action));
       ("start", Json.Int a.a_start);
       ("delay_us", Json.Int a.a_delay);
     ]
    @ if a.a_end = max_int then [] else [ ("end", Json.Int a.a_end) ])

let classify_service ~want svc scen =
  let module S = Recovery.Signature in
  let reply = Server.Client.run_sync svc.c scen in
  match Json.str ~default:"" "event" reply with
  | Ok "done" -> (
    match (Json.str "digest" reply, Json.bool ~default:false "dnc" reply) with
    | Ok _, Ok true -> (S.hung, "run did not complete")
    | Ok got, Ok false ->
      if total_fires () = 0 then (S.not_triggered, "armed fault never fired")
      else if String.equal got want then (S.ok, "")
      else (S.wrong_digest, Printf.sprintf "digest %s, want %s" got want)
    | Error msg, _ | _, Error msg -> (S.refused_error, "bad done reply: " ^ msg))
  | Ok "error" ->
    let code = Result.value ~default:0 (Json.int ~default:0 "code" reply) in
    let msg =
      Result.value ~default:"" (Json.str ~default:"" "error" reply)
    in
    if code = 429 then (S.shed, msg) else (S.refused_error, msg)
  | _ -> (S.refused_error, "unexpected reply: " ^ Json.to_string reply)

(* --- run_matrix ---------------------------------------------------------- *)

let points_json () =
  Json.List
    (List.map
       (fun (st : Points.status) ->
         Json.Obj
           [
             ("point", Json.Str (Points.to_name st.s_point));
             ( "action",
               match st.s_action with
               | Some a -> Json.Str (Points.action_name a)
               | None -> Json.Null );
             ("hits", Json.Int st.s_hits);
             ("fires", Json.Int st.s_fires);
           ])
       (Points.status_all ()))

let arms_json arms =
  Json.List
    (List.map
       (fun a ->
         Json.Obj
           [
             ("point", Json.Str (Points.to_name a.a_point));
             ("action", Json.Str (Points.action_name a.a_action));
             ("start", Json.Int a.a_start);
             ("end", if a.a_end = max_int then Json.Null else Json.Int a.a_end);
             ("delay_us", Json.Int a.a_delay);
           ])
       arms)

let run_matrix ?(only = []) ?(seed = 0) ?(iters = 1) ?(log = fun _ -> ()) j =
  let* rows = parse_matrix j in
  let base_name n =
    match String.index_opt n '@' with
    | Some i -> String.sub n 0 i
    | None -> n
  in
  let rows =
    if only = [] then rows
    else
      List.filter
        (fun r -> List.mem r.r_name only || List.mem (base_name r.r_name) only)
        rows
  in
  if rows = [] then Error "no scenarios selected"
  else begin
    let iters = Stdlib.max 1 iters in
    (* Decoded programs keyed on build knobs; pilots on full run
       identity (seed included). Both caches are per-sweep. *)
    let programs = Hashtbl.create 8 in
    let pilots = Hashtbl.create 8 in
    let program_of (s : Scenario.t) =
      let key =
        Printf.sprintf "%s/n%d/s%.17g/%s" s.workload s.contexts s.scale s.grain
      in
      match Hashtbl.find_opt programs key with
      | Some v -> v
      | None ->
        let v = Scenario.build_program s in
        Hashtbl.add programs key v;
        v
    in
    let pilot_of ~spec ~program (s : Scenario.t) =
      let key = Scenario.coalesce_key s in
      match Hashtbl.find_opt pilots key with
      | Some v -> v
      | None ->
        let v =
          if s.engine = "gprs" then begin
            let _image, r = Recovery.pilot ~cfg:(gprs_cfg s) program in
            (spec.Workloads.Workload.digest r, r.Exec.State.sim_cycles)
          end
          else
            let o = Scenario.run ~spec ~program s in
            (o.Scenario.digest, o.Scenario.sim_cycles)
        in
        Hashtbl.add pilots key v;
        v
    in
    let svc = ref None in
    let results = ref [] in
    let counts = Hashtbl.create 8 in
    let bad = ref false in
    let run_one iter row =
      let eff_seed = row.r_scen.Scenario.seed + seed + iter in
      let scen =
        { row.r_scen with Scenario.seed = eff_seed; id = "fs-" ^ row.r_name }
      in
      Points.reset_all ();
      let spec, program = program_of scen in
      let want, pilot_cycles = pilot_of ~spec ~program scen in
      (* Arm. One-shot rows arm the registry directly; service rows go
         through the daemon's fault verb (same registry — the daemon is
         in-process — but the protocol path is part of what the sweep
         covers). *)
      let arm a =
        if row.r_service then begin
          let s = service_of !svc in
          svc := Some s;
          arm_via_client s.c a
        end
        else
          Points.arm ~start_hit:a.a_start ~end_hit:a.a_end ~delay_us:a.a_delay
            a.a_point a.a_action
      in
      let arm_err =
        List.fold_left
          (fun acc a ->
            match acc with
            | Some _ -> acc
            | None -> ( match arm a with Ok () -> None | Error m -> Some m))
          None row.r_arms
      in
      let signature, detail =
        match arm_err with
        | Some m -> (arm_rejected, m)
        | None ->
          if row.r_service then begin
            let s = service_of !svc in
            svc := Some s;
            classify_service ~want s scen
          end
          else if scen.engine = "gprs" then
            classify_gprs
              ~dg:spec.Workloads.Workload.digest
              ~want
              ~budget:(Some ((4 * pilot_cycles) + 10000))
              (gprs_cfg scen) program
          else classify_other ~spec ~program ~want scen
      in
      let fires = total_fires () in
      let pts = points_json () in
      Points.reset_all ();
      (* the daemon shares the registry, so clear its view too *)
      (match !svc with
      | Some s when row.r_service ->
        ignore (fault_verb s.c [ ("verb", Json.Str "reset_all") ])
      | _ -> ());
      if
        signature = Recovery.Signature.wrong_digest
        || signature = Recovery.Signature.analysis_mismatch
        || signature = arm_rejected
      then bad := true;
      Hashtbl.replace counts signature
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts signature));
      log (Printf.sprintf "%-32s %-24s %s" row.r_name signature detail);
      results :=
        Json.Obj
          [
            ("name", Json.Str row.r_name);
            ("iter", Json.Int iter);
            ("workload", Json.Str scen.workload);
            ("engine", Json.Str scen.engine);
            ("via", Json.Str (if row.r_service then "service" else "oneshot"));
            ("seed", Json.Int eff_seed);
            ("arms", arms_json row.r_arms);
            ("signature", Json.Str signature);
            ("detail", Json.Str detail);
            ("fires", Json.Int fires);
            ("points", pts);
          ]
        :: !results
    in
    let fin =
      Fun.protect ~finally:(fun () ->
          match !svc with
          | Some s ->
            Server.Client.close s.c;
            Server.Daemon.stop s.d
          | None -> ())
    in
    fin (fun () ->
        List.iter
          (fun row ->
            for iter = 0 to iters - 1 do
              run_one iter row
            done)
          rows);
    let summary =
      Hashtbl.fold (fun k v acc -> (k, Json.Int v) :: acc) counts []
      |> List.sort compare
    in
    let out =
      Json.Obj
        [
          ("seed", Json.Int seed);
          ("iters", Json.Int iters);
          ("rows", Json.Int (List.length !results));
          ("results", Json.List (List.rev !results));
          ("summary", Json.Obj summary);
          ("ok", Json.Bool (not !bad));
        ]
    in
    Ok (out, not !bad)
  end
