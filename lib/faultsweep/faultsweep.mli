(** The JSON scenario-matrix fault driver behind [gprs_run faultsweep].

    A matrix file names scenarios over the fault space
    (point × action × trigger count × workload × engine × seed); the
    driver runs each one — one-shot against the engines in-process, or
    through a private fault-enabled service daemon for the service-seam
    points — and classifies the outcome into the normalized
    {!Recovery.Signature} vocabulary: recovered-bit-identical,
    refused-corrupt, refused-error, shed, hung-timeout, not-triggered,
    or wrong-digest. Only wrong-digest (and a rejected arming) fails
    the sweep: the precise-restart contract is "bit-identical or an
    explicit refusal", never silent divergence.

    Matrix schema (all scenario fields except [name] optional; absent
    ones fall back to [defaults], then to the CLI run defaults):

    {v
    { "defaults": { "workload": "histogram", "engine": "gprs",
                    "contexts": 8, "scale": 0.05, "seed": 1 },
      "scenarios": [
        { "name": "wal-append-crash",
          "point": "wal_append", "action": "crash",
          "triggers": [3, 25],          // expands to start=end=t rows
          "workload": "histogram" },
        { "name": "ckpt-window",
          "arms": [                      // multi-point arming
            { "point": "checkpoint_end", "action": "skip" },
            { "point": "wal_append", "action": "crash", "start": 40 } ],
          "via": "oneshot" },            // or "service"
        ... ] }
    v}

    Determinism: with the same matrix and seed the results JSON is
    byte-identical — it carries no wall-clock fields (hang detection is
    a simulated-cycle budget derived from each scenario's fault-free
    pilot, not a host timeout). *)

val run_matrix :
  ?only:string list ->
  ?seed:int ->
  ?iters:int ->
  ?log:(string -> unit) ->
  Server.Json.t ->
  (Server.Json.t * bool, string) result
(** Execute the matrix. [only] keeps scenarios whose name is listed
    (post-expansion names match on their base name too); [seed]
    (default 0) offsets every scenario's run seed — replaying a seed
    reproduces the sweep byte-for-byte; [iters] (default 1) runs each
    scenario that many times at consecutive seed offsets. [log] receives
    one progress line per row. Returns the results JSON and an all-clear
    flag ([false] when any row classified wrong-digest, analysis
    mismatch, or had its arming rejected). [Error] on a malformed
    matrix. *)
