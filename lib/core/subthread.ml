type alias =
  | Mutex of int
  | Atomic_var of int
  | Condvar of int
  | Barrier_obj of int
  | Thread_edge of int

type status = Running | Complete of int | Squashed

type t = {
  mutable id : int;
  mutable tid : int;
  mutable started_at : int;
  mutable status : status;
  (* Alias sets are bitsets over small-int alias codes: 32 codes per
     word, [alias_words] words in use. [shares_alias] is a word-wise AND
     over the shorter prefix and [add_alias] is truly idempotent (the old
     list representation only deduped against the head). *)
  mutable alias_bits : int array;
  mutable alias_words : int;
  mutable global_dep : bool;
  mutable cpr_region : bool;
  saved : Vm.Tcb.saved;
  mutable held_locks : int list;
  undo : Exec.Undo_log.t;
  mutable forked : int list;
  mutable pending_mutex : int option;
  mutable freed_blocks : (int * int) list;
}

(* --- alias encoding --------------------------------------------------- *)

(* Injective small-int code: object id x kind. Object ids are dense and
   small (they index the program's sync-object tables), so the bitsets
   stay a handful of words. *)
let alias_code = function
  | Mutex m -> m * 5
  | Atomic_var v -> (v * 5) + 1
  | Condvar c -> (c * 5) + 2
  | Barrier_obj b -> (b * 5) + 3
  | Thread_edge t -> (t * 5) + 4

let alias_decode c =
  let obj = c / 5 in
  match c mod 5 with
  | 0 -> Mutex obj
  | 1 -> Atomic_var obj
  | 2 -> Condvar obj
  | 3 -> Barrier_obj obj
  | _ -> Thread_edge obj

let bits_initial = 4

let make ~id ~tid ~now ~saved =
  {
    id;
    tid;
    started_at = now;
    status = Running;
    alias_bits = Array.make bits_initial 0;
    alias_words = 0;
    global_dep = false;
    cpr_region = false;
    saved;
    held_locks = [];
    undo = Exec.Undo_log.create ();
    forked = [];
    pending_mutex = None;
    freed_blocks = [];
  }

let add_alias t a =
  let c = alias_code a in
  let w = c lsr 5 in
  if w >= Array.length t.alias_bits then begin
    let cap = ref (Array.length t.alias_bits) in
    while !cap <= w do
      cap := !cap * 2
    done;
    let bits = Array.make !cap 0 in
    Array.blit t.alias_bits 0 bits 0 t.alias_words;
    t.alias_bits <- bits
  end;
  t.alias_bits.(w) <- t.alias_bits.(w) lor (1 lsl (c land 31));
  if w >= t.alias_words then t.alias_words <- w + 1

let mem_alias t a =
  let c = alias_code a in
  let w = c lsr 5 in
  w < t.alias_words && t.alias_bits.(w) land (1 lsl (c land 31)) <> 0

let clear_aliases t =
  Array.fill t.alias_bits 0 t.alias_words 0;
  t.alias_words <- 0

let aliases t =
  let acc = ref [] in
  for w = t.alias_words - 1 downto 0 do
    let word = t.alias_bits.(w) in
    if word <> 0 then
      for b = 31 downto 0 do
        if word land (1 lsl b) <> 0 then
          acc := alias_decode ((w lsl 5) lor b) :: !acc
      done
  done;
  !acc

let shares_alias a b =
  a.global_dep || b.global_dep
  ||
  let n = Stdlib.min a.alias_words b.alias_words in
  let rec go i =
    i < n && (a.alias_bits.(i) land b.alias_bits.(i) <> 0 || go (i + 1))
  in
  go 0

(* --- accumulated alias sets (selective-squash walk) ------------------- *)

type aset = {
  mutable abits : int array;
  mutable awords : int;
  mutable aglobal : bool;
}

let aset_create () = { abits = Array.make 8 0; awords = 0; aglobal = false }

let aset_add set sub =
  if sub.global_dep then set.aglobal <- true;
  if sub.alias_words > Array.length set.abits then begin
    let cap = ref (Array.length set.abits) in
    while !cap < sub.alias_words do
      cap := !cap * 2
    done;
    let bits = Array.make !cap 0 in
    Array.blit set.abits 0 bits 0 set.awords;
    set.abits <- bits
  end;
  for w = 0 to sub.alias_words - 1 do
    set.abits.(w) <- set.abits.(w) lor sub.alias_bits.(w)
  done;
  if sub.alias_words > set.awords then set.awords <- sub.alias_words

let aset_shares set sub =
  set.aglobal || sub.global_dep
  ||
  let n = Stdlib.min set.awords sub.alias_words in
  let rec go i =
    i < n && (set.abits.(i) land sub.alias_bits.(i) <> 0 || go (i + 1))
  in
  go 0

(* --- status ----------------------------------------------------------- *)

let is_complete t = match t.status with Complete _ -> true | Running | Squashed -> false

let completion_time t =
  match t.status with Complete c -> Some c | Running | Squashed -> None

(* --- pooling ---------------------------------------------------------- *)

let pool_enabled = ref (Sys.getenv_opt "GPRS_NO_POOL" = None)
let pooling () = !pool_enabled
let set_pooling b = pool_enabled := b

type pool = {
  mutable free : t list;
  mutable hits : int;
  mutable misses : int;
  mutable live : int;
  mutable live_hw : int;
}

let pool_create () = { free = []; hits = 0; misses = 0; live = 0; live_hw = 0 }

let acquire p ~id ~tid ~now ~(tcb : Vm.Tcb.t) =
  p.live <- p.live + 1;
  if p.live > p.live_hw then p.live_hw <- p.live;
  match p.free with
  | sub :: rest when !pool_enabled ->
    p.free <- rest;
    p.hits <- p.hits + 1;
    sub.id <- id;
    sub.tid <- tid;
    sub.started_at <- now;
    sub.status <- Running;
    Vm.Tcb.copy_state_into tcb sub.saved;
    sub
  | _ ->
    p.misses <- p.misses + 1;
    make ~id ~tid ~now ~saved:(Vm.Tcb.copy_state tcb)

let release p sub =
  p.live <- p.live - 1;
  if !pool_enabled then begin
    (* Scrub at release, not acquire: a parked record must reference
       nothing from its previous life (undo pre-images, freed blocks,
       forked tids), so squashed state can never be resurrected through
       the pool. *)
    clear_aliases sub;
    sub.global_dep <- false;
    sub.cpr_region <- false;
    sub.held_locks <- [];
    Exec.Undo_log.reset sub.undo;
    sub.forked <- [];
    sub.pending_mutex <- None;
    sub.freed_blocks <- [];
    p.free <- sub :: p.free
  end

let pool_stats p = (p.hits, p.misses, p.live_hw)

(* --- pretty-printing -------------------------------------------------- *)

let pp_alias ppf = function
  | Mutex m -> Format.fprintf ppf "m%d" m
  | Atomic_var v -> Format.fprintf ppf "a%d" v
  | Condvar c -> Format.fprintf ppf "c%d" c
  | Barrier_obj b -> Format.fprintf ppf "b%d" b
  | Thread_edge t -> Format.fprintf ppf "t%d" t

let pp ppf t =
  Format.fprintf ppf "sub#%d(tid=%d,%s,[%a]%s)" t.id t.tid
    (match t.status with
    | Running -> "running"
    | Complete c -> Printf.sprintf "complete@%d" c
    | Squashed -> "squashed")
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       pp_alias)
    (aliases t)
    (if t.global_dep then ",⊤" else "")
