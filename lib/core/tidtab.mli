(** Growable tid-indexed tables.

    Dense per-thread maps for the engine hot path: tids are allocated
    monotonically from 0, so an array indexed by tid replaces the
    per-tid Hashtbls (current sub-thread, pending delay, queued and
    destroyed flags) with allocation-free O(1) access. Reads of an
    index never written return the default; writes grow the table. *)

type 'a t

val create : ?capacity:int -> 'a -> 'a t
(** [create default] — every index initially maps to [default]. *)

val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit
