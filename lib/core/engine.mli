(** The GPRS runtime: Deterministic Execution Engine (DEX) + Restart
    Engine (REX).

    DEX intercepts the program's synchronization operations and divides
    its threads into ordered sub-threads (§3.2 of the paper):

    - A sub-thread ends, and a new one begins, at each fork, join, lock,
      barrier, condition wait/signal, atomic operation and thread exit.
      Unlocks do {e not} split (critical-section optimization), and nested
      critical sections are flattened into the outermost one.
    - A thread arriving at a {e communication} operation (lock, atomic,
      condition wait/signal, barrier) parks until the ordering token
      designates it; the token follows the configured {!Order.scheme}.
      The grant performs the operation — so the communication order
      equals the token order — checkpoints the thread state into the new
      sub-thread's history-buffer entry, and inserts the entry into the
      ROL. Fork, join and exit boundaries are processed on arrival: they
      do not communicate through shared objects (the fork order is the
      parent's program order; join/exit pair through the thread edge), so
      data-parallel programs incur no ordering waits — matching the
      paper's near-zero ordering overhead for fork/join programs.
    - Sub-threads are executed by a load-balancing work-stealing pool of
      one worker per hardware context; virtual-thread creation under GPRS
      costs a sub-thread creation, not an OS thread (DEX intercepts
      [pthread_create]).
    - Runtime operations (allocator calls, ROL inserts, thread creation)
      are logged to the WAL on behalf of the executing sub-thread.

    REX retires completed ROL heads once the exception-detection latency
    has passed (output commit), and recovers from reported exceptions:

    - {e Selective restart}: squash the excepted sub-thread plus the
      younger sub-threads reachable from it through alias sharing, program
      order and fork edges; undo their architectural writes (history
      buffer) and runtime operations (WAL), reset their threads to the
      oldest squashed checkpoint, and restart them — unaffected
      sub-threads keep running.
    - {e Basic recovery}: squash the excepted sub-thread and {e all}
      younger sub-threads, stalling the whole machine during recovery.
    - {e Hybrid recovery}: [Cpr_begin]/[Cpr_end] regions execute as single
      sub-threads with interception suppressed, so data-race-prone or
      non-standard-API code (Canneal) recovers at region granularity.
    - Exceptions striking an idle context corrupt the runtime itself and
      are repaired by walking the WAL (§3.4), with no user work lost.

    Statistics are reported under ["gprs.*"] and ["wal.*"]. *)

type recovery = Selective | Basic

type config = {
  n_contexts : int;
  seed : int;
  max_cycles : int option;  (** DNC budget *)
  ordering : Order.scheme;
  recovery : recovery;
  injector : Faults.Injector.config;
  livelock_squashes : int;
      (** squashed sub-threads since the last retirement before the run is
          declared DNC *)
  costs : Vm.Costs.t;
  revoke_contexts : bool;
      (** treat [Resource_revocation] exceptions as permanent hardware
          loss: the struck context is retired and execution continues on
          the rest (the paper's §3.5 fatal-exception extension); all
          contexts lost means DNC *)
  wal_stable : bool;
      (** serialize the WAL to an in-memory stable-storage image (see
          {!Wal.stable_image}); implied by either crash trigger below.
          Arming it changes no simulated cycle and no program output —
          appends already charge their cycles whether or not an image is
          kept *)
  crash_lsn : int option;
      (** crash the runtime immediately after WAL op record [lsn] reaches
          stable storage: {!run} raises {!Crashed} carrying the durable
          remains. The crash sweep enumerates this over every LSN *)
  crash_cycle : int option;
      (** crash at a simulated cycle instead of a WAL boundary — the
          schedule-comparison form used to hit GPRS and P-CPR at the same
          points *)
}

val default_config : config
(** 24 contexts, balance-aware ordering, selective restart, no faults. *)

(** {2 Crash model}

    A [Crash] (whole-runtime failure) at cycle [c] discards everything
    volatile: the scheduler's queues, the live WAL entries, the ROL ring,
    the engine's context/tick/sub-thread tables. What survives is what
    the paper's fault model calls stable: the serialized WAL image, the
    architectural state (memory words, atomics, files, TCBs — protected
    by the history buffers of in-flight sub-threads), those in-flight
    sub-threads' history-buffer checkpoints and undo logs, the ordering
    state, and the fault injector's stream. {!cold_restart} rebuilds a
    running engine from those remains after {!Recovery} has performed
    ARIES analysis/redo planning over the WAL image. *)

type crash_dump
(** The durable remains of a crashed run. *)

exception Crashed of crash_dump
(** Raised by {!run} when a configured crash trigger fires. *)

val dump_cycle : crash_dump -> int
(** Simulated cycle at which the crash struck. *)

val dump_wal_image : crash_dump -> string
(** The WAL's stable-storage image as of the crash. *)

val dump_active_ids : crash_dump -> int list
(** Orders of the in-flight (unretired) sub-threads, ascending — the
    ground truth the WAL analysis' loser set is cross-checked against. *)

val cold_restart :
  crash_dump ->
  redo:(Vm.Mem.t -> int) ->
  loser_ops:Wal.entry list ->
  replayed:int ->
  next_sub:int ->
  unit ->
  Exec.State.run_result
(** Rebuild a running engine from a crash dump and resume to completion.
    [redo] re-applies the retired-prefix allocator operations (checkpoint
    image + conditional LSN-order replay; returns ops applied);
    [loser_ops] are the in-flight sub-threads' log records in reverse LSN
    order, to be undone; [replayed] sizes the modeled repair duration;
    [next_sub] continues the order-id sequence past every id the log
    granted. Partial application up to [()] performs the whole recovery —
    the returned thunk only re-enters the event loop, so callers can time
    recovery separately from re-execution. *)

val run :
  ?lint:[ `Off | `Warn | `Strict ] ->
  ?wal_out:string ref ->
  ?blocks:Vm.Block.t ->
  config ->
  Vm.Isa.program ->
  Exec.State.run_result
(** Execute a program under GPRS.

    Before execution the program is statically analyzed by GPRS-lint
    ({!Lint.Check.program}) for lock discipline, deadlock-order cycles
    and hybrid-recovery region soundness:

    - [`Warn] (default): render any warning/error findings to stderr
      once, then run anyway;
    - [`Strict]: raise {!Lint.Check.Rejected} with the error-severity
      findings instead of running — in particular a [Nonstd_atomic]
      reachable outside a CPR region (which would make hybrid recovery
      unsound, previously only counted at runtime under the
      ["gprs.nonstd_unprotected"] stat) refuses to start;
    - [`Off]: skip the analysis (for callers that linted already).

    [wal_out], on normal completion with a stable WAL, receives the final
    serialized image (the fault-free pilot the crash sweep enumerates
    crash points from). *)
