(** Deterministic ordering schedules for sub-threads (the order enforcer).

    The token designates which thread may pass its next synchronization
    point; passing a sync point consumes one turn and advances the token.
    Three schemes from §3.2 of the paper:

    - {!Round_robin}: a uniform rotation over all live threads in creation
      order — simple, but it dissolves pipeline parallelism (the paper's
      Pbzip2 example, Fig. 7a).
    - {!Balance_aware}: threads are rotated hierarchically — round-robin
      across {e thread groups} (one group per computation type, supplied
      through the extended create API), and round-robin among the threads
      within a group (Fig. 7b).
    - {!Weighted}: balance-aware, but group [g] receives
      [group_weights.(g)] consecutive turns per rotation, letting early
      pipeline stages run ahead (the paper's 4:4:1 Pbzip2 weighting).

    Threads that cannot take a turn until some other thread's turn occurs
    (condition-variable sleepers, barrier waiters, joiners) are marked
    ineligible and are skipped; a computing thread is eligible, so the
    token waits for it — that wait is the ordering overhead the paper
    measures. *)

type scheme =
  | Round_robin
  | Balance_aware
  | Weighted
  | Recorded
      (** The paper's §2.4 alternative: no order is {e enforced} — threads
          pass synchronization points on arrival — but the dynamic order
          is {e recorded} (sub-thread ids are allocated in arrival order),
          which still supports selective restart. Determinism across runs
          is forfeited; the ordering wait disappears. Under this scheme
          the rotation machinery is inert: {!holder} is always [None]. *)

type t

val create : scheme -> group_weights:int array -> t

val scheme : t -> scheme

val add_thread : t -> tid:int -> group:int -> unit
(** Threads join their group's rotation in creation order. Under
    {!Round_robin} the group is ignored (a single rotation). *)

val remove_thread : t -> int -> unit
(** Thread exited or was destroyed by recovery. *)

val set_eligible : t -> int -> bool -> unit

val is_eligible : t -> int -> bool

val mem : t -> int -> bool
(** Is the thread currently in the order table? Cold restart uses this to
    tell a cleanly-exited thread from one whose crash struck between its
    [Done] transition and its removal from the table. *)

val live_count : t -> int

val holder : t -> int option
(** The designated thread: the first eligible live thread at or after the
    cursor, scanning groups in rotation order. [None] if no thread is
    eligible. Does not mutate the rotation. *)

val advance : t -> granted:int -> unit
(** Consume the turn just granted to [granted]: the thread's group cursor
    moves past it and, when the group's turn budget is exhausted, the
    rotation proceeds to the next group. *)
