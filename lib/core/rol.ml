(* Id-indexed growable ring. Sub-thread ids are allocated monotonically,
   so a live entry's slot is [id land mask] and the live span [lo, hi)
   never exceeds the capacity: insert, find, remove, head and retire are
   all O(1) (head amortized — [lo] advances lazily past removed slots,
   once per id ever inserted). *)

type t = {
  mutable buf : Subthread.t option array;  (* length is a power of two *)
  mutable mask : int;
  mutable lo : int;  (* no live entry has id < lo *)
  mutable hi : int;  (* one past the largest id ever inserted *)
  mutable live : int;
  mutable hw : int;
}

let initial_capacity = 256

let create () =
  {
    buf = Array.make initial_capacity None;
    mask = initial_capacity - 1;
    lo = 0;
    hi = 0;
    live = 0;
    hw = 0;
  }

let slot t id = id land t.mask

(* Advance [lo] past dead slots so the head sits at [slot lo]. *)
let normalize t =
  while t.lo < t.hi && t.buf.(slot t t.lo) = None do
    t.lo <- t.lo + 1
  done

let grow t ~span =
  let cap = ref (Array.length t.buf) in
  while !cap < span do
    cap := !cap * 2
  done;
  let buf = Array.make !cap None in
  let mask = !cap - 1 in
  for id = t.lo to t.hi - 1 do
    buf.(id land mask) <- t.buf.(id land t.mask)
  done;
  t.buf <- buf;
  t.mask <- mask

let insert t (sub : Subthread.t) =
  let id = sub.Subthread.id in
  if id < t.lo then invalid_arg "Rol.insert: id below retired horizon";
  let hi' = Stdlib.max t.hi (id + 1) in
  if hi' - t.lo > Array.length t.buf then grow t ~span:(2 * (hi' - t.lo));
  if t.buf.(slot t id) <> None then invalid_arg "Rol.insert: duplicate id";
  t.buf.(slot t id) <- Some sub;
  t.hi <- hi';
  t.live <- t.live + 1;
  if t.live > t.hw then t.hw <- t.live

let find t id =
  if id < t.lo || id >= t.hi then None else t.buf.(slot t id)

let remove t id =
  if id >= t.lo && id < t.hi && t.buf.(slot t id) <> None then begin
    t.buf.(slot t id) <- None;
    t.live <- t.live - 1
  end

let head t =
  normalize t;
  if t.lo >= t.hi then None else t.buf.(slot t t.lo)

let min_live_id t =
  normalize t;
  if t.lo >= t.hi then None else Some t.lo

let size t = t.live
let max_size t = t.hw
let is_empty t = t.live = 0

let iter_younger t ~than f =
  for id = Stdlib.max (than + 1) t.lo to t.hi - 1 do
    match t.buf.(slot t id) with Some sub -> f sub | None -> ()
  done

let younger_than t id =
  let acc = ref [] in
  iter_younger t ~than:id (fun sub -> acc := sub :: !acc);
  List.rev !acc

let to_list t = younger_than t (t.lo - 1)

let retire_ready t ~now ~latency =
  let rec go acc =
    match head t with
    | Some sub -> (
      match sub.Subthread.status with
      | Subthread.Complete c when now >= c + latency ->
        remove t sub.Subthread.id;
        go (sub :: acc)
      | Subthread.Complete _ | Subthread.Running | Subthread.Squashed -> List.rev acc)
    | None -> List.rev acc
  in
  go []
