(** Reorder list (ROL): in-flight sub-threads in total order.

    The analogue of a superscalar reorder buffer (§3.2). Sub-threads enter
    in creation (order) position; the head is the oldest unretired
    sub-thread. Retirement removes exception-free completed heads;
    recovery removes arbitrary squashed entries.

    Implemented as an id-indexed growable ring (ids are allocated
    monotonically), so insert/find/remove/head/retire are O(1) and the
    suffix walks are plain scans with no intermediate structure. *)

type t

val create : unit -> t

val insert : t -> Subthread.t -> unit
(** Ids must be unique and at or above the retired horizon (they are
    allocated monotonically); raises [Invalid_argument] otherwise. *)

val find : t -> int -> Subthread.t option

val remove : t -> int -> unit
(** No-op when absent. *)

val head : t -> Subthread.t option
(** Oldest live entry. *)

val min_live_id : t -> int option

val size : t -> int

val max_size : t -> int
(** High-water depth, reported in the stats. *)

val is_empty : t -> bool

val iter_younger : t -> than:int -> (Subthread.t -> unit) -> unit
(** Apply [f] to every live entry with [id > than], oldest first,
    without materializing a list — the recovery squash walk. *)

val younger_than : t -> int -> Subthread.t list
(** Entries with [id > given], oldest first — the suffix recovery walks. *)

val to_list : t -> Subthread.t list
(** All live entries, oldest first. *)

val retire_ready : t -> now:int -> latency:int -> Subthread.t list
(** Pops the maximal prefix of completed heads whose completion is at
    least [latency] old (the output-commit rule: a sub-thread may not
    retire while an exception that struck it could still be unreported).
    The popped entries are removed. *)
