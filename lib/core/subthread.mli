(** Sub-threads: the unit of ordering, checkpointing and restart.

    The DEX logically divides program threads into sub-threads at
    communication points (§3.2 of the paper). Each sub-thread records:

    - a checkpoint of its thread's restartable state taken at its start
      (registers, pc — the paper's "call stack and processor registers");
    - a copy-on-write undo log of every architectural write it performs
      (the mod-set state in the history buffer);
    - the {e aliases} of the shared data it touched: the dynamic identity
      of locks acquired, atomic variables accessed, condition variables,
      barriers and thread join/exit edges. Aliases drive selective
      restart's dependent walk ("ones that acquired the same lock(s) or
      used the same atomic variable as the excepting sub-thread").
      Aliases are encoded as small-int codes in a growable bitset, so
      {!add_alias} is idempotent O(1) and {!shares_alias} a word-wise
      intersection test.

    The [id] doubles as the sub-thread's position in the deterministic
    total order: ids are allocated in token-grant order.

    Sub-thread records (with their [saved] register buffer and undo log)
    are pooled: {!acquire} recycles a record retired or squashed earlier
    in the run instead of heap-allocating one per boundary — the host-side
    analogue of keeping the paper's per-boundary generation cost t_g
    small. GPRS_NO_POOL=1 (or {!set_pooling}[ false]) restores the
    allocating path; both paths are observationally identical. *)

type alias =
  | Mutex of int
  | Atomic_var of int
  | Condvar of int
  | Barrier_obj of int
  | Thread_edge of int  (** join/exit communication with thread [tid] *)

type status =
  | Running  (** executing, or parked awaiting its thread's next turn *)
  | Complete of int  (** finished at the given time; awaiting retirement *)
  | Squashed  (** discarded by recovery *)

type t = {
  mutable id : int;  (** creation sequence = position in the total order *)
  mutable tid : int;
  mutable started_at : int;
  mutable status : status;
  mutable alias_bits : int array;
      (** bitset over {!alias_code}s, 32 codes per word; use
          {!add_alias}/{!mem_alias}/{!shares_alias}, not the raw words *)
  mutable alias_words : int;  (** words of [alias_bits] in use *)
  mutable global_dep : bool;
      (** conservative ⊤-alias: opaque calls and non-standard sync outside
          CPR regions conflict with every younger sub-thread *)
  mutable cpr_region : bool;  (** covers a [Cpr_begin]/[Cpr_end] hybrid region *)
  saved : Vm.Tcb.saved;  (** thread state at sub-thread start *)
  mutable held_locks : int list;
      (** mutexes the thread held when this sub-thread's checkpoint was
          taken (a checkpoint can sit inside a critical section — e.g. a
          cond_wait boundary), sorted by descending index. Restoring the
          checkpoint must re-grant them, not release them. *)
  undo : Exec.Undo_log.t;
  mutable forked : int list;  (** tids of threads this sub-thread created *)
  mutable pending_mutex : int option;
      (** set when the checkpoint was taken while the thread was queued to
          (re-)acquire a mutex — a condvar wake-sub whose sleeper had not
          yet got the mutex back. Restoring such a checkpoint must re-join
          the mutex queue (or take the mutex if free), not run. *)
  mutable freed_blocks : (int * int) list;
      (** (addr, size) blocks this sub-thread freed. Frees are
          {e quarantined}: the block re-enters the allocator only when
          this sub-thread retires, so no unsquashed sub-thread can ever
          hold memory whose free might still be rolled back. *)
}

val make : id:int -> tid:int -> now:int -> saved:Vm.Tcb.saved -> t
(** A fresh, unpooled record (tests and the pool-miss path). *)

val add_alias : t -> alias -> unit
(** Idempotent constant-time insert. *)

val mem_alias : t -> alias -> bool

val shares_alias : t -> t -> bool
(** True when the alias sets intersect, or either side is [global_dep]. *)

val aliases : t -> alias list
(** Decoded alias set in ascending code order, for display/tests. *)

val clear_aliases : t -> unit

val is_complete : t -> bool

val completion_time : t -> int option

(** {1 Accumulated alias sets}

    The selective-squash walk tests each younger sub-thread against the
    union of every already-squashed alias set; folding the union into one
    accumulator makes each test O(words) instead of O(squashed x words). *)

type aset

val aset_create : unit -> aset

val aset_add : aset -> t -> unit
(** Union [sub]'s aliases (and its [global_dep] flag) into the set. *)

val aset_shares : aset -> t -> bool
(** Equivalent to [List.exists (fun u -> shares_alias u s) added], where
    [added] are the sub-threads folded in so far (assuming at least one). *)

(** {1 Pooling} *)

val pooling : unit -> bool
val set_pooling : bool -> unit

type pool
(** Per-engine-run free list of sub-thread records. Never shared across
    runs: register/barrier buffer shapes are per-program. *)

val pool_create : unit -> pool

val acquire :
  pool -> id:int -> tid:int -> now:int -> tcb:Vm.Tcb.t -> t
(** A [Running] sub-thread whose [saved] snapshot is captured from [tcb];
    recycles a released record when pooling is on (blitting into its
    existing buffers), else allocates. *)

val release : pool -> t -> unit
(** Return a retired or squashed record to the pool. The record is
    scrubbed immediately — alias bits, undo log, freed blocks, fork and
    lock lists — so no squashed state can survive into its next life.
    The caller must have dropped every external reference (ROL slot,
    current-sub table, [current_undo]). *)

val pool_stats : pool -> int * int * int
(** [(hits, misses, live high-water)] — recycled vs allocated acquires
    and the peak number of simultaneously outstanding records. *)

val pp_alias : Format.formatter -> alias -> unit

val pp : Format.formatter -> t -> unit
