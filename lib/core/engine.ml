type recovery = Selective | Basic

type config = {
  n_contexts : int;
  seed : int;
  max_cycles : int option;
  ordering : Order.scheme;
  recovery : recovery;
  injector : Faults.Injector.config;
  livelock_squashes : int;
  costs : Vm.Costs.t;
  revoke_contexts : bool;
      (** treat [Resource_revocation] exceptions as permanent: the struck
          context is retired from service and the program continues on
          the remaining ones (§3.5's fatal-exception extension) *)
  wal_stable : bool;
      (** serialize the WAL to "stable storage" (implied by either crash
          trigger below; harmless otherwise — appends cost the same
          simulated cycles either way) *)
  crash_lsn : int option;
      (** crash the whole runtime immediately after this WAL record is
          written (the crash-sweep trigger: one run per record boundary) *)
  crash_cycle : int option;
      (** crash the whole runtime at this simulated cycle *)
}

let default_config =
  {
    n_contexts = 24;
    seed = 1;
    max_cycles = None;
    ordering = Order.Balance_aware;
    recovery = Selective;
    injector = Faults.Injector.default_config;
    livelock_squashes = 100_000;
    costs = Vm.Costs.default;
    revoke_contexts = false;
    wal_stable = false;
    crash_lsn = None;
    crash_cycle = None;
  }

type victim = V_sub of int | V_runtime

type event =
  | Tick of int
  | Retire_check
  | Fault_occur of { ctx : int; kind : Faults.Injector.kind }
  | Fault_report of { victim : victim; ctx : int; kind : Faults.Injector.kind }
  | Recovery_done
  | Crash_point  (* [crash_cycle] fired: lose the machine *)

type eng = {
  cfg : config;
  st : event Exec.State.t;
  sched : Sched.Scheduler.t;
  ctx_of : int option array;
  tick_handle : Sim.Event_queue.handle option array;
  busy_until : int array;
  dead_ctx : bool array;  (* permanently revoked contexts *)
  order : Order.t;
  rol : Rol.t;
  wal : Wal.t;
  mutable next_sub_id : int;
  pool : Subthread.pool;  (* recycled sub-thread records (saved + undo) *)
  cur_sub : Subthread.t option Tidtab.t;  (* tid -> current sub-thread *)
  pending_delay : int Tidtab.t;  (* tid -> cycles owed at next dispatch *)
  queued : bool Tidtab.t;
  destroyed : bool Tidtab.t;  (* tids removed by recovery *)
  mutable recovering : bool;
  mutable restart_pending : int list;  (* tids to release at Recovery_done *)
  mutable interrupted : (int * int) list;  (* Basic: (ctx, busy_until) to resume *)
  mutable pending_reports : victim list;
  mutable squashed_since_retire : int;
  mutable injector : Faults.Injector.t;
  mutable allow_crash : bool;
      (* cleared by cold restart: a recovered machine swallows further
         injected [Crash] events so the resumed run reaches its digest *)
  mutable grant_guard : int;  (* re-entrancy depth of try_grant *)
  (* Scheduled times of pending Fault_occur / Fault_report events, sorted
     ascending: the fused-dispatch horizon. A chain must not execute a
     boundary at or past the head — at that instant the fault event
     outranks the tick and may squash or stall this very thread. *)
  mutable fault_times : int list;
  budget : int;  (* max_cycles, or max_int *)
  instrs : int ref;  (* cached "instrs" counter *)
  mutable io_tid : int;  (* thread being dispatched: owner of Io_op appends *)
  mutable par : Exec.Par.session option;  (* speculative-window session *)
}

let now eng = Exec.State.now eng.st

(* ------------------------------------------------------------------ *)
(* Whole-runtime crashes                                               *)
(* ------------------------------------------------------------------ *)

(* Raised internally at the armed crash point; caught at the outermost
   run loop, where the durable remains of the machine are captured. *)
exception Crash_signal

(* Named fault-point seams (Faults.Points). Run-time seams decline to
   fire while the engine is recovering — replayed work must not
   re-trigger the fault that killed it; the armed crash-LSN hook has the
   same guard. Recovery-side points (cold_restart, recovery_analysis,
   recovery_redo, recovery_undo) have no such guard: recovery is exactly
   when they are meant to fire. *)
let fire_point eng p =
  if not eng.recovering then
    match Faults.Points.sample p with
    | None | Some Faults.Points.Skip_fire -> ()
    | Some Faults.Points.Crash_fire -> raise Crash_signal
    | Some Faults.Points.Torn_fire ->
      Wal.tear_stable eng.wal;
      raise Crash_signal

(* What survives a crash of the runtime. Volatile and gone: the scheduler
   queues, the ROL ring structure, the engine-side per-tid tables, every
   pending event, per-context assignments. Durable: the serialized WAL,
   the architectural state in [d_st] (memory words, atomics, file
   contents, TCBs), the history-buffer checkpoints of the in-flight
   sub-threads (their [saved] registers and copy-on-write undo logs live
   on stable storage until replaced, §3.2), the order-enforcer rotation
   (part of the checkpoint's active-order table), the revoked-context and
   destroyed-thread maps, and the injector stream position. *)
type crash_dump = {
  d_cfg : config;
  d_st : event Exec.State.t;
  d_image : string;  (* serialized WAL at the instant of the crash *)
  d_cycle : int;
  d_subs : Subthread.t list;  (* in-flight sub-threads, oldest first *)
  d_destroyed : bool Tidtab.t;
  d_order : Order.t;
  d_injector : Faults.Injector.t;
  d_dead_ctx : bool array;
}

exception Crashed of crash_dump

let capture eng =
  let st = eng.st in
  {
    d_cfg = eng.cfg;
    d_st = st;
    d_image = Option.value ~default:"" (Wal.stable_image eng.wal);
    d_cycle = now eng;
    d_subs = Rol.to_list eng.rol;
    d_destroyed = eng.destroyed;
    d_order = eng.order;
    d_injector = eng.injector;
    d_dead_ctx = eng.dead_ctx;
  }

let dump_cycle d = d.d_cycle
let dump_wal_image d = d.d_image
let dump_active_ids d = List.map (fun (s : Subthread.t) -> s.Subthread.id) d.d_subs

let add_fault_time eng t = eng.fault_times <- List.sort compare (t :: eng.fault_times)

let remove_fault_time eng t =
  let rec rm = function
    | [] -> []
    | x :: r -> if x = t then r else x :: rm r
  in
  eng.fault_times <- rm eng.fault_times

let fault_horizon eng =
  match eng.fault_times with [] -> max_int | t :: _ -> t

(* ------------------------------------------------------------------ *)
(* Sub-thread bookkeeping                                              *)
(* ------------------------------------------------------------------ *)

let cur_sub_opt eng tid = Tidtab.get eng.cur_sub tid

let cur_sub eng tid =
  match cur_sub_opt eng tid with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Gprs: thread %d has no current sub" tid)

(* Cost of generating a sub-thread: token handling, generation, register
   checkpoint, ROL insertion and the WAL appends — the paper's t_g. *)
let boundary_cost eng =
  let c = eng.cfg.costs in
  c.Vm.Costs.token_pass + c.Vm.Costs.subthread_create + c.Vm.Costs.reg_checkpoint
  + c.Vm.Costs.rol_insert + (2 * c.Vm.Costs.wal_append)

let new_sub eng (tcb : Vm.Tcb.t) =
  let id = eng.next_sub_id in
  eng.next_sub_id <- id + 1;
  let sub =
    Subthread.acquire eng.pool ~id ~tid:tcb.Vm.Tcb.tid ~now:(now eng) ~tcb
  in
  (* The checkpoint may sit inside critical sections: record the held
     mutexes so a restore re-grants them. The TCB maintains its held set
     incrementally at every holder transition (descending index order,
     matching the old whole-table scan), so capture is aliasing the
     list — O(1), no per-boundary O(#mutexes) walk. A checkpoint taken
     while queued for a mutex (a condvar wake-sub) records that too. *)
  sub.Subthread.held_locks <- tcb.Vm.Tcb.held_mutexes;
  (match tcb.Vm.Tcb.wait with
  | Vm.Tcb.On_mutex m -> sub.Subthread.pending_mutex <- Some m
  | Vm.Tcb.Runnable | Vm.Tcb.On_cond _ | Vm.Tcb.Reacquire _ | Vm.Tcb.On_barrier _
  | Vm.Tcb.On_join _ | Vm.Tcb.On_token | Vm.Tcb.Done ->
    ());
  Rol.insert eng.rol sub;
  ignore (Wal.append eng.wal ~at:(now eng) ~order:id (Wal.Rol_insert { sub = id }));
  Tidtab.set eng.cur_sub tcb.Vm.Tcb.tid (Some sub);
  Sim.Stats.incr eng.st.Exec.State.stats "gprs.subthreads";
  sub

(* Drop a record back into the pool once nothing can reach it: clear the
   current-sub slot if it still points here (a thread's last sub survives
   its exit in the table) and the undo hook if it was left armed. *)
let release_sub eng (sub : Subthread.t) =
  (match Tidtab.get eng.cur_sub sub.Subthread.tid with
  | Some s when s == sub -> Tidtab.set eng.cur_sub sub.Subthread.tid None
  | Some _ | None -> ());
  (match eng.st.Exec.State.current_undo with
  | Some u when u == sub.Subthread.undo -> eng.st.Exec.State.current_undo <- None
  | Some _ | None -> ());
  Subthread.release eng.pool sub

let add_delay eng tid d =
  Tidtab.set eng.pending_delay tid (Tidtab.get eng.pending_delay tid + d)

let take_delay eng tid =
  let d = Tidtab.get eng.pending_delay tid in
  if d <> 0 then Tidtab.set eng.pending_delay tid 0;
  d

(* ------------------------------------------------------------------ *)
(* Scheduling                                                          *)
(* ------------------------------------------------------------------ *)

let on_ctx eng tid = Array.exists (fun o -> o = Some tid) eng.ctx_of

(* Speculation seam. The fused-dispatch horizon is [min budget
   fault-horizon] (see the fused leg below); it is usually infinite, so
   the worker's relative stop bound is too — GPRS windows end naturally
   at the next synchronization boundary, exactly like its fused chains.
   A thread's state is final from the moment it goes runnable (grant,
   wake, chain end) until its next dispatch: grants and fills only
   target parked threads, and the pool is non-preemptive. *)
let par_hrel eng =
  let b = if eng.budget = max_int then max_int else eng.budget + 1 in
  let h = Stdlib.min b (fault_horizon eng) in
  if h = max_int then max_int else Stdlib.max 0 (h - now eng)

let par_lease eng tid =
  if eng.par <> None then begin
    let tcb = Exec.State.thread eng.st tid in
    if tcb.Vm.Tcb.wait = Vm.Tcb.Runnable then
      let undo =
        match cur_sub_opt eng tid with
        | Some sub -> Some sub.Subthread.undo
        | None -> None
      in
      Exec.Par.lease eng.par eng.st tcb ~undo
        ~delay:(Tidtab.get eng.pending_delay tid)
        ~hrel:(par_hrel eng)
  end

let make_runnable eng ~ctx_hint tid =
  let queued = Tidtab.get eng.queued tid
  and on_c = on_ctx eng tid
  and destroyed = Tidtab.get eng.destroyed tid in
  Sim.Trace.recordf eng.st.Exec.State.trace (now eng)
    "make_runnable %d queued=%b on_ctx=%b destroyed=%b" tid queued on_c destroyed;
  if (not queued) && (not on_c) && not destroyed then begin
    (* A flag, not a Hashtbl.add: a re-add after a missed remove cannot
       shadow-stack bindings. *)
    Tidtab.set eng.queued tid true;
    Sched.Scheduler.enqueue eng.sched ~ctx_hint tid;
    par_lease eng tid
  end

let schedule_tick eng ctx ~after =
  let t = now eng + Stdlib.max Exec.Sem.min_cost after in
  eng.busy_until.(ctx) <- t;
  eng.tick_handle.(ctx) <-
    Some
      (Sim.Event_queue.schedule eng.st.Exec.State.evq ~prio:(1 + ctx) ~time:t
         (Tick ctx))

let schedule_retire_check eng ~at =
  ignore
    (Sim.Event_queue.schedule eng.st.Exec.State.evq
       ~time:(Stdlib.max at (now eng))
       Retire_check)

(* ------------------------------------------------------------------ *)
(* Token grants: boundary processing (DEX order enforcer)              *)
(* ------------------------------------------------------------------ *)

let complete_current eng tid =
  match cur_sub_opt eng tid with
  | None -> ()
  | Some sub ->
    sub.Subthread.status <- Subthread.Complete (now eng);
    Sim.Stats.observe eng.st.Exec.State.stats "gprs.sub_cycles"
      (float_of_int (now eng - sub.Subthread.started_at));
    (match Rol.min_live_id eng.rol with
    | Some min_id when min_id = sub.Subthread.id ->
      schedule_retire_check eng
        ~at:(now eng + eng.cfg.costs.Vm.Costs.detection_latency + 1)
    | Some _ | None -> ())

(* Perform the synchronization operation at [tcb]'s pc on behalf of its
   freshly created sub-thread. pc still points at the instruction. *)
let grant eng tid =
  let st = eng.st in
  let tcb = Exec.State.thread st tid in
  Sim.Stats.incr st.Exec.State.stats "gprs.tokens";
  complete_current eng tid;
  let instr =
    match Vm.Tcb.current_instr tcb with None -> Vm.Isa.Exit | Some i -> i
  in
  Sim.Trace.recordf st.Exec.State.trace (now eng) "grant %d %s pc=%d" tid
    (Vm.Isa.instr_name instr) tcb.Vm.Tcb.pc;
  (match instr with
  | Vm.Isa.Exit -> ()
  | _ ->
    let sub = new_sub eng tcb in
    st.Exec.State.current_undo <- Some sub.Subthread.undo;
    add_delay eng tid (boundary_cost eng);
    tcb.Vm.Tcb.pc <- tcb.Vm.Tcb.pc + 1);
  tcb.Vm.Tcb.wait <- Vm.Tcb.Runnable;
  let resume ?(also = []) () =
    make_runnable eng ~ctx_hint:tid tid;
    List.iter
      (fun w ->
        Order.set_eligible eng.order w true;
        make_runnable eng ~ctx_hint:w w)
      also
  in
  (match instr with
  | Vm.Isa.Lock { m } ->
    let m = m tcb.Vm.Tcb.regs in
    let sub = cur_sub eng tid in
    Subthread.add_alias sub (Subthread.Mutex m);
    let acquired, d = Exec.Sem.try_lock st tcb m in
    add_delay eng tid d;
    if acquired then begin
      tcb.Vm.Tcb.lock_depth <- tcb.Vm.Tcb.lock_depth + 1;
      resume ()
    end
    else
      (* Queued on the mutex in token order; the unlock hands it over (no
         further turn needed). Until then the thread passes its turns —
         the token must not wait on it, since the holder may itself need
         a turn to release (a cond_wait inside the critical section). *)
      Order.set_eligible eng.order tid false
  | Vm.Isa.Barrier { b } ->
    Subthread.add_alias (cur_sub eng tid) (Subthread.Barrier_obj b);
    let released, d = Exec.Sem.barrier_arrive st tcb b in
    (* The arrival that completes the episode is the release seam. *)
    if tcb.Vm.Tcb.wait = Vm.Tcb.Runnable then
      fire_point eng Faults.Points.Barrier_release;
    add_delay eng tid d;
    if tcb.Vm.Tcb.wait = Vm.Tcb.Runnable then resume ~also:released ()
    else Order.set_eligible eng.order tid false
  | Vm.Isa.Cond_wait { c; m } ->
    let sub = cur_sub eng tid in
    Subthread.add_alias sub (Subthread.Condvar c);
    Subthread.add_alias sub (Subthread.Mutex m);
    let granted, d = Exec.Sem.cond_block st tcb ~c ~m in
    tcb.Vm.Tcb.lock_depth <- tcb.Vm.Tcb.lock_depth - 1;
    add_delay eng tid d;
    Order.set_eligible eng.order tid false;
    (match granted with
    | Some w ->
      Order.set_eligible eng.order w true;
      make_runnable eng ~ctx_hint:w w
    | None -> ())
  | Vm.Isa.Cond_signal { c; all } ->
    Subthread.add_alias (cur_sub eng tid) (Subthread.Condvar c);
    let woken, runnable, d = Exec.Sem.cond_wake st ~c ~all in
    add_delay eng tid d;
    (* A wake is a communication edge: the woken continuation must be
       ordered AFTER this signal. Close each sleeper's wait-sub and open
       a fresh one (with a current order id) at the wake point. *)
    List.iter
      (fun (w, m) ->
        complete_current eng w;
        let wt = Exec.State.thread st w in
        let wsub = new_sub eng wt in
        Subthread.add_alias wsub (Subthread.Condvar c);
        Subthread.add_alias wsub (Subthread.Mutex m);
        add_delay eng w (boundary_cost eng))
      woken;
    List.iter (fun w -> Order.set_eligible eng.order w true) runnable;
    resume ~also:runnable ()
  | Vm.Isa.Atomic { var; rmw; dst } ->
    let v = var tcb.Vm.Tcb.regs in
    Subthread.add_alias (cur_sub eng tid) (Subthread.Atomic_var v);
    let d = Exec.Sem.atomic_rmw st tcb ~var:v ~rmw ~dst in
    add_delay eng tid d;
    resume ()
  | Vm.Isa.Fork { group; proc; args; dst } ->
    let child, _os_cost = Exec.Sem.fork st tcb ~group ~proc ~args ~dst in
    let ctid = child.Vm.Tcb.tid in
    (cur_sub eng tid).Subthread.forked <-
      ctid :: (cur_sub eng tid).Subthread.forked;
    ignore
      (Wal.append eng.wal ~at:(now eng) ~order:(cur_sub eng tid).Subthread.id
         (Wal.Thread_create { tid = ctid }));
    Order.add_thread eng.order ~tid:ctid ~group;
    (* Under DEX a fork creates a sub-thread, not an OS thread. *)
    let csub = new_sub eng child in
    ignore csub;
    add_delay eng tid (eng.cfg.costs.Vm.Costs.subthread_create);
    add_delay eng ctid (boundary_cost eng);
    resume ~also:[ ctid ] ()
  | Vm.Isa.Join { tid = target } ->
    let target = target tcb.Vm.Tcb.regs in
    Subthread.add_alias (cur_sub eng tid) (Subthread.Thread_edge target);
    let ready, d = Exec.Sem.join st tcb ~target in
    add_delay eng tid d;
    if ready then resume () else Order.set_eligible eng.order tid false
  | Vm.Isa.Exit ->
    (match cur_sub_opt eng tid with
    | Some sub -> Subthread.add_alias sub (Subthread.Thread_edge tid)
    | None -> ());
    let joiners, _d = Exec.Sem.exit_thread st tcb in
    List.iter
      (fun j ->
        Order.set_eligible eng.order j true;
        make_runnable eng ~ctx_hint:j j)
      joiners;
    Order.remove_thread eng.order tid
  | Vm.Isa.Work _ | Vm.Isa.Opaque _ | Vm.Isa.Goto _ | Vm.Isa.If _
  | Vm.Isa.Unlock _ | Vm.Isa.Nonstd_atomic _ | Vm.Isa.Alloc _ | Vm.Isa.Free _
  | Vm.Isa.Cpr_begin | Vm.Isa.Cpr_end ->
    invalid_arg "Gprs.grant: not a synchronization point");
  (* Only communication operations consume a rotation turn; fork/join/
     exit boundaries are processed on arrival and must not steal turns
     from the threads the rotation is balancing. *)
  match instr with
  | Vm.Isa.Lock _ | Vm.Isa.Barrier _ | Vm.Isa.Cond_wait _ | Vm.Isa.Cond_signal _
  | Vm.Isa.Atomic _ ->
    Order.advance eng.order ~granted:tid
  | Vm.Isa.Fork _ | Vm.Isa.Join _ | Vm.Isa.Exit | Vm.Isa.Work _ | Vm.Isa.Opaque _
  | Vm.Isa.Goto _ | Vm.Isa.If _ | Vm.Isa.Unlock _ | Vm.Isa.Nonstd_atomic _
  | Vm.Isa.Alloc _ | Vm.Isa.Free _ | Vm.Isa.Cpr_begin | Vm.Isa.Cpr_end ->
    ()

(* Grant every turn that can be taken right now. Filling contexts can park
   further threads at sync points (their nested [try_grant] calls are
   guarded no-ops), so alternate granting and filling until neither makes
   progress. *)
let rec try_grant eng =
  if eng.grant_guard = 0 then begin
    eng.grant_guard <- 1;
    let holder_parked () =
      match Order.holder eng.order with
      | Some tid -> (Exec.State.thread eng.st tid).Vm.Tcb.wait = Vm.Tcb.On_token
      | None -> false
    in
    let progress = ref true in
    while !progress do
      progress := false;
      while holder_parked () do
        grant eng (Option.get (Order.holder eng.order))
      done;
      fill_all eng;
      if holder_parked () then progress := true
    done;
    eng.grant_guard <- 0
  end

(* ------------------------------------------------------------------ *)
(* Dispatch (non-preemptive work-stealing pool)                        *)
(* ------------------------------------------------------------------ *)

and dispatch eng ctx (tcb : Vm.Tcb.t) =
  let tid = tcb.Vm.Tcb.tid in
  if eng.par = None then dispatch_seq eng ctx tcb
  else if
    not (Vm.Block.fusing ())
    || eng.recovering
    || Rol.size eng.rol >= 4096
    || cur_sub_opt eng tid = None
  then begin
    (* the fused leg is disqualified this dispatch (or the thread has no
       sub to charge against): the hop must run sequentially *)
    Exec.Par.cancel eng.par ~tid;
    dispatch_seq eng ctx tcb
  end
  else begin
    let st = eng.st in
    let t0 = now eng in
    eng.io_tid <- tid;
    (match cur_sub_opt eng tid with
    | Some sub -> st.Exec.State.current_undo <- Some sub.Subthread.undo
    | None -> st.Exec.State.current_undo <- None);
    let b = if eng.budget = max_int then max_int else eng.budget + 1 in
    let horizon = Stdlib.min b (fault_horizon eng) in
    let delay = Tidtab.get eng.pending_delay tid in
    match Exec.Par.commit eng.par st tcb ~horizon ~delay ~instrs:eng.instrs with
    | None -> dispatch_seq eng ctx tcb
    | Some c ->
      ignore (take_delay eng tid);
      (match cur_sub_opt eng tid with
      | Some sub ->
        (* the fused leg's [on_fused]/[on_trace] bookkeeping, replayed
           from the window's summary *)
        if c.Exec.Par.c_entered_cpr then sub.Subthread.cpr_region <- true;
        if c.Exec.Par.c_opaques > 0 then begin
          sub.Subthread.global_dep <- not c.Exec.Par.c_last_opaque_in_cpr;
          Sim.Stats.add st.Exec.State.stats "gprs.opaque_calls"
            c.Exec.Par.c_opaques
        end
      | None -> ());
      schedule_tick eng ctx ~after:(c.Exec.Par.c_vend - t0);
      par_lease eng tid
  end

and dispatch_seq eng ctx (tcb : Vm.Tcb.t) =
  let st = eng.st in
  let tid = tcb.Vm.Tcb.tid in
  let t0 = now eng in
  eng.io_tid <- tid;
  (match cur_sub_opt eng tid with
  | Some sub -> st.Exec.State.current_undo <- Some sub.Subthread.undo
  | None -> st.Exec.State.current_undo <- None);
  let ctrl = ref 0 in
  let rec fetch () =
    match Vm.Tcb.current_instr tcb with
    | None -> Vm.Isa.Exit
    | Some (Vm.Isa.Goto target) ->
      tcb.Vm.Tcb.pc <- target;
      incr ctrl;
      fetch ()
    | Some (Vm.Isa.If { cond; target }) ->
      tcb.Vm.Tcb.pc <-
        (if cond tcb.Vm.Tcb.regs then target else tcb.Vm.Tcb.pc + 1);
      incr ctrl;
      fetch ()
    | Some Vm.Isa.Cpr_begin ->
      tcb.Vm.Tcb.in_cpr_region <- true;
      (match cur_sub_opt eng tid with
      | Some sub -> sub.Subthread.cpr_region <- true
      | None -> ());
      tcb.Vm.Tcb.pc <- tcb.Vm.Tcb.pc + 1;
      incr ctrl;
      fetch ()
    | Some Vm.Isa.Cpr_end ->
      tcb.Vm.Tcb.in_cpr_region <- false;
      tcb.Vm.Tcb.pc <- tcb.Vm.Tcb.pc + 1;
      incr ctrl;
      fetch ()
    | Some i -> i
  in
  let instr = fetch () in
  incr eng.instrs;
  Vm.Block.profile_ctrl st.Exec.State.stats !ctrl;
  Vm.Block.profile_instr st.Exec.State.stats instr;
  (* A restarted thread may resume without a current sub-thread; create
     one lazily so its writes stay squashable. *)
  let ensure_sub () =
    if cur_sub_opt eng tid = None then begin
      let sub = new_sub eng tcb in
      st.Exec.State.current_undo <- Some sub.Subthread.undo;
      add_delay eng tid (boundary_cost eng - eng.cfg.costs.Vm.Costs.token_pass);
      Sim.Stats.incr st.Exec.State.stats "gprs.restart_subs"
    end
  in
  (* Interception is suppressed inside critical sections (nested-lock
     flattening) and inside hybrid-recovery regions. *)
  let suppressed = tcb.Vm.Tcb.lock_depth > 0 || tcb.Vm.Tcb.in_cpr_region in
  let completed_episode_skip =
    match instr with
    | Vm.Isa.Barrier { b } ->
      tcb.Vm.Tcb.barrier_seq.(b) < tcb.Vm.Tcb.barrier_done.(b)
    | _ -> false
  in
  if completed_episode_skip then begin
    (* Re-executed arrival for an episode that already released: passing
       through is the only consistent continuation (the other parties
       have retired past it). *)
    let b = match instr with Vm.Isa.Barrier { b } -> b | _ -> assert false in
    ensure_sub ();
    tcb.Vm.Tcb.barrier_seq.(b) <- tcb.Vm.Tcb.barrier_seq.(b) + 1;
    tcb.Vm.Tcb.pc <- tcb.Vm.Tcb.pc + 1;
    Sim.Stats.incr st.Exec.State.stats "gprs.barrier_skips";
    schedule_tick eng ctx
      ~after:(!ctrl + eng.cfg.costs.Vm.Costs.barrier_entry + take_delay eng tid);
    par_lease eng tid
  end
  else if Vm.Isa.is_sync_point instr && not suppressed then begin
    (* Sub-thread boundary: park for the deterministic turn. *)
    tcb.Vm.Tcb.wait <- Vm.Tcb.On_token;
    eng.ctx_of.(ctx) <- None;
    eng.tick_handle.(ctx) <- None;
    Sim.Stats.incr st.Exec.State.stats "gprs.sync_parks";
    Sim.Trace.recordf st.Exec.State.trace (now eng) "park %d %s pc=%d" tid
      (Vm.Isa.instr_name instr) tcb.Vm.Tcb.pc;
    (* Fork, join and exit are sub-thread boundaries but not
       communication through shared objects: their boundary is processed
       on arrival (the fork order is the parent's program order; join and
       exit pair through the thread edge itself), so data-parallel
       programs incur no ordering waits — the paper's fork/join programs
       show near-zero ordering overhead (Fig. 8a). Communication
       operations wait for their deterministic turn, except under the
       recorded (nondeterministic) scheme, where arrival order is the
       recorded order. *)
    let immediate =
      match instr with
      | Vm.Isa.Fork _ | Vm.Isa.Join _ | Vm.Isa.Exit -> true
      | Vm.Isa.Lock _ | Vm.Isa.Barrier _ | Vm.Isa.Cond_wait _
      | Vm.Isa.Cond_signal _ | Vm.Isa.Atomic _ ->
        Order.scheme eng.order = Order.Recorded
      | Vm.Isa.Work _ | Vm.Isa.Opaque _ | Vm.Isa.Goto _ | Vm.Isa.If _
      | Vm.Isa.Unlock _ | Vm.Isa.Nonstd_atomic _ | Vm.Isa.Alloc _
      | Vm.Isa.Free _ | Vm.Isa.Cpr_begin | Vm.Isa.Cpr_end ->
        false
    in
    if immediate then grant eng tid else try_grant eng;
    fill eng ctx
  end
  else begin
    ensure_sub ();
    tcb.Vm.Tcb.pc <- tcb.Vm.Tcb.pc + 1;
    let wake tids =
      List.iter
        (fun w ->
          Order.set_eligible eng.order w true;
          make_runnable eng ~ctx_hint:ctx w)
        tids
    in
    let d =
      match instr with
      | Vm.Isa.Work { cost; run } -> Exec.Sem.exec_work st tcb ~cost ~run
      | Vm.Isa.Opaque { cost; run } ->
        (* Unknown mod-set (third-party code): conservative ⊤ dependence. *)
        (match cur_sub_opt eng tid with
        | Some sub -> sub.Subthread.global_dep <- not tcb.Vm.Tcb.in_cpr_region
        | None -> ());
        Sim.Stats.incr st.Exec.State.stats "gprs.opaque_calls";
        Exec.Sem.exec_work st tcb ~cost ~run
      | Vm.Isa.Nonstd_atomic { var; rmw; dst } ->
        (* Home-spun synchronization is invisible to DEX; outside a CPR
           region it forces conservative recovery. *)
        let v = var tcb.Vm.Tcb.regs in
        (match cur_sub_opt eng tid with
        | Some sub ->
          Subthread.add_alias sub (Subthread.Atomic_var v);
          if not tcb.Vm.Tcb.in_cpr_region then begin
            sub.Subthread.global_dep <- true;
            Sim.Stats.incr st.Exec.State.stats "gprs.nonstd_unprotected"
          end
        | None -> ());
        Exec.Sem.atomic_rmw st tcb ~var:v ~rmw ~dst
      | Vm.Isa.Unlock { m } ->
        (* [Error] here models a lock-release/handoff timeout. *)
        fire_point eng Faults.Points.Lock_handoff;
        let woken, d = Exec.Sem.unlock st tcb (m tcb.Vm.Tcb.regs) in
        tcb.Vm.Tcb.lock_depth <- tcb.Vm.Tcb.lock_depth - 1;
        (match woken with Some w -> wake [ w ] | None -> ());
        d
      | Vm.Isa.Alloc { size; dst } ->
        (* [Error] here models allocator failure. *)
        fire_point eng Faults.Points.Alloc_grant;
        let a, d = Exec.Sem.alloc st tcb ~size ~dst in
        let size = Option.get (Vm.Mem.block_size st.Exec.State.mem a) in
        (match cur_sub_opt eng tid with
        | Some sub ->
          ignore
            (Wal.append eng.wal ~at:(now eng) ~order:sub.Subthread.id
               (Wal.Alloc { addr = a; size }))
        | None -> ());
        d + eng.cfg.costs.Vm.Costs.wal_append
      | Vm.Isa.Free { addr } ->
        (* Quarantined free: the block leaves the allocator only when
           this sub-thread retires (see Subthread.freed_blocks), so a
           squash can always undo the free without racing concurrent
           reuse. *)
        let a = addr tcb.Vm.Tcb.regs in
        (match Vm.Mem.block_size st.Exec.State.mem a with
        | None ->
          (* A restored pointer can go stale across deeply overlapped
             recoveries; quarantined reuse makes addresses unique until
             retirement, so skipping the free is sound. *)
          Sim.Stats.incr st.Exec.State.stats "gprs.stale_frees"
        | Some size -> (
          match cur_sub_opt eng tid with
          | Some sub ->
            sub.Subthread.freed_blocks <- (a, size) :: sub.Subthread.freed_blocks;
            ignore
              (Wal.append eng.wal ~at:(now eng) ~order:sub.Subthread.id
                 (Wal.Free { addr = a; size }))
          | None -> Vm.Mem.free st.Exec.State.mem a));
        eng.cfg.costs.Vm.Costs.free + eng.cfg.costs.Vm.Costs.wal_append
      | Vm.Isa.Lock { m } ->
        (* Nested lock inside a critical section or a CPR region. *)
        let m = m tcb.Vm.Tcb.regs in
        (match cur_sub_opt eng tid with
        | Some sub -> Subthread.add_alias sub (Subthread.Mutex m)
        | None -> ());
        let acquired, d = Exec.Sem.try_lock st tcb m in
        if acquired then tcb.Vm.Tcb.lock_depth <- tcb.Vm.Tcb.lock_depth + 1
        else Order.set_eligible eng.order tid false;
        Sim.Stats.incr st.Exec.State.stats "gprs.flattened_locks";
        d
      | Vm.Isa.Barrier { b } ->
        (* Only reachable inside a CPR region. *)
        let released, d = Exec.Sem.barrier_arrive st tcb b in
        if tcb.Vm.Tcb.wait = Vm.Tcb.Runnable then
          fire_point eng Faults.Points.Barrier_release;
        wake released;
        d
      | Vm.Isa.Cond_wait { c; m } ->
        let granted, d = Exec.Sem.cond_block st tcb ~c ~m in
        tcb.Vm.Tcb.lock_depth <- tcb.Vm.Tcb.lock_depth - 1;
        (match granted with Some w -> wake [ w ] | None -> ());
        Order.set_eligible eng.order tid false;
        d
      | Vm.Isa.Cond_signal { c; all } ->
        let _woken, runnable, d = Exec.Sem.cond_wake st ~c ~all in
        wake runnable;
        d
      | Vm.Isa.Atomic { var; rmw; dst } ->
        let v = var tcb.Vm.Tcb.regs in
        (match cur_sub_opt eng tid with
        | Some sub -> Subthread.add_alias sub (Subthread.Atomic_var v)
        | None -> ());
        Exec.Sem.atomic_rmw st tcb ~var:v ~rmw ~dst
      | Vm.Isa.Join { tid = target } ->
        let ready, d = Exec.Sem.join st tcb ~target:(target tcb.Vm.Tcb.regs) in
        if not ready then Order.set_eligible eng.order tid false;
        d
      | Vm.Isa.Fork { group; proc; args; dst } ->
        (* Fork inside a CPR region: still intercepted for bookkeeping. *)
        let child, _ = Exec.Sem.fork st tcb ~group ~proc ~args ~dst in
        let ctid = child.Vm.Tcb.tid in
        (match cur_sub_opt eng tid with
        | Some sub ->
          sub.Subthread.forked <- ctid :: sub.Subthread.forked;
          ignore
            (Wal.append eng.wal ~at:(now eng) ~order:sub.Subthread.id
               (Wal.Thread_create { tid = ctid }))
        | None -> ());
        Order.add_thread eng.order ~tid:ctid ~group;
        ignore (new_sub eng child);
        wake [ ctid ];
        eng.cfg.costs.Vm.Costs.subthread_create
      | Vm.Isa.Exit ->
        complete_current eng tid;
        let joiners, d = Exec.Sem.exit_thread st tcb in
        wake joiners;
        Order.remove_thread eng.order tid;
        d
      | Vm.Isa.Goto _ | Vm.Isa.If _ | Vm.Isa.Cpr_begin | Vm.Isa.Cpr_end ->
        assert false
    in
    let first = !ctrl + d + take_delay eng tid in
    if
      Vm.Block.fusing () && tcb.Vm.Tcb.wait = Vm.Tcb.Runnable
      && (not eng.recovering)
      && Rol.size eng.rol < 4096
    then begin
      (* Non-preemptive pool: the only events that can deopt a running
         thread are fault occurrences/reports, so the horizon is the
         earliest pending one (it cannot move up mid-chain — it only
         changes at event pops). No pending delay can accrue mid-chain:
         delays are added at token grants and fills, neither of which
         targets a thread that is running on a context. *)
      let b = if eng.budget = max_int then max_int else eng.budget + 1 in
      let horizon = Stdlib.min b (fault_horizon eng) in
      let sub = cur_sub_opt eng tid in
      let on_fused (pr : Vm.Block.probe) i =
        match sub with
        | None -> ()
        | Some sub ->
          if pr.Vm.Block.p_entered_cpr then sub.Subthread.cpr_region <- true;
          (match i with
          | Vm.Isa.Opaque _ ->
            sub.Subthread.global_dep <- not tcb.Vm.Tcb.in_cpr_region;
            Sim.Stats.incr st.Exec.State.stats "gprs.opaque_calls"
          | _ -> ())
      in
      (* Per-compiled-entry form of [on_fused]: the latch, the
         last-writer dependence flag and the additive counter land
         identically whether applied per instruction or per entry. *)
      let on_trace ~steps:_ ~opaques ~last_opaque_in_cpr ~entered_cpr =
        match sub with
        | None -> ()
        | Some sub ->
          if entered_cpr then sub.Subthread.cpr_region <- true;
          if opaques > 0 then begin
            sub.Subthread.global_dep <- not last_opaque_in_cpr;
            Sim.Stats.add st.Exec.State.stats "gprs.opaque_calls" opaques
          end
      in
      let vend =
        Exec.Fuse.run_chain st tcb ~instrs:eng.instrs ~horizon ~on_fused
          ~on_trace
          ~vstart:(t0 + Stdlib.max Exec.Sem.min_cost first)
          ()
      in
      schedule_tick eng ctx ~after:(vend - t0);
      par_lease eng tid
    end
    else schedule_tick eng ctx ~after:first
  end

and fill eng ctx =
  (* [try_grant] may already have filled this context from inside a park
     path; never overwrite a live assignment. *)
  if
    eng.ctx_of.(ctx) = None
    && (not eng.dead_ctx.(ctx))
    && not (eng.recovering && eng.cfg.recovery = Basic)
  then
    match Sched.Scheduler.take eng.sched ~ctx with
    | None -> ()
    | Some (tid, stolen) ->
      Tidtab.set eng.queued tid false;
      if Tidtab.get eng.destroyed tid then fill eng ctx
      else begin
        let tcb = Exec.State.thread eng.st tid in
        Sim.Trace.recordf eng.st.Exec.State.trace (now eng) "fill ctx=%d tid=%d wait=%s"
          ctx tid
          (Format.asprintf "%a" Vm.Tcb.pp_wait tcb.Vm.Tcb.wait);
        if tcb.Vm.Tcb.wait = Vm.Tcb.Runnable then begin
          eng.ctx_of.(ctx) <- Some tid;
          if stolen then begin
            Sim.Stats.incr eng.st.Exec.State.stats "gprs.steals";
            add_delay eng tid eng.cfg.costs.Vm.Costs.steal
          end;
          dispatch eng ctx tcb
        end
        else fill eng ctx
      end

and fill_all eng =
  for ctx = 0 to Array.length eng.ctx_of - 1 do
    if eng.ctx_of.(ctx) = None then fill eng ctx
  done

(* ------------------------------------------------------------------ *)
(* REX: retirement                                                     *)
(* ------------------------------------------------------------------ *)

let retire eng =
  let st = eng.st in
  let latency = eng.cfg.costs.Vm.Costs.detection_latency in
  let retired = Rol.retire_ready eng.rol ~now:(now eng) ~latency in
  if retired <> [] then begin
    eng.squashed_since_retire <- 0;
    List.iter
      (fun (sub : Subthread.t) ->
        Sim.Stats.incr st.Exec.State.stats "gprs.retired";
        (* Quarantined frees become real at retirement (output commit). *)
        List.iter
          (fun (a, size) ->
            if Vm.Mem.block_size st.Exec.State.mem a = Some size then
              Vm.Mem.free st.Exec.State.mem a)
          sub.Subthread.freed_blocks;
        (* Retirement drops the last internal reference (the ROL slot);
           the record can go back to the pool. *)
        release_sub eng sub)
      retired;
    (match Rol.min_live_id eng.rol with
    | Some min_id ->
      ignore (Wal.prune_below eng.wal ~order:min_id);
      (* If the new head is already complete, schedule its retirement. *)
      (match Rol.head eng.rol with
      | Some h -> (
        match h.Subthread.status with
        | Subthread.Complete c -> schedule_retire_check eng ~at:(c + latency + 1)
        | Subthread.Running | Subthread.Squashed -> ())
      | None -> ())
    | None -> ignore (Wal.prune_below eng.wal ~order:eng.next_sub_id));
    (* ARIES checkpoint at each retirement: the retired-order horizon,
       the active-order table, the allocator snapshot, and (inside the
       end record) the redo-start LSN. Bounds the cold-recovery redo
       scan to records since the last retirement. *)
    if Wal.stable_armed eng.wal then begin
      let brk, free, used = Vm.Mem.alloc_parts st.Exec.State.mem in
      let min_retired =
        match Rol.min_live_id eng.rol with
        | Some m -> m
        | None -> eng.next_sub_id
      in
      let active =
        List.map (fun (s : Subthread.t) -> s.Subthread.id) (Rol.to_list eng.rol)
      in
      (* Checkpoint fault seams: a skip at [begin] elides the whole
         checkpoint (analysis falls back to the previous one); a skip at
         [end] leaves a B record without its E — an incomplete
         checkpoint analysis must refuse to use. [wal_fsync] models the
         durability barrier after the pair; a torn write there loses the
         tail of the E record. *)
      let sample p =
        if eng.recovering then None else Faults.Points.sample p
      in
      (match sample Faults.Points.Checkpoint_begin with
      | Some Faults.Points.Skip_fire -> ()
      | Some Faults.Points.Crash_fire -> raise Crash_signal
      | Some Faults.Points.Torn_fire | None ->
        Wal.log_checkpoint_begin eng.wal;
        (match sample Faults.Points.Checkpoint_end with
        | Some Faults.Points.Skip_fire -> ()
        | Some Faults.Points.Crash_fire -> raise Crash_signal
        | Some Faults.Points.Torn_fire | None ->
          Wal.log_checkpoint_end eng.wal ~min_retired ~active ~brk ~free
            ~used;
          fire_point eng Faults.Points.Wal_fsync))
    end
  end

(* ------------------------------------------------------------------ *)
(* REX: recovery                                                       *)
(* ------------------------------------------------------------------ *)

module Int_set = Set.Make (Int)

(* The dependent walk of §3.4: younger sub-threads are squashed when they
   share an alias with, follow in program order, or were forked by, an
   already-squashed sub-thread. A single ascending pass reaches the
   fixpoint because dependence only flows from older to younger. *)
let compute_squash_set eng (victim : Subthread.t) =
  match eng.cfg.recovery with
  | Basic -> victim :: Rol.younger_than eng.rol victim.Subthread.id
  | Selective ->
    let squashed = ref [ victim ] in
    let squashed_tids = Hashtbl.create 8 in
    Hashtbl.replace squashed_tids victim.Subthread.tid ();
    let forked_tids = Hashtbl.create 8 in
    List.iter
      (fun t -> Hashtbl.replace forked_tids t ())
      victim.Subthread.forked;
    (* Accumulated union of the squashed alias sets: each younger
       sub-thread is tested against it with one word-wise intersection,
       equivalent to List.exists shares_alias over the squashed list
       (union distributes over the existential intersection). *)
    let aset = Subthread.aset_create () in
    Subthread.aset_add aset victim;
    Rol.iter_younger eng.rol ~than:victim.Subthread.id (fun (s : Subthread.t) ->
        let dependent =
          Hashtbl.mem squashed_tids s.Subthread.tid
          || Hashtbl.mem forked_tids s.Subthread.tid
          || Subthread.aset_shares aset s
        in
        if dependent then begin
          squashed := s :: !squashed;
          Hashtbl.replace squashed_tids s.Subthread.tid ();
          List.iter (fun t -> Hashtbl.replace forked_tids t ()) s.Subthread.forked;
          Subthread.aset_add aset s
        end);
    List.rev !squashed

let destroy_thread eng tid =
  if not (Tidtab.get eng.destroyed tid) then begin
    Tidtab.set eng.destroyed tid true;
    let tcb = Exec.State.thread eng.st tid in
    if tcb.Vm.Tcb.wait <> Vm.Tcb.Done then
      eng.st.Exec.State.live_threads <- eng.st.Exec.State.live_threads - 1;
    tcb.Vm.Tcb.wait <- Vm.Tcb.Done;
    Order.remove_thread eng.order tid;
    Tidtab.set eng.cur_sub tid None;
    ignore (Sched.Scheduler.remove eng.sched tid);
    Tidtab.set eng.queued tid false;
    Sim.Stats.incr eng.st.Exec.State.stats "gprs.threads_destroyed"
  end

let cancel_ctx_of_thread eng tid =
  Array.iteri
    (fun ctx o ->
      if o = Some tid then begin
        (match eng.tick_handle.(ctx) with
        | Some h -> Sim.Event_queue.cancel eng.st.Exec.State.evq h
        | None -> ());
        eng.tick_handle.(ctx) <- None;
        eng.ctx_of.(ctx) <- None
      end)
    eng.ctx_of

let recover eng (victim : Subthread.t) =
  let st = eng.st in
  let costs = eng.cfg.costs in
  (* Raised before any structure is touched: a crash point firing off a
     WAL append made from inside this function (the stranded-waiter
     sweep enqueues) must not capture a half-undone machine, so the
     armed-crash hook declines to fire while [recovering] is set. *)
  eng.recovering <- true;
  Sim.Stats.incr st.Exec.State.stats "gprs.recoveries";
  let squash = compute_squash_set eng victim in
  let n_squash = List.length squash in
  Sim.Stats.add st.Exec.State.stats "gprs.squashed_subs" n_squash;
  eng.squashed_since_retire <- eng.squashed_since_retire + n_squash;
  (* Basic recovery stalls the whole machine: remember interrupted
     contexts so their in-flight instructions complete after the pause. *)
  if eng.cfg.recovery = Basic then begin
    eng.interrupted <- [];
    Array.iteri
      (fun ctx o ->
        match o with
        | Some tid
          when not
                 (List.exists (fun (s : Subthread.t) -> s.Subthread.tid = tid) squash)
          -> (
          match eng.tick_handle.(ctx) with
          | Some h ->
            Sim.Event_queue.cancel st.Exec.State.evq h;
            eng.tick_handle.(ctx) <- None;
            eng.interrupted <- (ctx, eng.busy_until.(ctx)) :: eng.interrupted
          | None -> ())
        | Some _ | None -> ())
      eng.ctx_of
  end;
  (* Oldest squashed sub-thread per affected thread: the restart point. *)
  let oldest : (int, Subthread.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (s : Subthread.t) ->
      match Hashtbl.find_opt oldest s.Subthread.tid with
      | Some o when o.Subthread.id <= s.Subthread.id -> ()
      | Some _ | None -> Hashtbl.replace oldest s.Subthread.tid s)
    squash;
  (* Undo architectural state newest-sub first. For conflicting memory
     accesses in a race-free program, sub-thread order agrees with
     chronology, so per-sub copy-on-write replay is sound. *)
  let words = ref 0 and wal_undone = ref 0 in
  let squash_desc =
    List.sort (fun (a : Subthread.t) b -> compare b.Subthread.id a.Subthread.id) squash
  in
  let squashed_ids : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (s : Subthread.t) ->
      Hashtbl.replace squashed_ids s.Subthread.id ();
      cancel_ctx_of_thread eng s.Subthread.tid;
      words :=
        !words
        + Exec.Undo_log.replay ~mem:st.Exec.State.mem ~atomics:st.Exec.State.atomics
            ~io:st.Exec.State.io s.Subthread.undo;
      s.Subthread.status <- Subthread.Squashed;
      Rol.remove eng.rol s.Subthread.id)
    squash_desc;
  (* Runtime (WAL) operations are NOT ordered by sub-thread id — the
     allocator serves concurrent sub-threads in real time — so their undo
     must walk the log in reverse LSN order (ARIES-style), across all
     squashed sub-threads at once. *)
  let in_squash o = Hashtbl.mem squashed_ids o in
  List.iter
    (fun (e : Wal.entry) ->
      incr wal_undone;
      match e.Wal.op with
      | Wal.Alloc { addr; size = _ } -> (
        match Vm.Mem.block_size st.Exec.State.mem addr with
        | Some _ -> Vm.Mem.undo_alloc st.Exec.State.mem addr
        | None -> ())
      | Wal.Free _ ->
        (* The free was quarantined: the block never left the allocator,
           so dropping the squashed sub-thread's freed_blocks list is the
           whole undo. *)
        ()
      | Wal.Thread_create { tid } -> destroy_thread eng tid
      | Wal.Rol_insert _ | Wal.Sched_enqueue _ | Wal.Io_op _ -> ())
    (Wal.entries_for eng.wal ~orders:in_squash);
  ignore (Wal.drop_for eng.wal ~orders:in_squash);
  (* Clean synchronization-object state touched by squashed work. *)
  let affected tid = Hashtbl.mem oldest tid && not (Tidtab.get eng.destroyed tid) in
  let squashed_or_destroyed tid =
    Hashtbl.mem oldest tid || Tidtab.get eng.destroyed tid
  in
  Array.iteri
    (fun mi (mu : Exec.State.mutex) ->
      (match mu.Exec.State.holder with
      | Some h
        when squashed_or_destroyed h
             && List.exists
                  (fun (s : Subthread.t) ->
                    s.Subthread.tid = h
                    && Subthread.mem_alias s (Subthread.Mutex mi))
                  squash ->
        Exec.State.set_holder st mi None
      | Some _ | None -> ());
      mu.Exec.State.mwaiters <-
        Exec.Fifo.filter (fun w -> not (squashed_or_destroyed w)) mu.Exec.State.mwaiters)
    st.Exec.State.mutexes;
  Array.iter
    (fun (c : Exec.State.cond) ->
      c.Exec.State.sleepers <-
        Exec.Fifo.filter (fun w -> not (squashed_or_destroyed w)) c.Exec.State.sleepers)
    st.Exec.State.conds;
  Array.iter
    (fun (b : Exec.State.barrier) ->
      b.Exec.State.arrived <-
        List.filter (fun w -> not (squashed_or_destroyed w)) b.Exec.State.arrived)
    st.Exec.State.barriers;
  (* Join registrations made by a squashed thread are stale — it restarts
     from a checkpoint at or before the join and re-registers — and left
     in place the target's exit would wake it spuriously (even out of a
     later [Done] state). Registrations pointing AT a reset thread are
     kept: surviving joiners must still be woken when it re-exits. *)
  for tid = 0 to st.Exec.State.n_threads - 1 do
    let tcb = Exec.State.thread st tid in
    tcb.Vm.Tcb.joiners <-
      List.filter (fun j -> not (squashed_or_destroyed j)) tcb.Vm.Tcb.joiners
  done;
  (* Reset affected threads to their oldest squashed checkpoint. *)
  let restarts = ref [] in
  Hashtbl.iter
    (fun tid (o : Subthread.t) ->
      if affected tid then begin
        let tcb = Exec.State.thread st tid in
        if tcb.Vm.Tcb.wait = Vm.Tcb.Done then begin
          (* The thread had exited inside squashed work: revive it. *)
          st.Exec.State.live_threads <- st.Exec.State.live_threads + 1;
          Order.add_thread eng.order ~tid ~group:tcb.Vm.Tcb.group
        end;
        (* Rolls the thread's barrier arrival counters back with it;
           [barrier_done] stays monotonic, so dispatch skips re-arrivals
           for episodes that already released. *)
        Vm.Tcb.restore_state tcb o.Subthread.saved;
        tcb.Vm.Tcb.wait <- Vm.Tcb.Runnable;
        (* Re-grant the mutexes held at the restore point (the checkpoint
           may sit inside a critical section). A conflicting unsquashed
           holder can remain when the hand-off left the squash set through
           an alias-free unlock sub-thread; the reset thread then queues
           at the head and resumes when the mutex is handed back. *)
        List.iter
          (fun m ->
            let mu = st.Exec.State.mutexes.(m) in
            match mu.Exec.State.holder with
            | None -> Exec.State.set_holder st m (Some tid)
            | Some h when h = tid -> ()
            | Some _ ->
              Sim.Stats.incr st.Exec.State.stats "gprs.regrant_waits";
              mu.Exec.State.mwaiters <- Exec.Fifo.push_front mu.Exec.State.mwaiters tid;
              tcb.Vm.Tcb.wait <- Vm.Tcb.On_mutex m)
          o.Subthread.held_locks;
        (* A wake-sub checkpoint taken while queued for the mutex re-joins
           the queue (or takes the mutex if free). *)
        (match o.Subthread.pending_mutex with
        | None -> ()
        | Some m ->
          let mu = st.Exec.State.mutexes.(m) in
          (match mu.Exec.State.holder with
          | None -> Exec.State.set_holder st m (Some tid)
          | Some h when h = tid -> ()
          | Some _ ->
            mu.Exec.State.mwaiters <- Exec.Fifo.push mu.Exec.State.mwaiters tid;
            tcb.Vm.Tcb.wait <- Vm.Tcb.On_mutex m));
        (* Joiners registered by surviving threads must outlive the reset:
           clearing them would lose their wakeup when this thread
           re-exits. Duplicate registrations from re-executed joins are
           harmless (wakes are idempotent). *)
        Order.set_eligible eng.order tid true;
        Tidtab.set eng.cur_sub tid None;
        ignore (Sched.Scheduler.remove eng.sched tid);
        Tidtab.set eng.queued tid false;
        Tidtab.set eng.pending_delay tid 0;
        (* The replacement sub-thread is created lazily at the thread's
           next dispatch (non-sync restart points) or at its next token
           grant (sync restart points). *)
        (* A thread reset into a mutex queue passes its turns until the
           hand-off, like any blocked acquirer. *)
        (match tcb.Vm.Tcb.wait with
        | Vm.Tcb.On_mutex _ -> Order.set_eligible eng.order tid false
        | _ -> ());
        restarts := tid :: !restarts
      end)
    oldest;
  (* Stranded waiters: a second recovery can release a mutex whose queue
     still holds threads reset by an earlier one — hand it to the head. *)
  Array.iteri
    (fun mi (mu : Exec.State.mutex) ->
      match (mu.Exec.State.holder, Exec.Fifo.pop mu.Exec.State.mwaiters) with
      | None, Some (w, rest) ->
        Exec.State.set_holder st mi (Some w);
        mu.Exec.State.mwaiters <- rest;
        let wt = Exec.State.thread st w in
        wt.Vm.Tcb.wait <- Vm.Tcb.Runnable;
        Order.set_eligible eng.order w true;
        (match List.find_opt (fun t -> t = w) !restarts with
        | Some _ -> ()
        | None -> make_runnable eng ~ctx_hint:w w)
      | (Some _ | None), _ -> ())
    st.Exec.State.mutexes;
  let duration =
    costs.Vm.Costs.pause_resume
    + (costs.Vm.Costs.restore_per_word * !words)
    + (costs.Vm.Costs.wal_undo * !wal_undone)
  in
  Sim.Stats.add st.Exec.State.stats "gprs.restored_words" !words;
  Sim.Stats.add st.Exec.State.stats "gprs.wal_undone" !wal_undone;
  (* Every squashed record is now unreachable (out of the ROL, current-sub
     table entries cleared, checkpoints consumed): recycle them. *)
  List.iter (fun s -> release_sub eng s) squash;
  eng.restart_pending <- List.sort compare !restarts;
  ignore
    (Sim.Event_queue.schedule st.Exec.State.evq
       ~time:(now eng + Stdlib.max 1 duration)
       Recovery_done)

let recovery_done eng =
  eng.recovering <- false;
  List.iter
    (fun tid ->
      if (Exec.State.thread eng.st tid).Vm.Tcb.wait = Vm.Tcb.Runnable then
        make_runnable eng ~ctx_hint:tid tid)
    eng.restart_pending;
  eng.restart_pending <- [];
  (* Resume contexts stalled by basic recovery. *)
  List.iter
    (fun (ctx, busy_until) ->
      let t = Stdlib.max busy_until (now eng + 1) in
      eng.busy_until.(ctx) <- t;
      eng.tick_handle.(ctx) <-
        Some
          (Sim.Event_queue.schedule eng.st.Exec.State.evq ~prio:(1 + ctx)
             ~time:t (Tick ctx)))
    eng.interrupted;
  eng.interrupted <- [];
  try_grant eng

let handle_report eng victim =
  let st = eng.st in
  Sim.Stats.incr st.Exec.State.stats "gprs.exceptions";
  if eng.recovering then eng.pending_reports <- eng.pending_reports @ [ victim ]
  else
    match victim with
    | V_runtime ->
      (* The exception corrupted GPRS's own structures: repair them by
         walking the WAL; no user work is lost (§3.4). *)
      Sim.Stats.incr st.Exec.State.stats "gprs.runtime_exceptions";
      let duration =
        eng.cfg.costs.Vm.Costs.pause_resume
        + (eng.cfg.costs.Vm.Costs.wal_undo * Wal.size eng.wal)
      in
      eng.recovering <- true;
      ignore
        (Sim.Event_queue.schedule st.Exec.State.evq
           ~time:(now eng + Stdlib.max 1 duration)
           Recovery_done)
    | V_sub id -> (
      match Rol.find eng.rol id with
      | None ->
        (* Already squashed or the thread was destroyed: nothing live was
           corrupted. *)
        Sim.Stats.incr st.Exec.State.stats "gprs.exn_on_dead_sub"
      | Some sub -> recover eng sub)

(* ------------------------------------------------------------------ *)
(* Fault plumbing and the main loop                                    *)
(* ------------------------------------------------------------------ *)

let schedule_next_fault eng =
  let inj, ev = Faults.Injector.next eng.injector in
  eng.injector <- inj;
  match ev with
  | None -> ()
  | Some ev ->
    let time = Stdlib.max ev.Faults.Injector.occurred_at (now eng) in
    add_fault_time eng time;
    ignore
      (Sim.Event_queue.schedule eng.st.Exec.State.evq ~time
         (Fault_occur { ctx = ev.Faults.Injector.ctx; kind = ev.Faults.Injector.kind }))

let fault_occur eng ctx kind =
  let victim =
    match eng.ctx_of.(ctx) with
    | Some tid -> (
      match cur_sub_opt eng tid with
      | Some sub -> V_sub sub.Subthread.id
      | None -> V_runtime)
    | None -> V_runtime
  in
  add_fault_time eng (now eng + eng.cfg.costs.Vm.Costs.detection_latency);
  ignore
    (Sim.Event_queue.schedule eng.st.Exec.State.evq
       ~time:(now eng + eng.cfg.costs.Vm.Costs.detection_latency)
       (Fault_report { victim; ctx; kind }));
  schedule_next_fault eng

(* Permanent revocation (§3.5 extension): retire the context. A thread
   running on it migrates — its in-flight instruction's effects were
   applied at dispatch, so requeueing resumes it at the next one. *)
let revoke_context eng ctx =
  if not eng.dead_ctx.(ctx) then begin
    eng.dead_ctx.(ctx) <- true;
    Sim.Stats.incr eng.st.Exec.State.stats "gprs.contexts_revoked";
    (match eng.tick_handle.(ctx) with
    | Some h -> Sim.Event_queue.cancel eng.st.Exec.State.evq h
    | None -> ());
    eng.tick_handle.(ctx) <- None;
    match eng.ctx_of.(ctx) with
    | Some tid ->
      eng.ctx_of.(ctx) <- None;
      let tcb = Exec.State.thread eng.st tid in
      if tcb.Vm.Tcb.wait = Vm.Tcb.Runnable then make_runnable eng ~ctx_hint:tid tid
    | None -> ()
  end

let all_contexts_dead eng = Array.for_all Fun.id eng.dead_ctx

let finished eng = Exec.State.all_exited eng.st && Rol.is_empty eng.rol

let finalize eng ~dnc =
  let st = eng.st in
  Sim.Stats.set_max st.Exec.State.stats "gprs.rol_depth" (Rol.max_size eng.rol);
  Sim.Stats.set_max st.Exec.State.stats "wal.high_water" (Wal.high_water eng.wal);
  (* Pool effectiveness counters are host-side observations, recorded only
     under --profile so run stats stay identical across pooled/unpooled
     (and fused/unfused) legs. *)
  if !Vm.Block.profiling then begin
    let hits, misses, live_hw = Subthread.pool_stats eng.pool in
    Sim.Stats.add st.Exec.State.stats "pool.sub.hits" hits;
    Sim.Stats.add st.Exec.State.stats "pool.sub.misses" misses;
    Sim.Stats.set_max st.Exec.State.stats "pool.sub.live_hw" live_hw;
    let cells_alloc, cells_recycled =
      Sim.Event_queue.cell_stats st.Exec.State.evq
    in
    Sim.Stats.add st.Exec.State.stats "pool.evq.cells_alloc" cells_alloc;
    Sim.Stats.add st.Exec.State.stats "pool.evq.cells_recycled" cells_recycled
  end;
  if dnc && Sys.getenv_opt "GPRS_DEBUG" <> None then begin
    Format.eprintf "=== GPRS wedge dump (t=%d) ===@." (now eng);
    Format.eprintf "holder=%s recovering=%b sched_len=%d@."
      (match Order.holder eng.order with
      | Some t -> string_of_int t
      | None -> "none")
      eng.recovering
      (Sched.Scheduler.length eng.sched);
    for tid = 0 to st.Exec.State.n_threads - 1 do
      let tcb = Exec.State.thread st tid in
      Format.eprintf "tid=%d wait=%a eligible=%b on_ctx=%b queued=%b sub=%s@." tid
        Vm.Tcb.pp_wait tcb.Vm.Tcb.wait
        (Order.is_eligible eng.order tid)
        (on_ctx eng tid) (Tidtab.get eng.queued tid)
        (match cur_sub_opt eng tid with
        | Some s -> Format.asprintf "%a" Subthread.pp s
        | None -> "-")
    done;
    Format.eprintf "rol: %a@."
      (Format.pp_print_list ~pp_sep:Format.pp_print_space Subthread.pp)
      (Rol.to_list eng.rol);
    List.iter
      (fun (t, m) -> Format.eprintf "  [%d] %s@." t m)
      (Sim.Trace.to_list st.Exec.State.trace)
  end;
  Exec.State.mk_result st ~dnc

let mk_eng cfg st ~order ~injector ~destroyed ~dead_ctx ~next_sub_id ~stable =
  {
    cfg;
    st;
    sched = Sched.Scheduler.create Sched.Scheduler.Work_steal ~n_contexts:cfg.n_contexts;
    ctx_of = Array.make cfg.n_contexts None;
    tick_handle = Array.make cfg.n_contexts None;
    busy_until = Array.make cfg.n_contexts 0;
    dead_ctx;
    order;
    rol = Rol.create ();
    wal = Wal.create ~stable ();
    next_sub_id;
    pool = Subthread.pool_create ();
    cur_sub = Tidtab.create None;
    pending_delay = Tidtab.create 0;
    queued = Tidtab.create false;
    destroyed;
    recovering = false;
    restart_pending = [];
    interrupted = [];
    pending_reports = [];
    squashed_since_retire = 0;
    injector;
    allow_crash = true;
    grant_guard = 0;
    fault_times = [];
    budget = Option.value ~default:max_int cfg.max_cycles;
    instrs = Sim.Stats.counter st.Exec.State.stats "instrs";
    io_tid = 0;
    par = None;
  }

(* §3.2's coverage of the scheduler and IO metadata: queue inserts and
   file-growth operations are logged at their real sites, on behalf of
   the acting thread's current sub-thread. Threads without a current sub
   (restart releases) need no record — their enqueue is reconstructed by
   the restart logic itself, not replayed from the log. Neither append
   charges extra cycles: the boundary cost already budgets two WAL
   appends per sub-thread and [io_per_word] subsumes the IO append. *)
let install_hooks eng =
  Sched.Scheduler.set_on_enqueue eng.sched
    (Some
       (fun tid ->
         match cur_sub_opt eng tid with
         | Some sub ->
           ignore
             (Wal.append eng.wal ~at:(now eng) ~order:sub.Subthread.id
                (Wal.Sched_enqueue { sub = sub.Subthread.id }))
         | None -> ()));
  eng.st.Exec.State.on_io_grow <-
    Some
      (fun file words ->
        match cur_sub_opt eng eng.io_tid with
        | Some sub ->
          ignore
            (Wal.append eng.wal ~at:(now eng) ~order:sub.Subthread.id
               (Wal.Io_op { file; words }))
        | None -> ())

let boot_checkpoint eng =
  if Wal.stable_armed eng.wal then begin
    let brk, free, used = Vm.Mem.alloc_parts eng.st.Exec.State.mem in
    Wal.log_checkpoint eng.wal ~min_retired:0 ~active:[] ~brk ~free ~used
  end

let run_loop eng =
  eng.par <- Exec.Par.start eng.st;
  Fun.protect ~finally:(fun () -> Exec.Par.stop eng.par) @@ fun () ->
  let st = eng.st and cfg = eng.cfg in
  let rec loop () =
    if eng.squashed_since_retire > cfg.livelock_squashes then finalize eng ~dnc:true
    else if finished eng then finalize eng ~dnc:false
    else if all_contexts_dead eng then finalize eng ~dnc:true
    else
      match Sim.Event_queue.pop st.Exec.State.evq with
      | None ->
        if finished eng then finalize eng ~dnc:false
        else
          raise
            (Exec.State.Deadlock
               (Printf.sprintf
                  "gprs: %d live threads, rol=%d, no pending events"
                  st.Exec.State.live_threads (Rol.size eng.rol)))
      | Some (time, ev) -> (
        match cfg.max_cycles with
        | Some budget when time > budget -> finalize eng ~dnc:true
        | Some _ | None ->
          (match ev with
          | Tick ctx -> (
            eng.tick_handle.(ctx) <- None;
            match eng.ctx_of.(ctx) with
            | None -> fill eng ctx
            | Some tid -> (
              let tcb = Exec.State.thread st tid in
              match tcb.Vm.Tcb.wait with
              | Vm.Tcb.Runnable -> dispatch eng ctx tcb
              | Vm.Tcb.On_mutex _ | Vm.Tcb.On_cond _ | Vm.Tcb.Reacquire _
              | Vm.Tcb.On_barrier _ | Vm.Tcb.On_join _ | Vm.Tcb.On_token
              | Vm.Tcb.Done ->
                eng.ctx_of.(ctx) <- None;
                fill eng ctx))
          | Retire_check -> retire eng
          | Fault_occur { ctx; kind } ->
            remove_fault_time eng time;
            if kind = Faults.Injector.Crash then begin
              if not eng.allow_crash then
                (* a cold-recovered machine: consume and move on *)
                schedule_next_fault eng
              else if eng.recovering then begin
                (* Mid-live-recovery the WAL image is torn (squashed
                   orders not yet dropped, undo half-applied): hold the
                   crash until the machine is consistent again, like the
                   armed-LSN hook does. *)
                add_fault_time eng (time + 1);
                ignore
                  (Sim.Event_queue.schedule st.Exec.State.evq ~time:(time + 1)
                     (Fault_occur { ctx; kind }))
              end
              else raise Crash_signal
            end
            else fault_occur eng ctx kind
          | Fault_report { victim; ctx; kind } ->
            remove_fault_time eng time;
            if
              eng.cfg.revoke_contexts
              && kind = Faults.Injector.Resource_revocation
            then revoke_context eng ctx;
            handle_report eng victim
          | Recovery_done ->
            recovery_done eng;
            retire eng;
            (match eng.pending_reports with
            | [] -> ()
            | v :: rest ->
              eng.pending_reports <- rest;
              handle_report eng v)
          | Crash_point -> raise Crash_signal);
          try_grant eng;
          loop ())
  in
  loop ()

(* Rebuild a running engine from the durable remains of a crashed one.
   The caller (lib/recovery) has already done ARIES analysis over the
   serialized WAL: [redo] reconstructs the allocator (checkpoint image +
   conditional LSN-order replay; returns ops applied), [loser_ops] are
   the log records of the in-flight sub-threads in reverse LSN order,
   [replayed] is the redo-scan length (for the modeled repair duration),
   and [next_sub] continues the order-id sequence past every id the log
   ever granted. Redo runs before undo, as in ARIES: undo's inverse
   operations ([undo_alloc]) assume the exact crash-time allocator,
   which only exists after the retired prefix has been re-applied.
   Returns the resume continuation; everything up to scheduling the
   [Recovery_done] event has happened when it is handed back, so the
   caller can time recovery separately from re-execution. *)
let cold_restart (d : crash_dump) ~redo ~loser_ops ~replayed ~next_sub =
  Faults.Points.strike Faults.Points.Cold_restart;
  let st = d.d_st in
  let cfg = { d.d_cfg with crash_lsn = None; crash_cycle = None } in
  Sim.Event_queue.clear st.Exec.State.evq;
  st.Exec.State.current_undo <- None;
  st.Exec.State.on_io_grow <- None;
  let eng =
    mk_eng cfg st ~order:d.d_order ~injector:d.d_injector
      ~destroyed:d.d_destroyed ~dead_ctx:d.d_dead_ctx ~next_sub_id:next_sub
      ~stable:cfg.wal_stable
  in
  eng.allow_crash <- false;
  install_hooks eng;
  (* Armed points keep watching the restarted engine's WAL (the crash
     LSN does not: it already fired). *)
  Wal.set_on_append eng.wal
    (Some (fun _lsn -> fire_point eng Faults.Points.Wal_append));
  let stats = st.Exec.State.stats in
  (* Restart points: the oldest in-flight sub-thread per thread. Threads
     with no in-flight sub-thread lost nothing — their last sub-thread
     retired, so their TCB state is committed; they stay exactly as they
     were (parked on their sync object, or awaiting the ordering token). *)
  let oldest : (int, Subthread.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (s : Subthread.t) ->
      match Hashtbl.find_opt oldest s.Subthread.tid with
      | Some o when o.Subthread.id <= s.Subthread.id -> ()
      | Some _ | None -> Hashtbl.replace oldest s.Subthread.tid s)
    d.d_subs;
  (* Redo: rebuild the allocator lists from the last checkpoint plus the
     retired-prefix records. *)
  let redone = redo st.Exec.State.mem in
  (* Undo, architectural half: replay the in-flight sub-threads'
     copy-on-write logs, newest sub-thread first (order agrees with
     chronology for conflicting accesses in race-free programs). *)
  Faults.Points.strike Faults.Points.Recovery_undo;
  let words = ref 0 in
  let losers_desc =
    List.sort
      (fun (a : Subthread.t) b -> compare b.Subthread.id a.Subthread.id)
      d.d_subs
  in
  List.iter
    (fun (s : Subthread.t) ->
      s.Subthread.status <- Subthread.Squashed;
      words :=
        !words
        + Exec.Undo_log.replay ~mem:st.Exec.State.mem
            ~atomics:st.Exec.State.atomics ~io:st.Exec.State.io
            s.Subthread.undo)
    losers_desc;
  (* Undo, runtime half: walk the losers' log records in reverse LSN
     order, exactly as live recovery does. *)
  let undone = ref 0 in
  List.iter
    (fun (e : Wal.entry) ->
      incr undone;
      match e.Wal.op with
      | Wal.Alloc { addr; size = _ } -> (
        match Vm.Mem.block_size st.Exec.State.mem addr with
        | Some _ -> Vm.Mem.undo_alloc st.Exec.State.mem addr
        | None -> ())
      | Wal.Thread_create { tid } -> destroy_thread eng tid
      | Wal.Free _ (* quarantined: the block never left the allocator *)
      | Wal.Rol_insert _ | Wal.Sched_enqueue _ | Wal.Io_op _ -> ())
    loser_ops;
  (* Synchronization objects are architectural state and survive the
     crash. Like live recovery, scrub only the threads being rolled back
     (or destroyed) out of their queues — the per-thread restores
     re-establish holders from the checkpoints. Threads that are NOT
     rolled back keep their registrations: a sleeper whose wait-sub
     retired must still be on the condvar when the signal arrives. *)
  let rolled_back tid =
    Hashtbl.mem oldest tid || Tidtab.get eng.destroyed tid
  in
  Array.iteri
    (fun mi (mu : Exec.State.mutex) ->
      (match mu.Exec.State.holder with
      | Some h when rolled_back h -> Exec.State.set_holder st mi None
      | Some _ | None -> ());
      mu.Exec.State.mwaiters <-
        Exec.Fifo.filter (fun w -> not (rolled_back w)) mu.Exec.State.mwaiters)
    st.Exec.State.mutexes;
  Array.iter
    (fun (c : Exec.State.cond) ->
      c.Exec.State.sleepers <-
        Exec.Fifo.filter (fun w -> not (rolled_back w)) c.Exec.State.sleepers)
    st.Exec.State.conds;
  Array.iter
    (fun (b : Exec.State.barrier) ->
      b.Exec.State.arrived <-
        List.filter (fun w -> not (rolled_back w)) b.Exec.State.arrived)
    st.Exec.State.barriers;
  (* Join registrations made by a rolled-back thread are stale: its
     restore checkpoint precedes the blocking join (the sub opened at the
     join boundary is the one being squashed), so it re-registers on
     re-execution. Left in place, the target's exit would fire a spurious
     wake — resurrecting the joiner even after it has itself exited. *)
  for tid = 0 to st.Exec.State.n_threads - 1 do
    let tcb = Exec.State.thread st tid in
    tcb.Vm.Tcb.joiners <-
      List.filter (fun j -> not (rolled_back j)) tcb.Vm.Tcb.joiners
  done;
  (* Precise restart: each affected thread resumes from its oldest
     in-flight sub-thread's history-buffer checkpoint. Restores run in
     ascending checkpoint order: when two checkpoints both record a held
     mutex (an older checkpoint predating a handover), the chronologically
     earlier hold wins and the later claimant queues until the re-executed
     unlock hands it over. *)
  let restores =
    Hashtbl.fold (fun _ (s : Subthread.t) acc -> s :: acc) oldest []
    |> List.sort (fun (a : Subthread.t) b -> compare a.Subthread.id b.Subthread.id)
  in
  let restarts = ref [] in
  List.iter
    (fun (o : Subthread.t) ->
      let tid = o.Subthread.tid in
      (* A loser Thread_create undo above may have destroyed this tid. *)
      if not (Tidtab.get eng.destroyed tid) then begin
        let tcb = Exec.State.thread st tid in
        if tcb.Vm.Tcb.wait = Vm.Tcb.Done then begin
          (* The thread exited inside lost work: revive it. The crash can
             strike between the [Done] transition and the order-table
             removal (a joiner-wake append mid-[Exit]), so membership is
             checked rather than assumed. *)
          st.Exec.State.live_threads <- st.Exec.State.live_threads + 1;
          if not (Order.mem eng.order tid) then
            Order.add_thread eng.order ~tid ~group:tcb.Vm.Tcb.group
        end;
        Vm.Tcb.restore_state tcb o.Subthread.saved;
        tcb.Vm.Tcb.wait <- Vm.Tcb.Runnable;
        List.iter
          (fun m ->
            let mu = st.Exec.State.mutexes.(m) in
            match mu.Exec.State.holder with
            | None -> Exec.State.set_holder st m (Some tid)
            | Some h when h = tid -> ()
            | Some _ ->
              Sim.Stats.incr stats "gprs.regrant_waits";
              mu.Exec.State.mwaiters <-
                Exec.Fifo.push_front mu.Exec.State.mwaiters tid;
              tcb.Vm.Tcb.wait <- Vm.Tcb.On_mutex m)
          o.Subthread.held_locks;
        (match o.Subthread.pending_mutex with
        | None -> ()
        | Some m -> (
          let mu = st.Exec.State.mutexes.(m) in
          match mu.Exec.State.holder with
          | None -> Exec.State.set_holder st m (Some tid)
          | Some h when h = tid -> ()
          | Some _ ->
            mu.Exec.State.mwaiters <- Exec.Fifo.push mu.Exec.State.mwaiters tid;
            tcb.Vm.Tcb.wait <- Vm.Tcb.On_mutex m));
        Order.set_eligible eng.order tid (tcb.Vm.Tcb.wait = Vm.Tcb.Runnable);
        restarts := tid :: !restarts
      end)
    restores;
  (* Stranded waiters: the rollbacks can leave a mutex free while its
     queue still holds un-rolled-back threads — hand it to the head. *)
  Array.iteri
    (fun mi (mu : Exec.State.mutex) ->
      match (mu.Exec.State.holder, Exec.Fifo.pop mu.Exec.State.mwaiters) with
      | None, Some (w, rest) ->
        Exec.State.set_holder st mi (Some w);
        mu.Exec.State.mwaiters <- rest;
        let wt = Exec.State.thread st w in
        wt.Vm.Tcb.wait <- Vm.Tcb.Runnable;
        Order.set_eligible eng.order w true;
        if not (List.mem w !restarts) then make_runnable eng ~ctx_hint:w w
      | (Some _ | None), _ -> ())
    st.Exec.State.mutexes;
  (* Runnable threads with no in-flight sub-thread lost only their seat
     in the (volatile) work queues — e.g. threads a pre-crash live
     recovery had reset and re-queued. Their TCBs are current; they just
     need re-enqueueing when recovery completes. *)
  for tid = 0 to st.Exec.State.n_threads - 1 do
    if
      (Exec.State.thread st tid).Vm.Tcb.wait = Vm.Tcb.Runnable
      && (not (rolled_back tid))
      && not (List.mem tid !restarts)
    then restarts := tid :: !restarts
  done;
  Sim.Stats.incr stats "recovery.cold_restarts";
  Sim.Stats.add stats "recovery.replayed_lsns" replayed;
  Sim.Stats.add stats "recovery.redone_ops" redone;
  Sim.Stats.add stats "recovery.squashed_subs" (List.length d.d_subs);
  Sim.Stats.add stats "recovery.restored_words" !words;
  Sim.Stats.add stats "recovery.wal_undone" !undone;
  let costs = cfg.costs in
  let duration =
    costs.Vm.Costs.pause_resume
    + (costs.Vm.Costs.restore_per_word * !words)
    + (costs.Vm.Costs.wal_undo * (replayed + !undone))
  in
  eng.recovering <- true;
  eng.restart_pending <- List.sort compare !restarts;
  ignore
    (Sim.Event_queue.schedule st.Exec.State.evq
       ~time:(d.d_cycle + Stdlib.max 1 duration)
       Recovery_done);
  boot_checkpoint eng;
  schedule_next_fault eng;
  fun () -> run_loop eng

let run ?(lint = `Warn) ?wal_out ?blocks cfg program =
  (match lint with
  | `Off -> ()
  | (`Warn | `Strict) as mode -> (
    let diags = Lint.Check.program program in
    let visible =
      List.filter
        (fun d -> d.Lint.Diagnostic.severity <> Lint.Diagnostic.Info)
        diags
    in
    match mode with
    | `Strict when Lint.Check.has_errors diags ->
      raise (Lint.Check.Rejected (Lint.Check.errors diags))
    | `Strict | `Warn ->
      if visible <> [] then
        Format.eprintf "%a"
          (Lint.Render.pp ~title:"GPRS-lint (pre-execution)")
          visible));
  let st =
    Exec.State.create ?blocks ~program ~costs:cfg.costs
      ~n_contexts:cfg.n_contexts ~seed:cfg.seed ()
  in
  let stable =
    cfg.wal_stable || cfg.crash_lsn <> None || cfg.crash_cycle <> None
  in
  let eng =
    mk_eng cfg st
      ~order:(Order.create cfg.ordering ~group_weights:program.Vm.Isa.group_weights)
      ~injector:
        (Faults.Injector.create cfg.injector ~n_contexts:cfg.n_contexts
           ~cycles_per_second:cfg.costs.Vm.Costs.cycles_per_second)
      ~destroyed:(Tidtab.create false)
      ~dead_ctx:(Array.make cfg.n_contexts false)
      ~next_sub_id:0 ~stable
  in
  install_hooks eng;
  boot_checkpoint eng;
  Wal.set_on_append eng.wal
    (Some
       (fun lsn ->
         (match cfg.crash_lsn with
         | Some k when lsn = k && not eng.recovering -> raise Crash_signal
         | _ -> ());
         fire_point eng Faults.Points.Wal_append));
  try
    (match cfg.crash_cycle with
    | Some t ->
      ignore (Sim.Event_queue.schedule st.Exec.State.evq ~time:t Crash_point)
    | None -> ());
    let main = Exec.State.thread st Exec.State.main_tid in
    Order.add_thread eng.order ~tid:Exec.State.main_tid ~group:main.Vm.Tcb.group;
    ignore (new_sub eng main);
    make_runnable eng ~ctx_hint:0 Exec.State.main_tid;
    (* Fault horizon armed before the first dispatch so fused chains never
       cross the first occurrence. *)
    schedule_next_fault eng;
    fill_all eng;
    let res = run_loop eng in
    (match wal_out with
    | Some r ->
      r := Option.value ~default:"" (Wal.stable_image eng.wal)
    | None -> ());
    res
  with Crash_signal -> raise (Crashed (capture eng))
