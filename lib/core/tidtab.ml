(* Tids are dense and allocated monotonically from 0, so the engine's
   per-tid maps are plain growable arrays: get/set are O(1) with no
   hashing and no per-binding allocation (the Hashtbls they replace
   allocated a bucket cell per insert on the boundary hot path). *)

type 'a t = { mutable buf : 'a array; default : 'a }

let create ?(capacity = 64) default =
  { buf = Array.make (Stdlib.max 1 capacity) default; default }

let ensure t n =
  if n >= Array.length t.buf then begin
    let cap = ref (2 * Array.length t.buf) in
    while n >= !cap do
      cap := !cap * 2
    done;
    let buf = Array.make !cap t.default in
    Array.blit t.buf 0 buf 0 (Array.length t.buf);
    t.buf <- buf
  end

let get t i = if i < Array.length t.buf then t.buf.(i) else t.default

let set t i v =
  ensure t i;
  t.buf.(i) <- v
