type scheme = Round_robin | Balance_aware | Weighted | Recorded

type member = { tid : int; mutable dead : bool; mutable eligible : bool }

type group = {
  weight : int;
  mutable members : member array;
  mutable count : int;
  mutable cursor : int;  (* index of the next member to consider *)
}

type t = {
  sch : scheme;
  groups : group array;
  mutable gcursor : int;
  mutable budget : int;  (* remaining turns for the cursor group *)
  index : (int, member * int) Hashtbl.t;  (* tid -> (member, group idx) *)
  mutable live : int;
}

let mk_group weight = { weight; members = [||]; count = 0; cursor = 0 }

let create sch ~group_weights =
  let groups =
    match sch with
    | Round_robin | Recorded -> [| mk_group 1 |]
    | Balance_aware -> Array.map (fun _ -> mk_group 1) group_weights
    | Weighted -> Array.map (fun w -> mk_group (Stdlib.max 1 w)) group_weights
  in
  let budget = if Array.length groups = 0 then 1 else groups.(0).weight in
  { sch; groups; gcursor = 0; budget; index = Hashtbl.create 64; live = 0 }

let scheme t = t.sch

let group_idx t group =
  match t.sch with
  | Round_robin | Recorded -> 0
  | Balance_aware | Weighted ->
    if group < 0 || group >= Array.length t.groups then
      invalid_arg "Order.add_thread: group out of range"
    else group

let add_thread t ~tid ~group =
  if Hashtbl.mem t.index tid then invalid_arg "Order.add_thread: duplicate tid";
  let gi = group_idx t group in
  let g = t.groups.(gi) in
  let m = { tid; dead = false; eligible = true } in
  if g.count = Array.length g.members then begin
    let members' = Array.make (Stdlib.max 8 (2 * g.count)) m in
    Array.blit g.members 0 members' 0 g.count;
    g.members <- members'
  end;
  g.members.(g.count) <- m;
  g.count <- g.count + 1;
  Hashtbl.add t.index tid (m, gi);
  t.live <- t.live + 1

let remove_thread t tid =
  match Hashtbl.find_opt t.index tid with
  | None -> ()
  | Some (m, _) ->
    if not m.dead then begin
      m.dead <- true;
      t.live <- t.live - 1
    end;
    Hashtbl.remove t.index tid

let set_eligible t tid e =
  match Hashtbl.find_opt t.index tid with
  | None -> ()
  | Some (m, _) -> m.eligible <- e

let is_eligible t tid =
  match Hashtbl.find_opt t.index tid with
  | None -> false
  | Some (m, _) -> (not m.dead) && m.eligible

let mem t tid = Hashtbl.mem t.index tid

let live_count t = t.live

(* First live eligible member of [g] scanning from its cursor, wrapping. *)
let scan_group g =
  let rec go i =
    if i >= g.count then None
    else
      let m = g.members.((g.cursor + i) mod g.count) in
      if (not m.dead) && m.eligible then Some m.tid else go (i + 1)
  in
  if g.count = 0 then None else go 0

let holder t =
  if t.sch = Recorded then None
  else
  let n = Array.length t.groups in
  let rec go i =
    if i >= n then None
    else
      match scan_group t.groups.((t.gcursor + i) mod n) with
      | Some tid -> Some tid
      | None -> go (i + 1)
  in
  if n = 0 then None else go 0

let advance t ~granted =
  match Hashtbl.find_opt t.index granted with
  | None -> ()
  | Some (m, gi) ->
    let g = t.groups.(gi) in
    (* Move the group's cursor just past the granted member. *)
    let pos = ref (-1) in
    for i = 0 to g.count - 1 do
      if g.members.(i) == m then pos := i
    done;
    (* Stored un-reduced; [scan_group] reduces modulo the current member
       count, so threads appended later slot into the rotation correctly. *)
    if !pos >= 0 then g.cursor <- !pos + 1;
    (* Group rotation: if the grant came from a group ahead of the cursor
       (the cursor group had no eligible member), adopt it first. *)
    if gi <> t.gcursor then begin
      t.gcursor <- gi;
      t.budget <- g.weight
    end;
    t.budget <- t.budget - 1;
    if t.budget <= 0 then begin
      let n = Array.length t.groups in
      t.gcursor <- (t.gcursor + 1) mod Stdlib.max 1 n;
      t.budget <- t.groups.(t.gcursor).weight
    end
