(** Conventional coordinated checkpoint-and-recovery (P-CPR).

    The paper's software baseline (§2.3): periodically, a global barrier
    stops every thread; once all contexts quiesce, each records its
    application-level checkpoint state between two barriers; execution
    then resumes. When an exception is reported, the program halts, the
    most recent checkpoint {e consistent with the exception's occurrence
    time} is restored (a checkpoint taken inside the detection-latency
    window is contaminated and skipped), and {e all} work since is lost.

    The execution machinery (dispatch, synchronization, costs) is the same
    as {!Exec.Baseline}; only the checkpoint/recovery apparatus is added,
    so P-CPR-vs-GPRS differences isolate the recovery designs.

    Statistics recorded under ["cpr.*"]: checkpoints committed, rollbacks,
    lost cycles, checkpoint words, quiesce/record/restore time. *)

type config = {
  n_contexts : int;
  seed : int;
  max_cycles : int option;  (** DNC budget *)
  checkpoint_interval : float;  (** seconds between checkpoint initiations *)
  injector : Faults.Injector.config;
  livelock_rollbacks : int;
      (** consecutive rollbacks with no intervening committed checkpoint
          before the run is declared DNC *)
  costs : Vm.Costs.t;
  commit_progress_fraction : float;
      (** progress gate: a checkpoint commits only when every pre-existing
          computing thread advanced by this fraction of an interval of its
          own work since the last commit (threads parked at
          synchronization operations count as at a checkpoint location).
          Anchors checkpoints to program progress like the paper's
          sync-point barriers; without it CPR would commit arbitrary
          quiesced states and crawl through exception storms the paper's
          scheme cannot survive. 0.0 disables. Default 0.5. *)
  crash_at : int option;
      (** whole-runtime crash at this simulated cycle: the machine loses
          all work since the last committed global checkpoint and restores
          it — P-CPR's answer to the crash the GPRS sweep recovers from
          via WAL replay + history-buffer restarts. Default [None]. *)
}

val default_config : config
(** 24 contexts, 1s interval, no faults, livelock bound 200. *)

val run :
  ?blocks:Vm.Block.t -> config -> Vm.Isa.program -> Exec.State.run_result
