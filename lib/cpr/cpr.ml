type config = {
  n_contexts : int;
  seed : int;
  max_cycles : int option;
  checkpoint_interval : float;
  injector : Faults.Injector.config;
  livelock_rollbacks : int;
  costs : Vm.Costs.t;
  commit_progress_fraction : float;
      (** a checkpoint only commits when every pre-existing computing
          thread has advanced by at least this fraction of an interval of
          its own work since the last committed checkpoint. This anchors
          checkpoints to {e program} progress, as the paper's sync-point
          barriers do — without it, time-triggered commits of arbitrary
          quiesced states let CPR crawl through exception storms the
          paper's scheme cannot survive. 0.0 disables the gate. *)
  crash_at : int option;
      (** whole-runtime crash at this simulated cycle: all work since the
          last committed global checkpoint is lost and the machine
          restarts from it — the comparison leg the crash sweep runs
          against GPRS's WAL-driven cold recovery *)
}

let default_config =
  {
    n_contexts = 24;
    seed = 1;
    max_cycles = None;
    checkpoint_interval = 1.0;
    injector = Faults.Injector.default_config;
    livelock_rollbacks = 200;
    costs = Vm.Costs.default;
    commit_progress_fraction = 0.5;
    crash_at = None;
  }

type event =
  | Tick of int
  | Ckpt_alarm
  | Ckpt_done
  | Fault_report of { occurred_at : int; ctx : int }
  | Restore_done
  | Crash_point  (* [crash_at] fired: roll back to the last checkpoint *)

(* A committed coordinated checkpoint: the restartable image of every
   thread plus synchronization-object and allocator state. Data words
   live in a page-granular dirty-tracked [Vm.Mem.image]: taking a
   checkpoint copies only pages written since the image was last synced,
   and restoring copies back only pages written since it was taken. *)
type snapshot = {
  taken_at : int;
  image : Vm.Mem.image;
  n_threads : int;
  live_threads : int;
  tcbs : Vm.Tcb.saved array;
  waits : Vm.Tcb.wait array;
  joiners : int list array;
  work_done : int array;  (** per-thread executed cycles, for progress gating *)
  barrier_done : int array array;
      (** CPR rolls everything back, including completed barrier
          episodes — unlike selective restart, the whole machine replays
          them. *)
  (* Waiter queues are immutable, so snapshotting them is by reference. *)
  mutex_state : (int option * Exec.Fifo.t) array;
  cond_state : Exec.Fifo.t array;
  barrier_state : int list array;
  alloc_state : Vm.Mem.alloc_state;
}

type mode = Normal | Quiescing | Recording | Restoring

type eng = {
  cfg : config;
  st : event Exec.State.t;
  mutable sched : Sched.Scheduler.t;
  ctx_of : int option array;
  last_tid : int array;
  started : int array;
  tick_handle : Sim.Event_queue.handle option array;
  mutable queued : (int, unit) Hashtbl.t;
  mutable mode : mode;
  (* Checkpoints, newest first; at most two retained. [cur_log] covers
     writes since the newest; [prev_log] covers the interval between the
     two. *)
  mutable snaps : snapshot list;
  (* Data images of dropped snapshots, recycled so steady-state
     checkpointing allocates nothing. *)
  mutable image_pool : Vm.Mem.image list;
  mutable cur_log : Exec.Undo_log.t;
  mutable prev_log : Exec.Undo_log.t;
  mutable alarm : Sim.Event_queue.handle option;
  mutable ckpt_done_handle : Sim.Event_queue.handle option;
  mutable quiesce_started : int;
  mutable injector : Faults.Injector.t;
  mutable pending_reports : (int * int) list;  (* (occurred_at, ctx), oldest first *)
  mutable consecutive_rollbacks : int;
  mutable restore_resets_to : int;  (* taken_at of last restore target *)
  mutable work_done : int array;  (* per-thread executed cycles; grown on demand *)
  (* Fused-dispatch horizons: a chain must not cross the armed checkpoint
     alarm or the outstanding fault report (max_int when none). *)
  mutable alarm_time : int;
  mutable next_report_time : int;
  budget : int;  (* max_cycles, or max_int *)
  instrs : int ref;  (* cached "instrs" counter *)
  mutable par : Exec.Par.session option;  (* intra-run window pool claim *)
}

let note_work eng tid d =
  if tid >= Array.length eng.work_done then begin
    let grown = Array.make (Stdlib.max 16 (2 * (tid + 1))) 0 in
    Array.blit eng.work_done 0 grown 0 (Array.length eng.work_done);
    eng.work_done <- grown
  end;
  eng.work_done.(tid) <- eng.work_done.(tid) + d

let now eng = Exec.State.now eng.st

let grab_image eng =
  match eng.image_pool with
  | img :: rest ->
    eng.image_pool <- rest;
    img
  | [] -> Vm.Mem.alloc_image eng.st.Exec.State.mem

let take_snapshot eng =
  let st = eng.st in
  let n = st.Exec.State.n_threads in
  let image = grab_image eng in
  let copied = Vm.Mem.capture st.Exec.State.mem image in
  Sim.Stats.add st.Exec.State.stats "cpr.snap_words_copied" copied;
  {
    taken_at = now eng;
    image;
    n_threads = n;
    live_threads = st.Exec.State.live_threads;
    tcbs = Array.init n (fun i -> Vm.Tcb.copy_state st.Exec.State.threads.(i));
    waits = Array.init n (fun i -> st.Exec.State.threads.(i).Vm.Tcb.wait);
    joiners = Array.init n (fun i -> st.Exec.State.threads.(i).Vm.Tcb.joiners);
    barrier_done =
      Array.init n (fun i -> Array.copy st.Exec.State.threads.(i).Vm.Tcb.barrier_done);
    mutex_state =
      Array.map
        (fun (m : Exec.State.mutex) -> (m.Exec.State.holder, m.Exec.State.mwaiters))
        st.Exec.State.mutexes;
    cond_state =
      Array.map (fun (c : Exec.State.cond) -> c.Exec.State.sleepers) st.Exec.State.conds;
    barrier_state =
      Array.map (fun (b : Exec.State.barrier) -> b.Exec.State.arrived) st.Exec.State.barriers;
    alloc_state = Vm.Mem.save_alloc st.Exec.State.mem;
    work_done =
      Array.init n (fun i ->
          if i < Array.length eng.work_done then eng.work_done.(i) else 0);
  }

let restore_snapshot eng snap =
  let st = eng.st in
  st.Exec.State.n_threads <- snap.n_threads;
  st.Exec.State.live_threads <- snap.live_threads;
  for i = 0 to snap.n_threads - 1 do
    let tcb = st.Exec.State.threads.(i) in
    Vm.Tcb.restore_state tcb snap.tcbs.(i);
    tcb.Vm.Tcb.wait <- snap.waits.(i);
    tcb.Vm.Tcb.joiners <- snap.joiners.(i);
    Array.blit snap.barrier_done.(i) 0 tcb.Vm.Tcb.barrier_done 0
      (Array.length tcb.Vm.Tcb.barrier_done)
  done;
  (* The holder map is restored wholesale, so rebuild the TCBs'
     incremental held-mutex sets rather than replaying transitions. *)
  for i = 0 to snap.n_threads - 1 do
    st.Exec.State.threads.(i).Vm.Tcb.held_mutexes <- []
  done;
  Array.iteri
    (fun i (holder, waiters) ->
      let m = st.Exec.State.mutexes.(i) in
      m.Exec.State.holder <- holder;
      m.Exec.State.mwaiters <- waiters;
      match holder with
      | Some h -> Vm.Tcb.hold st.Exec.State.threads.(h) i
      | None -> ())
    snap.mutex_state;
  Array.iteri
    (fun i sleepers -> st.Exec.State.conds.(i).Exec.State.sleepers <- sleepers)
    snap.cond_state;
  Array.iteri
    (fun i arrived -> st.Exec.State.barriers.(i).Exec.State.arrived <- arrived)
    snap.barrier_state;
  let copied = Vm.Mem.restore_image st.Exec.State.mem snap.image in
  Sim.Stats.add st.Exec.State.stats "cpr.snap_words_uncopied" copied;
  Vm.Mem.restore_alloc st.Exec.State.mem snap.alloc_state;
  eng.work_done <- Array.copy snap.work_done

(* ------------------------------------------------------------------ *)
(* Dispatch machinery (baseline semantics; see Exec.Baseline).         *)
(* ------------------------------------------------------------------ *)

let on_ctx eng tid = Array.exists (fun o -> o = Some tid) eng.ctx_of

let make_runnable eng ~ctx_hint tid =
  if (not (Hashtbl.mem eng.queued tid)) && not (on_ctx eng tid) then begin
    Hashtbl.add eng.queued tid ();
    Sched.Scheduler.enqueue eng.sched ~ctx_hint tid
  end

let schedule_tick eng ctx ~after =
  let h =
    Sim.Event_queue.schedule eng.st.Exec.State.evq ~prio:(1 + ctx)
      ~time:(now eng + Stdlib.max Exec.Sem.min_cost after)
      (Tick ctx)
  in
  eng.tick_handle.(ctx) <- Some h

(* One integer bound for the fused chain, folding the budget, the armed
   checkpoint alarm, the outstanding fault report and the scheduler
   quantum — exactly the deopt predicate the sequential fused leg uses. *)
let hop_horizon eng ctx ~q_empty ~t_next =
  let quantum = eng.st.Exec.State.costs.Vm.Costs.quantum in
  let b = if eng.budget = max_int then max_int else eng.budget + 1 in
  let sched_h =
    let q = eng.started.(ctx) + quantum in
    if q_empty && t_next > q then t_next else q
  in
  Stdlib.min
    (Stdlib.min b eng.alarm_time)
    (Stdlib.min eng.next_report_time sched_h)

let entry_horizon eng ctx =
  let q_empty = Sched.Scheduler.is_empty eng.sched in
  let t_next =
    match Sim.Event_queue.peek_time eng.st.Exec.State.evq with
    | Some t -> t
    | None -> max_int
  in
  hop_horizon eng ctx ~q_empty ~t_next

(* Offer the thread's next hop to the window pool (see Exec.Baseline's
   lease_next for the guessing rationale). CPR threads all charge
   copy-on-write against the single current interval log. *)
let lease_next eng ctx (tcb : Vm.Tcb.t) ~t_tick =
  if
    eng.par <> None && eng.mode = Normal
    && tcb.Vm.Tcb.wait = Vm.Tcb.Runnable
  then begin
    let q_empty = Sched.Scheduler.is_empty eng.sched in
    let t_next =
      match eng.tick_handle.(ctx) with
      | Some h -> (
        match Sim.Event_queue.next_time_excluding eng.st.Exec.State.evq h with
        | Some t -> t
        | None -> max_int)
      | None -> max_int
    in
    let horizon = hop_horizon eng ctx ~q_empty ~t_next in
    let hrel =
      if horizon = max_int then max_int
      else
        Stdlib.max (horizon - t_tick) eng.st.Exec.State.costs.Vm.Costs.quantum
    in
    Exec.Par.lease eng.par eng.st tcb
      ~undo:eng.st.Exec.State.current_undo ~delay:0 ~hrel
  end

let dispatch_seq eng ctx (tcb : Vm.Tcb.t) =
  let st = eng.st in
  let t0 = now eng in
  let ctrl = ref 0 in
  let rec fetch () =
    match Vm.Tcb.current_instr tcb with
    | None -> Vm.Isa.Exit
    | Some (Vm.Isa.Goto target) ->
      tcb.Vm.Tcb.pc <- target;
      incr ctrl;
      fetch ()
    | Some (Vm.Isa.If { cond; target }) ->
      tcb.Vm.Tcb.pc <-
        (if cond tcb.Vm.Tcb.regs then target else tcb.Vm.Tcb.pc + 1);
      incr ctrl;
      fetch ()
    | Some Vm.Isa.Cpr_begin ->
      tcb.Vm.Tcb.in_cpr_region <- true;
      tcb.Vm.Tcb.pc <- tcb.Vm.Tcb.pc + 1;
      incr ctrl;
      fetch ()
    | Some Vm.Isa.Cpr_end ->
      tcb.Vm.Tcb.in_cpr_region <- false;
      tcb.Vm.Tcb.pc <- tcb.Vm.Tcb.pc + 1;
      incr ctrl;
      fetch ()
    | Some i -> i
  in
  let instr = fetch () in
  incr eng.instrs;
  Vm.Block.profile_ctrl st.Exec.State.stats !ctrl;
  Vm.Block.profile_instr st.Exec.State.stats instr;
  (match instr with Vm.Isa.Exit -> () | _ -> tcb.Vm.Tcb.pc <- tcb.Vm.Tcb.pc + 1);
  let wake ?(hint = ctx) tids = List.iter (make_runnable eng ~ctx_hint:hint) tids in
  let d =
    match instr with
    | Vm.Isa.Work { cost; run } | Vm.Isa.Opaque { cost; run } ->
      Exec.Sem.exec_work st tcb ~cost ~run
    | Vm.Isa.Lock { m } ->
      let acquired, d = Exec.Sem.try_lock st tcb (m tcb.Vm.Tcb.regs) in
      if acquired then tcb.Vm.Tcb.lock_depth <- tcb.Vm.Tcb.lock_depth + 1;
      d
    | Vm.Isa.Unlock { m } ->
      let woken, d = Exec.Sem.unlock st tcb (m tcb.Vm.Tcb.regs) in
      tcb.Vm.Tcb.lock_depth <- tcb.Vm.Tcb.lock_depth - 1;
      (match woken with Some w -> wake [ w ] | None -> ());
      d
    | Vm.Isa.Barrier { b } ->
      let released, d = Exec.Sem.barrier_arrive st tcb b in
      wake released;
      d
    | Vm.Isa.Cond_wait { c; m } ->
      let granted, d = Exec.Sem.cond_block st tcb ~c ~m in
      tcb.Vm.Tcb.lock_depth <- tcb.Vm.Tcb.lock_depth - 1;
      (match granted with Some w -> wake [ w ] | None -> ());
      d
    | Vm.Isa.Cond_signal { c; all } ->
      let _woken, runnable, d = Exec.Sem.cond_wake st ~c ~all in
      wake runnable;
      d
    | Vm.Isa.Atomic { var; rmw; dst } | Vm.Isa.Nonstd_atomic { var; rmw; dst } ->
      Exec.Sem.atomic_rmw st tcb ~var:(var tcb.Vm.Tcb.regs) ~rmw ~dst
    | Vm.Isa.Fork { group; proc; args; dst } ->
      let child, d = Exec.Sem.fork st tcb ~group ~proc ~args ~dst in
      wake [ child.Vm.Tcb.tid ];
      d
    | Vm.Isa.Join { tid } ->
      let _ready, d = Exec.Sem.join st tcb ~target:(tid tcb.Vm.Tcb.regs) in
      d
    | Vm.Isa.Alloc { size; dst } ->
      let _a, d = Exec.Sem.alloc st tcb ~size ~dst in
      d
    | Vm.Isa.Free { addr } ->
      let _sz, d = Exec.Sem.free_ st tcb ~addr in
      d
    | Vm.Isa.Exit ->
      let joiners, d = Exec.Sem.exit_thread st tcb in
      wake joiners;
      d
    | Vm.Isa.Goto _ | Vm.Isa.If _ | Vm.Isa.Cpr_begin | Vm.Isa.Cpr_end ->
      assert false
  in
  if Vm.Block.fusing () && tcb.Vm.Tcb.wait = Vm.Tcb.Runnable then begin
    let q_empty = Sched.Scheduler.is_empty eng.sched in
    let t_next =
      match Sim.Event_queue.peek_time st.Exec.State.evq with
      | Some t -> t
      | None -> max_int
    in
    (* Strict on the alarm and report horizons: at those instants the
       alarm/report event outranks the tick (lower priority value), so
       the unfused engine quiesces or restores before dispatching. *)
    let horizon = hop_horizon eng ctx ~q_empty ~t_next in
    let vend =
      Exec.Fuse.run_chain st tcb ~instrs:eng.instrs ~horizon
        ~on_fused:(fun _ _ -> ())
        ~vstart:(t0 + Stdlib.max Exec.Sem.min_cost (!ctrl + d))
        ()
    in
    note_work eng tcb.Vm.Tcb.tid (vend - t0);
    schedule_tick eng ctx ~after:(vend - t0);
    lease_next eng ctx tcb ~t_tick:vend
  end
  else begin
    note_work eng tcb.Vm.Tcb.tid (!ctrl + d);
    schedule_tick eng ctx ~after:(!ctrl + d)
  end

(* Dispatch seam: a leased window for this thread, if it validates,
   replaces the whole sequential hop above (including its note_work). *)
let dispatch eng ctx (tcb : Vm.Tcb.t) =
  if eng.par = None then dispatch_seq eng ctx tcb
  else if not (Vm.Block.fusing ()) || eng.mode <> Normal then begin
    Exec.Par.cancel eng.par ~tid:tcb.Vm.Tcb.tid;
    dispatch_seq eng ctx tcb
  end
  else begin
    let t0 = now eng in
    match
      Exec.Par.commit eng.par eng.st tcb ~horizon:(entry_horizon eng ctx)
        ~delay:0 ~instrs:eng.instrs
    with
    | None -> dispatch_seq eng ctx tcb
    | Some c ->
      note_work eng tcb.Vm.Tcb.tid (c.Exec.Par.c_vend - t0);
      schedule_tick eng ctx ~after:(c.Exec.Par.c_vend - t0);
      lease_next eng ctx tcb ~t_tick:c.Exec.Par.c_vend
  end

let fill eng ctx =
  if eng.mode = Normal then
    match Sched.Scheduler.take eng.sched ~ctx with
    | None -> ()
    | Some (tid, stolen) ->
      Hashtbl.remove eng.queued tid;
      let st = eng.st in
      let costs = st.Exec.State.costs in
      let extra =
        (if stolen then costs.Vm.Costs.steal else 0)
        + if eng.last_tid.(ctx) >= 0 && eng.last_tid.(ctx) <> tid then begin
            Sim.Stats.incr st.Exec.State.stats "ctx_switches";
            costs.Vm.Costs.ctx_switch
          end
          else 0
      in
      eng.ctx_of.(ctx) <- Some tid;
      eng.last_tid.(ctx) <- tid;
      eng.started.(ctx) <- now eng;
      if extra = 0 then dispatch eng ctx (Exec.State.thread st tid)
      else schedule_tick eng ctx ~after:extra

let fill_all eng =
  for ctx = 0 to Array.length eng.ctx_of - 1 do
    if eng.ctx_of.(ctx) = None then fill eng ctx
  done

let all_ctx_idle eng = Array.for_all (fun o -> o = None) eng.ctx_of

(* ------------------------------------------------------------------ *)
(* Checkpointing                                                       *)
(* ------------------------------------------------------------------ *)

let tcb_words = Vm.Isa.n_registers + 2

let begin_recording eng =
  let st = eng.st in
  let costs = st.Exec.State.costs in
  eng.mode <- Recording;
  let dirty = Exec.Undo_log.size eng.cur_log in
  let words = dirty + (st.Exec.State.live_threads * tcb_words) in
  Sim.Stats.add st.Exec.State.stats "cpr.ckpt_words" words;
  Sim.Stats.observe st.Exec.State.stats "cpr.quiesce_cycles"
    (float_of_int (now eng - eng.quiesce_started));
  let record_time =
    (2 * costs.Vm.Costs.barrier_coord)
    + costs.Vm.Costs.record_per_word * words / Stdlib.max 1 eng.cfg.n_contexts
  in
  let h =
    Sim.Event_queue.schedule st.Exec.State.evq
      ~time:(now eng + Stdlib.max 1 record_time)
      Ckpt_done
  in
  eng.ckpt_done_handle <- Some h

(* Progress gate: the commit is anchored to program progress, like the
   paper's sync-point barriers. Every thread that existed at the last
   committed checkpoint and is still computing must have advanced by the
   configured fraction of an interval of its own work; threads parked at
   synchronization operations sit at a "checkpoint location" and
   qualify. *)
let progressed_enough eng =
  match eng.snaps with
  | [] -> true
  | last :: _ ->
    let interval_cycles =
      Sim.Time.of_seconds
        ~cycles_per_second:eng.cfg.costs.Vm.Costs.cycles_per_second
        eng.cfg.checkpoint_interval
    in
    let threshold =
      int_of_float (eng.cfg.commit_progress_fraction *. float_of_int interval_cycles)
    in
    threshold <= 0
    ||
    (* Commit when no computing thread is mid-replay: each either made a
       full stride of progress (>= threshold) or has not moved at all
       since the last checkpoint (it still sits at its recorded location,
       so re-recording it is sound). At least one thread must have made a
       real stride — otherwise the commit would bank nothing yet reset
       the livelock detector. *)
    let all_ok = ref true and any_stride = ref false in
    for tid = 0 to last.n_threads - 1 do
      let tcb = Exec.State.thread eng.st tid in
      let before = if tid < Array.length last.work_done then last.work_done.(tid) else 0 in
      let now_w = if tid < Array.length eng.work_done then eng.work_done.(tid) else 0 in
      let delta = now_w - before in
      if delta >= threshold then any_stride := true;
      match tcb.Vm.Tcb.wait with
      | Vm.Tcb.Runnable -> if delta > 0 && delta < threshold then all_ok := false
      | Vm.Tcb.On_mutex _ | Vm.Tcb.On_cond _ | Vm.Tcb.Reacquire _
      | Vm.Tcb.On_barrier _ | Vm.Tcb.On_join _ | Vm.Tcb.On_token | Vm.Tcb.Done ->
        if delta > 0 then any_stride := true
    done;
    (* Threads created after the last checkpoint count as progress. *)
    if eng.st.Exec.State.n_threads > last.n_threads then any_stride := true;
    !all_ok && !any_stride

let commit_checkpoint eng =
  let st = eng.st in
  eng.ckpt_done_handle <- None;
  if not (progressed_enough eng) then begin
    Sim.Stats.incr st.Exec.State.stats "cpr.ckpt_skipped";
    eng.mode <- Normal;
    fill_all eng
  end
  else begin
  let snap = take_snapshot eng in
  (* Retain the two newest checkpoints: the grand-previous epoch's undo
     records are folded away (discarded) by merging into nothing — we
     simply drop them, since rollback never reaches past two checkpoints
     (the detection latency is far below the checkpoint interval). *)
  (match eng.snaps with
  | [] -> eng.snaps <- [ snap ]
  | s1 :: dropped ->
    List.iter (fun s -> eng.image_pool <- s.image :: eng.image_pool) dropped;
    eng.snaps <- [ snap; s1 ];
    eng.prev_log <- eng.cur_log);
  eng.cur_log <- Exec.Undo_log.create ~paged:st.Exec.State.mem ();
  st.Exec.State.current_undo <- Some eng.cur_log;
  (* A rollback only resets the livelock counter when the program has
     banked genuinely new progress, which a gated commit certifies. *)
  eng.consecutive_rollbacks <- 0;
  Sim.Stats.incr st.Exec.State.stats "cpr.checkpoints";
  eng.mode <- Normal;
  Sim.Stats.observe st.Exec.State.stats "cpr.ckpt_cycles"
    (float_of_int (now eng - eng.quiesce_started));
  fill_all eng
  end

let schedule_alarm eng =
  let st = eng.st in
  let interval =
    Sim.Time.of_seconds
      ~cycles_per_second:st.Exec.State.costs.Vm.Costs.cycles_per_second
      eng.cfg.checkpoint_interval
  in
  let h =
    Sim.Event_queue.schedule st.Exec.State.evq ~time:(now eng + interval) Ckpt_alarm
  in
  eng.alarm <- Some h;
  eng.alarm_time <- now eng + interval

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

let cancel_all_ticks eng =
  Array.iteri
    (fun ctx h ->
      (match h with
      | Some h -> Sim.Event_queue.cancel eng.st.Exec.State.evq h
      | None -> ());
      eng.tick_handle.(ctx) <- None;
      eng.ctx_of.(ctx) <- None)
    eng.tick_handle

let begin_restore eng ~occurred_at =
  let st = eng.st in
  let costs = st.Exec.State.costs in
  eng.mode <- Restoring;
  (* Abort any in-flight checkpoint. *)
  (match eng.ckpt_done_handle with
  | Some h ->
    Sim.Event_queue.cancel st.Exec.State.evq h;
    eng.ckpt_done_handle <- None;
    Sim.Stats.incr st.Exec.State.stats "cpr.ckpt_aborted"
  | None -> ());
  (match eng.alarm with
  | Some h ->
    Sim.Event_queue.cancel st.Exec.State.evq h;
    eng.alarm <- None
  | None -> ());
  eng.alarm_time <- max_int;
  cancel_all_ticks eng;
  (* Choose the newest checkpoint not contaminated by the exception: it
     must have been taken before the exception occurred. *)
  let target, undo_prev_too =
    match eng.snaps with
    | [] -> (None, false)
    | [ s1 ] -> (Some s1, false)
    | s2 :: s1 :: _ ->
      if s2.taken_at <= occurred_at then (Some s2, false) else (Some s1, true)
  in
  let mem = st.Exec.State.mem
  and atomics = st.Exec.State.atomics
  and io = st.Exec.State.io in
  let words = Exec.Undo_log.replay ~mem ~atomics ~io eng.cur_log in
  let words =
    if undo_prev_too then
      words + Exec.Undo_log.replay ~mem ~atomics ~io eng.prev_log
    else words
  in
  (match target with
  | Some snap ->
    restore_snapshot eng snap;
    Sim.Stats.add st.Exec.State.stats "cpr.lost_cycles" (now eng - snap.taken_at);
    eng.restore_resets_to <- snap.taken_at;
    if undo_prev_too then begin
      (match eng.snaps with
      | s2 :: _ when s2 != snap -> eng.image_pool <- s2.image :: eng.image_pool
      | _ -> ());
      eng.snaps <- [ snap ]
    end
  | None -> failwith "Cpr: no checkpoint to restore (missing initial snapshot)");
  (* Squashed threads may reappear with the same tids on re-execution;
     the run queue is rebuilt from the restored thread states. *)
  eng.sched <- Sched.Scheduler.create Sched.Scheduler.Fifo ~n_contexts:eng.cfg.n_contexts;
  eng.queued <- Hashtbl.create 64;
  eng.consecutive_rollbacks <- eng.consecutive_rollbacks + 1;
  Sim.Stats.incr st.Exec.State.stats "cpr.rollbacks";
  Sim.Stats.add st.Exec.State.stats "cpr.restored_words" words;
  let restore_time =
    costs.Vm.Costs.pause_resume
    + costs.Vm.Costs.restore_per_word * words / Stdlib.max 1 eng.cfg.n_contexts
  in
  ignore
    (Sim.Event_queue.schedule st.Exec.State.evq
       ~time:(now eng + Stdlib.max 1 restore_time)
       Restore_done)

let finish_restore eng =
  let st = eng.st in
  eng.mode <- Normal;
  for tid = 0 to st.Exec.State.n_threads - 1 do
    let tcb = Exec.State.thread st tid in
    if tcb.Vm.Tcb.wait = Vm.Tcb.Runnable then make_runnable eng ~ctx_hint:tid tid
  done;
  (* Arm the alarm before dispatching so fused chains see its horizon. *)
  schedule_alarm eng;
  fill_all eng;
  (* A report that arrived mid-restore is serviced now. *)
  match eng.pending_reports with
  | [] -> ()
  | (occurred_at, _ctx) :: rest ->
    eng.pending_reports <- rest;
    begin_restore eng ~occurred_at

(* ------------------------------------------------------------------ *)
(* Event handling                                                      *)
(* ------------------------------------------------------------------ *)

let tick eng ctx =
  let st = eng.st in
  eng.tick_handle.(ctx) <- None;
  match eng.mode with
  | Restoring | Recording -> ()  (* context already halted/parked *)
  | Quiescing -> (
    (* Park at the coordination barrier. *)
    match eng.ctx_of.(ctx) with
    | None -> ()
    | Some tid ->
      eng.ctx_of.(ctx) <- None;
      let tcb = Exec.State.thread st tid in
      if tcb.Vm.Tcb.wait = Vm.Tcb.Runnable then make_runnable eng ~ctx_hint:ctx tid;
      if all_ctx_idle eng then begin_recording eng)
  | Normal -> (
    match eng.ctx_of.(ctx) with
    | None -> fill eng ctx
    | Some tid -> (
      let tcb = Exec.State.thread st tid in
      match tcb.Vm.Tcb.wait with
      | Vm.Tcb.Runnable ->
        let costs = st.Exec.State.costs in
        if
          now eng - eng.started.(ctx) >= costs.Vm.Costs.quantum
          && not (Sched.Scheduler.is_empty eng.sched)
        then begin
          eng.ctx_of.(ctx) <- None;
          make_runnable eng ~ctx_hint:ctx tid;
          Sim.Stats.incr st.Exec.State.stats "preemptions";
          fill eng ctx
        end
        else dispatch eng ctx tcb
      | Vm.Tcb.On_mutex _ | Vm.Tcb.On_cond _ | Vm.Tcb.Reacquire _
      | Vm.Tcb.On_barrier _ | Vm.Tcb.On_join _ | Vm.Tcb.On_token | Vm.Tcb.Done ->
        eng.ctx_of.(ctx) <- None;
        fill eng ctx))

let schedule_next_fault eng =
  let inj, ev = Faults.Injector.next eng.injector in
  eng.injector <- inj;
  match ev with
  | None -> eng.next_report_time <- max_int
  | Some ev ->
    let time = Stdlib.max ev.Faults.Injector.reported_at (now eng) in
    eng.next_report_time <- time;
    ignore
      (Sim.Event_queue.schedule eng.st.Exec.State.evq ~time
         (Fault_report
            { occurred_at = ev.Faults.Injector.occurred_at; ctx = ev.Faults.Injector.ctx }))

let run ?blocks cfg program =
  let st =
    Exec.State.create ?blocks ~program ~costs:cfg.costs
      ~n_contexts:cfg.n_contexts ~seed:cfg.seed ()
  in
  let eng =
    {
      cfg;
      st;
      sched = Sched.Scheduler.create Sched.Scheduler.Fifo ~n_contexts:cfg.n_contexts;
      ctx_of = Array.make cfg.n_contexts None;
      last_tid = Array.make cfg.n_contexts (-1);
      started = Array.make cfg.n_contexts 0;
      tick_handle = Array.make cfg.n_contexts None;
      queued = Hashtbl.create 64;
      mode = Normal;
      snaps = [];
      image_pool = [];
      cur_log = Exec.Undo_log.create ~paged:st.Exec.State.mem ();
      prev_log = Exec.Undo_log.create ~paged:st.Exec.State.mem ();
      alarm = None;
      ckpt_done_handle = None;
      quiesce_started = 0;
      injector =
        Faults.Injector.create cfg.injector ~n_contexts:cfg.n_contexts
          ~cycles_per_second:cfg.costs.Vm.Costs.cycles_per_second;
      pending_reports = [];
      consecutive_rollbacks = 0;
      restore_resets_to = 0;
      work_done = Array.make 64 0;
      alarm_time = max_int;
      next_report_time = max_int;
      budget = Option.value ~default:max_int cfg.max_cycles;
      instrs = Sim.Stats.counter st.Exec.State.stats "instrs";
      par = None;
    }
  in
  eng.par <- Exec.Par.start st;
  Fun.protect ~finally:(fun () -> Exec.Par.stop eng.par) @@ fun () ->
  st.Exec.State.current_undo <- Some eng.cur_log;
  (* Initial (time-0) checkpoint so recovery is always possible. *)
  eng.snaps <- [ take_snapshot eng ];
  make_runnable eng ~ctx_hint:0 Exec.State.main_tid;
  (* Horizons (alarm, fault report) are armed before the first dispatch
     so fused chains never cross them. *)
  schedule_alarm eng;
  schedule_next_fault eng;
  (match cfg.crash_at with
  | Some t -> ignore (Sim.Event_queue.schedule st.Exec.State.evq ~time:t Crash_point)
  | None -> ());
  fill_all eng;
  let dnc () = Exec.State.mk_result st ~dnc:true in
  let rec loop () =
    if eng.consecutive_rollbacks > cfg.livelock_rollbacks then dnc ()
    else
      match Sim.Event_queue.pop st.Exec.State.evq with
      | None ->
        if Exec.State.all_exited st then Exec.State.mk_result st ~dnc:false
        else
          raise
            (Exec.State.Deadlock
               (Printf.sprintf "cpr: %d live threads, no pending events"
                  st.Exec.State.live_threads))
      | Some (time, ev) -> (
        match cfg.max_cycles with
        | Some budget when time > budget -> dnc ()
        | Some _ | None ->
          (match ev with
          | Tick ctx -> tick eng ctx
          | Ckpt_alarm ->
            eng.alarm <- None;
            if eng.mode = Normal then begin
              eng.mode <- Quiescing;
              eng.quiesce_started <- now eng;
              if all_ctx_idle eng then begin_recording eng
            end
            else schedule_alarm eng
          | Ckpt_done ->
            if eng.mode = Recording then begin
              (* Alarm first: commit dispatches, and fused chains must
                 not cross the next alarm. *)
              schedule_alarm eng;
              commit_checkpoint eng
            end
          | Fault_report { occurred_at; ctx } ->
            schedule_next_fault eng;
            if Exec.State.all_exited st then ()
            else if eng.mode = Restoring then
              eng.pending_reports <- eng.pending_reports @ [ (occurred_at, ctx) ]
            else begin_restore eng ~occurred_at
          | Restore_done -> finish_restore eng
          | Crash_point ->
            (* A crash behaves like an instantly-reported fault that
               occurred now: everything since the last committed global
               checkpoint is volatile and lost. *)
            Sim.Stats.incr st.Exec.State.stats "cpr.crash_restores";
            if Exec.State.all_exited st then ()
            else if eng.mode = Restoring then
              eng.pending_reports <- eng.pending_reports @ [ (time, 0) ]
            else begin_restore eng ~occurred_at:time);
          if eng.mode = Normal then fill_all eng;
          if Exec.State.all_exited st then Exec.State.mk_result st ~dnc:false
          else loop ())
  in
  loop ()
