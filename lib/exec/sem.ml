let min_cost = Vm.Costs.min_instr_cost

let dur base extra = Stdlib.max min_cost (base + extra)

(* Race-sanitizer happens-before edges; observation only, never charged.
   Mutex edges live in {!State.set_holder}; word accesses in
   {!State.env_of}. *)
let tsan st f = match st.State.tsan with Some ts -> f ts | None -> ()

let exec_work st (tcb : Vm.Tcb.t) ~cost ~run =
  let declared = cost tcb.Vm.Tcb.regs in
  let env = State.env_of st tcb in
  run env;
  dur declared (State.take_acc_cost st)

let try_lock st (tcb : Vm.Tcb.t) m =
  let costs = st.State.costs in
  let mu = st.State.mutexes.(m) in
  match mu.State.holder with
  | None ->
    State.set_holder st m (Some tcb.Vm.Tcb.tid);
    (true, dur costs.Vm.Costs.lock 0)
  | Some h when h = tcb.Vm.Tcb.tid ->
    invalid_arg "Sem.try_lock: recursive acquisition (workload bug)"
  | Some _ ->
    mu.State.mwaiters <- Fifo.push mu.State.mwaiters tcb.Vm.Tcb.tid;
    tcb.Vm.Tcb.wait <- Vm.Tcb.On_mutex m;
    (false, dur costs.Vm.Costs.lock 0)

let grant_next st m =
  let mu = st.State.mutexes.(m) in
  match Fifo.pop mu.State.mwaiters with
  | None ->
    State.set_holder st m None;
    None
  | Some (w, rest) ->
    mu.State.mwaiters <- rest;
    State.set_holder st m (Some w);
    let wt = State.thread st w in
    wt.Vm.Tcb.wait <- Vm.Tcb.Runnable;
    Some w

let unlock st (tcb : Vm.Tcb.t) m =
  let costs = st.State.costs in
  let mu = st.State.mutexes.(m) in
  (match mu.State.holder with
  | Some h when h = tcb.Vm.Tcb.tid -> ()
  | Some _ | None -> invalid_arg "Sem.unlock: not the holder (workload bug)");
  (grant_next st m, dur costs.Vm.Costs.unlock 0)

let cond_block st (tcb : Vm.Tcb.t) ~c ~m =
  let costs = st.State.costs in
  let mu = st.State.mutexes.(m) in
  (match mu.State.holder with
  | Some h when h = tcb.Vm.Tcb.tid -> ()
  | Some _ | None -> invalid_arg "Sem.cond_block: caller must hold the mutex");
  let granted = grant_next st m in
  let cv = st.State.conds.(c) in
  cv.State.sleepers <- Fifo.push cv.State.sleepers tcb.Vm.Tcb.tid;
  tcb.Vm.Tcb.wait <- Vm.Tcb.On_cond { c; m };
  (granted, dur (costs.Vm.Costs.condvar + costs.Vm.Costs.unlock) 0)

let reacquire st w m =
  let mu = st.State.mutexes.(m) in
  let wt = State.thread st w in
  match mu.State.holder with
  | None ->
    State.set_holder st m (Some w);
    wt.Vm.Tcb.wait <- Vm.Tcb.Runnable;
    true
  | Some _ ->
    mu.State.mwaiters <- Fifo.push mu.State.mwaiters w;
    wt.Vm.Tcb.wait <- Vm.Tcb.On_mutex m;
    false

let cond_wake st ~c ~all =
  let costs = st.State.costs in
  let cv = st.State.conds.(c) in
  let woken, remaining =
    match Fifo.pop cv.State.sleepers with
    | None -> ([], Fifo.empty)
    | Some (w, rest) ->
      if all then (Fifo.to_list cv.State.sleepers, Fifo.empty)
      else ([ w ], rest)
  in
  cv.State.sleepers <- remaining;
  let woken =
    List.map
      (fun w ->
        match (State.thread st w).Vm.Tcb.wait with
        | Vm.Tcb.On_cond { m; _ } -> (w, m)
        | _ -> invalid_arg "Sem.cond_wake: sleeper not On_cond")
      woken
  in
  let runnable =
    List.filter_map
      (fun (w, m) -> if reacquire st w m then Some w else None)
      woken
  in
  (woken, runnable, dur costs.Vm.Costs.condvar 0)

let barrier_arrive st (tcb : Vm.Tcb.t) b =
  let costs = st.State.costs in
  let br = st.State.barriers.(b) in
  let tid = tcb.Vm.Tcb.tid in
  (* Arrival executed: part of the restartable state (rolled back with a
     checkpoint restore). *)
  tcb.Vm.Tcb.barrier_seq.(b) <- tcb.Vm.Tcb.barrier_seq.(b) + 1;
  let arrived = tid :: br.State.arrived in
  if List.length arrived >= br.State.parties then begin
    br.State.arrived <- [];
    tsan st (fun ts -> Tsan.on_barrier ts ~b ~parties:arrived);
    let others = List.filter (fun t -> t <> tid) arrived in
    List.iter
      (fun t -> (State.thread st t).Vm.Tcb.wait <- Vm.Tcb.Runnable)
      others;
    tcb.Vm.Tcb.wait <- Vm.Tcb.Runnable;
    (* Episode physically complete for every party: monotonic under
       selective restart (GPRS skips re-arrivals for completed episodes);
       coordinated CPR snapshots/restores these counters wholesale. *)
    List.iter
      (fun t ->
        let p = State.thread st t in
        p.Vm.Tcb.barrier_done.(b) <- p.Vm.Tcb.barrier_done.(b) + 1)
      arrived;
    (others, dur costs.Vm.Costs.barrier_entry 0)
  end
  else begin
    br.State.arrived <- arrived;
    tcb.Vm.Tcb.wait <- Vm.Tcb.On_barrier b;
    ([], dur costs.Vm.Costs.barrier_entry 0)
  end

let atomic_rmw st (tcb : Vm.Tcb.t) ~var ~rmw ~dst =
  let costs = st.State.costs in
  tsan st (fun ts -> Tsan.on_atomic ts ~tid:tcb.Vm.Tcb.tid ~var);
  let old = State.read_atomic st var in
  let v = rmw ~old tcb.Vm.Tcb.regs in
  State.write_atomic st var v;
  tcb.Vm.Tcb.regs.(dst) <- old;
  (* write_atomic notes a pre-image, which accrues tracked-access cost;
     absorb it here rather than letting it leak into whichever exec_work
     runs next (possibly on another thread). *)
  dur costs.Vm.Costs.atomic (State.take_acc_cost st)

let fork st (tcb : Vm.Tcb.t) ~group ~proc ~args ~dst =
  let costs = st.State.costs in
  let child = State.spawn st ~group ~proc ~args:(args tcb.Vm.Tcb.regs) in
  tcb.Vm.Tcb.regs.(dst) <- child.Vm.Tcb.tid;
  tsan st (fun ts ->
      Tsan.on_spawn ts ~parent:tcb.Vm.Tcb.tid ~child:child.Vm.Tcb.tid);
  (child, dur costs.Vm.Costs.fork_thread 0)

let join st (tcb : Vm.Tcb.t) ~target =
  let costs = st.State.costs in
  let tt = State.thread st target in
  match tt.Vm.Tcb.wait with
  | Vm.Tcb.Done ->
    tsan st (fun ts -> Tsan.on_join ts ~joiner:tcb.Vm.Tcb.tid ~target);
    (true, dur costs.Vm.Costs.join 0)
  | _ ->
    tt.Vm.Tcb.joiners <- tcb.Vm.Tcb.tid :: tt.Vm.Tcb.joiners;
    tcb.Vm.Tcb.wait <- Vm.Tcb.On_join target;
    (false, dur costs.Vm.Costs.join 0)

let exit_thread st (tcb : Vm.Tcb.t) =
  let costs = st.State.costs in
  tcb.Vm.Tcb.wait <- Vm.Tcb.Done;
  st.State.live_threads <- st.State.live_threads - 1;
  let joiners = tcb.Vm.Tcb.joiners in
  tcb.Vm.Tcb.joiners <- [];
  List.iter
    (fun j ->
      tsan st (fun ts -> Tsan.on_join ts ~joiner:j ~target:tcb.Vm.Tcb.tid);
      (State.thread st j).Vm.Tcb.wait <- Vm.Tcb.Runnable)
    joiners;
  (joiners, dur costs.Vm.Costs.join 0)

let alloc st (tcb : Vm.Tcb.t) ~size ~dst =
  let costs = st.State.costs in
  let n = size tcb.Vm.Tcb.regs in
  let a = Vm.Mem.alloc st.State.mem n in
  tcb.Vm.Tcb.regs.(dst) <- a;
  (* fresh block: erase stale shadows so address reuse across threads
     cannot fabricate races *)
  tsan st (fun ts -> Tsan.on_alloc ts ~addr:a ~size:n);
  (a, dur costs.Vm.Costs.alloc 0)

let free_ st (tcb : Vm.Tcb.t) ~addr =
  let costs = st.State.costs in
  let a = addr tcb.Vm.Tcb.regs in
  let size =
    match Vm.Mem.block_size st.State.mem a with
    | Some s -> s
    | None -> invalid_arg "Sem.free_: not an allocated block"
  in
  Vm.Mem.free st.State.mem a;
  tsan st (fun ts -> Tsan.on_free ts ~addr:a ~size);
  (size, dur costs.Vm.Costs.free 0)
