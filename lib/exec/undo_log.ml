type key =
  | K_mem of int
  | K_atomic of int
  | K_file of int * int
  | K_file_len of int

type t = {
  mutable entries : (key * int) list;  (* newest first *)
  seen : (key, unit) Hashtbl.t;
  (* When [paged] is set, memory keys are not materialized as entries:
     first-writes are detected through the memory's per-word dirty epoch
     and only counted, with the data itself restored page-wise by the
     owner through [Vm.Mem.restore_image]. Non-memory keys always take
     the entry path. *)
  paged : Vm.Mem.t option;
  mutable mem_touches : int;
}

let create ?paged () =
  { entries = []; seen = Hashtbl.create 64; paged; mem_touches = 0 }

let note_entry t key ~old =
  if Hashtbl.mem t.seen key then false
  else begin
    Hashtbl.add t.seen key ();
    t.entries <- (key, old) :: t.entries;
    true
  end

let note t key ~old =
  match t.paged, key with
  | Some mem, K_mem a ->
    if Vm.Mem.touch mem a then begin
      t.mem_touches <- t.mem_touches + 1;
      true
    end
    else false
  | _ -> note_entry t key ~old

let mem t key =
  match t.paged, key with
  | Some m, K_mem a -> Vm.Mem.touched m a
  | _ -> Hashtbl.mem t.seen key

let reset t =
  t.entries <- [];
  (* [clear], not [reset]: keep the bucket array so a recycled log does
     not re-pay the growth allocations of its previous life. *)
  Hashtbl.clear t.seen;
  t.mem_touches <- 0

let size t = t.mem_touches + Hashtbl.length t.seen
let is_empty t = t.mem_touches = 0 && t.entries = []

let apply_one ~mem ~atomics ~io (key, old) =
  match key with
  | K_mem a -> Vm.Mem.write mem a old
  | K_atomic v -> atomics.(v) <- old
  | K_file (f, off) -> Vm.Io.write io f ~off old
  | K_file_len f -> Vm.Io.truncate io f old

let replay ~mem ~atomics ~io t =
  let n = size t in
  List.iter (apply_one ~mem ~atomics ~io) t.entries;
  t.entries <- [];
  Hashtbl.reset t.seen;
  t.mem_touches <- 0;
  n

let keys t = List.map fst t.entries

let merge_newer ~older t =
  if t.paged <> None || older.paged <> None then
    invalid_arg "Undo_log.merge_newer: paged logs cannot be merged";
  (* Entries are newest-first; fold the newer log's records under the
     older one's, keeping the older pre-image on conflicts. *)
  List.iter
    (fun (key, old) -> ignore (note_entry older key ~old))
    (List.rev t.entries);
  t.entries <- [];
  Hashtbl.reset t.seen
