(** Shared executor state and instruction-semantics helpers.

    All three engines (Pthreads baseline, coordinated CPR, GPRS) run
    programs against one machine state type so their cost accounting and
    architectural behaviour agree; the engines differ only in scheduling,
    ordering, checkpointing and recovery, which is exactly the paper's
    experimental control. The state is parameterized by the engine's
    event-payload type.

    The [current_undo] slot is the hook through which tracked writes
    capture pre-images: the CPR engine points it at the epoch log, the
    GPRS engine repoints it at each sub-thread's log, and the baseline
    leaves it empty. *)

type 'ev t = {
  program : Vm.Isa.program;
  costs : Vm.Costs.t;
  n_contexts : int;
  mem : Vm.Mem.t;
  io : Vm.Io.t;
  atomics : int array;
  mutexes : mutex array;
  conds : cond array;
  barriers : barrier array;
  mutable threads : Vm.Tcb.t array;  (** index = tid; grows *)
  mutable n_threads : int;
  mutable live_threads : int;
  evq : 'ev Sim.Event_queue.t;
  stats : Sim.Stats.t;
  trace : Sim.Trace.t;
  prng : Sim.Prng.t;
  mutable current_undo : Undo_log.t option;
  mutable acc_cost : int;  (** cycles accrued by tracked accesses *)
  output_handles : (string * Vm.Io.file) list;
  blocks : Vm.Block.t;  (** fused-block pre-decode of [program] *)
  mutable on_io_grow : (Vm.Io.file -> int -> unit) option;
      (** Fired when a tracked write grows a file ([file], words grown) —
          the file-metadata change [Wal.Io_op] records. The GPRS engine
          appends to its WAL here; other engines leave it [None]. *)
  tsan : Tsan.t option;
      (** Race sanitizer, created per run when {!Tsan.enabled} at
          {!create} time; [None] costs nothing on any path. *)
  mutable envs : Vm.Env.t option array;
      (** per-tid memoized tracked envs (see {!env_of}); grows *)
  mutable cursor : Vm.Block.cursor option;
      (** lazily created trace-compiler cursor (see {!cursor}) *)
  mutable last_decode : (Vm.Isa.proc * Vm.Block.proc_blocks) option;
      (** one-entry per-proc decode memo (see {!decode_of}) *)
}

and mutex = { mutable holder : int option; mutable mwaiters : Fifo.t }
and cond = { mutable sleepers : Fifo.t }
and barrier = { parties : int; mutable arrived : int list }

val create :
  ?trace_capacity:int ->
  ?blocks:Vm.Block.t ->
  program:Vm.Isa.program ->
  costs:Vm.Costs.t ->
  n_contexts:int ->
  seed:int ->
  unit ->
  'ev t
(** Builds the machine, loads input files, creates the main thread
    (tid 0, group 0, [Runnable]). [blocks], when given, must be
    [Vm.Block.analyze program]'s result — the service-mode program cache
    passes it so repeated runs pay decode + superblock compilation once
    per program, not per run. *)

val thread : 'ev t -> int -> Vm.Tcb.t
val main_tid : int

val spawn :
  'ev t -> group:int -> proc:string -> args:int array -> Vm.Tcb.t
(** Allocate a tid and TCB for a forked thread (caller decides when it
    becomes runnable). *)

val set_holder : 'ev t -> int -> int option -> unit
(** Transition mutex [m]'s holder, keeping each TCB's incremental
    {!Vm.Tcb.held_mutexes} set in sync. All executor and recovery paths
    that change a holder must go through this (or rebuild the held sets
    wholesale, as the CPR snapshot restore does). *)

val env_of : 'ev t -> Vm.Tcb.t -> Vm.Env.t
(** Tracked environment for the thread: reads/writes charge
    {!Vm.Costs.t.mem_access} into [acc_cost] and route pre-images into
    [current_undo]. Memoized per tid (all hooks read mutable machine
    state at call time, so caching is semantics-preserving). *)

val cursor : 'ev t -> Vm.Tcb.t -> Vm.Block.cursor
(** The state's trace-compiler cursor, retargeted at [tcb] (TCB + cached
    env installed; the caller seeds clock, horizon and accumulators).
    Allocated once per state. *)

val decode_of : 'ev t -> Vm.Isa.proc -> Vm.Block.proc_blocks
(** {!Vm.Block.proc_info} with a one-entry physical-equality memo. *)

val take_acc_cost : 'ev t -> int
(** Drain the accrued tracked-access cost (reset to 0). *)

val read_atomic : 'ev t -> int -> int

val write_atomic : 'ev t -> int -> int -> unit
(** Tracked like memory: notes the pre-image into [current_undo]. *)

val now : 'ev t -> Sim.Time.cycles

val all_exited : 'ev t -> bool

val seconds : 'ev t -> Sim.Time.cycles -> float
(** Convert cycles to simulated wall-clock seconds. *)

(** {1 Run results} *)

type run_result = {
  sim_cycles : Sim.Time.cycles;
  sim_seconds : float;
  dnc : bool;  (** did not complete within the cycle budget *)
  run_stats : Sim.Stats.t;
  outputs : (string * int array) list;  (** declared output files *)
  final_mem : Vm.Mem.t;
  races : Tsan.report list;  (** empty unless the sanitizer was enabled *)
}

val mk_result : 'ev t -> dnc:bool -> run_result

exception Deadlock of string
(** Raised when the event queue drains with live threads remaining. *)
