(** FastTrack-style vector-clock data-race sanitizer.

    Wired into the shared executor ({!State.env_of} word accesses,
    {!State.set_holder} mutex transitions, and the {!Sem} fork / join /
    exit / barrier / atomic / allocator helpers), so all three engines
    are covered by the same instance. Purely observational: no simulated
    cycles, stats or PRNG draws — disabled runs are bit-identical to a
    build without it.

    Enabled by [GPRS_TSAN=1] (any non-empty value other than ["0"]) or
    programmatically via {!set_enabled} (the [gprs_run racecheck]
    subcommand and the cross-validation tests). The flag is read at
    {!State.create} time: each run owns a fresh sanitizer, so crash
    restarts and repeated runs in one process cannot alias shadows.

    Accesses made with the TCB's [in_cpr_region] flag set are exempt:
    hybrid recovery (§3.5) never selectively squashes such regions, so
    their (intentional) races — canneal's nonstd-atomic spin gates — are
    not soundness bugs. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

type kind = Write_write | Read_write | Write_read

val kind_label : kind -> string

type report = {
  addr : int;
  kind : kind;
  tid1 : int;  (** prior access *)
  pc1 : int;
  tid2 : int;  (** current access *)
  pc2 : int;
  proc2 : string;  (** proc of the current (reporting) thread *)
}

val pp_report : Format.formatter -> report -> unit

type t

val create : mem_words:int -> n_mutexes:int -> n_atomics:int -> n_barriers:int -> t

val reports : t -> report list
(** Reports in discovery order, deduplicated per (addr, tids, site) and
    capped; see {!dropped}. *)

val dropped : t -> int
(** Reports suppressed past the cap. *)

(** {1 Hooks} — called by {!State} / {!Sem}; no-ops are the caller's
    responsibility (they only invoke these when a sanitizer instance
    exists and the thread is outside any CPR region). *)

val on_read : t -> tid:int -> pc:int -> proc:string -> addr:int -> unit
val on_write : t -> tid:int -> pc:int -> proc:string -> addr:int -> unit
val on_acquire : t -> tid:int -> m:int -> unit
val on_release : t -> tid:int -> m:int -> unit
val on_atomic : t -> tid:int -> var:int -> unit
val on_spawn : t -> parent:int -> child:int -> unit
val on_join : t -> joiner:int -> target:int -> unit
val on_barrier : t -> b:int -> parties:int list -> unit
val on_alloc : t -> addr:int -> size:int -> unit
val on_free : t -> addr:int -> size:int -> unit
