(** Fused-chain execution, shared by the three engines' dispatch loops.

    After an engine has dispatched one instruction the ordinary way (any
    kind, at hop start time [t0], completing at [vstart]), [run_chain]
    keeps executing the thread's following fused block — [Work]/[Opaque]
    instructions plus the control transfers between them — without
    returning to the event queue, accumulating each instruction's exact
    duration. The engine then schedules a single tick at the returned
    completion time, so simulated-cycle accounting is bit-identical to
    the per-instruction schedule; only the number of heap operations
    changes.

    When trace compilation is on ({!Vm.Block.compiling}), the chain runs
    through compiled superblock closures: each boundary whose pc has a
    compiled cell executes whole guard-checked runs of instructions per
    closure entry, deopting back to the interpreted probe loop on a
    mispredicted [If] (one interpreted commit, then re-entry) and
    stopping outright when the hop's horizon falls inside the trace. All
    committed effects — pc, CPR flag, clock, memory, stats — are
    identical either way; the closure only removes per-instruction
    dispatch overhead. *)

val run_chain :
  'ev State.t ->
  Vm.Tcb.t ->
  instrs:int ref ->
  horizon:int ->
  on_fused:(Vm.Block.probe -> Vm.Isa.instr -> unit) ->
  ?on_trace:
    (steps:int ->
    opaques:int ->
    last_opaque_in_cpr:bool ->
    entered_cpr:bool ->
    unit) ->
  vstart:int ->
  unit ->
  int
(** [run_chain st tcb ~instrs ~horizon ~on_fused ?on_trace ~vstart ()]
    returns the virtual completion time of the chain (= [vstart] when
    nothing fused).

    [horizon] is the hop's precomputed deopt bound: an instruction whose
    boundary time [s] satisfies [s < horizon] may fuse; at [s >= horizon]
    the chain ends and the real tick re-checks live state. The engine
    folds its whole [keep_going] predicate — cycle budget, quantum edge,
    queue head, armed alarm/report, pending fault — into this single
    integer, valid because all inputs are constant for the duration of
    the hop. Returning a smaller horizon is always sound.

    Each interpreted iteration probes the control chain from [tcb.pc]; if
    the landing instruction is fusible and under the horizon, the probe
    is committed, [on_fused] runs (engine bookkeeping, after the pc /
    CPR-flag commit, before execution), the instruction executes via
    {!Sem.exec_work}, and the clock advances by the control cycles plus
    the instruction's duration. Otherwise the probe is abandoned with
    the pc untouched and the chain ends.

    [on_trace], if given, is called once per compiled-closure entry that
    committed at least one instruction, immediately after the closure
    returns and before any further instruction of the chain — carrying
    the per-entry effects an engine applies per instruction on the
    interpreted path ([opaques] count, CPR flag at the last [Opaque],
    whether a [Cpr_begin] was crossed). Latch and last-writer semantics
    make the batched application bit-identical.

    [instrs] is the engine's cached ["instrs"] counter; it is bumped once
    per fused instruction (compiled or interpreted), matching the unfused
    one-per-dispatch rate. *)
