(** Fused-chain execution, shared by the three engines' dispatch loops.

    After an engine has dispatched one instruction the ordinary way (any
    kind, at hop start time [t0], completing at [vstart]), [run_chain]
    keeps executing the thread's following fused block — [Work]/[Opaque]
    instructions plus the control transfers between them — without
    returning to the event queue, accumulating each instruction's exact
    duration. The engine then schedules a single tick at the returned
    completion time, so simulated-cycle accounting is bit-identical to
    the per-instruction schedule; only the number of heap operations
    changes. *)

val run_chain :
  'ev State.t ->
  Vm.Tcb.t ->
  instrs:int ref ->
  keep_going:(int -> bool) ->
  on_fused:(Vm.Block.probe -> Vm.Isa.instr -> unit) ->
  vstart:int ->
  int
(** [run_chain st tcb ~instrs ~keep_going ~on_fused ~vstart] returns the
    virtual completion time of the chain (= [vstart] when nothing fused).

    Each iteration probes the control chain from [tcb.pc]; if the landing
    instruction is fusible {e and} [keep_going s] holds at the boundary
    [s] (the completion time of the previous instruction — the instant
    the unfused engine's next tick would have popped), the probe is
    committed, [on_fused] runs (engine bookkeeping, after the pc /
    CPR-flag commit, before execution), the instruction executes via
    {!Sem.exec_work}, and the clock advances by the control cycles plus
    the instruction's duration. Otherwise the probe is abandoned with
    the pc untouched and the chain ends.

    [keep_going] must be monotone in the engine's deopt conditions:
    returning [false] is always sound (the real tick re-checks live
    state), returning [true] asserts that no observable event — quantum
    preemption with waiters, armed alarm, fault occurrence/report, cycle
    budget — falls strictly inside the boundary's window.

    [instrs] is the engine's cached ["instrs"] counter; it is bumped once
    per fused instruction, matching the unfused one-per-dispatch rate. *)
