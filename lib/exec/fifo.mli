(** First-in-first-out queue of thread ids.

    The classic two-list functional queue: [push] is O(1), [pop] is
    amortized O(1), and values are immutable so CPR snapshots capture a
    waiter queue by reference instead of copying it. Replaces the
    [list @ [tid]] append idiom in the semantic layer, which made every
    enqueue O(n) in the number of waiters. Grant order is strictly
    insertion order (FIFO), except where recovery deliberately uses
    {!push_front} to re-queue a lock's previous holder at the head. *)

type t

val empty : t
val is_empty : t -> bool

val push : t -> int -> t
(** Enqueue at the tail. O(1). *)

val push_front : t -> int -> t
(** Enqueue at the head, ahead of all current waiters. Used by GPRS
    recovery to re-grant a revoked lock to the thread that held it. *)

val pop : t -> (int * t) option
(** Dequeue the oldest element. Amortized O(1). *)

val to_list : t -> int list
(** Front-to-back element list (head of the result pops first). *)

val of_list : int list -> t
(** Queue popping in the list's order. *)

val filter : (int -> bool) -> t -> t
(** Keep only elements satisfying the predicate, preserving order. *)

val length : t -> int
