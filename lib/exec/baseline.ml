type config = {
  n_contexts : int;
  seed : int;
  max_cycles : int option;
  sched_policy : Sched.Scheduler.policy;
  costs : Vm.Costs.t;
}

let default_config =
  {
    n_contexts = 24;
    seed = 1;
    max_cycles = None;
    sched_policy = Sched.Scheduler.Fifo;
    costs = Vm.Costs.default;
  }

type event = Tick of int

type eng = {
  st : event State.t;
  sched : Sched.Scheduler.t;
  ctx_of : int option array;  (* context -> running tid *)
  last_tid : int array;  (* context -> last tid it ran, -1 if none *)
  started : int array;  (* context -> time current thread got the context *)
  queued : (int, unit) Hashtbl.t;  (* tids currently in the run queue *)
  budget : int;  (* max_cycles, or max_int *)
  instrs : int ref;  (* cached "instrs" counter *)
  mutable par : Par.session option;  (* speculative-window session *)
}

let on_ctx eng tid = Array.exists (fun o -> o = Some tid) eng.ctx_of

let make_runnable eng ~ctx_hint tid =
  if (not (Hashtbl.mem eng.queued tid)) && not (on_ctx eng tid) then begin
    Hashtbl.add eng.queued tid ();
    Sched.Scheduler.enqueue eng.sched ~ctx_hint tid
  end

let schedule_tick_h eng ctx ~after =
  let now = State.now eng.st in
  Sim.Event_queue.schedule eng.st.State.evq ~prio:(1 + ctx)
    ~time:(now + Stdlib.max Sem.min_cost after)
    (Tick ctx)

let schedule_tick eng ctx ~after = ignore (schedule_tick_h eng ctx ~after)

(* The fused hop's deopt horizon, folded into one bound exactly as the
   fused leg below folds it: [s <= budget && (s - started < quantum ||
   (q_empty && s < t_next))] is [s < horizon] because every input is
   constant for the hop. Evaluated both mid-dispatch (sequential leg)
   and at dispatch entry (window commit) — equal there because a leased
   hop's first instruction is [Work]/[Opaque], which wakes no thread and
   schedules no event. *)
let hop_horizon eng ctx ~q_empty ~t_next =
  let st = eng.st in
  let quantum = st.State.costs.Vm.Costs.quantum in
  let b = if eng.budget = max_int then max_int else eng.budget + 1 in
  let sched_h =
    let q = eng.started.(ctx) + quantum in
    if q_empty && t_next > q then t_next else q
  in
  Stdlib.min b sched_h

let entry_horizon eng ctx =
  let q_empty = Sched.Scheduler.is_empty eng.sched in
  let t_next =
    match Sim.Event_queue.peek_time eng.st.State.evq with
    | Some t -> t
    | None -> max_int
  in
  hop_horizon eng ctx ~q_empty ~t_next

(* Offer the next hop to the window pool, guessing the horizon its
   commit-time dispatch will compute. [started] cannot move while the
   thread keeps the context, and the tick just scheduled is excluded
   from the event-queue sample; the guess is clamped up to a full
   quantum because the sampled event-queue head is systematically
   pessimistic (those events fire and reschedule before this hop
   dispatches). A wrong guess squashes at commit, costing wall-clock
   only — the commit rule never trusts it. *)
let lease_next eng ctx (tcb : Vm.Tcb.t) ~tick_h ~t_tick =
  if eng.par <> None && tcb.Vm.Tcb.wait = Vm.Tcb.Runnable then begin
    let q_empty = Sched.Scheduler.is_empty eng.sched in
    let t_next =
      match Sim.Event_queue.next_time_excluding eng.st.State.evq tick_h with
      | Some t -> t
      | None -> max_int
    in
    let horizon = hop_horizon eng ctx ~q_empty ~t_next in
    let hrel =
      if horizon = max_int then max_int
      else
        Stdlib.max (horizon - t_tick) eng.st.State.costs.Vm.Costs.quantum
    in
    Par.lease eng.par eng.st tcb ~undo:eng.st.State.current_undo ~delay:0
      ~hrel
  end

(* Execute one instruction of [tcb] on [ctx], then as much of the
   following fused block as stays unobservable, and schedule the
   context's next tick at the chain's completion time. Control-flow
   instructions are fused into the next real instruction at one cycle
   each. *)
let dispatch_seq eng ctx (tcb : Vm.Tcb.t) =
  let st = eng.st in
  let t0 = State.now st in
  let ctrl = ref 0 in
  let rec fetch () =
    match Vm.Tcb.current_instr tcb with
    | None -> Vm.Isa.Exit
    | Some (Vm.Isa.Goto target) ->
      tcb.Vm.Tcb.pc <- target;
      incr ctrl;
      fetch ()
    | Some (Vm.Isa.If { cond; target }) ->
      tcb.Vm.Tcb.pc <-
        (if cond tcb.Vm.Tcb.regs then target else tcb.Vm.Tcb.pc + 1);
      incr ctrl;
      fetch ()
    | Some (Vm.Isa.Cpr_begin) ->
      tcb.Vm.Tcb.in_cpr_region <- true;
      tcb.Vm.Tcb.pc <- tcb.Vm.Tcb.pc + 1;
      incr ctrl;
      fetch ()
    | Some (Vm.Isa.Cpr_end) ->
      tcb.Vm.Tcb.in_cpr_region <- false;
      tcb.Vm.Tcb.pc <- tcb.Vm.Tcb.pc + 1;
      incr ctrl;
      fetch ()
    | Some i -> i
  in
  let instr = fetch () in
  incr eng.instrs;
  Vm.Block.profile_ctrl st.State.stats !ctrl;
  Vm.Block.profile_instr st.State.stats instr;
  (* Advance past the instruction before executing it, so blocked threads
     resume after it (see {!Sem}). [Exit] needs no pc update. *)
  (match instr with Vm.Isa.Exit -> () | _ -> tcb.Vm.Tcb.pc <- tcb.Vm.Tcb.pc + 1);
  let wake ?(hint = ctx) tids = List.iter (make_runnable eng ~ctx_hint:hint) tids in
  let d =
    match instr with
    | Vm.Isa.Work { cost; run } | Vm.Isa.Opaque { cost; run } ->
      Sem.exec_work st tcb ~cost ~run
    | Vm.Isa.Lock { m } ->
      let acquired, d = Sem.try_lock st tcb (m tcb.Vm.Tcb.regs) in
      if acquired then tcb.Vm.Tcb.lock_depth <- tcb.Vm.Tcb.lock_depth + 1;
      d
    | Vm.Isa.Unlock { m } ->
      let woken, d = Sem.unlock st tcb (m tcb.Vm.Tcb.regs) in
      tcb.Vm.Tcb.lock_depth <- tcb.Vm.Tcb.lock_depth - 1;
      (match woken with Some w -> wake [ w ] | None -> ());
      d
    | Vm.Isa.Barrier { b } ->
      let released, d = Sem.barrier_arrive st tcb b in
      wake released;
      d
    | Vm.Isa.Cond_wait { c; m } ->
      let granted, d = Sem.cond_block st tcb ~c ~m in
      tcb.Vm.Tcb.lock_depth <- tcb.Vm.Tcb.lock_depth - 1;
      (match granted with Some w -> wake [ w ] | None -> ());
      d
    | Vm.Isa.Cond_signal { c; all } ->
      let _woken, runnable, d = Sem.cond_wake st ~c ~all in
      wake runnable;
      d
    | Vm.Isa.Atomic { var; rmw; dst } | Vm.Isa.Nonstd_atomic { var; rmw; dst } ->
      Sem.atomic_rmw st tcb ~var:(var tcb.Vm.Tcb.regs) ~rmw ~dst
    | Vm.Isa.Fork { group; proc; args; dst } ->
      let child, d = Sem.fork st tcb ~group ~proc ~args ~dst in
      wake [ child.Vm.Tcb.tid ];
      d
    | Vm.Isa.Join { tid } ->
      let _ready, d = Sem.join st tcb ~target:(tid tcb.Vm.Tcb.regs) in
      d
    | Vm.Isa.Alloc { size; dst } ->
      let _a, d = Sem.alloc st tcb ~size ~dst in
      d
    | Vm.Isa.Free { addr } ->
      let _sz, d = Sem.free_ st tcb ~addr in
      d
    | Vm.Isa.Exit ->
      let joiners, d = Sem.exit_thread st tcb in
      wake joiners;
      d
    | Vm.Isa.Goto _ | Vm.Isa.If _ | Vm.Isa.Cpr_begin | Vm.Isa.Cpr_end ->
      assert false (* fused above *)
  in
  if Vm.Block.fusing () && tcb.Vm.Tcb.wait = Vm.Tcb.Runnable then begin
    (* The run queue is sampled after the first instruction (which may
       have woken threads); the event queue cannot have changed since the
       hop started, so its head bounds how long the sample stays valid. *)
    let q_empty = Sched.Scheduler.is_empty eng.sched in
    let t_next =
      match Sim.Event_queue.peek_time st.State.evq with
      | Some t -> t
      | None -> max_int
    in
    let horizon = hop_horizon eng ctx ~q_empty ~t_next in
    let vend =
      Fuse.run_chain st tcb ~instrs:eng.instrs ~horizon
        ~on_fused:(fun _ _ -> ())
        ~vstart:(t0 + Stdlib.max Sem.min_cost (!ctrl + d))
        ()
    in
    let tick_h = schedule_tick_h eng ctx ~after:(vend - t0) in
    lease_next eng ctx tcb ~tick_h ~t_tick:vend
  end
  else schedule_tick eng ctx ~after:(!ctrl + d)

(* Dispatch seam: a leased window for this thread, if it validates,
   replaces the whole sequential hop above. *)
let dispatch eng ctx (tcb : Vm.Tcb.t) =
  if eng.par = None then dispatch_seq eng ctx tcb
  else if not (Vm.Block.fusing ()) then begin
    Par.cancel eng.par ~tid:tcb.Vm.Tcb.tid;
    dispatch_seq eng ctx tcb
  end
  else begin
    let t0 = State.now eng.st in
    match
      Par.commit eng.par eng.st tcb ~horizon:(entry_horizon eng ctx)
        ~delay:0 ~instrs:eng.instrs
    with
    | None -> dispatch_seq eng ctx tcb
    | Some c ->
      let tick_h = schedule_tick_h eng ctx ~after:(c.Par.c_vend - t0) in
      lease_next eng ctx tcb ~tick_h ~t_tick:c.Par.c_vend
  end

let fill eng ctx =
  match Sched.Scheduler.take eng.sched ~ctx with
  | None -> ()
  | Some (tid, stolen) ->
    Hashtbl.remove eng.queued tid;
    let st = eng.st in
    let costs = st.State.costs in
    let extra =
      (if stolen then costs.Vm.Costs.steal else 0)
      + if eng.last_tid.(ctx) >= 0 && eng.last_tid.(ctx) <> tid then begin
          Sim.Stats.incr st.State.stats "ctx_switches";
          costs.Vm.Costs.ctx_switch
        end
        else 0
    in
    eng.ctx_of.(ctx) <- Some tid;
    eng.last_tid.(ctx) <- tid;
    eng.started.(ctx) <- State.now st;
    if extra = 0 then dispatch eng ctx (State.thread st tid)
    else schedule_tick eng ctx ~after:extra

let fill_all eng =
  for ctx = 0 to Array.length eng.ctx_of - 1 do
    if eng.ctx_of.(ctx) = None then fill eng ctx
  done

let tick eng ctx =
  let st = eng.st in
  match eng.ctx_of.(ctx) with
  | None -> fill eng ctx
  | Some tid -> (
    let tcb = State.thread st tid in
    match tcb.Vm.Tcb.wait with
    | Vm.Tcb.Runnable ->
      let costs = st.State.costs in
      if
        State.now st - eng.started.(ctx) >= costs.Vm.Costs.quantum
        && not (Sched.Scheduler.is_empty eng.sched)
      then begin
        (* Quantum expired and others are waiting: preempt. *)
        Par.cancel eng.par ~tid;
        eng.ctx_of.(ctx) <- None;
        make_runnable eng ~ctx_hint:ctx tid;
        Sim.Stats.incr st.State.stats "preemptions";
        fill eng ctx
      end
      else dispatch eng ctx tcb
    | Vm.Tcb.On_mutex _ | Vm.Tcb.On_cond _ | Vm.Tcb.Reacquire _
    | Vm.Tcb.On_barrier _ | Vm.Tcb.On_join _ | Vm.Tcb.On_token | Vm.Tcb.Done ->
      eng.ctx_of.(ctx) <- None;
      fill eng ctx)

let run ?blocks config program =
  let st =
    State.create ?blocks ~program ~costs:config.costs
      ~n_contexts:config.n_contexts ~seed:config.seed ()
  in
  let eng =
    {
      st;
      sched = Sched.Scheduler.create config.sched_policy ~n_contexts:config.n_contexts;
      ctx_of = Array.make config.n_contexts None;
      last_tid = Array.make config.n_contexts (-1);
      started = Array.make config.n_contexts 0;
      queued = Hashtbl.create 64;
      budget = Option.value ~default:max_int config.max_cycles;
      instrs = Sim.Stats.counter st.State.stats "instrs";
      par = None;
    }
  in
  eng.par <- Par.start st;
  Fun.protect ~finally:(fun () -> Par.stop eng.par) @@ fun () ->
  make_runnable eng ~ctx_hint:0 State.main_tid;
  fill_all eng;
  let rec loop () =
    match Sim.Event_queue.pop st.State.evq with
    | None ->
      if State.all_exited st then State.mk_result st ~dnc:false
      else
        raise
          (State.Deadlock
             (Printf.sprintf "baseline: %d live threads, no pending events"
                st.State.live_threads))
    | Some (time, Tick ctx) -> (
      match config.max_cycles with
      | Some budget when time > budget -> State.mk_result st ~dnc:true
      | Some _ | None ->
        tick eng ctx;
        fill_all eng;
        loop ())
  in
  loop ()
