(* Speculative execution windows on an OCaml 5 domain pool. See par.mli
   for the protocol; the invariant every line here serves is that a
   committed window is bit-identical to the sequential hop it replaces,
   and a squashed window has touched nothing. *)

(* --- runtime switch ---------------------------------------------------- *)

let jobs_ref =
  ref
    (match Sys.getenv_opt "GPRS_PAR_J" with
    | Some s -> ( try Stdlib.max 1 (int_of_string (String.trim s)) with _ -> 1)
    | None -> 1)

let jobs () = !jobs_ref
let set_jobs n = jobs_ref := Stdlib.max 1 n

(* The sanitizer's shadow state lives on the coordinator and its hooks
   key off [tcb.pc] mid-hop; windows cannot replay it. Serialize instead
   of refusing so GPRS_TSAN=1 composes with GPRS_PAR_J=N in CI. *)
let effective_jobs () = if Tsan.enabled () then 1 else !jobs_ref

(* --- window records ---------------------------------------------------- *)

(* Window lifecycle, CASed through an [int Atomic.t]: the coordinator
   publishes Pending, a worker claims Pending->Running, finishes with
   Done/Failed (a release store: the result fields written before it are
   visible after the coordinator's acquire load), and the coordinator
   retires Pending->Cancelled for windows no worker claimed in time. *)
let st_pending = 0

let st_running = 1
let st_done = 2
let st_failed = 3
let st_cancelled = 4

(* Effect log, stride 5: [kind; a; b; c; flags].
     kind 0 (mem write):   a=addr, c=value
     kind 1 (file write):  a=file, b=off, c=value
   Flag bits carry the worker's copy-on-write prediction for the undo
   notes this effect will fire when replayed: bit0 = the mem/file key is
   a first touch, bit1 = the write grows the file, bit2 = the length key
   is a first touch (only meaningful under bit1). *)
let fl_first = 1

let fl_grows = 2
let fl_len_first = 4

(* Read log, stride 4: [kind; a; b; v].
     kind 0: base memory word   (a=addr,        v=value seen)
     kind 1: base file word     (a=file, b=off, v=value seen)
     kind 2: base file length   (a=file,        v=length seen) *)
let rd_mem = 0

let rd_file = 1
let rd_len = 2

type window = {
  w_id : int;
  w_state : int Atomic.t;
  (* inputs, immutable once published *)
  w_tid : int;
  w_proc : Vm.Isa.proc;
  w_pc0 : int;
  w_regs0 : int array;  (* private copy *)
  w_in_cpr0 : bool;
  w_delay : int;  (* engine-pending delay folded into the first step *)
  w_hrel : int;  (* worker's own stop bound, relative to dispatch time *)
  w_mem : Vm.Mem.t;
  w_io : Vm.Io.t;
  w_costs : Vm.Costs.t;
  w_blocks : Vm.Block.t;
  w_undo : Undo_log.t option;  (* cow-prediction source, probed read-only *)
  w_bail_on_grow : bool;  (* file growth would append to a WAL: bail *)
  w_compiling : bool;
  (* outputs, written by the worker before the Done store *)
  mutable w_steps : int;
  mutable w_pc_end : int;
  mutable w_in_cpr_end : bool;
  mutable w_regs_end : int array;
  mutable w_d0 : int;  (* first step's ctrl + duration, before the delay *)
  mutable w_vend_rel : int;  (* chain end time relative to dispatch time *)
  mutable w_vpen_rel : int;  (* start time of the last committed step *)
  mutable w_has_cells : bool;  (* some steps ran inside compiled traces *)
  mutable w_hit_horizon : bool;
  mutable w_opaques : int;
  mutable w_last_opaque_in_cpr : bool;
  mutable w_entered_cpr : bool;
  mutable w_reads : int array;
  mutable w_effects : int array;
  (* profile replication (applied only under profiling at commit) *)
  mutable w_ctrl : int;
  mutable w_entry_lens : int array;  (* compiled-trace entries' step counts *)
  mutable w_deopt_horizon : int;
  mutable w_deopt_guard : int;
}

(* --- worker pool -------------------------------------------------------- *)

(* LIFO: the newest lease is the one whose tick is farthest away, i.e.
   the one a worker has the best chance of finishing before its commit
   point; older entries are increasingly likely to be stale (replaced or
   cancelled) and cost a claimed-CAS skip at most. *)
type pool = {
  p_mutex : Mutex.t;
  p_cond : Condition.t;
  mutable p_stack : window list;
  mutable p_len : int;
  mutable p_workers : int;
  mutable p_quit : bool;
  mutable p_doms : unit Domain.t list;
}

let the_pool =
  { p_mutex = Mutex.create (); p_cond = Condition.create ();
    p_stack = []; p_len = 0; p_workers = 0; p_quit = false; p_doms = [] }

(* One run at a time drives the pool; a loser here (e.g. a second
   simulation inside Analysis.Pool) runs sequentially, which the
   determinism contract makes invisible. Declared beside the pool
   because the idle watchdog below reads it to tell "parked between
   runs" from "parked mid-session". *)
let pool_busy = Atomic.make false

(* [None] tells the worker to exit (a {!quiesce} is in progress). *)
let pool_take p =
  Mutex.lock p.p_mutex;
  while p.p_stack = [] && not p.p_quit do
    Condition.wait p.p_cond p.p_mutex
  done;
  if p.p_quit then begin
    p.p_workers <- p.p_workers - 1;
    Mutex.unlock p.p_mutex;
    None
  end
  else begin
    let w = List.hd p.p_stack in
    p.p_stack <- List.tl p.p_stack;
    p.p_len <- p.p_len - 1;
    Mutex.unlock p.p_mutex;
    Some w
  end

let pool_put p w =
  Mutex.lock p.p_mutex;
  p.p_stack <- w :: p.p_stack;
  p.p_len <- p.p_len + 1;
  Condition.signal p.p_cond;
  Mutex.unlock p.p_mutex

(* Racy read from the coordinator — a heuristic only, so staleness is
   fine: it gates which hops get offered, never how a window commits. *)
let pool_depth p = p.p_len

(* --- the worker-side interpreter ---------------------------------------- *)

exception Bail

(* Growable int buffer; contents copied out exact-sized at publish. *)
module Buf = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 256 0; n = 0 }
  let reset b = b.n <- 0

  let push4 b x0 x1 x2 x3 =
    if b.n + 4 > Array.length b.a then begin
      let a' = Array.make (2 * Array.length b.a) 0 in
      Array.blit b.a 0 a' 0 b.n;
      b.a <- a'
    end;
    b.a.(b.n) <- x0;
    b.a.(b.n + 1) <- x1;
    b.a.(b.n + 2) <- x2;
    b.a.(b.n + 3) <- x3;
    b.n <- b.n + 4

  let push5 b x0 x1 x2 x3 x4 =
    if b.n + 5 > Array.length b.a then begin
      let a' = Array.make (2 * Array.length b.a) 0 in
      Array.blit b.a 0 a' 0 b.n;
      b.a <- a'
    end;
    b.a.(b.n) <- x0;
    b.a.(b.n + 1) <- x1;
    b.a.(b.n + 2) <- x2;
    b.a.(b.n + 3) <- x3;
    b.a.(b.n + 4) <- x4;
    b.n <- b.n + 5

  let contents b = Array.sub b.a 0 b.n
end

(* Caps keep a garbage-driven speculation (a racy base read can send a
   cost closure anywhere) from pinning a worker; hitting one bails the
   window, which is just a sequential hop. *)
let max_window_steps = 16_384

let max_log_words = 1 lsl 18

(* Per-worker scratch reused across windows (a worker runs one window at
   a time; results are copied out before the next claim). *)
type scratch = {
  s_reads : Buf.t;
  s_effects : Buf.t;
  s_entries : Buf.t;  (* per-trace-entry step counts, stride 4 (padded) *)
  s_mem_ov : (int, int) Hashtbl.t;  (* addr -> value (reads and writes) *)
  s_fval : (int * int, int) Hashtbl.t;  (* (file, off) -> value *)
  s_flen : (int, int) Hashtbl.t;  (* file -> shadow length *)
  s_seen : (Undo_log.key, unit) Hashtbl.t;  (* predicted undo notes *)
}

let make_scratch () =
  {
    s_reads = Buf.create ();
    s_effects = Buf.create ();
    s_entries = Buf.create ();
    s_mem_ov = Hashtbl.create 256;
    s_fval = Hashtbl.create 64;
    s_flen = Hashtbl.create 8;
    s_seen = Hashtbl.create 256;
  }

let scratch_reset s =
  Buf.reset s.s_reads;
  Buf.reset s.s_effects;
  Buf.reset s.s_entries;
  Hashtbl.reset s.s_mem_ov;
  Hashtbl.reset s.s_fval;
  Hashtbl.reset s.s_flen;
  Hashtbl.reset s.s_seen

(* Execute the window's whole hop — fetch prefix, first landing, fused
   chain, compiled traces included — against scratch state, mirroring
   [Baseline.dispatch]+[Fuse.run_chain] step for step. Base state is read
   racily (the coordinator keeps running); every observation is logged
   for commit-time validation, so a torn view can cost a squash but
   never correctness. *)
let execute (w : window) (s : scratch) =
  scratch_reset s;
  let costs = w.w_costs in
  let tcb =
    Vm.Tcb.create ~n_barriers:0 ~tid:w.w_tid ~group:0 ~proc:w.w_proc
      ~args:w.w_regs0
  in
  tcb.Vm.Tcb.pc <- w.w_pc0;
  tcb.Vm.Tcb.in_cpr_region <- w.w_in_cpr0;
  let entered_cpr = ref false in
  let acc = ref 0 in
  let charge c = acc := !acc + c in
  (* predicted first-touch of an undo note the replay will fire *)
  let pred_first key =
    match w.w_undo with
    | None -> false
    | Some log ->
      if Hashtbl.mem s.s_seen key then false
      else begin
        Hashtbl.add s.s_seen key ();
        not (Undo_log.mem log key)
      end
  in
  let shadow_len f =
    match Hashtbl.find_opt s.s_flen f with
    | Some l -> l
    | None ->
      let l = Vm.Io.size w.w_io f in
      Hashtbl.add s.s_flen f l;
      Buf.push4 s.s_reads rd_len f 0 l;
      l
  in
  let over_budget () =
    s.s_reads.Buf.n + s.s_effects.Buf.n > max_log_words
  in
  let env =
    {
      Vm.Env.tid = w.w_tid;
      regs = tcb.Vm.Tcb.regs;
      read =
        (fun a ->
          charge costs.Vm.Costs.mem_access;
          match Hashtbl.find_opt s.s_mem_ov a with
          | Some v -> v
          | None ->
            let v = Vm.Mem.read w.w_mem a in
            Hashtbl.add s.s_mem_ov a v;
            Buf.push4 s.s_reads rd_mem a 0 v;
            if over_budget () then raise Bail;
            v);
      write =
        (fun a v ->
          charge costs.Vm.Costs.mem_access;
          if a < 0 || a >= Vm.Mem.words w.w_mem then raise Bail;
          let fl = if pred_first (Undo_log.K_mem a) then fl_first else 0 in
          if fl <> 0 then charge costs.Vm.Costs.cow_first_write;
          Buf.push5 s.s_effects 0 a 0 v fl;
          Hashtbl.replace s.s_mem_ov a v;
          if over_budget () then raise Bail);
      file_size = (fun f -> shadow_len f);
      file_read =
        (fun f ~off ->
          charge costs.Vm.Costs.io_per_word;
          if off < 0 then raise Bail;
          match Hashtbl.find_opt s.s_fval (f, off) with
          | Some v -> v
          | None ->
            let len = shadow_len f in
            if off >= len then 0
            else begin
              let v = Vm.Io.read w.w_io f ~off in
              Hashtbl.add s.s_fval (f, off) v;
              Buf.push4 s.s_reads rd_file f off v;
              if over_budget () then raise Bail;
              v
            end);
      file_write =
        (fun f ~off v ->
          charge costs.Vm.Costs.io_per_word;
          if off < 0 then raise Bail;
          let len = shadow_len f in
          let fl = ref 0 in
          if off >= len then begin
            (* Growth fires the engine's I/O hook (a WAL append under
               GPRS, and with it a possible crash point): not ours to
               speculate past. *)
            if w.w_bail_on_grow then raise Bail;
            fl := !fl lor fl_grows;
            if pred_first (Undo_log.K_file_len f) then begin
              fl := !fl lor fl_len_first;
              charge costs.Vm.Costs.cow_first_write
            end;
            Hashtbl.replace s.s_flen f (off + 1)
          end;
          if pred_first (Undo_log.K_file (f, off)) then begin
            fl := !fl lor fl_first;
            charge costs.Vm.Costs.cow_first_write
          end;
          Buf.push5 s.s_effects 1 f off v !fl;
          Hashtbl.replace s.s_fval (f, off) v;
          if over_budget () then raise Bail);
    }
  in
  let take_acc () =
    let c = !acc in
    acc := 0;
    c
  in
  (* --- fetch prefix + first landing, as the engines' fetch loops --- *)
  let ctrl_total = ref 0 in
  let ctrl0 = ref 0 in
  let code = w.w_proc.Vm.Isa.code in
  let n_code = Array.length code in
  let rec fetch () =
    if tcb.Vm.Tcb.pc < 0 || tcb.Vm.Tcb.pc >= n_code then raise Bail
    else
      match code.(tcb.Vm.Tcb.pc) with
      | Vm.Isa.Goto target ->
        tcb.Vm.Tcb.pc <- target;
        incr ctrl0;
        fetch ()
      | Vm.Isa.If { cond; target } ->
        tcb.Vm.Tcb.pc <-
          (if cond tcb.Vm.Tcb.regs then target else tcb.Vm.Tcb.pc + 1);
        incr ctrl0;
        fetch ()
      | Vm.Isa.Cpr_begin ->
        tcb.Vm.Tcb.in_cpr_region <- true;
        entered_cpr := true;
        tcb.Vm.Tcb.pc <- tcb.Vm.Tcb.pc + 1;
        incr ctrl0;
        fetch ()
      | Vm.Isa.Cpr_end ->
        tcb.Vm.Tcb.in_cpr_region <- false;
        tcb.Vm.Tcb.pc <- tcb.Vm.Tcb.pc + 1;
        incr ctrl0;
        fetch ()
      | i -> i
  in
  let first = fetch () in
  ctrl_total := !ctrl0;
  let steps = ref 0 in
  let opaques = ref 0 in
  let last_opaque_in_cpr = ref false in
  let exec_landing cost run opaque =
    let declared = cost tcb.Vm.Tcb.regs in
    run env;
    let d = declared + take_acc () in
    let d = if d < Sem.min_cost then Sem.min_cost else d in
    incr steps;
    if opaque then begin
      incr opaques;
      last_opaque_in_cpr := tcb.Vm.Tcb.in_cpr_region
    end;
    d
  in
  let d0 =
    match first with
    | Vm.Isa.Work { cost; run } -> (
      tcb.Vm.Tcb.pc <- tcb.Vm.Tcb.pc + 1;
      exec_landing cost run false)
    | Vm.Isa.Opaque { cost; run } ->
      tcb.Vm.Tcb.pc <- tcb.Vm.Tcb.pc + 1;
      exec_landing cost run true
    | _ -> raise Bail (* lease pre-probed a fusible landing *)
  in
  w.w_d0 <- !ctrl0 + d0;
  let vnow = ref (Stdlib.max Sem.min_cost (!ctrl0 + d0 + w.w_delay)) in
  (* --- fused chain, mirroring Fuse.run_chain ----------------------- *)
  let hit_horizon = ref false in
  let vpen = ref 0 in
  let has_cells = ref false in
  let stop = ref false in
  let info =
    if w.w_compiling then Some (Vm.Block.proc_info w.w_blocks w.w_proc)
    else None
  in
  let cursor =
    if info = None then None
    else Some (Vm.Block.make_cursor ~tcb ~env ~take_acc)
  in
  let interpret_one () =
    let pr =
      Vm.Block.probe_ctrl w.w_proc ~pc:tcb.Vm.Tcb.pc ~regs:tcb.Vm.Tcb.regs
        ~in_cpr:tcb.Vm.Tcb.in_cpr_region
    in
    match Vm.Block.landing w.w_proc pr with
    | Some (Vm.Isa.Work { cost; run }) when !vnow < w.w_hrel ->
      tcb.Vm.Tcb.pc <- pr.Vm.Block.p_pc + 1;
      tcb.Vm.Tcb.in_cpr_region <- pr.Vm.Block.p_in_cpr;
      if pr.Vm.Block.p_entered_cpr then entered_cpr := true;
      ctrl_total := !ctrl_total + pr.Vm.Block.p_ctrl;
      vpen := !vnow;
      let d = exec_landing cost run false in
      vnow := !vnow + pr.Vm.Block.p_ctrl + d
    | Some (Vm.Isa.Opaque { cost; run }) when !vnow < w.w_hrel ->
      tcb.Vm.Tcb.pc <- pr.Vm.Block.p_pc + 1;
      tcb.Vm.Tcb.in_cpr_region <- pr.Vm.Block.p_in_cpr;
      if pr.Vm.Block.p_entered_cpr then entered_cpr := true;
      ctrl_total := !ctrl_total + pr.Vm.Block.p_ctrl;
      vpen := !vnow;
      let d = exec_landing cost run true in
      vnow := !vnow + pr.Vm.Block.p_ctrl + d
    | Some (Vm.Isa.Work _ | Vm.Isa.Opaque _) ->
      hit_horizon := true;
      stop := true
    | _ -> stop := true
  in
  let check_caps () =
    (* A fusible landing is still pending, so this is a horizon-style
       stop, not a natural one; the commit rule sorts it out. *)
    if !steps >= max_window_steps then begin
      hit_horizon := true;
      stop := true
    end
  in
  let deopt_horizon = ref 0 in
  let deopt_guard = ref 0 in
  while not !stop do
    check_caps ();
    if !stop then ()
    else
    match info with
    | None -> interpret_one ()
    | Some info -> (
      match Vm.Block.trace_at info tcb.Vm.Tcb.pc with
      | None -> interpret_one ()
      | Some cell ->
        let cu = Option.get cursor in
        cu.Vm.Block.cu_vnow <- !vnow;
        cu.Vm.Block.cu_horizon <- w.w_hrel;
        cu.Vm.Block.cu_steps <- 0;
        cu.Vm.Block.cu_ctrl <- 0;
        cu.Vm.Block.cu_opaques <- 0;
        cu.Vm.Block.cu_entered_cpr <- false;
        Vm.Block.enter cell cu;
        let tsteps = cu.Vm.Block.cu_steps in
        if tsteps > 0 then begin
          has_cells := true;
          vnow := cu.Vm.Block.cu_vnow;
          steps := !steps + tsteps;
          ctrl_total := !ctrl_total + cu.Vm.Block.cu_ctrl;
          if cu.Vm.Block.cu_opaques > 0 then begin
            opaques := !opaques + cu.Vm.Block.cu_opaques;
            last_opaque_in_cpr := cu.Vm.Block.cu_opaque_in_cpr
          end;
          if cu.Vm.Block.cu_entered_cpr then entered_cpr := true;
          Buf.push4 s.s_entries tsteps cu.Vm.Block.cu_opaques 0 0
        end;
        (match cu.Vm.Block.cu_deopt with
        | Vm.Block.Horizon ->
          incr deopt_horizon;
          hit_horizon := true;
          stop := true
        | Vm.Block.Guard_fail ->
          incr deopt_guard;
          interpret_one ()
        | Vm.Block.Trace_end -> if tsteps = 0 then interpret_one ()))
  done;
  (* --- publish ------------------------------------------------------ *)
  w.w_steps <- !steps;
  w.w_pc_end <- tcb.Vm.Tcb.pc;
  w.w_in_cpr_end <- tcb.Vm.Tcb.in_cpr_region;
  w.w_regs_end <- Array.copy tcb.Vm.Tcb.regs;
  w.w_vend_rel <- !vnow;
  w.w_vpen_rel <- !vpen;
  w.w_has_cells <- !has_cells;
  w.w_hit_horizon <- !hit_horizon;
  w.w_opaques <- !opaques;
  w.w_last_opaque_in_cpr <- !last_opaque_in_cpr;
  w.w_entered_cpr <- !entered_cpr;
  w.w_reads <- Buf.contents s.s_reads;
  w.w_effects <- Buf.contents s.s_effects;
  w.w_ctrl <- !ctrl_total;
  w.w_entry_lens <- Buf.contents s.s_entries;
  w.w_deopt_horizon <- !deopt_horizon;
  w.w_deopt_guard <- !deopt_guard

let worker_main () =
  let s = make_scratch () in
  let rec loop () =
    match pool_take the_pool with
    | None -> ()
    | Some w ->
      if Atomic.compare_and_set w.w_state st_pending st_running then begin
        match execute w s with
        | () -> Atomic.set w.w_state st_done
        | exception _ -> Atomic.set w.w_state st_failed
      end;
      loop ()
  in
  loop ()

let ensure_workers_unlocked n =
  Mutex.lock the_pool.p_mutex;
  the_pool.p_quit <- false;
  while the_pool.p_workers < n do
    the_pool.p_doms <- Domain.spawn worker_main :: the_pool.p_doms;
    the_pool.p_workers <- the_pool.p_workers + 1
  done;
  Mutex.unlock the_pool.p_mutex

(* Even a worker parked in [Condition.wait] participates in every
   stop-the-world collection, taxing whatever single-domain work runs
   next in the process (measured ~1.5x on allocation-heavy rows). Long
   sequential phases — the bench harness after its parallel section —
   tear the pool down rather than pay that. Must not race an active
   session; the single coordinator calls it between runs. *)
let quiesce_unlocked () =
  Mutex.lock the_pool.p_mutex;
  the_pool.p_quit <- true;
  the_pool.p_stack <- [];
  the_pool.p_len <- 0;
  let doms = the_pool.p_doms in
  the_pool.p_doms <- [];
  Condition.broadcast the_pool.p_cond;
  Mutex.unlock the_pool.p_mutex;
  List.iter Domain.join doms

(* --- idle auto-quiesce --------------------------------------------------- *)

(* Serializes pool lifecycle transitions — worker spawn, quiesce, the
   watchdog's idle check — against each other; never taken on the window
   hot path. [pool_busy] is CASed {e before} a starting session reaches
   [ensure_workers], so a watchdog that observes it false while holding
   this mutex knows any racing [start] is blocked here until the quiesce
   finishes, after which that start respawns a fresh pool. *)
let lifecycle = Mutex.create ()

let idle_ms =
  ref
    (match Sys.getenv_opt "GPRS_PAR_IDLE_MS" with
    | Some s -> ( try Stdlib.max 0 (int_of_string (String.trim s)) with _ -> 0)
    | None -> 0)

(* Host time of the last lifecycle event (worker spawn, session stop).
   Written without [lifecycle] from [stop]; a stale read only delays the
   watchdog by one period, never breaks it. *)
let last_activity = ref 0.

let touch () = last_activity := Unix.gettimeofday ()
let watchdog_live = ref false (* under [lifecycle] *)

let workers_live () =
  Mutex.lock the_pool.p_mutex;
  let w = the_pool.p_workers in
  Mutex.unlock the_pool.p_mutex;
  w

(* A systhread, not a domain: it spends its life in [Thread.delay], and
   unlike a parked domain it does not participate in stop-the-world
   collections, so the watchdog itself costs none of the tax it exists
   to remove. It exits after quiescing (or when disabled); the next
   worker spawn starts a fresh one. *)
let rec watchdog_loop () =
  let ms = Stdlib.max 1 !idle_ms in
  Thread.delay (Stdlib.max 0.005 (float_of_int ms /. 4000.));
  Mutex.lock lifecycle;
  let ms = !idle_ms in
  if ms <= 0 || workers_live () = 0 then begin
    watchdog_live := false;
    Mutex.unlock lifecycle
  end
  else begin
    if
      (not (Atomic.get pool_busy))
      && (Unix.gettimeofday () -. !last_activity) *. 1000. >= float_of_int ms
    then quiesce_unlocked ();
    if workers_live () = 0 then begin
      watchdog_live := false;
      Mutex.unlock lifecycle
    end
    else begin
      Mutex.unlock lifecycle;
      watchdog_loop ()
    end
  end

let maybe_spawn_watchdog_locked () =
  if !idle_ms > 0 && workers_live () > 0 && not !watchdog_live then begin
    watchdog_live := true;
    ignore (Thread.create watchdog_loop ())
  end

let ensure_workers n =
  Mutex.lock lifecycle;
  touch ();
  ensure_workers_unlocked n;
  maybe_spawn_watchdog_locked ();
  Mutex.unlock lifecycle

let quiesce () =
  Mutex.lock lifecycle;
  quiesce_unlocked ();
  Mutex.unlock lifecycle

let set_idle_timeout_ms n =
  Mutex.lock lifecycle;
  idle_ms := Stdlib.max 0 n;
  touch ();
  maybe_spawn_watchdog_locked ();
  Mutex.unlock lifecycle

let idle_timeout_ms () = !idle_ms

(* --- sessions ----------------------------------------------------------- *)

type session = {
  s_slots : (int, window) Hashtbl.t;  (* thread id -> pending window *)
  mutable s_next_id : int;
}

let start (st : 'ev State.t) =
  let n = effective_jobs () in
  if
    n > 1
    && Vm.Block.fusing ()
    && st.State.tsan = None
    && Atomic.compare_and_set pool_busy false true
  then begin
    ensure_workers (n - 1);
    ignore st;
    Some { s_slots = Hashtbl.create 64; s_next_id = 0 }
  end
  else None

let stop = function
  | None -> ()
  | Some s ->
    Hashtbl.iter
      (fun _ w ->
        ignore (Atomic.compare_and_set w.w_state st_pending st_cancelled))
      s.s_slots;
    Hashtbl.reset s.s_slots;
    touch ();
    Atomic.set pool_busy false

(* --- lease -------------------------------------------------------------- *)

let pincr st k =
  if !Vm.Block.profiling then Sim.Stats.incr st.State.stats k

(* Below this much horizon room a window is all commit overhead. *)
let min_horizon_room = 4

let lease sopt (st : 'ev State.t) (tcb : Vm.Tcb.t) ~undo ~delay ~hrel =
  match sopt with
  | None -> ()
  | Some s ->
    let tid = tcb.Vm.Tcb.tid in
    (* replace any stale lease for this thread *)
    (match Hashtbl.find_opt s.s_slots tid with
    | Some old ->
      ignore (Atomic.compare_and_set old.w_state st_pending st_cancelled);
      Hashtbl.remove s.s_slots tid
    | None -> ());
    (* Backpressure: every queued window a worker can't reach before its
       tick fires is a guaranteed fallback plus queue churn, so decline
       leases once the pool is saturated. [pool_depth] is a racy read,
       which only affects which hops get offered, never how one commits. *)
    if
      hrel > min_horizon_room
      && pool_depth the_pool <= 2 * the_pool.p_workers
      && tcb.Vm.Tcb.wait = Vm.Tcb.Runnable
    then begin
      let pr =
        Vm.Block.probe_ctrl tcb.Vm.Tcb.proc ~pc:tcb.Vm.Tcb.pc
          ~regs:tcb.Vm.Tcb.regs ~in_cpr:tcb.Vm.Tcb.in_cpr_region
      in
      match Vm.Block.landing tcb.Vm.Tcb.proc pr with
      | Some (Vm.Isa.Work _ | Vm.Isa.Opaque _) ->
        let w =
          {
            w_id = s.s_next_id;
            w_state = Atomic.make st_pending;
            w_tid = tid;
            w_proc = tcb.Vm.Tcb.proc;
            w_pc0 = tcb.Vm.Tcb.pc;
            w_regs0 = Array.copy tcb.Vm.Tcb.regs;
            w_in_cpr0 = tcb.Vm.Tcb.in_cpr_region;
            w_delay = delay;
            w_hrel = hrel;
            w_mem = st.State.mem;
            w_io = st.State.io;
            w_costs = st.State.costs;
            w_blocks = st.State.blocks;
            w_undo = undo;
            w_bail_on_grow = st.State.on_io_grow <> None;
            w_compiling = Vm.Block.compiling ();
            w_steps = 0;
            w_pc_end = 0;
            w_in_cpr_end = false;
            w_regs_end = [||];
            w_d0 = 0;
            w_vend_rel = 0;
            w_vpen_rel = 0;
            w_has_cells = false;
            w_hit_horizon = false;
            w_opaques = 0;
            w_last_opaque_in_cpr = false;
            w_entered_cpr = false;
            w_reads = [||];
            w_effects = [||];
            w_ctrl = 0;
            w_entry_lens = [||];
            w_deopt_horizon = 0;
            w_deopt_guard = 0;
          }
        in
        s.s_next_id <- s.s_next_id + 1;
        Hashtbl.replace s.s_slots tid w;
        pool_put the_pool w;
        if !Vm.Block.profiling then begin
          Sim.Stats.incr st.State.stats "par.windows";
          Sim.Stats.set_max st.State.stats "par.occupancy"
            (Hashtbl.length s.s_slots)
        end
      | _ -> ()
    end

let cancel sopt ~tid =
  match sopt with
  | None -> ()
  | Some s -> (
    match Hashtbl.find_opt s.s_slots tid with
    | None -> ()
    | Some w ->
      ignore (Atomic.compare_and_set w.w_state st_pending st_cancelled);
      Hashtbl.remove s.s_slots tid)

(* --- commit ------------------------------------------------------------- *)

type committed = {
  c_vend : int;
  c_steps : int;
  c_opaques : int;
  c_last_opaque_in_cpr : bool;
  c_entered_cpr : bool;
}

(* How long the coordinator is willing to poll a Running window before
   giving up and running the hop itself. Workers overlap across
   contexts, so a short wait usually buys a full hop of saved work; an
   orphaned window is harmless (the worker parks its result in an
   unreferenced record). *)
let spin_polls = 200_000

let rec await w polls =
  let s = Atomic.get w.w_state in
  if s = st_running && polls > 0 then begin
    Domain.cpu_relax ();
    await w (polls - 1)
  end
  else s

(* Guards: everything the window baked in must still hold. The clock is
   relative, so the only temporal question is whether the sequential
   fused chain, started now against the engine's real [horizon], would
   have committed exactly the window's steps and stopped where it
   stopped. Sequentially a step runs iff the clock at its start is
   before the horizon (the first landing is never checked), so:

   - natural stop (the landing after the last step is not fusible):
     valid iff every committed step started early enough. Interpreted
     steps record the last start ([w_vpen_rel]); compiled cells check
     per internal step whose starts we cannot see, so a window that ran
     cells demands the whole chain fit under the horizon.
   - horizon stop (a fusible landing was left pending): the sequential
     chain must stop at the same step, i.e. the horizon must fall after
     the last committed step's start and at or before the pending
     step's start. Cells additionally hide their internal deopt point,
     so a cell-running window only commits on a natural stop. *)
let guards_ok (w : window) (st : 'ev State.t) (tcb : Vm.Tcb.t) ~horizon
    ~vend ~vpen =
  let t0 = State.now st in
  w.w_tid = tcb.Vm.Tcb.tid
  && tcb.Vm.Tcb.wait = Vm.Tcb.Runnable
  && w.w_pc0 = tcb.Vm.Tcb.pc
  && w.w_in_cpr0 = tcb.Vm.Tcb.in_cpr_region
  && w.w_proc == tcb.Vm.Tcb.proc
  && st.State.acc_cost = 0
  && w.w_steps > 0
  && (if w.w_hit_horizon then
        (not w.w_has_cells)
        && t0 + vpen < horizon
        && horizon <= t0 + vend
      else if w.w_has_cells then t0 + vend <= horizon
      else t0 + vpen < horizon)
  &&
  let rec eq i =
    i >= Array.length w.w_regs0
    || (w.w_regs0.(i) = tcb.Vm.Tcb.regs.(i) && eq (i + 1))
  in
  eq 0

(* Every base observation the worker computed with must still be the
   coordinator's value. Logged before any window write to the same
   location, so validating against current state is exact. *)
let reads_valid (w : window) (st : 'ev State.t) =
  let r = w.w_reads in
  let n = Array.length r in
  let rec go i =
    i >= n
    ||
    let ok =
      match r.(i) with
      | k when k = rd_mem -> Vm.Mem.read st.State.mem r.(i + 1) = r.(i + 3)
      | k when k = rd_file ->
        Vm.Io.read st.State.io r.(i + 1) ~off:(r.(i + 2)) = r.(i + 3)
      | _ -> Vm.Io.size st.State.io r.(i + 1) = r.(i + 3)
    in
    ok && go (i + 4)
  in
  go 0

(* Re-run the worker's copy-on-write prediction against the real undo
   log, read-only: the replay below must fire exactly the first-touch
   charges the worker folded into its step durations, or the committed
   clock would drift from the sequential one. *)
let cow_valid (w : window) (st : 'ev State.t) =
  let undo = st.State.current_undo in
  let seen : (Undo_log.key, unit) Hashtbl.t = Hashtbl.create 64 in
  let lens : (int, int) Hashtbl.t = Hashtbl.create 4 in
  let first_of key =
    match undo with
    | None -> false
    | Some log ->
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        not (Undo_log.mem log key)
      end
  in
  let e = w.w_effects in
  let n = Array.length e in
  let rec go i =
    i >= n
    ||
    let fl = e.(i + 4) in
    let ok =
      if e.(i) = 0 then
        first_of (Undo_log.K_mem e.(i + 1)) = (fl land fl_first <> 0)
      else begin
        let f = e.(i + 1) and off = e.(i + 2) in
        let len =
          match Hashtbl.find_opt lens f with
          | Some l -> l
          | None -> Vm.Io.size st.State.io f
        in
        let grows = off >= len in
        grows = (fl land fl_grows <> 0)
        && (if grows then begin
              let lf = first_of (Undo_log.K_file_len f) in
              Hashtbl.replace lens f (off + 1);
              lf = (fl land fl_len_first <> 0)
            end
            else true)
        && first_of (Undo_log.K_file (f, off)) = (fl land fl_first <> 0)
      end
    in
    ok && go (i + 5)
  in
  go 0

(* Replay the effect log through the thread's real tracked environment:
   same undo entries in the same order, same first-touch and I/O-grow
   hooks, same stats, as if the closures had run here. The access-cycle
   charges the env accrues are drained and dropped — the worker already
   folded them into the step durations behind [w_vend_rel], exactly as
   the sequential per-step [Sem.dur] would have. *)
let apply (w : window) (st : 'ev State.t) (tcb : Vm.Tcb.t) ~instrs =
  let env = State.env_of st tcb in
  let e = w.w_effects in
  let n = Array.length e in
  let i = ref 0 in
  while !i < n do
    if e.(!i) = 0 then env.Vm.Env.write e.(!i + 1) e.(!i + 3)
    else env.Vm.Env.file_write e.(!i + 1) ~off:(e.(!i + 2)) e.(!i + 3);
    i := !i + 5
  done;
  ignore (State.take_acc_cost st);
  Array.blit w.w_regs_end 0 tcb.Vm.Tcb.regs 0 (Array.length w.w_regs_end);
  tcb.Vm.Tcb.pc <- w.w_pc_end;
  tcb.Vm.Tcb.in_cpr_region <- w.w_in_cpr_end;
  instrs := !instrs + w.w_steps;
  if !Vm.Block.profiling then begin
    let stats = st.State.stats in
    Vm.Block.profile_ctrl stats w.w_ctrl;
    let works = w.w_steps - w.w_opaques in
    if works > 0 then Sim.Stats.add stats "dispatch.work" works;
    if w.w_opaques > 0 then Sim.Stats.add stats "dispatch.opaque" w.w_opaques;
    let el = w.w_entry_lens in
    let j = ref 0 in
    while !j < Array.length el do
      Sim.Stats.incr stats "compile.entries";
      Sim.Stats.add stats "compile.steps" el.(!j);
      Sim.Stats.observe stats "compile.len" (float_of_int el.(!j));
      j := !j + 4
    done;
    if w.w_deopt_horizon > 0 then
      Sim.Stats.add stats "compile.deopt.horizon" w.w_deopt_horizon;
    if w.w_deopt_guard > 0 then
      Sim.Stats.add stats "compile.deopt.guard" w.w_deopt_guard;
    Vm.Block.profile_hop stats w.w_steps
  end

let commit sopt (st : 'ev State.t) (tcb : Vm.Tcb.t) ~horizon ~delay ~instrs
    =
  match sopt with
  | None -> None
  | Some s -> (
    match Hashtbl.find_opt s.s_slots tcb.Vm.Tcb.tid with
    | None -> None
    | Some w ->
      Hashtbl.remove s.s_slots tcb.Vm.Tcb.tid;
      (* Fault seam: a skipped commit discards the window and takes the
         sequential fallback — bit-identical by construction, which is
         exactly what the scenario driver pins. *)
      let skip_commit =
        match Faults.Points.sample Faults.Points.Window_commit with
        | Some Faults.Points.Skip_fire -> true
        | Some _ | None -> false
      in
      if Atomic.compare_and_set w.w_state st_pending st_cancelled then begin
        pincr st "par.fallback";
        None
      end
      else begin
        match await w spin_polls with
        | a when a = st_done && skip_commit ->
          pincr st "par.fallback";
          None
        | a when a = st_done ->
          (* The engine-pending delay may have moved since the lease (a
             work-steal fill charges the thief). It shifts every step's
             clock uniformly — except across the first step's min-cost
             clamp — so re-derive the window's end times for the delay
             the dispatch is actually folding in. *)
          let vstart_leased =
            Stdlib.max Sem.min_cost (w.w_d0 + w.w_delay)
          in
          let vstart_actual = Stdlib.max Sem.min_cost (w.w_d0 + delay) in
          let shift = vstart_actual - vstart_leased in
          let vend = w.w_vend_rel + shift in
          let vpen = if w.w_steps <= 1 then 0 else w.w_vpen_rel + shift in
          if
            guards_ok w st tcb ~horizon ~vend ~vpen
            && reads_valid w st && cow_valid w st
          then begin
            apply w st tcb ~instrs;
            pincr st "par.committed";
            Some
              {
                c_vend = State.now st + vend;
                c_steps = w.w_steps;
                c_opaques = w.w_opaques;
                c_last_opaque_in_cpr = w.w_last_opaque_in_cpr;
                c_entered_cpr = w.w_entered_cpr;
              }
          end
          else begin
            pincr st "par.squashed";
            pincr st "par.fallback";
            None
          end
        | _ ->
          (* still running after the spin, or the worker bailed *)
          pincr st "par.fallback";
          None
      end)
