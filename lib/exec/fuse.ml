(* Fused-chain execution shared by the three engines. See fuse.mli. *)

let run_chain (type ev) (st : ev State.t) (tcb : Vm.Tcb.t) ~instrs ~keep_going
    ~on_fused ~vstart =
  let proc = tcb.Vm.Tcb.proc in
  let stats = st.State.stats in
  let vnow = ref vstart in
  let fused = ref 0 in
  let stop = ref false in
  while not !stop do
    if tcb.Vm.Tcb.wait <> Vm.Tcb.Runnable then stop := true
    else begin
      let pr =
        Vm.Block.probe_ctrl proc ~pc:tcb.Vm.Tcb.pc ~regs:tcb.Vm.Tcb.regs
          ~in_cpr:tcb.Vm.Tcb.in_cpr_region
      in
      match Vm.Block.landing proc pr with
      | Some ((Vm.Isa.Work { cost; run } | Vm.Isa.Opaque { cost; run }) as i)
        when keep_going !vnow ->
        (* Commit the probe: consume the control prefix and the landing
           instruction, exactly as the per-instruction fetch loop would. *)
        tcb.Vm.Tcb.pc <- pr.Vm.Block.p_pc + 1;
        tcb.Vm.Tcb.in_cpr_region <- pr.Vm.Block.p_in_cpr;
        incr instrs;
        Vm.Block.profile_ctrl stats pr.Vm.Block.p_ctrl;
        Vm.Block.profile_instr stats i;
        on_fused pr i;
        let d = Sem.exec_work st tcb ~cost ~run in
        vnow := !vnow + pr.Vm.Block.p_ctrl + d;
        incr fused
      | _ ->
        (* Abandon the probe untouched: the next real tick replays the
           control prefix through its own fetch loop, so trailing control
           cycles stay charged to the stopping instruction's hop. *)
        stop := true
    end
  done;
  Vm.Block.profile_hop stats (1 + !fused);
  !vnow
