(* Fused-chain execution shared by the three engines. See fuse.mli. *)

let run_chain (type ev) (st : ev State.t) (tcb : Vm.Tcb.t) ~instrs ~horizon
    ~on_fused ?on_trace ~vstart () =
  let proc = tcb.Vm.Tcb.proc in
  let stats = st.State.stats in
  let vnow = ref vstart in
  let fused = ref 0 in
  let stop = ref false in
  let info =
    if Vm.Block.compiling () then Some (State.decode_of st proc) else None
  in
  (* One interpreted probe/commit iteration — both the no-compile path
     and the guard-deopt fallback. *)
  let interpret_one () =
    let pr =
      Vm.Block.probe_ctrl proc ~pc:tcb.Vm.Tcb.pc ~regs:tcb.Vm.Tcb.regs
        ~in_cpr:tcb.Vm.Tcb.in_cpr_region
    in
    match Vm.Block.landing proc pr with
    | Some ((Vm.Isa.Work { cost; run } | Vm.Isa.Opaque { cost; run }) as i)
      when !vnow < horizon ->
      (* Commit the probe: consume the control prefix and the landing
         instruction, exactly as the per-instruction fetch loop would. *)
      tcb.Vm.Tcb.pc <- pr.Vm.Block.p_pc + 1;
      tcb.Vm.Tcb.in_cpr_region <- pr.Vm.Block.p_in_cpr;
      incr instrs;
      Vm.Block.profile_ctrl stats pr.Vm.Block.p_ctrl;
      Vm.Block.profile_instr stats i;
      on_fused pr i;
      let d = Sem.exec_work st tcb ~cost ~run in
      vnow := !vnow + pr.Vm.Block.p_ctrl + d;
      incr fused
    | _ ->
      (* Abandon the probe untouched: the next real tick replays the
         control prefix through its own fetch loop, so trailing control
         cycles stay charged to the stopping instruction's hop. *)
      stop := true
  in
  while not !stop do
    if tcb.Vm.Tcb.wait <> Vm.Tcb.Runnable then stop := true
    else begin
      match info with
      | None -> interpret_one ()
      | Some info -> (
        match Vm.Block.trace_at info tcb.Vm.Tcb.pc with
        | None -> interpret_one ()
        | Some cell ->
          let cu = State.cursor st tcb in
          cu.Vm.Block.cu_vnow <- !vnow;
          cu.Vm.Block.cu_horizon <- horizon;
          cu.Vm.Block.cu_steps <- 0;
          cu.Vm.Block.cu_ctrl <- 0;
          cu.Vm.Block.cu_opaques <- 0;
          cu.Vm.Block.cu_entered_cpr <- false;
          Vm.Block.enter cell cu;
          let steps = cu.Vm.Block.cu_steps in
          if steps > 0 then begin
            vnow := cu.Vm.Block.cu_vnow;
            fused := !fused + steps;
            instrs := !instrs + steps;
            (* Deferred engine bookkeeping, applied before any further
               interpreted instruction of the same chain so latch and
               last-writer effects land in program order. *)
            (match on_trace with
            | Some f ->
              f ~steps ~opaques:cu.Vm.Block.cu_opaques
                ~last_opaque_in_cpr:cu.Vm.Block.cu_opaque_in_cpr
                ~entered_cpr:cu.Vm.Block.cu_entered_cpr
            | None -> ());
            if !Vm.Block.profiling then begin
              let opaques = cu.Vm.Block.cu_opaques in
              Sim.Stats.incr stats "compile.entries";
              Sim.Stats.add stats "compile.steps" steps;
              Sim.Stats.observe stats "compile.len" (float_of_int steps);
              if steps > opaques then
                Sim.Stats.add stats "dispatch.work" (steps - opaques);
              if opaques > 0 then Sim.Stats.add stats "dispatch.opaque" opaques;
              Vm.Block.profile_ctrl stats cu.Vm.Block.cu_ctrl
            end
          end;
          (match cu.Vm.Block.cu_deopt with
          | Vm.Block.Horizon ->
            if !Vm.Block.profiling then
              Sim.Stats.incr stats "compile.deopt.horizon";
            stop := true
          | Vm.Block.Guard_fail ->
            if !Vm.Block.profiling then
              Sim.Stats.incr stats "compile.deopt.guard";
            (* The branch went against its static prediction: interpret
               exactly one probe (which follows the real direction), then
               try to re-enter a trace at the new boundary. *)
            interpret_one ()
          | Vm.Block.Trace_end ->
            (* Next landing stops the block. [steps = 0] means the entry
               cell itself was terminal (cannot happen via [trace_at],
               defensively interpreted to guarantee progress). *)
            if steps = 0 then interpret_one ()))
    end
  done;
  Vm.Block.profile_hop stats (1 + !fused);
  !vnow
