(* FastTrack-style vector-clock data-race sanitizer.

   Purely observational: the hooks in {!State} and {!Sem} maintain
   happens-before clocks and per-word access shadows on the side, charge
   no simulated cycles, touch no PRNG and add no stats — with the
   sanitizer disabled every run is bit-identical to a build without it
   (the same leg discipline as GPRS_NO_FUSE / GPRS_NO_POOL, inverted:
   GPRS_TSAN=1 opts in).

   Happens-before edges observed:
   - mutex release -> next acquire, through the {!State.set_holder}
     choke point (this also covers condvar wakeups for any program that
     signals while holding the mutex, which all shipped workloads do);
   - fork -> child start, thread exit -> join;
   - barrier episode completion: all parties join through the barrier's
     clock;
   - atomic RMW as a release-acquire on the atomic variable's clock.

   Per-word shadow state is FastTrack's adaptive representation: a write
   epoch (tid, clock), and a read epoch that promotes to a full vector
   clock only while reads are genuinely concurrent. Allocator calls
   clear the shadow of the block so address reuse across threads cannot
   manufacture false positives.

   Accesses made inside a CPR region are exempt (neither checked nor
   recorded): hybrid recovery (§3.5) restores such regions from
   coordinated checkpoints and never selectively squashes them, so the
   race-freedom assumption this sanitizer discharges is not needed
   there — e.g. canneal's nonstd-atomic spin gates intentionally race
   inside their regions. The {!State.env_of} hooks consult the TCB's
   region flag. *)

let enabled_flag =
  ref
    (match Sys.getenv_opt "GPRS_TSAN" with
    | Some "" | Some "0" | None -> false
    | Some _ -> true)

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

(* --- vector clocks ---------------------------------------------------- *)

type vc = { mutable c : int array }

let vc0 () = { c = [||] }
let get v i = if i < Array.length v.c then v.c.(i) else 0

let grow v n =
  if Array.length v.c < n then begin
    let a = Array.make n 0 in
    Array.blit v.c 0 a 0 (Array.length v.c);
    v.c <- a
  end

let set v i x =
  grow v (i + 1);
  v.c.(i) <- x

let join dst src =
  grow dst (Array.length src.c);
  Array.iteri (fun i x -> if x > dst.c.(i) then dst.c.(i) <- x) src.c

let tick v i = set v i (get v i + 1)

(* epoch (tid, clk) happens-before the clock of thread [u]? *)
let epoch_leq ~clk ~tid v = clk <= get v tid

(* --- reports ---------------------------------------------------------- *)

type kind = Write_write | Read_write | Write_read

let kind_label = function
  | Write_write -> "write-write"
  | Read_write -> "read-write"
  | Write_read -> "write-read"

type report = {
  addr : int;
  kind : kind;
  tid1 : int;  (* prior access *)
  pc1 : int;
  tid2 : int;  (* current access *)
  pc2 : int;
  proc2 : string;
}

let pp_report ppf r =
  Format.fprintf ppf
    "race: %s on word %d: tid %d (pc %d) vs tid %d (%s, pc %d)"
    (kind_label r.kind) r.addr r.tid1 r.pc1 r.tid2 r.proc2 r.pc2

let max_reports = 200

(* --- sanitizer state -------------------------------------------------- *)

type t = {
  mem_words : int;
  mutable threads : vc array;  (* tid -> clock; grows *)
  mutable n_threads : int;
  mutexes : vc array;
  atomics : vc array;
  barriers : vc array;
  (* per-word shadow; tid -1 = none, r_tid -2 = read-shared (see
     [r_shared]) *)
  w_tid : int array;
  w_clk : int array;
  w_pc : int array;
  r_tid : int array;
  r_clk : int array;
  r_pc : int array;
  r_shared : (int, vc) Hashtbl.t;
  seen : (int * int * int * int, unit) Hashtbl.t;  (* report dedup *)
  mutable reports : report list;
  mutable n_reports : int;
  mutable dropped : int;
}

let create ~mem_words ~n_mutexes ~n_atomics ~n_barriers =
  let main = vc0 () in
  set main 0 1;
  {
    mem_words;
    threads = Array.make 16 main;
    n_threads = 1;
    mutexes = Array.init (Stdlib.max 1 n_mutexes) (fun _ -> vc0 ());
    atomics = Array.init (Stdlib.max 1 n_atomics) (fun _ -> vc0 ());
    barriers = Array.init (Stdlib.max 1 n_barriers) (fun _ -> vc0 ());
    w_tid = Array.make mem_words (-1);
    w_clk = Array.make mem_words 0;
    w_pc = Array.make mem_words 0;
    r_tid = Array.make mem_words (-1);
    r_clk = Array.make mem_words 0;
    r_pc = Array.make mem_words 0;
    r_shared = Hashtbl.create 16;
    seen = Hashtbl.create 32;
    reports = [];
    n_reports = 0;
    dropped = 0;
  }

let clock t tid =
  if tid >= t.n_threads then begin
    if tid >= Array.length t.threads then begin
      let a = Array.make (2 * (tid + 1)) (vc0 ()) in
      Array.blit t.threads 0 a 0 t.n_threads;
      for i = t.n_threads to Array.length a - 1 do
        a.(i) <- vc0 ()
      done;
      t.threads <- a
    end
    else
      for i = t.n_threads to tid do
        t.threads.(i) <- vc0 ()
      done;
    t.n_threads <- tid + 1
  end;
  t.threads.(tid)

let report t ~addr ~kind ~tid1 ~pc1 ~tid2 ~pc2 ~proc2 =
  let key = (addr, tid1, tid2, pc2) in
  if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.replace t.seen key ();
    if t.n_reports >= max_reports then t.dropped <- t.dropped + 1
    else begin
      t.reports <- { addr; kind; tid1; pc1; tid2; pc2; proc2 } :: t.reports;
      t.n_reports <- t.n_reports + 1
    end
  end

let reports t = List.rev t.reports
let dropped t = t.dropped

(* --- sync edges ------------------------------------------------------- *)

let on_acquire t ~tid ~m = join (clock t tid) t.mutexes.(m)

let on_release t ~tid ~m =
  let c = clock t tid in
  join t.mutexes.(m) c;
  tick c tid

let on_atomic t ~tid ~var =
  let c = clock t tid in
  let a = t.atomics.(var) in
  join a c;
  join c a;
  tick c tid

let on_spawn t ~parent ~child =
  let cp = clock t parent in
  let cc = clock t child in
  (* re-fork after a squash replay must stay monotone: join, not copy *)
  join cc cp;
  tick cc child;
  tick cp parent

let on_join t ~joiner ~target = join (clock t joiner) (clock t target)

let on_barrier t ~b ~parties =
  let bc = t.barriers.(b) in
  List.iter (fun tid -> join bc (clock t tid)) parties;
  List.iter
    (fun tid ->
      let c = clock t tid in
      join c bc;
      tick c tid)
    parties

(* --- allocator -------------------------------------------------------- *)

let clear_range t ~addr ~size =
  let lo = Stdlib.max 0 addr and hi = Stdlib.min t.mem_words (addr + size) in
  for a = lo to hi - 1 do
    t.w_tid.(a) <- -1;
    if t.r_tid.(a) = -2 then Hashtbl.remove t.r_shared a;
    t.r_tid.(a) <- -1
  done

let on_alloc t ~addr ~size = clear_range t ~addr ~size
let on_free t ~addr ~size = clear_range t ~addr ~size

(* --- memory accesses (FastTrack) -------------------------------------- *)

let on_write t ~tid ~pc ~proc ~addr =
  if addr >= 0 && addr < t.mem_words then begin
    let c = clock t tid in
    let wt = t.w_tid.(addr) in
    if wt >= 0 && wt <> tid && not (epoch_leq ~clk:t.w_clk.(addr) ~tid:wt c)
    then
      report t ~addr ~kind:Write_write ~tid1:wt ~pc1:t.w_pc.(addr) ~tid2:tid
        ~pc2:pc ~proc2:proc;
    (match t.r_tid.(addr) with
    | -1 -> ()
    | -2 ->
      let rv =
        match Hashtbl.find_opt t.r_shared addr with
        | Some rv -> rv
        | None -> vc0 ()
      in
      Array.iteri
        (fun rt clk ->
          if clk > 0 && rt <> tid && not (epoch_leq ~clk ~tid:rt c) then
            report t ~addr ~kind:Read_write ~tid1:rt ~pc1:t.r_pc.(addr)
              ~tid2:tid ~pc2:pc ~proc2:proc)
        rv.c
    | rt ->
      if rt <> tid && not (epoch_leq ~clk:t.r_clk.(addr) ~tid:rt c) then
        report t ~addr ~kind:Read_write ~tid1:rt ~pc1:t.r_pc.(addr) ~tid2:tid
          ~pc2:pc ~proc2:proc);
    t.w_tid.(addr) <- tid;
    t.w_clk.(addr) <- get c tid;
    t.w_pc.(addr) <- pc;
    if t.r_tid.(addr) = -2 then Hashtbl.remove t.r_shared addr;
    t.r_tid.(addr) <- -1
  end

let on_read t ~tid ~pc ~proc ~addr =
  if addr >= 0 && addr < t.mem_words then begin
    let c = clock t tid in
    let wt = t.w_tid.(addr) in
    if wt >= 0 && wt <> tid && not (epoch_leq ~clk:t.w_clk.(addr) ~tid:wt c)
    then
      report t ~addr ~kind:Write_read ~tid1:wt ~pc1:t.w_pc.(addr) ~tid2:tid
        ~pc2:pc ~proc2:proc;
    (match t.r_tid.(addr) with
    | -2 -> (
      match Hashtbl.find_opt t.r_shared addr with
      | Some rv ->
        set rv tid (get c tid);
        t.r_pc.(addr) <- pc
      | None -> ())
    | rt
      when rt = -1 || rt = tid
           || epoch_leq ~clk:t.r_clk.(addr) ~tid:rt c ->
      t.r_tid.(addr) <- tid;
      t.r_clk.(addr) <- get c tid;
      t.r_pc.(addr) <- pc
    | rt ->
      (* genuinely concurrent readers: promote to a read vector *)
      let rv = vc0 () in
      set rv rt t.r_clk.(addr);
      set rv tid (get c tid);
      Hashtbl.replace t.r_shared addr rv;
      t.r_tid.(addr) <- -2;
      t.r_pc.(addr) <- pc)
  end
