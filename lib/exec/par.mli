(** Intra-run parallelism: speculative execution windows on a domain pool.

    One simulation is still driven by one coordinator (the engine's event
    loop) — that is what keeps the discrete-event clock, the ROL, the WAL
    and fault injection bit-exact. What this module adds is a way to get
    the {e work} of a hop off the coordinator's critical path: when a hop
    ends and the context's next tick is scheduled, the engine may {e
    lease} the upcoming hop as a window. A worker domain then executes
    the whole fused chain speculatively — against a private overlay, with
    every base-memory and file observation logged — while the coordinator
    processes other contexts' events. When the leased tick fires, the
    engine first tries to {e commit} the window: a set of cheap guards
    (same thread, same clock, same registers, same deopt horizon) plus a
    read-validation pass (every base value the worker saw still holds)
    and a copy-on-write prediction check decide whether the speculation
    equals what the sequential hop would have done. If yes, the window's
    effect log is replayed through the thread's real tracked environment
    — landing the same undo-log entries, the same first-touch charges and
    the same stats in the same order as sequential execution — and the
    context's tick is scheduled at the window's end time. If anything
    fails, the window is squashed without having touched shared state and
    the hop runs sequentially: the fallback {e is} the baseline path, so
    a squash can change wall-clock time but never the simulation.

    Windows contain only [Work]/[Opaque] instructions and control
    transfers (the same fusibility rule as {!Fuse}): locks, barriers,
    atomics, forks, allocation, and exits always execute on the
    coordinator, as do WAL appends — a window that would grow a file
    under an engine with an I/O-grow hook bails out instead of
    speculating past a durability record. Commit order is the engine's
    own dispatch order (for GPRS, the ROL token order), which is why
    committing in that order preserves the sequential digest.

    Determinism contract: for a fixed program, seed and configuration,
    every simulated observable — digest, cycles, stats — is identical for
    [-j 1] and [-j N]. Only the profiling-gated ["par.*"] counters (and
    host wall-clock) may differ, because {e which} hops commit from
    windows depends on host timing.

    The sanitizer's shadow state is coordinator-only, so under
    [GPRS_TSAN=1] (or a per-run sanitizer) windows are not leased at all:
    {!effective_jobs} reports 1 and {!start} declines the session. *)

val jobs : unit -> int
(** Requested parallelism (total domains including the coordinator).
    Initialized from [GPRS_PAR_J]; 1 (sequential) by default. *)

val set_jobs : int -> unit
(** Override {!jobs} (clamped to >= 1), mirroring
    {!Vm.Block.set_fusing} and friends; tests save/restore around use. *)

val effective_jobs : unit -> int
(** {!jobs}, forced to 1 while {!Tsan.enabled} — the serialize-under-TSAN
    rule pinned by the test suite. *)

type session
(** One run's claim on the worker pool: per-context window slots plus the
    global pool handle. At most one session is live at a time (a second
    concurrent run — e.g. under {!Analysis.Pool} — simply executes
    sequentially, which is always equivalent). *)

val start : 'ev State.t -> session option
(** Acquire a session for this run. [None] — and therefore a fully
    sequential run — when {!effective_jobs} is 1, the run has a live
    sanitizer, fusing is disabled, or another session holds the pool. *)

val stop : session option -> unit
(** Release the session: outstanding windows are abandoned (workers
    finishing one later find it unreferenced) and the pool becomes
    available to the next run. Engines call this from a [Fun.protect]
    finalizer so crash-signal exits release too. *)

val quiesce : unit -> unit
(** Join all worker domains (they respawn on the next parallel {!start}).
    Even a worker parked on the pool's condvar participates in every
    stop-the-world collection, taxing single-domain code that runs later
    in the same process — the bench harness calls this after its parallel
    section so the remaining rows measure a one-domain runtime. Must not
    be called while a session is live. No-op when no workers exist. *)

val set_idle_timeout_ms : int -> unit
(** Arm (or, with [0], disarm) the idle auto-quiesce watchdog: once no
    session has held the pool for this many host milliseconds, a
    background systhread joins the worker domains exactly as {!quiesce}
    would, so a warm daemon stops paying the parked-domain
    stop-the-world tax between request bursts. Workers respawn
    transparently on the next parallel {!start}. Initialized from
    [GPRS_PAR_IDLE_MS]; 0 (disabled) by default — the one-shot CLI and
    the bench keep their explicit {!quiesce} discipline, the daemon arms
    this at startup. *)

val idle_timeout_ms : unit -> int
(** Current idle auto-quiesce timeout (0 = disabled). *)

val workers_live : unit -> int
(** Worker domains currently spawned (parked or running). Observability
    for tests and the daemon's stats endpoint; racy by a transition at
    most. *)

type committed = {
  c_vend : int;
      (** absolute end-of-chain virtual time; the engine schedules the
          context's next tick at it, exactly as after a sequential hop *)
  c_steps : int;  (** instructions committed (first landing + chain) *)
  c_opaques : int;  (** [Opaque] steps among them *)
  c_last_opaque_in_cpr : bool;
      (** CPR-region flag at the last [Opaque] — the value GPRS's
          last-writer [global_dep] update needs *)
  c_entered_cpr : bool;  (** a [Cpr_begin] was crossed anywhere *)
}

val lease :
  session option ->
  'ev State.t ->
  Vm.Tcb.t ->
  undo:Undo_log.t option ->
  delay:int ->
  hrel:int ->
  unit
(** Offer the thread's next hop to the pool, keyed by its thread id.
    Called by the engine at any point where the thread's architectural
    state is final until its next dispatch: after scheduling its tick at
    the end of a hop, or (under GPRS) when a token grant or wake leaves
    it runnable and queued. [undo] is the log the thread's writes will
    charge copy-on-write against at that dispatch (its sub-thread's
    under GPRS, the interval log under CPR, none for the baseline);
    [delay] is the engine-pending extra latency the dispatch will fold
    into the first step ([0] unless GPRS boundaries are owed); [hrel]
    bounds how far past the dispatch time the worker speculates —
    a guess, typically the engine's deopt horizon minus the current
    time, clamped up when the real horizon is unknowable. Declines (and
    leaves no slot) unless the thread is runnable, the hop's first
    landing is fusible and [hrel] leaves the window room to run. A new
    lease replaces any stale window for the same thread. *)

val cancel : session option -> tid:int -> unit
(** Drop the thread's slot, if any: the engine is about to run a hop
    sequentially without consulting it (e.g. the fused path is
    disqualified this dispatch, or the thread was preempted). *)

val commit :
  session option ->
  'ev State.t ->
  Vm.Tcb.t ->
  horizon:int ->
  delay:int ->
  instrs:int ref ->
  committed option
(** At dispatch entry, consume the thread's slot and try to commit it.
    [horizon] is the engine's real deopt horizon for this hop, computed
    exactly as the sequential fused path computes it; [delay] is the
    engine-pending delay the dispatch is about to fold in (the caller
    must consume it itself on success). [Some c] means the hop is done:
    shared state, the undo log, [instrs] and (under profiling) the
    dispatch/compile/fuse counters have been updated bit-identically to
    sequential execution, and the engine should only apply its own
    per-hop bookkeeping and schedule the tick at [c.c_vend]. [None]
    means run the hop sequentially. *)
