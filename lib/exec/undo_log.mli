(** Copy-on-write undo log over the simulated architectural state.

    One log captures the pre-images of everything written during a
    recovery epoch — a GPRS sub-thread, or a CPR inter-checkpoint
    interval. The first write to each location records its old value
    (copy-on-write, the paper's alternative to compiler-derived mod-sets,
    §3.2); replaying the log in reverse restores the state exactly as it
    was when the log was opened.

    Locations span all architectural state a squashed computation may have
    touched: shared-memory words, atomic variables, simulated file words
    and file lengths. *)

type key =
  | K_mem of int  (** shared-memory address *)
  | K_atomic of int  (** atomic variable *)
  | K_file of int * int  (** (file, offset) *)
  | K_file_len of int  (** file length *)

type t

val create : ?paged:Vm.Mem.t -> unit -> t
(** A fresh log. With [?paged], memory first-writes are detected through
    [mem]'s per-word dirty epoch ({!Vm.Mem.touch}) and only {e counted} —
    no pre-image entries are kept for them, because the owner restores
    data words page-wise via {!Vm.Mem.restore_image}. Non-memory keys
    (atomics, files) always keep full pre-image entries. The paged
    variant requires log intervals to stay in lockstep with the memory's
    dirty epochs: open a fresh log exactly when an epoch is advanced by
    {!Vm.Mem.capture}/{!Vm.Mem.restore_image}. *)

val reset : t -> unit
(** Drop every recorded pre-image, leaving the log as fresh as
    {!create} while keeping its internal capacity. Used when a pooled
    sub-thread recycles its log: a recycled log must carry nothing from
    its previous life. *)

val note : t -> key -> old:int -> bool
(** Record the pre-image of [key] unless this log already holds one.
    Returns [true] when the entry was recorded (a "first write"), which is
    when the executor charges the copy-on-write cost. *)

val mem : t -> key -> bool
(** Read-only membership probe: would {!note} on [key] return [false]
    because a pre-image is already held? Mutates nothing (unlike [note],
    which stamps the dirty epoch on the paged path), so speculative
    executors can use it to {e predict} copy-on-write charges for a
    window without perturbing the log; the coordinator re-runs the same
    probes before believing the prediction. *)

val size : t -> int
(** Number of recorded pre-images (words of checkpoint state). *)

val is_empty : t -> bool

val replay :
  mem:Vm.Mem.t -> atomics:int array -> io:Vm.Io.t -> t -> int
(** Undo all recorded writes, newest first; returns the number of words
    restored (for paged logs this includes the counted memory touches,
    whose data the caller restores via {!Vm.Mem.restore_image}). The log
    is left empty and reusable. *)

val keys : t -> key list
(** Recorded locations, newest first; for tests. *)

val merge_newer : older:t -> t -> unit
(** Fold a newer epoch's pre-images into an older log: entries for
    locations the older log already tracks are dropped (the older
    pre-image wins). Used when CPR commits a checkpoint that later gets
    aborted, and when GPRS subsumes nested recovery scopes. Raises
    [Invalid_argument] on paged logs. *)
