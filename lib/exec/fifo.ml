(* Functional two-list FIFO of thread ids. See fifo.mli. *)

type t = { front : int list; back : int list }

let empty = { front = []; back = [] }
let is_empty q = q.front = [] && q.back = []
let push q x = { q with back = x :: q.back }
let push_front q x = { q with front = x :: q.front }

let pop q =
  match q.front with
  | x :: front -> Some (x, { q with front })
  | [] -> (
    match List.rev q.back with
    | [] -> None
    | x :: front -> Some (x, { front; back = [] }))

let to_list q = q.front @ List.rev q.back
let of_list l = { front = l; back = [] }
let filter f q = { front = List.filter f q.front; back = List.filter f q.back }
let length q = List.length q.front + List.length q.back
