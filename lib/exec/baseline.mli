(** The Pthreads baseline executor.

    Runs a virtual-ISA program on the simulated multiprocessor the way the
    paper's unmodified Pthreads benchmarks run on Linux: an OS-style FIFO
    run queue time-slices threads across hardware contexts (quantum
    preemption, context-switch costs), synchronization is serviced in FIFO
    order, and there is no checkpointing, ordering, or recovery. This
    produces the baseline execution times of Table 2 and the normalization
    denominator of Figures 8–10. *)

type config = {
  n_contexts : int;
  seed : int;
  max_cycles : int option;  (** DNC budget; [None] = unbounded *)
  sched_policy : Sched.Scheduler.policy;
      (** [Fifo] for the OS baseline; [Work_steal] exists for ablations *)
  costs : Vm.Costs.t;
}

val default_config : config
(** 24 contexts, seed 1, unbounded, FIFO, default cost model. *)

val run : ?blocks:Vm.Block.t -> config -> Vm.Isa.program -> State.run_result
(** Execute to completion (all threads exited). Raises {!State.Deadlock}
    if the program wedges — a workload bug, surfaced loudly. [blocks]
    passes a cached [Vm.Block.analyze program] (see {!State.create}). *)
