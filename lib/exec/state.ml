type 'ev t = {
  program : Vm.Isa.program;
  costs : Vm.Costs.t;
  n_contexts : int;
  mem : Vm.Mem.t;
  io : Vm.Io.t;
  atomics : int array;
  mutexes : mutex array;
  conds : cond array;
  barriers : barrier array;
  mutable threads : Vm.Tcb.t array;
  mutable n_threads : int;
  mutable live_threads : int;
  evq : 'ev Sim.Event_queue.t;
  stats : Sim.Stats.t;
  trace : Sim.Trace.t;
  prng : Sim.Prng.t;
  mutable current_undo : Undo_log.t option;
  mutable acc_cost : int;
  output_handles : (string * Vm.Io.file) list;
  blocks : Vm.Block.t;
  mutable on_io_grow : (Vm.Io.file -> int -> unit) option;
  tsan : Tsan.t option;
  mutable envs : Vm.Env.t option array;
  mutable cursor : Vm.Block.cursor option;
  mutable last_decode : (Vm.Isa.proc * Vm.Block.proc_blocks) option;
}

and mutex = { mutable holder : int option; mutable mwaiters : Fifo.t }
and cond = { mutable sleepers : Fifo.t }
and barrier = { parties : int; mutable arrived : int list }

exception Deadlock of string

let main_tid = 0

let create ?(trace_capacity = 4096) ?blocks ~program ~costs ~n_contexts ~seed
    () =
  let open Vm.Isa in
  let mem = Vm.Mem.create ~words:program.mem_words in
  if program.reserved_words > 0 then
    ignore (Vm.Mem.reserve mem program.reserved_words);
  let io = Vm.Io.create () in
  List.iter
    (fun (name, data) -> ignore (Vm.Io.add_file io ~name data))
    program.input_files;
  let output_handles =
    List.map (fun name -> (name, Vm.Io.add_file io ~name [||])) program.output_files
  in
  let main =
    Vm.Tcb.create
      ~n_barriers:(Array.length program.barrier_parties)
      ~tid:main_tid ~group:0
      ~proc:(find_proc program program.entry)
      ~args:[||]
  in
  let threads = Array.make 16 main in
  let stats = Sim.Stats.create () in
  {
    program;
    costs;
    n_contexts;
    mem;
    io;
    atomics = Array.make (Stdlib.max 1 program.n_atomics) 0;
    mutexes =
      Array.init (Stdlib.max 1 program.n_mutexes) (fun _ ->
          { holder = None; mwaiters = Fifo.empty });
    conds =
      Array.init (Stdlib.max 1 program.n_condvars) (fun _ ->
          { sleepers = Fifo.empty });
    barriers =
      Array.init
        (Array.length program.barrier_parties)
        (fun i -> { parties = program.barrier_parties.(i); arrived = [] });
    threads;
    n_threads = 1;
    live_threads = 1;
    evq = Sim.Event_queue.create ();
    stats;
    trace = Sim.Trace.create ~capacity:trace_capacity ();
    prng = Sim.Prng.create seed;
    current_undo = None;
    acc_cost = 0;
    output_handles;
    blocks =
      (* A caller (the service-mode program cache) may hand in the
         pre-analyzed decode so repeated runs of one program skip
         [Vm.Block.analyze]; the blocks value is immutable after analyze,
         so sharing it across runs — even concurrent ones — is sound. *)
      (let b =
         match blocks with Some b -> b | None -> Vm.Block.analyze program
       in
       if !Vm.Block.profiling && Vm.Block.compiling () then
         Sim.Stats.add stats "compile.superblocks" (Vm.Block.n_compiled b);
       b);
    on_io_grow = None;
    tsan =
      (if Tsan.enabled () then
         Some
           (Tsan.create ~mem_words:program.mem_words
              ~n_mutexes:program.n_mutexes ~n_atomics:program.n_atomics
              ~n_barriers:(Array.length program.barrier_parties))
       else None);
    envs = Array.make 16 None;
    cursor = None;
    last_decode = None;
  }

let thread t tid =
  if tid < 0 || tid >= t.n_threads then
    invalid_arg (Printf.sprintf "State.thread: bad tid %d" tid);
  t.threads.(tid)

let spawn t ~group ~proc ~args =
  let tid = t.n_threads in
  let tcb =
    Vm.Tcb.create
      ~n_barriers:(Array.length t.program.Vm.Isa.barrier_parties)
      ~tid ~group
      ~proc:(Vm.Isa.find_proc t.program proc)
      ~args
  in
  if t.n_threads = Array.length t.threads then begin
    let threads' = Array.make (2 * t.n_threads) tcb in
    Array.blit t.threads 0 threads' 0 t.n_threads;
    t.threads <- threads'
  end;
  t.threads.(tid) <- tcb;
  t.n_threads <- t.n_threads + 1;
  t.live_threads <- t.live_threads + 1;
  Sim.Stats.incr t.stats "threads.created";
  tcb

(* Every holder transition goes through here so each TCB's incremental
   held-mutex set ({!Vm.Tcb.held_mutexes}) stays consistent with the
   mutex table — GPRS checkpoints read it instead of scanning all
   mutexes at every sub-thread boundary. *)
let set_holder t m newh =
  let mu = t.mutexes.(m) in
  (match t.tsan with
  | None -> ()
  | Some ts ->
    (* release -> acquire is the happens-before edge; set_holder is the
       single choke point every grant path goes through *)
    (match mu.holder with
    | Some h when Some h <> newh -> Tsan.on_release ts ~tid:h ~m
    | Some _ | None -> ());
    (match newh with
    | Some w when mu.holder <> newh -> Tsan.on_acquire ts ~tid:w ~m
    | Some _ | None -> ()));
  (match mu.holder with
  | Some h when Some h <> newh -> Vm.Tcb.unhold (thread t h) m
  | Some _ | None -> ());
  (match newh with
  | Some h when mu.holder <> newh -> Vm.Tcb.hold (thread t h) m
  | Some _ | None -> ());
  mu.holder <- newh

let note_undo t key ~old =
  match t.current_undo with
  | None -> ()
  | Some log ->
    if Undo_log.note log key ~old then begin
      t.acc_cost <- t.acc_cost + t.costs.Vm.Costs.cow_first_write;
      Sim.Stats.incr t.stats "ckpt.cow_words"
    end

let tsan_access t (tcb : Vm.Tcb.t) hook a =
  match t.tsan with
  | Some ts when not tcb.Vm.Tcb.in_cpr_region ->
    hook ts ~tid:tcb.Vm.Tcb.tid ~pc:tcb.Vm.Tcb.pc
      ~proc:tcb.Vm.Tcb.proc.Vm.Isa.pname ~addr:a
  | Some _ | None -> ()

let make_env t (tcb : Vm.Tcb.t) =
  let costs = t.costs in
  {
    Vm.Env.tid = tcb.Vm.Tcb.tid;
    regs = tcb.Vm.Tcb.regs;
    read =
      (fun a ->
        t.acc_cost <- t.acc_cost + costs.Vm.Costs.mem_access;
        tsan_access t tcb Tsan.on_read a;
        Vm.Mem.read t.mem a);
    write =
      (fun a v ->
        t.acc_cost <- t.acc_cost + costs.Vm.Costs.mem_access;
        tsan_access t tcb Tsan.on_write a;
        note_undo t (Undo_log.K_mem a) ~old:(Vm.Mem.read t.mem a);
        Vm.Mem.write t.mem a v);
    file_size = (fun f -> Vm.Io.size t.io f);
    file_read =
      (fun f ~off ->
        t.acc_cost <- t.acc_cost + costs.Vm.Costs.io_per_word;
        Vm.Io.read t.io f ~off);
    file_write =
      (fun f ~off v ->
        t.acc_cost <- t.acc_cost + costs.Vm.Costs.io_per_word;
        let len = Vm.Io.size t.io f in
        if off >= len then begin
          note_undo t (Undo_log.K_file_len f) ~old:len;
          match t.on_io_grow with
          | Some g -> g f (off + 1 - len)
          | None -> ()
        end;
        note_undo t (Undo_log.K_file (f, off)) ~old:(Vm.Io.read t.io f ~off);
        Vm.Io.write t.io f ~off v);
  }

(* Envs are memoized per tid: every hook reads the machine's mutable
   state ([current_undo], the CPR flag, [pc]) at call time, so a cached
   env behaves identically to a fresh one — this removes a 7-closure
   allocation per Work instruction on every engine's hot path. The
   physical-equality guard on the register file invalidates the cache if
   a tid is ever rebound to a different TCB (each TCB owns its regs). *)
let env_of t (tcb : Vm.Tcb.t) =
  let tid = tcb.Vm.Tcb.tid in
  if tid >= Array.length t.envs then begin
    let n = Stdlib.max (2 * Array.length t.envs) (tid + 1) in
    let envs' = Array.make n None in
    Array.blit t.envs 0 envs' 0 (Array.length t.envs);
    t.envs <- envs'
  end;
  match t.envs.(tid) with
  | Some e when e.Vm.Env.regs == tcb.Vm.Tcb.regs -> e
  | _ ->
    let e = make_env t tcb in
    t.envs.(tid) <- Some e;
    e

let take_acc_cost t =
  let c = t.acc_cost in
  t.acc_cost <- 0;
  c

(* The trace-compiler cursor is allocated once per state and retargeted
   per hop; compiled closures thread all their execution state through
   it, so entering a superblock allocates nothing. Retargeting is a
   physical-equality check in the common consecutive-hops-same-thread
   case. *)
let cursor t (tcb : Vm.Tcb.t) =
  match t.cursor with
  | Some cu ->
    if cu.Vm.Block.cu_tcb != tcb then begin
      cu.Vm.Block.cu_tcb <- tcb;
      cu.Vm.Block.cu_env <- env_of t tcb
    end;
    cu
  | None ->
    let cu =
      Vm.Block.make_cursor ~tcb ~env:(env_of t tcb)
        ~take_acc:(fun () -> take_acc_cost t)
    in
    t.cursor <- Some cu;
    cu

(* Per-proc fused-block decode with a one-entry memo: consecutive hops
   overwhelmingly stay in one proc, so the common case skips the
   name-keyed hashtable lookup. *)
let decode_of t (proc : Vm.Isa.proc) =
  match t.last_decode with
  | Some (p, info) when p == proc -> info
  | _ ->
    let info = Vm.Block.proc_info t.blocks proc in
    t.last_decode <- Some (proc, info);
    info

let read_atomic t v = t.atomics.(v)

let write_atomic t v x =
  note_undo t (Undo_log.K_atomic v) ~old:t.atomics.(v);
  t.atomics.(v) <- x

let now t = Sim.Event_queue.now t.evq

let all_exited t = t.live_threads = 0

let seconds t c =
  Sim.Time.to_seconds ~cycles_per_second:t.costs.Vm.Costs.cycles_per_second c

type run_result = {
  sim_cycles : Sim.Time.cycles;
  sim_seconds : float;
  dnc : bool;
  run_stats : Sim.Stats.t;
  outputs : (string * int array) list;
  final_mem : Vm.Mem.t;
  races : Tsan.report list;
}

let mk_result t ~dnc =
  {
    sim_cycles = now t;
    sim_seconds = seconds t (now t);
    dnc;
    run_stats = t.stats;
    outputs =
      List.map (fun (name, f) -> (name, Vm.Io.contents t.io f)) t.output_handles;
    final_mem = t.mem;
    races = (match t.tsan with Some ts -> Tsan.reports ts | None -> []);
  }
