(* Run one workload under one engine with optional exception injection,
   or statically lint a workload's sync structure without running it.

   Usage: gprs_run -w pbzip2 -e gprs --rate 4.0 --contexts 24
          gprs_run lint canneal
          gprs_run lint all --verbose *)

open Cmdliner

let build_workload workload contexts scale grain =
  let spec = Workloads.Suite.find workload in
  let grain =
    match grain with
    | "fine" -> Workloads.Workload.Fine
    | _ -> Workloads.Workload.Default
  in
  (spec, spec.Workloads.Workload.build ~n_contexts:contexts ~grain ~scale)

(* Lint at the CLI level (all engines, not just GPRS), then hand the
   program to the engine with its own hook off so findings print once. *)
let cli_lint ~strict_lint ~no_lint program =
  if no_lint then `Run
  else begin
    let diags = Lint.Check.program program in
    let visible =
      List.filter
        (fun d -> d.Lint.Diagnostic.severity <> Lint.Diagnostic.Info)
        diags
    in
    if visible <> [] then
      Format.eprintf "%a" (Lint.Render.pp ~title:"GPRS-lint") visible;
    if strict_lint && Lint.Check.has_errors diags then `Refuse else `Run
  end

(* Dispatch-mix report (--profile): per-instruction-kind dispatch counts
   and, when fusion is on, the fused-hop-length histogram. *)
let print_profile (r : Exec.State.run_result) =
  let prefixed ~prefix k =
    String.length k >= String.length prefix
    && String.sub k 0 (String.length prefix) = prefix
  in
  let assoc = Sim.Stats.to_assoc r.Exec.State.run_stats in
  let dispatch = List.filter (fun (k, _) -> prefixed ~prefix:"dispatch." k) assoc in
  let total = List.fold_left (fun a (_, v) -> a +. v) 0.0 dispatch in
  let hops = try List.assoc "fuse.hops" assoc with Not_found -> 0.0 in
  let instrs = float_of_int (Sim.Stats.get r.Exec.State.run_stats "instrs") in
  Format.printf "dispatch mix (%.0f dispatches, %.0f event-queue hops, %.2f instrs/hop):@."
    total hops
    (if hops > 0.0 then instrs /. hops else 0.0);
  List.iter
    (fun (k, v) ->
      Format.printf "  %-24s %12.0f  %5.1f%%@." k v
        (if total > 0.0 then 100.0 *. v /. total else 0.0))
    (List.sort (fun (_, a) (_, b) -> compare b a) dispatch);
  List.iter
    (fun (k, v) ->
      if prefixed ~prefix:"fuse.len." k then
        Format.printf "  %-24s %12.0f@." k v)
    assoc;
  (* Trace-compiler effectiveness: superblocks built at load, closure
     entries, instructions committed per entry, and guard/horizon deopt
     counts. *)
  let compile = List.filter (fun (k, _) -> prefixed ~prefix:"compile." k) assoc in
  if compile <> [] then begin
    Format.printf "compile (GPRS_NO_COMPILE=1 disables trace compilation):@.";
    List.iter (fun (k, v) -> Format.printf "  %-24s %12.1f@." k v) compile
  end;
  (* Pool effectiveness (gprs only): sub-thread record reuse and
     event-queue cell recycling, plus the live high-water mark. *)
  let pool = List.filter (fun (k, _) -> prefixed ~prefix:"pool." k) assoc in
  if pool <> [] then begin
    Format.printf "pool (GPRS_NO_POOL=1 disables recycling):@.";
    List.iter (fun (k, v) -> Format.printf "  %-24s %12.0f@." k v) pool
  end;
  (* Intra-run parallelism (--par-j / GPRS_PAR_J): speculative windows
     leased to worker domains, and how many survived commit. *)
  let par = List.filter (fun (k, _) -> prefixed ~prefix:"par." k) assoc in
  if par <> [] then begin
    Format.printf "par (%d jobs; windows committed replace whole hops):@."
      (Exec.Par.jobs ());
    List.iter (fun (k, v) -> Format.printf "  %-24s %12.0f@." k v) par
  end

let run workload engine contexts scale seed rate grain ordering interval
    show_stats profile strict_lint no_lint par_j =
  if profile then Vm.Block.set_profiling true;
  (match par_j with Some j -> Exec.Par.set_jobs j | None -> ());
  let spec, program = build_workload workload contexts scale grain in
  match cli_lint ~strict_lint ~no_lint program with
  | `Refuse ->
    Format.eprintf
      "gprs_run: refusing to run %s: lint found error-severity issues \
       (--strict-lint)@."
      workload;
    Stdlib.exit 2
  | `Run ->
    let result =
      try
        match engine with
      | "pthreads" ->
        Exec.Baseline.run
          { Exec.Baseline.default_config with n_contexts = contexts; seed }
          program
      | "cpr" ->
        Cpr.run
          {
            Cpr.default_config with
            n_contexts = contexts;
            seed;
            checkpoint_interval = interval;
            injector = Faults.Injector.config ~seed rate;
          }
          program
      | "gprs" ->
        let ordering =
          match ordering with
          | "round-robin" -> Gprs.Order.Round_robin
          | "weighted" -> Gprs.Order.Weighted
          | "recorded" -> Gprs.Order.Recorded
          | _ -> Gprs.Order.Balance_aware
        in
        Gprs.Engine.run ~lint:`Off
          {
            Gprs.Engine.default_config with
            n_contexts = contexts;
            seed;
            ordering;
            injector = Faults.Injector.config ~seed rate;
          }
          program
      | other -> failwith (Printf.sprintf "unknown engine %S" other)
      with
      | Faults.Points.Fault_error msg ->
        Format.eprintf "gprs_run: injected fault surfaced: %s@." msg;
        Stdlib.exit 1
      | Gprs.Engine.Crashed _ ->
        Format.eprintf
          "gprs_run: runtime crashed at an armed fault point \
           (GPRS_FAULT_POINTS); use crashsweep/faultsweep to exercise \
           recovery@.";
        Stdlib.exit 1
    in
    Format.printf "workload   : %s (%s)@." workload spec.Workloads.Workload.pattern;
    Format.printf "engine     : %s, %d contexts, seed %d@." engine contexts seed;
    Format.printf "exceptions : %.2f/s@." rate;
    Format.printf "completed  : %b%s@."
      (not result.Exec.State.dnc)
      (if result.Exec.State.dnc then " (DNC)" else "");
    Format.printf "sim time   : %d cycles = %.4f s@." result.Exec.State.sim_cycles
      result.Exec.State.sim_seconds;
    Format.printf "digest     : %s@." (spec.Workloads.Workload.digest result);
    if show_stats then Format.printf "%a@." Sim.Stats.pp result.Exec.State.run_stats;
    if profile then print_profile result

(* --- lint subcommand -------------------------------------------------- *)

let lint_one ~verbose ~json workload contexts scale grain =
  let _, program = build_workload workload contexts scale grain in
  let diags = Lint.Race.program program in
  let shown =
    if verbose then diags
    else
      List.filter
        (fun d -> d.Lint.Diagnostic.severity <> Lint.Diagnostic.Info)
        diags
  in
  if json then
    Format.printf "{\"workload\":\"%s\",\"diagnostics\":%a}"
      (Lint.Render.json_escape workload)
      Lint.Render.pp_json shown
  else
    Format.printf "%a"
      (Lint.Render.pp ~title:(Printf.sprintf "gprs_run lint %s" workload))
      shown;
  Lint.Check.has_errors diags

let lint_cmd_run workload contexts scale grain verbose json =
  let targets =
    if workload = "all" then Workloads.Suite.names else [ workload ]
  in
  if json then Format.printf "[";
  let any_errors =
    List.fold_left
      (fun acc w ->
        if json && acc <> None then Format.printf ",@.";
        let e = lint_one ~verbose ~json w contexts scale grain in
        Some (Option.value acc ~default:false || e))
      None targets
    |> Option.value ~default:false
  in
  if json then Format.printf "]@.";
  if any_errors then Stdlib.exit 1

(* --- racecheck subcommand --------------------------------------------- *)

(* Cross-validated race detection: the static lockset pass over the
   program, then a dynamic run with the FastTrack sanitizer enabled.
   The paper's selective-restart guarantee (§3.3) assumes cross-thread
   dependences are mediated by tracked sync; either detector finding a
   race voids that assumption, so any report exits 1. *)
let run_engine ~engine ~contexts ~seed program =
  match engine with
  | "pthreads" ->
    Exec.Baseline.run
      { Exec.Baseline.default_config with n_contexts = contexts; seed }
      program
  | "cpr" ->
    Cpr.run { Cpr.default_config with n_contexts = contexts; seed } program
  | "gprs" ->
    Gprs.Engine.run ~lint:`Off
      { Gprs.Engine.default_config with n_contexts = contexts; seed }
      program
  | other -> failwith (Printf.sprintf "unknown engine %S" other)

let report_json r =
  Printf.sprintf
    "{\"addr\":%d,\"kind\":\"%s\",\"tid1\":%d,\"pc1\":%d,\"tid2\":%d,\"pc2\":%d,\"proc2\":\"%s\"}"
    r.Exec.Tsan.addr
    (Exec.Tsan.kind_label r.Exec.Tsan.kind)
    r.Exec.Tsan.tid1 r.Exec.Tsan.pc1 r.Exec.Tsan.tid2 r.Exec.Tsan.pc2
    (Lint.Render.json_escape r.Exec.Tsan.proc2)

let racecheck_one ~json ~engine workload contexts scale grain seed =
  let _, program = build_workload workload contexts scale grain in
  let static_races =
    List.filter
      (fun d -> d.Lint.Diagnostic.kind = Lint.Diagnostic.Race_unprotected)
      (Lint.Race.program program)
  in
  let was = Exec.Tsan.enabled () in
  Exec.Tsan.set_enabled true;
  let result =
    Fun.protect
      ~finally:(fun () -> Exec.Tsan.set_enabled was)
      (fun () -> run_engine ~engine ~contexts ~seed program)
  in
  let dynamic = result.Exec.State.races in
  if json then
    Format.printf
      "{\"workload\":\"%s\",\"engine\":\"%s\",\"static\":%a,\"dynamic\":[%s]}"
      (Lint.Render.json_escape workload)
      engine Lint.Render.pp_json static_races
      (String.concat "," (List.map report_json dynamic))
  else begin
    Format.printf "racecheck %s (engine %s, %d contexts, seed %d, scale %g)@."
      workload engine contexts seed scale;
    (match static_races with
    | [] -> Format.printf "  static : clean@."
    | ds ->
      Format.printf "  static : %d unprotected-race finding(s)@."
        (List.length ds);
      Format.printf "%a" (Lint.Render.pp ~title:"static races") ds);
    match dynamic with
    | [] -> Format.printf "  dynamic: clean@."
    | rs ->
      Format.printf "  dynamic: %d race(s) observed@." (List.length rs);
      List.iter (fun r -> Format.printf "    %a@." Exec.Tsan.pp_report r) rs
  end;
  static_races <> [] || dynamic <> []

let racecheck_run workload engine contexts scale grain seed json =
  let targets =
    if workload = "all" then Workloads.Suite.names else [ workload ]
  in
  if json then Format.printf "[";
  let any =
    List.fold_left
      (fun acc w ->
        if json && acc <> None then Format.printf ",@.";
        let r = racecheck_one ~json ~engine w contexts scale grain seed in
        Some (Option.value acc ~default:false || r))
      None targets
    |> Option.value ~default:false
  in
  if json then Format.printf "]@.";
  if any then Stdlib.exit 1

(* --- crashsweep subcommand -------------------------------------------- *)

(* Crash-consistency sweep: crash the whole runtime at every WAL-record
   boundary (or a seeded sample), ARIES-cold-recover, resume, and demand
   the fault-free digest. A P-CPR leg replays the same crash schedule
   restarting from its last committed global checkpoint. *)
(* Machine-readable sweep report: the normalized per-point signatures
   (shared with faultsweep), no wall-clock fields, so the same sweep is
   byte-identical across hosts. *)
let leg_json (r : Recovery.leg_report) =
  let module J = Server.Json in
  J.Obj
    [
      ("leg", J.Str r.Recovery.leg);
      ("points_total", J.Int r.Recovery.points_total);
      ("points_run", J.Int r.Recovery.points_run);
      ("ok", J.Bool (Recovery.leg_ok r));
      ( "outcomes",
        J.List
          (List.map
             (fun (p, sg) ->
               J.Obj [ ("point", J.Int p); ("signature", J.Str sg) ])
             r.Recovery.outcomes) );
      ( "mismatches",
        J.List
          (List.map
             (fun (p, msg) ->
               J.Obj [ ("point", J.Int p); ("detail", J.Str msg) ])
             r.Recovery.mismatches) );
      ("replayed_lsns", J.Int r.Recovery.replayed_lsns);
      ("redone_ops", J.Int r.Recovery.redone_ops);
      ("squashed_subs", J.Int r.Recovery.squashed_subs);
    ]

let crashsweep_run workload contexts scale seed sample schemes no_pcpr json =
  let spec, program = build_workload workload contexts scale "default" in
  let digest = spec.Workloads.Workload.digest in
  let scheme_of = function
    | "rr" | "round-robin" -> Gprs.Order.Round_robin
    | "bal" | "balance-aware" -> Gprs.Order.Balance_aware
    | "wt" | "weighted" -> Gprs.Order.Weighted
    | other -> failwith (Printf.sprintf "unknown scheme %S" other)
  in
  let schemes = String.split_on_char ',' schemes in
  let sample = if sample <= 0 then None else Some sample in
  let reports =
    List.map
      (fun name ->
        let cfg =
          {
            Gprs.Engine.default_config with
            n_contexts = contexts;
            seed;
            ordering = scheme_of name;
          }
        in
        Recovery.sweep_gprs ?sample ~sample_seed:seed ~leg:("gprs/" ^ name)
          ~cfg ~digest program)
      schemes
  in
  let reports =
    if no_pcpr then reports
    else begin
      (* The comparison leg crashes P-CPR at the simulated cycles of the
         first GPRS leg's WAL records — the same crash schedule. *)
      let cfg =
        {
          Gprs.Engine.default_config with
          n_contexts = contexts;
          seed;
          ordering = scheme_of (List.hd schemes);
        }
      in
      let image, _ = Recovery.pilot ~cfg program in
      let a = Recovery.analyze image in
      let cycles = List.map snd a.Recovery.points |> List.sort_uniq compare in
      let cycles =
        match sample with
        | Some n when n < List.length cycles ->
          Recovery.sample_points (Sim.Prng.create seed) n
            (List.map (fun c -> (c, c)) cycles)
          |> List.map fst
        | Some _ | None -> cycles
      in
      let ccfg = { Cpr.default_config with Cpr.n_contexts = contexts; seed } in
      reports
      @ [ Recovery.sweep_pcpr ~leg:"pcpr" ~cfg:ccfg ~digest
            ~crash_cycles:cycles program ]
    end
  in
  let all_ok = List.for_all Recovery.leg_ok reports in
  if json then begin
    let module J = Server.Json in
    print_endline
      (J.to_string
         (J.Obj
            [
              ("workload", J.Str workload);
              ("contexts", J.Int contexts);
              ("scale", J.Float scale);
              ("seed", J.Int seed);
              ("legs", J.List (List.map leg_json reports));
              ("ok", J.Bool all_ok);
            ]))
  end
  else begin
    Format.printf "crashsweep %s (scale %g, %d contexts, seed %d)@." workload
      scale contexts seed;
    List.iter (fun r -> Format.printf "%a@." Recovery.pp_report r) reports
  end;
  if not all_ok then Stdlib.exit 1

(* --- serve subcommand ------------------------------------------------- *)

let serve_run port sock jobs depth cache_cap idle_ms par_j allow_fault =
  (match par_j with Some j -> Exec.Par.set_jobs j | None -> ());
  let addr =
    match sock with
    | Some path -> Server.Daemon.Unix_sock path
    | None -> Server.Daemon.Tcp port
  in
  let d =
    Server.Daemon.start
      {
        Server.Daemon.addr;
        jobs;
        depth;
        cache_capacity = cache_cap;
        idle_quiesce_ms = idle_ms;
        allow_fault;
      }
  in
  (match Server.Daemon.bound_addr d with
  | Server.Daemon.Tcp p ->
    Format.printf "gprs_run serve: listening on 127.0.0.1:%d (jobs %d, depth %d)@." p jobs depth
  | Server.Daemon.Unix_sock path ->
    Format.printf "gprs_run serve: listening on %s (jobs %d, depth %d)@." path jobs depth);
  Server.Daemon.wait d

(* --- client subcommand ------------------------------------------------- *)

let scenario_base ~want_stats workload engine contexts scale seed rate grain
    ordering interval =
  {
    Server.Scenario.id = "";
    workload;
    engine;
    ordering;
    contexts;
    scale;
    grain;
    seed;
    rate;
    interval;
    want_stats;
  }

(* Local one-shot ground truth for --verify: same scenario, fresh decode,
   no daemon. Digest, cycles and DNC must match bit for bit. *)
let verify_against_local scn reply =
  let spec, program = Server.Scenario.build_program scn in
  let local = Server.Scenario.run ~spec ~program scn in
  let got what = Result.value ~default:"?" what in
  match
    ( Server.Json.str "digest" reply,
      Server.Json.int "sim_cycles" reply,
      Server.Json.bool "dnc" reply )
  with
  | Ok d, Ok cyc, Ok dnc
    when d = local.Server.Scenario.digest
         && cyc = local.Server.Scenario.sim_cycles
         && dnc = local.Server.Scenario.dnc ->
    None
  | _ ->
    Some
      (Printf.sprintf
         "daemon digest=%s cycles=%s vs one-shot digest=%s cycles=%d"
         (got (Server.Json.str ~default:"?" "digest" reply))
         (got
            (Result.map string_of_int
               (Server.Json.int ~default:(-1) "sim_cycles" reply)))
         local.Server.Scenario.digest local.Server.Scenario.sim_cycles)

let client_run port sock retries workload engine contexts scale seed rate
    grain ordering interval count mix open_rps verify show_stats do_shutdown =
  let addr =
    match sock with
    | Some path -> Server.Daemon.Unix_sock path
    | None -> Server.Daemon.Tcp port
  in
  let c = Server.Client.connect ~retries addr in
  let failures = ref 0 in
  let base =
    scenario_base ~want_stats:false workload engine contexts scale seed rate
      grain ordering interval
  in
  (match open_rps with
  | Some rps ->
    (* open-loop load: fixed-rate arrivals, latency includes queueing *)
    let l = Server.Client.open_loop c ~base ~n:count ~rps in
    if l.Server.Client.failed > 0 then incr failures;
    Format.printf
      "open-loop : %d sent at %.1f req/s, %d ok, %d failed@." l.Server.Client.sent
      rps l.Server.Client.ok l.Server.Client.failed;
    Format.printf "throughput: %.1f req/s sustained@." l.Server.Client.rps;
    Format.printf "latency   : mean %.2f ms, p50 %.2f ms, p99 %.2f ms@."
      l.Server.Client.mean_ms l.Server.Client.p50_ms l.Server.Client.p99_ms
  | None ->
    (* scripted burst: --mix sweeps workload x engine x {fault-free,
       faulty}; otherwise --count sequential requests stepping the seed *)
    let scenarios =
      if mix then
        List.concat_map
          (fun w ->
            List.concat_map
              (fun e ->
                List.map
                  (fun r -> { base with Server.Scenario.workload = w;
                              engine = e; rate = r })
                  (List.sort_uniq compare [ 0.0; rate ]))
              [ "pthreads"; "cpr"; "gprs" ])
          Workloads.Suite.names
      else
        List.init count (fun i ->
            { base with Server.Scenario.seed = seed + i })
    in
    let scenarios =
      List.mapi
        (fun i scn -> { scn with Server.Scenario.id = Printf.sprintf "c%d" i })
        scenarios
    in
    let t0 = Unix.gettimeofday () in
    let lats =
      List.map
        (fun scn ->
          let reply, ms = Server.Client.timed_run c scn in
          let ev =
            Result.value ~default:"?"
              (Server.Json.str ~default:"?" "event" reply)
          in
          (if ev <> "done" then begin
             incr failures;
             Format.printf "%-14s %-8s rate %-4g FAILED: %s@."
               scn.Server.Scenario.workload scn.Server.Scenario.engine
               scn.Server.Scenario.rate (Server.Json.to_string reply)
           end
           else
             match if verify then verify_against_local scn reply else None with
             | Some msg ->
               incr failures;
               Format.printf "%-14s %-8s rate %-4g MISMATCH: %s@."
                 scn.Server.Scenario.workload scn.Server.Scenario.engine
                 scn.Server.Scenario.rate msg
             | None ->
               Format.printf "%-14s %-8s rate %-4g ok  %7.2f ms  %s@."
                 scn.Server.Scenario.workload scn.Server.Scenario.engine
                 scn.Server.Scenario.rate ms
                 (Result.value ~default:"?"
                    (Server.Json.str ~default:"?" "digest" reply)));
          ms)
        scenarios
    in
    let wall = Unix.gettimeofday () -. t0 in
    let n = List.length lats in
    let sorted = Array.of_list lats in
    Array.sort compare sorted;
    let pick p =
      if n = 0 then 0.
      else
        sorted.(Stdlib.max 0
                  (Stdlib.min (n - 1)
                     (int_of_float (Float.ceil (p /. 100. *. float_of_int n))
                      - 1)))
    in
    Format.printf
      "summary   : %d requests, %d failed, %.1f req/s, p50 %.2f ms, p99 %.2f        ms%s@."
      n !failures
      (if wall > 0. then float_of_int n /. wall else 0.)
      (pick 50.) (pick 99.)
      (if verify then " (verified against one-shot)" else ""));
  if show_stats then
    Format.printf "stats     : %s@."
      (Server.Json.to_string (Server.Client.stats c));
  if do_shutdown then Server.Client.shutdown c;
  Server.Client.close c;
  if !failures > 0 then Stdlib.exit 1

(* --- faultsweep subcommand -------------------------------------------- *)

(* JSON scenario matrix over the named-fault-point space; the heavy
   lifting lives in Faultsweep.run_matrix. Progress goes to stderr so
   stdout stays pure results JSON when --out is omitted. *)
let faultsweep_run matrix seed iters scenarios out quiet =
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let fail msg =
    Format.eprintf "gprs_run faultsweep: %s@." msg;
    Stdlib.exit 2
  in
  let text = try read_file matrix with Sys_error e -> fail e in
  let j =
    match Server.Json.of_string text with
    | Ok j -> j
    | Error e -> fail (Printf.sprintf "%s: bad JSON: %s" matrix e)
  in
  let only =
    if scenarios = "" then []
    else
      String.split_on_char ',' scenarios
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
  in
  let log = if quiet then fun _ -> () else fun l -> Format.eprintf "%s@." l in
  match Faultsweep.run_matrix ~only ~seed ~iters ~log j with
  | Error msg -> fail msg
  | Ok (results, ok) ->
    let line = Server.Json.to_string results in
    (match out with
    | None -> print_endline line
    | Some path ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc line;
          output_char oc '\n'));
    if not ok then Stdlib.exit 1

(* --- terms ------------------------------------------------------------ *)

let workload =
  let doc =
    Printf.sprintf "Workload: %s." (String.concat ", " Workloads.Suite.names)
  in
  Arg.(value & opt string "pbzip2" & info [ "w"; "workload" ] ~doc)

let engine =
  let doc = "Engine: pthreads, cpr, or gprs." in
  Arg.(value & opt string "gprs" & info [ "e"; "engine" ] ~doc)

let contexts = Arg.(value & opt int 24 & info [ "contexts"; "n" ] ~doc:"Hardware contexts.")
let scale = Arg.(value & opt float 1.0 & info [ "scale" ] ~doc:"Input scale.")
let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.")
let rate = Arg.(value & opt float 0.0 & info [ "rate" ] ~doc:"Exceptions per second.")
let grain = Arg.(value & opt string "default" & info [ "grain" ] ~doc:"default or fine.")

let ordering =
  Arg.(value & opt string "balance-aware"
       & info [ "ordering" ]
           ~doc:
             "GPRS ordering: round-robin, balance-aware, weighted, or recorded \
              (nondeterministic; dynamic order recorded for selective restart).")

let interval =
  Arg.(value & opt float 0.05 & info [ "interval" ] ~doc:"CPR checkpoint interval (s).")

let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print run statistics.")

let profile_flag =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:
             "Profile the dispatch mix: per-instruction-kind dispatch counts \
              and the fused-hop-length histogram (set $(b,GPRS_NO_FUSE=1) to \
              compare against unfused dispatch).")

let strict_lint =
  Arg.(value & flag
       & info [ "strict-lint" ]
           ~doc:
             "Refuse to run (exit 2) if GPRS-lint finds error-severity \
              issues in the workload program.")

let no_lint =
  Arg.(value & flag
       & info [ "no-lint" ] ~doc:"Skip the pre-execution GPRS-lint pass.")

let par_j =
  Arg.(value & opt (some int) None
       & info [ "par-j" ]
           ~doc:
             "Worker domains for intra-run parallelism (including the \
              coordinator); 1 runs sequentially. Overrides $(b,GPRS_PAR_J). \
              The simulated result is identical for every value; only \
              wall-clock changes.")

let run_term =
  Term.(
    const run $ workload $ engine $ contexts $ scale $ seed $ rate $ grain
    $ ordering $ interval $ stats $ profile_flag $ strict_lint $ no_lint
    $ par_j)

let run_cmd =
  let doc = "run one workload under pthreads / CPR / GPRS" in
  Cmd.v (Cmd.info "run" ~doc) run_term

let lint_workload_pos =
  let doc =
    Printf.sprintf
      "Workload to lint (%s), or $(b,all) for the whole suite."
      (String.concat ", " Workloads.Suite.names)
  in
  Arg.(value & pos 0 string "all" & info [] ~docv:"WORKLOAD" ~doc)

let lint_verbose =
  Arg.(value & flag
       & info [ "verbose"; "v" ]
           ~doc:"Also print info-severity findings (barrier coverage, ...).")

let json_flag =
  Arg.(value & flag
       & info [ "json" ]
           ~doc:
             "Emit machine-readable JSON (kind, proc, pc, sites) instead of \
              the ASCII table.")

let lint_cmd =
  let doc =
    "statically analyze a workload program: lock discipline, deadlock \
     order, CPR-region / hybrid-recovery soundness, unprotected races"
  in
  Cmd.v
    (Cmd.info "lint" ~doc)
    Term.(
      const lint_cmd_run $ lint_workload_pos $ contexts $ scale $ grain
      $ lint_verbose $ json_flag)

let racecheck_workload_pos =
  let doc =
    Printf.sprintf
      "Workload to race-check (%s), or $(b,all) for the whole suite."
      (String.concat ", " Workloads.Suite.names)
  in
  Arg.(value & pos 0 string "all" & info [] ~docv:"WORKLOAD" ~doc)

let racecheck_cmd =
  let doc =
    "cross-validated race detection: static lockset analysis plus a \
     dynamic vector-clock (FastTrack) sanitized run; exits 1 if either \
     side reports a race"
  in
  Cmd.v
    (Cmd.info "racecheck" ~doc)
    Term.(
      const racecheck_run $ racecheck_workload_pos $ engine $ contexts
      $ scale $ grain $ seed $ json_flag)

let sweep_workload_pos =
  let doc =
    Printf.sprintf "Workload to sweep (%s)."
      (String.concat ", " Workloads.Suite.names)
  in
  Arg.(value & pos 0 string "pbzip2" & info [] ~docv:"WORKLOAD" ~doc)

let crash_sample =
  Arg.(value & opt int 0
       & info [ "crash-sample" ]
           ~doc:
             "Exercise only N seeded-sampled crash points per leg instead \
              of every WAL-record boundary (0 = exhaustive).")

let sweep_schemes =
  Arg.(value & opt string "rr,bal,wt"
       & info [ "schemes" ]
           ~doc:"Comma-separated GPRS ordering legs: rr, bal, wt.")

let no_pcpr =
  Arg.(value & flag
       & info [ "no-pcpr" ] ~doc:"Skip the P-CPR comparison leg.")

let crashsweep_json =
  Arg.(value & flag
       & info [ "json" ]
           ~doc:
             "Emit one machine-readable JSON line — per-leg, per-crash-point \
              normalized failure signatures (the faultsweep vocabulary) — \
              instead of the ASCII report.")

let crashsweep_cmd =
  let doc =
    "crash the whole runtime at every WAL-record boundary, cold-recover \
     (ARIES analysis/redo/undo + precise restart), and require the \
     fault-free digest; exits 1 on any mismatch"
  in
  Cmd.v
    (Cmd.info "crashsweep" ~doc)
    Term.(
      const crashsweep_run $ sweep_workload_pos $ contexts $ scale $ seed
      $ crash_sample $ sweep_schemes $ no_pcpr $ crashsweep_json)

let serve_port =
  Arg.(value & opt int 7477
       & info [ "p"; "port" ]
           ~doc:"TCP port to listen on (loopback only); 0 picks one.")

let serve_sock =
  Arg.(value & opt (some string) None
       & info [ "sock" ]
           ~doc:"Listen on a Unix-domain socket at $(docv) instead of TCP."
           ~docv:"PATH")

let serve_jobs =
  Arg.(value & opt int 1
       & info [ "j"; "jobs" ]
           ~doc:"Worker domains executing requests concurrently.")

let serve_depth =
  Arg.(value & opt int 64
       & info [ "depth" ]
           ~doc:
             "Admission bound: queued-or-running work units beyond which \
              new requests are shed with a 429-style error.")

let serve_cache =
  Arg.(value & opt int 32
       & info [ "cache" ]
           ~doc:
             "Program-cache capacity: decoded workloads with their \
              compiled superblocks and lint verdicts, LRU-evicted past it.")

let serve_idle_ms =
  Arg.(value & opt int 200
       & info [ "idle-ms" ]
           ~doc:
             "Join idle worker domains (request pool and speculative-window \
              workers) after this many ms without traffic; 0 disables.")

let serve_allow_fault =
  Arg.(value & flag
       & info [ "allow-fault-injection" ]
           ~doc:
             "Serve the $(b,fault) protocol verb: arm/reset/inspect named \
              fault points in the daemon process. Off by default — an armed \
              point perturbs every request the process serves.")

let serve_cmd =
  let doc =
    "persistent simulation daemon: newline-delimited JSON scenario \
     requests over TCP or a Unix socket, with cross-request program \
     caching, request coalescing and bounded admission"
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const serve_run $ serve_port $ serve_sock $ serve_jobs $ serve_depth
      $ serve_cache $ serve_idle_ms $ par_j $ serve_allow_fault)

let client_port =
  Arg.(value & opt int 7477
       & info [ "p"; "port" ]
           ~doc:"Daemon TCP port to connect to (loopback).")

let client_sock =
  Arg.(value & opt (some string) None
       & info [ "sock" ]
           ~doc:"Connect to the daemon's Unix-domain socket at $(docv) \
                 instead of TCP."
           ~docv:"PATH")

let client_retries =
  Arg.(value & opt int 3
       & info [ "connect-retries" ]
           ~doc:
             "Re-attempts after a failed connect, with exponential backoff \
              (50 ms doubling, 2 s cap) — lets a client start concurrently \
              with its daemon instead of racing it with sleeps.")

let client_count =
  Arg.(value & opt int 1
       & info [ "count" ]
           ~doc:
             "Requests to send: sequential, stepping the seed (or arrival \
              count under $(b,--open-loop)).")

let client_mix =
  Arg.(value & flag
       & info [ "mix" ]
           ~doc:
             "Burst the full matrix instead: every workload x every engine, \
              fault-free and (if --rate > 0) faulty.")

let client_open_loop =
  Arg.(value & opt (some float) None
       & info [ "open-loop" ]
           ~doc:
             "Open-loop mode: send $(b,--count) arrivals at $(docv) \
              requests/s regardless of completions and report sustained \
              throughput and p50/p99 latency."
           ~docv:"RPS")

let client_verify =
  Arg.(value & flag
       & info [ "verify" ]
           ~doc:
             "Re-run every scenario one-shot in-process and require \
              bit-identical digest, cycles and DNC from the daemon; exits 1 \
              on any mismatch.")

let client_stats =
  Arg.(value & flag
       & info [ "server-stats" ] ~doc:"Print the daemon's stats line after.")

let client_shutdown =
  Arg.(value & flag
       & info [ "shutdown" ] ~doc:"Ask the daemon to shut down when done.")

let client_cmd =
  let doc =
    "scripted and open-loop load driver for a running $(b,gprs_run serve) \
     daemon; verifies daemon results against one-shot runs"
  in
  Cmd.v
    (Cmd.info "client" ~doc)
    Term.(
      const client_run $ client_port $ client_sock $ client_retries $ workload
      $ engine $ contexts $ scale $ seed $ rate $ grain $ ordering $ interval
      $ client_count $ client_mix $ client_open_loop $ client_verify
      $ client_stats $ client_shutdown)

let fs_matrix =
  Arg.(required & opt (some string) None
       & info [ "matrix" ] ~docv:"FILE"
           ~doc:"JSON scenario matrix (see README, Fault injection).")

let fs_seed =
  Arg.(value & opt int 0
       & info [ "seed" ]
           ~env:(Cmd.Env.info "GPRS_FAULTSWEEP_SEED")
           ~doc:
             "Seed offset added to every scenario's run seed; the same seed \
              replays the sweep byte-for-byte.")

let fs_iters =
  Arg.(value & opt int 1
       & info [ "iters" ]
           ~env:(Cmd.Env.info "GPRS_FAULTSWEEP_ITERS")
           ~doc:"Run each scenario N times at consecutive seed offsets.")

let fs_scenarios =
  Arg.(value & opt string ""
       & info [ "scenarios" ]
           ~env:(Cmd.Env.info "GPRS_FAULTSWEEP_SCENARIOS")
           ~doc:
             "Comma-separated scenario names to run (others skipped); a \
              trigger-expanded row matches its base name too.")

let fs_out =
  Arg.(value & opt (some string) None
       & info [ "out" ] ~docv:"FILE"
           ~doc:"Write the results JSON to $(docv) instead of stdout.")

let fs_quiet =
  Arg.(value & flag
       & info [ "quiet"; "q" ] ~doc:"Suppress per-scenario progress lines.")

let faultsweep_cmd =
  let doc =
    "run a JSON scenario matrix over the named fault points (point x \
     action x trigger count x workload x engine x seed), classify every \
     outcome into a normalized failure signature, and emit machine-readable \
     results; exits 1 on wrong-digest / analysis-mismatch / arm-rejected, \
     2 on a malformed matrix"
  in
  Cmd.v
    (Cmd.info "faultsweep" ~doc)
    Term.(
      const faultsweep_run $ fs_matrix $ fs_seed $ fs_iters $ fs_scenarios
      $ fs_out $ fs_quiet)

let cmd =
  let doc =
    "run (or statically lint) one workload under pthreads / CPR / GPRS on \
     the simulated machine"
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Subcommands ($(b,gprs_run CMD --help) for details; no subcommand \
         means $(b,run)):";
      `I ("$(b,run)", "run one workload under pthreads / CPR / GPRS.");
      `I
        ( "$(b,lint)",
          "statically analyze a workload: lock discipline, deadlock order, \
           CPR-region soundness, unprotected races." );
      `I
        ( "$(b,racecheck)",
          "cross-validated race detection: static lockset pass plus a \
           dynamic vector-clock sanitized run." );
      `I
        ( "$(b,crashsweep)",
          "crash at every WAL-record boundary, cold-recover, and require \
           the fault-free digest." );
      `I
        ( "$(b,faultsweep)",
          "run a JSON scenario matrix over the named fault points and \
           classify every outcome into a normalized failure signature." );
      `I
        ( "$(b,serve)",
          "persistent simulation daemon with cross-request program caching \
           and bounded admission (JSON lines over TCP / Unix socket)." );
      `I
        ( "$(b,client)",
          "scripted and open-loop load driver for a running daemon, with \
           one-shot verification." );
    ]
  in
  Cmd.group ~default:run_term
    (Cmd.info "gprs_run" ~doc ~man)
    [
      run_cmd;
      lint_cmd;
      racecheck_cmd;
      crashsweep_cmd;
      faultsweep_cmd;
      serve_cmd;
      client_cmd;
    ]

let () = Stdlib.exit (Cmd.eval cmd)
