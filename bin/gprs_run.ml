(* Run one workload under one engine with optional exception injection,
   or statically lint a workload's sync structure without running it.

   Usage: gprs_run -w pbzip2 -e gprs --rate 4.0 --contexts 24
          gprs_run lint canneal
          gprs_run lint all --verbose *)

open Cmdliner

let build_workload workload contexts scale grain =
  let spec = Workloads.Suite.find workload in
  let grain =
    match grain with
    | "fine" -> Workloads.Workload.Fine
    | _ -> Workloads.Workload.Default
  in
  (spec, spec.Workloads.Workload.build ~n_contexts:contexts ~grain ~scale)

(* Lint at the CLI level (all engines, not just GPRS), then hand the
   program to the engine with its own hook off so findings print once. *)
let cli_lint ~strict_lint ~no_lint program =
  if no_lint then `Run
  else begin
    let diags = Lint.Check.program program in
    let visible =
      List.filter
        (fun d -> d.Lint.Diagnostic.severity <> Lint.Diagnostic.Info)
        diags
    in
    if visible <> [] then
      Format.eprintf "%a" (Lint.Render.pp ~title:"GPRS-lint") visible;
    if strict_lint && Lint.Check.has_errors diags then `Refuse else `Run
  end

(* Dispatch-mix report (--profile): per-instruction-kind dispatch counts
   and, when fusion is on, the fused-hop-length histogram. *)
let print_profile (r : Exec.State.run_result) =
  let prefixed ~prefix k =
    String.length k >= String.length prefix
    && String.sub k 0 (String.length prefix) = prefix
  in
  let assoc = Sim.Stats.to_assoc r.Exec.State.run_stats in
  let dispatch = List.filter (fun (k, _) -> prefixed ~prefix:"dispatch." k) assoc in
  let total = List.fold_left (fun a (_, v) -> a +. v) 0.0 dispatch in
  let hops = try List.assoc "fuse.hops" assoc with Not_found -> 0.0 in
  let instrs = float_of_int (Sim.Stats.get r.Exec.State.run_stats "instrs") in
  Format.printf "dispatch mix (%.0f dispatches, %.0f event-queue hops, %.2f instrs/hop):@."
    total hops
    (if hops > 0.0 then instrs /. hops else 0.0);
  List.iter
    (fun (k, v) ->
      Format.printf "  %-24s %12.0f  %5.1f%%@." k v
        (if total > 0.0 then 100.0 *. v /. total else 0.0))
    (List.sort (fun (_, a) (_, b) -> compare b a) dispatch);
  List.iter
    (fun (k, v) ->
      if prefixed ~prefix:"fuse.len." k then
        Format.printf "  %-24s %12.0f@." k v)
    assoc;
  (* Pool effectiveness (gprs only): sub-thread record reuse and
     event-queue cell recycling, plus the live high-water mark. *)
  let pool = List.filter (fun (k, _) -> prefixed ~prefix:"pool." k) assoc in
  if pool <> [] then begin
    Format.printf "pool (GPRS_NO_POOL=1 disables recycling):@.";
    List.iter (fun (k, v) -> Format.printf "  %-24s %12.0f@." k v) pool
  end

let run workload engine contexts scale seed rate grain ordering interval
    show_stats profile strict_lint no_lint =
  if profile then Vm.Block.set_profiling true;
  let spec, program = build_workload workload contexts scale grain in
  match cli_lint ~strict_lint ~no_lint program with
  | `Refuse ->
    Format.eprintf
      "gprs_run: refusing to run %s: lint found error-severity issues \
       (--strict-lint)@."
      workload;
    Stdlib.exit 2
  | `Run ->
    let result =
      match engine with
      | "pthreads" ->
        Exec.Baseline.run
          { Exec.Baseline.default_config with n_contexts = contexts; seed }
          program
      | "cpr" ->
        Cpr.run
          {
            Cpr.default_config with
            n_contexts = contexts;
            seed;
            checkpoint_interval = interval;
            injector = Faults.Injector.config ~seed rate;
          }
          program
      | "gprs" ->
        let ordering =
          match ordering with
          | "round-robin" -> Gprs.Order.Round_robin
          | "weighted" -> Gprs.Order.Weighted
          | "recorded" -> Gprs.Order.Recorded
          | _ -> Gprs.Order.Balance_aware
        in
        Gprs.Engine.run ~lint:`Off
          {
            Gprs.Engine.default_config with
            n_contexts = contexts;
            seed;
            ordering;
            injector = Faults.Injector.config ~seed rate;
          }
          program
      | other -> failwith (Printf.sprintf "unknown engine %S" other)
    in
    Format.printf "workload   : %s (%s)@." workload spec.Workloads.Workload.pattern;
    Format.printf "engine     : %s, %d contexts, seed %d@." engine contexts seed;
    Format.printf "exceptions : %.2f/s@." rate;
    Format.printf "completed  : %b%s@."
      (not result.Exec.State.dnc)
      (if result.Exec.State.dnc then " (DNC)" else "");
    Format.printf "sim time   : %d cycles = %.4f s@." result.Exec.State.sim_cycles
      result.Exec.State.sim_seconds;
    Format.printf "digest     : %s@." (spec.Workloads.Workload.digest result);
    if show_stats then Format.printf "%a@." Sim.Stats.pp result.Exec.State.run_stats;
    if profile then print_profile result

(* --- lint subcommand -------------------------------------------------- *)

let lint_one ~verbose workload contexts scale grain =
  let _, program = build_workload workload contexts scale grain in
  let diags = Lint.Check.program program in
  let shown =
    if verbose then diags
    else
      List.filter
        (fun d -> d.Lint.Diagnostic.severity <> Lint.Diagnostic.Info)
        diags
  in
  Format.printf "%a"
    (Lint.Render.pp ~title:(Printf.sprintf "gprs_run lint %s" workload))
    shown;
  Lint.Check.has_errors diags

let lint_cmd_run workload contexts scale grain verbose =
  let targets =
    if workload = "all" then Workloads.Suite.names else [ workload ]
  in
  let any_errors =
    List.fold_left
      (fun acc w -> lint_one ~verbose w contexts scale grain || acc)
      false targets
  in
  if any_errors then Stdlib.exit 1

(* --- crashsweep subcommand -------------------------------------------- *)

(* Crash-consistency sweep: crash the whole runtime at every WAL-record
   boundary (or a seeded sample), ARIES-cold-recover, resume, and demand
   the fault-free digest. A P-CPR leg replays the same crash schedule
   restarting from its last committed global checkpoint. *)
let crashsweep_run workload contexts scale seed sample schemes no_pcpr =
  let spec, program = build_workload workload contexts scale "default" in
  let digest = spec.Workloads.Workload.digest in
  let scheme_of = function
    | "rr" | "round-robin" -> Gprs.Order.Round_robin
    | "bal" | "balance-aware" -> Gprs.Order.Balance_aware
    | "wt" | "weighted" -> Gprs.Order.Weighted
    | other -> failwith (Printf.sprintf "unknown scheme %S" other)
  in
  let schemes = String.split_on_char ',' schemes in
  let sample = if sample <= 0 then None else Some sample in
  let reports =
    List.map
      (fun name ->
        let cfg =
          {
            Gprs.Engine.default_config with
            n_contexts = contexts;
            seed;
            ordering = scheme_of name;
          }
        in
        Recovery.sweep_gprs ?sample ~sample_seed:seed ~leg:("gprs/" ^ name)
          ~cfg ~digest program)
      schemes
  in
  let reports =
    if no_pcpr then reports
    else begin
      (* The comparison leg crashes P-CPR at the simulated cycles of the
         first GPRS leg's WAL records — the same crash schedule. *)
      let cfg =
        {
          Gprs.Engine.default_config with
          n_contexts = contexts;
          seed;
          ordering = scheme_of (List.hd schemes);
        }
      in
      let image, _ = Recovery.pilot ~cfg program in
      let a = Recovery.analyze image in
      let cycles = List.map snd a.Recovery.points |> List.sort_uniq compare in
      let cycles =
        match sample with
        | Some n when n < List.length cycles ->
          Recovery.sample_points (Sim.Prng.create seed) n
            (List.map (fun c -> (c, c)) cycles)
          |> List.map fst
        | Some _ | None -> cycles
      in
      let ccfg = { Cpr.default_config with Cpr.n_contexts = contexts; seed } in
      reports
      @ [ Recovery.sweep_pcpr ~leg:"pcpr" ~cfg:ccfg ~digest
            ~crash_cycles:cycles program ]
    end
  in
  Format.printf "crashsweep %s (scale %g, %d contexts, seed %d)@." workload
    scale contexts seed;
  List.iter (fun r -> Format.printf "%a@." Recovery.pp_report r) reports;
  if not (List.for_all Recovery.leg_ok reports) then Stdlib.exit 1

(* --- terms ------------------------------------------------------------ *)

let workload =
  let doc =
    Printf.sprintf "Workload: %s." (String.concat ", " Workloads.Suite.names)
  in
  Arg.(value & opt string "pbzip2" & info [ "w"; "workload" ] ~doc)

let engine =
  let doc = "Engine: pthreads, cpr, or gprs." in
  Arg.(value & opt string "gprs" & info [ "e"; "engine" ] ~doc)

let contexts = Arg.(value & opt int 24 & info [ "contexts"; "n" ] ~doc:"Hardware contexts.")
let scale = Arg.(value & opt float 1.0 & info [ "scale" ] ~doc:"Input scale.")
let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.")
let rate = Arg.(value & opt float 0.0 & info [ "rate" ] ~doc:"Exceptions per second.")
let grain = Arg.(value & opt string "default" & info [ "grain" ] ~doc:"default or fine.")

let ordering =
  Arg.(value & opt string "balance-aware"
       & info [ "ordering" ]
           ~doc:
             "GPRS ordering: round-robin, balance-aware, weighted, or recorded \
              (nondeterministic; dynamic order recorded for selective restart).")

let interval =
  Arg.(value & opt float 0.05 & info [ "interval" ] ~doc:"CPR checkpoint interval (s).")

let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print run statistics.")

let profile_flag =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:
             "Profile the dispatch mix: per-instruction-kind dispatch counts \
              and the fused-hop-length histogram (set $(b,GPRS_NO_FUSE=1) to \
              compare against unfused dispatch).")

let strict_lint =
  Arg.(value & flag
       & info [ "strict-lint" ]
           ~doc:
             "Refuse to run (exit 2) if GPRS-lint finds error-severity \
              issues in the workload program.")

let no_lint =
  Arg.(value & flag
       & info [ "no-lint" ] ~doc:"Skip the pre-execution GPRS-lint pass.")

let run_term =
  Term.(
    const run $ workload $ engine $ contexts $ scale $ seed $ rate $ grain
    $ ordering $ interval $ stats $ profile_flag $ strict_lint $ no_lint)

let run_cmd =
  let doc = "run one workload under pthreads / CPR / GPRS" in
  Cmd.v (Cmd.info "run" ~doc) run_term

let lint_workload_pos =
  let doc =
    Printf.sprintf
      "Workload to lint (%s), or $(b,all) for the whole suite."
      (String.concat ", " Workloads.Suite.names)
  in
  Arg.(value & pos 0 string "all" & info [] ~docv:"WORKLOAD" ~doc)

let lint_verbose =
  Arg.(value & flag
       & info [ "verbose"; "v" ]
           ~doc:"Also print info-severity findings (barrier coverage, ...).")

let lint_cmd =
  let doc =
    "statically analyze a workload program: lock discipline, deadlock \
     order, CPR-region / hybrid-recovery soundness"
  in
  Cmd.v
    (Cmd.info "lint" ~doc)
    Term.(
      const lint_cmd_run $ lint_workload_pos $ contexts $ scale $ grain
      $ lint_verbose)

let sweep_workload_pos =
  let doc =
    Printf.sprintf "Workload to sweep (%s)."
      (String.concat ", " Workloads.Suite.names)
  in
  Arg.(value & pos 0 string "pbzip2" & info [] ~docv:"WORKLOAD" ~doc)

let crash_sample =
  Arg.(value & opt int 0
       & info [ "crash-sample" ]
           ~doc:
             "Exercise only N seeded-sampled crash points per leg instead \
              of every WAL-record boundary (0 = exhaustive).")

let sweep_schemes =
  Arg.(value & opt string "rr,bal,wt"
       & info [ "schemes" ]
           ~doc:"Comma-separated GPRS ordering legs: rr, bal, wt.")

let no_pcpr =
  Arg.(value & flag
       & info [ "no-pcpr" ] ~doc:"Skip the P-CPR comparison leg.")

let crashsweep_cmd =
  let doc =
    "crash the whole runtime at every WAL-record boundary, cold-recover \
     (ARIES analysis/redo/undo + precise restart), and require the \
     fault-free digest; exits 1 on any mismatch"
  in
  Cmd.v
    (Cmd.info "crashsweep" ~doc)
    Term.(
      const crashsweep_run $ sweep_workload_pos $ contexts $ scale $ seed
      $ crash_sample $ sweep_schemes $ no_pcpr)

let cmd =
  let doc =
    "run (or statically lint) one workload under pthreads / CPR / GPRS on \
     the simulated machine"
  in
  Cmd.group ~default:run_term
    (Cmd.info "gprs_run" ~doc)
    [ run_cmd; lint_cmd; crashsweep_cmd ]

let () = Stdlib.exit (Cmd.eval cmd)
