(* Regenerate the paper's tables and figures.

   Usage: paper [table1|table2|fig8a|fig8b|fig9|fig10|fig11|all]
                [--contexts N] [--scale S] [--seed K] [-j JOBS]

   Each driver runs the simulator; see EXPERIMENTS.md for the recorded
   paper-vs-measured comparison. *)

open Cmdliner

let ppf = Format.std_formatter

let render_fig charts fig =
  Analysis.Report.render_figure ppf fig;
  if charts then Analysis.Report.render_bar_chart ppf fig

let run_one cfg charts = function
  | "table1" ->
    Analysis.Report.render_table ppf ~title:"Table 1 — Related work (qualitative)"
      ~header:
        [ "Proposal"; "Recovery"; "Design"; "Chkpt."; "Rec."; "Scalable"; "Det."; "Det. cost" ]
      (Analysis.Experiments.table1 ())
  | "table2" ->
    Analysis.Report.render_table ppf
      ~title:"Table 2 — Programs and their relative characteristics"
      ~header:
        [ "Program"; "Comp."; "Sync."; "Crit."; "Exec(s)"; "Sub-size"; "#Subs" ]
      (Analysis.Experiments.table2 cfg)
  | "fig8a" -> render_fig charts (Analysis.Experiments.fig8a cfg)
  | "fig8b" -> render_fig charts (Analysis.Experiments.fig8b cfg)
  | "fig9" -> render_fig charts (Analysis.Experiments.fig9 cfg)
  | "fig10" -> render_fig charts (Analysis.Experiments.fig10 cfg)
  | "fig11" ->
    Analysis.Experiments.render_fig11 ppf (Analysis.Experiments.fig11 cfg)
  | "ablate-order" -> render_fig charts (Analysis.Experiments.ablation_ordering cfg)
  | "ablate-latency" ->
    Analysis.Report.render_table ppf
      ~title:"Ablation C — detection-latency sweep (Pbzip2, ~6 exceptions/run)"
      ~header:[ "latency(cy)"; "rel.time"; "ROL max"; "WAL max"; "squashed" ]
      (Analysis.Experiments.ablation_latency cfg)
  | "ablate-recovery" -> render_fig charts (Analysis.Experiments.ablation_recovery cfg)
  | "ablate-interval" ->
    Analysis.Report.render_table ppf
      ~title:"Ablation D — CPR checkpoint-interval sweep (RE, ~6 exceptions/run)"
      ~header:[ "interval"; "clean"; "faulty"; "ckpts"; "rollbacks" ]
      (Analysis.Experiments.ablation_interval cfg)
  | "tune-weights" ->
    let spec = Workloads.Suite.find "pbzip2" in
    Analysis.Experiments.render_weights ppf spec
      (Analysis.Experiments.tune_weights cfg spec)
  | other -> Format.fprintf ppf "unknown experiment %S@." other

let experiments =
  [ "table1"; "table2"; "fig8a"; "fig8b"; "fig9"; "fig10"; "fig11" ]

let ablations =
  [ "ablate-order"; "ablate-latency"; "ablate-recovery"; "ablate-interval"; "tune-weights" ]

let main which contexts scale seed charts jobs =
  let jobs =
    if jobs = 0 then Analysis.Pool.available_jobs () else Stdlib.max 1 jobs
  in
  let cfg =
    {
      Analysis.Experiments.default_cfg with
      Analysis.Experiments.n_contexts = contexts;
      scale;
      seed;
      jobs;
    }
  in
  let targets =
    match which with
    | "all" -> experiments
    | "ablations" -> ablations
    | w -> [ w ]
  in
  List.iter
    (fun t ->
      run_one cfg charts t;
      Format.fprintf ppf "@.")
    targets

let which =
  let doc =
    "Experiment to regenerate: table1, table2, fig8a, fig8b, fig9, fig10, \
     fig11, all; or ablate-order, ablate-latency, ablate-recovery, \
     tune-weights, ablations."
  in
  Arg.(value & pos 0 string "all" & info [] ~docv:"EXPERIMENT" ~doc)

let contexts =
  let doc = "Number of simulated hardware contexts." in
  Arg.(value & opt int 24 & info [ "contexts"; "n" ] ~doc)

let scale =
  let doc = "Input-size scale (1.0 = the paper-style large inputs)." in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~doc)

let seed =
  let doc = "Simulation seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~doc)

let charts =
  let doc = "Also render figures as ASCII bar charts." in
  Arg.(value & flag & info [ "charts" ] ~doc)

let jobs =
  let doc =
    "Worker domains for running independent simulations in parallel; 0 \
     means one per recommended core. Output is bit-identical for any \
     value."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~doc)

let cmd =
  let doc = "regenerate the GPRS paper's tables and figures" in
  Cmd.v
    (Cmd.info "paper" ~doc)
    Term.(const main $ which $ contexts $ scale $ seed $ charts $ jobs)

let () = Stdlib.exit (Cmd.eval cmd)
