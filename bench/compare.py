#!/usr/bin/env python3
"""Compare a bench JSON run against a committed baseline.

Usage: python3 bench/compare.py BASELINE.json NEW.json [--factor F]

Experiments and alloc profiles are matched on (name, contexts, scale)
and micro-benchmarks on name, so quick and full runs never gate each
other. A measurement fails the run (exit 1) only when it exceeds BOTH
gates: more than F x its baseline (default 1.5 — fused dispatch bought
enough headroom to gate the ratio tightly) AND more than an absolute
slack above it (default 0.25 s for experiment wall-clock, 500 ns for
micro ns/run, 2M words for alloc minor_words, 500 us for mean cold
recovery, 100 ms for the static race/lint pass, 500 ms for the
intra-run-parallelism fig11 wall legs, 250 ms for service-mode request
latencies). The service section additionally carries two
baseline-independent invariants — zero superblock recompiles and a >= 2x
cold/warm gap on the warm-cache leg — that fail the comparison outright.
The alloc section gates GC minor words per run — the pooled
boundary path must stay allocation-free; promoted_words is reported but
never gated (it wobbles with minor-heap phase). The recovery section
gates mean host seconds per cold recovery over a crashsweep leg —
means over whole sweeps are stable where a single recovery's wall
time is not; max_recovery_s and the replayed/redone/squashed counts
are carried in the JSON for inspection but not gated (the counts are
deterministic, so a drift shows up as a test failure first).
The absolute slack exists because fused dispatch shrank the quick
experiments to tens of milliseconds, where a 1.5x ratio alone is
scheduler noise, not a regression. Anything between 1x and the gates
is printed as a warning. Keys present on only one side are reported
but never fail: new benchmarks land without a baseline, retired ones
linger in the baseline until it is regenerated.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def index(run):
    exps = {
        (e["name"], e["contexts"], round(e["scale"], 4)): e["wall_s"]
        for e in run.get("experiments", [])
    }
    micro = {m["name"]: m["ns_per_run"] for m in run.get("micro", [])}
    alloc = {
        (a["name"], a["contexts"], round(a["scale"], 4)): a["minor_words"]
        for a in run.get("alloc", [])
    }
    recovery = {
        (r["leg"], r["contexts"], round(r["scale"], 4)): r["mean_recovery_s"]
        for r in run.get("recovery", [])
    }
    lint = {
        (l["name"], l["contexts"], round(l["scale"], 4)): l["wall_ms"]
        for l in run.get("lint", [])
    }
    par = {}
    for e in run.get("par", []):
        key = (e["name"], e["contexts"], round(e["scale"], 4))
        par[key + ("j1",)] = e["wall_j1_ms"]
        par[key + (f"j{e['jobs']}",)] = e["wall_jn_ms"]
    service = {}
    for s in run.get("service", []):
        key = (s["name"], s["contexts"], round(s["scale"], 4))
        for metric in ("cold_ms", "warm_ms", "p50_ms", "p99_ms"):
            service[key + (metric,)] = s[metric]
    return exps, micro, alloc, recovery, lint, par, service


def fault_point_invariant(run):
    """Baseline-independent: the measured run must have had zero named
    fault points armed (the bench binary refuses to start with one, so
    a nonzero count means a hand-edited JSON or a bypassed run). With
    that pinned, the existing micro/experiment gates double as the
    proof that compiled-in unarmed point checks cost nothing."""
    armed = run.get("fault_points_armed", 0)
    if armed != 0:
        print(f"  FAIL  fault_points_armed: {armed} (must be 0: armed points "
              f"perturb every measurement)")
        return ["fault_points_armed"]
    return []


def service_invariants(run):
    """Baseline-independent gates on the service section: the warm cache
    must skip superblock compilation entirely and keep at least a 2x
    per-request win over the cold path (the bench binary enforces the
    same bounds and aborts, so tripping these here means a hand-edited
    JSON or a bypassed run)."""
    failures = []
    for s in run.get("service", []):
        label = f"service {s['name']}"
        if s.get("warm_recompiles", 0) != 0:
            print(f"  FAIL  {label}: {s['warm_recompiles']} warm recompiles (must be 0)")
            failures.append(f"{label} warm_recompiles")
        if s.get("warm_speedup", 0.0) < 2.0:
            print(f"  FAIL  {label}: warm speedup {s['warm_speedup']:.2f}x < 2x")
            failures.append(f"{label} warm_speedup")
    return failures


def compare(kind, base, new, factor, abs_slack):
    failures = []
    for key in sorted(set(base) | set(new), key=str):
        label = f"{kind} {key}"
        if key not in base:
            print(f"  NEW   {label}: {new[key]:.6g} (no baseline)")
        elif key not in new:
            print(f"  GONE  {label}: baseline {base[key]:.6g}, not in new run")
        else:
            b, n = base[key], new[key]
            ratio = n / b if b > 0 else float("inf")
            if ratio > factor and n - b > abs_slack:
                print(f"  FAIL  {label}: {n:.6g} vs {b:.6g} ({ratio:.2f}x > {factor}x)")
                failures.append(label)
            elif ratio > 1.0:
                print(f"  warn  {label}: {n:.6g} vs {b:.6g} ({ratio:.2f}x)")
            else:
                print(f"  ok    {label}: {n:.6g} vs {b:.6g} ({ratio:.2f}x)")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--factor", type=float, default=1.5,
                    help="fail when new > factor x baseline (default 1.5)")
    ap.add_argument("--abs-slack-s", type=float, default=0.25,
                    help="experiment wall-clock must also regress by more "
                         "than this many seconds to fail (default 0.25)")
    ap.add_argument("--abs-slack-ns", type=float, default=500.0,
                    help="micro ns/run must also regress by more than this "
                         "many ns to fail (default 500)")
    ap.add_argument("--abs-slack-words", type=float, default=2e6,
                    help="alloc minor_words/run must also regress by more "
                         "than this many words to fail (default 2e6)")
    ap.add_argument("--abs-slack-recovery-s", type=float, default=500e-6,
                    help="mean cold-recovery seconds must also regress by "
                         "more than this to fail (default 500e-6)")
    ap.add_argument("--abs-slack-lint-ms", type=float, default=100.0,
                    help="static race/lint pass wall ms must also regress "
                         "by more than this to fail (default 100)")
    ap.add_argument("--abs-slack-par-ms", type=float, default=500.0,
                    help="intra-run-parallelism fig11 wall ms must also "
                         "regress by more than this to fail (default 500; "
                         "the floor is wide because multi-domain wall time "
                         "is scheduler- and core-count-dependent)")
    ap.add_argument("--abs-slack-service-ms", type=float, default=250.0,
                    help="service-mode per-request latency (cold/warm "
                         "medians, open-loop p50/p99) must also regress by "
                         "more than this many ms to fail (default 250; the "
                         "cold path includes a full lint admission pass and "
                         "open-loop tails are load-sensitive)")
    args = ap.parse_args()

    base, new = load(args.baseline), load(args.new)
    (base_exps, base_micro, base_alloc, base_rec, base_lint, base_par,
     base_svc) = index(base)
    (new_exps, new_micro, new_alloc, new_rec, new_lint, new_par,
     new_svc) = index(new)

    print(f"comparing {args.new} against {args.baseline} (factor {args.factor})")
    failures = compare("experiment", base_exps, new_exps, args.factor,
                       args.abs_slack_s)
    failures += compare("micro", base_micro, new_micro, args.factor,
                        args.abs_slack_ns)
    failures += compare("alloc", base_alloc, new_alloc, args.factor,
                        args.abs_slack_words)
    failures += compare("recovery", base_rec, new_rec, args.factor,
                        args.abs_slack_recovery_s)
    failures += compare("lint", base_lint, new_lint, args.factor,
                        args.abs_slack_lint_ms)
    failures += compare("par", base_par, new_par, args.factor,
                        args.abs_slack_par_ms)
    failures += compare("service", base_svc, new_svc, args.factor,
                        args.abs_slack_service_ms)
    failures += service_invariants(new)
    failures += fault_point_invariant(new)

    if failures:
        print(f"{len(failures)} regression(s) beyond {args.factor}x")
        return 1
    print("no regressions beyond the factor")
    return 0


if __name__ == "__main__":
    sys.exit(main())
