(* Benchmark harness.

   Two parts:

   1. Regenerates every table and figure of the paper's evaluation at
      bench scale (reduced inputs/contexts so the whole harness finishes
      in minutes; `dune exec bin/paper.exe` runs the full-scale version)
      — these are the rows/series the paper reports. Each experiment's
      wall-clock is recorded.

   2. One Bechamel micro-benchmark per table/figure, timing the
      simulator codepath that experiment exercises.

   `--json FILE` writes the wall-clock and ns/run numbers as JSON — the
   committed BENCH_BASELINE.json is one such run, and bench/compare.py
   gates CI against it. `--quick` shrinks part 1's inputs and part 2's
   quota for smoke runs; quick and full runs record different
   (name, contexts, scale) keys, so the comparator never conflates
   them. *)

open Bechamel
open Toolkit

let ppf = Format.std_formatter

type exp_entry = {
  e_name : string;
  e_contexts : int;
  e_scale : float;
  e_wall_s : float;
}

type micro_entry = { m_name : string; m_ns_per_run : float }
type prof_entry = { p_engine : string; p_key : string; p_value : float }

type alloc_entry = {
  a_name : string;
  a_contexts : int;
  a_scale : float;
  a_minor_words : float;
  a_promoted_words : float;
}

type lint_entry = {
  l_name : string;
  l_contexts : int;
  l_scale : float;
  l_wall_ms : float;
}

type par_entry = {
  pr_contexts : int;
  pr_scale : float;
  pr_jobs : int;
  pr_wall_j1_ms : float;
  pr_wall_jn_ms : float;
  pr_windows : float;
  pr_committed : float;
  pr_squashed : float;
  pr_fallback : float;
}

type service_entry = {
  s_name : string;
  s_contexts : int;
  s_scale : float;
  s_cold_ms : float;  (* median request latency, cache cleared each time *)
  s_warm_ms : float;  (* median request latency, cache primed *)
  s_warm_speedup : float;
  s_warm_recompiles : int;  (* Vm.Block analyses during the warm leg *)
  s_rps : float;
  s_p50_ms : float;
  s_p99_ms : float;
}

type recovery_entry = {
  r_leg : string;
  r_contexts : int;
  r_scale : float;
  r_points : int;
  r_mean_recovery_s : float;
  r_max_recovery_s : float;
  r_replayed_lsns : int;
  r_redone_ops : int;
  r_squashed_subs : int;
}

(* ------------------------------------------------------------------ *)
(* Part 1: the paper's rows/series at bench scale                      *)
(* ------------------------------------------------------------------ *)

let bench_cfg ~jobs ~quick =
  {
    Analysis.Experiments.default_cfg with
    Analysis.Experiments.n_contexts = 8;
    scale = (if quick then 0.05 else 0.1);
    dnc_factor = 20;
    jobs;
  }

let print_experiments ~jobs ~quick =
  let cfg = bench_cfg ~jobs ~quick in
  let entries = ref [] in
  let timed name ~contexts ~scale f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let wall = Unix.gettimeofday () -. t0 in
    entries :=
      { e_name = name; e_contexts = contexts; e_scale = scale; e_wall_s = wall }
      :: !entries;
    r
  in
  let timed_cfg name c f =
    timed name ~contexts:c.Analysis.Experiments.n_contexts
      ~scale:c.Analysis.Experiments.scale (fun () -> f c)
  in
  Format.fprintf ppf
    "=== GPRS paper evaluation (bench scale: %d contexts, scale %.2f) ===@.@."
    cfg.Analysis.Experiments.n_contexts cfg.Analysis.Experiments.scale;
  Analysis.Report.render_table ppf ~title:"Table 1 — Related work (qualitative)"
    ~header:
      [ "Proposal"; "Recovery"; "Design"; "Chkpt."; "Rec."; "Scalable"; "Det."; "Det. cost" ]
    (Analysis.Experiments.table1 ());
  Format.fprintf ppf "@.";
  Analysis.Report.render_table ppf
    ~title:"Table 2 — Programs and their relative characteristics"
    ~header:[ "Program"; "Comp."; "Sync."; "Crit."; "Exec(s)"; "Sub-size"; "#Subs" ]
    (timed_cfg "table2" cfg Analysis.Experiments.table2);
  Format.fprintf ppf "@.";
  Analysis.Report.render_figure ppf (timed_cfg "fig8a" cfg Analysis.Experiments.fig8a);
  Format.fprintf ppf "@.";
  Analysis.Report.render_figure ppf (timed_cfg "fig8b" cfg Analysis.Experiments.fig8b);
  Format.fprintf ppf "@.";
  Analysis.Report.render_figure ppf (timed_cfg "fig9" cfg Analysis.Experiments.fig9);
  Format.fprintf ppf "@.";
  Analysis.Report.render_figure ppf (timed_cfg "fig10" cfg Analysis.Experiments.fig10);
  Format.fprintf ppf "@.";
  let fig11_cfg =
    { cfg with Analysis.Experiments.scale = (if quick then 0.04 else 0.08) }
  in
  let fig11_contexts = if quick then [ 1; 4 ] else [ 1; 4; 8 ] in
  Analysis.Experiments.render_fig11 ppf
    (timed_cfg "fig11" fig11_cfg
       (Analysis.Experiments.fig11 ~contexts:fig11_contexts));
  Format.fprintf ppf "@.";
  List.rev !entries

(* ------------------------------------------------------------------ *)
(* Allocation profile: Gc words per experiment run                     *)
(* ------------------------------------------------------------------ *)

(* Gc counters are per-domain, so these are dedicated single runs in the
   main domain — independent of the [-j] experiment pool. One warm-up run
   first: lazy program/table initialization would otherwise be charged to
   the first measurement. The simulator is deterministic, so minor_words
   is too (promoted_words can wobble a little with minor-heap phase). *)
let alloc_profile ~quick =
  let cfg = bench_cfg ~jobs:1 ~quick in
  let contexts = cfg.Analysis.Experiments.n_contexts in
  let scale = cfg.Analysis.Experiments.scale in
  let entries = ref [] in
  let measure name ~scale f =
    ignore (f ());
    let s0 = Gc.quick_stat () in
    ignore (f ());
    let s1 = Gc.quick_stat () in
    entries :=
      {
        a_name = name;
        a_contexts = contexts;
        a_scale = scale;
        a_minor_words = s1.Gc.minor_words -. s0.Gc.minor_words;
        a_promoted_words = s1.Gc.promoted_words -. s0.Gc.promoted_words;
      }
      :: !entries
  in
  let c = { cfg with Analysis.Experiments.scale } in
  let fig11_scale = if quick then 0.04 else 0.08 in
  let c11 = { cfg with Analysis.Experiments.scale = fig11_scale } in
  measure "alloc:fig8a:gprs(wordcount)" ~scale (fun () ->
      Analysis.Experiments.run_gprs c (Workloads.Suite.find "wordcount")
        ~grain:Workloads.Workload.Default);
  measure "alloc:fig8b:gprs(canneal,fine)" ~scale (fun () ->
      Analysis.Experiments.run_gprs c (Workloads.Suite.find "canneal")
        ~grain:Workloads.Workload.Fine);
  measure "alloc:fig11:gprs(pbzip2,faults)" ~scale:fig11_scale (fun () ->
      Analysis.Experiments.run_gprs ~rate:60.0 c11 (Workloads.Suite.find "pbzip2")
        ~grain:Workloads.Workload.Default);
  measure "alloc:cpr(re,faults)" ~scale (fun () ->
      Analysis.Experiments.run_cpr ~rate:40.0 c (Workloads.Suite.find "re")
        ~grain:Workloads.Workload.Default);
  measure "alloc:pthreads(wordcount)" ~scale (fun () ->
      Analysis.Experiments.run_pthreads c (Workloads.Suite.find "wordcount")
        ~grain:Workloads.Workload.Default);
  let entries = List.rev !entries in
  Format.fprintf ppf "=== Allocation per run (main domain, Gc words) ===@.";
  List.iter
    (fun a ->
      Format.fprintf ppf "%-36s %14.0f minor  %12.0f promoted@." a.a_name
        a.a_minor_words a.a_promoted_words)
    entries;
  Format.fprintf ppf "@.";
  entries

(* ------------------------------------------------------------------ *)
(* Cold-recovery profile: crashsweep legs, host seconds per recovery   *)
(* ------------------------------------------------------------------ *)

(* The crashsweep's per-leg report already aggregates what we want to
   track over time: mean/max host wall-clock per cold recovery, redo-scan
   length, and redone-vs-squashed counts. Quick and full runs use
   different scales, so the comparator never conflates them; the full
   run samples its larger log to bound wall time. A failing leg aborts
   the bench — recording timings for a broken recovery would poison the
   baseline. *)
let recovery_profile ~quick =
  let contexts = 4 in
  let entries = ref [] in
  let leg name ~scale ?sample () =
    let spec = Workloads.Suite.find name in
    let program =
      spec.Workloads.Workload.build ~n_contexts:contexts
        ~grain:Workloads.Workload.Default ~scale
    in
    let cfg =
      {
        Gprs.Engine.default_config with
        n_contexts = contexts;
        seed = 3;
        ordering = Gprs.Order.Balance_aware;
      }
    in
    let r =
      Recovery.sweep_gprs ?sample ~sample_seed:3 ~leg:name ~cfg
        ~digest:spec.Workloads.Workload.digest program
    in
    if not (Recovery.leg_ok r) then
      failwith (Format.asprintf "recovery leg failed: %a" Recovery.pp_report r);
    entries :=
      {
        r_leg = name;
        r_contexts = contexts;
        r_scale = scale;
        r_points = r.Recovery.points_run;
        r_mean_recovery_s = r.Recovery.mean_recovery_s;
        r_max_recovery_s = r.Recovery.max_recovery_s;
        r_replayed_lsns = r.Recovery.replayed_lsns;
        r_redone_ops = r.Recovery.redone_ops;
        r_squashed_subs = r.Recovery.squashed_subs;
      }
      :: !entries
  in
  if quick then begin
    leg "histogram" ~scale:0.05 ();
    leg "pbzip2" ~scale:0.02 ()
  end
  else begin
    leg "histogram" ~scale:0.1 ();
    leg "pbzip2" ~scale:0.05 ~sample:60 ()
  end;
  let entries = List.rev !entries in
  Format.fprintf ppf
    "=== Cold recovery per crash point (exhaustive/sampled sweep) ===@.";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "%-12s %4d pts  mean %8.1f us  max %8.1f us  %6d replayed  %4d \
         redone  %5d squashed@."
        r.r_leg r.r_points
        (1e6 *. r.r_mean_recovery_s)
        (1e6 *. r.r_max_recovery_s)
        r.r_replayed_lsns r.r_redone_ops r.r_squashed_subs)
    entries;
  Format.fprintf ppf "@.";
  entries

(* ------------------------------------------------------------------ *)
(* Static-analysis profile: full lint + race pass per workload         *)
(* ------------------------------------------------------------------ *)

(* The race pass dual-probes every Work body inside the abstract
   interpreter's sandbox, so its cost scales with probe fuel burned, not
   program text; this keeps the lockset analysis cheap enough to stay a
   pre-run default. One warm-up pass (lazy workload tables), then the
   median of three timed passes — host wall-clock is the thing being
   gated, and a median shrugs off one scheduler hiccup. *)
(* ------------------------------------------------------------------ *)
(* Intra-run parallelism: fig11 under the window scheduler             *)
(* ------------------------------------------------------------------ *)

(* fig11 wall-clock with the experiment pool held at one domain, so the
   only variable between legs is Exec.Par's intra-run window scheduler
   (-j 1 = sequential dispatch, -j N = speculative windows on N-1 worker
   domains). The simulated series is bit-identical across legs — the
   determinism contract — so the legs time the same work. Speedup is
   hardware-dependent: worker domains need real cores to win, and on a
   single-core host the stop-the-world GC handshake makes -j N a little
   slower than -j 1; the committed counters record how much of the run
   the windows carried either way. *)
let par_profile ~quick ~jobs =
  let parn = if jobs > 1 then jobs else 4 in
  let scale = if quick then 0.04 else 0.08 in
  let cfg = { (bench_cfg ~jobs:1 ~quick) with Analysis.Experiments.scale } in
  let with_par_jobs j f =
    let saved = Exec.Par.jobs () in
    Exec.Par.set_jobs j;
    Fun.protect ~finally:(fun () -> Exec.Par.set_jobs saved) f
  in
  let entries =
    List.map
      (fun c ->
        let leg j =
          with_par_jobs j (fun () ->
              let t0 = Unix.gettimeofday () in
              ignore (Analysis.Experiments.fig11 ~contexts:[ c ] cfg);
              (Unix.gettimeofday () -. t0) *. 1000.0)
        in
        let w1 = leg 1 in
        let wn = leg parn in
        (* Window outcomes from one representative faulty fig11 point;
           profiling-gated so the timed legs above stay stats-identical. *)
        let windows, committed, squashed, fallback =
          Vm.Block.set_profiling true;
          Fun.protect ~finally:(fun () -> Vm.Block.set_profiling false)
          @@ fun () ->
          with_par_jobs parn @@ fun () ->
          let r =
            Analysis.Experiments.run_gprs ~rate:60.0
              { cfg with Analysis.Experiments.n_contexts = c }
              (Workloads.Suite.find "pbzip2")
              ~grain:Workloads.Workload.Default
          in
          let assoc = Sim.Stats.to_assoc r.Exec.State.run_stats in
          let g k = try List.assoc k assoc with Not_found -> 0.0 in
          ( g "par.windows",
            g "par.committed",
            g "par.squashed",
            g "par.fallback" )
        in
        {
          pr_contexts = c;
          pr_scale = scale;
          pr_jobs = parn;
          pr_wall_j1_ms = w1;
          pr_wall_jn_ms = wn;
          pr_windows = windows;
          pr_committed = committed;
          pr_squashed = squashed;
          pr_fallback = fallback;
        })
      [ 4; 8 ]
  in
  (* Idle worker domains would tax every later single-domain row with
     stop-the-world handshakes; tear the pool down before them. *)
  Exec.Par.quiesce ();
  Format.fprintf ppf
    "=== Intra-run parallelism (fig11/pbzip2, -j 1 vs -j %d) ===@." parn;
  List.iter
    (fun e ->
      Format.fprintf ppf
        "fig11 ctx=%d: %7.1f ms (-j 1)  %7.1f ms (-j %d)  speedup %.2fx           windows %.0f committed %.0f squashed %.0f fallback %.0f@."
        e.pr_contexts e.pr_wall_j1_ms e.pr_wall_jn_ms e.pr_jobs
        (if e.pr_wall_jn_ms > 0.0 then e.pr_wall_j1_ms /. e.pr_wall_jn_ms
         else 0.0)
        e.pr_windows e.pr_committed e.pr_squashed e.pr_fallback)
    entries;
  Format.fprintf ppf "@.";
  entries

let lint_profile ~quick =
  let contexts = 8 in
  let scale = if quick then 0.05 else 0.1 in
  let entries =
    List.map
      (fun spec ->
        let program =
          spec.Workloads.Workload.build ~n_contexts:contexts
            ~grain:Workloads.Workload.Default ~scale
        in
        ignore (Lint.Race.program program);
        let sample () =
          let t0 = Unix.gettimeofday () in
          ignore (Lint.Race.program program);
          1000.0 *. (Unix.gettimeofday () -. t0)
        in
        let ms =
          match List.sort compare [ sample (); sample (); sample () ] with
          | [ _; med; _ ] -> med
          | _ -> assert false
        in
        {
          l_name = "lint:" ^ spec.Workloads.Workload.name;
          l_contexts = contexts;
          l_scale = scale;
          l_wall_ms = ms;
        })
      Workloads.Suite.all
  in
  Format.fprintf ppf "=== Static race/lint pass per workload (wall ms) ===@.";
  List.iter
    (fun l -> Format.fprintf ppf "%-36s %10.2f ms@." l.l_name l.l_wall_ms)
    entries;
  Format.fprintf ppf "@.";
  entries

(* ------------------------------------------------------------------ *)
(* Service mode: daemon round-trips, warm vs cold cache, open loop     *)
(* ------------------------------------------------------------------ *)

(* An in-process daemon on a temp Unix socket, driven through the same
   Server.Client module as `gprs_run client`, at the fig11 micro point
   (pbzip2, 4 contexts, scale 0.03, 60 faults/s). Three measurements:

   - cold: cache_clear before every request, so each pays decode +
     superblock compilation + lint admission (median of N round-trips);
   - warm: cache primed, so dispatch goes straight to execution — the
     leg runs with Vm.Block's process-wide analysis counter watched,
     and any recompile, or a warm median worse than half the cold one,
     aborts the bench (recording a broken cache would poison the
     baseline);
   - open-loop arrivals at a fixed rate against the warm cache, each
     with a distinct seed (distinct work units — coalescing cannot
     shortcut the measurement): sustained req/s and p50/p99 latency
     against scheduled arrival times.

   The daemon runs one pool job and no idle quiescing: latencies on the
   single shared worker are what a saturated single-core service shows,
   and a mid-leg teardown would charge respawn cost to one unlucky
   request. *)
let service_profile ~quick =
  let contexts = 4 and scale = 0.03 and rate = 60.0 in
  let n_cold = if quick then 5 else 10 in
  let n_warm = if quick then 20 else 50 in
  let n_open = if quick then 30 else 100 in
  let open_rps = 100.0 in
  let sock = Filename.temp_file "gprs-bench-" ".sock" in
  Sys.remove sock;
  let d =
    Server.Daemon.start
      {
        Server.Daemon.default_config with
        addr = Server.Daemon.Unix_sock sock;
        jobs = 1;
        idle_quiesce_ms = 0;
      }
  in
  Fun.protect ~finally:(fun () -> Server.Daemon.stop d) @@ fun () ->
  let c = Server.Client.connect (Server.Daemon.Unix_sock sock) in
  Fun.protect ~finally:(fun () -> Server.Client.close c) @@ fun () ->
  let base =
    {
      Server.Scenario.id = "bench";
      workload = "pbzip2";
      engine = "gprs";
      ordering = "balance-aware";
      contexts;
      scale;
      grain = "default";
      seed = 1;
      rate;
      interval = 0.05;
      want_stats = false;
    }
  in
  let request tag i =
    let scn =
      {
        base with
        Server.Scenario.id = Printf.sprintf "%s%d" tag i;
        seed = 1 + i;
      }
    in
    let j, ms = Server.Client.timed_run c scn in
    (match Server.Json.str ~default:"" "event" j with
    | Ok "done" -> ()
    | _ ->
      failwith
        (Printf.sprintf "service bench: %s request failed: %s" tag
           (Server.Json.to_string j)));
    ms
  in
  let median a =
    let a = Array.copy a in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let cold =
    Array.init n_cold (fun i ->
        Server.Client.cache_clear c;
        request "cold" i)
  in
  ignore (request "prime" 0);
  let analyses0 = Vm.Block.analyses () in
  let warm = Array.init n_warm (fun i -> request "warm" i) in
  let recompiles = Vm.Block.analyses () - analyses0 in
  let cold_ms = median cold and warm_ms = median warm in
  let speedup = if warm_ms > 0.0 then cold_ms /. warm_ms else 0.0 in
  if recompiles <> 0 then
    failwith
      (Printf.sprintf
         "service bench: %d superblock recompiles on the warm path \
          (cache must make dispatch skip decode+compile)"
         recompiles);
  if speedup < 2.0 then
    failwith
      (Printf.sprintf
         "service bench: warm/cold speedup %.2fx < 2x (warm %.2f ms, \
          cold %.2f ms)"
         speedup warm_ms cold_ms);
  let load =
    Server.Client.open_loop c
      ~base:{ base with Server.Scenario.seed = 10_000 }
      ~n:n_open ~rps:open_rps
  in
  if load.Server.Client.failed > 0 then
    failwith
      (Printf.sprintf "service bench: %d open-loop request(s) failed"
         load.Server.Client.failed);
  Format.fprintf ppf
    "=== Service mode (daemon, pbzip2 fig11 micro: %d contexts, scale %.2f) ===@."
    contexts scale;
  Format.fprintf ppf
    "cold %8.2f ms/req (cache cleared)   warm %8.2f ms/req   speedup \
     %.2fx   recompiles %d@."
    cold_ms warm_ms speedup recompiles;
  Format.fprintf ppf
    "open-loop %4.0f rps offered: %7.1f rps served  p50 %7.2f ms  p99 \
     %7.2f ms  (%d sent, %d failed)@.@."
    open_rps load.Server.Client.rps load.Server.Client.p50_ms
    load.Server.Client.p99_ms load.Server.Client.sent
    load.Server.Client.failed;
  [
    {
      s_name = "service:fig11-micro(pbzip2)";
      s_contexts = contexts;
      s_scale = scale;
      s_cold_ms = cold_ms;
      s_warm_ms = warm_ms;
      s_warm_speedup = speedup;
      s_warm_recompiles = recompiles;
      s_rps = load.Server.Client.rps;
      s_p50_ms = load.Server.Client.p50_ms;
      s_p99_ms = load.Server.Client.p99_ms;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Dispatch-mix profile (--profile)                                    *)
(* ------------------------------------------------------------------ *)

let prefixed ~prefix k =
  String.length k >= String.length prefix
  && String.sub k 0 (String.length prefix) = prefix

(* One representative workload per engine with {!Vm.Block} profiling on:
   per-instruction-kind dispatch counts plus the fused-hop-length
   histogram. Not timed — profiling counters perturb the dispatch loop. *)
let profile_mix ~quick =
  let n_contexts = 8 in
  let scale = if quick then 0.05 else 0.1 in
  let spec = Workloads.Suite.find "wordcount" in
  let build () =
    spec.Workloads.Workload.build ~n_contexts
      ~grain:Workloads.Workload.Default ~scale
  in
  Vm.Block.set_profiling true;
  let runs =
    [
      ( "pthreads",
        Exec.Baseline.run
          { Exec.Baseline.default_config with n_contexts }
          (build ()) );
      ( "cpr",
        Cpr.run
          { Cpr.default_config with n_contexts; checkpoint_interval = 0.005 }
          (build ()) );
      ("gprs", Gprs.Engine.run { Gprs.Engine.default_config with n_contexts } (build ()));
    ]
  in
  Vm.Block.set_profiling false;
  Format.fprintf ppf
    "=== Dispatch mix (wordcount, %d contexts, scale %.2f) ===@.@." n_contexts
    scale;
  List.concat_map
    (fun (engine, (r : Exec.State.run_result)) ->
      let assoc = Sim.Stats.to_assoc r.Exec.State.run_stats in
      let entries =
        List.filter
          (fun (k, _) ->
            prefixed ~prefix:"dispatch." k
            || prefixed ~prefix:"fuse." k
            || prefixed ~prefix:"pool." k
            || prefixed ~prefix:"compile." k
            || prefixed ~prefix:"par." k)
          assoc
      in
      let dispatch = List.filter (fun (k, _) -> prefixed ~prefix:"dispatch." k) entries in
      let total = List.fold_left (fun a (_, v) -> a +. v) 0.0 dispatch in
      let hops = try List.assoc "fuse.hops" entries with Not_found -> 0.0 in
      let instrs = float_of_int (Sim.Stats.get r.Exec.State.run_stats "instrs") in
      Format.fprintf ppf "%s (%.0f dispatches, %.0f hops, %.2f instrs/hop):@."
        engine total hops
        (if hops > 0.0 then instrs /. hops else 0.0);
      List.iter
        (fun (k, v) ->
          Format.fprintf ppf "  %-24s %12.0f  %5.1f%%@." k v
            (if total > 0.0 then 100.0 *. v /. total else 0.0))
        (List.sort (fun (_, a) (_, b) -> compare b a) dispatch);
      List.iter
        (fun (k, v) ->
          if
            prefixed ~prefix:"fuse.len." k
            || prefixed ~prefix:"pool." k
            || prefixed ~prefix:"compile." k
          then Format.fprintf ppf "  %-24s %12.0f@." k v)
        entries;
      Format.fprintf ppf "@.";
      List.map (fun (k, v) -> { p_engine = engine; p_key = k; p_value = v }) entries)
    runs

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks, one per table/figure             *)
(* ------------------------------------------------------------------ *)

let micro_cfg =
  {
    Analysis.Experiments.default_cfg with
    Analysis.Experiments.n_contexts = 4;
    scale = 0.03;
    dnc_factor = 25;
  }

let spec name = Workloads.Suite.find name

let t_table1 =
  Test.make ~name:"table1:analytic-model"
    (Staged.stage (fun () ->
         ignore (Analysis.Model.gprs_max_rate ~n:24 ~tr:0.5);
         ignore
           (Analysis.Model.cpr_checkpoint_penalty ~t:1.0 ~n:24 ~tc:0.001 ~ts:0.002)))

let t_table2 =
  Test.make ~name:"table2:gprs-run(re)"
    (Staged.stage (fun () ->
         ignore
           (Analysis.Experiments.run_gprs micro_cfg (spec "re")
              ~grain:Workloads.Workload.Default)))

let t_fig8a =
  Test.make ~name:"fig8a:overheads(wordcount)"
    (Staged.stage (fun () ->
         ignore
           (Analysis.Experiments.run_gprs micro_cfg (spec "wordcount")
              ~grain:Workloads.Workload.Default);
         ignore
           (Analysis.Experiments.run_cpr micro_cfg (spec "wordcount")
              ~grain:Workloads.Workload.Default)))

let t_fig8b =
  Test.make ~name:"fig8b:fine-grain(canneal)"
    (Staged.stage (fun () ->
         ignore
           (Analysis.Experiments.run_gprs micro_cfg (spec "canneal")
              ~grain:Workloads.Workload.Fine)))

let t_fig9 =
  Test.make ~name:"fig9:oversubscription(swaptions)"
    (Staged.stage (fun () ->
         ignore
           (Analysis.Experiments.run_pthreads micro_cfg (spec "swaptions")
              ~grain:Workloads.Workload.Fine);
         ignore
           (Analysis.Experiments.run_gprs micro_cfg (spec "swaptions")
              ~grain:Workloads.Workload.Fine)))

let t_fig10 =
  Test.make ~name:"fig10:recovery(histogram,faults)"
    (Staged.stage (fun () ->
         ignore
           (Analysis.Experiments.run_gprs ~rate:100.0 micro_cfg (spec "histogram")
              ~grain:Workloads.Workload.Default)))

let t_fig11 =
  Test.make ~name:"fig11:tipping(pbzip2,faults)"
    (Staged.stage (fun () ->
         ignore
           (Analysis.Experiments.run_gprs ~rate:60.0 micro_cfg (spec "pbzip2")
              ~grain:Workloads.Workload.Default)))

let t_cpr_snapshot =
  Test.make ~name:"cpr:dirty-page-ckpt(re,faults)"
    (Staged.stage (fun () ->
         ignore
           (Analysis.Experiments.run_cpr ~rate:40.0 micro_cfg (spec "re")
              ~grain:Workloads.Workload.Default)))

let tests =
  [
    t_table1; t_table2; t_fig8a; t_fig8b; t_fig9; t_fig10; t_fig11;
    t_cpr_snapshot;
  ]

let run_micro ~quick =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    if quick then Benchmark.cfg ~limit:20 ~quota:(Time.second 0.5) ~stabilize:true ()
    else Benchmark.cfg ~limit:50 ~quota:(Time.second 2.0) ~stabilize:true ()
  in
  Format.fprintf ppf "=== Bechamel micro-benchmarks (one per table/figure) ===@.";
  let entries = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols (List.hd instances) results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
            Format.fprintf ppf "%-36s %12.0f ns/run@." name est;
            entries := { m_name = name; m_ns_per_run = est } :: !entries
          | Some _ | None -> Format.fprintf ppf "%-36s (no estimate)@." name)
        analyzed)
    tests;
  Format.fprintf ppf "@.";
  List.rev !entries

(* ------------------------------------------------------------------ *)
(* JSON output                                                         *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path ~quick ~jobs ~experiments ~alloc ~recovery ~lints ~micro
    ~par ~service ~profile =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": 1,\n";
  p "  \"quick\": %b,\n" quick;
  p "  \"jobs\": %d,\n" jobs;
  p "  \"fault_points_armed\": %d,\n" (Faults.Points.armed_count ());
  p "  \"experiments\": [\n";
  List.iteri
    (fun i e ->
      p "    {\"name\": \"%s\", \"contexts\": %d, \"scale\": %.4f, \"wall_s\": %.6f}%s\n"
        (json_escape e.e_name) e.e_contexts e.e_scale e.e_wall_s
        (if i = List.length experiments - 1 then "" else ","))
    experiments;
  p "  ],\n";
  p "  \"alloc\": [\n";
  List.iteri
    (fun i a ->
      p
        "    {\"name\": \"%s\", \"contexts\": %d, \"scale\": %.4f, \
         \"minor_words\": %.0f, \"promoted_words\": %.0f}%s\n"
        (json_escape a.a_name) a.a_contexts a.a_scale a.a_minor_words
        a.a_promoted_words
        (if i = List.length alloc - 1 then "" else ","))
    alloc;
  p "  ],\n";
  p "  \"recovery\": [\n";
  List.iteri
    (fun i r ->
      p
        "    {\"leg\": \"%s\", \"contexts\": %d, \"scale\": %.4f, \
         \"points\": %d, \"mean_recovery_s\": %.9f, \"max_recovery_s\": \
         %.9f, \"replayed_lsns\": %d, \"redone_ops\": %d, \
         \"squashed_subs\": %d}%s\n"
        (json_escape r.r_leg) r.r_contexts r.r_scale r.r_points
        r.r_mean_recovery_s r.r_max_recovery_s r.r_replayed_lsns
        r.r_redone_ops r.r_squashed_subs
        (if i = List.length recovery - 1 then "" else ","))
    recovery;
  p "  ],\n";
  p "  \"lint\": [\n";
  List.iteri
    (fun i l ->
      p "    {\"name\": \"%s\", \"contexts\": %d, \"scale\": %.4f, \"wall_ms\": %.3f}%s\n"
        (json_escape l.l_name) l.l_contexts l.l_scale l.l_wall_ms
        (if i = List.length lints - 1 then "" else ","))
    lints;
  p "  ],\n";
  p "  \"par\": [\n";
  List.iteri
    (fun i (e : par_entry) ->
      p
        "    {\"name\": \"fig11\", \"contexts\": %d, \"scale\": %.4f,          \"jobs\": %d, \"wall_j1_ms\": %.3f, \"wall_jn_ms\": %.3f,          \"speedup\": %.3f, \"windows\": %.0f, \"committed\": %.0f,          \"squashed\": %.0f, \"fallback\": %.0f}%s\n"
        e.pr_contexts e.pr_scale e.pr_jobs e.pr_wall_j1_ms e.pr_wall_jn_ms
        (if e.pr_wall_jn_ms > 0.0 then e.pr_wall_j1_ms /. e.pr_wall_jn_ms
         else 0.0)
        e.pr_windows e.pr_committed e.pr_squashed e.pr_fallback
        (if i = List.length par - 1 then "" else ","))
    par;
  p "  ],\n";
  p "  \"service\": [\n";
  List.iteri
    (fun i (s : service_entry) ->
      p
        "    {\"name\": \"%s\", \"contexts\": %d, \"scale\": %.4f, \
         \"cold_ms\": %.3f, \"warm_ms\": %.3f, \"warm_speedup\": %.3f, \
         \"warm_recompiles\": %d, \"rps\": %.2f, \"p50_ms\": %.3f, \
         \"p99_ms\": %.3f}%s\n"
        (json_escape s.s_name) s.s_contexts s.s_scale s.s_cold_ms s.s_warm_ms
        s.s_warm_speedup s.s_warm_recompiles s.s_rps s.s_p50_ms s.s_p99_ms
        (if i = List.length service - 1 then "" else ","))
    service;
  p "  ],\n";
  p "  \"micro\": [\n";
  List.iteri
    (fun i m ->
      p "    {\"name\": \"%s\", \"ns_per_run\": %.1f}%s\n" (json_escape m.m_name)
        m.m_ns_per_run
        (if i = List.length micro - 1 then "" else ","))
    micro;
  p "  ],\n";
  p "  \"profile\": [\n";
  List.iteri
    (fun i e ->
      p "    {\"engine\": \"%s\", \"key\": \"%s\", \"value\": %.1f}%s\n"
        (json_escape e.p_engine) (json_escape e.p_key) e.p_value
        (if i = List.length profile - 1 then "" else ","))
    profile;
  p "  ]\n";
  p "}\n";
  close_out oc;
  Format.fprintf ppf "wrote %s@." path

(* ------------------------------------------------------------------ *)
(* CLI                                                                 *)
(* ------------------------------------------------------------------ *)

let main json jobs quick profile par_j service_only =
  (* Benchmarks gate regressions; an armed fault point (GPRS_FAULT_POINTS
     leaks here too) perturbs every number, so refuse to measure rather
     than commit a poisoned baseline. The armed count is also written to
     the JSON for compare.py to re-assert. *)
  if Faults.Points.armed_count () > 0 then begin
    Format.eprintf
      "bench: %d fault point(s) armed (GPRS_FAULT_POINTS?); refusing to \
       measure a perturbed run@."
      (Faults.Points.armed_count ());
    Stdlib.exit 2
  end;
  let jobs =
    if jobs = 0 then Analysis.Pool.available_jobs () else Stdlib.max 1 jobs
  in
  (match par_j with Some j -> Exec.Par.set_jobs j | None -> ());
  if service_only then begin
    let service = service_profile ~quick in
    match json with
    | Some path ->
      write_json path ~quick ~jobs ~experiments:[] ~alloc:[] ~recovery:[]
        ~lints:[] ~micro:[] ~par:[] ~service ~profile:[]
    | None -> ()
  end
  else begin
    let experiments = print_experiments ~jobs ~quick in
    let alloc = alloc_profile ~quick in
    let recovery = recovery_profile ~quick in
    let par = par_profile ~quick ~jobs in
    let lints = lint_profile ~quick in
    let service = service_profile ~quick in
    let prof = if profile then profile_mix ~quick else [] in
    let micro = run_micro ~quick in
    match json with
    | Some path ->
      write_json path ~quick ~jobs ~experiments ~alloc ~recovery ~lints ~micro
        ~par ~service ~profile:prof
    | None -> ()
  end

open Cmdliner

let json =
  let doc = "Write per-experiment wall-clock and micro ns/run numbers to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let jobs =
  let doc =
    "Worker domains for the part-1 experiment drivers; 0 means one per \
     recommended core. Experiment rows are bit-identical for any value."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~doc)

let quick =
  let doc =
    "Micro-scale smoke run: smaller part-1 inputs, shorter part-2 quota. \
     Used by the CI bench job."
  in
  Arg.(value & flag & info [ "quick" ] ~doc)

let profile =
  let doc =
    "Also run the dispatch-mix profiler: per-instruction-kind dispatch \
     counts and the fused-hop-length histogram, per engine (included in \
     the $(b,--json) output's \"profile\" section)."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let par_j =
  let doc =
    "Worker domains for intra-run parallelism during the part-1      experiment runs (overrides $(b,GPRS_PAR_J)); the dedicated \"par\"      section always times both -j 1 and -j N legs regardless."
  in
  Arg.(value & opt (some int) None & info [ "par-j" ] ~doc)

let service_only =
  let doc =
    "Run only the service-mode section (daemon warm/cold round-trips and \
     open-loop load); the CI service-smoke job's fast gate."
  in
  Arg.(value & flag & info [ "service-only" ] ~doc)

let cmd =
  let doc = "GPRS benchmark harness (paper evaluation + micro-benchmarks)" in
  Cmd.v (Cmd.info "bench" ~doc)
    Term.(const main $ json $ jobs $ quick $ profile $ par_j $ service_only)

let () = Stdlib.exit (Cmd.eval cmd)
