(* GPRS-lint tests: one deliberately-defective builder fixture per
   diagnostic kind, asserting the exact [Diagnostic.kind] fires; clean
   programs (including every shipped workload) must produce no
   error-severity findings; strict mode must refuse unsound programs. *)

open Vm.Builder

let checkb = Alcotest.(check bool)

let lint p = Lint.Check.program p
let has kind p = Lint.Check.has_kind kind (lint p)

let kinds_str p =
  lint p
  |> List.map (fun d -> Lint.Diagnostic.kind_label d.Lint.Diagnostic.kind)
  |> String.concat ", "

let expect kind name p =
  checkb
    (Printf.sprintf "%s reports %s (got: %s)" name
       (Lint.Diagnostic.kind_label kind)
       (kinds_str p))
    true (has kind p)

let expect_clean name p =
  let errs = Lint.Check.errors (lint p) in
  checkb
    (Printf.sprintf "%s lints clean (got: %s)" name
       (String.concat ", "
          (List.map
             (fun d -> Lint.Diagnostic.kind_label d.Lint.Diagnostic.kind)
             errs)))
    true (errs = [])

(* --- lock discipline -------------------------------------------------- *)

let double_lock () =
  let m = proc "main" in
  lock_const m 0;
  lock_const m 0;
  unlock_const m 0;
  unlock_const m 0;
  exit_ m;
  expect Lint.Diagnostic.Double_lock "double lock"
    (program ~n_mutexes:1 ~entry:"main" [ finish m ])

let unlock_without_lock () =
  let m = proc "main" in
  unlock_const m 0;
  exit_ m;
  expect Lint.Diagnostic.Unlock_without_lock "bare unlock"
    (program ~n_mutexes:1 ~entry:"main" [ finish m ])

let barrier_under_lock () =
  let m = proc "main" in
  lock_const m 0;
  barrier m 0;
  unlock_const m 0;
  exit_ m;
  expect Lint.Diagnostic.Lock_at_blocking "barrier under lock"
    (program ~n_mutexes:1 ~barrier_parties:[| 1 |] ~entry:"main" [ finish m ])

let exit_under_lock () =
  let m = proc "main" in
  lock_const m 0;
  exit_ m;
  expect Lint.Diagnostic.Lock_at_blocking "exit under lock"
    (program ~n_mutexes:1 ~entry:"main" [ finish m ])

let join_under_lock () =
  let w = proc "worker" in
  exit_ w;
  let m = proc "main" in
  fork m ~group:0 ~proc:"worker" ~dst:1 (fun _ -> [||]);
  lock_const m 0;
  join_reg m 1;
  unlock_const m 0;
  exit_ m;
  expect Lint.Diagnostic.Lock_at_blocking "join under lock"
    (program ~n_mutexes:1 ~entry:"main" [ finish m; finish w ])

let wait_without_mutex () =
  let m = proc "main" in
  cond_wait m ~c:0 ~m:0;
  exit_ m;
  expect Lint.Diagnostic.Wait_without_mutex "wait without mutex"
    (program ~n_mutexes:1 ~n_condvars:1 ~entry:"main" [ finish m ])

let inconsistent_locksets () =
  (* Register 0 is loaded from memory (statically unknown), so the branch
     cannot be folded: one path locks, the other does not, and the paths
     merge with different locksets. *)
  let m = proc "main" in
  work_const m 1 (fun env -> Vm.Env.set env 0 (env.Vm.Env.read 5));
  let merge = fresh_label m in
  if_to m (fun r -> r.(0) = 0) merge;
  lock_const m 0;
  bind m merge;
  unlock_const m 0;
  exit_ m;
  expect Lint.Diagnostic.Inconsistent_locksets "lock on one branch only"
    (program ~n_mutexes:1 ~entry:"main" [ finish m ])

let lock_order_cycle () =
  (* Classic ABBA: one worker takes 0 then 1, the other 1 then 0. *)
  let a = proc "a" in
  lock_const a 0;
  lock_const a 1;
  unlock_const a 1;
  unlock_const a 0;
  exit_ a;
  let b = proc "b" in
  lock_const b 1;
  lock_const b 0;
  unlock_const b 0;
  unlock_const b 1;
  exit_ b;
  let m = proc "main" in
  fork m ~group:0 ~proc:"a" ~dst:1 (fun _ -> [||]);
  fork m ~group:0 ~proc:"b" ~dst:2 (fun _ -> [||]);
  join_reg m 1;
  join_reg m 2;
  exit_ m;
  expect Lint.Diagnostic.Lock_order_cycle "ABBA lock order"
    (program ~n_mutexes:2 ~entry:"main" [ finish m; finish a; finish b ])

(* --- CPR / hybrid-recovery regions ------------------------------------ *)

let unmatched_cpr_begin () =
  let m = proc "main" in
  cpr_begin m;
  compute m 10;
  exit_ m;
  expect Lint.Diagnostic.Cpr_open_at_exit "cpr_begin never closed"
    (program ~entry:"main" [ finish m ])

let unmatched_cpr_end () =
  let m = proc "main" in
  cpr_end m;
  exit_ m;
  expect Lint.Diagnostic.Unmatched_cpr_end "cpr_end without begin"
    (program ~entry:"main" [ finish m ])

let nested_cpr () =
  let m = proc "main" in
  cpr_begin m;
  cpr_begin m;
  cpr_end m;
  cpr_end m;
  exit_ m;
  expect Lint.Diagnostic.Nested_cpr "nested cpr regions"
    (program ~entry:"main" [ finish m ])

let unprotected_nonstd_prog () =
  let m = proc "main" in
  nonstd_atomic m ~var:(fun _ -> 0) ~dst:1 (fun ~old _ -> old + 1);
  exit_ m;
  program ~n_atomics:1 ~entry:"main" [ finish m ]

let unprotected_nonstd () =
  expect Lint.Diagnostic.Unprotected_nonstd "nonstd atomic outside region"
    (unprotected_nonstd_prog ())

let protected_nonstd_clean () =
  expect_clean "nonstd atomic inside region"
    (Tprog.nonstd_region ~workers:2 ~iters:3 ())

(* --- plumbing --------------------------------------------------------- *)

let bad_sync_id () =
  let m = proc "main" in
  lock_const m 3;
  unlock_const m 3;
  exit_ m;
  expect Lint.Diagnostic.Bad_sync_id "mutex id out of range"
    (program ~n_mutexes:1 ~entry:"main" [ finish m ])

let unknown_fork_target () =
  let m = proc "main" in
  fork m ~group:0 ~proc:"nonesuch" ~dst:1 (fun _ -> [||]);
  exit_ m;
  expect Lint.Diagnostic.Unknown_fork_target "fork of unknown proc"
    (program ~entry:"main" [ finish m ])

let implicit_exit () =
  let m = proc "main" in
  compute m 10;
  (* no exit_: control falls off the end of the code array *)
  expect Lint.Diagnostic.Implicit_exit "missing exit"
    (program ~entry:"main" [ finish m ])

let barrier_mismatch () =
  (* Two distinct procs reach barrier 0, but parties is declared as 1. *)
  let w = proc "worker" in
  barrier w 0;
  exit_ w;
  let m = proc "main" in
  fork m ~group:0 ~proc:"worker" ~dst:1 (fun _ -> [||]);
  barrier m 0;
  join_reg m 1;
  exit_ m;
  expect Lint.Diagnostic.Barrier_mismatch "parties below reaching procs"
    (program ~barrier_parties:[| 1 |] ~entry:"main" [ finish m; finish w ])

(* --- id resolution ---------------------------------------------------- *)

let resolved_register_lock () =
  (* The lock id flows through a register assignment; constant
     propagation must resolve it so the aliased double lock is caught. *)
  let m = proc "main" in
  set_reg m 2 (fun _ -> 0);
  lock m (fun r -> r.(2));
  lock_const m 0;
  unlock_const m 0;
  unlock m (fun r -> r.(2));
  exit_ m;
  expect Lint.Diagnostic.Double_lock "double lock through register alias"
    (program ~n_mutexes:1 ~entry:"main" [ finish m ])

let dynamic_lock_no_false_positive () =
  (* Per-bucket locks chosen from memory (reverse-index style): the id is
     statically unresolvable and must degrade gracefully, not error. *)
  let m = proc "main" in
  work_const m 1 (fun env -> Vm.Env.set env 2 (env.Vm.Env.read 7 mod 4));
  lock m (fun r -> r.(2));
  compute m 10;
  unlock m (fun r -> r.(2));
  exit_ m;
  expect_clean "dynamic per-bucket lock"
    (program ~n_mutexes:4 ~entry:"main" [ finish m ])

let fork_args_propagate () =
  (* The child locks mutex r.(0), passed as a fork argument; arg-vector
     propagation must resolve it and flag the out-of-range id. *)
  let w = proc "worker" in
  lock w (fun r -> r.(0));
  unlock w (fun r -> r.(0));
  exit_ w;
  let m = proc "main" in
  fork m ~group:0 ~proc:"worker" ~dst:1 (fun _ -> [| 9 |]);
  join_reg m 1;
  exit_ m;
  expect Lint.Diagnostic.Bad_sync_id "fork-arg lock id out of range"
    (program ~n_mutexes:1 ~entry:"main" [ finish m; finish w ])

(* --- clean programs and the shipped suite ----------------------------- *)

let clean_fixtures () =
  expect_clean "locked_counter" (Tprog.locked_counter ~workers:3 ~iters:4 ());
  expect_clean "pipeline" (Tprog.pipeline ~blocks:6 ~consumers:2 ());
  expect_clean "barrier_phases" (Tprog.barrier_phases ~n:4 ());
  expect_clean "fork_join_sum" (Tprog.fork_join_sum ~workers:3 ())

let workload_sweep () =
  List.iter
    (fun spec ->
      let p =
        spec.Workloads.Workload.build ~n_contexts:4
          ~grain:Workloads.Workload.Default ~scale:0.1
      in
      expect_clean spec.Workloads.Workload.name p)
    Workloads.Suite.all

(* --- engine hook ------------------------------------------------------ *)

let strict_refuses () =
  let p = unprotected_nonstd_prog () in
  let raised =
    try
      ignore (Gprs.Engine.run ~lint:`Strict Gprs.Engine.default_config p);
      false
    with Lint.Check.Rejected diags ->
      Lint.Check.has_kind Lint.Diagnostic.Unprotected_nonstd diags
  in
  checkb "strict mode rejects unprotected nonstd atomic" true raised

let off_runs_anyway () =
  let p = unprotected_nonstd_prog () in
  let r =
    Gprs.Engine.run ~lint:`Off
      { Gprs.Engine.default_config with n_contexts = 2 }
      p
  in
  checkb "lint off still executes" false r.Exec.State.dnc

let strict_accepts_clean () =
  let p = Tprog.locked_counter ~workers:2 ~iters:3 () in
  let r =
    Gprs.Engine.run ~lint:`Strict
      { Gprs.Engine.default_config with n_contexts = 2 }
      p
  in
  checkb "strict mode runs clean program" false r.Exec.State.dnc

(* --- renderer --------------------------------------------------------- *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let renderer_smoke () =
  let m = proc "main" in
  lock_const m 0;
  exit_ m;
  let diags = lint (program ~n_mutexes:1 ~entry:"main" [ finish m ]) in
  let s = Format.asprintf "%a" (Lint.Render.pp ~title:"t") diags in
  checkb "table mentions the kind" true (contains s "lock-at-blocking");
  checkb "summary counts errors" true
    (contains (Lint.Render.summary diags) "error");
  let clean = Format.asprintf "%a" (Lint.Render.pp ~title:"t") [] in
  checkb "empty findings render as clean" true (contains clean "clean")

let suite =
  [
    Alcotest.test_case "double lock" `Quick double_lock;
    Alcotest.test_case "unlock without lock" `Quick unlock_without_lock;
    Alcotest.test_case "barrier under lock" `Quick barrier_under_lock;
    Alcotest.test_case "exit under lock" `Quick exit_under_lock;
    Alcotest.test_case "join under lock" `Quick join_under_lock;
    Alcotest.test_case "wait without mutex" `Quick wait_without_mutex;
    Alcotest.test_case "inconsistent locksets" `Quick inconsistent_locksets;
    Alcotest.test_case "lock-order cycle" `Quick lock_order_cycle;
    Alcotest.test_case "unmatched cpr begin" `Quick unmatched_cpr_begin;
    Alcotest.test_case "unmatched cpr end" `Quick unmatched_cpr_end;
    Alcotest.test_case "nested cpr" `Quick nested_cpr;
    Alcotest.test_case "unprotected nonstd" `Quick unprotected_nonstd;
    Alcotest.test_case "protected nonstd is clean" `Quick protected_nonstd_clean;
    Alcotest.test_case "bad sync id" `Quick bad_sync_id;
    Alcotest.test_case "unknown fork target" `Quick unknown_fork_target;
    Alcotest.test_case "implicit exit" `Quick implicit_exit;
    Alcotest.test_case "barrier mismatch" `Quick barrier_mismatch;
    Alcotest.test_case "register-alias lock resolves" `Quick resolved_register_lock;
    Alcotest.test_case "dynamic lock: no false positive" `Quick
      dynamic_lock_no_false_positive;
    Alcotest.test_case "fork args propagate" `Quick fork_args_propagate;
    Alcotest.test_case "clean fixtures" `Quick clean_fixtures;
    Alcotest.test_case "workload suite lints clean" `Quick workload_sweep;
    Alcotest.test_case "strict mode refuses" `Quick strict_refuses;
    Alcotest.test_case "lint off runs anyway" `Quick off_runs_anyway;
    Alcotest.test_case "strict mode accepts clean" `Quick strict_accepts_clean;
    Alcotest.test_case "renderer smoke" `Quick renderer_smoke;
  ]
