(* Unit tests for the discrete-event kernel. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_prng_deterministic () =
  let a = Sim.Prng.create 42 and b = Sim.Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sim.Prng.int64 a) (Sim.Prng.int64 b)
  done

let test_prng_distinct_seeds () =
  let a = Sim.Prng.create 1 and b = Sim.Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Sim.Prng.int64 a = Sim.Prng.int64 b then incr same
  done;
  checkb "streams differ" true (!same < 4)

let test_prng_int_bounds () =
  let g = Sim.Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Sim.Prng.int g 17 in
    checkb "in range" true (v >= 0 && v < 17)
  done

let test_prng_split_independent () =
  let g = Sim.Prng.create 5 in
  let s = Sim.Prng.split g in
  (* Drawing from the split stream must not perturb the parent's future. *)
  let g' = Sim.Prng.copy g in
  for _ = 1 to 10 do
    ignore (Sim.Prng.int64 s)
  done;
  Alcotest.(check int64) "parent unperturbed" (Sim.Prng.int64 g') (Sim.Prng.int64 g)

let test_prng_float_bounds () =
  let g = Sim.Prng.create 11 in
  for _ = 1 to 1000 do
    let v = Sim.Prng.float g 3.5 in
    checkb "in range" true (v >= 0.0 && v < 3.5)
  done

let test_prng_exponential_mean () =
  let g = Sim.Prng.create 13 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Sim.Prng.exponential g ~mean:2.0
  done;
  let mean = !sum /. float_of_int n in
  checkb "mean near 2.0" true (mean > 1.9 && mean < 2.1)

let test_prng_shuffle_permutes () =
  let g = Sim.Prng.create 3 in
  let a = Array.init 50 Fun.id in
  Sim.Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_evq_order () =
  let q = Sim.Event_queue.create () in
  ignore (Sim.Event_queue.schedule q ~time:30 "c");
  ignore (Sim.Event_queue.schedule q ~time:10 "a");
  ignore (Sim.Event_queue.schedule q ~time:20 "b");
  let pop () = Option.get (Sim.Event_queue.pop q) in
  Alcotest.(check (pair int string)) "first" (10, "a") (pop ());
  Alcotest.(check (pair int string)) "second" (20, "b") (pop ());
  Alcotest.(check (pair int string)) "third" (30, "c") (pop ())

let test_evq_fifo_ties () =
  let q = Sim.Event_queue.create () in
  for i = 0 to 9 do
    ignore (Sim.Event_queue.schedule q ~time:5 i)
  done;
  for i = 0 to 9 do
    let _, v = Option.get (Sim.Event_queue.pop q) in
    check "insertion order on ties" i v
  done

let test_evq_cancel () =
  let q = Sim.Event_queue.create () in
  let _a = Sim.Event_queue.schedule q ~time:1 "a" in
  let b = Sim.Event_queue.schedule q ~time:2 "b" in
  let _c = Sim.Event_queue.schedule q ~time:3 "c" in
  Sim.Event_queue.cancel q b;
  check "live count" 2 (Sim.Event_queue.length q);
  let _, v1 = Option.get (Sim.Event_queue.pop q) in
  let _, v2 = Option.get (Sim.Event_queue.pop q) in
  Alcotest.(check (list string)) "b skipped" [ "a"; "c" ] [ v1; v2 ];
  checkb "empty" true (Sim.Event_queue.is_empty q)

let test_evq_cancel_after_pop_noop () =
  let q = Sim.Event_queue.create () in
  let a = Sim.Event_queue.schedule q ~time:1 "a" in
  ignore (Sim.Event_queue.pop q);
  Sim.Event_queue.cancel q a;
  check "still zero live" 0 (Sim.Event_queue.length q)

let test_evq_clock_advances () =
  let q = Sim.Event_queue.create () in
  ignore (Sim.Event_queue.schedule q ~time:100 ());
  ignore (Sim.Event_queue.pop q);
  check "clock" 100 (Sim.Event_queue.now q);
  ignore (Sim.Event_queue.schedule q ~time:250 ());
  ignore (Sim.Event_queue.pop q);
  check "clock again" 250 (Sim.Event_queue.now q)

let test_evq_peek () =
  let q = Sim.Event_queue.create () in
  let a = Sim.Event_queue.schedule q ~time:4 "a" in
  ignore (Sim.Event_queue.schedule q ~time:9 "b");
  Alcotest.(check (option int)) "peek" (Some 4) (Sim.Event_queue.peek_time q);
  Sim.Event_queue.cancel q a;
  Alcotest.(check (option int)) "peek skips cancelled" (Some 9)
    (Sim.Event_queue.peek_time q)

let test_evq_many_random () =
  (* Heap property under load: popping yields non-decreasing times. *)
  let g = Sim.Prng.create 99 in
  let q = Sim.Event_queue.create () in
  for _ = 1 to 2000 do
    ignore (Sim.Event_queue.schedule q ~time:(Sim.Prng.int g 100000) ())
  done;
  let prev = ref (-1) in
  let rec drain () =
    match Sim.Event_queue.pop q with
    | None -> ()
    | Some (t, ()) ->
      checkb "non-decreasing" true (t >= !prev);
      prev := t;
      drain ()
  in
  drain ()

let test_evq_compaction_reclaims () =
  (* Mass cancellation must not leave the heap full of dead cells. *)
  let q = Sim.Event_queue.create () in
  let handles = Array.init 4096 (fun i -> Sim.Event_queue.schedule q ~time:i i) in
  for i = 0 to 4095 do
    if i mod 64 <> 0 then Sim.Event_queue.cancel q handles.(i)
  done;
  check "live count" 64 (Sim.Event_queue.length q);
  checkb "heap compacted" true (Sim.Event_queue.heap_size q < 256);
  let rec drain acc =
    match Sim.Event_queue.pop q with
    | None -> List.rev acc
    | Some (_, v) -> drain (v :: acc)
  in
  Alcotest.(check (list int))
    "survivors pop in order"
    (List.init 64 (fun k -> k * 64))
    (drain [])

let test_evq_live_size_invariant () =
  (* Random schedule/cancel/pop/peek interleavings: the model of live
     events always matches [length], [length <= heap_size], pops only
     yield uncancelled events in time order, and peek agrees with the
     model's minimum. *)
  let g = Sim.Prng.create 17 in
  let q = Sim.Event_queue.create () in
  let pending = ref [] in
  (* (handle, id, time) *)
  let next_id = ref 0 in
  let last_time = ref (-1) in
  for _ = 1 to 5000 do
    let r = Sim.Prng.int g 100 in
    (if r < 55 then begin
       let t = Sim.Event_queue.now q + Sim.Prng.int g 50 in
       let id = !next_id in
       incr next_id;
       let h = Sim.Event_queue.schedule q ~time:t id in
       pending := !pending @ [ (h, id, t) ]
     end
     else if r < 85 then begin
       match !pending with
       | [] -> ()
       | l ->
         let i = Sim.Prng.int g (List.length l) in
         let h, _, _ = List.nth l i in
         Sim.Event_queue.cancel q h;
         pending := List.filteri (fun j _ -> j <> i) l
     end
     else if r < 95 then begin
       match Sim.Event_queue.pop q with
       | None -> check "pop empty iff model empty" 0 (List.length !pending)
       | Some (t, id) ->
         checkb "pop was pending" true
           (List.exists (fun (_, id', _) -> id' = id) !pending);
         checkb "times non-decreasing" true (t >= !last_time);
         last_time := t;
         let mn =
           List.fold_left (fun acc (_, _, t') -> min acc t') max_int !pending
         in
         check "pop yields earliest" mn t;
         pending := List.filter (fun (_, id', _) -> id' <> id) !pending
     end
     else begin
       let expect =
         match !pending with
         | [] -> None
         | l -> Some (List.fold_left (fun acc (_, _, t) -> min acc t) max_int l)
       in
       Alcotest.(check (option int)) "peek agrees with model" expect
         (Sim.Event_queue.peek_time q)
     end);
    check "length tracks model" (List.length !pending) (Sim.Event_queue.length q);
    checkb "live <= heap cells" true
      (Sim.Event_queue.length q <= Sim.Event_queue.heap_size q)
  done

let test_stats_counters () =
  let s = Sim.Stats.create () in
  Sim.Stats.incr s "a";
  Sim.Stats.incr s "a";
  Sim.Stats.add s "a" 3;
  check "counter" 5 (Sim.Stats.get s "a");
  check "untouched" 0 (Sim.Stats.get s "zzz")

let test_stats_max_and_mean () =
  let s = Sim.Stats.create () in
  Sim.Stats.set_max s "m" 4;
  Sim.Stats.set_max s "m" 9;
  Sim.Stats.set_max s "m" 2;
  check "max" 9 (Sim.Stats.get s "m");
  Sim.Stats.observe s "x" 1.0;
  Sim.Stats.observe s "x" 3.0;
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Sim.Stats.mean s "x");
  check "count" 2 (Sim.Stats.count s "x")

let test_stats_merge () =
  let a = Sim.Stats.create () and b = Sim.Stats.create () in
  Sim.Stats.add a "k" 2;
  Sim.Stats.add b "k" 3;
  Sim.Stats.observe a "o" 1.0;
  Sim.Stats.observe b "o" 5.0;
  Sim.Stats.merge_into ~dst:a b;
  check "merged counter" 5 (Sim.Stats.get a "k");
  Alcotest.(check (float 1e-9)) "merged mean" 3.0 (Sim.Stats.mean a "o")

let test_trace_ring () =
  let t = Sim.Trace.create ~capacity:4 () in
  for i = 1 to 6 do
    Sim.Trace.record t i (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check (list string))
    "keeps the newest 4"
    [ "e3"; "e4"; "e5"; "e6" ]
    (List.map snd (Sim.Trace.to_list t))

let test_trace_find_and_disable () =
  let t = Sim.Trace.create () in
  Sim.Trace.record t 1 "hello world";
  Sim.Trace.set_enabled t false;
  Sim.Trace.record t 2 "dropped";
  checkb "found" true (Sim.Trace.find t ~substring:"world" <> None);
  checkb "dropped" true (Sim.Trace.find t ~substring:"dropped" = None)

let test_time_conversions () =
  let c = Sim.Time.of_seconds ~cycles_per_second:1000 2.5 in
  check "of_seconds" 2500 c;
  Alcotest.(check (float 1e-9))
    "roundtrip" 2.5
    (Sim.Time.to_seconds ~cycles_per_second:1000 c);
  check "tiny positive rounds to >= 1" 1
    (Sim.Time.of_seconds ~cycles_per_second:1000 0.0001)

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng distinct seeds" `Quick test_prng_distinct_seeds;
    Alcotest.test_case "prng int bounds" `Quick test_prng_int_bounds;
    Alcotest.test_case "prng split independent" `Quick test_prng_split_independent;
    Alcotest.test_case "prng float bounds" `Quick test_prng_float_bounds;
    Alcotest.test_case "prng exponential mean" `Quick test_prng_exponential_mean;
    Alcotest.test_case "prng shuffle permutes" `Quick test_prng_shuffle_permutes;
    Alcotest.test_case "evq ordering" `Quick test_evq_order;
    Alcotest.test_case "evq fifo on ties" `Quick test_evq_fifo_ties;
    Alcotest.test_case "evq cancel" `Quick test_evq_cancel;
    Alcotest.test_case "evq cancel after pop" `Quick test_evq_cancel_after_pop_noop;
    Alcotest.test_case "evq clock" `Quick test_evq_clock_advances;
    Alcotest.test_case "evq peek" `Quick test_evq_peek;
    Alcotest.test_case "evq random load" `Quick test_evq_many_random;
    Alcotest.test_case "evq compaction reclaims" `Quick test_evq_compaction_reclaims;
    Alcotest.test_case "evq live/size invariant" `Quick test_evq_live_size_invariant;
    Alcotest.test_case "stats counters" `Quick test_stats_counters;
    Alcotest.test_case "stats max/mean" `Quick test_stats_max_and_mean;
    Alcotest.test_case "stats merge" `Quick test_stats_merge;
    Alcotest.test_case "trace ring" `Quick test_trace_ring;
    Alcotest.test_case "trace find/disable" `Quick test_trace_find_and_disable;
    Alcotest.test_case "time conversions" `Quick test_time_conversions;
  ]
