(* Whole-runtime crash injection and ARIES-style cold recovery.

   The headline invariant: crash the runtime at every WAL-record
   boundary, cold-recover from the stable image, resume, and the final
   digest is bit-identical to the fault-free run — under all three
   ordering schemes, with a P-CPR comparison leg under the same crash
   schedule. *)

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let workload name scale =
  let spec = Workloads.Suite.find name in
  let program =
    spec.Workloads.Workload.build ~n_contexts:4
      ~grain:Workloads.Workload.Default ~scale
  in
  (spec, program)

let gprs_cfg ?(ordering = Gprs.Order.Balance_aware) () =
  { Gprs.Engine.default_config with n_contexts = 4; seed = 3; ordering }

(* --- WAL stable image ------------------------------------------------- *)

let test_stable_roundtrip () =
  let w = Wal.create ~stable:true () in
  checkb "armed" true (Wal.stable_armed w);
  ignore (Wal.append w ~at:5 ~order:0 (Wal.Alloc { addr = 64; size = 8 }));
  ignore (Wal.append w ~at:6 ~order:1 (Wal.Thread_create { tid = 2 }));
  ignore (Wal.append w ~at:7 ~order:1 (Wal.Sched_enqueue { sub = 1 }));
  ignore (Wal.append w ~at:8 ~order:2 (Wal.Io_op { file = 0; words = 3 }));
  Wal.log_checkpoint w ~min_retired:1 ~active:[ 1; 2 ]
    ~brk:128
    ~free:[ (128, 64) ]
    ~used:[ (64, 8) ];
  ignore (Wal.append w ~at:9 ~order:2 (Wal.Free { addr = 64; size = 8 }));
  ignore (Wal.prune_below w ~order:1);
  ignore (Wal.drop_for w ~orders:(fun o -> o = 2));
  let image =
    match Wal.stable_image w with
    | Some s -> s
    | None -> Alcotest.fail "stable image missing"
  in
  let recs = Wal.parse_image image in
  (* every record class survives the round-trip *)
  let has p = List.exists p recs in
  checkb "op" true
    (has (function
      | Wal.S_op { at = 5; e } -> e.Wal.op = Wal.Alloc { addr = 64; size = 8 }
      | _ -> false));
  checkb "enqueue" true
    (has (function
      | Wal.S_op { e; _ } -> e.Wal.op = Wal.Sched_enqueue { sub = 1 }
      | _ -> false));
  checkb "prune" true
    (has (function Wal.S_prune { upto = 1; _ } -> true | _ -> false));
  checkb "drop" true
    (has (function Wal.S_drop { orders = [ 2 ]; _ } -> true | _ -> false));
  checkb "checkpoint" true
    (has (function
      | Wal.S_ckpt_end { min_retired = 1; brk = 128; free = [ (128, 64) ];
                         used = [ (64, 8) ]; _ } ->
        true
      | _ -> false))

let test_corrupt_image_detected () =
  let w = Wal.create ~stable:true () in
  ignore (Wal.append w ~at:1 ~order:0 (Wal.Alloc { addr = 8; size = 4 }));
  Wal.log_checkpoint w ~min_retired:0 ~active:[] ~brk:8 ~free:[] ~used:[];
  let image = Option.get (Wal.stable_image w) in
  (* flip one payload character: the record checksum must catch it *)
  let bad = Bytes.of_string image in
  let i = String.index image '8' in
  Bytes.set bad i '9';
  checkb "corrupt raises" true
    (match Wal.parse_image (Bytes.to_string bad) with
    | _ -> false
    | exception Wal.Corrupt _ -> true);
  checkb "checkpoint-less raises" true
    (match Recovery.analyze "" with
    | _ -> false
    | exception Wal.Corrupt _ -> true)

(* --- Stable arming is invisible --------------------------------------- *)

let test_stable_invisible () =
  let spec, program = workload "pbzip2" 0.02 in
  let off = Gprs.Engine.run ~lint:`Off (gprs_cfg ()) program in
  let on =
    Gprs.Engine.run ~lint:`Off
      { (gprs_cfg ()) with Gprs.Engine.wal_stable = true }
      program
  in
  checks "digest" (spec.Workloads.Workload.digest off)
    (spec.Workloads.Workload.digest on);
  Alcotest.(check int)
    "cycles" off.Exec.State.sim_cycles on.Exec.State.sim_cycles

(* --- Single crash points ---------------------------------------------- *)

let recover_and_check ?(spec_name = "pbzip2") ?(scale = 0.02) dump =
  let spec, program = workload spec_name scale in
  ignore program;
  let _a, _secs, resume = Recovery.recover dump in
  let r = resume () in
  checkb "completes" false r.Exec.State.dnc;
  spec.Workloads.Workload.digest r

let test_crash_at_cycle () =
  let spec, program = workload "pbzip2" 0.02 in
  let want = spec.Workloads.Workload.digest (Gprs.Engine.run ~lint:`Off (gprs_cfg ()) program) in
  let cfg = { (gprs_cfg ()) with Gprs.Engine.crash_cycle = Some 50_000 } in
  match Gprs.Engine.run ~lint:`Off cfg program with
  | _ -> Alcotest.fail "crash never fired"
  | exception Gprs.Engine.Crashed dump ->
    checks "digest" want (recover_and_check dump)

let test_crash_via_injector () =
  (* The [Crash] exception kind arrives through the regular injector
     plumbing (a Fault_occur event), not just the LSN/cycle triggers. *)
  let spec, program = workload "pbzip2" 0.02 in
  let want = spec.Workloads.Workload.digest (Gprs.Engine.run ~lint:`Off (gprs_cfg ()) program) in
  let cfg =
    {
      (gprs_cfg ()) with
      Gprs.Engine.wal_stable = true;
      injector =
        Faults.Injector.config ~seed:3 ~kinds:[ Faults.Injector.Crash ] 200_000.0;
    }
  in
  match Gprs.Engine.run ~lint:`Off cfg program with
  | _ -> Alcotest.fail "injected crash never fired"
  | exception Gprs.Engine.Crashed dump ->
    checks "digest" want (recover_and_check dump)

let test_mangled_wal_refused () =
  let _, program = workload "pbzip2" 0.02 in
  let cfg = { (gprs_cfg ()) with Gprs.Engine.crash_lsn = Some 60 } in
  match Gprs.Engine.run ~lint:`Off cfg program with
  | _ -> Alcotest.fail "crash never fired"
  | exception Gprs.Engine.Crashed dump ->
    let mangle s =
      (* damage a mid-log record: recovery must refuse, not guess *)
      let b = Bytes.of_string s in
      Bytes.set b (String.length s / 2) '#';
      Bytes.to_string b
    in
    checkb "refused" true
      (match Recovery.recover ~mangle dump with
      | _ -> false
      | exception Wal.Corrupt _ -> true)

(* --- Sweeps ------------------------------------------------------------ *)

let sweep_leg name scale scheme =
  let spec, program = workload name scale in
  let r =
    Recovery.sweep_gprs ~leg:name
      ~cfg:(gprs_cfg ~ordering:scheme ())
      ~digest:spec.Workloads.Workload.digest program
  in
  checkb
    (Format.asprintf "%a" Recovery.pp_report r)
    true (Recovery.leg_ok r);
  checkb "points enumerated" true (r.Recovery.points_total > 0)

let test_sweep_histogram_rr () = sweep_leg "histogram" 0.05 Gprs.Order.Round_robin
let test_sweep_histogram_bal () = sweep_leg "histogram" 0.05 Gprs.Order.Balance_aware
let test_sweep_histogram_wt () = sweep_leg "histogram" 0.05 Gprs.Order.Weighted
let test_sweep_pbzip2_rr () = sweep_leg "pbzip2" 0.02 Gprs.Order.Round_robin
let test_sweep_pbzip2_bal () = sweep_leg "pbzip2" 0.02 Gprs.Order.Balance_aware
let test_sweep_pbzip2_wt () = sweep_leg "pbzip2" 0.02 Gprs.Order.Weighted

let test_sweep_sampled () =
  let spec, program = workload "pbzip2" 0.05 in
  let r =
    Recovery.sweep_gprs ~sample:12 ~sample_seed:9 ~leg:"sampled"
      ~cfg:(gprs_cfg ()) ~digest:spec.Workloads.Workload.digest program
  in
  checkb "ok" true (Recovery.leg_ok r);
  Alcotest.(check int) "ran the sample" 12 r.Recovery.points_run;
  checkb "sampled strictly" true (r.Recovery.points_total > 12)

let test_sweep_pcpr_leg () =
  let spec, program = workload "pbzip2" 0.02 in
  let image, _ = Recovery.pilot ~cfg:(gprs_cfg ()) program in
  let a = Recovery.analyze image in
  let cycles =
    List.map snd a.Recovery.points |> List.sort_uniq compare
  in
  let r =
    Recovery.sweep_pcpr ~leg:"pcpr"
      ~cfg:{ Cpr.default_config with Cpr.n_contexts = 4; seed = 3 }
      ~digest:spec.Workloads.Workload.digest ~crash_cycles:cycles program
  in
  checkb (Format.asprintf "%a" Recovery.pp_report r) true (Recovery.leg_ok r)

let suite =
  [
    Alcotest.test_case "wal: stable image round-trips" `Quick
      test_stable_roundtrip;
    Alcotest.test_case "wal: corruption detected" `Quick
      test_corrupt_image_detected;
    Alcotest.test_case "stable arming is invisible" `Quick
      test_stable_invisible;
    Alcotest.test_case "crash at cycle, recover, digest" `Quick
      test_crash_at_cycle;
    Alcotest.test_case "crash via injector kind" `Quick
      test_crash_via_injector;
    Alcotest.test_case "mangled WAL refused" `Quick test_mangled_wal_refused;
    Alcotest.test_case "sweep histogram round-robin" `Quick
      test_sweep_histogram_rr;
    Alcotest.test_case "sweep histogram balance-aware" `Quick
      test_sweep_histogram_bal;
    Alcotest.test_case "sweep histogram weighted" `Quick
      test_sweep_histogram_wt;
    Alcotest.test_case "sweep pbzip2 round-robin" `Slow test_sweep_pbzip2_rr;
    Alcotest.test_case "sweep pbzip2 balance-aware" `Slow
      test_sweep_pbzip2_bal;
    Alcotest.test_case "sweep pbzip2 weighted" `Slow test_sweep_pbzip2_wt;
    Alcotest.test_case "sweep seeded sample" `Quick test_sweep_sampled;
    Alcotest.test_case "sweep p-cpr comparison leg" `Quick
      test_sweep_pcpr_leg;
  ]
