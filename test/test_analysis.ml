(* Analysis-layer tests: the closed-form penalty model, the report
   renderer, and smoke tests of the experiment drivers at tiny scale. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

let test_model_cpr_penalties () =
  (* Pc = 1/t * n * (tc + ts) *)
  checkf "Pc" 2.4 (Analysis.Model.cpr_checkpoint_penalty ~t:10.0 ~n:8 ~tc:1.0 ~ts:2.0);
  (* Pr = n * e * tr *)
  checkf "Pr" 16.0 (Analysis.Model.cpr_restart_penalty ~n:8 ~e:2.0 ~tr:1.0)

let test_model_gprs_penalties () =
  checkf "no coordination" 1.6
    (Analysis.Model.gprs_checkpoint_penalty ~t:10.0 ~n:8 ~ts:2.0);
  checkf "selective Pr" 2.0 (Analysis.Model.gprs_restart_penalty ~e:2.0 ~tr:1.0);
  checkf "ordering Pg" 0.8 (Analysis.Model.gprs_ordering_penalty ~t:10.0 ~n:8 ~tg:1.0)

let test_model_max_rates_scale () =
  (* The paper's scalability claim: GPRS's tolerable rate is n x CPR's. *)
  let tr = 0.5 in
  checkf "cpr flat" 2.0 (Analysis.Model.cpr_max_rate ~tr);
  checkf "gprs scales" 48.0 (Analysis.Model.gprs_max_rate ~n:24 ~tr);
  checkf "hw in between" 24.0 (Analysis.Model.hw_max_rate ~n:24 ~nc:2 ~tr);
  checkb "ordering" true
    (Analysis.Model.cpr_max_rate ~tr
     <= Analysis.Model.hw_max_rate ~n:24 ~nc:2 ~tr
    && Analysis.Model.hw_max_rate ~n:24 ~nc:2 ~tr
       <= Analysis.Model.gprs_max_rate ~n:24 ~tr)

let test_model_restart_delay () =
  checkf "tr = t + tw" 1.5 (Analysis.Model.restart_delay ~t:1.0 ~tw:0.5)

let test_table1_shape () =
  let rows = Analysis.Experiments.table1 () in
  check "five rows" 5 (List.length rows);
  List.iter (fun r -> check "eight columns" 8 (List.length r)) rows;
  checkb "gprs row last" true
    (match List.rev rows with
    | last :: _ -> List.hd last = "GPRS (this work)"
    | [] -> false)

let test_harmonic_mean () =
  checkf "hm of equal" 2.0 (Analysis.Report.harmonic_mean [ 2.0; 2.0; 2.0 ]);
  checkf "hm classic" 1.2 (Analysis.Report.harmonic_mean [ 1.0; 1.5 ]);
  checkb "hm of empty is nan" true (Float.is_nan (Analysis.Report.harmonic_mean []))

let test_hm_row_skips_dnc () =
  let bar l v dnc = { Analysis.Report.label = l; value = v; dnc } in
  let fig =
    {
      Analysis.Report.id = "t";
      title = "t";
      rows =
        [
          { Analysis.Report.row_name = "a"; bars = [ bar "X" 1.0 false ] };
          { Analysis.Report.row_name = "b"; bars = [ bar "X" 0.0 true ] };
          { Analysis.Report.row_name = "c"; bars = [ bar "X" 1.0 false ] };
        ];
      notes = [];
    }
  in
  match Analysis.Report.hm_row fig with
  | Some { Analysis.Report.bars = [ b ]; _ } ->
    checkf "dnc skipped" 1.0 b.Analysis.Report.value
  | _ -> Alcotest.fail "expected one hm bar"

let test_render_table () =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Analysis.Report.render_table ppf ~title:"T" ~header:[ "a"; "bb" ]
    [ [ "x"; "1" ]; [ "yyy"; "22" ] ];
  Format.pp_print_flush ppf ();
  let s = Buffer.contents buf in
  let contains sub =
    let ls = String.length s and lsub = String.length sub in
    let rec go i = i + lsub <= ls && (String.sub s i lsub = sub || go (i + 1)) in
    go 0
  in
  checkb "has title" true (String.length s > 0 && String.sub s 0 1 = "T");
  checkb "contains row" true (contains "yyy");
  checkb "contains header" true (contains "bb")

let test_bar_chart_renders () =
  let bar l v dnc = { Analysis.Report.label = l; value = v; dnc } in
  let fig =
    {
      Analysis.Report.id = "Fig. X";
      title = "demo";
      rows =
        [
          {
            Analysis.Report.row_name = "prog";
            bars = [ bar "A" 1.0 false; bar "B" 10.0 false; bar "C" 0.0 true ];
          };
        ];
      notes = [];
    }
  in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Analysis.Report.render_bar_chart ppf fig;
  Format.pp_print_flush ppf ();
  let s = Buffer.contents buf in
  let contains sub =
    let ls = String.length s and lsub = String.length sub in
    let rec go i = i + lsub <= ls && (String.sub s i lsub = sub || go (i + 1)) in
    go 0
  in
  checkb "has hashes" true (contains "#");
  checkb "clips large bars" true (contains ">");
  checkb "marks dnc" true (contains "DNC")

let tiny_cfg =
  {
    Analysis.Experiments.default_cfg with
    Analysis.Experiments.n_contexts = 4;
    scale = 0.05;
    dnc_factor = 40;
  }

let test_table2_shape () =
  let rows = Analysis.Experiments.table2 tiny_cfg in
  check "ten programs" 10 (List.length rows);
  List.iter (fun r -> check "seven columns" 7 (List.length r)) rows;
  (* Sub-thread counts are positive integers. *)
  List.iter
    (fun r ->
      let subs = int_of_string (List.nth r 6) in
      checkb "positive subs" true (subs > 0))
    rows

let test_fig9_shape () =
  let fig = Analysis.Experiments.fig9 tiny_cfg in
  check "four programs" 4 (List.length fig.Analysis.Report.rows);
  List.iter
    (fun (r : Analysis.Report.row) -> check "two bars" 2 (List.length r.Analysis.Report.bars))
    fig.Analysis.Report.rows

let test_pool_map_order () =
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "order preserved with domains"
    (List.map (fun x -> x * x) xs)
    (Analysis.Pool.map ~jobs:4 (fun x -> x * x) xs);
  Alcotest.(check (list int))
    "sequential path agrees"
    (List.map succ xs)
    (Analysis.Pool.map ~jobs:1 succ xs);
  Alcotest.(check (list int)) "more jobs than items" [ 2 ]
    (Analysis.Pool.map ~jobs:8 (fun x -> x + 1) [ 1 ]);
  Alcotest.(check (list int)) "empty input" [] (Analysis.Pool.map ~jobs:4 succ [])

let test_pool_first_error_wins () =
  Alcotest.check_raises "earliest item's exception re-raised"
    (Failure "boom3") (fun () ->
      ignore
        (Analysis.Pool.map ~jobs:3
           (fun x -> if x >= 3 then failwith (Printf.sprintf "boom%d" x) else x)
           [ 0; 1; 2; 3; 4; 5 ]))

let strip_figure (f : Analysis.Report.figure) =
  List.map
    (fun (r : Analysis.Report.row) ->
      ( r.Analysis.Report.row_name,
        List.map
          (fun (b : Analysis.Report.bar) ->
            (b.Analysis.Report.label, b.Analysis.Report.value, b.Analysis.Report.dnc))
          r.Analysis.Report.bars ))
    f.Analysis.Report.rows

let test_parallel_rows_identical () =
  (* Same seed, any [jobs]: drivers must produce bit-identical rows. *)
  let seq = Analysis.Experiments.fig9 { tiny_cfg with Analysis.Experiments.jobs = 1 } in
  let par = Analysis.Experiments.fig9 { tiny_cfg with Analysis.Experiments.jobs = 2 } in
  checkb "fig9 rows identical for jobs=1 and jobs=2" true
    (strip_figure seq = strip_figure par)

let test_cost_ablations_ordered () =
  (* With more cost components charged, execution can only get slower. *)
  let spec = Workloads.Suite.find "re" in
  let t costs =
    (Analysis.Experiments.run_gprs ~costs tiny_cfg spec ~grain:Workloads.Workload.Default)
      .Exec.State.sim_cycles
  in
  let or_only = t Analysis.Experiments.costs_order_only in
  let or_rol = t Analysis.Experiments.costs_order_rol in
  let full = t Vm.Costs.default in
  checkb
    (Printf.sprintf "or<=or+rol<=full (%d %d %d)" or_only or_rol full)
    true
    (or_only <= or_rol && or_rol <= full)

let suite =
  [
    Alcotest.test_case "model: cpr penalties" `Quick test_model_cpr_penalties;
    Alcotest.test_case "model: gprs penalties" `Quick test_model_gprs_penalties;
    Alcotest.test_case "model: max rates scale" `Quick test_model_max_rates_scale;
    Alcotest.test_case "model: restart delay" `Quick test_model_restart_delay;
    Alcotest.test_case "table1 shape" `Quick test_table1_shape;
    Alcotest.test_case "harmonic mean" `Quick test_harmonic_mean;
    Alcotest.test_case "hm row skips dnc" `Quick test_hm_row_skips_dnc;
    Alcotest.test_case "render table" `Quick test_render_table;
    Alcotest.test_case "render bar chart" `Quick test_bar_chart_renders;
    Alcotest.test_case "pool map order" `Quick test_pool_map_order;
    Alcotest.test_case "pool first error wins" `Quick test_pool_first_error_wins;
    Alcotest.test_case "table2 shape" `Slow test_table2_shape;
    Alcotest.test_case "parallel rows identical" `Slow test_parallel_rows_identical;
    Alcotest.test_case "fig9 shape" `Slow test_fig9_shape;
    Alcotest.test_case "cost ablations ordered" `Slow test_cost_ablations_ordered;
  ]
