(* Unit tests for the ordering structures: the token policies and the
   reorder list's retirement edge cases. *)

let check = Alcotest.(check int)
let check_opt = Alcotest.(check (option int))

let grant t =
  match Gprs.Order.holder t with
  | Some tid ->
    Gprs.Order.advance t ~granted:tid;
    tid
  | None -> Alcotest.fail "no holder"

let test_round_robin_rotation () =
  let t = Gprs.Order.create Gprs.Order.Round_robin ~group_weights:[| 1 |] in
  for tid = 0 to 2 do
    Gprs.Order.add_thread t ~tid ~group:0
  done;
  Alcotest.(check (list int))
    "cycles in creation order"
    [ 0; 1; 2; 0; 1; 2 ]
    (List.init 6 (fun _ -> grant t))

let test_round_robin_ignores_groups () =
  let t = Gprs.Order.create Gprs.Order.Round_robin ~group_weights:[| 1; 1 |] in
  Gprs.Order.add_thread t ~tid:0 ~group:1;
  Gprs.Order.add_thread t ~tid:1 ~group:0;
  Alcotest.(check (list int)) "one rotation" [ 0; 1; 0 ]
    (List.init 3 (fun _ -> grant t))

let test_skip_ineligible () =
  let t = Gprs.Order.create Gprs.Order.Round_robin ~group_weights:[| 1 |] in
  for tid = 0 to 2 do
    Gprs.Order.add_thread t ~tid ~group:0
  done;
  Gprs.Order.set_eligible t 1 false;
  Alcotest.(check (list int)) "skips sleeper" [ 0; 2; 0 ]
    (List.init 3 (fun _ -> grant t));
  Gprs.Order.set_eligible t 1 true;
  check "sleeper returns" 1 (grant t)

let test_none_when_all_ineligible () =
  let t = Gprs.Order.create Gprs.Order.Round_robin ~group_weights:[| 1 |] in
  Gprs.Order.add_thread t ~tid:0 ~group:0;
  Gprs.Order.set_eligible t 0 false;
  check_opt "none" None (Gprs.Order.holder t)

let test_remove_thread () =
  let t = Gprs.Order.create Gprs.Order.Round_robin ~group_weights:[| 1 |] in
  for tid = 0 to 2 do
    Gprs.Order.add_thread t ~tid ~group:0
  done;
  ignore (grant t);
  (* token now past 0 *)
  Gprs.Order.remove_thread t 1;
  Alcotest.(check (list int)) "1 gone" [ 2; 0; 2 ] (List.init 3 (fun _ -> grant t));
  check "live" 2 (Gprs.Order.live_count t)

let test_balance_aware_alternates_groups () =
  (* The paper's Pbzip2 shape: group 0 = reader, group 1 = compressors.
     Fig 7(b): turns go TH0, TH1, TH0, TH2, TH0, TH1 ... *)
  let t = Gprs.Order.create Gprs.Order.Balance_aware ~group_weights:[| 1; 1 |] in
  Gprs.Order.add_thread t ~tid:0 ~group:0;
  Gprs.Order.add_thread t ~tid:1 ~group:1;
  Gprs.Order.add_thread t ~tid:2 ~group:1;
  Alcotest.(check (list int))
    "alternation with intra-group rotation"
    [ 0; 1; 0; 2; 0; 1 ]
    (List.init 6 (fun _ -> grant t))

let test_balance_aware_skips_empty_group () =
  let t = Gprs.Order.create Gprs.Order.Balance_aware ~group_weights:[| 1; 1; 1 |] in
  Gprs.Order.add_thread t ~tid:0 ~group:0;
  Gprs.Order.add_thread t ~tid:1 ~group:2;
  Alcotest.(check (list int)) "group 1 empty" [ 0; 1; 0; 1 ]
    (List.init 4 (fun _ -> grant t))

let test_weighted_gives_extra_turns () =
  (* Weight 2 for group 0: two reader turns per compressor turn. *)
  let t = Gprs.Order.create Gprs.Order.Weighted ~group_weights:[| 2; 1 |] in
  Gprs.Order.add_thread t ~tid:0 ~group:0;
  Gprs.Order.add_thread t ~tid:1 ~group:1;
  Gprs.Order.add_thread t ~tid:2 ~group:1;
  Alcotest.(check (list int))
    "2:1 turn ratio"
    [ 0; 0; 1; 0; 0; 2 ]
    (List.init 6 (fun _ -> grant t))

let test_weighted_min_weight_one () =
  let t = Gprs.Order.create Gprs.Order.Weighted ~group_weights:[| 0; 1 |] in
  Gprs.Order.add_thread t ~tid:0 ~group:0;
  Gprs.Order.add_thread t ~tid:1 ~group:1;
  (* weight 0 is clamped to 1 *)
  Alcotest.(check (list int)) "clamped" [ 0; 1; 0; 1 ]
    (List.init 4 (fun _ -> grant t))

let test_holder_is_pure () =
  let t = Gprs.Order.create Gprs.Order.Round_robin ~group_weights:[| 1 |] in
  Gprs.Order.add_thread t ~tid:0 ~group:0;
  Gprs.Order.add_thread t ~tid:1 ~group:0;
  check_opt "peek" (Some 0) (Gprs.Order.holder t);
  check_opt "peek again" (Some 0) (Gprs.Order.holder t)

let test_late_join_enters_rotation () =
  let t = Gprs.Order.create Gprs.Order.Round_robin ~group_weights:[| 1 |] in
  Gprs.Order.add_thread t ~tid:0 ~group:0;
  ignore (grant t);
  Gprs.Order.add_thread t ~tid:1 ~group:0;
  Alcotest.(check (list int)) "new thread joins" [ 1; 0; 1 ]
    (List.init 3 (fun _ -> grant t))

(* --- ROL retirement edges ------------------------------------------- *)

let dummy_saved =
  Vm.Tcb.copy_state
    (Vm.Tcb.create ~n_barriers:0 ~tid:0 ~group:0
       ~proc:{ Vm.Isa.pname = "p"; code = [| Vm.Isa.Exit |] }
       ~args:[||])

let mk_sub id = Gprs.Subthread.make ~id ~tid:0 ~now:0 ~saved:dummy_saved

let ids subs = List.map (fun s -> s.Gprs.Subthread.id) subs

let test_rol_squashed_head_blocks () =
  let rol = Gprs.Rol.create () in
  let subs = List.init 3 mk_sub in
  List.iter (Gprs.Rol.insert rol) subs;
  List.iteri
    (fun i s ->
      s.Gprs.Subthread.status <-
        (if i = 0 then Gprs.Subthread.Squashed else Gprs.Subthread.Complete 10))
    subs;
  Alcotest.(check (list int))
    "squashed head retires nothing" []
    (ids (Gprs.Rol.retire_ready rol ~now:10_000 ~latency:10));
  Gprs.Rol.remove rol 0;
  Alcotest.(check (list int))
    "suffix retires once the head is gone" [ 1; 2 ]
    (ids (Gprs.Rol.retire_ready rol ~now:10_000 ~latency:10))

let test_rol_latency_boundary () =
  let rol = Gprs.Rol.create () in
  let s = mk_sub 0 in
  Gprs.Rol.insert rol s;
  s.Gprs.Subthread.status <- Gprs.Subthread.Complete 100;
  Alcotest.(check (list int))
    "one cycle early: still in the detection window" []
    (ids (Gprs.Rol.retire_ready rol ~now:149 ~latency:50));
  Alcotest.(check (list int))
    "exactly latency cycles after completion: retires" [ 0 ]
    (ids (Gprs.Rol.retire_ready rol ~now:150 ~latency:50))

let test_rol_hw_across_squash () =
  let rol = Gprs.Rol.create () in
  List.iter (fun id -> Gprs.Rol.insert rol (mk_sub id)) [ 0; 1; 2; 3; 4 ];
  check "hw after first wave" 5 (Gprs.Rol.max_size rol);
  (* Squash-removal shrinks the live set but not the high water. *)
  List.iter (Gprs.Rol.remove rol) [ 0; 1; 2; 3 ];
  check "live after squash" 1 (Gprs.Rol.size rol);
  check "hw survives squash" 5 (Gprs.Rol.max_size rol);
  (* Re-inserted work uses fresh (monotonic) ids and pushes hw further. *)
  List.iter (fun id -> Gprs.Rol.insert rol (mk_sub id)) [ 5; 6; 7; 8; 9; 10 ];
  check "live" 7 (Gprs.Rol.size rol);
  check "hw high water" 7 (Gprs.Rol.max_size rol);
  check_opt "head skips squashed slots" (Some 4) (Gprs.Rol.min_live_id rol)

let test_rol_ring_growth () =
  let rol = Gprs.Rol.create () in
  (* Push the live span well past the initial capacity. *)
  for id = 0 to 599 do
    Gprs.Rol.insert rol (mk_sub id)
  done;
  for id = 0 to 599 do
    if id mod 2 = 0 then Gprs.Rol.remove rol id
  done;
  check "live" 300 (Gprs.Rol.size rol);
  check_opt "head" (Some 1) (Gprs.Rol.min_live_id rol);
  Alcotest.(check bool) "find across growth" true (Gprs.Rol.find rol 599 <> None);
  Alcotest.(check (list int))
    "suffix walk" [ 597; 599 ]
    (ids (Gprs.Rol.younger_than rol 595));
  Alcotest.check_raises "below retired horizon"
    (Invalid_argument "Rol.insert: id below retired horizon") (fun () ->
      Gprs.Rol.insert rol (mk_sub 0))

let suite =
  [
    Alcotest.test_case "round-robin rotation" `Quick test_round_robin_rotation;
    Alcotest.test_case "round-robin ignores groups" `Quick test_round_robin_ignores_groups;
    Alcotest.test_case "skip ineligible" `Quick test_skip_ineligible;
    Alcotest.test_case "none when all ineligible" `Quick test_none_when_all_ineligible;
    Alcotest.test_case "remove thread" `Quick test_remove_thread;
    Alcotest.test_case "balance-aware alternation" `Quick test_balance_aware_alternates_groups;
    Alcotest.test_case "balance-aware skips empty group" `Quick test_balance_aware_skips_empty_group;
    Alcotest.test_case "weighted extra turns" `Quick test_weighted_gives_extra_turns;
    Alcotest.test_case "weighted clamps zero" `Quick test_weighted_min_weight_one;
    Alcotest.test_case "holder is pure" `Quick test_holder_is_pure;
    Alcotest.test_case "late join" `Quick test_late_join_enters_rotation;
    Alcotest.test_case "rol: squashed head blocks retirement" `Quick test_rol_squashed_head_blocks;
    Alcotest.test_case "rol: detection-latency boundary" `Quick test_rol_latency_boundary;
    Alcotest.test_case "rol: high water across squash" `Quick test_rol_hw_across_squash;
    Alcotest.test_case "rol: ring growth" `Quick test_rol_ring_growth;
  ]
