(* Unit tests for the exception injector. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let mk ?(rate = 2.0) ?(process = Faults.Injector.Periodic) ?(latency = 400_000)
    ?(seed = 1) () =
  Faults.Injector.create
    (Faults.Injector.config ~process ~detection_latency:latency ~seed rate)
    ~n_contexts:8 ~cycles_per_second:1_000_000

let take n inj =
  let rec go acc inj k =
    if k = 0 then List.rev acc
    else
      match Faults.Injector.next inj with
      | inj, Some ev -> go (ev :: acc) inj (k - 1)
      | _, None -> List.rev acc
  in
  go [] inj n

let test_disabled () =
  let inj =
    Faults.Injector.create Faults.Injector.default_config ~n_contexts:4
      ~cycles_per_second:1_000_000
  in
  let _, ev = Faults.Injector.next inj in
  checkb "no events" true (ev = None)

let test_periodic_spacing () =
  let evs = take 4 (mk ~rate:2.0 ()) in
  Alcotest.(check (list int))
    "every half second"
    [ 500_000; 1_000_000; 1_500_000; 2_000_000 ]
    (List.map (fun e -> e.Faults.Injector.occurred_at) evs)

let test_latency_applied () =
  let evs = take 2 (mk ~latency:1234 ()) in
  List.iter
    (fun e ->
      check "reported = occurred + latency"
        (e.Faults.Injector.occurred_at + 1234)
        e.Faults.Injector.reported_at)
    evs

let test_ctx_in_range () =
  let evs = take 100 (mk ~process:Faults.Injector.Poisson ()) in
  List.iter
    (fun e ->
      checkb "ctx in range" true
        (e.Faults.Injector.ctx >= 0 && e.Faults.Injector.ctx < 8))
    evs

let test_poisson_mean_rate () =
  let evs = take 2000 (mk ~rate:5.0 ~process:Faults.Injector.Poisson ()) in
  let last = List.nth evs (List.length evs - 1) in
  let span_s = float_of_int last.Faults.Injector.occurred_at /. 1_000_000.0 in
  let rate = 2000.0 /. span_s in
  checkb (Printf.sprintf "rate near 5 (%.2f)" rate) true (rate > 4.5 && rate < 5.5)

let test_deterministic () =
  let a = take 20 (mk ~process:Faults.Injector.Poisson ~seed:7 ()) in
  let b = take 20 (mk ~process:Faults.Injector.Poisson ~seed:7 ()) in
  Alcotest.(check (list int))
    "same stream"
    (List.map (fun e -> e.Faults.Injector.occurred_at) a)
    (List.map (fun e -> e.Faults.Injector.occurred_at) b)

let test_seq_numbers () =
  let evs = take 5 (mk ()) in
  Alcotest.(check (list int)) "seq" [ 0; 1; 2; 3; 4 ]
    (List.map (fun e -> e.Faults.Injector.seq) evs)

let test_monotonic_times () =
  let evs = take 50 (mk ~process:Faults.Injector.Poisson ()) in
  let rec mono = function
    | a :: (b :: _ as rest) ->
      a.Faults.Injector.occurred_at <= b.Faults.Injector.occurred_at && mono rest
    | _ -> true
  in
  checkb "monotonic" true (mono evs)

(* Pins the documented default: injector.mli, DESIGN.md and the paper's
   Â§3.3 sensitivity analysis all quote 40,000 cycles. *)
let test_default_latency () =
  Alcotest.(check int) "default_config" 40_000
    Faults.Injector.default_config.Faults.Injector.detection_latency;
  Alcotest.(check int) "config 1.0" 40_000
    (Faults.Injector.config 1.0).Faults.Injector.detection_latency

let suite =
  [
    Alcotest.test_case "disabled" `Quick test_disabled;
    Alcotest.test_case "default detection latency is 40k" `Quick
      test_default_latency;
    Alcotest.test_case "periodic spacing" `Quick test_periodic_spacing;
    Alcotest.test_case "latency applied" `Quick test_latency_applied;
    Alcotest.test_case "ctx in range" `Quick test_ctx_in_range;
    Alcotest.test_case "poisson rate" `Quick test_poisson_mean_rate;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "seq numbers" `Quick test_seq_numbers;
    Alcotest.test_case "monotonic" `Quick test_monotonic_times;
  ]
