(* Pooling must be a pure performance transformation: recycling
   sub-thread records (with their saved buffers and undo logs) and
   event-queue cells must leave every observable of a run — output
   digest, simulated cycles, DNC flag, and every statistic — bit-identical
   with pooling on and off, for all three engines, under faults, recovery
   and restart. Plus: a recycled record must carry nothing from its
   previous life, and a stale event handle must never cancel a recycled
   cell's new occupant. *)

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let checki = Alcotest.(check int)

let n_contexts = 4
let scale = 0.08

let build (spec : Workloads.Workload.spec) =
  spec.Workloads.Workload.build ~n_contexts ~grain:Workloads.Workload.Default
    ~scale

type obs = {
  o_digest : string;
  o_cycles : int;
  o_dnc : bool;
  o_stats : (string * float) list;
}

let observe digest (r : Exec.State.run_result) =
  {
    o_digest = digest r;
    o_cycles = r.Exec.State.sim_cycles;
    o_dnc = r.Exec.State.dnc;
    o_stats =
      (* par.* counters depend on host timing; see Exec.Par. *)
      List.filter
        (fun (k, _) ->
          not
            (String.length k >= 4 && String.sub k 0 4 = "par."))
        (Sim.Stats.to_assoc r.Exec.State.run_stats);
  }

(* One switch drives both recycling layers, like GPRS_NO_POOL does. *)
let with_pooling b f =
  let sub_saved = Gprs.Subthread.pooling ()
  and evq_saved = Sim.Event_queue.recycling () in
  Gprs.Subthread.set_pooling b;
  Sim.Event_queue.set_recycling b;
  Fun.protect
    ~finally:(fun () ->
      Gprs.Subthread.set_pooling sub_saved;
      Sim.Event_queue.set_recycling evq_saved)
    f

(* [f] must build its own program: each leg needs fresh mutable memory. *)
let both_legs f = (with_pooling true f, with_pooling false f)

let explain_stats_diff a b =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) b.o_stats;
  let diffs =
    List.filter_map
      (fun (k, v) ->
        match Hashtbl.find_opt tbl k with
        | Some v' when v = v' -> None
        | Some v' -> Some (Printf.sprintf "%s: pooled=%g unpooled=%g" k v v')
        | None -> Some (Printf.sprintf "%s: pooled=%g unpooled=absent" k v))
      a.o_stats
  in
  let missing =
    List.filter_map
      (fun (k, v) ->
        if List.mem_assoc k a.o_stats then None
        else Some (Printf.sprintf "%s: pooled=absent unpooled=%g" k v))
      b.o_stats
  in
  String.concat "; " (diffs @ missing)

let check_identical name (pooled, unpooled) =
  checks (name ^ ": digest") unpooled.o_digest pooled.o_digest;
  checki (name ^ ": sim_cycles") unpooled.o_cycles pooled.o_cycles;
  checkb (name ^ ": dnc") unpooled.o_dnc pooled.o_dnc;
  if pooled.o_stats <> unpooled.o_stats then
    Alcotest.failf "%s: stats differ — %s" name
      (explain_stats_diff pooled unpooled)

(* Same fault-tolerance tuning as test_integration / test_fusion. *)
let gprs_k = function
  | "blackscholes" | "swaptions" | "barnes-hut" -> 1.2
  | "canneal" -> 3.0
  | _ -> 6.0

let rate_for ?cap ~k ~base () =
  let base_s =
    Sim.Time.to_seconds
      ~cycles_per_second:Vm.Costs.default.Vm.Costs.cycles_per_second base
  in
  let r = k /. base_s in
  match cap with Some c -> Float.min c r | None -> r

let baseline_cycles spec =
  (Exec.Baseline.run
     { Exec.Baseline.default_config with n_contexts }
     (build spec))
    .Exec.State.sim_cycles

(* --- all workloads, all three engines -------------------------------- *)

let test_baseline_all_workloads () =
  List.iter
    (fun (spec : Workloads.Workload.spec) ->
      let digest = spec.Workloads.Workload.digest in
      let legs =
        both_legs (fun () ->
            observe digest
              (Exec.Baseline.run
                 { Exec.Baseline.default_config with n_contexts }
                 (build spec)))
      in
      check_identical ("baseline/" ^ spec.Workloads.Workload.name) legs)
    Workloads.Suite.all

let test_gprs_all_workloads_with_faults () =
  List.iter
    (fun (spec : Workloads.Workload.spec) ->
      let name = spec.Workloads.Workload.name in
      let base = baseline_cycles spec in
      let legs =
        both_legs (fun () ->
            observe spec.Workloads.Workload.digest
              (Gprs.Engine.run
                 {
                   Gprs.Engine.default_config with
                   n_contexts;
                   injector =
                     Faults.Injector.config (rate_for ~k:(gprs_k name) ~base ());
                   max_cycles = Some (300 * base);
                 }
                 (build spec)))
      in
      check_identical ("gprs/" ^ name) legs)
    Workloads.Suite.all

let test_cpr_all_workloads_with_faults () =
  List.iter
    (fun (spec : Workloads.Workload.spec) ->
      let name = spec.Workloads.Workload.name in
      let base = baseline_cycles spec in
      let legs =
        both_legs (fun () ->
            observe spec.Workloads.Workload.digest
              (Cpr.run
                 {
                   Cpr.default_config with
                   n_contexts;
                   checkpoint_interval = 0.002;
                   injector =
                     Faults.Injector.config (rate_for ~cap:25.0 ~k:2.0 ~base ());
                   max_cycles = Some (300 * base);
                 }
                 (build spec)))
      in
      check_identical ("cpr/" ^ name) legs)
    Workloads.Suite.all

let test_gprs_basic_recovery () =
  let spec = Workloads.Suite.find "histogram" in
  let base = baseline_cycles spec in
  let legs =
    both_legs (fun () ->
        observe spec.Workloads.Workload.digest
          (Gprs.Engine.run
             {
               Gprs.Engine.default_config with
               n_contexts;
               recovery = Gprs.Engine.Basic;
               injector = Faults.Injector.config (rate_for ~k:5.0 ~base ());
               max_cycles = Some (300 * base);
             }
             (build spec)))
  in
  check_identical "gprs basic recovery" legs

(* --- directed: a recycled record is indistinguishable from a fresh one  *)

let mk_tcb ?(regs = [||]) () =
  Vm.Tcb.create ~n_barriers:2 ~tid:0 ~group:0
    ~proc:{ Vm.Isa.pname = "p"; code = [| Vm.Isa.Exit |] }
    ~args:regs

(* A sub-thread observed through everything the engine ever reads. *)
let sub_fingerprint (s : Gprs.Subthread.t) =
  Format.asprintf "%a|gd=%b cpr=%b held=%s undo=%d forked=%s pend=%s freed=%d"
    Gprs.Subthread.pp s s.Gprs.Subthread.global_dep s.Gprs.Subthread.cpr_region
    (String.concat "," (List.map string_of_int s.Gprs.Subthread.held_locks))
    (Exec.Undo_log.size s.Gprs.Subthread.undo)
    (String.concat "," (List.map string_of_int s.Gprs.Subthread.forked))
    (match s.Gprs.Subthread.pending_mutex with
    | None -> "-"
    | Some m -> string_of_int m)
    (List.length s.Gprs.Subthread.freed_blocks)

let test_recycled_sub_is_fresh () =
  with_pooling true (fun () ->
      let pool = Gprs.Subthread.pool_create () in
      let tcb = mk_tcb ~regs:[| 7; 9 |] () in
      let s = Gprs.Subthread.acquire pool ~id:0 ~tid:0 ~now:5 ~tcb in
      (* Dirty every field a past life could leak through. *)
      Gprs.Subthread.add_alias s (Gprs.Subthread.Mutex 3);
      Gprs.Subthread.add_alias s (Gprs.Subthread.Atomic_var 40);
      Gprs.Subthread.add_alias s (Gprs.Subthread.Thread_edge 2);
      s.Gprs.Subthread.global_dep <- true;
      s.Gprs.Subthread.cpr_region <- true;
      s.Gprs.Subthread.held_locks <- [ 5; 1 ];
      s.Gprs.Subthread.forked <- [ 9 ];
      s.Gprs.Subthread.pending_mutex <- Some 2;
      s.Gprs.Subthread.freed_blocks <- [ (100, 16) ];
      ignore (Exec.Undo_log.note s.Gprs.Subthread.undo (Exec.Undo_log.K_mem 8) ~old:1);
      s.Gprs.Subthread.status <- Gprs.Subthread.Squashed;
      Gprs.Subthread.release pool s;
      (* Re-acquire (the pool hands the same record back) with a distinct
         TCB and compare against an unpooled fresh record. *)
      let tcb2 = mk_tcb ~regs:[| 11 |] () in
      tcb2.Vm.Tcb.pc <- 1;
      let r = Gprs.Subthread.acquire pool ~id:42 ~tid:3 ~now:77 ~tcb:tcb2 in
      checkb "record was recycled" true (r == s);
      let fresh =
        Gprs.Subthread.make ~id:42 ~tid:3 ~now:77 ~saved:(Vm.Tcb.copy_state tcb2)
      in
      checks "recycled ≡ fresh" (sub_fingerprint fresh) (sub_fingerprint r);
      (* The recycled saved buffer holds tcb2's state, not tcb's. *)
      let probe = mk_tcb () in
      Vm.Tcb.restore_state probe r.Gprs.Subthread.saved;
      checki "saved pc" 1 probe.Vm.Tcb.pc;
      checki "saved reg0" 11 probe.Vm.Tcb.regs.(0);
      checki "saved reg1" 0 probe.Vm.Tcb.regs.(1);
      let hits, misses, live_hw = Gprs.Subthread.pool_stats pool in
      checki "pool hits" 1 hits;
      checki "pool misses" 1 misses;
      checki "live high-water" 1 live_hw)

(* qcheck flavour: an arbitrary mutation sequence, then recycle — the
   fingerprint must always equal a fresh record's. *)
let qcase ?(count = 15) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let prop_recycled_sub_carries_nothing =
  qcase ~count:100 "pool: recycled sub-thread carries no prior state"
    QCheck2.Gen.(
      pair (list_size (int_range 0 20) (int_range 0 200)) (int_range 0 1000))
    (fun (codes, salt) ->
      with_pooling true (fun () ->
          let pool = Gprs.Subthread.pool_create () in
          let tcb = mk_tcb ~regs:[| salt |] () in
          let s = Gprs.Subthread.acquire pool ~id:salt ~tid:0 ~now:0 ~tcb in
          List.iter
            (fun c ->
              let obj = c / 5 in
              Gprs.Subthread.add_alias s
                (match c mod 5 with
                | 0 -> Gprs.Subthread.Mutex obj
                | 1 -> Gprs.Subthread.Atomic_var obj
                | 2 -> Gprs.Subthread.Condvar obj
                | 3 -> Gprs.Subthread.Barrier_obj obj
                | _ -> Gprs.Subthread.Thread_edge obj))
            codes;
          if salt mod 2 = 0 then s.Gprs.Subthread.global_dep <- true;
          s.Gprs.Subthread.held_locks <- codes;
          s.Gprs.Subthread.forked <- [ salt ];
          ignore
            (Exec.Undo_log.note s.Gprs.Subthread.undo
               (Exec.Undo_log.K_atomic (salt mod 7))
               ~old:salt);
          Gprs.Subthread.release pool s;
          let tcb2 = mk_tcb () in
          let r = Gprs.Subthread.acquire pool ~id:1 ~tid:1 ~now:9 ~tcb:tcb2 in
          let fresh =
            Gprs.Subthread.make ~id:1 ~tid:1 ~now:9
              ~saved:(Vm.Tcb.copy_state tcb2)
          in
          sub_fingerprint r = sub_fingerprint fresh))

(* --- directed: event-queue cell recycling ----------------------------- *)

(* A handle kept across the cell's recycling must not cancel the cell's
   new occupant. *)
let test_evq_stale_handle_cannot_cancel () =
  with_pooling true (fun () ->
      let q = Sim.Event_queue.create () in
      let h1 = Sim.Event_queue.schedule q ~time:1 "a" in
      Alcotest.(check (option (pair int string)))
        "first event fires" (Some (1, "a"))
        (Sim.Event_queue.pop q);
      (* "a"'s cell is now on the free list; "b" reuses it. *)
      let _h2 = Sim.Event_queue.schedule q ~time:2 "b" in
      let _, recycled = Sim.Event_queue.cell_stats q in
      checki "cell was recycled" 1 recycled;
      Sim.Event_queue.cancel q h1;
      Alcotest.(check (option (pair int string)))
        "stale cancel must not kill the new occupant" (Some (2, "b"))
        (Sim.Event_queue.pop q))

let test_evq_recycles_and_is_invisible () =
  let drain q =
    let rec go acc =
      match Sim.Event_queue.pop q with
      | None -> List.rev acc
      | Some ev -> go (ev :: acc)
    in
    go []
  in
  let script recycle =
    with_pooling recycle (fun () ->
        let q = Sim.Event_queue.create () in
        let hs =
          List.init 20 (fun i -> Sim.Event_queue.schedule q ~time:i (i * 3))
        in
        List.iteri
          (fun i h -> if i mod 4 = 0 then Sim.Event_queue.cancel q h)
          hs;
        let first = drain q in
        (* Second wave reuses popped cells (only in the recycling leg). *)
        let hs2 =
          List.init 20 (fun i -> Sim.Event_queue.schedule q ~time:(100 + i) i)
        in
        List.iteri
          (fun i h -> if i mod 3 = 0 then Sim.Event_queue.cancel q h)
          hs2;
        (first @ drain q, Sim.Event_queue.cell_stats q))
  in
  let events_on, (alloc_on, rec_on) = script true in
  let events_off, (alloc_off, rec_off) = script false in
  Alcotest.(check (list (pair int int)))
    "recycling is invisible to pop order" events_off events_on;
  checki "no recycling when disabled" 0 rec_off;
  checki "all cells fresh when disabled" 40 alloc_off;
  checkb "recycling actually happened" true (rec_on > 0);
  checkb "fewer fresh cells when recycling" true (alloc_on < alloc_off)

(* --- property: random programs under faults, pooled ≡ unpooled -------- *)

let obs_equal a b =
  a.o_digest = b.o_digest && a.o_cycles = b.o_cycles && a.o_dnc = b.o_dnc
  && a.o_stats = b.o_stats

let prop_gprs_pooling_invisible =
  qcase "gprs: pooled ≡ unpooled on random locked counters"
    QCheck2.Gen.(
      quad (int_range 2 5) (int_range 4 14) (int_range 1 10_000)
        (int_range 1 6))
    (fun (workers, iters, seed, rate10) ->
      let run () =
        observe
          (fun r -> string_of_int (Vm.Mem.read r.Exec.State.final_mem 0))
          (Gprs.Engine.run
             {
               Gprs.Engine.default_config with
               n_contexts;
               seed;
               injector =
                 Faults.Injector.config ~seed ~process:Faults.Injector.Poisson
                   (float_of_int rate10 *. 10.0);
               max_cycles = Some 2_000_000_000;
             }
             (Tprog.locked_counter ~work:20_000 ~workers ~iters ()))
      in
      let pooled, unpooled = both_legs run in
      obs_equal pooled unpooled)

let suite =
  [
    Alcotest.test_case "baseline: all workloads bit-identical" `Slow
      test_baseline_all_workloads;
    Alcotest.test_case "gprs: all workloads + faults bit-identical" `Slow
      test_gprs_all_workloads_with_faults;
    Alcotest.test_case "cpr: all workloads + faults bit-identical" `Slow
      test_cpr_all_workloads_with_faults;
    Alcotest.test_case "gprs: basic recovery bit-identical" `Slow
      test_gprs_basic_recovery;
    Alcotest.test_case "pool: recycled sub ≡ fresh sub" `Quick
      test_recycled_sub_is_fresh;
    prop_recycled_sub_carries_nothing;
    Alcotest.test_case "evq: stale handle cannot cancel recycled cell" `Quick
      test_evq_stale_handle_cannot_cancel;
    Alcotest.test_case "evq: recycling invisible + counted" `Quick
      test_evq_recycles_and_is_invisible;
    prop_gprs_pooling_invisible;
  ]
