(* Race detection, cross-validated: directed racy fixtures must be
   caught by BOTH the static lockset pass ([Lint.Race]) and the dynamic
   FastTrack sanitizer ([Exec.Tsan]) under every engine; the shipped
   workload suite must be clean on both sides; and qcheck ties the two
   together (dropping a lock from a well-formed generated program is
   flagged statically, and any dynamic report implies a static one). *)

open Vm.Builder

let checkb = Alcotest.(check bool)

let static_diags p = Lint.Race.program p
let static_racy p =
  Lint.Check.has_kind Lint.Diagnostic.Race_unprotected (static_diags p)

(* Dynamic run with the sanitizer forced on; restores the global flag so
   surrounding tests keep their bit-identical off-leg. *)
let run_dyn ~engine ?(contexts = 4) p =
  let was = Exec.Tsan.enabled () in
  Exec.Tsan.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Exec.Tsan.set_enabled was)
    (fun () ->
      match engine with
      | `Pthreads ->
        Exec.Baseline.run
          { Exec.Baseline.default_config with n_contexts = contexts }
          p
      | `Cpr ->
        Cpr.run { Cpr.default_config with n_contexts = contexts } p
      | `Gprs ->
        Gprs.Engine.run ~lint:`Off
          { Gprs.Engine.default_config with n_contexts = contexts }
          p)

let dyn_races ~engine p = (run_dyn ~engine p).Exec.State.races

let engines = [ ("pthreads", `Pthreads); ("cpr", `Cpr); ("gprs", `Gprs) ]

let expect_both_catch name p =
  checkb (name ^ ": static pass flags the race") true (static_racy p);
  List.iter
    (fun (ename, e) ->
      checkb
        (Printf.sprintf "%s: %s sanitizer observes the race" name ename)
        true
        (dyn_races ~engine:e p <> []))
    engines

(* --- directed racy fixtures ------------------------------------------- *)

(* Two instances of the same worker write word 7 with no lock at all:
   the canonical unlocked write/write race. *)
let unlocked_ww_prog () =
  let w = proc "worker" in
  work_const w 5 (fun env -> env.Vm.Env.write 7 env.Vm.Env.tid);
  exit_ w;
  let m = proc "main" in
  fork m ~group:0 ~proc:"worker" ~dst:1 (fun _ -> [||]);
  fork m ~group:0 ~proc:"worker" ~dst:2 (fun _ -> [||]);
  join_reg m 1;
  join_reg m 2;
  exit_ m;
  program ~mem_words:64 ~entry:"main" [ finish m; finish w ]

let unlocked_write_write () =
  expect_both_catch "unlocked w/w" (unlocked_ww_prog ())

(* Writer guards word 7 with mutex 0, reader with mutex 1: both sides
   are locked, but the locksets are disjoint, so nothing orders them. *)
let disjoint_locks_prog () =
  let wr = proc "writer" in
  lock_const wr 0;
  work_const wr 5 (fun env -> env.Vm.Env.write 7 1);
  unlock_const wr 0;
  exit_ wr;
  let rd = proc "reader" in
  lock_const rd 1;
  work_const rd 5 (fun env -> Vm.Env.set env 0 (env.Vm.Env.read 7));
  unlock_const rd 1;
  exit_ rd;
  let m = proc "main" in
  fork m ~group:0 ~proc:"writer" ~dst:1 (fun _ -> [||]);
  fork m ~group:0 ~proc:"reader" ~dst:2 (fun _ -> [||]);
  join_reg m 1;
  join_reg m 2;
  exit_ m;
  program ~mem_words:64 ~n_mutexes:2 ~entry:"main"
    [ finish m; finish wr; finish rd ]

let write_read_disjoint_locks () =
  expect_both_catch "disjoint locks w/r" (disjoint_locks_prog ())

(* The lock id comes in as a fork argument that differs between the two
   instances, so the static pass sees an unresolved (Top) id. An
   unresolved lock must never prove two sites use the SAME mutex —
   and indeed at runtime the instances hold different mutexes while
   both writing word 7. *)
let top_lock_prog () =
  let w = proc "worker" in
  lock w (fun r -> r.(0));
  work_const w 5 (fun env -> env.Vm.Env.write 7 env.Vm.Env.tid);
  unlock w (fun r -> r.(0));
  exit_ w;
  let m = proc "main" in
  fork m ~group:0 ~proc:"worker" ~dst:1 (fun _ -> [| 0 |]);
  fork m ~group:0 ~proc:"worker" ~dst:2 (fun _ -> [| 1 |]);
  join_reg m 1;
  join_reg m 2;
  exit_ m;
  program ~mem_words:64 ~n_mutexes:2 ~entry:"main" [ finish m; finish w ]

let race_behind_top_lock () =
  expect_both_catch "race behind unresolved lock id" (top_lock_prog ())

(* --- fixtures that must stay clean ------------------------------------ *)

let clean_fixtures () =
  List.iter
    (fun (name, p) ->
      checkb (name ^ ": no static race") false (static_racy p);
      checkb (name ^ ": no dynamic race") true (dyn_races ~engine:`Gprs p = []))
    [
      ("locked_counter", Tprog.locked_counter ~workers:3 ~iters:4 ());
      ("pipeline", Tprog.pipeline ~blocks:6 ~consumers:2 ());
      ("fork_join_sum", Tprog.fork_join_sum ~workers:3 ());
      ("nonstd_region", Tprog.nonstd_region ~workers:2 ~iters:3 ());
    ]

(* --- probe fuel degradation ------------------------------------------- *)

let probe_fuel_note () =
  (* The Work body touches memory more times than the probe budget, so
     the summary degrades and the lint must say so rather than stay
     silent about the reduced coverage. *)
  let m = proc "main" in
  work_const m 1 (fun env ->
      let acc = ref 0 in
      for _ = 1 to Lint.Absval.probe_fuel + 10 do
        acc := !acc + env.Vm.Env.read 0
      done;
      Vm.Env.set env 1 !acc);
  exit_ m;
  let p = program ~mem_words:64 ~entry:"main" [ finish m ] in
  checkb "fuel exhaustion surfaces as a finding" true
    (Lint.Check.has_kind Lint.Diagnostic.Probe_fuel (static_diags p));
  checkb "fuel exhaustion alone is not an error" false
    (Lint.Check.has_errors (static_diags p))

(* --- shipped workloads: clean on both sides --------------------------- *)

let workload_sweep_static () =
  List.iter
    (fun spec ->
      let p =
        spec.Workloads.Workload.build ~n_contexts:4
          ~grain:Workloads.Workload.Default ~scale:0.1
      in
      let racy =
        List.filter
          (fun d -> d.Lint.Diagnostic.kind = Lint.Diagnostic.Race_unprotected)
          (static_diags p)
      in
      checkb
        (Printf.sprintf "%s: statically race-free (got %d findings)"
           spec.Workloads.Workload.name (List.length racy))
        true (racy = []))
    Workloads.Suite.all

let workload_sweep_dynamic () =
  List.iter
    (fun spec ->
      let p =
        spec.Workloads.Workload.build ~n_contexts:4
          ~grain:Workloads.Workload.Default ~scale:0.1
      in
      List.iter
        (fun (ename, e) ->
          let rs = dyn_races ~engine:e p in
          checkb
            (Printf.sprintf "%s/%s: dynamically race-free (got %d reports)"
               spec.Workloads.Workload.name ename (List.length rs))
            true (rs = []))
        [ ("pthreads", `Pthreads); ("gprs", `Gprs) ])
    Workloads.Suite.all

(* --- sanitizer plumbing ----------------------------------------------- *)

let disabled_reports_nothing () =
  let was = Exec.Tsan.enabled () in
  Exec.Tsan.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Exec.Tsan.set_enabled was)
    (fun () ->
      let r =
        Exec.Baseline.run
          { Exec.Baseline.default_config with n_contexts = 4 }
          (unlocked_ww_prog ())
      in
      checkb "disabled sanitizer reports nothing even on a racy program"
        true
        (r.Exec.State.races = []))

let report_sites_make_sense () =
  let rs = dyn_races ~engine:`Pthreads (unlocked_ww_prog ()) in
  checkb "at least one report" true (rs <> []);
  List.iter
    (fun r ->
      checkb "report names word 7" true (r.Exec.Tsan.addr = 7);
      checkb "reporting thread is a worker" true
        (r.Exec.Tsan.proc2 = "worker");
      checkb "distinct threads" true (r.Exec.Tsan.tid1 <> r.Exec.Tsan.tid2))
    rs

(* --- qcheck: the two detectors agree ---------------------------------- *)

(* A well-formed program: [n_mut] mutexes, the addr->mutex map is
   [addr mod n_mut], and a worker is a list of segments, each taking one
   mutex and read-modify-writing only addresses it protects. Main forks
   the worker twice and joins both, so every segment races with its twin
   unless the locks order them. [drop] removes the lock/unlock pair of
   one segment. *)
let build_gen_prog ~n_mut ~segs ~drop =
  let w = proc "worker" in
  List.iteri
    (fun i (m, ks) ->
      let addrs = List.map (fun k -> m + (k * n_mut)) ks in
      let dropped = drop = Some i in
      if not dropped then lock_const w m;
      work_const w 3 (fun env ->
          List.iter
            (fun a -> env.Vm.Env.write a (env.Vm.Env.read a + 1))
            addrs);
      if not dropped then unlock_const w m)
    segs;
  exit_ w;
  let main = proc "main" in
  fork main ~group:0 ~proc:"worker" ~dst:1 (fun _ -> [||]);
  fork main ~group:0 ~proc:"worker" ~dst:2 (fun _ -> [||]);
  join_reg main 1;
  join_reg main 2;
  exit_ main;
  program ~mem_words:64 ~n_mutexes:n_mut ~entry:"main"
    [ finish main; finish w ]

let gen_shape =
  QCheck2.Gen.(
    int_range 1 3 >>= fun n_mut ->
    pair (return n_mut)
      (list_size (int_range 1 4)
         (pair
            (int_range 0 (n_mut - 1))
            (list_size (int_range 1 3) (int_range 0 4)))))

let case ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let prop_wellformed_clean =
  case "race: well-formed locked program is clean on both sides"
    gen_shape
    (fun (n_mut, segs) ->
      let p = build_gen_prog ~n_mut ~segs ~drop:None in
      (not (static_racy p)) && dyn_races ~engine:`Pthreads p = [])

let prop_dropped_lock_flagged =
  case "race: dropping any one lock is flagged statically"
    QCheck2.Gen.(pair gen_shape (int_range 0 3))
    (fun ((n_mut, segs), which) ->
      let drop = Some (which mod List.length segs) in
      static_racy (build_gen_prog ~n_mut ~segs ~drop))

let prop_dynamic_implies_static =
  case "race: every dynamic report implies a static finding"
    QCheck2.Gen.(pair gen_shape (option (int_range 0 3)))
    (fun ((n_mut, segs), which) ->
      let drop = Option.map (fun i -> i mod List.length segs) which in
      let p = build_gen_prog ~n_mut ~segs ~drop in
      dyn_races ~engine:`Pthreads p = [] || static_racy p)

let suite =
  [
    Alcotest.test_case "unlocked write/write" `Quick unlocked_write_write;
    Alcotest.test_case "write/read under disjoint locks" `Quick
      write_read_disjoint_locks;
    Alcotest.test_case "race behind unresolved lock id" `Quick
      race_behind_top_lock;
    Alcotest.test_case "clean fixtures stay clean" `Quick clean_fixtures;
    Alcotest.test_case "probe fuel note" `Quick probe_fuel_note;
    Alcotest.test_case "workload suite: static race-free" `Quick
      workload_sweep_static;
    Alcotest.test_case "workload suite: dynamic race-free" `Quick
      workload_sweep_dynamic;
    Alcotest.test_case "disabled sanitizer is silent" `Quick
      disabled_reports_nothing;
    Alcotest.test_case "report sites make sense" `Quick
      report_sites_make_sense;
    prop_wellformed_clean;
    prop_dropped_lock_flagged;
    prop_dynamic_implies_static;
  ]
