let () =
  Alcotest.run "gprs"
    [
      ("sim", Test_sim.suite);
      ("vm", Test_vm.suite);
      ("sched", Test_sched.suite);
      ("exec", Test_exec.suite);
      ("wal", Test_wal.suite);
      ("faults", Test_faults.suite);
      ("order", Test_order.suite);
      ("gprs", Test_gprs.suite);
      ("cpr", Test_cpr.suite);
      ("recovery", Test_recovery.suite);
      ("workloads", Test_workloads.suite);
      ("analysis", Test_analysis.suite);
      ("lint", Test_lint.suite);
      ("integration", Test_integration.suite);
      ("fusion", Test_fusion.suite);
      ("compile", Test_compile.suite);
      ("pool", Test_pool.suite);
      ("crash", Test_crash.suite);
      ("race", Test_race.suite);
      ("par", Test_par.suite);
      ("service", Test_service.suite);
      ("points", Test_points.suite);
      ("properties", Props.suite);
    ]
