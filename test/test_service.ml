(* The daemon must be a transparent execution surface: a daemon-served
   run — cold cache or warm, coalesced or not — is bit-identical (digest,
   cycles, DNC, every non-par stat) to the equivalent one-shot CLI run,
   for every workload x engine x fault leg. Plus the service plumbing
   itself: the JSON codec round-trips, the LRU cache evicts and
   deduplicates in-flight builds, the shared pool survives concurrent
   submitters and quiesce/respawn cycles, bounded admission sheds at a
   deterministic point, identical queued scenarios coalesce into one
   execution, and both idle watchdogs release their domains. *)

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let checki = Alcotest.(check int)

module J = Server.Json

let jget = function
  | Ok v -> v
  | Error e -> Alcotest.fail e

let jstr k j = jget (J.str k j)
let jint k j = jget (J.int k j)
let jbool k j = jget (J.bool k j)

(* --- json codec --------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    J.Obj
      [
        ("op", J.Str "run");
        ("n", J.Int (-42));
        ("x", J.Float 0.25);
        ("flag", J.Bool true);
        ("nil", J.Null);
        ("s", J.Str "a\"b\\c\nd\tz");
        ("l", J.List [ J.Int 1; J.Str "two"; J.Obj []; J.List [] ]);
      ]
  in
  (match J.of_string (J.to_string v) with
  | Ok v' -> checkb "value round-trips" true (v = v')
  | Error e -> Alcotest.fail e);
  (* the rendering is a single protocol line even for escaped input *)
  checkb "no raw newline" true
    (not (String.contains (J.to_string v) '\n'));
  (* ints survive exactly; floats with enough digits *)
  (match J.of_string "{\"seed\": 123456789012345, \"f\": 0.1}" with
  | Ok j ->
    checki "int field" 123456789012345 (jint "seed" j);
    checkb "float field" true (jget (J.float "f" j) = 0.1)
  | Error e -> Alcotest.fail e);
  (* accessor defaults paper over missing fields, not present ones *)
  let j = J.Obj [ ("a", J.Int 3) ] in
  checki "default miss" 7 (jget (J.int ~default:7 "b" j));
  checki "default hit" 3 (jget (J.int ~default:7 "a" j));
  (* a present field with the wrong type errors; the default never
     silently stands in for it ({"seed":"42"} must not run as seed 7) *)
  let wrong = J.Obj [ ("seed", J.Str "42"); ("name", J.Int 1) ] in
  checkb "wrong-typed int errors despite default" true
    (Result.is_error (J.int ~default:7 "seed" wrong));
  checkb "wrong-typed str errors despite default" true
    (Result.is_error (J.str ~default:"x" "name" wrong));
  checkb "wrong-typed bool errors despite default" true
    (Result.is_error (J.bool ~default:true "seed" wrong));
  checkb "wrong-typed float errors despite default" true
    (Result.is_error (J.float ~default:1.0 "seed" wrong));
  checkb "trailing junk rejected" true
    (Result.is_error (J.of_string "{} x"));
  checkb "bare garbage rejected" true (Result.is_error (J.of_string "nope"))

(* --- program cache ------------------------------------------------------ *)

let dummy_entry =
  lazy
    (let spec = Workloads.Suite.find "histogram" in
     let program =
       spec.Workloads.Workload.build ~n_contexts:2
         ~grain:Workloads.Workload.Default ~scale:0.01
     in
     {
       Server.Cache.e_spec = spec;
       e_program = program;
       e_blocks = Vm.Block.analyze program;
       e_lint_errors = 0;
     })

let test_cache_lru () =
  let t = Server.Cache.create ~capacity:2 in
  let builds = ref 0 in
  let build () =
    incr builds;
    Lazy.force dummy_entry
  in
  let touch key = ignore (Server.Cache.find t ~key ~build) in
  touch "a";
  (* miss *)
  touch "b";
  (* miss *)
  let _, hit_a = Server.Cache.find t ~key:"a" ~build in
  checkb "a still resident" true hit_a;
  touch "c";
  (* miss: evicts b (LRU; a was just touched) *)
  touch "b";
  (* miss again: b was evicted; now evicts a *)
  let _, hit_c = Server.Cache.find t ~key:"c" ~build in
  checkb "c survived b's reinsertion" true hit_c;
  let s = Server.Cache.stats t in
  checki "length capped" 2 s.Server.Cache.length;
  checki "hits" 2 s.Server.Cache.hits;
  checki "misses" 4 s.Server.Cache.misses;
  checki "evictions" 2 s.Server.Cache.evictions;
  checki "builds = misses" 4 !builds;
  Server.Cache.clear t;
  checki "clear empties" 0 (Server.Cache.stats t).Server.Cache.length

let test_cache_inflight_dedup () =
  let t = Server.Cache.create ~capacity:4 in
  let builds = Atomic.make 0 in
  let build () =
    Atomic.incr builds;
    Thread.delay 0.05;
    Lazy.force dummy_entry
  in
  let hits = Atomic.make 0 in
  let finders =
    List.init 4 (fun _ ->
        Thread.create
          (fun () ->
            let _, hit = Server.Cache.find t ~key:"k" ~build in
            if hit then Atomic.incr hits)
          ())
  in
  List.iter Thread.join finders;
  checki "one build for a cold burst" 1 (Atomic.get builds);
  checki "the other finders parked and hit" 3 (Atomic.get hits)

(* --- shared pool -------------------------------------------------------- *)

let test_shared_pool () =
  let p = Analysis.Pool.shared_create ~jobs:2 in
  checki "lazy spawn" 0 (Analysis.Pool.shared_workers p);
  let count = Atomic.make 0 in
  let submitters =
    List.init 4 (fun _ ->
        Thread.create
          (fun () ->
            for _ = 1 to 50 do
              Analysis.Pool.shared_submit p (fun () -> Atomic.incr count)
            done)
          ())
  in
  List.iter Thread.join submitters;
  Analysis.Pool.shared_wait p;
  checki "every concurrent submission ran" 200 (Atomic.get count);
  (* a raising task must not take a worker down with it *)
  Analysis.Pool.shared_submit p (fun () -> failwith "boom");
  Analysis.Pool.shared_submit p (fun () -> Atomic.incr count);
  Analysis.Pool.shared_wait p;
  checki "pool survives a raising task" 201 (Atomic.get count);
  Analysis.Pool.shared_quiesce p;
  checki "quiesce joins the domains" 0 (Analysis.Pool.shared_workers p);
  (* the pool is reusable after quiesce: submit respawns *)
  Analysis.Pool.shared_submit p (fun () -> Atomic.incr count);
  Analysis.Pool.shared_wait p;
  checki "respawn after quiesce" 202 (Atomic.get count);
  Analysis.Pool.shared_quiesce p

(* Submitters racing the housekeeper's quiesce: no task may strand in
   the queue (hanging shared_wait) and no quiesce may deadlock on its
   join, whichever way the two interleave. *)
let test_shared_pool_quiesce_race () =
  let p = Analysis.Pool.shared_create ~jobs:2 in
  let count = Atomic.make 0 in
  let total = 400 in
  let stop_quiescer = Atomic.make false in
  let quiescer =
    Thread.create
      (fun () ->
        while not (Atomic.get stop_quiescer) do
          Analysis.Pool.shared_quiesce p;
          Thread.yield ()
        done)
      ()
  in
  let submitters =
    List.init 4 (fun _ ->
        Thread.create
          (fun () ->
            for _ = 1 to total / 4 do
              Analysis.Pool.shared_submit p (fun () -> Atomic.incr count);
              Thread.yield ()
            done)
          ())
  in
  List.iter Thread.join submitters;
  Analysis.Pool.shared_wait p;
  checki "no task stranded by a racing quiesce" total (Atomic.get count);
  Atomic.set stop_quiescer true;
  Thread.join quiescer;
  Analysis.Pool.shared_quiesce p;
  checki "final quiesce joins everything" 0 (Analysis.Pool.shared_workers p)

(* --- daemon helpers ----------------------------------------------------- *)

let with_daemon ?(cfg = Server.Daemon.default_config) f =
  let d = Server.Daemon.start cfg in
  Fun.protect ~finally:(fun () -> Server.Daemon.stop d) @@ fun () ->
  let c = Server.Client.connect (Server.Daemon.bound_addr d) in
  Fun.protect ~finally:(fun () -> Server.Client.close c) @@ fun () -> f d c

let scenario ?(engine = "gprs") ?(rate = 0.0) ?(seed = 7) ~id ~workload () =
  {
    Server.Scenario.id;
    workload;
    engine;
    ordering = "balance-aware";
    contexts = 4;
    scale = 0.02;
    grain = "default";
    seed;
    rate;
    interval = 0.05;
    want_stats = true;
  }

(* par.* counters depend on host timing (see Exec.Par); everything else
   must match bit-for-bit. *)
let filter_par =
  List.filter (fun (k, _) ->
      not (String.length k >= 4 && String.sub k 0 4 = "par."))

let stats_of_reply j =
  match J.member "stats" j with
  | Some (J.Obj fields) ->
    List.map
      (fun (k, v) ->
        ( k,
          match v with
          | J.Float f -> f
          | J.Int i -> float_of_int i
          | _ -> Alcotest.fail ("non-numeric stat " ^ k) ))
      fields
  | _ -> []

(* --- daemon == one-shot equivalence sweep ------------------------------- *)

let test_equivalence_sweep () =
  with_daemon @@ fun _d c ->
  List.iter
    (fun workload ->
      (* first request per workload is a genuine cold decode *)
      Server.Client.cache_clear c;
      let first = ref true in
      List.iter
        (fun engine ->
          List.iter
            (fun rate ->
              let scn = scenario ~engine ~rate ~id:"x" ~workload () in
              let local =
                let spec, program = Server.Scenario.build_program scn in
                Server.Scenario.run ~spec ~program scn
              in
              List.iter
                (fun tag ->
                  let label what =
                    Printf.sprintf "%s %s/%s rate=%.0f %s" what workload
                      engine rate tag
                  in
                  let j =
                    Server.Client.run_sync c
                      { scn with Server.Scenario.id = tag }
                  in
                  checks (label "event") "done" (jstr "event" j);
                  (* the very first dispatch after cache_clear misses;
                     every later one must be served from cache *)
                  checkb (label "cached") (not !first) (jbool "cached" j);
                  first := false;
                  checks (label "digest") local.Server.Scenario.digest
                    (jstr "digest" j);
                  checki (label "sim_cycles")
                    local.Server.Scenario.sim_cycles (jint "sim_cycles" j);
                  checkb (label "sim_seconds") true
                    (jget (J.float "sim_seconds" j)
                    = local.Server.Scenario.sim_seconds);
                  checkb (label "dnc") local.Server.Scenario.dnc
                    (jbool "dnc" j);
                  checki (label "races") local.Server.Scenario.races
                    (jint "races" j);
                  Alcotest.(check (list (pair string (float 0.0))))
                    (label "stats")
                    (filter_par local.Server.Scenario.stats)
                    (filter_par (stats_of_reply j)))
                [ "cold"; "warm" ])
            [ 0.0; 60.0 ])
        [ "pthreads"; "cpr"; "gprs" ])
    Workloads.Suite.names

(* --- bounded admission: deterministic shed ------------------------------ *)

(* One connection, one pool worker: a sleep occupies the worker, then
   three distinct runs arrive back-to-back. The reader thread updates the
   admission counters synchronously per line, so with depth 3 the shed
   point is exact — sleep + two runs admitted, the third refused with
   429 — independent of execution timing. Two rounds pin determinism. *)
let test_deterministic_shed () =
  let cfg =
    {
      Server.Daemon.default_config with
      jobs = 1;
      depth = 3;
      idle_quiesce_ms = 0;
    }
  in
  with_daemon ~cfg @@ fun d c ->
  for round = 1 to 2 do
    let rid i = Printf.sprintf "r%d-%d" round i in
    Server.Client.send c
      (J.Obj
         [
           ("op", J.Str "sleep");
           ("id", J.Str (rid 0));
           ("ms", J.Int 400);
         ]);
    for i = 1 to 3 do
      Server.Client.send c
        (Server.Scenario.to_json
           (scenario ~id:(rid i) ~seed:((100 * round) + i)
              ~workload:"histogram" ()))
    done;
    let shed, _ = Server.Client.await c ~id:(rid 3) in
    checks "third run refused" "error" (jstr "event" shed);
    checki "with 429" 429 (jint "code" shed);
    for i = 0 to 2 do
      let j, _ = Server.Client.await c ~id:(rid i) in
      checks (Printf.sprintf "admitted %s completes" (rid i)) "done"
        (jstr "event" j)
    done
  done;
  let s = Server.Daemon.stats_json d in
  checki "exactly one shed per round" 2 (jint "shed" s)

(* --- coalescing --------------------------------------------------------- *)

let test_coalescing () =
  let cfg =
    { Server.Daemon.default_config with jobs = 1; idle_quiesce_ms = 0 }
  in
  with_daemon ~cfg @@ fun d c ->
  (* hold the only worker so both identical scenarios are queued *)
  Server.Client.send c
    (J.Obj [ ("op", J.Str "sleep"); ("id", J.Str "s"); ("ms", J.Int 300) ]);
  let scn = scenario ~id:"a" ~workload:"histogram" () in
  Server.Client.send c (Server.Scenario.to_json scn);
  Server.Client.send c
    (Server.Scenario.to_json { scn with Server.Scenario.id = "b" });
  let ja, _ = Server.Client.await c ~id:"a" in
  let jb, _ = Server.Client.await c ~id:"b" in
  checks "a done" "done" (jstr "event" ja);
  checks "b done" "done" (jstr "event" jb);
  checks "one execution, same digest" (jstr "digest" ja) (jstr "digest" jb);
  ignore (Server.Client.await c ~id:"s");
  let s = Server.Daemon.stats_json d in
  checki "b folded into a's group" 1 (jint "coalesced" s);
  checki "two work units executed" 2 (jint "served" s);
  checki "nothing shed" 0 (jint "shed" s)

(* --- protocol errors ---------------------------------------------------- *)

let test_protocol_errors () =
  with_daemon @@ fun _d c ->
  let unknown_op = Server.Client.op c (J.Obj [ ("op", J.Str "frobnicate") ]) in
  checki "unknown op is 400" 400 (jint "code" unknown_op);
  let bad_engine =
    Server.Client.run_sync c
      (scenario ~engine:"quantum" ~id:"e1" ~workload:"histogram" ())
  in
  checks "unknown engine refused" "error" (jstr "event" bad_engine);
  checki "with 400" 400 (jint "code" bad_engine);
  let bad_workload =
    Server.Client.run_sync c (scenario ~id:"e2" ~workload:"nope" ())
  in
  checks "unknown workload refused" "error" (jstr "event" bad_workload);
  checki "with 400" 400 (jint "code" bad_workload)

(* --- idle watchdogs ----------------------------------------------------- *)

let poll_until ~msg pred =
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then Alcotest.fail msg
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

let test_daemon_idle_quiesce () =
  let cfg =
    { Server.Daemon.default_config with jobs = 1; idle_quiesce_ms = 50 }
  in
  with_daemon ~cfg @@ fun d c ->
  let j = Server.Client.run_sync c (scenario ~id:"w" ~workload:"histogram" ()) in
  checks "run done" "done" (jstr "event" j);
  poll_until ~msg:"housekeeper never joined the idle pool" (fun () ->
      jint "pool_workers" (Server.Daemon.stats_json d) = 0);
  (* the next request respawns the pool transparently *)
  let j2 =
    Server.Client.run_sync c (scenario ~id:"w2" ~seed:8 ~workload:"histogram" ())
  in
  checks "post-quiesce run done" "done" (jstr "event" j2)

let test_par_idle_quiesce () =
  let saved_j = Exec.Par.jobs () in
  let saved_ms = Exec.Par.idle_timeout_ms () in
  Fun.protect ~finally:(fun () ->
      Exec.Par.set_idle_timeout_ms saved_ms;
      Exec.Par.set_jobs saved_j;
      Exec.Par.quiesce ())
  @@ fun () ->
  Exec.Par.set_idle_timeout_ms 0;
  Exec.Par.set_jobs 3;
  let spec = Workloads.Suite.find "histogram" in
  let program =
    spec.Workloads.Workload.build ~n_contexts:4
      ~grain:Workloads.Workload.Default ~scale:0.02
  in
  let run () =
    ignore
      (Gprs.Engine.run
         { Gprs.Engine.default_config with n_contexts = 4; seed = 7 }
         program)
  in
  run ();
  checkb "window workers live after a -j 3 run" true
    (Exec.Par.workers_live () > 0);
  Exec.Par.set_idle_timeout_ms 40;
  poll_until ~msg:"idle watchdog never joined the window workers" (fun () ->
      Exec.Par.workers_live () = 0);
  (* and they come back for the next run *)
  run ();
  checkb "workers respawn on demand" true (Exec.Par.workers_live () > 0)

let suite =
  [
    Alcotest.test_case "json codec round-trips" `Quick test_json_roundtrip;
    Alcotest.test_case "cache: LRU eviction and stats" `Quick test_cache_lru;
    Alcotest.test_case "cache: cold burst builds once" `Quick
      test_cache_inflight_dedup;
    Alcotest.test_case "shared pool: concurrent submit, quiesce, respawn"
      `Quick test_shared_pool;
    Alcotest.test_case "shared pool: submit racing quiesce strands nothing"
      `Quick test_shared_pool_quiesce_race;
    Alcotest.test_case "daemon == one-shot for every workload x engine x leg"
      `Quick test_equivalence_sweep;
    Alcotest.test_case "admission: deterministic overflow shed" `Quick
      test_deterministic_shed;
    Alcotest.test_case "admission: identical scenarios coalesce" `Quick
      test_coalescing;
    Alcotest.test_case "protocol errors carry 4xx codes" `Quick
      test_protocol_errors;
    Alcotest.test_case "daemon housekeeper joins the idle pool" `Quick
      test_daemon_idle_quiesce;
    Alcotest.test_case "Par idle watchdog joins window workers" `Quick
      test_par_idle_quiesce;
  ]
