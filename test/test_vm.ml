(* Unit tests for the machine substrate: memory/allocator, files, TCBs,
   the builder eDSL. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_mem_rw () =
  let m = Vm.Mem.create ~words:128 in
  Vm.Mem.write m 5 42;
  check "read back" 42 (Vm.Mem.read m 5);
  check "zero init" 0 (Vm.Mem.read m 6)

let test_mem_reserve_sequential () =
  let m = Vm.Mem.create ~words:128 in
  let a = Vm.Mem.reserve m 10 in
  let b = Vm.Mem.reserve m 10 in
  check "first at 0" 0 a;
  check "second follows" 10 b

let test_mem_alloc_free_reuse () =
  let m = Vm.Mem.create ~words:128 in
  let a = Vm.Mem.alloc m 16 in
  Alcotest.(check (option int)) "size" (Some 16) (Vm.Mem.block_size m a);
  Vm.Mem.free m a;
  Alcotest.(check (option int)) "gone" None (Vm.Mem.block_size m a);
  let b = Vm.Mem.alloc m 16 in
  check "first fit reuses" a b

let test_mem_alloc_distinct () =
  let m = Vm.Mem.create ~words:1024 in
  let blocks = List.init 10 (fun _ -> Vm.Mem.alloc m 32) in
  let sorted = List.sort_uniq compare blocks in
  check "all distinct" 10 (List.length sorted)

let test_mem_oom () =
  let m = Vm.Mem.create ~words:64 in
  ignore (Vm.Mem.alloc m 60);
  Alcotest.check_raises "oom" (Failure "Mem.alloc: out of simulated memory")
    (fun () -> ignore (Vm.Mem.alloc m 60))

let test_mem_undo_alloc_free () =
  let m = Vm.Mem.create ~words:128 in
  let a = Vm.Mem.alloc m 8 in
  Vm.Mem.undo_alloc m a;
  Alcotest.(check (option int)) "undone" None (Vm.Mem.block_size m a);
  let b = Vm.Mem.alloc m 8 in
  check "block back on free list" a b;
  Vm.Mem.free m b;
  Vm.Mem.undo_free m b ~size:8;
  Alcotest.(check (option int)) "re-registered" (Some 8) (Vm.Mem.block_size m b)

let test_mem_snapshot_restore () =
  let m = Vm.Mem.create ~words:64 in
  let a = Vm.Mem.alloc m 4 in
  Vm.Mem.write m a 7;
  let snap = Vm.Mem.snapshot m in
  Vm.Mem.write m a 9;
  Vm.Mem.free m a;
  Vm.Mem.restore m ~from:snap;
  check "word restored" 7 (Vm.Mem.read m a);
  Alcotest.(check (option int)) "alloc state restored" (Some 4)
    (Vm.Mem.block_size m a)

let test_mem_free_coalesces () =
  let m = Vm.Mem.create ~words:128 in
  let blocks = List.init 16 (fun _ -> Vm.Mem.alloc m 8) in
  List.iter (Vm.Mem.free m) blocks;
  (* Adjacent frees merge back into one block covering the arena. *)
  check "whole arena allocatable again" 0 (Vm.Mem.alloc m 128)

let test_mem_coalesced_reuse () =
  let m = Vm.Mem.create ~words:128 in
  let a = Vm.Mem.alloc m 16 in
  let b = Vm.Mem.alloc m 16 in
  let c = Vm.Mem.alloc m 16 in
  Vm.Mem.free m a;
  Vm.Mem.free m b;
  check "merged block serves a larger alloc" a (Vm.Mem.alloc m 32);
  Vm.Mem.free m c

let test_mem_undo_free_coalesced () =
  let m = Vm.Mem.create ~words:128 in
  let a = Vm.Mem.alloc m 8 in
  let b = Vm.Mem.alloc m 8 in
  Vm.Mem.free m a;
  Vm.Mem.free m b;
  (* b's words are now inside a coalesced free block; undo_free must
     carve exactly b back out of it. *)
  Vm.Mem.undo_free m b ~size:8;
  Alcotest.(check (option int)) "b re-registered" (Some 8) (Vm.Mem.block_size m b);
  check "a still free" a (Vm.Mem.alloc m 8)

let test_mem_image_roundtrip () =
  let m = Vm.Mem.create ~words:256 in
  Vm.Mem.write m 5 1;
  Vm.Mem.write m 200 2;
  let img = Vm.Mem.alloc_image m in
  check "first capture copies every word" 256 (Vm.Mem.capture m img);
  Vm.Mem.write m 5 99;
  Vm.Mem.write m 64 7;
  let n = Vm.Mem.restore_image m img in
  checkb "restore copies only the dirty pages" true (n > 0 && n <= 128);
  check "overwritten word restored" 1 (Vm.Mem.read m 5);
  check "clean word intact" 2 (Vm.Mem.read m 200);
  check "dirty-page neighbor restored" 0 (Vm.Mem.read m 64);
  (* Re-capture after restore: only the re-stamped pages are copied. *)
  Vm.Mem.write m 0 3;
  check "incremental capture" 128 (Vm.Mem.capture m img)

let test_mem_touch_epochs () =
  let m = Vm.Mem.create ~words:64 in
  let img = Vm.Mem.alloc_image m in
  ignore (Vm.Mem.capture m img);
  checkb "first touch in epoch" true (Vm.Mem.touch m 3);
  checkb "second touch is absorbed" false (Vm.Mem.touch m 3);
  ignore (Vm.Mem.capture m img);
  checkb "capture opens a new epoch" true (Vm.Mem.touch m 3)

let test_io_basics () =
  let io = Vm.Io.create () in
  let f = Vm.Io.add_file io ~name:"in" [| 1; 2; 3 |] in
  check "size" 3 (Vm.Io.size io f);
  check "read" 2 (Vm.Io.read io f ~off:1);
  check "sparse read" 0 (Vm.Io.read io f ~off:99);
  Alcotest.(check (option int)) "lookup" (Some f) (Vm.Io.lookup io "in")

let test_io_write_grows () =
  let io = Vm.Io.create () in
  let f = Vm.Io.add_file io ~name:"out" [||] in
  Vm.Io.write io f ~off:10 99;
  check "grew" 11 (Vm.Io.size io f);
  check "written" 99 (Vm.Io.read io f ~off:10);
  check "hole is zero" 0 (Vm.Io.read io f ~off:5)

let test_io_truncate () =
  let io = Vm.Io.create () in
  let f = Vm.Io.add_file io ~name:"out" [| 5; 6; 7 |] in
  Vm.Io.truncate io f 1;
  check "shorter" 1 (Vm.Io.size io f);
  Alcotest.(check (array int)) "contents" [| 5 |] (Vm.Io.contents io f)

let test_io_snapshot_restore () =
  let io = Vm.Io.create () in
  let f = Vm.Io.add_file io ~name:"x" [| 1 |] in
  let snap = Vm.Io.snapshot io in
  Vm.Io.write io f ~off:0 100;
  Vm.Io.write io f ~off:1 200;
  Vm.Io.restore io ~from:snap;
  check "len back" 1 (Vm.Io.size io f);
  check "word back" 1 (Vm.Io.read io f ~off:0)

let test_tcb_save_restore () =
  let proc = { Vm.Isa.pname = "p"; code = [| Vm.Isa.Exit |] } in
  let t = Vm.Tcb.create ~n_barriers:0 ~tid:3 ~group:1 ~proc ~args:[| 10; 20 |] in
  check "args loaded" 10 t.Vm.Tcb.regs.(0);
  check "args loaded" 20 t.Vm.Tcb.regs.(1);
  let saved = Vm.Tcb.copy_state t in
  t.Vm.Tcb.pc <- 5;
  t.Vm.Tcb.regs.(0) <- 999;
  t.Vm.Tcb.lock_depth <- 2;
  Vm.Tcb.restore_state t saved;
  check "pc restored" 0 t.Vm.Tcb.pc;
  check "reg restored" 10 t.Vm.Tcb.regs.(0);
  check "depth restored" 0 t.Vm.Tcb.lock_depth

let test_builder_labels () =
  let b = Vm.Builder.proc "loop" in
  (* r0 counts down from 3; r1 accumulates iterations. *)
  Vm.Builder.set_reg b 0 (fun _ -> 3);
  Vm.Builder.while_ b
    (fun regs -> regs.(0) > 0)
    (fun () ->
      Vm.Builder.set_reg b 1 (fun regs -> regs.(1) + 10);
      Vm.Builder.set_reg b 0 (fun regs -> regs.(0) - 1));
  Vm.Builder.exit_ b;
  let proc = Vm.Builder.finish b in
  checkb "has code" true (Array.length proc.Vm.Isa.code > 4)

let test_builder_unbound_label () =
  let b = Vm.Builder.proc "bad" in
  let l = Vm.Builder.fresh_label b in
  Vm.Builder.goto b l;
  Alcotest.check_raises "unbound"
    (Invalid_argument "Builder.finish(bad): unbound label") (fun () ->
      ignore (Vm.Builder.finish b))

let test_builder_program_validation () =
  let p = Vm.Builder.proc "main" in
  Vm.Builder.exit_ p;
  let proc = Vm.Builder.finish p in
  Alcotest.check_raises "bad entry"
    (Invalid_argument "Builder.program: entry proc not among procs") (fun () ->
      ignore (Vm.Builder.program ~entry:"nope" [ proc ]))

let test_isa_sync_points () =
  checkb "lock is sync" true (Vm.Isa.is_sync_point (Vm.Isa.Lock { m = (fun _ -> 0) }));
  checkb "unlock is NOT sync (critical-section optimization)" false
    (Vm.Isa.is_sync_point (Vm.Isa.Unlock { m = (fun _ -> 0) }));
  checkb "nonstd atomic invisible" false
    (Vm.Isa.is_sync_point
       (Vm.Isa.Nonstd_atomic { var = (fun _ -> 0); rmw = (fun ~old _ -> old); dst = 0 }));
  checkb "exit is sync" true (Vm.Isa.is_sync_point Vm.Isa.Exit)

let suite =
  [
    Alcotest.test_case "mem read/write" `Quick test_mem_rw;
    Alcotest.test_case "mem reserve" `Quick test_mem_reserve_sequential;
    Alcotest.test_case "mem alloc/free/reuse" `Quick test_mem_alloc_free_reuse;
    Alcotest.test_case "mem alloc distinct" `Quick test_mem_alloc_distinct;
    Alcotest.test_case "mem oom" `Quick test_mem_oom;
    Alcotest.test_case "mem undo alloc/free" `Quick test_mem_undo_alloc_free;
    Alcotest.test_case "mem snapshot/restore" `Quick test_mem_snapshot_restore;
    Alcotest.test_case "mem free coalesces" `Quick test_mem_free_coalesces;
    Alcotest.test_case "mem coalesced reuse" `Quick test_mem_coalesced_reuse;
    Alcotest.test_case "mem undo_free from coalesced block" `Quick test_mem_undo_free_coalesced;
    Alcotest.test_case "mem image roundtrip" `Quick test_mem_image_roundtrip;
    Alcotest.test_case "mem touch epochs" `Quick test_mem_touch_epochs;
    Alcotest.test_case "io basics" `Quick test_io_basics;
    Alcotest.test_case "io write grows" `Quick test_io_write_grows;
    Alcotest.test_case "io truncate" `Quick test_io_truncate;
    Alcotest.test_case "io snapshot/restore" `Quick test_io_snapshot_restore;
    Alcotest.test_case "tcb save/restore" `Quick test_tcb_save_restore;
    Alcotest.test_case "builder labels" `Quick test_builder_labels;
    Alcotest.test_case "builder unbound label" `Quick test_builder_unbound_label;
    Alcotest.test_case "builder program validation" `Quick test_builder_program_validation;
    Alcotest.test_case "isa sync points" `Quick test_isa_sync_points;
  ]
