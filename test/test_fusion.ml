(* Fused dispatch must be a pure performance transformation: every
   observable of a run — output digest, simulated cycles, DNC flag, and
   every statistic except the profiling counters themselves — must be
   bit-identical with fusion on and off, for all three engines, under
   faults, checkpoints, recovery, and restart. *)

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let n_contexts = 4
let scale = 0.08

let build (spec : Workloads.Workload.spec) =
  spec.Workloads.Workload.build ~n_contexts ~grain:Workloads.Workload.Default
    ~scale

(* Everything observable about a run. Profiling keys ("dispatch.*",
   "fuse.*") are the one legitimate difference between the legs. *)
type obs = {
  o_digest : string;
  o_cycles : int;
  o_dnc : bool;
  o_stats : (string * float) list;
}

let prefixed ~prefix k =
  String.length k >= String.length prefix
  && String.sub k 0 (String.length prefix) = prefix

let observe digest (r : Exec.State.run_result) =
  {
    o_digest = digest r;
    o_cycles = r.Exec.State.sim_cycles;
    o_dnc = r.Exec.State.dnc;
    o_stats =
      List.filter
        (fun (k, _) ->
          (not (prefixed ~prefix:"fuse." k))
          && (not (prefixed ~prefix:"dispatch." k))
          && not (prefixed ~prefix:"par." k))
        (Sim.Stats.to_assoc r.Exec.State.run_stats);
  }

let with_fusing b f =
  let saved = Vm.Block.fusing () in
  Vm.Block.set_fusing b;
  Fun.protect ~finally:(fun () -> Vm.Block.set_fusing saved) f

(* Run [f] once per leg; [f] must build its own program (fused-block
   analysis is done at State.create, but more importantly each leg needs
   fresh mutable memory). *)
let both_legs f =
  (with_fusing true f, with_fusing false f)

let explain_stats_diff a b =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) b.o_stats;
  let diffs =
    List.filter_map
      (fun (k, v) ->
        match Hashtbl.find_opt tbl k with
        | Some v' when v = v' -> None
        | Some v' -> Some (Printf.sprintf "%s: fused=%g unfused=%g" k v v')
        | None -> Some (Printf.sprintf "%s: fused=%g unfused=absent" k v))
      a.o_stats
  in
  let missing =
    List.filter_map
      (fun (k, v) ->
        if List.mem_assoc k a.o_stats then None
        else Some (Printf.sprintf "%s: fused=absent unfused=%g" k v))
      b.o_stats
  in
  String.concat "; " (diffs @ missing)

let check_identical name (fused, unfused) =
  checks (name ^ ": digest") unfused.o_digest fused.o_digest;
  Alcotest.(check int) (name ^ ": sim_cycles") unfused.o_cycles fused.o_cycles;
  checkb (name ^ ": dnc") unfused.o_dnc fused.o_dnc;
  if fused.o_stats <> unfused.o_stats then
    Alcotest.failf "%s: stats differ — %s" name
      (explain_stats_diff fused unfused)

(* Same fault-tolerance tuning as test_integration. *)
let gprs_k = function
  | "blackscholes" | "swaptions" | "barnes-hut" -> 1.2
  | "canneal" -> 3.0
  | _ -> 6.0

let rate_for ?cap ~k ~base () =
  let base_s =
    Sim.Time.to_seconds
      ~cycles_per_second:Vm.Costs.default.Vm.Costs.cycles_per_second base
  in
  let r = k /. base_s in
  match cap with Some c -> Float.min c r | None -> r

let baseline_cycles spec =
  (Exec.Baseline.run
     { Exec.Baseline.default_config with n_contexts }
     (build spec))
    .Exec.State.sim_cycles

(* --- all workloads, all three engines -------------------------------- *)

let test_baseline_all_workloads () =
  List.iter
    (fun (spec : Workloads.Workload.spec) ->
      let digest = spec.Workloads.Workload.digest in
      let legs =
        both_legs (fun () ->
            observe digest
              (Exec.Baseline.run
                 { Exec.Baseline.default_config with n_contexts }
                 (build spec)))
      in
      check_identical ("baseline/" ^ spec.Workloads.Workload.name) legs)
    Workloads.Suite.all

let test_gprs_all_workloads_with_faults () =
  List.iter
    (fun (spec : Workloads.Workload.spec) ->
      let name = spec.Workloads.Workload.name in
      let base = baseline_cycles spec in
      let legs =
        both_legs (fun () ->
            observe spec.Workloads.Workload.digest
              (Gprs.Engine.run
                 {
                   Gprs.Engine.default_config with
                   n_contexts;
                   injector =
                     Faults.Injector.config (rate_for ~k:(gprs_k name) ~base ());
                   max_cycles = Some (300 * base);
                 }
                 (build spec)))
      in
      check_identical ("gprs/" ^ name) legs)
    Workloads.Suite.all

let test_cpr_all_workloads_with_faults () =
  List.iter
    (fun (spec : Workloads.Workload.spec) ->
      let name = spec.Workloads.Workload.name in
      let base = baseline_cycles spec in
      let legs =
        both_legs (fun () ->
            observe spec.Workloads.Workload.digest
              (Cpr.run
                 {
                   Cpr.default_config with
                   n_contexts;
                   checkpoint_interval = 0.002;
                   injector =
                     Faults.Injector.config (rate_for ~cap:25.0 ~k:2.0 ~base ());
                   max_cycles = Some (300 * base);
                 }
                 (build spec)))
      in
      check_identical ("cpr/" ^ name) legs)
    Workloads.Suite.all

(* --- directed: a fault report landing mid-chain must deopt ------------ *)

(* Long straight-line Work runs under a tiny detection latency: report
   times land strictly inside would-be fused chains, so the horizon check
   (not a lucky boundary) is what keeps the legs identical. The fused leg
   must still actually fuse (hops < instrs). *)
let test_gprs_mid_block_fault_deopt () =
  let mem_digest (r : Exec.State.run_result) =
    string_of_int (Vm.Mem.read r.Exec.State.final_mem 0)
  in
  let run () =
    Gprs.Engine.run
      {
        Gprs.Engine.default_config with
        n_contexts;
        injector =
          Faults.Injector.config ~detection_latency:1_500
            ~process:Faults.Injector.Poisson 2_000.0;
        max_cycles = Some 2_000_000_000;
      }
      (Tprog.locked_counter ~work:800 ~workers:4 ~iters:30 ())
  in
  let fused_raw = with_fusing true run in
  let fused = observe mem_digest fused_raw in
  let unfused = observe mem_digest (with_fusing false run) in
  checkb "run completed" false fused.o_dnc;
  checks "counter value" "120" fused.o_digest;
  checkb "faults were injected" true
    (Sim.Stats.get fused_raw.Exec.State.run_stats "gprs.exceptions" > 0);
  checkb "fused leg actually fused" true
    (Sim.Stats.get fused_raw.Exec.State.run_stats "fuse.hops"
    < Sim.Stats.get fused_raw.Exec.State.run_stats "instrs");
  check_identical "gprs mid-block fault" (fused, unfused)

(* --- directed: CPR restart must resume execution mid-block ------------ *)

(* After a rollback every thread restarts from its snapshot pc, which is
   usually in the middle of a static block; the restarted run then fuses
   again from that interior pc. Rollbacks are forced by a fault rate the
   checkpoint interval comfortably outpaces. *)
let test_cpr_restart_resumes_into_block () =
  let mem_digest (r : Exec.State.run_result) =
    string_of_int (Vm.Mem.read r.Exec.State.final_mem 0)
  in
  let run () =
    Cpr.run
      {
        Cpr.default_config with
        n_contexts;
        seed = 7;
        checkpoint_interval = 0.005;
        injector = Faults.Injector.config ~seed:7 25.0;
        max_cycles = Some 2_000_000_000;
      }
      (Tprog.locked_counter ~work:20_000 ~workers:3 ~iters:8 ())
  in
  let fused_raw = with_fusing true run in
  let fused = observe mem_digest fused_raw in
  let unfused = observe mem_digest (with_fusing false run) in
  checkb "run completed" false fused.o_dnc;
  checks "counter value" "24" fused.o_digest;
  checkb "rollbacks happened" true
    (Sim.Stats.get fused_raw.Exec.State.run_stats "cpr.rollbacks" > 0);
  check_identical "cpr restart-resume" (fused, unfused)

let test_gprs_basic_recovery () =
  let spec = Workloads.Suite.find "histogram" in
  let base = baseline_cycles spec in
  let legs =
    both_legs (fun () ->
        observe spec.Workloads.Workload.digest
          (Gprs.Engine.run
             {
               Gprs.Engine.default_config with
               n_contexts;
               recovery = Gprs.Engine.Basic;
               injector = Faults.Injector.config (rate_for ~k:5.0 ~base ());
               max_cycles = Some (300 * base);
             }
             (build spec)))
  in
  check_identical "gprs basic recovery" legs

(* --- property: random programs, random rates, both recovery engines --- *)

let qcase ?(count = 15) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let obs_equal a b =
  a.o_digest = b.o_digest && a.o_cycles = b.o_cycles && a.o_dnc = b.o_dnc
  && a.o_stats = b.o_stats

let prop_gprs_fusion_invisible =
  qcase "gprs: fused ≡ unfused on random locked counters"
    QCheck2.Gen.(
      quad (int_range 2 5) (int_range 4 14) (int_range 1 10_000)
        (int_range 1 6))
    (fun (workers, iters, seed, rate10) ->
      let run () =
        observe
          (fun r -> string_of_int (Vm.Mem.read r.Exec.State.final_mem 0))
          (Gprs.Engine.run
             {
               Gprs.Engine.default_config with
               n_contexts;
               seed;
               injector =
                 Faults.Injector.config ~seed ~process:Faults.Injector.Poisson
                   (float_of_int rate10 *. 10.0);
               max_cycles = Some 2_000_000_000;
             }
             (Tprog.locked_counter ~work:20_000 ~workers ~iters ()))
      in
      let fused, unfused = both_legs run in
      obs_equal fused unfused)

let prop_cpr_fusion_invisible =
  qcase ~count:10 "cpr: fused ≡ unfused on random locked counters"
    QCheck2.Gen.(triple (int_range 2 4) (int_range 4 10) (int_range 1 10_000))
    (fun (workers, iters, seed) ->
      let run () =
        observe
          (fun r -> string_of_int (Vm.Mem.read r.Exec.State.final_mem 0))
          (Cpr.run
             {
               Cpr.default_config with
               n_contexts;
               seed;
               checkpoint_interval = 0.01;
               injector = Faults.Injector.config ~seed 15.0;
               max_cycles = Some 2_000_000_000;
             }
             (Tprog.locked_counter ~work:20_000 ~workers ~iters ()))
      in
      let fused, unfused = both_legs run in
      obs_equal fused unfused)

let suite =
  [
    Alcotest.test_case "baseline: all workloads bit-identical" `Slow
      test_baseline_all_workloads;
    Alcotest.test_case "gprs: all workloads + faults bit-identical" `Slow
      test_gprs_all_workloads_with_faults;
    Alcotest.test_case "cpr: all workloads + faults bit-identical" `Slow
      test_cpr_all_workloads_with_faults;
    Alcotest.test_case "gprs: mid-block fault report deopts" `Quick
      test_gprs_mid_block_fault_deopt;
    Alcotest.test_case "cpr: restart resumes into a block" `Quick
      test_cpr_restart_resumes_into_block;
    Alcotest.test_case "gprs: basic recovery bit-identical" `Slow
      test_gprs_basic_recovery;
    prop_gprs_fusion_invisible;
    prop_cpr_fusion_invisible;
  ]
